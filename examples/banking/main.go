// Banking: concurrent transfers between accounts in one transaction group,
// demonstrating that one-copy serializability preserves the invariant the
// paper's correctness theorems promise — money is neither created nor
// destroyed, under either commit protocol.
//
// Pairs of accounts are debited and credited by concurrent clients in
// different datacenters; conflicting transfers abort (basic Paxos) or
// promote/combine (Paxos-CP), and the final total always matches.
//
//	go run ./examples/banking
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"sync"
	"time"

	"paxoscp/internal/cluster"
	"paxoscp/internal/core"
	"paxoscp/internal/network"
	"paxoscp/internal/stats"
)

const (
	accounts       = 8
	initialBalance = 1000
	transfers      = 40
	group          = "bank"
)

func main() {
	for _, proto := range []core.Protocol{core.Basic, core.CP} {
		run(proto)
	}
}

func run(proto core.Protocol) {
	c := cluster.New(cluster.Config{
		Topology:  cluster.MustPaperTopology("VVV"),
		NetConfig: network.SimConfig{Seed: 5, Scale: 0.01},
		Timeout:   300 * time.Millisecond,
	})
	defer c.Close()
	ctx := context.Background()

	// Seed the accounts in one transaction.
	seed := c.NewClient("V1", core.Config{Protocol: proto})
	tx, err := seed.Begin(ctx, group)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < accounts; i++ {
		tx.Write(account(i), strconv.Itoa(initialBalance))
	}
	if res, err := tx.Commit(ctx); err != nil || res.Status != stats.Committed {
		log.Fatalf("seed: %+v %v", res, err)
	}

	// Concurrent transfers from clients in all three datacenters.
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed, aborted := 0, 0
	for w := 0; w < 4; w++ {
		cl := c.NewClient(c.DCs()[w%3], core.Config{Protocol: proto, Seed: int64(w + 1)})
		wg.Add(1)
		go func(w int, cl *core.Client) {
			defer wg.Done()
			for n := 0; n < transfers/4; n++ {
				from := (w + 3*n) % accounts
				to := (w + 3*n + 1 + w%3) % accounts
				if from == to {
					to = (to + 1) % accounts
				}
				amount := 10 + (w+n)%40
				ok, err := transfer(ctx, cl, from, to, amount)
				mu.Lock()
				if err == nil && ok {
					committed++
				} else {
					aborted++
				}
				mu.Unlock()
			}
		}(w, cl)
	}
	wg.Wait()

	// Audit: read every balance in one transaction and sum.
	audit := c.NewClient("V2", core.Config{Protocol: proto})
	tx, err = audit.Begin(ctx, group)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for i := 0; i < accounts; i++ {
		v, _, err := tx.Read(ctx, account(i))
		if err != nil {
			log.Fatal(err)
		}
		n, _ := strconv.Atoi(v)
		total += n
	}
	tx.Abort()

	want := accounts * initialBalance
	status := "INVARIANT HOLDS"
	if total != want {
		status = "INVARIANT VIOLATED"
	}
	fmt.Printf("%-8s  transfers: %d committed, %d aborted   total balance: %d/%d   %s\n",
		proto, committed, aborted, total, want, status)
	if total != want {
		log.Fatal("serializability broken")
	}
}

// transfer moves amount from one account to another in a single
// transaction; it reports false when the transaction aborted (a concurrent
// conflicting transfer won).
func transfer(ctx context.Context, cl *core.Client, from, to, amount int) (bool, error) {
	tx, err := cl.Begin(ctx, group)
	if err != nil {
		return false, err
	}
	fromBal, _, err := tx.Read(ctx, account(from))
	if err != nil {
		tx.Abort()
		return false, err
	}
	toBal, _, err := tx.Read(ctx, account(to))
	if err != nil {
		tx.Abort()
		return false, err
	}
	f, _ := strconv.Atoi(fromBal)
	t, _ := strconv.Atoi(toBal)
	if f < amount {
		tx.Abort() // insufficient funds
		return false, nil
	}
	tx.Write(account(from), strconv.Itoa(f-amount))
	tx.Write(account(to), strconv.Itoa(t+amount))
	res, err := tx.Commit(ctx)
	if err != nil {
		return false, err
	}
	return res.Status == stats.Committed, nil
}

func account(i int) string { return fmt.Sprintf("acct-%d", i) }
