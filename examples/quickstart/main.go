// Quickstart: spin up a three-datacenter cluster in process, run a
// transaction with the Paxos-CP commit protocol, and read the result back
// from every datacenter.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"paxoscp/internal/cluster"
	"paxoscp/internal/core"
	"paxoscp/internal/network"
	"paxoscp/internal/stats"
)

func main() {
	// A three-datacenter deployment with the paper's Virginia RTTs,
	// compressed 10x so the demo is instant.
	c := cluster.New(cluster.Config{
		Topology:  cluster.MustPaperTopology("VVV"),
		NetConfig: network.SimConfig{Seed: 1, Scale: 0.1},
		Timeout:   500 * time.Millisecond,
	})
	defer c.Close()
	fmt.Printf("cluster up: datacenters %v\n", c.DCs())

	// A Transaction Client local to datacenter V1, committing with
	// Paxos-CP.
	client := c.NewClient("V1", core.Config{Protocol: core.CP})
	ctx := context.Background()

	// Transaction 1: create an account.
	tx, err := client.Begin(ctx, "accounts")
	if err != nil {
		log.Fatal(err)
	}
	tx.Write("alice/balance", "100")
	tx.Write("alice/currency", "USD")
	res, err := tx.Commit(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("txn 1 (%s): committed at log position %d in %v\n",
		tx.ID(), res.Pos, res.Latency.Round(time.Millisecond))

	// Transaction 2: read-modify-write.
	tx, err = client.Begin(ctx, "accounts")
	if err != nil {
		log.Fatal(err)
	}
	bal, _, err := tx.Read(ctx, "alice/balance")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("txn 2: read alice/balance = %s at read position %d\n", bal, tx.ReadPos())
	tx.Write("alice/balance", "85")
	if res, err = tx.Commit(ctx); err != nil || res.Status != stats.Committed {
		log.Fatalf("commit: %+v %v", res, err)
	}
	fmt.Printf("txn 2: committed at log position %d\n", res.Pos)

	// Every datacenter serves the committed state.
	for _, dc := range c.DCs() {
		reader := c.NewClient(dc, core.Config{})
		tx, err := reader.Begin(ctx, "accounts")
		if err != nil {
			log.Fatal(err)
		}
		v, _, err := tx.Read(ctx, "alice/balance")
		if err != nil {
			log.Fatal(err)
		}
		tx.Abort()
		fmt.Printf("datacenter %s: alice/balance = %s\n", dc, v)
	}
}
