// Inventory: an order-processing scenario that shows why Paxos-CP's
// concurrency matters. Clients in different datacenters place orders for
// different products of the same store (one transaction group). Under basic
// Paxos the orders compete for log positions and most lose; under Paxos-CP
// non-conflicting orders combine into shared log positions or get promoted,
// so throughput rises sharply — the paper's Figure 6 effect on a concrete
// workload.
//
//	go run ./examples/inventory
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync"
	"time"

	"paxoscp/internal/cluster"
	"paxoscp/internal/core"
	"paxoscp/internal/network"
	"paxoscp/internal/stats"
)

const (
	products = 12
	stock    = 50
	orders   = 60
	group    = "store"
)

func main() {
	fmt.Println("placing", orders, "orders for", products, "products from 3 datacenters")
	for _, proto := range []core.Protocol{core.Basic, core.CP} {
		run(proto)
	}
}

func run(proto core.Protocol) {
	c := cluster.New(cluster.Config{
		Topology:  cluster.MustPaperTopology("VOC"),
		NetConfig: network.SimConfig{Seed: 3, Scale: 0.005},
		Timeout:   250 * time.Millisecond,
	})
	defer c.Close()
	ctx := context.Background()

	// Stock the shelves.
	seed := c.NewClient("V", core.Config{Protocol: proto})
	tx, err := seed.Begin(ctx, group)
	if err != nil {
		log.Fatal(err)
	}
	for p := 0; p < products; p++ {
		tx.Write(stockKey(p), strconv.Itoa(stock))
		tx.Write(soldKey(p), "0")
	}
	if res, err := tx.Commit(ctx); err != nil || res.Status != stats.Committed {
		log.Fatalf("seed: %+v %v", res, err)
	}

	// Three datacenters' worth of order processors.
	var wg sync.WaitGroup
	var mu sync.Mutex
	placed, rejected, combined := 0, 0, 0
	start := time.Now()
	for w, dc := range c.DCs() {
		cl := c.NewClient(dc, core.Config{Protocol: proto, Seed: int64(w + 1)})
		wg.Add(1)
		go func(w int, cl *core.Client) {
			defer wg.Done()
			for n := 0; n < orders/3; n++ {
				product := (w*7 + n*3) % products
				qty := 1 + (w+n)%3
				res, err := placeOrder(ctx, cl, product, qty)
				mu.Lock()
				switch {
				case err == nil && res.Status == stats.Committed:
					placed++
					if res.Combined {
						combined++
					}
				default:
					rejected++
				}
				mu.Unlock()
			}
		}(w, cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Verify conservation with one ordered range query: a snapshot scan over
	// the "product-" prefix streams every stock and sold row in key order,
	// all served at a single read position (DESIGN.md §16) — the audit sees
	// one instant of the store instead of 2*products point reads.
	audit := c.NewClient("O", core.Config{Protocol: proto})
	tx, err = audit.Begin(ctx, group)
	if err != nil {
		log.Fatal(err)
	}
	stockAt := make(map[int]int)
	soldAt := make(map[int]int)
	rows := 0
	sc := tx.Scan("product-")
	for sc.Next(ctx) {
		id, field, ok := strings.Cut(sc.Key()[len("product-"):], "/")
		if !ok {
			log.Fatalf("unexpected inventory key %q", sc.Key())
		}
		p, _ := strconv.Atoi(id)
		n, _ := strconv.Atoi(sc.Value())
		switch field {
		case "stock":
			stockAt[p] = n
		case "sold":
			soldAt[p] = n
		}
		rows++
	}
	if sc.Err() != nil {
		log.Fatalf("audit scan: %v", sc.Err())
	}
	tx.Abort()
	consistent := true
	if rows != 2*products {
		consistent = false
		fmt.Printf("  audit scan returned %d rows, want %d\n", rows, 2*products)
	}
	for p := 0; p < products; p++ {
		if stockAt[p]+soldAt[p] != stock {
			consistent = false
			fmt.Printf("  product %d: stock %d + sold %d != %d\n", p, stockAt[p], soldAt[p], stock)
		}
	}
	check := "consistent"
	if !consistent {
		check = "INCONSISTENT"
		defer log.Fatal("stock conservation violated")
	}
	fmt.Printf("%-8s  %2d/%2d orders placed (%d combined into shared log entries), %d lost to contention, %v, %s\n",
		proto, placed, orders, combined, rejected, elapsed.Round(time.Millisecond), check)
}

// placeOrder decrements stock and increments the sold counter for one
// product, transactionally.
func placeOrder(ctx context.Context, cl *core.Client, product, qty int) (core.CommitResult, error) {
	tx, err := cl.Begin(ctx, group)
	if err != nil {
		return core.CommitResult{}, err
	}
	s, _, err := tx.Read(ctx, stockKey(product))
	if err != nil {
		tx.Abort()
		return core.CommitResult{}, err
	}
	sold, _, err := tx.Read(ctx, soldKey(product))
	if err != nil {
		tx.Abort()
		return core.CommitResult{}, err
	}
	have, _ := strconv.Atoi(s)
	soldN, _ := strconv.Atoi(sold)
	if have < qty {
		tx.Abort()
		return core.CommitResult{}, fmt.Errorf("product %d out of stock", product)
	}
	tx.Write(stockKey(product), strconv.Itoa(have-qty))
	tx.Write(soldKey(product), strconv.Itoa(soldN+qty))
	return tx.Commit(ctx)
}

func stockKey(p int) string { return fmt.Sprintf("product-%d/stock", p) }
func soldKey(p int) string  { return fmt.Sprintf("product-%d/sold", p) }
