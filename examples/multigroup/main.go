// Multigroup: the paper's data model (§2.1) — data items are partitioned
// into transaction groups; transactions within one group are serializable,
// groups are independent of each other, and there is no global
// serializability across groups.
//
// This example runs the sharded keyspace end to end through the placement
// router (DESIGN.md §12). Two semantic groups — user profiles and analytics
// — hold pinned well-known counters; everything else spreads over the groups
// by rendezvous hashing. Writers hammer both counters concurrently through
// the routed KV facade, a sweep of routed Puts shows the hash spreading the
// keyspace, and a cross-group ReadMulti fans out one snapshot per group.
//
//	go run ./examples/multigroup
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"sync"
	"time"

	"paxoscp/internal/cluster"
	"paxoscp/internal/core"
	"paxoscp/internal/network"
	"paxoscp/internal/placement"
)

func main() {
	c := cluster.New(cluster.Config{
		Topology:  cluster.MustPaperTopology("VVV"),
		NetConfig: network.SimConfig{Seed: 4, Scale: 0.01},
		Timeout:   300 * time.Millisecond,
	})
	defer c.Close()
	ctx := context.Background()

	// The router: two named groups, each with its counter pinned to it (the
	// explicit-assignment override); unpinned keys spread by rendezvous
	// hashing. Every process that builds this placement routes identically.
	place := placement.New([]string{"profiles", "analytics"},
		placement.Pin("profiles/counter", "profiles"),
		placement.Pin("analytics/counter", "analytics"),
	)
	counters := []string{"profiles/counter", "analytics/counter"}
	const increments = 30

	// Increment both counters from clients in every datacenter, all through
	// routed read-modify-writes. Within a group the increments conflict and
	// serialize; across groups they never interact.
	var wg sync.WaitGroup
	commits := make(map[string]*int)
	var mu sync.Mutex
	for _, key := range counters {
		n := 0
		commits[key] = &n
		for w := 0; w < 3; w++ {
			kv := core.NewKV(
				c.NewClient(c.DCs()[w], core.Config{Protocol: core.CP, Seed: int64(w + 1)}),
				place,
			)
			wg.Add(1)
			go func(key string, kv *core.KV) {
				defer wg.Done()
				for i := 0; i < increments/3; i++ {
					_, err := kv.Update(ctx, key, 0, func(cur string, found bool) (string, error) {
						n, _ := strconv.Atoi(cur)
						return strconv.Itoa(n + 1), nil
					})
					if err == nil {
						mu.Lock()
						*commits[key]++
						mu.Unlock()
					}
				}
			}(key, kv)
		}
	}
	wg.Wait()

	// Spread some ordinary keys through the router: rendezvous hashing
	// splits them across the groups with no table anywhere.
	kv := core.NewKV(c.NewClient("V1", core.Config{Protocol: core.CP, Seed: 99}), place)
	spread := map[string]int{}
	var items []string
	for i := 0; i < 24; i++ {
		key := fmt.Sprintf("item%d", i)
		items = append(items, key)
		if _, err := kv.Put(ctx, key, fmt.Sprintf("v%d", i)); err != nil {
			log.Fatal(err)
		}
		spread[place.GroupFor(key)]++
	}
	fmt.Printf("24 routed writes spread as: profiles=%d analytics=%d\n",
		spread["profiles"], spread["analytics"])

	// One routed multi-read over both counters and every item: the facade
	// fans out one batched read per owning group and reports each group's
	// snapshot position.
	res, err := kv.ReadMulti(ctx, append(append([]string{}, counters...), items...)...)
	if err != nil {
		log.Fatal(err)
	}
	for g, pos := range res.Positions {
		fmt.Printf("group %-10s snapshot position %d\n", g, pos)
	}

	// Audit each counter against its group-local commit count.
	for i, key := range counters {
		got, _ := strconv.Atoi(res.Vals[i])
		want := *commits[key]
		group := place.GroupFor(key)
		status := "counter matches commits"
		if got != want {
			status = "MISMATCH"
		}
		fmt.Printf("group %-10s log height %d, counter = %2d, committed increments = %2d  -> %s\n",
			group, c.Service("V1").LastApplied(group), got, want, status)
		if got != want {
			log.Fatal("group-local serializability violated")
		}
	}
	fmt.Println("groups progressed independently; no cross-group coordination happened")
}
