// Multigroup: the paper's data model (§2.1) — data items are partitioned
// into transaction groups; transactions within one group are serializable,
// groups are independent of each other, and there is no global
// serializability across groups.
//
// This example runs a user-profile group and an analytics group side by
// side: writers hammer both concurrently, group-local invariants hold, and
// the logs advance independently (no cross-group contention even under
// basic Paxos).
//
//	go run ./examples/multigroup
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"sync"
	"time"

	"paxoscp/internal/cluster"
	"paxoscp/internal/core"
	"paxoscp/internal/network"
	"paxoscp/internal/stats"
)

func main() {
	c := cluster.New(cluster.Config{
		Topology:  cluster.MustPaperTopology("VVV"),
		NetConfig: network.SimConfig{Seed: 4, Scale: 0.01},
		Timeout:   300 * time.Millisecond,
	})
	defer c.Close()
	ctx := context.Background()

	groups := []string{"profiles", "analytics"}
	const increments = 30

	// One counter per group, incremented by clients in all datacenters.
	// Within a group these transactions conflict (read-modify-write of the
	// same key), so they serialize; across groups they never interact.
	var wg sync.WaitGroup
	commits := make(map[string]*int)
	var mu sync.Mutex
	for _, group := range groups {
		n := 0
		commits[group] = &n
		for w := 0; w < 3; w++ {
			cl := c.NewClient(c.DCs()[w], core.Config{Protocol: core.CP, Seed: int64(w + 1)})
			wg.Add(1)
			go func(group string, cl *core.Client) {
				defer wg.Done()
				for i := 0; i < increments/3; i++ {
					if incrementCounter(ctx, cl, group) {
						mu.Lock()
						*commits[group]++
						mu.Unlock()
					}
				}
			}(group, cl)
		}
	}
	wg.Wait()

	// Audit each group independently.
	for _, group := range groups {
		cl := c.NewClient("V1", core.Config{})
		tx, err := cl.Begin(ctx, group)
		if err != nil {
			log.Fatal(err)
		}
		v, _, err := tx.Read(ctx, "counter")
		if err != nil {
			log.Fatal(err)
		}
		tx.Abort()
		got, _ := strconv.Atoi(v)
		want := *commits[group]
		status := "counter matches commits"
		if got != want {
			status = "MISMATCH"
		}
		fmt.Printf("group %-10s log height %d, counter = %2d, committed increments = %2d  -> %s\n",
			group, c.Service("V1").LastApplied(group), got, want, status)
		if got != want {
			log.Fatal("group-local serializability violated")
		}
	}
	fmt.Println("groups progressed independently; no cross-group coordination happened")
}

// incrementCounter does a read-modify-write of the group's counter,
// retrying on abort until it commits (a conflicting increment by another
// client forces a fresh read).
func incrementCounter(ctx context.Context, cl *core.Client, group string) bool {
	for attempt := 0; attempt < 20; attempt++ {
		tx, err := cl.Begin(ctx, group)
		if err != nil {
			return false
		}
		v, _, err := tx.Read(ctx, "counter")
		if err != nil {
			tx.Abort()
			continue
		}
		n, _ := strconv.Atoi(v)
		tx.Write("counter", strconv.Itoa(n+1))
		res, err := tx.Commit(ctx)
		if err != nil {
			return false
		}
		if res.Status == stats.Committed {
			return true
		}
		// Aborted: somebody else incremented first; reread and retry.
	}
	return false
}
