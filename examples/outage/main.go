// Outage: the availability story that motivates the paper (§1). A
// datacenter goes dark mid-workload; commits continue against the surviving
// majority, and when the datacenter comes back it recovers every log entry
// it missed by running Paxos instances (§4.1, "Fault Tolerance and
// Recovery") — ending with identical logs everywhere.
//
//	go run ./examples/outage
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"paxoscp/internal/cluster"
	"paxoscp/internal/core"
	"paxoscp/internal/network"
	"paxoscp/internal/stats"
)

const group = "orders"

func main() {
	c := cluster.New(cluster.Config{
		Topology:  cluster.MustPaperTopology("VVV"),
		NetConfig: network.SimConfig{Seed: 8, Scale: 0.02},
		Timeout:   300 * time.Millisecond,
	})
	defer c.Close()
	ctx := context.Background()
	client := c.NewClient("V1", core.Config{Protocol: core.CP})

	commit := func(key, value string) {
		tx, err := client.Begin(ctx, group)
		if err != nil {
			log.Fatal(err)
		}
		tx.Write(key, value)
		res, err := tx.Commit(ctx)
		if err != nil || res.Status != stats.Committed {
			log.Fatalf("commit %s: %+v %v", key, res, err)
		}
		fmt.Printf("  committed %s at position %d\n", key, res.Pos)
	}

	fmt.Println("phase 1: all three datacenters up")
	commit("order-1", "laptop")
	commit("order-2", "keyboard")

	fmt.Println("phase 2: datacenter V3 goes dark (lightning, §1)")
	c.SetDown("V3", true)
	commit("order-3", "monitor")
	commit("order-4", "dock")
	fmt.Printf("  V3 horizon while down: %d (missed entries)\n", c.Service("V3").LastApplied(group))

	fmt.Println("phase 3: V3 back online, running recovery")
	c.SetDown("V3", false)
	if err := c.Recover(ctx, "V3", group); err != nil {
		log.Fatalf("recovery failed: %v", err)
	}

	fmt.Println("phase 4: verify all logs agree")
	reference := c.Service("V1").LogSnapshot(group)
	for _, dc := range c.DCs() {
		snap := c.Service(dc).LogSnapshot(group)
		if len(snap) != len(reference) {
			log.Fatalf("%s has %d entries, want %d", dc, len(snap), len(reference))
		}
		fmt.Printf("  %s: %d log entries, horizon %d\n", dc, len(snap), c.Service(dc).LastApplied(group))
	}

	// And V3 can serve reads of everything committed during its outage.
	reader := c.NewClient("V3", core.Config{})
	tx, err := reader.Begin(ctx, group)
	if err != nil {
		log.Fatal(err)
	}
	for _, key := range []string{"order-1", "order-2", "order-3", "order-4"} {
		v, found, err := tx.Read(ctx, key)
		if err != nil || !found {
			log.Fatalf("read %s from recovered V3: found=%v err=%v", key, found, err)
		}
		fmt.Printf("  V3 serves %s = %s\n", key, v)
	}
	tx.Abort()
	fmt.Println("recovery complete: one-copy serializability preserved through the outage")
}
