// Command paxosbench regenerates the figures of the paper's evaluation
// (§6): it runs the chosen experiment against the simulated multi-datacenter
// cluster and prints the same rows/series the paper plots.
//
// Usage:
//
//	paxosbench -fig 4a            # Figure 4 (commit counts and latency)
//	paxosbench -fig 6 -txns 500   # Figure 6 at full paper scale
//	paxosbench -fig all -scale 0.02
//	paxosbench -benchjson bench.out -o BENCH_ci.json   # go-bench -> JSON report
//
// Figures: 4a, 4b, 5a, 5b, 6, 7, 8, ablation, promo, msgs, leader,
// pipeline, avail, all. (4a/4b and 5a/5b run the same experiment; both
// tables print.)
//
// -benchjson converts `go test -bench` output (a file, or "-" for stdin)
// into the machine-readable BENCH_ci.json report CI uploads as an artifact.
//
// Latencies are simulated at -scale times real time and reported scaled
// back to paper-equivalent milliseconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"paxoscp/internal/bench"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 4a 4b 5a 5b 6 7 8 ablation promo msgs leader pipeline avail all")
		scale     = flag.Float64("scale", 1.0/15, "latency scale factor (1.0 = paper wall-clock)")
		txns      = flag.Int("txns", 500, "transactions per experiment (paper: 500)")
		threads   = flag.Int("threads", 4, "concurrent workload threads (paper: 4)")
		seed      = flag.Int64("seed", 42, "random seed")
		quiet     = flag.Bool("q", false, "suppress progress output")
		benchJSON = flag.String("benchjson", "", "convert `go test -bench` output (file, or - for stdin) to a JSON report and exit")
		out       = flag.String("o", "BENCH_ci.json", "output path for -benchjson")
		benchCtx  = flag.String("context", "ci", "context label recorded in the -benchjson report")
	)
	flag.Parse()

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *out, *benchCtx); err != nil {
			fmt.Fprintf(os.Stderr, "paxosbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := bench.Options{Scale: *scale, Txns: *txns, Threads: *threads, Seed: *seed}
	if !*quiet {
		opts.Verbose = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	type experiment struct {
		names []string
		run   func(bench.Options) ([]bench.Table, error)
	}
	experiments := []experiment{
		{[]string{"4", "4a", "4b"}, bench.Fig4},
		{[]string{"5", "5a", "5b"}, bench.Fig5},
		{[]string{"6"}, bench.Fig6},
		{[]string{"7"}, bench.Fig7},
		{[]string{"8"}, bench.Fig8},
		{[]string{"ablation"}, bench.Ablation},
		{[]string{"promo"}, bench.PromotionCap},
		{[]string{"msgs"}, bench.MessageComplexity},
		{[]string{"leader"}, bench.LeaderComparison},
		{[]string{"pipeline"}, bench.SubmitPipeline},
		{[]string{"avail"}, bench.Availability},
	}

	want := strings.ToLower(*fig)
	matched := false
	start := time.Now()
	for _, e := range experiments {
		selected := want == "all"
		for _, n := range e.names {
			if n == want {
				selected = true
			}
		}
		if !selected {
			continue
		}
		matched = true
		tables, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paxosbench: %v\n", err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "paxosbench: unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "\ntotal wall time: %.1fs\n", time.Since(start).Seconds())
	}
}

// writeBenchJSON converts go-bench output at inPath ("-" = stdin) into the
// JSON benchmark report at outPath.
func writeBenchJSON(inPath, outPath, context string) error {
	in := os.Stdin
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := bench.WriteBenchJSON(f, in, context); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
