// Command paxosbench regenerates the figures of the paper's evaluation
// (§6): it runs the chosen experiment against the simulated multi-datacenter
// cluster and prints the same rows/series the paper plots.
//
// Usage:
//
//	paxosbench -fig 4a            # Figure 4 (commit counts and latency)
//	paxosbench -fig 6 -txns 500   # Figure 6 at full paper scale
//	paxosbench -fig all -scale 0.02
//	paxosbench -benchjson bench.out -o BENCH_ci.json   # go-bench -> JSON report
//	paxosbench -compare BENCH_3.json -against BENCH_ci.json   # regression diff
//
// Figures: 4a, 4b, 5a, 5b, 6, 7, 8, ablation, promo, msgs, leader,
// pipeline, reads, scans, failover, avail, shards, saturation, durability,
// migration, all. (4a/4b and 5a/5b run the same experiment; both tables
// print.)
//
// -benchjson converts `go test -bench` output (a file, or "-" for stdin)
// into the machine-readable BENCH_ci.json report CI uploads as an artifact.
// -compare diffs two such reports and flags metrics that moved more than
// -threshold (default 20%) in the wrong direction; it exits zero unless
// -strict is set, so CI can surface the diff without blocking.
//
// Latencies are simulated at -scale times real time and reported scaled
// back to paper-equivalent milliseconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"paxoscp/internal/bench"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 4a 4b 5a 5b 6 7 8 ablation promo msgs leader pipeline reads scans failover avail shards saturation durability migration all")
		scale     = flag.Float64("scale", 1.0/15, "latency scale factor (1.0 = paper wall-clock)")
		txns      = flag.Int("txns", 500, "transactions per experiment (paper: 500)")
		threads   = flag.Int("threads", 4, "concurrent workload threads (paper: 4)")
		seed      = flag.Int64("seed", 42, "random seed")
		quiet     = flag.Bool("q", false, "suppress progress output")
		benchJSON = flag.String("benchjson", "", "convert `go test -bench` output (file, or - for stdin) to a JSON report and exit")
		out       = flag.String("o", "BENCH_ci.json", "output path for -benchjson")
		benchCtx  = flag.String("context", "ci", "context label recorded in the -benchjson report")
		compare   = flag.String("compare", "", "baseline JSON report to diff -against (exit 0 unless -strict)")
		against   = flag.String("against", "BENCH_ci.json", "fresh JSON report compared to the -compare baseline")
		threshold = flag.Float64("threshold", 0.20, "relative change flagged as a regression by -compare")
		strict    = flag.Bool("strict", false, "exit 1 when -compare finds regressions")
	)
	flag.Parse()

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *out, *benchCtx); err != nil {
			fmt.Fprintf(os.Stderr, "paxosbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *compare != "" {
		regressions, err := compareReports(*compare, *against, *threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paxosbench: %v\n", err)
			os.Exit(1)
		}
		if regressions > 0 {
			fmt.Printf("\n%d metric(s) regressed more than %.0f%% vs %s\n", regressions, *threshold*100, *compare)
			if *strict {
				os.Exit(1)
			}
		} else {
			fmt.Printf("\nno regressions beyond %.0f%% vs %s\n", *threshold*100, *compare)
		}
		return
	}

	opts := bench.Options{Scale: *scale, Txns: *txns, Threads: *threads, Seed: *seed}
	if !*quiet {
		opts.Verbose = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	type experiment struct {
		names []string
		run   func(bench.Options) ([]bench.Table, error)
	}
	experiments := []experiment{
		{[]string{"4", "4a", "4b"}, bench.Fig4},
		{[]string{"5", "5a", "5b"}, bench.Fig5},
		{[]string{"6"}, bench.Fig6},
		{[]string{"7"}, bench.Fig7},
		{[]string{"8"}, bench.Fig8},
		{[]string{"ablation"}, bench.Ablation},
		{[]string{"promo"}, bench.PromotionCap},
		{[]string{"msgs"}, bench.MessageComplexity},
		{[]string{"leader"}, bench.LeaderComparison},
		{[]string{"pipeline"}, bench.SubmitPipeline},
		{[]string{"reads"}, bench.Reads},
		{[]string{"scans"}, bench.Scans},
		{[]string{"failover"}, bench.Failover},
		{[]string{"avail"}, bench.Availability},
		{[]string{"shards"}, bench.Shards},
		{[]string{"saturation", "sat"}, bench.Saturation},
		{[]string{"durability", "dur"}, bench.Durability},
		{[]string{"migration", "mig"}, bench.Migration},
	}

	want := strings.ToLower(*fig)
	matched := false
	start := time.Now()
	for _, e := range experiments {
		selected := want == "all"
		for _, n := range e.names {
			if n == want {
				selected = true
			}
		}
		if !selected {
			continue
		}
		matched = true
		tables, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paxosbench: %v\n", err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "paxosbench: unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "\ntotal wall time: %.1fs\n", time.Since(start).Seconds())
	}
}

// compareReports diffs the fresh report against the baseline and prints the
// delta table; it returns the number of regressions beyond threshold.
func compareReports(basePath, freshPath string, threshold float64) (int, error) {
	load := func(path string) (bench.BenchReport, error) {
		var r bench.BenchReport
		data, err := os.ReadFile(path)
		if err != nil {
			return r, err
		}
		if err := json.Unmarshal(data, &r); err != nil {
			return r, fmt.Errorf("%s: %w", path, err)
		}
		return r, nil
	}
	base, err := load(basePath)
	if err != nil {
		return 0, err
	}
	fresh, err := load(freshPath)
	if err != nil {
		return 0, err
	}
	deltas := bench.CompareReports(base, fresh, threshold)
	if len(deltas) == 0 {
		fmt.Printf("no overlapping benchmarks between %s and %s\n", basePath, freshPath)
		return 0, nil
	}
	return bench.WriteCompareReport(os.Stdout, deltas), nil
}

// writeBenchJSON converts go-bench output at inPath ("-" = stdin) into the
// JSON benchmark report at outPath.
func writeBenchJSON(inPath, outPath, context string) error {
	in := os.Stdin
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := bench.WriteBenchJSON(f, in, context); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
