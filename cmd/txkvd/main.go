// Command txkvd runs one datacenter's transaction tier over real UDP: the
// multi-version key-value store, the Paxos acceptor, and the Transaction
// Service, serving the full protocol (prepare/accept/apply, reads, leader
// claims, catch-up) on a UDP socket — the same transport the paper's
// prototype used.
//
// A three-datacenter deployment on one machine:
//
//	txkvd -dc V1 -bind 127.0.0.1:7001 -peers V1=127.0.0.1:7001,V2=127.0.0.1:7002,V3=127.0.0.1:7003
//	txkvd -dc V2 -bind 127.0.0.1:7002 -peers V1=127.0.0.1:7001,V2=127.0.0.1:7002,V3=127.0.0.1:7003
//	txkvd -dc V3 -bind 127.0.0.1:7003 -peers V1=127.0.0.1:7001,V2=127.0.0.1:7002,V3=127.0.0.1:7003
//
// Then run transactions with txkvctl.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paxoscp/internal/core"
	"paxoscp/internal/kvstore"
	"paxoscp/internal/kvstore/disk"
	"paxoscp/internal/network"
	"paxoscp/internal/placement"
)

func main() {
	var (
		dc       = flag.String("dc", "", "this datacenter's name (required)")
		bind     = flag.String("bind", "127.0.0.1:0", "UDP address to listen on")
		peers    = flag.String("peers", "", "comma-separated name=addr peer list, including self (required)")
		timeout  = flag.Duration("timeout", network.DefaultTimeout, "message-loss detection timeout")
		dataDir  = flag.String("data-dir", "", "durable data directory: write-ahead log + snapshots; a kill -9'd daemon restarts from it with nothing acknowledged lost (empty = in-memory only)")
		fsyncPol = flag.String("fsync", "batch", "WAL fsync policy when -data-dir is set: sync (fsync per write), batch (group commit), interval (timer-based, may lose the last interval on power loss)")
		window   = flag.Int("submit-window", core.DefaultSubmitWindow, "master submit pipeline depth (positions in flight per group; 1 = serial)")
		combine  = flag.Int("submit-combine", core.DefaultSubmitCombine, "max transactions combined per log entry on the master submit path")
		subQueue = flag.Int("submit-queue", core.DefaultSubmitQueue, "per-group submit admission cap: beyond this queue depth new submits fail fast with the retryable 'overloaded' marker (negative = unbounded)")
		lease    = flag.Duration("lease", 0, "master lease duration for epoch-fenced mastership (0 = 4x timeout)")
		groups   = flag.Int("groups", 0, "pre-open this many sharded transaction groups (g0..gN-1) at startup; 0 opens groups lazily on first traffic")
	)
	flag.Parse()
	if *dc == "" || *peers == "" {
		flag.Usage()
		os.Exit(2)
	}
	peerMap, err := parsePeers(*peers)
	if err != nil {
		log.Fatalf("txkvd: %v", err)
	}
	if _, ok := peerMap[*dc]; !ok {
		log.Fatalf("txkvd: peer list must include this datacenter %q", *dc)
	}

	store := kvstore.New()
	if *dataDir != "" {
		policy, err := disk.ParsePolicy(*fsyncPol)
		if err != nil {
			log.Fatalf("txkvd: %v", err)
		}
		// disk.Open replays the WAL tail over the newest snapshot and logs a
		// "disk: recovered ..." line (docs/OPERATIONS.md explains the fields).
		// Everything above the store — acceptor promises, log entries, applied
		// watermarks, epochs — lives in store rows, so recovering the store
		// recovers the whole replica.
		var engine *disk.Engine
		store, engine, err = disk.Open(*dataDir, disk.Options{
			Fsync: policy,
			Logf:  log.Printf,
			// Background scrub: re-verify sealed segments and snapshots
			// every 10 minutes so bit rot is a health alert (GroupStatus
			// fault/scrub fields, txkvctl status), not a surprise at the
			// next recovery.
			ScrubInterval: 10 * time.Minute,
			// A fail-stopped engine is an operator event, not a log whisper:
			// the engine already prints its two ERROR lines, this adds the
			// daemon-level alert with the operational next step.
			OnFail: func(err error) {
				log.Printf("txkvd: ERROR: STORAGE ENGINE FAILED (fail-stop): %v", err)
				log.Printf("txkvd: ERROR: this replica refuses all mutations with %q; clients fail over once the lease lapses — replace the disk and restart", core.ErrReplicaFailed)
			},
		})
		if err != nil {
			log.Fatalf("txkvd: %v", err)
		}
		if ferr := engine.Fault(); ferr != nil {
			// Refuse to serve on storage that is already dead: a daemon that
			// came up poisoned would answer reads while silently refusing
			// every write. Exit non-zero so supervisors see the failure.
			store.Close()
			log.Fatalf("txkvd: storage engine poisoned at startup: %v", ferr)
		}
		log.Printf("txkvd: %d rows recovered from %s (fsync=%s)", store.Len(), *dataDir, policy)
	}
	// Two-phase wiring: the UDP transport needs the handler, and the
	// service needs the transport (for catch-up). The async registration
	// keeps the UDP read loop non-blocking: requests run on the service's
	// sharded dispatch workers and submits hold no goroutine while their
	// position replicates (DESIGN.md §13).
	var service *core.Service
	transport, err := network.NewUDPAsync(*dc, *bind, peerMap, func(from string, req network.Message, reply func(network.Message)) {
		service.AsyncHandler()(from, req, reply)
	})
	if err != nil {
		log.Fatalf("txkvd: %v", err)
	}
	opts := []core.ServiceOption{
		core.WithServiceTimeout(*timeout),
		core.WithSubmitWindow(*window), core.WithSubmitCombine(*combine),
		core.WithSubmitQueue(*subQueue),
	}
	if *lease > 0 {
		opts = append(opts, core.WithLeaseDuration(*lease))
	}
	service = core.NewService(*dc, store, transport, opts...)
	if *groups > 0 {
		// Pre-open the placement's group logs: recovery state is rebuilt now
		// rather than on first traffic, and status/discovery reports the full
		// group set immediately (DESIGN.md §12).
		service.EnsureGroups(placement.GroupNames(*groups)...)
		log.Printf("txkvd: serving %d sharded groups (%s..%s)",
			*groups, placement.GroupNames(*groups)[0], placement.GroupNames(*groups)[*groups-1])
	}

	log.Printf("txkvd: datacenter %s serving on %s (%d peers, timeout %v)",
		*dc, transport.LocalAddr(), len(peerMap), *timeout)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("txkvd: shutting down")
	transport.Close()
	service.Close()
	// Closing the store flushes and fsyncs the engine's queue; with -data-dir
	// every acknowledged write is already durable per the fsync policy, so a
	// clean shutdown and a kill -9 recover identically (minus the unflushed
	// tail under -fsync interval).
	store.Close()
	if *dataDir != "" {
		log.Printf("txkvd: state durable in %s", *dataDir)
	}
	time.Sleep(50 * time.Millisecond)
}

func parsePeers(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, part := range splitNonEmpty(s, ',') {
		kv := splitNonEmpty(part, '=')
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q (want name=addr)", part)
		}
		out[kv[0]] = kv[1]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty peer list")
	}
	return out, nil
}

func splitNonEmpty(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == sep {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
