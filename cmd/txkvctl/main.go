// Command txkvctl is a client for a txkvd cluster: it executes transactions
// over UDP against the multi-datacenter datastore.
//
// Usage (against the txkvd example deployment):
//
//	txkvctl -local V1 -peers V1=127.0.0.1:7001,V2=127.0.0.1:7002,V3=127.0.0.1:7003 get mykey
//	txkvctl -local V1 -peers ... set mykey hello
//	txkvctl -local V1 -peers ... -protocol cp txn "get a" "set b 1" "get c"
//	txkvctl -local V1 -peers ... status
//
// Subcommands:
//
//	get KEY...         read keys (read-only transaction; several keys are
//	                   fetched in one batched round trip at one snapshot)
//	set KEY VALUE      write one key (read/write transaction)
//	txn OP...          run a multi-operation transaction; each OP is
//	                   "get KEY" or "set KEY VALUE"
//	status             print every replica's view of the group (applied and
//	                   compaction horizons, log/data sizes, computed leader,
//	                   and the full group set the replica serves)
//	compact HORIZON    scavenge log state below HORIZON on every replica
//
// With -groups N the keyspace is sharded over N transaction groups
// (g0..gN-1, DESIGN.md §12) and get/set route each key to its owning group
// through the same rendezvous placement every other process computes: get
// fans out one batched read per owning group (per-group snapshot positions
// are printed), set commits on the key's owning group, -protocol master
// spreads per-group masterships across the sorted peer list, and status
// probes the first placement group (its reply lists every group the replica
// serves). txn and compact stay group-scoped: cross-group transactions do
// not exist in the data model (§2.1), and group logs have independent
// compaction horizons — use -group for both.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"paxoscp/internal/core"
	"paxoscp/internal/network"
	"paxoscp/internal/placement"
	"paxoscp/internal/stats"
)

func main() {
	var (
		local    = flag.String("local", "", "local datacenter name (required)")
		peers    = flag.String("peers", "", "comma-separated name=addr peer list (required)")
		group    = flag.String("group", "default", "transaction group key (single-group mode)")
		groups   = flag.Int("groups", 0, "shard the keyspace over N groups (g0..gN-1) and route get/set by key; 0 = single-group mode")
		protocol = flag.String("protocol", "cp", "commit protocol: basic | cp | master")
		masterDC = flag.String("master", "", "master datacenter for -protocol master (default: first peer)")
		clientID = flag.Int("id", os.Getpid()%10000, "unique client id")
		timeout  = flag.Duration("timeout", network.DefaultTimeout, "message timeout")
	)
	flag.Parse()
	args := flag.Args()
	if *local == "" || *peers == "" || len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	peerMap := map[string]string{}
	for _, part := range strings.Split(*peers, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			log.Fatalf("txkvctl: bad peer entry %q", part)
		}
		peerMap[kv[0]] = kv[1]
	}

	transport, err := network.NewUDP(fmt.Sprintf("%s-client-%d", *local, *clientID),
		"127.0.0.1:0", peerMap, func(string, network.Message) network.Message {
			return network.Status(false, "client endpoint")
		})
	if err != nil {
		log.Fatalf("txkvctl: %v", err)
	}
	defer transport.Close()

	cfg := core.Config{Timeout: *timeout}
	var place *placement.Placement
	if *groups > 0 {
		place = placement.NewN(*groups)
	}
	switch strings.ToLower(*protocol) {
	case "basic":
	case "cp":
		cfg.Protocol = core.CP
	case "master":
		cfg.Protocol = core.Master
		cfg.MasterDC = *masterDC
		if place != nil && *masterDC == "" {
			// Routed mode spreads per-group masterships across the sorted
			// peer list, the same deterministic spread every routed client
			// computes (DESIGN.md §12).
			dcs := make([]string, 0, len(peerMap))
			for name := range peerMap {
				dcs = append(dcs, name)
			}
			sort.Strings(dcs)
			cfg.MasterFor = func(group string) string {
				if i := place.IndexOf(group); i >= 0 {
					return dcs[i%len(dcs)]
				}
				return ""
			}
		}
	default:
		log.Fatalf("txkvctl: unknown protocol %q (basic | cp | master)", *protocol)
	}
	client := core.NewClient(*clientID, *local, transport, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	switch args[0] {
	case "get":
		if len(args) < 2 {
			log.Fatal("txkvctl: get KEY...")
		}
		if place != nil {
			runRoutedGet(ctx, core.NewKV(client, place), args[1:])
			return
		}
		runGet(ctx, client, *group, args[1:])
	case "set":
		if len(args) != 3 {
			log.Fatal("txkvctl: set KEY VALUE")
		}
		if place != nil {
			runRoutedSet(ctx, core.NewKV(client, place), args[1], args[2])
			return
		}
		runTxn(ctx, client, *group, []string{"set " + args[1] + " " + args[2]})
	case "txn":
		runTxn(ctx, client, *group, args[1:])
	case "status":
		// In routed mode, probe a real placement group: querying the
		// single-group default would lazily materialize a phantom "default"
		// group on every replica and pollute the discovery output.
		statusGroup := *group
		if place != nil {
			statusGroup = place.Groups()[0]
		}
		for name := range peerMap {
			cctx, cancel := context.WithTimeout(ctx, *timeout)
			resp, err := transport.Send(cctx, name, network.Message{Kind: network.KindStats, Group: statusGroup})
			cancel()
			if err != nil || !resp.OK {
				fmt.Printf("%-6s unreachable (%v%s)\n", name, err, resp.Err)
				continue
			}
			st, err := core.ParseGroupStatus(resp.Payload)
			if err != nil {
				log.Fatalf("txkvctl: bad status payload: %v", err)
			}
			lease := ""
			if st.Master != "" {
				lease = fmt.Sprintf(" epoch=%d master=%s lease=%v", st.Epoch, st.Master, st.LeaseValid)
			}
			discovered := ""
			if len(st.Groups) > 1 {
				discovered = fmt.Sprintf(" groups=%d[%s]", len(st.Groups), strings.Join(st.Groups, ","))
			}
			// Engine health: a faulted replica serves reads but refuses
			// every mutation (fail-stop); scrub findings are rot detected
			// in sealed files that recovery would otherwise hit first.
			health := ""
			if st.Fault != "" {
				health = fmt.Sprintf(" FAULT=%q", st.Fault)
			}
			if len(st.ScrubCorrupt) > 0 {
				health += fmt.Sprintf(" SCRUB-CORRUPT=[%s]", strings.Join(st.ScrubCorrupt, ","))
			} else if st.ScrubRuns > 0 {
				health += fmt.Sprintf(" scrubs=%d", st.ScrubRuns)
			}
			fmt.Printf("%-6s applied=%-6d compacted=%-6d logEntries=%-6d dataKeys=%-6d leader=%s%s%s%s\n",
				st.DC, st.LastApplied, st.CompactedTo, st.LogEntries, st.DataKeys, st.Leader, lease, discovered, health)
		}
	case "compact":
		if len(args) != 2 {
			log.Fatal("txkvctl: compact HORIZON")
		}
		if place != nil {
			// Group logs have independent heights, so one horizon cannot
			// apply across a sharded deployment; compaction stays group-
			// scoped (and must not materialize the single-group default).
			log.Fatal("txkvctl: compact is group-scoped; use -group GROUP (without -groups)")
		}
		horizon, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			log.Fatalf("txkvctl: bad horizon %q", args[1])
		}
		for name := range peerMap {
			cctx, cancel := context.WithTimeout(ctx, *timeout)
			resp, err := transport.Send(cctx, name, network.Message{
				Kind: network.KindCompact, Group: *group, TS: horizon,
			})
			cancel()
			if err != nil || !resp.OK {
				fmt.Printf("%-6s compact failed (%v%s)\n", name, err, resp.Err)
				continue
			}
			fmt.Printf("%-6s compacted to %d\n", name, resp.TS)
		}
	default:
		log.Fatalf("txkvctl: unknown subcommand %q", args[0])
	}
}

// runRoutedGet reads keys across their owning groups: one batched read per
// group, concurrent legs, results in input order with the per-group
// snapshot positions printed.
func runRoutedGet(ctx context.Context, kv *core.KV, keys []string) {
	res, err := kv.ReadMulti(ctx, keys...)
	if err != nil {
		log.Fatalf("txkvctl: read: %v", err)
	}
	for i, k := range keys {
		group := kv.Router().GroupFor(k)
		if res.Founds[i] {
			fmt.Printf("%s = %q (group %s)\n", k, res.Vals[i], group)
		} else {
			fmt.Printf("%s = (unset) (group %s)\n", k, group)
		}
	}
	groups := make([]string, 0, len(res.Positions))
	for g := range res.Positions {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		fmt.Printf("group %s read position %d\n", g, res.Positions[g])
	}
}

// runRoutedSet writes one key on its owning group.
func runRoutedSet(ctx context.Context, kv *core.KV, key, value string) {
	group := kv.Router().GroupFor(key)
	res, err := kv.Put(ctx, key, value)
	if err != nil {
		log.Fatalf("txkvctl: set %q: %v", key, err)
	}
	switch res.Status {
	case stats.Committed:
		fmt.Printf("committed at %s/%d (round %d, %.0fms)\n",
			group, res.Pos, res.Round, float64(res.Latency)/float64(time.Millisecond))
	default:
		fmt.Printf("%s on group %s after %.0fms\n",
			res.Status, group, float64(res.Latency)/float64(time.Millisecond))
		os.Exit(1)
	}
}

// runGet reads one or more keys in a single read-only transaction; multiple
// keys travel as one batched ReadMulti round trip served at one snapshot.
func runGet(ctx context.Context, client *core.Client, group string, keys []string) {
	tx, err := client.Begin(ctx, group)
	if err != nil {
		log.Fatalf("txkvctl: begin: %v", err)
	}
	vals, found, err := tx.ReadMulti(ctx, keys...)
	if err != nil {
		log.Fatalf("txkvctl: read: %v", err)
	}
	for i, k := range keys {
		if found[i] {
			fmt.Printf("%s = %q\n", k, vals[i])
		} else {
			fmt.Printf("%s = (unset)\n", k)
		}
	}
	fmt.Printf("read position %d\n", tx.ReadPos())
}

func runTxn(ctx context.Context, client *core.Client, group string, ops []string) {
	tx, err := client.Begin(ctx, group)
	if err != nil {
		log.Fatalf("txkvctl: begin: %v", err)
	}
	for _, op := range ops {
		fields := strings.Fields(op)
		switch {
		case len(fields) == 2 && fields[0] == "get":
			v, found, err := tx.Read(ctx, fields[1])
			if err != nil {
				log.Fatalf("txkvctl: read %q: %v", fields[1], err)
			}
			if found {
				fmt.Printf("%s = %q\n", fields[1], v)
			} else {
				fmt.Printf("%s = (unset)\n", fields[1])
			}
		case len(fields) >= 3 && fields[0] == "set":
			tx.Write(fields[1], strings.Join(fields[2:], " "))
		default:
			log.Fatalf("txkvctl: bad operation %q (want \"get KEY\" or \"set KEY VALUE\")", op)
		}
	}
	res, err := tx.Commit(ctx)
	if err != nil {
		log.Fatalf("txkvctl: commit: %v", err)
	}
	switch res.Status {
	case stats.Committed:
		fmt.Printf("committed at position %d (round %d, %.0fms)\n",
			res.Pos, res.Round, float64(res.Latency)/float64(time.Millisecond))
	default:
		fmt.Printf("%s after %.0fms (round %d)\n",
			res.Status, float64(res.Latency)/float64(time.Millisecond), res.Round)
		os.Exit(1)
	}
}
