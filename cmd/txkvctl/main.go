// Command txkvctl is a client for a txkvd cluster: it executes transactions
// over UDP against the multi-datacenter datastore.
//
// Usage (against the txkvd example deployment):
//
//	txkvctl -local V1 -peers V1=127.0.0.1:7001,V2=127.0.0.1:7002,V3=127.0.0.1:7003 get mykey
//	txkvctl -local V1 -peers ... set mykey hello
//	txkvctl -local V1 -peers ... -protocol cp txn "get a" "set b 1" "get c"
//	txkvctl -local V1 -peers ... status
//
// Subcommands:
//
//	get KEY...         read keys (read-only transaction; several keys are
//	                   fetched in one batched round trip at one snapshot)
//	set KEY VALUE      write one key (read/write transaction)
//	txn OP...          run a multi-operation transaction; each OP is
//	                   "get KEY" or "set KEY VALUE"
//	scan PREFIX        ordered range scan: every key with the prefix, in key
//	                   order, at one snapshot per group (DESIGN.md §16). With
//	                   -groups it merges one scan per owning group and follows
//	                   live-migration hints; without, it pages one group
//	                   (-group) directly
//	status             print every replica's view of the group (applied and
//	                   compaction horizons, log/data sizes, computed leader,
//	                   and the full group set the replica serves)
//	compact HORIZON    scavenge log state below HORIZON on every replica
//	grow TARGET        rescale a -groups deployment online to TARGET groups:
//	                   drives the live-migration coordinator (DESIGN.md §15)
//	                   against the daemons — backfill, delta rounds, fenced
//	                   cutover per range — printing each handoff as it
//	                   commits; afterwards invoke clients with -groups TARGET
//	migrations         print every group's applied handoff records (the
//	                   operator-facing migration status), one group per line
//
// With -groups N the keyspace is sharded over N transaction groups
// (g0..gN-1, DESIGN.md §12) and get/set route each key to its owning group
// through the same rendezvous placement every other process computes: get
// fans out one batched read per owning group (per-group snapshot positions
// are printed), set commits on the key's owning group, -protocol master
// spreads per-group masterships across the sorted peer list, and status
// probes the first placement group (its reply lists every group the replica
// serves). grow and migrations also require -groups: -groups names the
// current placement, grow's TARGET the new one. txn and compact stay
// group-scoped: cross-group transactions do not exist in the data model
// (§2.1), and group logs have independent compaction horizons — use -group
// for both.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"paxoscp/internal/core"
	"paxoscp/internal/network"
	"paxoscp/internal/placement"
	"paxoscp/internal/stats"
	"paxoscp/internal/wal"
)

func main() {
	var (
		local    = flag.String("local", "", "local datacenter name (required)")
		peers    = flag.String("peers", "", "comma-separated name=addr peer list (required)")
		group    = flag.String("group", "default", "transaction group key (single-group mode)")
		groups   = flag.Int("groups", 0, "shard the keyspace over N groups (g0..gN-1) and route get/set by key; 0 = single-group mode")
		protocol = flag.String("protocol", "cp", "commit protocol: basic | cp | master")
		masterDC = flag.String("master", "", "master datacenter for -protocol master (default: first peer)")
		clientID = flag.Int("id", os.Getpid()%10000, "unique client id")
		timeout  = flag.Duration("timeout", network.DefaultTimeout, "message timeout")
	)
	flag.Parse()
	args := flag.Args()
	if *local == "" || *peers == "" || len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	peerMap := map[string]string{}
	for _, part := range strings.Split(*peers, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			log.Fatalf("txkvctl: bad peer entry %q", part)
		}
		peerMap[kv[0]] = kv[1]
	}
	// The sorted peer list is the deterministic datacenter order every routed
	// client computes master spreads over (DESIGN.md §12); grow seeds the
	// migration coordinator's master lookups from the same order.
	dcs := make([]string, 0, len(peerMap))
	for name := range peerMap {
		dcs = append(dcs, name)
	}
	sort.Strings(dcs)

	transport, err := network.NewUDP(fmt.Sprintf("%s-client-%d", *local, *clientID),
		"127.0.0.1:0", peerMap, func(string, network.Message) network.Message {
			return network.Status(false, "client endpoint")
		})
	if err != nil {
		log.Fatalf("txkvctl: %v", err)
	}
	defer transport.Close()

	cfg := core.Config{Timeout: *timeout}
	var place *placement.Placement
	if *groups > 0 {
		place = placement.NewN(*groups)
	}
	switch strings.ToLower(*protocol) {
	case "basic":
	case "cp":
		cfg.Protocol = core.CP
	case "master":
		cfg.Protocol = core.Master
		cfg.MasterDC = *masterDC
		if place != nil && *masterDC == "" {
			// Routed mode spreads per-group masterships across the sorted
			// peer list, the same deterministic spread every routed client
			// computes (DESIGN.md §12).
			cfg.MasterFor = func(group string) string {
				if i := place.IndexOf(group); i >= 0 {
					return dcs[i%len(dcs)]
				}
				return ""
			}
		}
	default:
		log.Fatalf("txkvctl: unknown protocol %q (basic | cp | master)", *protocol)
	}
	client := core.NewClient(*clientID, *local, transport, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	switch args[0] {
	case "get":
		if len(args) < 2 {
			log.Fatal("txkvctl: get KEY...")
		}
		if place != nil {
			runRoutedGet(ctx, core.NewKV(client, place), args[1:])
			return
		}
		runGet(ctx, client, *group, args[1:])
	case "set":
		if len(args) != 3 {
			log.Fatal("txkvctl: set KEY VALUE")
		}
		if place != nil {
			runRoutedSet(ctx, core.NewKV(client, place), args[1], args[2])
			return
		}
		runTxn(ctx, client, *group, []string{"set " + args[1] + " " + args[2]})
	case "txn":
		runTxn(ctx, client, *group, args[1:])
	case "scan":
		if len(args) != 2 {
			log.Fatal("txkvctl: scan PREFIX")
		}
		if place != nil {
			runRoutedScan(ctx, core.NewKV(client, place), args[1])
			return
		}
		runScan(ctx, client, *group, args[1])
	case "status":
		// In routed mode, probe a real placement group: querying the
		// single-group default would lazily materialize a phantom "default"
		// group on every replica and pollute the discovery output.
		statusGroup := *group
		if place != nil {
			statusGroup = place.Groups()[0]
		}
		for name := range peerMap {
			cctx, cancel := context.WithTimeout(ctx, *timeout)
			resp, err := transport.Send(cctx, name, network.Message{Kind: network.KindStats, Group: statusGroup})
			cancel()
			if err != nil || !resp.OK {
				fmt.Printf("%-6s unreachable (%v%s)\n", name, err, resp.Err)
				continue
			}
			st, err := core.ParseGroupStatus(resp.Payload)
			if err != nil {
				log.Fatalf("txkvctl: bad status payload: %v", err)
			}
			lease := ""
			if st.Master != "" {
				lease = fmt.Sprintf(" epoch=%d master=%s lease=%v", st.Epoch, st.Master, st.LeaseValid)
			}
			discovered := ""
			if len(st.Groups) > 1 {
				discovered = fmt.Sprintf(" groups=%d[%s]", len(st.Groups), strings.Join(st.Groups, ","))
			}
			// Engine health: a faulted replica serves reads but refuses
			// every mutation (fail-stop); scrub findings are rot detected
			// in sealed files that recovery would otherwise hit first.
			// Applied handoff records mean the group has migrated ranges in
			// or out; the migrations subcommand prints the full records.
			migs := ""
			if len(st.Migrations) > 0 {
				migs = fmt.Sprintf(" migrations=%d", len(st.Migrations))
			}
			health := ""
			if st.Fault != "" {
				health = fmt.Sprintf(" FAULT=%q", st.Fault)
			}
			if len(st.ScrubCorrupt) > 0 {
				health += fmt.Sprintf(" SCRUB-CORRUPT=[%s]", strings.Join(st.ScrubCorrupt, ","))
			} else if st.ScrubRuns > 0 {
				health += fmt.Sprintf(" scrubs=%d", st.ScrubRuns)
			}
			fmt.Printf("%-6s applied=%-6d compacted=%-6d logEntries=%-6d dataKeys=%-6d leader=%s%s%s%s%s\n",
				st.DC, st.LastApplied, st.CompactedTo, st.LogEntries, st.DataKeys, st.Leader, lease, discovered, migs, health)
		}
	case "grow":
		if place == nil {
			log.Fatal("txkvctl: grow requires -groups N (the current group count)")
		}
		if len(args) != 2 {
			log.Fatal("txkvctl: grow TARGET")
		}
		target, err := strconv.Atoi(args[1])
		if err != nil || target <= 0 {
			log.Fatalf("txkvctl: bad target group count %q", args[1])
		}
		runGrow(place, target, dcs, transport, *timeout)
	case "migrations":
		if place == nil {
			log.Fatal("txkvctl: migrations requires -groups N")
		}
		runMigrations(ctx, transport, dcs, place, *timeout)
	case "compact":
		if len(args) != 2 {
			log.Fatal("txkvctl: compact HORIZON")
		}
		if place != nil {
			// Group logs have independent heights, so one horizon cannot
			// apply across a sharded deployment; compaction stays group-
			// scoped (and must not materialize the single-group default).
			log.Fatal("txkvctl: compact is group-scoped; use -group GROUP (without -groups)")
		}
		horizon, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			log.Fatalf("txkvctl: bad horizon %q", args[1])
		}
		for name := range peerMap {
			cctx, cancel := context.WithTimeout(ctx, *timeout)
			resp, err := transport.Send(cctx, name, network.Message{
				Kind: network.KindCompact, Group: *group, TS: horizon,
			})
			cancel()
			if err != nil || !resp.OK {
				fmt.Printf("%-6s compact failed (%v%s)\n", name, err, resp.Err)
				continue
			}
			fmt.Printf("%-6s compacted to %d\n", name, resp.TS)
		}
	default:
		log.Fatalf("txkvctl: unknown subcommand %q", args[0])
	}
}

// runGrow rescales a sharded deployment online (DESIGN.md §15): it drives
// the live-migration coordinator against the daemons, one growth step per
// added group — snapshot backfill at a pinned position, delta rounds, then
// the four fenced handoff entries per (from → added) range — printing each
// handoff as it commits. Routing is client-side, so the grow changes no
// daemon configuration: once it completes, clients invoked with -groups
// TARGET route through the new placement, and stragglers still passing the
// old count are redirected by the protocol's "moved" verdicts.
func runGrow(place *placement.Placement, target int, dcs []string, transport network.Transport, timeout time.Duration) {
	have := len(place.Groups())
	if target <= have {
		log.Fatalf("txkvctl: grow to %d groups: already have %d", target, have)
	}
	extras := placement.GroupNames(target)[have:]
	// A grow is long-running by design: backfill is paced by range size, and
	// the coordinator stalls through fault windows instead of aborting.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	for _, step := range place.Plan(extras...) {
		step := step
		fmt.Printf("step %s: migrating %d ranges\n", step.Added, len(step.Pairs))
		mig := &core.Migrator{
			Transport: transport,
			Timeout:   timeout,
			// Seed master lookups from the post-step spread over the sorted
			// peer list — the spread routed clients will compute once they
			// adopt the grown placement. A stale seed only costs redirect
			// hops: the coordinator follows "not master" hints.
			MasterFor: func(group string) string {
				if i := step.To.IndexOf(group); i >= 0 {
					return dcs[i%len(dcs)]
				}
				return ""
			},
			OnPhase: func(h wal.Handoff, pos int64) {
				fmt.Printf("  %-9s %s->%s v%d @%d\n", h.Phase, h.From, h.To, h.Version, pos)
			},
		}
		if err := mig.Step(ctx, step); err != nil {
			log.Fatalf("txkvctl: grow step %s: %v", step.Added, err)
		}
	}
	fmt.Printf("grown to %d groups; invoke clients with -groups %d\n", target, target)
}

// runMigrations prints every placement group's applied handoff records — the
// operator-facing live-migration status — as served by the first reachable
// replica per group (the records are replicated log contents, identical on
// every caught-up replica).
func runMigrations(ctx context.Context, transport network.Transport, dcs []string, place *placement.Placement, timeout time.Duration) {
	for _, g := range place.Groups() {
		line := "(no replica reachable)"
		for _, dc := range dcs {
			cctx, cancel := context.WithTimeout(ctx, timeout)
			resp, err := transport.Send(cctx, dc, network.Message{Kind: network.KindStats, Group: g})
			cancel()
			if err != nil || !resp.OK {
				continue
			}
			st, perr := core.ParseGroupStatus(resp.Payload)
			if perr != nil {
				log.Fatalf("txkvctl: bad status payload: %v", perr)
			}
			if len(st.Migrations) == 0 {
				line = "(none)"
			} else {
				line = strings.Join(st.Migrations, "; ")
			}
			line += fmt.Sprintf("  [from %s]", dc)
			break
		}
		fmt.Printf("%-5s %s\n", g, line)
	}
}

// runRoutedGet reads keys across their owning groups: one batched read per
// group, concurrent legs, results in input order with the per-group
// snapshot positions printed.
func runRoutedGet(ctx context.Context, kv *core.KV, keys []string) {
	res, err := kv.ReadMulti(ctx, keys...)
	if err != nil {
		log.Fatalf("txkvctl: read: %v", err)
	}
	for i, k := range keys {
		group := kv.Router().GroupFor(k)
		if res.Founds[i] {
			fmt.Printf("%s = %q (group %s)\n", k, res.Vals[i], group)
		} else {
			fmt.Printf("%s = (unset) (group %s)\n", k, group)
		}
	}
	groups := make([]string, 0, len(res.Positions))
	for g := range res.Positions {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		fmt.Printf("group %s read position %d\n", g, res.Positions[g])
	}
}

// runRoutedSet writes one key on its owning group.
func runRoutedSet(ctx context.Context, kv *core.KV, key, value string) {
	group := kv.Router().GroupFor(key)
	res, err := kv.Put(ctx, key, value)
	if err != nil {
		log.Fatalf("txkvctl: set %q: %v", key, err)
	}
	switch res.Status {
	case stats.Committed:
		fmt.Printf("committed at %s/%d (round %d, %.0fms)\n",
			group, res.Pos, res.Round, float64(res.Latency)/float64(time.Millisecond))
	default:
		fmt.Printf("%s on group %s after %.0fms\n",
			res.Status, group, float64(res.Latency)/float64(time.Millisecond))
		os.Exit(1)
	}
}

// runRoutedScan reads every key with the prefix across its owning groups:
// one ordered scan per group merged into one ascending key order, following
// migration hints so the scan stays complete during a live grow.
func runRoutedScan(ctx context.Context, kv *core.KV, prefix string) {
	res, err := kv.Scan(ctx, prefix)
	if err != nil {
		log.Fatalf("txkvctl: scan %q: %v", prefix, err)
	}
	for _, e := range res.Entries {
		fmt.Printf("%s = %q\n", e.Key, e.Value)
	}
	groups := make([]string, 0, len(res.Positions))
	for g := range res.Positions {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		fmt.Printf("group %s scan position %d\n", g, res.Positions[g])
	}
	fmt.Printf("%d keys\n", len(res.Entries))
}

// runScan pages one group's prefix region in a read-only transaction: every
// page is served at the transaction's read position, so the whole scan is one
// snapshot.
func runScan(ctx context.Context, client *core.Client, group, prefix string) {
	tx, err := client.Begin(ctx, group)
	if err != nil {
		log.Fatalf("txkvctl: begin: %v", err)
	}
	defer tx.Abort()
	sc := tx.Scan(prefix)
	n := 0
	for sc.Next(ctx) {
		fmt.Printf("%s = %q\n", sc.Key(), sc.Value())
		n++
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("txkvctl: scan %q: %v", prefix, err)
	}
	fmt.Printf("%d keys at read position %d\n", n, tx.ReadPos())
}

// runGet reads one or more keys in a single read-only transaction; multiple
// keys travel as one batched ReadMulti round trip served at one snapshot.
func runGet(ctx context.Context, client *core.Client, group string, keys []string) {
	tx, err := client.Begin(ctx, group)
	if err != nil {
		log.Fatalf("txkvctl: begin: %v", err)
	}
	vals, found, err := tx.ReadMulti(ctx, keys...)
	if err != nil {
		log.Fatalf("txkvctl: read: %v", err)
	}
	for i, k := range keys {
		if found[i] {
			fmt.Printf("%s = %q\n", k, vals[i])
		} else {
			fmt.Printf("%s = (unset)\n", k)
		}
	}
	fmt.Printf("read position %d\n", tx.ReadPos())
}

func runTxn(ctx context.Context, client *core.Client, group string, ops []string) {
	tx, err := client.Begin(ctx, group)
	if err != nil {
		log.Fatalf("txkvctl: begin: %v", err)
	}
	for _, op := range ops {
		fields := strings.Fields(op)
		switch {
		case len(fields) == 2 && fields[0] == "get":
			v, found, err := tx.Read(ctx, fields[1])
			if err != nil {
				log.Fatalf("txkvctl: read %q: %v", fields[1], err)
			}
			if found {
				fmt.Printf("%s = %q\n", fields[1], v)
			} else {
				fmt.Printf("%s = (unset)\n", fields[1])
			}
		case len(fields) >= 3 && fields[0] == "set":
			tx.Write(fields[1], strings.Join(fields[2:], " "))
		default:
			log.Fatalf("txkvctl: bad operation %q (want \"get KEY\" or \"set KEY VALUE\")", op)
		}
	}
	res, err := tx.Commit(ctx)
	if err != nil {
		log.Fatalf("txkvctl: commit: %v", err)
	}
	switch res.Status {
	case stats.Committed:
		fmt.Printf("committed at position %d (round %d, %.0fms)\n",
			res.Pos, res.Round, float64(res.Latency)/float64(time.Millisecond))
	default:
		fmt.Printf("%s after %.0fms (round %d)\n",
			res.Status, float64(res.Latency)/float64(time.Millisecond), res.Round)
		os.Exit(1)
	}
}
