package paxoscp

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestMarkdownLinks is the documentation link check the lint job runs: every
// markdown link in the user-facing docs must resolve — relative file targets
// must exist, and intra-document anchors must match a heading (GitHub-style
// slugs). External http(s) links are not fetched (CI must not depend on the
// network); they are only checked for obvious malformation.
func TestMarkdownLinks(t *testing.T) {
	docs := []string{"README.md", "DESIGN.md", "docs/OPERATIONS.md", "examples/README.md", "CHANGES.md", "ROADMAP.md"}
	for _, doc := range docs {
		doc := doc
		t.Run(doc, func(t *testing.T) {
			data, err := os.ReadFile(doc)
			if err != nil {
				t.Fatalf("doc missing: %v", err)
			}
			for _, link := range markdownLinks(string(data)) {
				if err := checkLink(doc, link); err != nil {
					t.Errorf("%s: link %q: %v", doc, link, err)
				}
			}
		})
	}
}

var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// markdownLinks extracts every inline link target, skipping fenced code
// blocks (tables and shell snippets contain parens that are not links).
func markdownLinks(src string) []string {
	var out []string
	inFence := false
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			out = append(out, m[1])
		}
	}
	return out
}

func checkLink(doc, link string) error {
	switch {
	case strings.HasPrefix(link, "http://"), strings.HasPrefix(link, "https://"), strings.HasPrefix(link, "mailto:"):
		if strings.ContainsAny(link, " <>") {
			return fmt.Errorf("malformed external link")
		}
		return nil
	}
	target, frag, _ := strings.Cut(link, "#")
	base := filepath.Dir(doc)
	path := doc // fragment-only link: anchor in the same document
	if target != "" {
		path = filepath.Join(base, target)
		if _, err := os.Stat(path); err != nil {
			return fmt.Errorf("target does not exist: %v", err)
		}
	}
	if frag == "" {
		return nil
	}
	if !strings.HasSuffix(path, ".md") {
		return nil // anchors into non-markdown targets are not checked
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for _, h := range headingSlugs(string(data)) {
		if h == frag {
			return nil
		}
	}
	return fmt.Errorf("no heading with anchor %q in %s", frag, path)
}

// headingSlugs returns the GitHub-style anchor slug of every heading:
// lowercase, spaces to dashes, punctuation (except dashes/underscores)
// dropped.
func headingSlugs(src string) []string {
	var out []string
	inFence := false
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimSpace(strings.TrimLeft(line, "#"))
		var b strings.Builder
		for _, r := range strings.ToLower(text) {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
				b.WriteRune(r)
			case r == ' ':
				b.WriteByte('-')
			}
		}
		out = append(out, b.String())
	}
	return out
}
