// Package placement deterministically shards the keyspace over transaction
// groups (DESIGN.md §12).
//
// The paper's data model (§2.1) makes the transaction group the unit of
// serializability precisely so that independent groups scale independently;
// this package supplies the missing map from keys to groups. A Placement is
// a fixed list of group names plus rendezvous (highest-random-weight)
// hashing: every process that constructs the same group list routes every
// key identically, with no coordination, no lookup service, and no state.
// Explicit per-key pins override the hash for the paper examples' semantic
// groups.
//
// Rendezvous hashing was chosen over consistent-hash rings for its exact
// minimal-movement property: growing N groups to N+1 moves only the keys the
// new group wins (expected 1/(N+1) of the keyspace) and never moves a key
// between two surviving groups. The property tests pin determinism (golden
// vector), unique ownership, balance (max/min group load ≤ 1.3 over 100k
// keys), and minimal movement.
//
// Layering: placement is a leaf package (it imports nothing of the system).
// internal/core's routed KV facade consumes it through the core.Router
// interface; internal/cluster builds one per cluster from Config.Groups and
// spreads per-group masters across datacenters with it.
package placement
