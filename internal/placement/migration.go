package placement

// This file is the placement side of live shard migration (DESIGN.md §15):
// versioned placements, the step plan a grow decomposes into, and the
// MoveSet predicate every layer uses to decide whether a key belongs to a
// moving range. All of it is pure computation over the rendezvous hash, so
// the migration coordinator, every replica's apply loop, and the offline
// history checker derive identical range membership from the same inputs.

// Version identifies a placement's position in the growth sequence: the
// group count, which is monotone under Grow. Two processes holding
// placements of equal version over the same group list route identically.
func (p *Placement) Version() int64 { return int64(len(p.groups)) }

// Pair names one range migration: the keys that leave From for To when To's
// growth step applies. Rendezvous hashing moves keys only INTO the added
// group, so within one step every pair's To is the step's new group.
type Pair struct {
	From, To string
}

// Step is one single-group growth increment of a migration plan.
type Step struct {
	// Added is the group this step introduces.
	Added string
	// To is the placement after the step (version = previous version + 1).
	To *Placement
	// Pairs lists one migration per pre-existing group, in placement order.
	// Every pre-existing group gets a pair even if it currently stores no
	// moving rows: the range is defined by the hash, not by extant rows, and
	// the cutover entries must fence future writes of never-written keys too.
	Pairs []Pair
}

// Plan decomposes growing p by the named extra groups into single-group
// steps. Each step's pairs migrate independently; steps run in order, so a
// key can chain through intermediate owners (g3→g9 in step one, g9→g11 in
// step three) and every hop is fenced by its own handoff entries.
func (p *Placement) Plan(extras ...string) []Step {
	steps := make([]Step, 0, len(extras))
	cur := p
	for _, extra := range extras {
		next := cur.Grow(extra)
		pairs := make([]Pair, 0, len(cur.groups))
		for _, from := range cur.groups {
			pairs = append(pairs, Pair{From: from, To: extra})
		}
		steps = append(steps, Step{Added: extra, To: next, Pairs: pairs})
		cur = next
	}
	return steps
}

// MoveSet decides membership of the key range migrating From→To in one
// growth step. It is built from the destination placement's full group list
// (what a wal.Handoff entry carries), so every replica reconstructs the
// exact range from log contents alone: a key moves iff the destination
// placement routes it to To AND the source placement — the same list minus
// To — routed it to From.
type MoveSet struct {
	from, to string
	old, new *Placement
}

// NewMoveSet builds the predicate for the range migrating from→to under the
// destination group list. Malformed inputs (empty list, to or from absent)
// yield a MoveSet that matches nothing rather than panicking — handoff
// entries arrive over the wire and a corrupt one must not take down the
// apply loop.
func NewMoveSet(groups []string, from, to string) *MoveSet {
	m := &MoveSet{from: from, to: to}
	old := make([]string, 0, len(groups))
	foundTo, foundFrom := false, false
	seen := make(map[string]bool, len(groups))
	for _, g := range groups {
		if g == "" || seen[g] {
			return m // malformed: matches nothing
		}
		seen[g] = true
		if g == to {
			foundTo = true
			continue
		}
		if g == from {
			foundFrom = true
		}
		old = append(old, g)
	}
	if !foundTo || !foundFrom || len(old) == 0 {
		return m
	}
	m.new = New(groups)
	m.old = New(old)
	return m
}

// Moves reports whether key belongs to the migrating range.
func (m *MoveSet) Moves(key string) bool {
	if m.new == nil {
		return false
	}
	return m.new.GroupFor(key) == m.to && m.old.GroupFor(key) == m.from
}

// From returns the source group of the range.
func (m *MoveSet) From() string { return m.from }

// To returns the destination group of the range.
func (m *MoveSet) To() string { return m.to }
