package placement

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestGoldenVector pins the exact assignment of a fixed key set over fixed
// group lists. This is the determinism-across-processes property: the vector
// was computed once and committed, so any change to the hash function, the
// tie-break, or the weight input layout — anything that would make two
// binaries disagree about a key's owner — fails this test rather than
// silently splitting the keyspace between versions.
func TestGoldenVector(t *testing.T) {
	keys := []string{
		"", "a", "b", "counter", "attr0", "attr1", "attr42", "attr99",
		"user:1001", "user:1002", "order/2024/07/27", "profiles/counter",
		"the quick brown fox", "\x00\x01\x02", "日本語キー",
	}
	golden := map[int][]string{
		2: nil, // filled below from the committed vectors
		8: nil,
	}
	golden[2] = []string{
		"g1", "g1", "g0", "g1", "g1", "g0", "g0", "g0",
		"g1", "g0", "g0", "g0", "g0", "g0", "g1",
	}
	golden[8] = []string{
		"g1", "g5", "g7", "g4", "g4", "g0", "g6", "g0",
		"g7", "g4", "g3", "g4", "g7", "g0", "g6",
	}
	for n, want := range golden {
		p := NewN(n)
		for i, key := range keys {
			if got := p.GroupFor(key); got != want[i] {
				t.Errorf("NewN(%d).GroupFor(%q) = %s, committed golden vector says %s",
					n, key, got, want[i])
			}
		}
	}
}

// TestEveryKeyOwnedByExactlyOneGroup: GroupFor is a total function into the
// group set — every key routes, to a group that exists, and repeated calls
// agree (no hidden state).
func TestEveryKeyOwnedByExactlyOneGroup(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 16} {
		p := NewN(n)
		owned := make(map[string]bool, n)
		for _, g := range p.Groups() {
			owned[g] = true
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 20000; i++ {
			key := fmt.Sprintf("key-%d-%d", i, rng.Int63())
			g := p.GroupFor(key)
			if !owned[g] {
				t.Fatalf("n=%d: key %q routed to non-group %q", n, key, g)
			}
			if again := p.GroupFor(key); again != g {
				t.Fatalf("n=%d: key %q routed to %q then %q", n, key, g, again)
			}
		}
	}
}

// TestBalanceBound: over 100k random keys, the most loaded group holds at
// most 1.3x the least loaded one. Rendezvous hashing has no virtual-node
// knob — balance comes straight from hash uniformity — so this bound is the
// regression alarm for a degraded weight function.
func TestBalanceBound(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-key balance sweep skipped in short mode")
	}
	const keys = 100_000
	for _, n := range []int{2, 4, 8, 16} {
		p := NewN(n)
		rng := rand.New(rand.NewSource(42))
		sample := make([]string, keys)
		for i := range sample {
			sample[i] = fmt.Sprintf("key-%d-%d", i, rng.Int63())
		}
		counts := p.Spread(sample)
		if len(counts) != n {
			t.Fatalf("n=%d: only %d groups received keys", n, len(counts))
		}
		min, max := keys, 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		ratio := float64(max) / float64(min)
		t.Logf("n=%d: min=%d max=%d max/min=%.3f", n, min, max, ratio)
		if ratio > 1.3 {
			t.Errorf("n=%d: group load ratio %.3f exceeds 1.3 (min %d, max %d)", n, ratio, min, max)
		}
	}
}

// TestMinimalMovementOnGrowth: growing N groups to N+1 moves only keys that
// land in the new group (never between two surviving groups), and roughly
// 1/(N+1) of the keyspace — the rendezvous property that lets a deployment
// add groups without a full reshuffle.
func TestMinimalMovementOnGrowth(t *testing.T) {
	const keys = 20_000
	rng := rand.New(rand.NewSource(13))
	sample := make([]string, keys)
	for i := range sample {
		sample[i] = fmt.Sprintf("key-%d-%d", i, rng.Int63())
	}
	for _, n := range []int{1, 3, 7, 15} {
		old := NewN(n)
		grown := old.Grow(fmt.Sprintf("g%d", n))
		newGroup := fmt.Sprintf("g%d", n)
		moved := 0
		for _, key := range sample {
			was, now := old.GroupFor(key), grown.GroupFor(key)
			if was == now {
				continue
			}
			if now != newGroup {
				t.Fatalf("n=%d: key %q moved between surviving groups %s -> %s", n, key, was, now)
			}
			moved++
		}
		expected := float64(keys) / float64(n+1)
		t.Logf("n=%d->%d: moved %d keys (expected ~%.0f)", n, n+1, moved, expected)
		// The moved count concentrates tightly around keys/(n+1); 2x is far
		// outside any plausible noise and would mean the property broke.
		if f := float64(moved); f > 2*expected || f < expected/2 {
			t.Errorf("n=%d->%d: moved %d keys, want about %.0f (minimal movement violated)",
				n, n+1, moved, expected)
		}
	}
}

// TestPinsOverrideHashing: an explicit assignment wins over the rendezvous
// choice and survives growth.
func TestPinsOverrideHashing(t *testing.T) {
	p := New([]string{"profiles", "analytics"},
		Pin("profiles/counter", "profiles"),
		Pin("analytics/counter", "analytics"),
	)
	if g := p.GroupFor("profiles/counter"); g != "profiles" {
		t.Fatalf("pinned key routed to %q", g)
	}
	if g := p.GroupFor("analytics/counter"); g != "analytics" {
		t.Fatalf("pinned key routed to %q", g)
	}
	grown := p.Grow("archive")
	if g := grown.GroupFor("profiles/counter"); g != "profiles" {
		t.Fatalf("pin lost on growth: %q", g)
	}
}

// TestPartitionPreservesOrder: the fan-out split keeps each key's input
// order within its group — the merge on the read path depends on it.
func TestPartitionPreservesOrder(t *testing.T) {
	p := NewN(4)
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("attr%d", i)
	}
	parts := p.Partition(keys)
	total := 0
	pos := make(map[string]int, len(keys))
	for i, k := range keys {
		pos[k] = i
	}
	for g, ks := range parts {
		total += len(ks)
		last := -1
		for _, k := range ks {
			if p.GroupFor(k) != g {
				t.Fatalf("key %q filed under wrong group %q", k, g)
			}
			if pos[k] < last {
				t.Fatalf("group %s: key %q out of input order", g, k)
			}
			last = pos[k]
		}
	}
	if total != len(keys) {
		t.Fatalf("partition dropped keys: %d of %d", total, len(keys))
	}
}

// TestConstructionPanics: malformed group lists and dangling pins are
// programming errors and must fail loudly at construction.
func TestConstructionPanics(t *testing.T) {
	cases := map[string]func(){
		"empty list":     func() { New(nil) },
		"empty name":     func() { New([]string{"a", ""}) },
		"duplicate":      func() { New([]string{"a", "a"}) },
		"pin to unknown": func() { New([]string{"a"}, Pin("k", "missing")) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: construction did not panic", name)
				}
			}()
			fn()
		}()
	}
}
