package placement

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestGoldenVectorMultiStepGrowth pins the exact key→group map after every
// step of growing 8→9→…→12 by repeated Grow. Migration plans are computed
// independently by the coordinator, every replica's apply loop, and the
// offline checker; this vector is the determinism-across-processes proof for
// the whole chain — any drift in the hash, the tie-break, or Grow's group
// ordering fails here before it silently splits a live migration.
func TestGoldenVectorMultiStepGrowth(t *testing.T) {
	keys := []string{
		"", "a", "b", "counter", "attr0", "attr1", "attr42", "attr99",
		"user:1001", "user:1002", "order/2024/07/27", "profiles/counter",
		"the quick brown fox", "\x00\x01\x02", "日本語キー",
	}
	golden := map[int][]string{
		9:  {"g1", "g5", "g7", "g8", "g4", "g0", "g6", "g0", "g7", "g4", "g3", "g4", "g7", "g0", "g6"},
		10: {"g1", "g9", "g7", "g8", "g4", "g0", "g6", "g0", "g7", "g4", "g9", "g4", "g7", "g0", "g6"},
		11: {"g1", "g9", "g7", "g8", "g4", "g0", "g6", "g0", "g7", "g4", "g9", "g10", "g7", "g10", "g6"},
		12: {"g1", "g9", "g7", "g8", "g11", "g0", "g6", "g0", "g7", "g4", "g9", "g10", "g7", "g10", "g6"},
	}
	p := NewN(8)
	for n := 9; n <= 12; n++ {
		p = p.Grow(fmt.Sprintf("g%d", n-1))
		if got := p.Version(); got != int64(n) {
			t.Fatalf("after growing to %d groups, Version() = %d", n, got)
		}
		want := golden[n]
		for i, key := range keys {
			if got := p.GroupFor(key); got != want[i] {
				t.Errorf("step %d: GroupFor(%q) = %s, committed golden vector says %s",
					n, key, got, want[i])
			}
		}
	}
}

// TestPlanCoversEveryMove: over the full 8→12 plan, a key changes owner in a
// step iff exactly one of that step's pair MoveSets claims it — the range
// decomposition is a partition of the moved keyspace, with no key moved by
// zero pairs (a leak: nobody would migrate it) or by two (a duplicate: two
// coordinators would race on it).
func TestPlanCoversEveryMove(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	keys := make([]string, 5000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d-%d", i, rng.Int63())
	}
	cur := NewN(8)
	steps := cur.Plan("g8", "g9", "g10", "g11")
	if len(steps) != 4 {
		t.Fatalf("Plan produced %d steps, want 4", len(steps))
	}
	for _, step := range steps {
		movers := make(map[string]*MoveSet, len(step.Pairs))
		for _, pair := range step.Pairs {
			if pair.To != step.Added {
				t.Fatalf("step %s: pair %v targets a group other than the added one", step.Added, pair)
			}
			movers[pair.From] = NewMoveSet(step.To.Groups(), pair.From, pair.To)
		}
		for _, key := range keys {
			was, now := cur.GroupFor(key), step.To.GroupFor(key)
			claimed := 0
			for _, m := range movers {
				if m.Moves(key) {
					claimed++
				}
			}
			switch {
			case was == now && claimed != 0:
				t.Fatalf("step %s: unmoved key %q claimed by %d pairs", step.Added, key, claimed)
			case was != now && claimed != 1:
				t.Fatalf("step %s: moved key %q (%s→%s) claimed by %d pairs, want exactly 1",
					step.Added, key, was, now, claimed)
			case was != now && !movers[was].Moves(key):
				t.Fatalf("step %s: key %q moved from %s but that pair's MoveSet disowns it",
					step.Added, key, was)
			}
		}
		cur = step.To
	}
}

// TestMoveSetMalformedInputs: corrupt handoff group lists (the inputs arrive
// over the wire) yield a predicate that matches nothing — never a panic.
func TestMoveSetMalformedInputs(t *testing.T) {
	cases := map[string]*MoveSet{
		"empty list":     NewMoveSet(nil, "g0", "g1"),
		"to absent":      NewMoveSet([]string{"g0", "g1"}, "g0", "g9"),
		"from absent":    NewMoveSet([]string{"g0", "g1"}, "g9", "g1"),
		"duplicate":      NewMoveSet([]string{"g0", "g0", "g1"}, "g0", "g1"),
		"empty name":     NewMoveSet([]string{"g0", ""}, "g0", "g1"),
		"only to":        NewMoveSet([]string{"g1"}, "g0", "g1"),
		"from equals to": NewMoveSet([]string{"g0", "g1"}, "g1", "g1"),
	}
	for name, m := range cases {
		for i := 0; i < 100; i++ {
			if m.Moves(fmt.Sprintf("key-%d", i)) {
				t.Errorf("%s: malformed MoveSet matched a key", name)
				break
			}
		}
	}
}
