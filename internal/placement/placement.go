package placement

import (
	"fmt"
)

// Placement maps every key of the keyspace to exactly one transaction
// group. It is pure data plus hashing — no I/O, no clocks, no global state —
// so every process that builds the same Placement routes identically, which
// is the property the whole sharded tier rests on: a client, a benchmark
// thread, and an operator CLI must never disagree about a key's owner.
//
// The default assignment is rendezvous (highest-random-weight) hashing:
// each (group, key) pair gets a pseudo-random weight and the key belongs to
// the group with the largest weight. Unlike modulo hashing, growing the
// group list moves only the keys whose new group wins their weight contest —
// an expected 1/(N+1) of the keyspace when going from N to N+1 groups — and
// never shuffles a key between two pre-existing groups
// (TestMinimalMovementOnGrowth pins both halves of that claim).
//
// Explicit assignments override hashing for individual keys: the paper's
// examples name semantic groups ("profiles", "analytics") and pin their
// well-known keys there; everything unpinned spreads by weight.
type Placement struct {
	groups []string
	index  map[string]int    // group name -> position in groups
	pins   map[string]string // key -> group, overriding the hash
}

// Option configures a Placement.
type Option func(*Placement)

// Pin routes key to group explicitly, overriding rendezvous hashing. The
// group must be one of the placement's groups (New panics otherwise — a pin
// to an unknown group would silently blackhole the key).
func Pin(key, group string) Option {
	return func(p *Placement) { p.pins[key] = group }
}

// New builds a Placement over the given group names. Names must be non-empty
// and unique; the slice is copied. Construction panics on a malformed group
// list or a pin naming an unknown group — both are programming errors, not
// runtime conditions.
func New(groups []string, opts ...Option) *Placement {
	if len(groups) == 0 {
		panic("placement: no groups")
	}
	p := &Placement{
		groups: append([]string(nil), groups...),
		index:  make(map[string]int, len(groups)),
		pins:   make(map[string]string),
	}
	for i, g := range p.groups {
		if g == "" {
			panic("placement: empty group name")
		}
		if _, dup := p.index[g]; dup {
			panic(fmt.Sprintf("placement: duplicate group %q", g))
		}
		p.index[g] = i
	}
	for _, o := range opts {
		o(p)
	}
	for key, g := range p.pins {
		if _, ok := p.index[g]; !ok {
			panic(fmt.Sprintf("placement: pin %q -> unknown group %q", key, g))
		}
	}
	return p
}

// GroupNames returns the conventional names for n groups: "g0" .. "g{n-1}".
// Shared by cluster.Config, txkvd -groups, and the benchmarks so every layer
// that says "8 groups" means the same eight strings.
func GroupNames(n int) []string {
	if n < 1 {
		n = 1
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("g%d", i)
	}
	return names
}

// NewN is New over GroupNames(n).
func NewN(n int, opts ...Option) *Placement { return New(GroupNames(n), opts...) }

// Groups returns the group names in construction order. The slice is shared;
// treat it as read-only.
func (p *Placement) Groups() []string { return p.groups }

// Owns reports whether group is one of the placement's groups.
func (p *Placement) Owns(group string) bool {
	_, ok := p.index[group]
	return ok
}

// IndexOf returns group's position in the construction order, or -1 when the
// group is not part of the placement. The per-group master spread is
// index-based (group i -> datacenter i mod N), so every consumer of one
// placement computes the same spread from this one map.
func (p *Placement) IndexOf(group string) int {
	if i, ok := p.index[group]; ok {
		return i
	}
	return -1
}

// GroupFor returns the group that owns key: its pin if one exists, otherwise
// the rendezvous winner. Deterministic across processes and runs
// (TestGoldenVector pins the exact assignment).
func (p *Placement) GroupFor(key string) string {
	if g, ok := p.pins[key]; ok {
		return g
	}
	if len(p.groups) == 1 {
		return p.groups[0]
	}
	best := p.groups[0]
	bestW := weight(best, key)
	for _, g := range p.groups[1:] {
		if w := weight(g, key); w > bestW || (w == bestW && g < best) {
			best, bestW = g, w
		}
	}
	return best
}

// Partition splits keys by owning group, preserving each key's input order
// inside its group's slice. (The routed KV fan-out tracks result slots and
// builds its per-group batches itself; this is the plain split for tooling
// and tests.)
func (p *Placement) Partition(keys []string) map[string][]string {
	out := make(map[string][]string)
	for _, k := range keys {
		g := p.GroupFor(k)
		out[g] = append(out[g], k)
	}
	return out
}

// Spread reports per-group key counts for a sample keyspace — operator
// tooling and the balance property test share it.
func (p *Placement) Spread(keys []string) map[string]int {
	out := make(map[string]int, len(p.groups))
	for _, k := range keys {
		out[p.GroupFor(k)]++
	}
	return out
}

// Grow returns a new Placement with extra appended to the group list,
// keeping every pin. Rendezvous hashing guarantees keys only ever move INTO
// the new group (see the package comment).
func (p *Placement) Grow(extra string) *Placement {
	groups := append(append([]string(nil), p.groups...), extra)
	np := New(groups)
	for k, g := range p.pins {
		np.pins[k] = g
	}
	return np
}

// weight is the rendezvous weight of (group, key): a 64-bit FNV-1a hash over
// the pair with a separator byte neither side can contain meaningfully, then
// a finalizer that avalanches the result. Both stages are stable across Go
// versions, architectures, and processes — no seed, no map iteration, nothing
// process-local — which is what makes the golden-vector test meaningful.
//
// The finalizer is load-bearing, not cosmetic: raw FNV-1a mixes its last few
// input bytes through too few multiplications, so keys that differ only in a
// short suffix ("user-001" .. "user-999") get weights whose high bits are
// dominated by the group prefix — the whole family then ranks the groups
// identically, which skews balance and can leave a growth step with nothing
// to move. The fmix64 avalanche (MurmurHash3's finalizer) spreads every input
// bit over the full word, restoring per-key independence of the ranking.
func weight(group, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(group); i++ {
		h ^= uint64(group[i])
		h *= prime64
	}
	h ^= 0 // separator: one NUL byte between group and key
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// fmix64 finalizer.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
