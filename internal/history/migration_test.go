package history

import (
	"fmt"
	"testing"

	"paxoscp/internal/placement"
	"paxoscp/internal/wal"
)

// destGroups is the destination placement of a g0→g2 migration under growth
// from [g0 g1] to [g0 g1 g2].
var destGroups = []string{"g0", "g1", "g2"}

// movingKeyHist finds a key of the range migrating g0→g2 under destGroups.
func movingKeyHist(t *testing.T) string {
	t.Helper()
	old := placement.New([]string{"g0", "g1"})
	grown := placement.New(destGroups)
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("mk%d", i)
		if old.GroupFor(k) == "g0" && grown.GroupFor(k) == "g2" {
			return k
		}
	}
	t.Fatal("no moving key found")
	return ""
}

// TestGroupTimelineAcceptsPostGrowGroups is the regression for the static
// group-set leak scan: commits on a group added mid-run are legitimate (the
// timeline has an era containing it), while a commit on a group no era ever
// contained stays a G1 violation.
func TestGroupTimelineAcceptsPostGrowGroups(t *testing.T) {
	tl := NewGroupTimeline("g0", "g1")
	tl.Grow("g0", "g1", "g2")
	commits := []Commit{
		{ID: "pre", Group: "g0", Pos: 1, Writes: map[string]string{"a": "1"}},
		{ID: "post", Group: "g2", Pos: 1, Writes: map[string]string{"b": "2"}},
		{ID: "alien", Group: "g9", Pos: 1, Writes: map[string]string{"c": "3"}},
	}
	byGroup, vs := ByGroupTimeline(commits, tl)
	if len(byGroup["g0"]) != 1 || len(byGroup["g2"]) != 1 {
		t.Fatalf("timeline split lost commits: %v", byGroup)
	}
	if !hasViolation(vs, "G1", "alien") {
		t.Fatalf("foreign-group commit not flagged: %v", vs)
	}
	if hasViolation(vs, "G1", "post") {
		t.Fatalf("post-grow group flagged as foreign: %v", vs)
	}
	if len(vs) != 1 {
		t.Fatalf("want exactly one violation, got %v", vs)
	}
}

// TestM1VoidedWriteExcludedFromSerialHistory: a write of a departed-range key
// after the HandoffOut commits nothing — the checker must exclude it from the
// serial history (a snapshot read below the handoff still sees the frozen
// value) and must flag a client that claims it committed.
func TestM1VoidedWriteExcludedFromSerialHistory(t *testing.T) {
	mk := movingKeyHist(t)
	log := logOf(
		wal.NewEntry(txn("w1", 0, nil, map[string]string{mk: "frozen"})), // pos 1
		wal.NewHandoff(wal.HandoffOut, "g0", "g2", destGroups),           // pos 2
		wal.NewEntry(txn("w2", 1, nil, map[string]string{mk: "late"})),   // pos 3: void (M1)
	)
	logs := map[string]map[int64]wal.Entry{"A": log}

	// A read-only snapshot below the handoff sees the frozen value; if the
	// checker applied w2's write, it would flag this correct read as A2.
	commits := []Commit{
		{ID: "w1", ReadPos: 0, Pos: 1, Writes: map[string]string{mk: "frozen"}},
		{ID: "ro", ReadPos: 3, Pos: 3, Reads: map[string]string{mk: "frozen"}},
	}
	if vs := Check(logs, commits); len(vs) != 0 {
		t.Fatalf("voided write leaked into the serial history: %v", vs)
	}

	// A client claiming w2 committed contradicts the fence: M1 violation.
	commits = append(commits, Commit{ID: "w2", ReadPos: 1, Pos: 3, Writes: map[string]string{mk: "late"}})
	vs := Check(logs, commits)
	if !hasViolation(vs, "M1", "w2") {
		t.Fatalf("commit of a migration-voided transaction not flagged: %v", vs)
	}
}

// TestM2PrepareFenceInCheckerMirrorsReplog: in the destination group's log, a
// non-backfill write into a prepared-but-unopened range is void; backfill
// writes land; after HandoffIn ordinary writes land again.
func TestM2PrepareFenceInCheckerMirrorsReplog(t *testing.T) {
	mk := movingKeyHist(t)
	backfill := wal.Txn{ID: "bf1", Origin: "migrator", Backfill: true,
		Writes: map[string]string{mk: "copied"}}
	log := logOf(
		wal.NewHandoff(wal.HandoffPrepare, "g0", "g2", destGroups), // pos 1
		wal.NewEntry(backfill), // pos 2: lands
		wal.NewEntry(txn("early", 1, nil, map[string]string{mk: "bad"})),  // pos 3: void (M2)
		wal.NewHandoff(wal.HandoffIn, "g0", "g2", destGroups),             // pos 4
		wal.NewEntry(txn("after", 4, nil, map[string]string{mk: "live"})), // pos 5: lands
	)
	logs := map[string]map[int64]wal.Entry{"A": log}
	commits := []Commit{
		{ID: "after", ReadPos: 4, Pos: 5, Writes: map[string]string{mk: "live"}},
		// Snapshot between backfill and cutover sees the copied value...
		{ID: "ro1", ReadPos: 3, Pos: 3, Reads: map[string]string{mk: "copied"}},
		// ...and after the range opens, the live write.
		{ID: "ro2", ReadPos: 5, Pos: 5, Reads: map[string]string{mk: "live"}},
	}
	if vs := Check(logs, commits); len(vs) != 0 {
		t.Fatalf("M2 fence not mirrored: %v", vs)
	}
}
