package history

import (
	"fmt"
	"sort"
	"sync"

	"paxoscp/internal/wal"
)

// Commit is one committed transaction as observed by its client.
type Commit struct {
	ID string
	// Group is the transaction group the commit ran on. Check validates one
	// group's log against that group's commits; multi-group runs filter with
	// ByGroup and check each group independently (group-local
	// serializability is the whole §2.1 contract — there is nothing
	// cross-group to check).
	Group   string
	Origin  string
	ReadPos int64
	// Pos is the log position the transaction committed at. Read-only
	// transactions (no writes) carry their read position here and do not
	// appear in the log.
	Pos    int64
	Reads  map[string]string // key -> value the client observed
	Writes map[string]string
}

// ReadOnly reports whether the commit carried no writes.
func (c Commit) ReadOnly() bool { return len(c.Writes) == 0 }

// Recorder accumulates commits from concurrent clients.
type Recorder struct {
	mu      sync.Mutex
	commits []Commit
}

// Record adds one commit. Safe for concurrent use.
func (r *Recorder) Record(c Commit) {
	r.mu.Lock()
	r.commits = append(r.commits, c)
	r.mu.Unlock()
}

// Commits returns a copy of everything recorded.
func (r *Recorder) Commits() []Commit {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Commit(nil), r.commits...)
}

// ByGroup splits commits by transaction group, preserving record order.
// Commits recorded without a group (pre-sharding callers) land under "".
func ByGroup(commits []Commit) map[string][]Commit {
	out := make(map[string][]Commit)
	for _, c := range commits {
		out[c.Group] = append(out[c.Group], c)
	}
	return out
}

// Violation is one detected breach of the §3 properties.
type Violation struct {
	// Property names the violated property: "R1", "L1", "L2", "L3", "A2",
	// "F2" (a committed transaction inside an epoch-fenced entry — the
	// two-concurrent-masters bug, DESIGN.md §11), "M1" (a committed
	// transaction voided by a migration handoff fence, DESIGN.md §15),
	// "G1" (a commit on a group outside the run's group-set timeline), or
	// "LOG" for structural problems (holes, corrupt entries).
	Property string
	Detail   string
}

func (v Violation) String() string { return v.Property + ": " + v.Detail }

func violationf(prop, format string, args ...any) Violation {
	return Violation{Property: prop, Detail: fmt.Sprintf(format, args...)}
}

// Check validates an execution: logs maps datacenter -> position -> decided
// entry, commits lists every commit clients observed. It returns all
// violations found (empty means the execution is one-copy serializable).
//
// Check assumes traffic was quiesced before the logs were collected: every
// decided position is expected to be present, so any hole is a LOG
// violation. Logs snapshotted with proposals still in flight can carry
// harmless trailing holes (positions decided on some replica but not yet
// learned anywhere the snapshot saw); use CheckQuiesced for those runs.
func Check(logs map[string]map[int64]wal.Entry, commits []Commit) []Violation {
	return check(logs, commits, -1)
}

// CheckQuiesced is Check for executions whose logs were collected without
// quiescing traffic first. A hole strictly above horizon — the maximum
// applied watermark across all replicas — is ambiguous in-flight
// replication debt, not a violation: entries above the first such hole are
// dropped from the merged log before checking, since nothing contiguous
// below any watermark depends on them. Holes at or below horizon remain LOG
// violations exactly as in Check.
//
// Soundness: a commit verdict is only delivered once the committed position
// is applied (the pipeline waits on the watermark), so every client-reported
// commit position is <= some replica's watermark <= horizon, below the
// truncation point. A commit claiming a truncated position is therefore
// still correctly flagged (L1 missing from log).
func CheckQuiesced(logs map[string]map[int64]wal.Entry, horizon int64, commits []Commit) []Violation {
	if horizon < 0 {
		horizon = 0
	}
	return check(logs, commits, horizon)
}

// check is the shared engine: horizon < 0 means strict (Check), otherwise
// trailing holes above horizon are tolerated by truncation (CheckQuiesced).
func check(logs map[string]map[int64]wal.Entry, commits []Commit, horizon int64) []Violation {
	var out []Violation

	merged, vs := mergeLogs(logs)
	out = append(out, vs...)
	if horizon >= 0 {
		merged = truncateTrailing(merged, horizon)
	}

	fenced := fencedPositions(merged)
	voided := migrationVoids(merged, fenced)
	out = append(out, checkPlacement(merged, fenced, voided, commits)...)
	out = append(out, checkSerializability(merged, fenced, voided, commits)...)
	return out
}

// truncateTrailing drops merged-log entries above the first hole when that
// hole lies strictly above horizon. If the log is contiguous, or its first
// hole is at or below horizon (a real violation positions() must flag), the
// log is returned unchanged.
func truncateTrailing(merged map[int64]wal.Entry, horizon int64) map[int64]wal.Entry {
	ps := make([]int64, 0, len(merged))
	for p := range merged {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	for i, p := range ps {
		if int64(i+1) == p {
			continue
		}
		hole := int64(i + 1)
		if hole <= horizon {
			return merged // a hole below a watermark: keep it, let positions() flag it
		}
		trunc := make(map[int64]wal.Entry, i)
		for _, q := range ps[:i] {
			trunc[q] = merged[q]
		}
		return trunc
	}
	return merged
}

// fencedPositions replays the merged log's claim entries in order and
// returns the positions whose entries are void under epoch fencing
// (DESIGN.md §11): a claim entry raises the prevailing epoch for all later
// positions, and a transaction entry stamped with a lower, non-zero epoch
// commits nothing. This mirrors replog's apply-time rule exactly — the
// prevailing epoch at a position is a deterministic function of the log
// prefix — so the checker and the datastore agree on which log entries are
// real.
func fencedPositions(merged map[int64]wal.Entry) map[int64]bool {
	ps := make([]int64, 0, len(merged))
	for p := range merged {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	fenced := make(map[int64]bool)
	epoch := int64(0)
	for _, p := range ps {
		e := merged[p]
		if e.IsClaim() {
			if e.Epoch > epoch {
				epoch = e.Epoch
			}
			continue // claims commit nothing either way
		}
		if e.Epoch != 0 && e.Epoch < epoch {
			fenced[p] = true
		}
	}
	return fenced
}

// mergeLogs enforces (R1) and returns the union log.
func mergeLogs(logs map[string]map[int64]wal.Entry) (map[int64]wal.Entry, []Violation) {
	var out []Violation
	merged := make(map[int64]wal.Entry)
	owner := make(map[int64]string)
	dcs := make([]string, 0, len(logs))
	for dc := range logs {
		dcs = append(dcs, dc)
	}
	sort.Strings(dcs)
	for _, dc := range dcs {
		for pos, entry := range logs[dc] {
			if prev, ok := merged[pos]; ok {
				if string(wal.Encode(prev)) != string(wal.Encode(entry)) {
					out = append(out, violationf("R1",
						"position %d differs between %s (%s) and %s (%s)",
						pos, owner[pos], prev, dc, entry))
				}
				continue
			}
			merged[pos] = entry
			owner[pos] = dc
		}
	}
	return merged, out
}

// positions returns the merged log's positions in ascending order and flags
// holes below the maximum (a decided position missing everywhere).
func positions(merged map[int64]wal.Entry) ([]int64, []Violation) {
	var out []Violation
	ps := make([]int64, 0, len(merged))
	for p := range merged {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	for i, p := range ps {
		if int64(i+1) != p {
			out = append(out, violationf("LOG", "log hole: expected position %d, found %d", i+1, p))
			break
		}
	}
	return ps, out
}

// checkPlacement enforces (L1) and (L2): every committed read/write
// transaction occupies exactly one log position — the one its client
// reported — with all its operations in that single entry, and no
// transaction appears at two positions. A fenced entry commits nothing, so a
// transaction inside one does not count as placed; a client-reported commit
// sitting in a fenced entry is the split-brain double-master bug (F2). A
// transaction voided by a migration rule (M1/M2) likewise commits nothing —
// its verdict was the retryable "moved"/"migrating", so a client-reported
// commit that exists only in voided form means a verdict lied (M1).
func checkPlacement(merged map[int64]wal.Entry, fenced map[int64]bool, voided map[int64]map[string]bool, commits []Commit) []Violation {
	var out []Violation
	// Index the log by transaction ID. Fenced entries are void, but a
	// transaction appearing in both a fenced and a live entry is fine (the
	// deposed master's copy was void); only live placements count.
	at := make(map[string][]int64)
	inFenced := make(map[string][]int64)
	inVoid := make(map[string][]int64)
	for pos, entry := range merged {
		seen := make(map[string]bool)
		for _, t := range entry.Txns {
			if seen[t.ID] {
				out = append(out, violationf("L2", "transaction %s appears twice in position %d", t.ID, pos))
			}
			seen[t.ID] = true
			if fenced[pos] {
				inFenced[t.ID] = append(inFenced[t.ID], pos)
				continue
			}
			if voided[pos][t.ID] {
				inVoid[t.ID] = append(inVoid[t.ID], pos)
				continue
			}
			at[t.ID] = append(at[t.ID], pos)
		}
	}
	for id, ps := range at {
		if len(ps) > 1 {
			out = append(out, violationf("L2", "transaction %s appears at multiple positions %v", id, ps))
		}
	}
	committed := make(map[string]bool)
	for _, c := range commits {
		committed[c.ID] = true
		if c.ReadOnly() {
			if len(at[c.ID]) != 0 {
				out = append(out, violationf("L1", "read-only transaction %s found in log at %v", c.ID, at[c.ID]))
			}
			continue
		}
		ps := at[c.ID]
		if len(ps) == 0 {
			switch {
			case len(inFenced[c.ID]) > 0:
				out = append(out, violationf("F2",
					"committed transaction %s exists only in fenced entries at %v: a deposed master reported a commit its epoch could not make",
					c.ID, inFenced[c.ID]))
			case len(inVoid[c.ID]) > 0:
				out = append(out, violationf("M1",
					"committed transaction %s exists only in migration-voided entries at %v: a commit verdict was reported for a write the handoff fence voided",
					c.ID, inVoid[c.ID]))
			default:
				out = append(out, violationf("L1", "committed transaction %s missing from log (client reported position %d)", c.ID, c.Pos))
			}
			continue
		}
		if ps[0] != c.Pos {
			out = append(out, violationf("L2", "transaction %s committed at %d per client but logged at %d", c.ID, c.Pos, ps[0]))
		}
		entry := merged[ps[0]]
		for _, t := range entry.Txns {
			if t.ID != c.ID {
				continue
			}
			if !mapsEqual(t.Writes, c.Writes) {
				out = append(out, violationf("L2", "transaction %s write set in log differs from client's", c.ID))
			}
		}
	}
	return out
}

// checkSerializability enforces (L3) and (A2) by replaying the merged log
// in order as the serial history and validating each transaction's reads:
// a read of key k by transaction t placed at position p with read position r
// must observe the value of k at position r, and no transaction serialized
// between r and t (later entries up to p, or earlier transactions in t's own
// entry) may have written k. Fenced entries are skipped entirely — they
// committed nothing, so their writes are absent from the serial history and
// their transactions' reads are never validated (if one was reported
// committed, checkPlacement already flagged it as F2). Migration-voided
// transactions (M1/M2) are skipped the same way, per transaction: their
// writes never landed at any replica.
func checkSerializability(merged map[int64]wal.Entry, fenced map[int64]bool, voided map[int64]map[string]bool, commits []Commit) []Violation {
	ps, out := positions(merged)

	// versionsOf replays writes in serial order: key -> ascending (pos, val).
	type version struct {
		pos int64
		val string
	}
	state := make(map[string][]version)
	valueAt := func(key string, pos int64) string {
		vs := state[key]
		i := sort.Search(len(vs), func(i int) bool { return vs[i].pos > pos })
		if i == 0 {
			return "" // never written: reads as empty (missing) value
		}
		return vs[i-1].val
	}
	lastWriter := func(key string, after, before int64) (int64, bool) {
		// Any write to key at position q with after < q < before?
		vs := state[key]
		i := sort.Search(len(vs), func(i int) bool { return vs[i].pos > after })
		if i < len(vs) && vs[i].pos < before {
			return vs[i].pos, true
		}
		return 0, false
	}

	byID := make(map[string]Commit, len(commits))
	for _, c := range commits {
		byID[c.ID] = c
	}

	for _, pos := range ps {
		if fenced[pos] {
			continue
		}
		entry := merged[pos]
		if !entry.SerializableOrder() {
			out = append(out, violationf("L3", "entry at %d is not serializable in list order: %s", pos, entry))
		}
		writtenInEntry := make(map[string]bool)
		for _, t := range entry.Txns {
			if voided[pos][t.ID] {
				continue // committed nothing; verdict was moved/migrating
			}
			if t.ReadPos >= pos {
				out = append(out, violationf("L3", "transaction %s at position %d has read position %d >= commit position", t.ID, pos, t.ReadPos))
			}
			// Validate reads against the serial state.
			c, haveClient := byID[t.ID]
			readSet := t.ReadSet
			for _, key := range readSet {
				if q, dirty := lastWriter(key, t.ReadPos, pos); dirty {
					out = append(out, violationf("L3",
						"transaction %s (read pos %d, commit pos %d) read %q but position %d wrote it",
						t.ID, t.ReadPos, pos, key, q))
				}
				if writtenInEntry[key] {
					out = append(out, violationf("L3",
						"transaction %s reads %q written earlier in its own entry at %d", t.ID, key, pos))
				}
				if haveClient {
					want := valueAt(key, t.ReadPos)
					if got, ok := c.Reads[key]; ok && got != want {
						out = append(out, violationf("A2",
							"transaction %s read %q = %q, serial history has %q at read position %d",
							t.ID, key, got, want, t.ReadPos))
					}
				}
			}
			for k := range t.Writes {
				writtenInEntry[k] = true
			}
		}
		// Apply the entry's merged writes at this position, excluding voided
		// transactions (last-wins in list order, as Entry.Writes merges).
		for _, t := range entry.Txns {
			if voided[pos][t.ID] {
				continue
			}
			for k, v := range t.Writes {
				state[k] = append(state[k], version{pos: pos, val: v})
			}
		}
	}

	// Read-only transactions: every read must match the state at their read
	// position (they serialize immediately after that position's entry).
	for _, c := range commits {
		if !c.ReadOnly() {
			continue
		}
		for key, got := range c.Reads {
			if want := valueAt(key, c.ReadPos); got != want {
				out = append(out, violationf("A2",
					"read-only transaction %s read %q = %q, serial history has %q at position %d",
					c.ID, key, got, want, c.ReadPos))
			}
		}
	}
	return out
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
