// Package history verifies one-copy serializability (paper §3). It checks
// recorded executions against the properties the transaction tier must
// guarantee:
//
//	(R1)      no two datacenter logs disagree on a log position
//	(L1)(L2)  committed transactions appear in the log, whole, exactly once
//	(L3)      the log prefix plus each entry is one-copy serializable
//	(A1)(A2)  reads observe the transaction's own writes, else the state at
//	          the transaction's read position
//	(F2)      no committed transaction sits in an epoch-fenced entry
//
// The checker replays the merged log as the serial history S of Theorem 1
// and validates every committed transaction's reads against it. The replay
// is epoch-aware (DESIGN.md §11): master-claim entries raise the prevailing
// epoch in log order, entries stamped with a superseded epoch are void —
// excluded from the serial history exactly as replog's apply path excludes
// them — and a client-reported commit inside such an entry is flagged as
// F2, the two-concurrent-masters bug.
//
// Integration and stress tests run the checker over every execution; any
// violation is a bug in the commit protocol.
package history
