package history

import (
	"strings"
	"testing"

	"paxoscp/internal/wal"
)

func txn(id string, readPos int64, reads []string, writes map[string]string) wal.Txn {
	return wal.Txn{ID: id, Origin: "V1", ReadPos: readPos, ReadSet: reads, Writes: writes}
}

func logOf(entries ...wal.Entry) map[int64]wal.Entry {
	out := make(map[int64]wal.Entry, len(entries))
	for i, e := range entries {
		out[int64(i+1)] = e
	}
	return out
}

func hasViolation(vs []Violation, prop, substr string) bool {
	for _, v := range vs {
		if v.Property == prop && strings.Contains(v.Detail, substr) {
			return true
		}
	}
	return false
}

func TestCleanSerialHistoryPasses(t *testing.T) {
	t1 := txn("t1", 0, nil, map[string]string{"x": "1"})
	t2 := txn("t2", 1, []string{"x"}, map[string]string{"y": "2"})
	log := logOf(wal.NewEntry(t1), wal.NewEntry(t2))
	logs := map[string]map[int64]wal.Entry{"A": log, "B": log}
	commits := []Commit{
		{ID: "t1", ReadPos: 0, Pos: 1, Reads: map[string]string{}, Writes: map[string]string{"x": "1"}},
		{ID: "t2", ReadPos: 1, Pos: 2, Reads: map[string]string{"x": "1"}, Writes: map[string]string{"y": "2"}},
	}
	if vs := Check(logs, commits); len(vs) != 0 {
		t.Fatalf("clean history flagged: %v", vs)
	}
}

func TestR1DivergentLogsDetected(t *testing.T) {
	e1 := wal.NewEntry(txn("t1", 0, nil, map[string]string{"x": "1"}))
	e2 := wal.NewEntry(txn("OTHER", 0, nil, map[string]string{"x": "9"}))
	logs := map[string]map[int64]wal.Entry{
		"A": {1: e1},
		"B": {1: e2},
	}
	vs := Check(logs, nil)
	if !hasViolation(vs, "R1", "position 1 differs") {
		t.Fatalf("divergent logs not flagged: %v", vs)
	}
}

func TestL1MissingCommitDetected(t *testing.T) {
	logs := map[string]map[int64]wal.Entry{"A": {}}
	commits := []Commit{{ID: "ghost", Pos: 1, Writes: map[string]string{"x": "1"}}}
	vs := Check(logs, commits)
	if !hasViolation(vs, "L1", "ghost") {
		t.Fatalf("missing commit not flagged: %v", vs)
	}
}

func TestL1ReadOnlyInLogDetected(t *testing.T) {
	e := wal.NewEntry(txn("ro", 0, []string{"x"}, map[string]string{"x": "oops"}))
	logs := map[string]map[int64]wal.Entry{"A": logOf(e)}
	commits := []Commit{{ID: "ro", ReadPos: 0, Pos: 0, Reads: map[string]string{"x": ""}}}
	vs := Check(logs, commits)
	if !hasViolation(vs, "L1", "read-only") {
		t.Fatalf("read-only txn in log not flagged: %v", vs)
	}
}

func TestL2DoubleCommitDetected(t *testing.T) {
	tt := txn("dup", 0, nil, map[string]string{"x": "1"})
	logs := map[string]map[int64]wal.Entry{
		"A": logOf(wal.NewEntry(tt), wal.NewEntry(tt)),
	}
	vs := Check(logs, nil)
	if !hasViolation(vs, "L2", "multiple positions") {
		t.Fatalf("double placement not flagged: %v", vs)
	}
}

func TestL2PositionMismatchDetected(t *testing.T) {
	tt := txn("t", 0, nil, map[string]string{"x": "1"})
	logs := map[string]map[int64]wal.Entry{"A": logOf(wal.NewEntry(tt))}
	commits := []Commit{{ID: "t", Pos: 5, Writes: map[string]string{"x": "1"}}}
	vs := Check(logs, commits)
	if !hasViolation(vs, "L2", "logged at 1") {
		t.Fatalf("position mismatch not flagged: %v", vs)
	}
}

func TestL3StaleReadDetected(t *testing.T) {
	// t2 read at position 0 but committed at 3; position 2 wrote its read key.
	t1 := txn("t1", 0, nil, map[string]string{"a": "1"})
	t2 := txn("t2", 0, nil, map[string]string{"x": "mid"})
	t3 := txn("t3", 0, []string{"x"}, map[string]string{"y": "1"})
	logs := map[string]map[int64]wal.Entry{
		"A": logOf(wal.NewEntry(t1), wal.NewEntry(t2), wal.NewEntry(t3)),
	}
	vs := Check(logs, nil)
	if !hasViolation(vs, "L3", "position 2 wrote it") {
		t.Fatalf("stale read not flagged: %v", vs)
	}
}

func TestL3IntraEntryConflictDetected(t *testing.T) {
	// Combined entry where the second txn reads the first's write.
	t1 := txn("t1", 0, nil, map[string]string{"x": "1"})
	t2 := txn("t2", 0, []string{"x"}, map[string]string{"y": "1"})
	logs := map[string]map[int64]wal.Entry{"A": logOf(wal.NewEntry(t1, t2))}
	vs := Check(logs, nil)
	if !hasViolation(vs, "L3", "not serializable in list order") {
		t.Fatalf("intra-entry conflict not flagged: %v", vs)
	}
}

func TestL3ReadPosBeyondCommitDetected(t *testing.T) {
	bad := txn("bad", 7, nil, map[string]string{"x": "1"})
	logs := map[string]map[int64]wal.Entry{"A": logOf(wal.NewEntry(bad))}
	vs := Check(logs, nil)
	if !hasViolation(vs, "L3", "read position 7") {
		t.Fatalf("forward read position not flagged: %v", vs)
	}
}

func TestA2WrongReadValueDetected(t *testing.T) {
	t1 := txn("t1", 0, nil, map[string]string{"x": "1"})
	t2 := txn("t2", 1, []string{"x"}, map[string]string{"y": "2"})
	logs := map[string]map[int64]wal.Entry{"A": logOf(wal.NewEntry(t1), wal.NewEntry(t2))}
	commits := []Commit{
		{ID: "t2", ReadPos: 1, Pos: 2, Reads: map[string]string{"x": "WRONG"}, Writes: map[string]string{"y": "2"}},
	}
	vs := Check(logs, commits)
	if !hasViolation(vs, "A2", `read "x"`) {
		t.Fatalf("wrong read value not flagged: %v", vs)
	}
}

func TestA2ReadOnlyWrongValueDetected(t *testing.T) {
	t1 := txn("t1", 0, nil, map[string]string{"x": "1"})
	logs := map[string]map[int64]wal.Entry{"A": logOf(wal.NewEntry(t1))}
	commits := []Commit{
		{ID: "ro", ReadPos: 1, Pos: 1, Reads: map[string]string{"x": "stale"}},
	}
	vs := Check(logs, commits)
	if !hasViolation(vs, "A2", "read-only") {
		t.Fatalf("read-only stale read not flagged: %v", vs)
	}
}

func TestReadOnlyCorrectValuePasses(t *testing.T) {
	t1 := txn("t1", 0, nil, map[string]string{"x": "1"})
	logs := map[string]map[int64]wal.Entry{"A": logOf(wal.NewEntry(t1))}
	commits := []Commit{
		{ID: "ro0", ReadPos: 0, Pos: 0, Reads: map[string]string{"x": ""}},
		{ID: "ro1", ReadPos: 1, Pos: 1, Reads: map[string]string{"x": "1"}},
	}
	if vs := Check(logs, commits); len(vs) != 0 {
		t.Fatalf("correct read-only txns flagged: %v", vs)
	}
}

func TestLogHoleDetected(t *testing.T) {
	t1 := txn("t1", 0, nil, map[string]string{"x": "1"})
	t3 := txn("t3", 2, nil, map[string]string{"y": "1"})
	logs := map[string]map[int64]wal.Entry{
		"A": {1: wal.NewEntry(t1), 3: wal.NewEntry(t3)},
	}
	vs := Check(logs, nil)
	if !hasViolation(vs, "LOG", "hole") {
		t.Fatalf("log hole not flagged: %v", vs)
	}
}

func TestCombinedEntryValidOrderPasses(t *testing.T) {
	// [t-reader-of-a, t-writer-of-a] is fine in that order.
	tr := txn("tr", 0, []string{"a"}, map[string]string{"b": "1"})
	tw := txn("tw", 0, nil, map[string]string{"a": "2"})
	logs := map[string]map[int64]wal.Entry{"A": logOf(wal.NewEntry(tr, tw))}
	commits := []Commit{
		{ID: "tr", ReadPos: 0, Pos: 1, Reads: map[string]string{"a": ""}, Writes: map[string]string{"b": "1"}},
		{ID: "tw", ReadPos: 0, Pos: 1, Reads: map[string]string{}, Writes: map[string]string{"a": "2"}},
	}
	if vs := Check(logs, commits); len(vs) != 0 {
		t.Fatalf("valid combined entry flagged: %v", vs)
	}
}

func TestNoOpEntriesPass(t *testing.T) {
	t2 := txn("t2", 1, nil, map[string]string{"x": "1"})
	logs := map[string]map[int64]wal.Entry{
		"A": {1: wal.NoOp(), 2: wal.NewEntry(t2)},
	}
	if vs := Check(logs, nil); len(vs) != 0 {
		t.Fatalf("no-op entry flagged: %v", vs)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := &Recorder{}
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			for j := 0; j < 50; j++ {
				rec.Record(Commit{ID: "t", Pos: int64(j)})
			}
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := len(rec.Commits()); got != 400 {
		t.Fatalf("recorded %d, want 400", got)
	}
}

func TestWriteSetMismatchDetected(t *testing.T) {
	logged := txn("t", 0, nil, map[string]string{"x": "logged"})
	logs := map[string]map[int64]wal.Entry{"A": logOf(wal.NewEntry(logged))}
	commits := []Commit{
		{ID: "t", ReadPos: 0, Pos: 1, Writes: map[string]string{"x": "client-side"}},
	}
	vs := Check(logs, commits)
	if !hasViolation(vs, "L2", "write set") {
		t.Fatalf("write-set divergence not flagged: %v", vs)
	}
}

// TestCheckQuiescedToleratesTrailingHoles is the regression test for the PR 5
// note: logs snapshotted without quiescing traffic carry trailing ambiguous
// holes above every applied watermark (in-flight proposals decided on some
// replica but learned nowhere the snapshot saw). Check flags those as LOG
// violations; CheckQuiesced, given the max applied watermark as horizon,
// tolerates them — while still catching holes below a watermark and commits
// claiming truncated positions.
func TestCheckQuiescedToleratesTrailingHoles(t *testing.T) {
	t1 := txn("t1", 0, nil, map[string]string{"x": "1"})
	t2 := txn("t2", 1, []string{"x"}, map[string]string{"y": "2"})
	stray := txn("stray", 2, nil, map[string]string{"z": "9"})
	// Positions 1,2 contiguous; 5 is a trailing in-flight entry above the
	// hole at 3.
	log := map[int64]wal.Entry{1: wal.NewEntry(t1), 2: wal.NewEntry(t2), 5: wal.NewEntry(stray)}
	logs := map[string]map[int64]wal.Entry{"A": log, "B": log}
	commits := []Commit{
		{ID: "t1", ReadPos: 0, Pos: 1, Reads: map[string]string{}, Writes: map[string]string{"x": "1"}},
		{ID: "t2", ReadPos: 1, Pos: 2, Reads: map[string]string{"x": "1"}, Writes: map[string]string{"y": "2"}},
	}

	// Strict mode: the hole at 3 is a LOG violation.
	if vs := Check(logs, commits); !hasViolation(vs, "LOG", "expected position 3") {
		t.Fatalf("strict Check missed the trailing hole: %v", vs)
	}
	// Quiesce-aware with the watermark below the hole: clean.
	if vs := CheckQuiesced(logs, 2, commits); len(vs) != 0 {
		t.Fatalf("CheckQuiesced flagged trailing in-flight debt: %v", vs)
	}
}

func TestCheckQuiescedStillFlagsHolesBelowHorizon(t *testing.T) {
	t1 := txn("t1", 0, nil, map[string]string{"x": "1"})
	t4 := txn("t4", 3, nil, map[string]string{"y": "2"})
	// Hole at 2-3 with the watermark claiming position 4 applied: a decided,
	// applied position is missing everywhere — a real violation.
	log := map[int64]wal.Entry{1: wal.NewEntry(t1), 4: wal.NewEntry(t4)}
	logs := map[string]map[int64]wal.Entry{"A": log}
	vs := CheckQuiesced(logs, 4, nil)
	if !hasViolation(vs, "LOG", "expected position 2") {
		t.Fatalf("hole below horizon not flagged: %v", vs)
	}
}

func TestCheckQuiescedFlagsCommitAboveTruncation(t *testing.T) {
	t1 := txn("t1", 0, nil, map[string]string{"x": "1"})
	stray := txn("stray", 1, nil, map[string]string{"z": "9"})
	log := map[int64]wal.Entry{1: wal.NewEntry(t1), 5: wal.NewEntry(stray)}
	logs := map[string]map[int64]wal.Entry{"A": log}
	commits := []Commit{
		{ID: "t1", ReadPos: 0, Pos: 1, Writes: map[string]string{"x": "1"}},
		// A client claims "stray" committed at 5 — but a delivered verdict
		// implies the position was applied, i.e. <= horizon. Truncation must
		// not hide it.
		{ID: "stray", ReadPos: 1, Pos: 5, Writes: map[string]string{"z": "9"}},
	}
	vs := CheckQuiesced(logs, 1, commits)
	if !hasViolation(vs, "L1", "stray") {
		t.Fatalf("commit above truncation not flagged: %v", vs)
	}
}
