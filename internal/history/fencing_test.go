package history

import (
	"testing"

	"paxoscp/internal/wal"
)

// stamped returns a single-transaction entry stamped with a master epoch.
func stamped(epoch int64, t wal.Txn) wal.Entry {
	e := wal.NewEntry(t)
	e.Epoch = epoch
	return e
}

// TestFencedEntryExcludedFromSerialHistory: a deposed master's entry above a
// takeover claim is void — its writes must not appear in the serial history,
// so a later reader correctly observes the pre-fencing value.
func TestFencedEntryExcludedFromSerialHistory(t *testing.T) {
	log := logOf(
		wal.NewClaim(1, "V1"),
		stamped(1, txn("t1", 1, nil, map[string]string{"x": "old"})),
		wal.NewClaim(2, "V2"),
		// V1's in-flight entry lands above V2's claim: fenced, writes void.
		stamped(1, txn("t-fenced", 2, nil, map[string]string{"x": "stale"})),
		// V2's reader observes "old", not "stale" — correct iff the checker
		// excludes the fenced write from the replay.
		stamped(2, txn("t2", 4, []string{"x"}, map[string]string{"y": "2"})),
	)
	logs := map[string]map[int64]wal.Entry{"A": log, "B": log}
	commits := []Commit{
		{ID: "t1", ReadPos: 1, Pos: 2, Reads: map[string]string{}, Writes: map[string]string{"x": "old"}},
		{ID: "t2", ReadPos: 4, Pos: 5, Reads: map[string]string{"x": "old"}, Writes: map[string]string{"y": "2"}},
	}
	if vs := Check(logs, commits); len(vs) != 0 {
		t.Fatalf("fencing-aware replay flagged a clean history: %v", vs)
	}
}

// TestCommitInFencedEntryFlaggedF2: a client-reported commit that exists
// only inside a fenced entry is the two-concurrent-masters bug and must be
// flagged as F2, not pass silently.
func TestCommitInFencedEntryFlaggedF2(t *testing.T) {
	log := logOf(
		wal.NewClaim(1, "V1"),
		wal.NewClaim(2, "V2"),
		stamped(1, txn("t-dup", 2, nil, map[string]string{"x": "stale"})),
	)
	logs := map[string]map[int64]wal.Entry{"A": log}
	commits := []Commit{
		{ID: "t-dup", ReadPos: 2, Pos: 3, Reads: map[string]string{}, Writes: map[string]string{"x": "stale"}},
	}
	vs := Check(logs, commits)
	if !hasViolation(vs, "F2", "t-dup") {
		t.Fatalf("commit inside fenced entry not flagged: %v", vs)
	}
}

// TestStaleClaimDoesNotLowerEpoch: a superseded claim entry that still won
// its Paxos position must not lower the prevailing epoch for later entries.
func TestStaleClaimDoesNotLowerEpoch(t *testing.T) {
	log := logOf(
		wal.NewClaim(2, "V2"),
		wal.NewClaim(1, "V1"), // void: superseded before it landed
		stamped(1, txn("t-stale", 2, nil, map[string]string{"x": "stale"})),
		stamped(2, txn("t-live", 3, nil, map[string]string{"y": "live"})),
	)
	logs := map[string]map[int64]wal.Entry{"A": log}
	commits := []Commit{
		{ID: "t-live", ReadPos: 3, Pos: 4, Reads: map[string]string{}, Writes: map[string]string{"y": "live"}},
	}
	if vs := Check(logs, commits); len(vs) != 0 {
		t.Fatalf("stale claim confused the epoch replay: %v", vs)
	}
	// And the stale-epoch transaction is indeed treated as fenced.
	if fenced := fencedPositions(log); !fenced[3] || fenced[4] {
		t.Fatalf("fenced positions = %v, want {3}", fenced)
	}
}
