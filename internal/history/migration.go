package history

import (
	"sort"
	"sync"

	"paxoscp/internal/placement"
	"paxoscp/internal/wal"
)

// Online growth support (DESIGN.md §15): the group-set timeline that replaces
// the old static-set foreign-group scan, and the checker's mirror of the
// migration voiding rules M1/M2, so a log that contains handoff entries
// replays to the same serial history the replicas computed.

// GroupTimeline records the evolving group set of a run under online growth.
// Groups are only ever added (placement.Grow is append-only), so the timeline
// is a sequence of eras, each a superset of the last. The workload records
// commits while Cluster.Grow advances the eras; both sides share one timeline.
//
// The old leak scan validated commit groups against a single placement — under
// growth that flags every commit on a post-grow group as foreign (checked
// against the initial set) or silently accepts commits from before a group
// existed (checked against the final set). The timeline keeps every era, so
// the scan can ask the right question: was this group ever part of the run?
type GroupTimeline struct {
	mu   sync.Mutex
	eras [][]string
}

// NewGroupTimeline starts a timeline at the initial group set.
func NewGroupTimeline(initial ...string) *GroupTimeline {
	t := &GroupTimeline{}
	t.eras = append(t.eras, append([]string(nil), initial...))
	return t
}

// Grow records the post-growth group set as a new era. Safe for concurrent
// use with Known/Eras — the grower calls it as each growth step completes.
func (t *GroupTimeline) Grow(groups ...string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.eras = append(t.eras, append([]string(nil), groups...))
}

// Eras returns the recorded group sets in order, earliest first.
func (t *GroupTimeline) Eras() [][]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([][]string, len(t.eras))
	for i, era := range t.eras {
		out[i] = append([]string(nil), era...)
	}
	return out
}

// Known reports whether group belongs to any era. Because eras only ever add
// groups, this equals membership in the final era — but spelling it as "any
// era" keeps the scan correct even if a future placement learns to shrink.
func (t *GroupTimeline) Known(group string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, era := range t.eras {
		for _, g := range era {
			if g == group {
				return true
			}
		}
	}
	return false
}

// ByGroupTimeline is ByGroup for a run with online growth: commits split per
// group exactly as ByGroup, and each commit's group is validated against the
// timeline. A commit on a group no era contains is a G1 violation — a verdict
// that escaped the placement entirely. The returned map carries only known
// groups; checking it per group therefore covers every legitimate commit,
// including those on groups added mid-run.
func ByGroupTimeline(commits []Commit, t *GroupTimeline) (map[string][]Commit, []Violation) {
	var out []Violation
	byGroup := make(map[string][]Commit)
	for _, c := range commits {
		if !t.Known(c.Group) {
			out = append(out, violationf("G1",
				"commit %s reports group %q, which no era of the run's group-set timeline contains",
				c.ID, c.Group))
			continue
		}
		byGroup[c.Group] = append(byGroup[c.Group], c)
	}
	return byGroup, out
}

// LiveTxns returns, for one group's logs, the IDs of transactions that
// actually committed there — present in a non-fenced entry and not voided by
// a migration rule — mapped to the positions they committed at. The rescale
// nemesis's cross-group leak scan counts live appearances of every reported
// commit across all groups: exactly one, in the commit's own group, means no
// migrated key was lost or double-committed at any point in the handoff.
func LiveTxns(logs map[string]map[int64]wal.Entry) map[string][]int64 {
	merged, _ := mergeLogs(logs)
	fenced := fencedPositions(merged)
	voided := migrationVoids(merged, fenced)
	out := make(map[string][]int64)
	for pos, e := range merged {
		if fenced[pos] {
			continue
		}
		for _, t := range e.Txns {
			if voided[pos][t.ID] {
				continue
			}
			out[t.ID] = append(out[t.ID], pos)
		}
	}
	return out
}

// migRangeAt pairs a handoff's compiled range predicate with the position it
// applied at.
type migRangeAt struct {
	set *placement.MoveSet
	h   *wal.Handoff
	pos int64
}

// migrationVoids mirrors replog's apply-time migration rules over the merged
// log and returns, per position, the transactions voided there:
//
//	M1 — a transaction above an applied HandoffOut writing any key of the
//	     departed range commits nothing;
//	M2 — a non-backfill transaction writing a key of a range prepared but
//	     not yet opened (HandoffPrepare applied, HandoffIn not) commits
//	     nothing.
//
// Epoch-fenced positions (F2) are skipped entirely: a fenced handoff entry
// never applied, so it fences nothing — the same order of rules drain uses.
// Phases index the state the way replog does for the log's own group: in a
// group's log, prepare/in entries can only target it as To and out/tombstone
// as From, because the coordinator submits each phase to the group it
// concerns and the checker runs per group.
func migrationVoids(merged map[int64]wal.Entry, fenced map[int64]bool) map[int64]map[string]bool {
	ps := make([]int64, 0, len(merged))
	hasHandoff := false
	for p, e := range merged {
		ps = append(ps, p)
		if e.IsHandoff() {
			hasHandoff = true
		}
	}
	if !hasHandoff {
		return nil
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })

	var out, inPend []migRangeAt
	voided := make(map[int64]map[string]bool)
	for _, pos := range ps {
		if fenced[pos] {
			continue
		}
		e := merged[pos]
		if h := e.Handoff; h != nil {
			r := migRangeAt{set: placement.NewMoveSet(h.Groups, h.From, h.To), h: h, pos: pos}
			switch h.Phase {
			case wal.HandoffPrepare:
				inPend = append(inPend, r)
			case wal.HandoffOut:
				out = append(out, r)
			case wal.HandoffIn:
				kept := inPend[:0]
				for _, p := range inPend {
					if p.h.From == h.From && p.h.To == h.To && p.h.Version == h.Version {
						continue
					}
					kept = append(kept, p)
				}
				inPend = kept
			}
			continue
		}
		if len(out) == 0 && len(inPend) == 0 {
			continue
		}
		for _, t := range e.Txns {
			if voidsTxn(t, out, inPend) {
				if voided[pos] == nil {
					voided[pos] = make(map[string]bool)
				}
				voided[pos][t.ID] = true
			}
		}
	}
	return voided
}

// voidsTxn is replog migState.voidsTxn restated over the checker's state.
func voidsTxn(t wal.Txn, out, inPend []migRangeAt) bool {
	for k := range t.Writes {
		for _, r := range out {
			if r.set.Moves(k) {
				return true // M1
			}
		}
	}
	if !t.Backfill {
		for k := range t.Writes {
			for _, r := range inPend {
				if r.set.Moves(k) {
					return true // M2
				}
			}
		}
	}
	return false
}
