package history

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"paxoscp/internal/wal"
)

// genExecution builds a random valid execution: a serial log over a small
// key space where every transaction's reads are computed from the replayed
// state at its read position and its read set never intersects later
// writes. It returns the logs (replicated to 2 DCs) and the client commits.
func genExecution(seed int64) (map[string]map[int64]wal.Entry, []Commit) {
	rng := rand.New(rand.NewSource(seed))
	keys := []string{"a", "b", "c", "d"}
	nPos := 1 + rng.Intn(12)

	state := map[string]string{}    // current value per key
	written := map[string][]int64{} // key -> positions that wrote it
	valueAt := func(key string, pos int64) string {
		// Latest write to key at position <= pos.
		best := int64(-1)
		for _, p := range written[key] {
			if p <= pos && p > best {
				best = p
			}
		}
		if best == -1 {
			return ""
		}
		return fmt.Sprintf("%s@%d", key, best)
	}
	cleanSince := func(key string, since, until int64) bool {
		for _, p := range written[key] {
			if p > since && p < until {
				return false
			}
		}
		return true
	}
	_ = state

	log := map[int64]wal.Entry{}
	var commits []Commit
	txnID := 0
	for pos := int64(1); pos <= int64(nPos); pos++ {
		// Each entry holds 1-2 transactions whose list order is valid.
		nTxns := 1 + rng.Intn(2)
		var entry wal.Entry
		wroteInEntry := map[string]bool{}
		for i := 0; i < nTxns; i++ {
			txnID++
			id := fmt.Sprintf("t%d", txnID)
			readPos := pos - 1
			if readPos > 0 && rng.Intn(3) == 0 {
				readPos-- // occasionally a promoted transaction
			}
			// Pick a read key whose value is stable from readPos to pos and
			// not written earlier in this entry.
			var reads []string
			readVals := map[string]string{}
			for _, k := range rng.Perm(len(keys)) {
				key := keys[k]
				if !wroteInEntry[key] && cleanSince(key, readPos, pos) {
					reads = append(reads, key)
					readVals[key] = valueAt(key, readPos)
					break
				}
			}
			wkey := keys[rng.Intn(len(keys))]
			writes := map[string]string{wkey: fmt.Sprintf("%s@%d", wkey, pos)}
			entry.Txns = append(entry.Txns, wal.Txn{
				ID: id, Origin: "A", ReadPos: readPos, ReadSet: reads, Writes: writes,
			})
			wroteInEntry[wkey] = true
			commits = append(commits, Commit{
				ID: id, Origin: "A", ReadPos: readPos, Pos: pos,
				Reads: readVals, Writes: writes,
			})
		}
		log[pos] = entry
		for k := range entry.Writes() {
			written[k] = append(written[k], pos)
		}
	}
	return map[string]map[int64]wal.Entry{"A": log, "B": log}, commits
}

// TestPropValidExecutionsPass: randomly generated valid executions must
// never be flagged.
func TestPropValidExecutionsPass(t *testing.T) {
	f := func(seed int64) bool {
		logs, commits := genExecution(seed)
		vs := Check(logs, commits)
		if len(vs) != 0 {
			t.Logf("seed %d: %v", seed, vs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropMutatedExecutionsCaught: corrupting a valid execution must be
// detected. Each mutation class maps to the property expected to fire.
func TestPropMutatedExecutionsCaught(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(rng *rand.Rand, logs map[string]map[int64]wal.Entry, commits []Commit) bool
	}{
		{"diverge-replica", func(rng *rand.Rand, logs map[string]map[int64]wal.Entry, commits []Commit) bool {
			log := logs["B"]
			for pos := range log {
				log[pos] = wal.NewEntry(wal.Txn{ID: "evil", Writes: map[string]string{"z": "1"}})
				return true
			}
			return false
		}},
		{"duplicate-txn", func(rng *rand.Rand, logs map[string]map[int64]wal.Entry, commits []Commit) bool {
			for _, log := range logs {
				var first wal.Txn
				var found bool
				for _, e := range log {
					if len(e.Txns) > 0 {
						first = e.Txns[0]
						found = true
						break
					}
				}
				if !found {
					return false
				}
				pos := int64(len(log) + 1)
				dup := wal.NewEntry(first)
				for dc := range logs {
					logs[dc][pos] = dup
				}
				return true
			}
			return false
		}},
		{"stale-read-value", func(rng *rand.Rand, logs map[string]map[int64]wal.Entry, commits []Commit) bool {
			for i := range commits {
				for k := range commits[i].Reads {
					commits[i].Reads[k] = "corrupted-value"
					return true
				}
			}
			return false
		}},
		{"hole", func(rng *rand.Rand, logs map[string]map[int64]wal.Entry, commits []Commit) bool {
			if len(logs["A"]) < 2 {
				return false
			}
			for dc := range logs {
				delete(logs[dc], 1)
			}
			return true
		}},
	}
	for _, m := range mutations {
		m := m
		t.Run(m.name, func(t *testing.T) {
			caught, applicable := 0, 0
			for seed := int64(0); seed < 60; seed++ {
				logs, commits := genExecution(seed)
				rng := rand.New(rand.NewSource(seed))
				if !m.mutate(rng, logs, commits) {
					continue
				}
				applicable++
				if len(Check(logs, commits)) > 0 {
					caught++
				}
			}
			if applicable == 0 {
				t.Skip("mutation never applicable")
			}
			if caught != applicable {
				t.Fatalf("mutation %q escaped detection in %d of %d cases",
					m.name, applicable-caught, applicable)
			}
		})
	}
}
