package network

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
)

// envelope wraps a Message on the UDP wire with correlation metadata.
type envelope struct {
	ID   uint64  `json:"id"`
	From string  `json:"from"`
	Resp bool    `json:"resp,omitempty"`
	Msg  Message `json:"msg"`
}

// UDP is a real UDP transport: one socket per datacenter, binary datagrams
// (codec.go), no retransmission or acknowledgement below the request/response
// layer. The paper's prototype used UDP with a 2-second loss-detection
// timeout; this transport reproduces those semantics faithfully — a dropped
// datagram in either direction simply surfaces as ErrTimeout.
//
// Datagrams are encoded with the compact binary codec behind a version byte;
// legacy JSON envelopes (which start with '{') are still accepted and
// answered in JSON, so binary and JSON peers interoperate during a rolling
// upgrade (DESIGN.md §9).
type UDP struct {
	local   string
	conn    *net.UDPConn
	handler Handler

	mu      sync.RWMutex
	peers   map[string]*net.UDPAddr
	pending map[uint64]chan Message
	closed  bool
	// peerVer caches the envelope encoding each peer last spoke — a wire
	// version byte, or jsonFirstByte for a legacy JSON peer. Outbound
	// requests use it so a not-yet-upgraded peer is addressed in a layout
	// it decodes (the docs' rolling-upgrade promise works in both
	// directions); unknown peers get the current version.
	peerVer map[string]byte

	nextID atomic.Uint64
	wg     sync.WaitGroup
}

// NewUDP binds a UDP socket on bindAddr (e.g. "127.0.0.1:7001") for the
// datacenter named local and starts serving inbound requests with h. peers
// maps every datacenter name (including local) to its UDP address. Peer
// addresses are resolved eagerly so a bad address fails fast.
func NewUDP(local, bindAddr string, peers map[string]string, h Handler) (*UDP, error) {
	laddr, err := net.ResolveUDPAddr("udp", bindAddr)
	if err != nil {
		return nil, fmt.Errorf("network: bind %q: %w", bindAddr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %q: %w", bindAddr, err)
	}
	u := &UDP{
		local:   local,
		conn:    conn,
		handler: h,
		peers:   make(map[string]*net.UDPAddr, len(peers)),
		pending: make(map[uint64]chan Message),
		peerVer: make(map[string]byte),
	}
	for name, addr := range peers {
		a, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("network: peer %s=%q: %w", name, addr, err)
		}
		u.peers[name] = a
	}
	u.wg.Add(1)
	go u.readLoop()
	return u, nil
}

// LocalAddr returns the bound socket address (useful with port 0 in tests).
func (u *UDP) LocalAddr() string { return u.conn.LocalAddr().String() }

// SetPeer adds or updates a peer address after construction.
func (u *UDP) SetPeer(name, addr string) error {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("network: peer %s=%q: %w", name, addr, err)
	}
	u.mu.Lock()
	u.peers[name] = a
	u.mu.Unlock()
	return nil
}

func (u *UDP) Local() string { return u.local }

func (u *UDP) Peers() []string {
	u.mu.RLock()
	defer u.mu.RUnlock()
	out := make([]string, 0, len(u.peers))
	for name := range u.peers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// maxDatagram bounds inbound datagram size; combined entries for the paper's
// workloads are far below this.
const maxDatagram = 64 * 1024

func (u *UDP) readLoop() {
	defer u.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, raddr, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		var env envelope
		// replyVer is the binary wire version to answer in; 0 means the
		// request arrived as a legacy JSON envelope and is answered in JSON.
		var replyVer byte
		switch {
		case n > 0 && (buf[0] == wireVersion || buf[0] == wireVersion2):
			var err error
			if env, replyVer, err = decodeEnvelope(buf[:n]); err != nil {
				continue // drop malformed datagrams, as real UDP services must
			}
		case n > 0 && buf[0] == jsonFirstByte:
			if err := json.Unmarshal(buf[:n], &env); err != nil {
				continue
			}
		default:
			continue
		}
		if env.From != "" {
			ver := replyVer
			if ver == 0 {
				ver = jsonFirstByte
			}
			u.mu.Lock()
			u.peerVer[env.From] = ver
			u.mu.Unlock()
		}
		if env.Resp {
			u.mu.RLock()
			ch := u.pending[env.ID]
			u.mu.RUnlock()
			if ch != nil {
				select {
				case ch <- env.Msg:
				default: // duplicate or late response; drop
				}
			}
			continue
		}
		// Inbound request: serve in its own goroutine (stateless service
		// processes, §2.2) and reply to the observed source address.
		go u.serve(env, raddr, replyVer)
	}
}

func (u *UDP) serve(env envelope, raddr *net.UDPAddr, replyVer byte) {
	resp := u.handler(env.From, env.Msg)
	reply := envelope{ID: env.ID, From: u.local, Resp: true, Msg: resp}
	var out []byte
	if replyVer == 0 {
		var err error
		if out, err = json.Marshal(reply); err != nil {
			return
		}
	} else {
		out = appendEnvelope(make([]byte, 0, 128), reply, replyVer)
	}
	u.conn.WriteToUDP(out, raddr) // best effort; loss is the failure model
}

// Send implements Transport.
func (u *UDP) Send(ctx context.Context, to string, req Message) (Message, error) {
	u.mu.RLock()
	addr, ok := u.peers[to]
	closed := u.closed
	u.mu.RUnlock()
	if closed {
		return Message{}, ErrClosed
	}
	if !ok {
		return Message{}, fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultTimeout)
		defer cancel()
	}

	id := u.nextID.Add(1)
	ch := make(chan Message, 1)
	u.mu.Lock()
	u.pending[id] = ch
	u.mu.Unlock()
	defer func() {
		u.mu.Lock()
		delete(u.pending, id)
		u.mu.Unlock()
	}()

	// Speak the encoding the peer last spoke to us (current version for a
	// peer we have not heard from), so mixed-version clusters interoperate
	// in both directions during a rolling upgrade.
	u.mu.RLock()
	ver, known := u.peerVer[to]
	u.mu.RUnlock()
	env := envelope{ID: id, From: u.local, Msg: req}
	var out []byte
	if known && ver == jsonFirstByte {
		var err error
		if out, err = json.Marshal(env); err != nil {
			return Message{}, fmt.Errorf("network: encode request: %w", err)
		}
	} else {
		if !known {
			ver = wireVersion2
		}
		out = appendEnvelope(make([]byte, 0, 128), env, ver)
	}
	if _, err := u.conn.WriteToUDP(out, addr); err != nil {
		// Treat send failure like loss: wait out the timeout so callers see
		// uniform behaviour, unless the context is already done.
		select {
		case <-ctx.Done():
		}
		return Message{}, ErrTimeout
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		return Message{}, ErrTimeout
	}
}

// Close shuts the socket down and waits for the read loop to exit.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	err := u.conn.Close()
	u.wg.Wait()
	return err
}
