package network

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
)

// envelope wraps a Message on the UDP wire with correlation metadata.
type envelope struct {
	ID   uint64
	From string
	Resp bool
	Msg  Message
}

// UDP is a real UDP transport: one socket per datacenter, binary datagrams
// (codec.go), no retransmission or acknowledgement below the request/response
// layer. The paper's prototype used UDP with a 2-second loss-detection
// timeout; this transport reproduces those semantics faithfully — a dropped
// datagram in either direction simply surfaces as ErrTimeout.
//
// The read loop is allocation-free in steady state: datagrams are read with
// ReadFromUDPAddrPort (no per-packet address allocation), requests decode
// into pooled scratch that lives until the handler replies, and replies
// encode into pooled buffers. Responses to our own requests are decoded with
// fresh allocations because they outlive the loop iteration (they travel
// through the pending-correlation channel to a waiting Send).
type UDP struct {
	local   string
	conn    *net.UDPConn
	handler AsyncHandler
	// writeTo sends one datagram; a hook so tests can pin the serve path's
	// allocation profile without a live peer.
	writeTo func(b []byte, addr netip.AddrPort) (int, error)

	mu      sync.RWMutex
	peers   map[string]netip.AddrPort
	pending map[uint64]chan Message
	closed  bool

	nextID atomic.Uint64
	wg     sync.WaitGroup
}

// NewUDP binds a UDP socket on bindAddr (e.g. "127.0.0.1:7001") for the
// datacenter named local and serves each inbound request in its own
// goroutine through the synchronous handler h. peers maps every datacenter
// name (including local) to its UDP address.
func NewUDP(local, bindAddr string, peers map[string]string, h Handler) (*UDP, error) {
	var ah AsyncHandler
	if h != nil {
		ah = func(from string, req Message, reply func(Message)) {
			go func() { reply(h(from, req)) }()
		}
	}
	return NewUDPAsync(local, bindAddr, peers, ah)
}

// NewUDPAsync binds a UDP socket like NewUDP but serves inbound requests
// through an AsyncHandler, which the read loop invokes directly: the handler
// decides what runs inline and what moves to another goroutine. Peer
// addresses are resolved eagerly so a bad address fails fast.
func NewUDPAsync(local, bindAddr string, peers map[string]string, h AsyncHandler) (*UDP, error) {
	laddr, err := net.ResolveUDPAddr("udp", bindAddr)
	if err != nil {
		return nil, fmt.Errorf("network: bind %q: %w", bindAddr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %q: %w", bindAddr, err)
	}
	u := &UDP{
		local:   local,
		conn:    conn,
		handler: h,
		peers:   make(map[string]netip.AddrPort, len(peers)),
		pending: make(map[uint64]chan Message),
	}
	u.writeTo = u.conn.WriteToUDPAddrPort
	for name, addr := range peers {
		a, err := resolveAddrPort(addr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("network: peer %s=%q: %w", name, addr, err)
		}
		u.peers[name] = a
	}
	u.wg.Add(1)
	go u.readLoop()
	return u, nil
}

// resolveAddrPort resolves a host:port string to a netip.AddrPort, going
// through the resolver for hostnames.
func resolveAddrPort(addr string) (netip.AddrPort, error) {
	if ap, err := netip.ParseAddrPort(addr); err == nil {
		return ap, nil
	}
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return netip.AddrPort{}, err
	}
	return a.AddrPort(), nil
}

// LocalAddr returns the bound socket address (useful with port 0 in tests).
func (u *UDP) LocalAddr() string { return u.conn.LocalAddr().String() }

// SetPeer adds or updates a peer address after construction.
func (u *UDP) SetPeer(name, addr string) error {
	a, err := resolveAddrPort(addr)
	if err != nil {
		return fmt.Errorf("network: peer %s=%q: %w", name, addr, err)
	}
	u.mu.Lock()
	u.peers[name] = a
	u.mu.Unlock()
	return nil
}

func (u *UDP) Local() string { return u.local }

func (u *UDP) Peers() []string {
	u.mu.RLock()
	defer u.mu.RUnlock()
	out := make([]string, 0, len(u.peers))
	for name := range u.peers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// maxDatagram bounds inbound datagram size; combined entries for the paper's
// workloads are far below this.
const maxDatagram = 64 * 1024

func (u *UDP) readLoop() {
	defer u.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, raddr, err := u.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return // closed
		}
		u.handleDatagram(buf[:n], raddr)
	}
}

// handleDatagram processes one inbound datagram: responses resolve a pending
// Send, requests go to the handler. Malformed datagrams are dropped, as real
// UDP services must.
func (u *UDP) handleDatagram(data []byte, raddr netip.AddrPort) {
	if len(data) < 2 || data[0] != wireVersion {
		return
	}
	if data[1]&envFlagResp != 0 {
		// Response: decoded without scratch because the message escapes to
		// the waiting sender through the pending channel.
		env, err := decodeEnvelope(data, nil)
		if err != nil {
			return
		}
		u.mu.RLock()
		ch := u.pending[env.ID]
		u.mu.RUnlock()
		if ch != nil {
			select {
			case ch <- env.Msg:
			default: // duplicate or late response; drop
			}
		}
		return
	}
	// Inbound request: decode into pooled scratch that stays alive until the
	// handler replies.
	dec := decoderPool.Get().(*decoder)
	env, err := decodeEnvelope(data, dec)
	if err != nil {
		decoderPool.Put(dec)
		return
	}
	u.serve(env, dec, raddr)
}

// serve hands one decoded request to the handler. The reply callback is
// idempotent (extra calls are dropped), returns the request's decode scratch
// to the pool, and sends the response from a pooled encode buffer.
func (u *UDP) serve(env envelope, dec *decoder, raddr netip.AddrPort) {
	id := env.ID
	var replied atomic.Bool
	reply := func(resp Message) {
		if !replied.CompareAndSwap(false, true) {
			return
		}
		decoderPool.Put(dec)
		bp := getEncBuf()
		out := appendEnvelope((*bp)[:0], envelope{ID: id, From: u.local, Resp: true, Msg: resp})
		u.writeTo(out, raddr) // best effort; loss is the failure model
		*bp = out
		putEncBuf(bp)
	}
	if u.handler == nil {
		reply(Status(false, "no handler"))
		return
	}
	u.handler(env.From, env.Msg, reply)
}

// Send implements Transport.
func (u *UDP) Send(ctx context.Context, to string, req Message) (Message, error) {
	u.mu.RLock()
	addr, ok := u.peers[to]
	closed := u.closed
	u.mu.RUnlock()
	if closed {
		return Message{}, ErrClosed
	}
	if !ok {
		return Message{}, fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultTimeout)
		defer cancel()
	}

	id := u.nextID.Add(1)
	ch := make(chan Message, 1)
	u.mu.Lock()
	u.pending[id] = ch
	u.mu.Unlock()
	defer func() {
		u.mu.Lock()
		delete(u.pending, id)
		u.mu.Unlock()
	}()

	bp := getEncBuf()
	out := appendEnvelope((*bp)[:0], envelope{ID: id, From: u.local, Msg: req})
	_, err := u.writeTo(out, addr)
	*bp = out
	putEncBuf(bp)
	if err != nil {
		// Treat send failure like loss: wait out the timeout so callers see
		// uniform behaviour, unless the context is already done.
		<-ctx.Done()
		return Message{}, ErrTimeout
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		return Message{}, ErrTimeout
	}
}

// Close shuts the socket down and waits for the read loop to exit.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	err := u.conn.Close()
	u.wg.Wait()
	return err
}
