package network

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func echoHandler(dc string) Handler {
	return func(from string, req Message) Message {
		return Message{Kind: KindStatus, OK: true, Err: dc + "<-" + from, Pos: req.Pos}
	}
}

func testTopo() *Topology {
	t := NewTopology("A", "B", "C")
	t.SetRTT("A", "B", 2*time.Millisecond)
	t.SetRTT("A", "C", 4*time.Millisecond)
	t.SetRTT("B", "C", 2*time.Millisecond)
	return t
}

func TestTopologyRTT(t *testing.T) {
	topo := testTopo()
	if got := topo.RTT("A", "B"); got != 2*time.Millisecond {
		t.Fatalf("RTT(A,B) = %v", got)
	}
	if got := topo.RTT("B", "A"); got != 2*time.Millisecond {
		t.Fatalf("RTT must be symmetric, got %v", got)
	}
	if got := topo.RTT("A", "A"); got != LocalRTT {
		t.Fatalf("self RTT = %v, want LocalRTT", got)
	}
	if got := topo.RTT("A", "unset"); got != LocalRTT {
		t.Fatalf("default RTT = %v, want LocalRTT", got)
	}
	dcs := topo.DCs()
	if len(dcs) != 3 || dcs[0] != "A" || dcs[2] != "C" {
		t.Fatalf("DCs = %v", dcs)
	}
}

func TestSimRequestResponse(t *testing.T) {
	sim := NewSim(testTopo(), SimConfig{Seed: 1})
	defer sim.Close()
	a := sim.Endpoint("A", echoHandler("A"))
	sim.Endpoint("B", echoHandler("B"))

	resp, err := a.Send(context.Background(), "B", Message{Kind: KindPrepare, Pos: 7})
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if !resp.OK || resp.Err != "B<-A" || resp.Pos != 7 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestSimUnknownPeer(t *testing.T) {
	sim := NewSim(testTopo(), SimConfig{Seed: 1})
	defer sim.Close()
	a := sim.Endpoint("A", echoHandler("A"))
	if _, err := a.Send(context.Background(), "Z", Message{}); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestSimLatencyApplied(t *testing.T) {
	topo := NewTopology("A", "B")
	topo.SetRTT("A", "B", 30*time.Millisecond)
	sim := NewSim(topo, SimConfig{Seed: 1})
	defer sim.Close()
	a := sim.Endpoint("A", echoHandler("A"))
	sim.Endpoint("B", echoHandler("B"))

	start := time.Now()
	if _, err := a.Send(context.Background(), "B", Message{}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("round trip took %v, want >= ~30ms", el)
	}
}

func TestSimScaleCompressesLatency(t *testing.T) {
	topo := NewTopology("A", "B")
	topo.SetRTT("A", "B", 100*time.Millisecond)
	sim := NewSim(topo, SimConfig{Seed: 1, Scale: 0.05})
	defer sim.Close()
	a := sim.Endpoint("A", echoHandler("A"))
	sim.Endpoint("B", echoHandler("B"))

	start := time.Now()
	if _, err := a.Send(context.Background(), "B", Message{}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("scaled round trip took %v, want ~5ms", el)
	}
}

func TestSimDownDatacenterTimesOut(t *testing.T) {
	sim := NewSim(testTopo(), SimConfig{Seed: 1})
	defer sim.Close()
	a := sim.Endpoint("A", echoHandler("A"))
	sim.Endpoint("B", echoHandler("B"))
	sim.SetDown("B", true)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := a.Send(ctx, "B", Message{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// The loss must consume the full timeout (paper: message loss is only
	// detectable via timeout).
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("timed out after only %v", el)
	}

	sim.SetDown("B", false)
	if _, err := a.Send(context.Background(), "B", Message{}); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

func TestSimPartition(t *testing.T) {
	sim := NewSim(testTopo(), SimConfig{Seed: 1})
	defer sim.Close()
	a := sim.Endpoint("A", echoHandler("A"))
	b := sim.Endpoint("B", echoHandler("B"))
	sim.Endpoint("C", echoHandler("C"))
	sim.Partition("A", "B")

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Send(ctx, "B", Message{}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("partitioned send: err = %v, want ErrTimeout", err)
	}
	// A–C and B–C remain reachable.
	if _, err := a.Send(context.Background(), "C", Message{}); err != nil {
		t.Fatalf("A->C: %v", err)
	}
	if _, err := b.Send(context.Background(), "C", Message{}); err != nil {
		t.Fatalf("B->C: %v", err)
	}
	sim.Unpartition("A", "B")
	if _, err := a.Send(context.Background(), "B", Message{}); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestSimLossRate(t *testing.T) {
	sim := NewSim(testTopo(), SimConfig{Seed: 42, LossRate: 1.0})
	defer sim.Close()
	a := sim.Endpoint("A", echoHandler("A"))
	sim.Endpoint("B", echoHandler("B"))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.Send(ctx, "B", Message{}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout at 100%% loss", err)
	}
	snap := sim.Counters()
	if snap.Lost[""]+snap.Lost[KindStatus]+snap.Lost[KindPrepare] == 0 && len(snap.Lost) == 0 {
		t.Fatal("no losses recorded")
	}
}

func TestSimClose(t *testing.T) {
	sim := NewSim(testTopo(), SimConfig{Seed: 1})
	a := sim.Endpoint("A", echoHandler("A"))
	sim.Endpoint("B", echoHandler("B"))
	sim.Close()
	if _, err := a.Send(context.Background(), "B", Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestSimCounters(t *testing.T) {
	sim := NewSim(testTopo(), SimConfig{Seed: 1})
	defer sim.Close()
	a := sim.Endpoint("A", echoHandler("A"))
	sim.Endpoint("B", echoHandler("B"))
	for i := 0; i < 3; i++ {
		if _, err := a.Send(context.Background(), "B", Message{Kind: KindPrepare}); err != nil {
			t.Fatal(err)
		}
	}
	snap := sim.Counters()
	if snap.Sent[KindPrepare] != 3 {
		t.Fatalf("prepare count = %d, want 3", snap.Sent[KindPrepare])
	}
	if snap.Sent[KindStatus] != 3 {
		t.Fatalf("status count = %d, want 3", snap.Sent[KindStatus])
	}
	if snap.PaxosSent() != 6 {
		t.Fatalf("PaxosSent = %d, want 6", snap.PaxosSent())
	}
	sim.ResetCounters()
	if sim.Counters().TotalSent() != 0 {
		t.Fatal("ResetCounters did not zero")
	}
}

func TestSimConcurrentSends(t *testing.T) {
	sim := NewSim(testTopo(), SimConfig{Seed: 1, Jitter: 0.1})
	defer sim.Close()
	a := sim.Endpoint("A", echoHandler("A"))
	sim.Endpoint("B", echoHandler("B"))
	sim.Endpoint("C", echoHandler("C"))

	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			to := "B"
			if i%2 == 0 {
				to = "C"
			}
			if _, err := a.Send(context.Background(), to, Message{Pos: int64(i)}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSimAsyncEndpoint checks the async registration path: a handler that
// moves its work to another goroutine before replying still completes the
// round trip, and extra replies are dropped.
func TestSimAsyncEndpoint(t *testing.T) {
	sim := NewSim(NewTopology("A", "B"), SimConfig{Scale: 0.01})
	a := sim.Endpoint("A", echoHandler("A"))
	sim.EndpointAsync("B", func(from string, req Message, reply func(Message)) {
		go func() {
			reply(Message{Kind: KindStatus, OK: true, Err: "B<-" + from, Pos: req.Pos})
			reply(Message{Kind: KindStatus, OK: false}) // ignored
		}()
	})
	resp, err := a.Send(context.Background(), "B", Message{Kind: KindRead, Pos: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Err != "B<-A" || resp.Pos != 11 {
		t.Fatalf("async reply = %+v", resp)
	}
}
