package network

import (
	"math/rand"
	"reflect"
	"testing"
)

// allKinds covers every protocol kind plus an unknown one (string-encoded).
var allKinds = append(append([]Kind(nil), kindTable...), Kind("future-kind"))

// randMessage builds a random Message exercising every field.
func randMessage(rng *rand.Rand, kind Kind) Message {
	randStr := func(n int) string {
		const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-/"
		b := make([]byte, rng.Intn(n))
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}
	m := Message{
		Kind:     kind,
		Group:    randStr(12),
		Pos:      rng.Int63n(1 << 40),
		Ballot:   rng.Int63n(1<<40) - (1 << 20),
		TS:       rng.Int63n(1<<40) - 2,
		Key:      randStr(20),
		Value:    randStr(40),
		Err:      randStr(10),
		Epoch:    rng.Int63n(1 << 20),
		OK:       rng.Intn(2) == 0,
		Found:    rng.Intn(2) == 0,
		Combined: rng.Intn(2) == 0,
	}
	if n := rng.Intn(64); n > 0 {
		m.Payload = make([]byte, n)
		rng.Read(m.Payload)
	}
	for i, n := 0, rng.Intn(10); i < n; i++ {
		m.Keys = append(m.Keys, randStr(16))
		m.Vals = append(m.Vals, randStr(16))
		m.Founds = append(m.Founds, rng.Intn(2) == 0)
	}
	return m
}

// msgEqual compares messages treating nil and empty slices as equal (the
// codec does not preserve that distinction).
func msgEqual(a, b Message) bool {
	norm := func(m *Message) {
		if len(m.Payload) == 0 {
			m.Payload = nil
		}
		if len(m.Keys) == 0 {
			m.Keys = nil
		}
		if len(m.Vals) == 0 {
			m.Vals = nil
		}
		if len(m.Founds) == 0 {
			m.Founds = nil
		}
	}
	norm(&a)
	norm(&b)
	return reflect.DeepEqual(a, b)
}

// TestBinaryCodecRoundTrip round-trips random messages of every kind.
func TestBinaryCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kind := range allKinds {
		for i := 0; i < 50; i++ {
			m := randMessage(rng, kind)
			got, err := UnmarshalBinary(MarshalBinary(m))
			if err != nil {
				t.Fatalf("kind %s: decode: %v", kind, err)
			}
			if !msgEqual(m, got) {
				t.Fatalf("kind %s round trip:\n in: %+v\nout: %+v", kind, m, got)
			}
		}
	}
}

// TestBinaryEnvelopeRoundTrip round-trips full envelopes, both with fresh
// allocations and through one reused pooled decoder (whose scratch carries
// over between messages and must never leak state from one into the next).
func TestBinaryEnvelopeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var dec decoder
	for i := 0; i < 200; i++ {
		env := envelope{
			ID:   rng.Uint64(),
			From: "dc-1",
			Resp: rng.Intn(2) == 0,
			Msg:  randMessage(rng, allKinds[rng.Intn(len(allKinds))]),
		}
		data := appendEnvelope(nil, env)
		got, err := decodeEnvelope(data, nil)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.ID != env.ID || got.From != env.From || got.Resp != env.Resp || !msgEqual(got.Msg, env.Msg) {
			t.Fatalf("envelope round trip:\n in: %+v\nout: %+v", env, got)
		}
		pooled, err := decodeEnvelope(data, &dec)
		if err != nil {
			t.Fatalf("pooled decode: %v", err)
		}
		if pooled.ID != env.ID || pooled.From != env.From || pooled.Resp != env.Resp || !msgEqual(pooled.Msg, env.Msg) {
			t.Fatalf("pooled envelope round trip:\n in: %+v\nout: %+v", env, pooled)
		}
	}
}

// TestBinaryCodecTruncation checks that every prefix of a valid encoding
// errors rather than panicking or decoding silently.
func TestBinaryCodecTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMessage(rng, KindReadMulti)
	data := MarshalBinary(m)
	for n := 0; n < len(data); n++ {
		if _, err := UnmarshalBinary(data[:n]); err == nil {
			t.Fatalf("truncation at %d/%d decoded silently", n, len(data))
		}
	}
	env := appendEnvelope(nil, envelope{ID: 7, From: "A", Msg: m})
	for n := 0; n < len(env); n++ {
		if _, err := decodeEnvelope(env[:n], nil); err == nil {
			t.Fatalf("envelope truncation at %d/%d decoded silently", n, len(env))
		}
	}
}

// TestBinaryCodecCorruption flips bytes and random garbage through the
// decoder; it must error or produce some message, never panic. Both decode
// modes (fresh and pooled scratch) face the same hostile input.
func TestBinaryCodecCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := MarshalBinary(randMessage(rng, KindAccept))
	var dec decoder
	for i := 0; i < 2000; i++ {
		data := append([]byte(nil), base...)
		for flips := rng.Intn(4) + 1; flips > 0; flips-- {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		}
		UnmarshalBinary(data) // must not panic
	}
	for i := 0; i < 2000; i++ {
		data := make([]byte, rng.Intn(96))
		rng.Read(data)
		UnmarshalBinary(data)     // must not panic
		decodeEnvelope(data, nil) // must not panic
		if len(data) > 0 {
			data[0] = wireVersion
			decodeEnvelope(data, &dec) // forced version byte; must not panic
		}
	}
}

// TestBinaryCodecTrailingBytes rejects valid encodings with appended junk.
func TestBinaryCodecTrailingBytes(t *testing.T) {
	m := Message{Kind: KindStatus, OK: true}
	data := append(MarshalBinary(m), 0x00)
	if _, err := UnmarshalBinary(data); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestBinaryCodecOversizedCounts rejects length fields beyond the caps
// without allocating unboundedly.
func TestBinaryCodecOversizedCounts(t *testing.T) {
	var data []byte
	data = append(data, byte(kindCode[KindRead]), 0)
	data = appendUvarint(data, uint64(wireMaxStr)+1) // group longer than cap
	if _, err := UnmarshalBinary(data); err == nil {
		t.Fatal("oversized string length accepted")
	}
}

// TestBinaryCodecRejectsLegacyVersions pins the retirement of the pre-epoch
// 0xB1 layout and the JSON envelope: datagrams in either format are dropped,
// not decoded.
func TestBinaryCodecRejectsLegacyVersions(t *testing.T) {
	env := appendEnvelope(nil, envelope{ID: 1, From: "A", Msg: Message{Kind: KindRead}})
	legacy := append([]byte(nil), env...)
	legacy[0] = 0xB1
	if _, err := decodeEnvelope(legacy, nil); err == nil {
		t.Fatal("legacy 0xB1 envelope accepted")
	}
	if _, err := decodeEnvelope([]byte(`{"id":1,"from":"A","msg":{"k":"read"}}`), nil); err == nil {
		t.Fatal("JSON envelope accepted")
	}
}

// TestDecoderInternReuse pins the intern table's core property: decoding the
// same strings twice through one decoder yields the identical string object
// (no second allocation), and the table never grows past its entry cap.
func TestDecoderInternReuse(t *testing.T) {
	var dec decoder
	key := []byte("entity-group")
	if got := dec.intern(key); got != "entity-group" {
		t.Fatalf("intern = %q", got)
	}
	// A warm intern is a map hit: no allocation for the lookup or result.
	if allocs := testing.AllocsPerRun(100, func() {
		if dec.intern(key) != "entity-group" {
			t.Fatal("intern changed value")
		}
	}); allocs != 0 {
		t.Fatalf("warm intern allocates %.1f/op, want 0", allocs)
	}
	long := make([]byte, internMaxLen+1)
	if got := dec.intern(long); len(got) != len(long) {
		t.Fatal("over-length string mangled")
	}
	for i := 0; i < 3*internMaxEntries; i++ {
		dec.intern([]byte{byte(i), byte(i >> 8), byte(i >> 16)})
	}
	if len(dec.interned) > internMaxEntries {
		t.Fatalf("intern table grew to %d entries (cap %d)", len(dec.interned), internMaxEntries)
	}
}

// benchEnvelope is a representative read-path envelope for codec benchmarks.
func benchEnvelope() envelope {
	return envelope{
		ID:   123456789,
		From: "V1",
		Msg: Message{
			Kind:  KindReadMulti,
			Group: "entity-group",
			TS:    98765,
			Keys:  []string{"attr1", "attr17", "attr42", "attr63", "attr80", "attr91", "attr7", "attr33"},
		},
	}
}

// BenchmarkMessageCodec measures one encode+decode cycle of a representative
// multi-key read request over the pooled hot path: a reused encode buffer
// and a reused decoder, exactly as the UDP read loop runs it. Steady state
// must be 0 allocs/op (pinned by TestEnvelopeCodecZeroAlloc).
func BenchmarkMessageCodec(b *testing.B) {
	env := benchEnvelope()
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		var dec decoder
		buf := make([]byte, 0, 256)
		for i := 0; i < b.N; i++ {
			buf = appendEnvelope(buf[:0], env)
			if _, err := decodeEnvelope(buf, &dec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMessageCodecSize is not a speed benchmark: it reports the encoded
// size of the representative envelope.
func BenchmarkMessageCodecSize(b *testing.B) {
	env := benchEnvelope()
	bin := appendEnvelope(nil, env)
	for i := 0; i < b.N; i++ {
		_ = bin
	}
	b.ReportMetric(float64(len(bin)), "binary-bytes")
}
