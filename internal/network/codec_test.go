package network

import (
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"
)

// allKinds covers every protocol kind plus an unknown one (string-encoded).
var allKinds = append(append([]Kind(nil), kindTable...), Kind("future-kind"))

// randMessage builds a random Message exercising every field.
func randMessage(rng *rand.Rand, kind Kind) Message {
	randStr := func(n int) string {
		const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-/"
		b := make([]byte, rng.Intn(n))
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}
	m := Message{
		Kind:     kind,
		Group:    randStr(12),
		Pos:      rng.Int63n(1 << 40),
		Ballot:   rng.Int63n(1<<40) - (1 << 20),
		TS:       rng.Int63n(1<<40) - 2,
		Key:      randStr(20),
		Value:    randStr(40),
		Err:      randStr(10),
		Epoch:    rng.Int63n(1 << 20),
		OK:       rng.Intn(2) == 0,
		Found:    rng.Intn(2) == 0,
		Combined: rng.Intn(2) == 0,
	}
	if n := rng.Intn(64); n > 0 {
		m.Payload = make([]byte, n)
		rng.Read(m.Payload)
	}
	for i, n := 0, rng.Intn(10); i < n; i++ {
		m.Keys = append(m.Keys, randStr(16))
		m.Vals = append(m.Vals, randStr(16))
		m.Founds = append(m.Founds, rng.Intn(2) == 0)
	}
	return m
}

// msgEqual compares messages treating nil and empty slices as equal (the
// codec does not preserve that distinction).
func msgEqual(a, b Message) bool {
	norm := func(m *Message) {
		if len(m.Payload) == 0 {
			m.Payload = nil
		}
		if len(m.Keys) == 0 {
			m.Keys = nil
		}
		if len(m.Vals) == 0 {
			m.Vals = nil
		}
		if len(m.Founds) == 0 {
			m.Founds = nil
		}
	}
	norm(&a)
	norm(&b)
	return reflect.DeepEqual(a, b)
}

// TestBinaryCodecRoundTrip round-trips random messages of every kind.
func TestBinaryCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kind := range allKinds {
		for i := 0; i < 50; i++ {
			m := randMessage(rng, kind)
			got, err := UnmarshalBinary(MarshalBinary(m))
			if err != nil {
				t.Fatalf("kind %s: decode: %v", kind, err)
			}
			if !msgEqual(m, got) {
				t.Fatalf("kind %s round trip:\n in: %+v\nout: %+v", kind, m, got)
			}
		}
	}
}

// TestBinaryEnvelopeRoundTrip round-trips full envelopes.
func TestBinaryEnvelopeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		env := envelope{
			ID:   rng.Uint64(),
			From: "dc-1",
			Resp: rng.Intn(2) == 0,
			Msg:  randMessage(rng, allKinds[rng.Intn(len(allKinds))]),
		}
		got, ver, err := decodeEnvelope(appendEnvelope(nil, env, wireVersion2))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if ver != wireVersion2 {
			t.Fatalf("decoded version %#x, want %#x", ver, wireVersion2)
		}
		if got.ID != env.ID || got.From != env.From || got.Resp != env.Resp || !msgEqual(got.Msg, env.Msg) {
			t.Fatalf("envelope round trip:\n in: %+v\nout: %+v", env, got)
		}
		// The legacy 0xB1 layout round-trips everything except Epoch,
		// which it cannot carry.
		legacy, lver, err := decodeEnvelope(appendEnvelope(nil, env, wireVersion))
		if err != nil {
			t.Fatalf("legacy decode: %v", err)
		}
		want := env.Msg
		want.Epoch = 0
		if lver != wireVersion || !msgEqual(legacy.Msg, want) {
			t.Fatalf("legacy envelope round trip (ver %#x):\n in: %+v\nout: %+v", lver, want, legacy.Msg)
		}
	}
}

// TestBinaryCodecTruncation checks that every prefix of a valid encoding
// errors rather than panicking or decoding silently.
func TestBinaryCodecTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMessage(rng, KindReadMulti)
	data := MarshalBinary(m)
	for n := 0; n < len(data); n++ {
		if _, err := UnmarshalBinary(data[:n]); err == nil {
			t.Fatalf("truncation at %d/%d decoded silently", n, len(data))
		}
	}
	env := appendEnvelope(nil, envelope{ID: 7, From: "A", Msg: m}, wireVersion2)
	for n := 0; n < len(env); n++ {
		if _, _, err := decodeEnvelope(env[:n]); err == nil {
			t.Fatalf("envelope truncation at %d/%d decoded silently", n, len(env))
		}
	}
}

// TestBinaryCodecCorruption flips bytes and random garbage through the
// decoder; it must error or produce some message, never panic.
func TestBinaryCodecCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := MarshalBinary(randMessage(rng, KindAccept))
	for i := 0; i < 2000; i++ {
		data := append([]byte(nil), base...)
		for flips := rng.Intn(4) + 1; flips > 0; flips-- {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		}
		UnmarshalBinary(data) // must not panic
	}
	for i := 0; i < 2000; i++ {
		data := make([]byte, rng.Intn(96))
		rng.Read(data)
		UnmarshalBinary(data) // must not panic
		decodeEnvelope(data)  // must not panic
		if len(data) > 0 {
			data[0] = wireVersion
			decodeEnvelope(data) // forced version byte; must not panic
		}
	}
}

// TestBinaryCodecTrailingBytes rejects valid encodings with appended junk.
func TestBinaryCodecTrailingBytes(t *testing.T) {
	m := Message{Kind: KindStatus, OK: true}
	data := append(MarshalBinary(m), 0x00)
	if _, err := UnmarshalBinary(data); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestBinaryCodecOversizedCounts rejects length fields beyond the caps
// without allocating unboundedly.
func TestBinaryCodecOversizedCounts(t *testing.T) {
	var data []byte
	data = append(data, byte(kindCode[KindRead]), 0)
	data = appendUvarint(data, uint64(wireMaxStr)+1) // group longer than cap
	if _, err := UnmarshalBinary(data); err == nil {
		t.Fatal("oversized string length accepted")
	}
}

// TestUDPMixedVersionPeers checks the rolling-upgrade path: a legacy peer
// speaking JSON envelopes sends a request to a binary transport and gets a
// JSON reply it can decode, while binary peers keep talking binary.
func TestUDPMixedVersionPeers(t *testing.T) {
	srv, err := NewUDP("S", "127.0.0.1:0", nil, func(from string, req Message) Message {
		return Message{Kind: KindStatus, OK: true, Err: "S<-" + from, Pos: req.Pos}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Legacy JSON peer: a raw socket speaking the old JSON envelope format.
	conn, err := net.Dial("udp", srv.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	reqEnv := envelope{ID: 42, From: "legacy", Msg: Message{Kind: KindRead, Pos: 7}}
	data, err := json.Marshal(reqEnv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, maxDatagram)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("legacy peer got no reply: %v", err)
	}
	var respEnv envelope
	if err := json.Unmarshal(buf[:n], &respEnv); err != nil {
		t.Fatalf("reply to JSON peer is not JSON: %v (% x)", err, buf[:n])
	}
	if !respEnv.Resp || respEnv.ID != 42 || respEnv.Msg.Err != "S<-legacy" || respEnv.Msg.Pos != 7 {
		t.Fatalf("legacy reply = %+v", respEnv)
	}

	// Binary peer on the same server: normal transport round trip.
	cli, err := NewUDP("C", "127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.SetPeer("S", srv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Send(context.Background(), "S", Message{Kind: KindRead, Pos: 9})
	if err != nil {
		t.Fatalf("binary peer: %v", err)
	}
	if resp.Err != "S<-C" || resp.Pos != 9 {
		t.Fatalf("binary reply = %+v", resp)
	}
}

// benchEnvelope is a representative read-path envelope for codec benchmarks.
func benchEnvelope() envelope {
	return envelope{
		ID:   123456789,
		From: "V1",
		Msg: Message{
			Kind:  KindReadMulti,
			Group: "entity-group",
			TS:    98765,
			Keys:  []string{"attr1", "attr17", "attr42", "attr63", "attr80", "attr91", "attr7", "attr33"},
		},
	}
}

// BenchmarkMessageCodec compares the binary wire codec against the legacy
// JSON envelope for one encode+decode cycle of a representative multi-key
// read request. The binary row must be at least 3x faster (DESIGN.md §9).
func BenchmarkMessageCodec(b *testing.B) {
	env := benchEnvelope()
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data := appendEnvelope(make([]byte, 0, 128), env, wireVersion2)
			if _, _, err := decodeEnvelope(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := json.Marshal(env)
			if err != nil {
				b.Fatal(err)
			}
			var out envelope
			if err := json.Unmarshal(data, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMessageCodecSize is not a speed benchmark: it reports the encoded
// sizes of the representative envelope under both codecs.
func BenchmarkMessageCodecSize(b *testing.B) {
	env := benchEnvelope()
	bin := appendEnvelope(nil, env, wireVersion2)
	js, _ := json.Marshal(env)
	for i := 0; i < b.N; i++ {
		_ = bin
	}
	b.ReportMetric(float64(len(bin)), "binary-bytes")
	b.ReportMetric(float64(len(js)), "json-bytes")
}

// TestUDPOutboundVersionAdaptsToPeer pins the other direction of the
// rolling-upgrade promise: after hearing from a peer in an older encoding
// (legacy JSON, or binary 0xB1), requests *initiated toward* that peer are
// sent in the encoding it speaks, not in the current version it would drop.
func TestUDPOutboundVersionAdaptsToPeer(t *testing.T) {
	srv, err := NewUDP("S", "127.0.0.1:0", nil, func(from string, req Message) Message {
		return Message{Kind: KindStatus, OK: true, Err: "S<-" + from}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A raw "legacy" peer socket: one listener per encoding under test.
	for _, tc := range []struct {
		name   string
		encode func(env envelope) []byte
		sniff  func(data []byte) bool
	}{
		{"json", func(env envelope) []byte {
			d, _ := json.Marshal(env)
			return d
		}, func(d []byte) bool { return len(d) > 0 && d[0] == jsonFirstByte }},
		{"binary-v1", func(env envelope) []byte {
			return appendEnvelope(nil, env, wireVersion)
		}, func(d []byte) bool { return len(d) > 0 && d[0] == wireVersion }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			peer, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				t.Fatal(err)
			}
			defer peer.Close()
			if err := srv.SetPeer("L", peer.LocalAddr().String()); err != nil {
				t.Fatal(err)
			}

			// The legacy peer speaks first (its own encoding), teaching the
			// server its version.
			req := tc.encode(envelope{ID: 1, From: "L", Msg: Message{Kind: KindReadPos}})
			if _, err := peer.WriteToUDP(req, srv.conn.LocalAddr().(*net.UDPAddr)); err != nil {
				t.Fatal(err)
			}
			peer.SetReadDeadline(time.Now().Add(2 * time.Second))
			buf := make([]byte, maxDatagram)
			n, _, err := peer.ReadFromUDP(buf)
			if err != nil {
				t.Fatalf("no reply to legacy request: %v", err)
			}
			if !tc.sniff(buf[:n]) {
				t.Fatalf("reply to %s peer not in its encoding: first byte %#x", tc.name, buf[0])
			}

			// Now the server initiates: the request must arrive in the
			// peer's encoding (it would drop the current version).
			done := make(chan error, 1)
			go func() {
				_, err := srv.Send(context.Background(), "L", Message{Kind: KindRead, Key: "k"})
				done <- err
			}()
			peer.SetReadDeadline(time.Now().Add(2 * time.Second))
			n, _, err = peer.ReadFromUDP(buf)
			if err != nil {
				t.Fatalf("server-initiated request never arrived: %v", err)
			}
			if !tc.sniff(buf[:n]) {
				t.Fatalf("server-initiated request to %s peer in wrong encoding: first byte %#x", tc.name, buf[0])
			}
			// Unblock the sender (no response; it times out harmlessly).
			srv.mu.Lock()
			for id, ch := range srv.pending {
				select {
				case ch <- Message{Kind: KindStatus, OK: true}:
				default:
				}
				delete(srv.pending, id)
			}
			srv.mu.Unlock()
			if err := <-done; err != nil {
				t.Fatalf("send: %v", err)
			}
		})
	}
}
