package network

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary wire codec for Message and the UDP transport's envelope. The
// format is a compact length-prefixed layout in the same style as
// wal/codec.go (see DESIGN.md §9):
//
//	envelope: wireVersion(1) flags(1) id(uvarint) from(str) message
//	message:  kind(1 | 0xFF+str) bools(1) group(str) pos(varint)
//	          ballot(varint) ts(varint) key(str) value(str) err(str)
//	          payload(bytes) keys([]str) vals([]str) founds(bitmap)
//	str:      len(uvarint) bytes;  []str: count(uvarint) str*
//	bitmap:   count(uvarint) ceil(count/8) bytes, LSB first
//
// A leading wire-version byte (0xB1 or 0xB2) can never be the first byte of
// a JSON envelope ('{'), so a receiver distinguishes binary from legacy JSON
// datagrams by sniffing the first byte — the UDP transport answers each
// request in the encoding (and binary version) it arrived in, keeping
// mixed-version clusters talking during a rolling upgrade.
//
// Version 0xB2 adds one field to the message layout: epoch(varint) after
// ts (the master-epoch fencing field, DESIGN.md §11). 0xB1 envelopes decode
// with Epoch = 0 and are answered in the 0xB1 layout, dropping the epoch a
// legacy peer would not understand anyway.

const (
	// wireVersion is the leading byte of a legacy binary envelope (pre-epoch
	// message layout). Still decoded; replies to it are encoded the same way.
	wireVersion = 0xB1
	// wireVersion2 is the leading byte of a current binary envelope, whose
	// message layout carries the Epoch field.
	wireVersion2 = 0xB2
	// jsonFirstByte is the first byte of every JSON envelope.
	jsonFirstByte = '{'

	// wireMaxStr caps decoded string lengths; wireMaxCount caps element
	// counts. Both defend against corrupt or hostile datagrams.
	wireMaxStr   = 1 << 20
	wireMaxCount = 1 << 16
)

// ErrBadWire is returned when a binary datagram cannot be decoded.
var ErrBadWire = errors.New("network: corrupt binary message")

// kindTable fixes the on-wire byte for every known Kind. Order is part of
// the wire format: never reorder or remove entries, only append.
var kindTable = []Kind{
	KindPrepare, KindAccept, KindApply,
	KindReadPos, KindRead, KindReadMulti,
	KindClaimLeader, KindFetchLog, KindSubmit, KindSnapshot,
	KindStats, KindCompact,
	KindLastVote, KindStatus, KindValue,
}

// kindOther marks a Kind outside kindTable, encoded as a string.
const kindOther = 0xFF

var kindCode = func() map[Kind]byte {
	m := make(map[Kind]byte, len(kindTable))
	for i, k := range kindTable {
		m[k] = byte(i)
	}
	return m
}()

// Message bool flags, packed into one byte.
const (
	flagOK       = 1 << 0
	flagFound    = 1 << 1
	flagCombined = 1 << 2
)

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendStr(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendStrs(b []byte, ss []string) []byte {
	b = appendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendStr(b, s)
	}
	return b
}

func appendBools(b []byte, bs []bool) []byte {
	b = appendUvarint(b, uint64(len(bs)))
	var cur byte
	for i, v := range bs {
		if v {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			b = append(b, cur)
			cur = 0
		}
	}
	if len(bs)%8 != 0 {
		b = append(b, cur)
	}
	return b
}

// AppendMessage appends m's binary encoding (the current layout, with the
// epoch field) to dst and returns the extended slice.
func AppendMessage(dst []byte, m Message) []byte {
	return appendMessage(dst, m, true)
}

// appendMessage appends m's binary encoding; withEpoch selects the current
// (0xB2) or legacy (0xB1) layout.
func appendMessage(dst []byte, m Message, withEpoch bool) []byte {
	if code, ok := kindCode[m.Kind]; ok {
		dst = append(dst, code)
	} else {
		dst = append(dst, kindOther)
		dst = appendStr(dst, string(m.Kind))
	}
	var bools byte
	if m.OK {
		bools |= flagOK
	}
	if m.Found {
		bools |= flagFound
	}
	if m.Combined {
		bools |= flagCombined
	}
	dst = append(dst, bools)
	dst = appendStr(dst, m.Group)
	dst = appendVarint(dst, m.Pos)
	dst = appendVarint(dst, m.Ballot)
	dst = appendVarint(dst, m.TS)
	if withEpoch {
		dst = appendVarint(dst, m.Epoch)
	}
	dst = appendStr(dst, m.Key)
	dst = appendStr(dst, m.Value)
	dst = appendStr(dst, m.Err)
	dst = appendUvarint(dst, uint64(len(m.Payload)))
	dst = append(dst, m.Payload...)
	dst = appendStrs(dst, m.Keys)
	dst = appendStrs(dst, m.Vals)
	dst = appendBools(dst, m.Founds)
	return dst
}

// wireReader decodes the binary layout from a byte slice without copying.
type wireReader struct {
	buf []byte
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrBadWire)
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *wireReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrBadWire)
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *wireReader) byte() (byte, error) {
	if len(r.buf) == 0 {
		return 0, fmt.Errorf("%w: short buffer", ErrBadWire)
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b, nil
}

func (r *wireReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > wireMaxStr {
		return "", fmt.Errorf("%w: string length %d", ErrBadWire, n)
	}
	if uint64(len(r.buf)) < n {
		return "", fmt.Errorf("%w: short string", ErrBadWire)
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s, nil
}

func (r *wireReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > wireMaxStr {
		return nil, fmt.Errorf("%w: payload length %d", ErrBadWire, n)
	}
	if uint64(len(r.buf)) < n {
		return nil, fmt.Errorf("%w: short payload", ErrBadWire)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]byte, n)
	copy(out, r.buf)
	r.buf = r.buf[n:]
	return out, nil
}

func (r *wireReader) strs() ([]string, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > wireMaxCount {
		return nil, fmt.Errorf("%w: list length %d", ErrBadWire, n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (r *wireReader) bools() ([]bool, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > wireMaxCount {
		return nil, fmt.Errorf("%w: bitmap length %d", ErrBadWire, n)
	}
	if n == 0 {
		return nil, nil
	}
	nbytes := (n + 7) / 8
	if uint64(len(r.buf)) < nbytes {
		return nil, fmt.Errorf("%w: short bitmap", ErrBadWire)
	}
	out := make([]bool, n)
	for i := uint64(0); i < n; i++ {
		out[i] = r.buf[i/8]&(1<<(i%8)) != 0
	}
	r.buf = r.buf[nbytes:]
	return out, nil
}

// readMessage decodes one Message from the reader; withEpoch selects the
// current (0xB2) or legacy (0xB1) layout.
func (r *wireReader) readMessage(withEpoch bool) (Message, error) {
	var m Message
	kb, err := r.byte()
	if err != nil {
		return Message{}, err
	}
	switch {
	case kb == kindOther:
		s, err := r.str()
		if err != nil {
			return Message{}, err
		}
		m.Kind = Kind(s)
	case int(kb) < len(kindTable):
		m.Kind = kindTable[kb]
	default:
		return Message{}, fmt.Errorf("%w: unknown kind code %#x", ErrBadWire, kb)
	}
	bools, err := r.byte()
	if err != nil {
		return Message{}, err
	}
	m.OK = bools&flagOK != 0
	m.Found = bools&flagFound != 0
	m.Combined = bools&flagCombined != 0
	if m.Group, err = r.str(); err != nil {
		return Message{}, err
	}
	if m.Pos, err = r.varint(); err != nil {
		return Message{}, err
	}
	if m.Ballot, err = r.varint(); err != nil {
		return Message{}, err
	}
	if m.TS, err = r.varint(); err != nil {
		return Message{}, err
	}
	if withEpoch {
		if m.Epoch, err = r.varint(); err != nil {
			return Message{}, err
		}
	}
	if m.Key, err = r.str(); err != nil {
		return Message{}, err
	}
	if m.Value, err = r.str(); err != nil {
		return Message{}, err
	}
	if m.Err, err = r.str(); err != nil {
		return Message{}, err
	}
	if m.Payload, err = r.bytes(); err != nil {
		return Message{}, err
	}
	if m.Keys, err = r.strs(); err != nil {
		return Message{}, err
	}
	if m.Vals, err = r.strs(); err != nil {
		return Message{}, err
	}
	if m.Founds, err = r.bools(); err != nil {
		return Message{}, err
	}
	return m, nil
}

// MarshalBinary encodes m in the compact binary message format (without an
// envelope header).
func MarshalBinary(m Message) []byte {
	return AppendMessage(make([]byte, 0, 64), m)
}

// UnmarshalBinary decodes a message produced by MarshalBinary. Corrupt or
// truncated input returns ErrBadWire; it never panics.
func UnmarshalBinary(data []byte) (Message, error) {
	r := wireReader{buf: data}
	m, err := r.readMessage(true)
	if err != nil {
		return Message{}, err
	}
	if len(r.buf) != 0 {
		return Message{}, fmt.Errorf("%w: %d trailing bytes", ErrBadWire, len(r.buf))
	}
	return m, nil
}

// Envelope flag bits.
const envFlagResp = 1 << 0

// appendEnvelope appends the binary envelope encoding to dst in the given
// wire version (wireVersion2 normally; wireVersion when answering a legacy
// peer in its own layout).
func appendEnvelope(dst []byte, env envelope, ver byte) []byte {
	dst = append(dst, ver)
	var flags byte
	if env.Resp {
		flags |= envFlagResp
	}
	dst = append(dst, flags)
	dst = appendUvarint(dst, env.ID)
	dst = appendStr(dst, env.From)
	return appendMessage(dst, env.Msg, ver != wireVersion)
}

// decodeEnvelope decodes a binary envelope (either wire version, identified
// by its leading byte, which is returned so replies can match).
func decodeEnvelope(data []byte) (envelope, byte, error) {
	var env envelope
	if len(data) == 0 || (data[0] != wireVersion && data[0] != wireVersion2) {
		return envelope{}, 0, fmt.Errorf("%w: bad wire version", ErrBadWire)
	}
	ver := data[0]
	r := wireReader{buf: data[1:]}
	flags, err := r.byte()
	if err != nil {
		return envelope{}, 0, err
	}
	env.Resp = flags&envFlagResp != 0
	if env.ID, err = r.uvarint(); err != nil {
		return envelope{}, 0, err
	}
	if env.From, err = r.str(); err != nil {
		return envelope{}, 0, err
	}
	if env.Msg, err = r.readMessage(ver != wireVersion); err != nil {
		return envelope{}, 0, err
	}
	if len(r.buf) != 0 {
		return envelope{}, 0, fmt.Errorf("%w: %d trailing bytes", ErrBadWire, len(r.buf))
	}
	return env, ver, nil
}
