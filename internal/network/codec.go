package network

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Binary wire codec for Message and the UDP transport's envelope. The
// format is a compact length-prefixed layout in the same style as
// wal/codec.go (see DESIGN.md §9):
//
//	envelope: wireVersion(1) flags(1) id(uvarint) from(str) message
//	message:  kind(1 | 0xFF+str) bools(1) group(str) pos(varint)
//	          ballot(varint) ts(varint) epoch(varint) key(str) value(str)
//	          err(str) payload(bytes) keys([]str) vals([]str) founds(bitmap)
//	str:      len(uvarint) bytes;  []str: count(uvarint) str*
//	bitmap:   count(uvarint) ceil(count/8) bytes, LSB first
//
// The codec is binary-only: the legacy JSON envelope and the pre-epoch 0xB1
// layout were retired once every deployed peer spoke 0xB2. Datagrams whose
// leading byte is not wireVersion are dropped.
//
// Decoding is allocation-free in steady state: a decoder holds reusable
// scratch (a bounded string intern table, a payload buffer, and Keys/Vals/
// Founds backing arrays) so the hot path recycles memory across datagrams.
// Decoded messages backed by a decoder are only valid until the decoder is
// reused; paths whose result outlives the call (response correlation,
// UnmarshalBinary) decode with fresh allocations instead.

const (
	// wireVersion is the leading byte of every binary envelope.
	wireVersion = 0xB2

	// wireMaxStr caps decoded string lengths; wireMaxCount caps element
	// counts. Both defend against corrupt or hostile datagrams.
	wireMaxStr   = 1 << 20
	wireMaxCount = 1 << 16
)

// ErrBadWire is returned when a binary datagram cannot be decoded.
var ErrBadWire = errors.New("network: corrupt binary message")

// kindTable fixes the on-wire byte for every known Kind. Order is part of
// the wire format: never reorder or remove entries, only append.
var kindTable = []Kind{
	KindPrepare, KindAccept, KindApply,
	KindReadPos, KindRead, KindReadMulti,
	KindClaimLeader, KindFetchLog, KindSubmit, KindSnapshot,
	KindStats, KindCompact,
	KindLastVote, KindStatus, KindValue,
	KindRangeSnapshot, KindMigrate,
	KindScan,
}

// kindOther marks a Kind outside kindTable, encoded as a string.
const kindOther = 0xFF

var kindCode = func() map[Kind]byte {
	m := make(map[Kind]byte, len(kindTable))
	for i, k := range kindTable {
		m[k] = byte(i)
	}
	return m
}()

// Message bool flags, packed into one byte.
const (
	flagOK       = 1 << 0
	flagFound    = 1 << 1
	flagCombined = 1 << 2
)

// Bounds of the decoder's string intern table: strings longer than
// internMaxLen are never interned, and a table that reaches internMaxEntries
// is discarded and rebuilt, so hostile traffic cannot grow it unboundedly.
// Group names, keys, datacenter names, and error markers all repeat heavily
// in steady state, which is what makes decode allocation-free.
const (
	internMaxLen     = 128
	internMaxEntries = 4096
)

// decoder holds the reusable scratch for one in-flight datagram decode. The
// UDP transport pools decoders: a request's decoder (and therefore every
// string, the Payload, and the Keys/Vals/Founds arrays of its Message) stays
// alive until the handler replies, then returns to the pool.
type decoder struct {
	interned map[string]string
	payload  []byte
	keys     []string
	vals     []string
	founds   []bool
}

// intern returns b as a string, reusing a previously allocated copy when the
// table holds one. The m[string(b)] lookup compiles to an allocation-free
// map probe, so repeated strings cost nothing after their first appearance.
func (d *decoder) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > internMaxLen {
		return string(b)
	}
	if s, ok := d.interned[string(b)]; ok {
		return s
	}
	if d.interned == nil || len(d.interned) >= internMaxEntries {
		d.interned = make(map[string]string, 64)
	}
	s := string(b)
	d.interned[s] = s
	return s
}

var decoderPool = sync.Pool{New: func() any { return new(decoder) }}

// encBufPool recycles envelope encode buffers. Buffers that grew past
// maxPooledBuf are dropped so one oversized datagram does not pin memory.
var encBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

const maxPooledBuf = 64 * 1024

func getEncBuf() *[]byte { return encBufPool.Get().(*[]byte) }
func putEncBuf(b *[]byte) {
	if cap(*b) <= maxPooledBuf {
		encBufPool.Put(b)
	}
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendStr(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendStrs(b []byte, ss []string) []byte {
	b = appendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendStr(b, s)
	}
	return b
}

func appendBools(b []byte, bs []bool) []byte {
	b = appendUvarint(b, uint64(len(bs)))
	var cur byte
	for i, v := range bs {
		if v {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			b = append(b, cur)
			cur = 0
		}
	}
	if len(bs)%8 != 0 {
		b = append(b, cur)
	}
	return b
}

// AppendMessage appends m's binary encoding to dst and returns the extended
// slice.
func AppendMessage(dst []byte, m Message) []byte {
	if code, ok := kindCode[m.Kind]; ok {
		dst = append(dst, code)
	} else {
		dst = append(dst, kindOther)
		dst = appendStr(dst, string(m.Kind))
	}
	var bools byte
	if m.OK {
		bools |= flagOK
	}
	if m.Found {
		bools |= flagFound
	}
	if m.Combined {
		bools |= flagCombined
	}
	dst = append(dst, bools)
	dst = appendStr(dst, m.Group)
	dst = appendVarint(dst, m.Pos)
	dst = appendVarint(dst, m.Ballot)
	dst = appendVarint(dst, m.TS)
	dst = appendVarint(dst, m.Epoch)
	dst = appendStr(dst, m.Key)
	dst = appendStr(dst, m.Value)
	dst = appendStr(dst, m.Err)
	dst = appendUvarint(dst, uint64(len(m.Payload)))
	dst = append(dst, m.Payload...)
	dst = appendStrs(dst, m.Keys)
	dst = appendStrs(dst, m.Vals)
	dst = appendBools(dst, m.Founds)
	return dst
}

// wireReader decodes the binary layout from a byte slice. With a decoder
// attached it reuses that decoder's scratch; without one every string and
// slice is freshly allocated.
type wireReader struct {
	buf []byte
	d   *decoder
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrBadWire)
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *wireReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrBadWire)
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *wireReader) byte() (byte, error) {
	if len(r.buf) == 0 {
		return 0, fmt.Errorf("%w: short buffer", ErrBadWire)
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b, nil
}

func (r *wireReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > wireMaxStr {
		return "", fmt.Errorf("%w: string length %d", ErrBadWire, n)
	}
	if uint64(len(r.buf)) < n {
		return "", fmt.Errorf("%w: short string", ErrBadWire)
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	if r.d != nil {
		return r.d.intern(b), nil
	}
	return string(b), nil
}

func (r *wireReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > wireMaxStr {
		return nil, fmt.Errorf("%w: payload length %d", ErrBadWire, n)
	}
	if uint64(len(r.buf)) < n {
		return nil, fmt.Errorf("%w: short payload", ErrBadWire)
	}
	if n == 0 {
		return nil, nil
	}
	var out []byte
	if r.d != nil {
		r.d.payload = append(r.d.payload[:0], r.buf[:n]...)
		out = r.d.payload
	} else {
		out = make([]byte, n)
		copy(out, r.buf)
	}
	r.buf = r.buf[n:]
	return out, nil
}

// strs decodes a string list. scratch, when non-nil, supplies (and receives
// back) the reusable backing array.
func (r *wireReader) strs(scratch *[]string) ([]string, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > wireMaxCount {
		return nil, fmt.Errorf("%w: list length %d", ErrBadWire, n)
	}
	if n == 0 {
		return nil, nil
	}
	var out []string
	if scratch != nil {
		out = (*scratch)[:0]
	} else {
		out = make([]string, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if scratch != nil {
		*scratch = out
	}
	return out, nil
}

func (r *wireReader) bools(scratch *[]bool) ([]bool, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > wireMaxCount {
		return nil, fmt.Errorf("%w: bitmap length %d", ErrBadWire, n)
	}
	if n == 0 {
		return nil, nil
	}
	nbytes := (n + 7) / 8
	if uint64(len(r.buf)) < nbytes {
		return nil, fmt.Errorf("%w: short bitmap", ErrBadWire)
	}
	var out []bool
	if scratch != nil && uint64(cap(*scratch)) >= n {
		out = (*scratch)[:n]
	} else {
		out = make([]bool, n)
		if scratch != nil {
			*scratch = out
		}
	}
	for i := uint64(0); i < n; i++ {
		out[i] = r.buf[i/8]&(1<<(i%8)) != 0
	}
	r.buf = r.buf[nbytes:]
	return out, nil
}

// readMessage decodes one Message from the reader.
func (r *wireReader) readMessage() (Message, error) {
	var m Message
	kb, err := r.byte()
	if err != nil {
		return Message{}, err
	}
	switch {
	case kb == kindOther:
		s, err := r.str()
		if err != nil {
			return Message{}, err
		}
		m.Kind = Kind(s)
	case int(kb) < len(kindTable):
		m.Kind = kindTable[kb]
	default:
		return Message{}, fmt.Errorf("%w: unknown kind code %#x", ErrBadWire, kb)
	}
	bools, err := r.byte()
	if err != nil {
		return Message{}, err
	}
	m.OK = bools&flagOK != 0
	m.Found = bools&flagFound != 0
	m.Combined = bools&flagCombined != 0
	if m.Group, err = r.str(); err != nil {
		return Message{}, err
	}
	if m.Pos, err = r.varint(); err != nil {
		return Message{}, err
	}
	if m.Ballot, err = r.varint(); err != nil {
		return Message{}, err
	}
	if m.TS, err = r.varint(); err != nil {
		return Message{}, err
	}
	if m.Epoch, err = r.varint(); err != nil {
		return Message{}, err
	}
	if m.Key, err = r.str(); err != nil {
		return Message{}, err
	}
	if m.Value, err = r.str(); err != nil {
		return Message{}, err
	}
	if m.Err, err = r.str(); err != nil {
		return Message{}, err
	}
	if m.Payload, err = r.bytes(); err != nil {
		return Message{}, err
	}
	var keys, vals *[]string
	var founds *[]bool
	if r.d != nil {
		keys, vals, founds = &r.d.keys, &r.d.vals, &r.d.founds
	}
	if m.Keys, err = r.strs(keys); err != nil {
		return Message{}, err
	}
	if m.Vals, err = r.strs(vals); err != nil {
		return Message{}, err
	}
	if m.Founds, err = r.bools(founds); err != nil {
		return Message{}, err
	}
	return m, nil
}

// MarshalBinary encodes m in the compact binary message format (without an
// envelope header).
func MarshalBinary(m Message) []byte {
	return AppendMessage(make([]byte, 0, 64), m)
}

// UnmarshalBinary decodes a message produced by MarshalBinary. Corrupt or
// truncated input returns ErrBadWire; it never panics. The result is freshly
// allocated and safe to retain.
func UnmarshalBinary(data []byte) (Message, error) {
	r := wireReader{buf: data}
	m, err := r.readMessage()
	if err != nil {
		return Message{}, err
	}
	if len(r.buf) != 0 {
		return Message{}, fmt.Errorf("%w: %d trailing bytes", ErrBadWire, len(r.buf))
	}
	return m, nil
}

// Envelope flag bits.
const envFlagResp = 1 << 0

// appendEnvelope appends the binary envelope encoding to dst.
func appendEnvelope(dst []byte, env envelope) []byte {
	dst = append(dst, wireVersion)
	var flags byte
	if env.Resp {
		flags |= envFlagResp
	}
	dst = append(dst, flags)
	dst = appendUvarint(dst, env.ID)
	dst = appendStr(dst, env.From)
	return AppendMessage(dst, env.Msg)
}

// decodeEnvelope decodes a binary envelope. With d non-nil the decode reuses
// d's scratch and the result is valid only until d's next use; with d nil
// everything is freshly allocated.
func decodeEnvelope(data []byte, d *decoder) (envelope, error) {
	var env envelope
	if len(data) == 0 || data[0] != wireVersion {
		return envelope{}, fmt.Errorf("%w: bad wire version", ErrBadWire)
	}
	r := wireReader{buf: data[1:], d: d}
	flags, err := r.byte()
	if err != nil {
		return envelope{}, err
	}
	env.Resp = flags&envFlagResp != 0
	if env.ID, err = r.uvarint(); err != nil {
		return envelope{}, err
	}
	if env.From, err = r.str(); err != nil {
		return envelope{}, err
	}
	if env.Msg, err = r.readMessage(); err != nil {
		return envelope{}, err
	}
	if len(r.buf) != 0 {
		return envelope{}, fmt.Errorf("%w: %d trailing bytes", ErrBadWire, len(r.buf))
	}
	return env, nil
}
