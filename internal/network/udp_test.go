package network

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// newUDPPair starts two UDP endpoints on ephemeral localhost ports and wires
// their peer tables together.
func newUDPPair(t *testing.T) (*UDP, *UDP) {
	t.Helper()
	a, err := NewUDP("A", "127.0.0.1:0", nil, echoHandler("A"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewUDP("B", "127.0.0.1:0", nil, echoHandler("B"))
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	if err := a.SetPeer("B", b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPeer("A", a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := a.SetPeer("A", a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestUDPRequestResponse(t *testing.T) {
	a, _ := newUDPPair(t)
	resp, err := a.Send(context.Background(), "B", Message{Kind: KindPrepare, Pos: 11})
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if !resp.OK || resp.Err != "B<-A" || resp.Pos != 11 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestUDPSelfSend(t *testing.T) {
	a, _ := newUDPPair(t)
	resp, err := a.Send(context.Background(), "A", Message{Kind: KindRead})
	if err != nil {
		t.Fatalf("self send: %v", err)
	}
	if resp.Err != "A<-A" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestUDPUnknownPeer(t *testing.T) {
	a, _ := newUDPPair(t)
	if _, err := a.Send(context.Background(), "Z", Message{}); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestUDPTimeoutOnDeadPeer(t *testing.T) {
	a, b := newUDPPair(t)
	b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := a.Send(ctx, "B", Message{}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestUDPClosedSend(t *testing.T) {
	a, _ := newUDPPair(t)
	a.Close()
	if _, err := a.Send(context.Background(), "B", Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Double close is safe.
	if err := a.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestUDPConcurrentRequests(t *testing.T) {
	a, _ := newUDPPair(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := a.Send(context.Background(), "B", Message{Pos: int64(i)})
			if err != nil {
				errs <- err
				return
			}
			if resp.Pos != int64(i) {
				errs <- errors.New("response correlation mixed up")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestUDPPeersListing(t *testing.T) {
	a, _ := newUDPPair(t)
	peers := a.Peers()
	if len(peers) != 2 || peers[0] != "A" || peers[1] != "B" {
		t.Fatalf("Peers = %v", peers)
	}
	if a.Local() != "A" {
		t.Fatalf("Local = %q", a.Local())
	}
}

func TestUDPMalformedDatagramIgnored(t *testing.T) {
	a, b := newUDPPair(t)
	// Fire a garbage datagram at B's socket; B must survive and keep serving.
	conn := a.conn
	baddr := b.conn.LocalAddr()
	if _, err := conn.WriteTo([]byte("garbage!"), baddr); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if _, err := a.Send(context.Background(), "B", Message{}); err != nil {
		t.Fatalf("B stopped serving after garbage: %v", err)
	}
}
