package network

import (
	"net/netip"
	"testing"
)

// hotKindMessages builds one representative message per hot protocol kind,
// exercising the fields that kind actually carries on the wire. Steady state
// means the same groups, keys, and markers repeat — which is exactly what
// the decoder's intern table and slice scratch exploit.
func hotKindMessages() []Message {
	payload := []byte("wal-entry-bytes-0123456789abcdef")
	keys := []string{"attr1", "attr17", "attr42", "attr63", "attr80", "attr91", "attr7", "attr33"}
	vals := []string{"v1", "v17", "v42", "v63", "v80", "v91", "v7", "v33"}
	founds := []bool{true, true, false, true, true, false, true, true}
	return []Message{
		{Kind: KindPrepare, Group: "entity-group", Pos: 4242, Ballot: 17},
		{Kind: KindAccept, Group: "entity-group", Pos: 4242, Ballot: 17, Payload: payload},
		{Kind: KindApply, Group: "entity-group", Pos: 4242, Ballot: 17, Payload: payload},
		{Kind: KindReadPos, Group: "entity-group"},
		{Kind: KindRead, Group: "entity-group", Key: "attr17", TS: 4242},
		{Kind: KindReadMulti, Group: "entity-group", TS: ResolvePos, Keys: keys},
		{Kind: KindClaimLeader, Group: "entity-group", Pos: 4242, Value: "V1"},
		{Kind: KindFetchLog, Group: "entity-group", Pos: 4242},
		{Kind: KindSubmit, Group: "entity-group", Payload: payload},
		{Kind: KindLastVote, Ballot: 17, Payload: payload, OK: true},
		{Kind: KindStatus, OK: true, Epoch: 3, TS: 4242, Combined: true},
		{Kind: KindValue, Value: "v17", Found: true, TS: 4242, OK: true,
			Keys: keys, Vals: vals, Founds: founds},
	}
}

// TestEnvelopeCodecZeroAlloc pins the tentpole property of the wire path:
// steady-state envelope encode+decode of every hot kind runs at 0 allocs/op
// when the pooled encode buffer and decoder scratch are warm.
func TestEnvelopeCodecZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the plain run enforces the pin")
	}
	for _, msg := range hotKindMessages() {
		env := envelope{ID: 987654321, From: "V1", Msg: msg}
		var dec decoder
		buf := make([]byte, 0, 16)
		// Warm the scratch: grow the buffer, populate the intern table, and
		// size the Keys/Vals/Founds backing arrays.
		buf = appendEnvelope(buf[:0], env)
		if _, err := decodeEnvelope(buf, &dec); err != nil {
			t.Fatalf("kind %s: %v", msg.Kind, err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			buf = appendEnvelope(buf[:0], env)
			if _, err := decodeEnvelope(buf, &dec); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("kind %s: encode+decode allocates %.1f/op, want 0", msg.Kind, allocs)
		}
	}
}

// TestUDPServeSteadyAllocs pins the pooled UDP read loop: one inbound
// request — sniff, pooled decode, inline handler, pooled reply encode, send
// — costs at most the serve closure's fixed bookkeeping (the reply callback
// and its once-guard), never per-field garbage.
func TestUDPServeSteadyAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the plain run enforces the pin")
	}
	u, err := NewUDPAsync("S", "127.0.0.1:0", nil,
		func(from string, req Message, reply func(Message)) {
			reply(Message{Kind: KindStatus, OK: true, TS: req.TS})
		})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	// Sever the socket write so the pin measures the serve path alone.
	u.writeTo = func(b []byte, addr netip.AddrPort) (int, error) { return len(b), nil }

	req := appendEnvelope(nil, envelope{
		ID: 7, From: "C",
		Msg: Message{Kind: KindReadMulti, Group: "entity-group", TS: ResolvePos,
			Keys: []string{"attr1", "attr17", "attr42", "attr63"}},
	})
	raddr := netip.MustParseAddrPort("127.0.0.1:9999")
	u.handleDatagram(req, raddr) // warm the decoder and encode-buffer pools
	allocs := testing.AllocsPerRun(200, func() {
		u.handleDatagram(req, raddr)
	})
	const maxServeAllocs = 3
	if allocs > maxServeAllocs {
		t.Fatalf("request serve allocates %.1f/op, want <= %d", allocs, maxServeAllocs)
	}
}

// TestUDPServeReplyIdempotent pins the AsyncHandler contract: extra reply
// calls are dropped, and the first one wins.
func TestUDPServeReplyIdempotent(t *testing.T) {
	var sent int
	u, err := NewUDPAsync("S", "127.0.0.1:0", nil,
		func(from string, req Message, reply func(Message)) {
			reply(Message{Kind: KindStatus, OK: true})
			reply(Message{Kind: KindStatus, OK: false}) // must be ignored
		})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	u.writeTo = func(b []byte, addr netip.AddrPort) (int, error) {
		env, err := decodeEnvelope(b, nil)
		if err != nil {
			t.Errorf("reply not decodable: %v", err)
		} else if !env.Msg.OK {
			t.Error("second reply overwrote the first")
		}
		sent++
		return len(b), nil
	}
	req := appendEnvelope(nil, envelope{ID: 3, From: "C", Msg: Message{Kind: KindReadPos}})
	u.handleDatagram(req, netip.MustParseAddrPort("127.0.0.1:9999"))
	if sent != 1 {
		t.Fatalf("sent %d replies, want 1", sent)
	}
}
