package network

import (
	"context"
	"errors"
	"time"
)

// Common transport errors.
var (
	// ErrTimeout reports that no response arrived before the deadline. The
	// sender cannot distinguish a lost request, a lost response, or a dead
	// peer — exactly the paper's failure model.
	ErrTimeout = errors.New("network: timeout")
	// ErrUnknownPeer reports a send to an address not in the topology.
	ErrUnknownPeer = errors.New("network: unknown peer")
	// ErrClosed reports use of a closed transport.
	ErrClosed = errors.New("network: transport closed")
)

// DefaultTimeout is the paper's message-loss detection timeout (§6: "We
// utilize a two second timeout for message loss detection."). Experiments
// scale this alongside latencies.
const DefaultTimeout = 2 * time.Second

// Handler processes one inbound request and returns the response. Handlers
// must be safe for concurrent use; each datacenter's Transaction Service
// handles every request in its own goroutine (the paper's "each client
// request in its own service process").
type Handler func(from string, req Message) Message

// AsyncHandler processes one inbound request and delivers the response
// through reply, which must be called exactly once (extra calls are
// ignored). The handler chooses where the work runs: cheap requests answer
// inline on the transport's read path, expensive or blocking ones move to
// another goroutine first. req — including the backing arrays of Payload,
// Keys, Vals, and Founds — is only valid until reply is called; a handler
// that retains any of it past the reply must copy first.
type AsyncHandler func(from string, req Message, reply func(Message))

// Transport sends a request to a peer datacenter and waits for its response.
type Transport interface {
	// Send delivers req to the named peer and returns its response. It
	// returns ErrTimeout if the request or response is lost or the peer does
	// not answer before the context deadline (or DefaultTimeout when the
	// context has none).
	Send(ctx context.Context, to string, req Message) (Message, error)
	// Local returns the name of the datacenter this endpoint belongs to.
	Local() string
	// Peers returns the names of all datacenters in the topology, including
	// the local one, in stable order.
	Peers() []string
	// Close releases resources. Subsequent Sends return ErrClosed.
	Close() error
}
