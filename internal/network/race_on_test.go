//go:build race

package network

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
