package network

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Topology describes the datacenters and pairwise round-trip times of a
// deployment. RTTs default to LocalRTT for a pair that was never set.
type Topology struct {
	dcs []string
	rtt map[[2]string]time.Duration
}

// LocalRTT is the default round trip for intra-datacenter messages and for
// pairs without an explicit RTT.
const LocalRTT = 500 * time.Microsecond

// NewTopology creates a topology over the named datacenters.
func NewTopology(dcs ...string) *Topology {
	t := &Topology{rtt: make(map[[2]string]time.Duration)}
	t.dcs = append(t.dcs, dcs...)
	sort.Strings(t.dcs)
	return t
}

// DCs returns the datacenter names in stable order.
func (t *Topology) DCs() []string { return append([]string(nil), t.dcs...) }

// Has reports whether dc is part of the topology.
func (t *Topology) Has(dc string) bool {
	for _, d := range t.dcs {
		if d == dc {
			return true
		}
	}
	return false
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// SetRTT sets the symmetric round-trip time between datacenters a and b.
func (t *Topology) SetRTT(a, b string, d time.Duration) {
	t.rtt[pairKey(a, b)] = d
}

// RTT returns the round-trip time between a and b.
func (t *Topology) RTT(a, b string) time.Duration {
	if a == b {
		return LocalRTT
	}
	if d, ok := t.rtt[pairKey(a, b)]; ok {
		return d
	}
	return LocalRTT
}

// SimConfig tunes the simulated network.
type SimConfig struct {
	// Scale multiplies every latency (and nothing else). Experiments use a
	// fraction (e.g. 1/15) to compress the paper's wall-clock times while
	// preserving all latency ratios. 0 means 1.0.
	Scale float64
	// Jitter is the relative one-way latency perturbation, uniform in
	// [-Jitter, +Jitter]. 0 disables jitter.
	Jitter float64
	// LossRate is the probability that any single message (request or
	// response, counted independently) is silently dropped.
	LossRate float64
	// Seed seeds the simulation's RNG; 0 selects a time-based seed.
	Seed int64
}

// Sim is an in-process simulated multi-datacenter network. Create endpoints
// with Endpoint; all endpoints share the topology, fault state, and counters.
type Sim struct {
	topo *Topology
	cfg  SimConfig

	rngMu sync.Mutex
	rng   *rand.Rand

	mu       sync.RWMutex
	handlers map[string]AsyncHandler
	down     map[string]bool
	blocked  map[[2]string]bool
	closed   bool
	lossRate float64

	counters Counters
}

// NewSim creates a simulated network over the given topology.
func NewSim(topo *Topology, cfg SimConfig) *Sim {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Sim{
		topo:     topo,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(seed)),
		handlers: make(map[string]AsyncHandler),
		down:     make(map[string]bool),
		blocked:  make(map[[2]string]bool),
		lossRate: cfg.LossRate,
	}
}

// SetLossRate changes the message loss probability at runtime (fault
// injection: storms begin and end).
func (s *Sim) SetLossRate(rate float64) {
	s.mu.Lock()
	s.lossRate = rate
	s.mu.Unlock()
}

// Endpoint registers dc's request handler and returns its transport endpoint.
// Registering the same dc twice replaces the handler (used by recovery tests).
func (s *Sim) Endpoint(dc string, h Handler) Transport {
	return s.EndpointAsync(dc, func(from string, req Message, reply func(Message)) {
		reply(h(from, req))
	})
}

// EndpointAsync registers dc's asynchronous request handler and returns its
// transport endpoint. The handler runs on the simulated delivery goroutine;
// like the UDP transport's read path, it decides what work moves elsewhere.
func (s *Sim) EndpointAsync(dc string, h AsyncHandler) Transport {
	if !s.topo.Has(dc) {
		panic(fmt.Sprintf("network: endpoint for unknown datacenter %q", dc))
	}
	s.mu.Lock()
	s.handlers[dc] = h
	s.mu.Unlock()
	return &simEndpoint{sim: s, dc: dc}
}

// SetDown marks a datacenter offline (true) or back online (false). Messages
// to or from a down datacenter are lost. Mirrors "Individual transaction
// tiers may go offline and come back online without notice" (§2.2).
func (s *Sim) SetDown(dc string, down bool) {
	s.mu.Lock()
	s.down[dc] = down
	s.mu.Unlock()
}

// Partition blocks all traffic between datacenters a and b in both
// directions. Heal with Unpartition.
func (s *Sim) Partition(a, b string) {
	s.mu.Lock()
	s.blocked[pairKey(a, b)] = true
	s.mu.Unlock()
}

// Unpartition restores traffic between a and b.
func (s *Sim) Unpartition(a, b string) {
	s.mu.Lock()
	delete(s.blocked, pairKey(a, b))
	s.mu.Unlock()
}

// Counters returns a snapshot of the network's message counters.
func (s *Sim) Counters() CounterSnapshot { return s.counters.Snapshot() }

// ResetCounters zeroes the message counters.
func (s *Sim) ResetCounters() { s.counters.Reset() }

// Close shuts the network down; all in-flight and future sends fail.
func (s *Sim) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

func (s *Sim) randFloat() float64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Float64()
}

// oneWay computes one-way delay between a and b with jitter and scale.
func (s *Sim) oneWay(a, b string) time.Duration {
	d := float64(s.topo.RTT(a, b)) / 2 * s.cfg.Scale
	if s.cfg.Jitter > 0 {
		d *= 1 + s.cfg.Jitter*(2*s.randFloat()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// dropped decides whether one message direction is lost.
func (s *Sim) dropped() bool {
	s.mu.RLock()
	rate := s.lossRate
	s.mu.RUnlock()
	return rate > 0 && s.randFloat() < rate
}

func (s *Sim) state(from, to string) (h AsyncHandler, lost bool, closed bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, true
	}
	if s.down[from] || s.down[to] || s.blocked[pairKey(from, to)] {
		return nil, true, false
	}
	return s.handlers[to], false, false
}

type simEndpoint struct {
	sim *Sim
	dc  string
}

func (e *simEndpoint) Local() string   { return e.dc }
func (e *simEndpoint) Peers() []string { return e.sim.topo.DCs() }
func (e *simEndpoint) Close() error    { return nil }

// Send implements Transport. A lost message (loss injection, outage, or
// partition) blocks until the context deadline and then reports ErrTimeout:
// "either the message arrives before a known timeout or it is lost" (§2.2).
//
// Delivery is detached from the sender: once Send puts a request on the
// wire, it reaches the peer (and takes effect there) even if the sender
// stops waiting — exactly like a real datagram. Only the sender's wait is
// bounded by ctx.
func (e *simEndpoint) Send(ctx context.Context, to string, req Message) (Message, error) {
	s := e.sim
	if !s.topo.Has(to) {
		return Message{}, fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultTimeout)
		defer cancel()
	}

	s.counters.Sent(req.Kind)
	respCh := make(chan Message, 1)
	errCh := make(chan error, 1)
	go func() {
		h, lost, closed := s.state(e.dc, to)
		switch {
		case closed:
			errCh <- ErrClosed
			return
		case lost || h == nil || s.dropped():
			s.counters.Lost(req.Kind)
			return // silently lost; the sender times out
		}
		// Request flight.
		time.Sleep(s.oneWay(e.dc, to))
		// The link or peer may have failed while the message was in flight.
		if h, lost, closed = s.state(e.dc, to); closed || lost || h == nil {
			s.counters.Lost(req.Kind)
			return
		}
		// Deliver through the async handler; the delivery goroutine waits for
		// the reply even when the handler hands the work to another goroutine.
		replyCh := make(chan Message, 1)
		h(e.dc, req, func(m Message) {
			select {
			case replyCh <- m:
			default: // extra replies are dropped
			}
		})
		resp := <-replyCh
		s.counters.Sent(resp.Kind)

		// Response flight.
		if _, lost, closed := s.state(e.dc, to); closed || lost || s.dropped() {
			s.counters.Lost(resp.Kind)
			return
		}
		time.Sleep(s.oneWay(e.dc, to))
		respCh <- resp
	}()

	select {
	case resp := <-respCh:
		return resp, nil
	case err := <-errCh:
		return Message{}, err
	case <-ctx.Done():
		return Message{}, ErrTimeout
	}
}
