// Package network provides the inter-datacenter communication substrate
// (paper §2.2, "Transaction tier"): unreliable request/response messaging
// where a message either arrives before a known timeout or is lost.
//
// Two interchangeable transports implement the same Transport interface:
//
//   - Sim: an in-process network that reproduces the paper's testbed — each
//     datacenter pair has a configurable round-trip time (Virginia–Virginia
//     1.5 ms, Virginia–Oregon/California 90 ms, Oregon–California 20 ms),
//     plus jitter, message loss, datacenter outages, and partitions, with
//     per-kind message counters.
//   - UDP: a real UDP transport (the paper's prototype used UDP), one
//     socket per datacenter, no retransmission below the request/response
//     layer.
//
// The transaction tier is written against the Transport interface only, so
// protocol behaviour is identical over both.
//
// Message is the single wire unit; the UDP transport encodes it with a
// compact length-prefixed binary codec (codec.go, DESIGN.md §9) behind a
// leading version byte, and still accepts and answers legacy JSON
// envelopes, so mixed-version peers interoperate during a rolling upgrade.
// Wire version 0xB2 added the master-epoch field (DESIGN.md §11); 0xB1
// peers are answered in their own layout.
package network
