// Package network provides the inter-datacenter communication substrate
// (paper §2.2, "Transaction tier"): unreliable request/response messaging
// where a message either arrives before a known timeout or is lost.
//
// Two interchangeable transports implement the same Transport interface:
//
//   - Sim: an in-process network that reproduces the paper's testbed — each
//     datacenter pair has a configurable round-trip time (Virginia–Virginia
//     1.5 ms, Virginia–Oregon/California 90 ms, Oregon–California 20 ms),
//     plus jitter, message loss, datacenter outages, and partitions, with
//     per-kind message counters.
//   - UDP: a real UDP transport (the paper's prototype used UDP), one
//     socket per datacenter, no retransmission below the request/response
//     layer.
//
// The transaction tier is written against the Transport interface only, so
// protocol behaviour is identical over both.
//
// Message is the single wire unit; the UDP transport encodes it with a
// compact length-prefixed binary codec (codec.go, DESIGN.md §9) behind a
// leading version byte (0xB2, the layout that carries the master-epoch
// field of DESIGN.md §11). The codec is binary-only: the legacy JSON
// envelope and the pre-epoch 0xB1 layout are gone, and datagrams in any
// other format are dropped. The hot path is allocation-free in steady
// state — encode buffers and decode scratch are pooled, and request
// handling runs through AsyncHandler so the read loop never blocks on a
// slow request (DESIGN.md §13).
package network
