package network

import "sync"

// Counters tallies messages by kind. It backs the paper's §5 claim check that
// Paxos-CP has "the same per instance message complexity as the basic Paxos
// protocol" (ablation A2 in DESIGN.md). The zero value is ready to use.
type Counters struct {
	mu   sync.Mutex
	sent map[Kind]int64
	lost map[Kind]int64
}

// Sent records one message of the given kind put on the wire.
func (c *Counters) Sent(k Kind) {
	c.mu.Lock()
	if c.sent == nil {
		c.sent = make(map[Kind]int64)
	}
	c.sent[k]++
	c.mu.Unlock()
}

// Lost records one dropped message of the given kind.
func (c *Counters) Lost(k Kind) {
	c.mu.Lock()
	if c.lost == nil {
		c.lost = make(map[Kind]int64)
	}
	c.lost[k]++
	c.mu.Unlock()
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.mu.Lock()
	c.sent = make(map[Kind]int64)
	c.lost = make(map[Kind]int64)
	c.mu.Unlock()
}

// Snapshot returns a copy of the current tallies.
func (c *Counters) Snapshot() CounterSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CounterSnapshot{Sent: make(map[Kind]int64, len(c.sent)), Lost: make(map[Kind]int64, len(c.lost))}
	for k, v := range c.sent {
		s.Sent[k] = v
	}
	for k, v := range c.lost {
		s.Lost[k] = v
	}
	return s
}

// CounterSnapshot is a point-in-time copy of message tallies.
type CounterSnapshot struct {
	Sent map[Kind]int64
	Lost map[Kind]int64
}

// TotalSent sums sent messages across all kinds.
func (s CounterSnapshot) TotalSent() int64 {
	var n int64
	for _, v := range s.Sent {
		n += v
	}
	return n
}

// PaxosSent sums messages belonging to the Paxos commit protocol proper
// (prepare/accept/apply and their replies), excluding the transaction API
// and catch-up traffic.
func (s CounterSnapshot) PaxosSent() int64 {
	var n int64
	for _, k := range []Kind{KindPrepare, KindAccept, KindApply, KindLastVote, KindStatus} {
		n += s.Sent[k]
	}
	return n
}
