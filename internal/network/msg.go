package network

import (
	"fmt"
)

// Kind identifies the protocol message type. The set covers the full
// transaction tier protocol: the three Paxos phases of Algorithms 1–2, the
// transaction API (read position, remote read), the per-position leader
// claim optimization (§4.1), and catch-up for recovery.
type Kind string

// Message kinds. Requests and responses share the Message struct; responses
// use KindStatus/KindLastVote/KindValue kinds.
const (
	// Paxos commit protocol (Algorithm 1 / 2).
	KindPrepare Kind = "prepare" // propNum=Ballot
	KindAccept  Kind = "accept"  // propNum=Ballot, value=Payload
	KindApply   Kind = "apply"   // propNum=Ballot, value=Payload

	// Transaction API (transaction protocol steps 1–2).
	KindReadPos Kind = "readpos" // ask for last written log position
	KindRead    Kind = "read"    // Key at TS=read position
	// KindReadMulti reads Keys at one log position in a single round trip;
	// the reply carries parallel Vals/Founds slices. With TS=ResolvePos the
	// service serves at its applied watermark and reports the position in
	// the reply's TS (the lazy read-position piggyback; DESIGN.md §9).
	KindReadMulti Kind = "readmulti"

	// Leader optimization (§4.1 "Paxos Optimizations").
	KindClaimLeader Kind = "claim" // first claimant of Pos gets fast path

	// Catch-up: fetch a decided log entry from a peer (recovery path).
	KindFetchLog Kind = "fetchlog"

	// Leader-based protocol (§7 design): client submits a transaction to
	// the group's long-term master, which sequences and replicates it.
	KindSubmit Kind = "submit"

	// Snapshot transfer: a replica that lagged past its peers' compaction
	// horizon installs a state snapshot instead of per-entry catch-up.
	KindSnapshot Kind = "snapshot"

	// Administration: replica status and remotely triggered log compaction
	// (operator tooling; see cmd/txkvctl).
	KindStats   Kind = "stats"
	KindCompact Kind = "compact"

	// Live migration (DESIGN.md §15). KindRangeSnapshot streams the rows of
	// a moving key range from the old owner at a pinned read position: the
	// request names the source Group, the destination group (Value), the
	// destination placement's group list (Keys), a resume cursor (Key =
	// start-after key) and a delta floor (Pos = only rows whose version
	// exceeds it); the reply pages rows in Keys/Vals, its TS pinning the
	// watermark served at and Found flagging more pages.
	// KindMigrate submits one handoff phase entry (payload: encoded
	// wal.Entry with Handoff set) to the group's master pipeline.
	KindRangeSnapshot Kind = "rangesnap"
	KindMigrate       Kind = "migrate"

	// Ordered range scans (DESIGN.md §16). KindScan serves one page of an
	// ordered prefix scan at a pinned read position: the request carries the
	// user prefix (Value), the pin (TS, or ResolvePos to adopt the serving
	// watermark), a resume cursor (Key = start-after key, Found = cursor
	// present) and a page limit (Pos; 0 means the server default). The reply
	// pages bare keys/values in Keys/Vals with Founds marking rows that
	// migrated in below the pin, TS echoing the pin, Key/Found carrying the
	// next cursor, Value listing departed-range destination groups
	// (comma-joined routing hints) and Combined flagging an inbound range
	// prepared but unopened at the pin (retry this group after its cutover).
	KindScan Kind = "scan"

	// Responses.
	KindLastVote Kind = "lastvote" // prepare reply: Ballot=lastVote ballot, Payload=vote
	KindStatus   Kind = "status"   // generic success/failure reply
	KindValue    Kind = "value"    // read/readpos/fetchlog reply
)

// ResolvePos, sent as the TS of a read or readmulti request, asks the
// service to serve the read at its current applied watermark and return that
// position in the reply's TS. Clients use it to piggyback the transaction's
// read-position fetch on its first read (DESIGN.md §9).
const ResolvePos int64 = -1

// Message is the single wire unit exchanged between Transaction Clients and
// Transaction Services. One flat struct (rather than per-kind types) keeps
// the UDP codec trivial and mirrors the loosely-typed RPC of the prototype.
type Message struct {
	Kind  Kind
	Group string // transaction group key
	Pos   int64  // log position the message concerns

	Ballot  int64  // proposal number
	Payload []byte // encoded wal.Entry (vote or value)

	Key string // data item key (reads)
	TS  int64  // timestamp / read position

	OK    bool   // success flag in replies
	Value string // data item value in read replies
	Found bool   // read reply: key existed
	Err   string // error detail in failure replies

	// Combined marks a submit reply whose transaction committed inside a
	// multi-transaction log entry (the master's combination path).
	Combined bool

	// Epoch carries the master epoch (DESIGN.md §11): in a submit reply, the
	// epoch the transaction committed under; in a "not master" refusal, the
	// prevailing epoch the refusing service has observed. 0 = unfenced.
	Epoch int64

	// Multi-key read (KindReadMulti): the request lists Keys; the reply
	// carries Vals and Founds parallel to the request's Keys.
	Keys   []string
	Vals   []string
	Founds []bool
}

// Status constructs a generic success/failure reply.
func Status(ok bool, err string) Message {
	return Message{Kind: KindStatus, OK: ok, Err: err}
}

// String renders a compact debug form.
func (m Message) String() string {
	return fmt.Sprintf("%s{g=%s p=%d b=%d ok=%v}", m.Kind, m.Group, m.Pos, m.Ballot, m.OK)
}
