//go:build !race

package network

// raceEnabled reports whether the race detector is compiled in. Its
// instrumentation allocates on paths that are allocation-free in a plain
// build, so the alloc pins skip under -race (the plain tier-1 run keeps
// them enforced).
const raceEnabled = false
