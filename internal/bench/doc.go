// Package bench regenerates every figure of the paper's evaluation (§6)
// plus the figures this reproduction added for its own mechanisms. Each
// exported experiment runs against the simulated multi-datacenter cluster
// and returns the series the paper plots as text tables. cmd/paxosbench is
// the CLI front end; bench_test.go at the module root exposes each
// experiment as a testing.B benchmark.
//
// Paper figures: Fig4 (commits/latency by replica count), Fig5 (by
// transaction size), Fig6 (by contention), Fig7 (promotion rounds), Fig8
// (per-datacenter fairness), plus Ablation, PromotionCap,
// MessageComplexity, LeaderComparison, and Availability.
//
// Reproduction figures: SubmitPipeline (the pipelined master's window sweep,
// DESIGN.md §8), Reads (batched multi-key reads vs per-key, DESIGN.md §9),
// Failover (commits/sec through a forced, epoch-fenced master change,
// DESIGN.md §11), and Shards (aggregate commit throughput over 1..16
// sharded transaction groups with per-group masters, DESIGN.md §12).
//
// Latencies are scaled by Options.Scale (default 1/15) so a full
// reproduction runs in minutes. Reported latencies are scaled back up to
// paper-equivalent milliseconds. Every run feeds the one-copy-
// serializability checker; violations fail the experiment. export.go parses
// `go test -bench` output into the BENCH_*.json format CI tracks, and
// CompareReports diffs two such files (make bench-compare).
package bench
