package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"paxoscp/internal/cluster"
	"paxoscp/internal/core"
	"paxoscp/internal/history"
	"paxoscp/internal/network"
	"paxoscp/internal/stats"
	"paxoscp/internal/wal"
)

// Failover measures commit throughput through a forced master change under
// epoch-fenced leases (DESIGN.md §11): a steady unpaced workload submits to
// master V1; mid-run V1 is partitioned from V2 (both keep quorum through V3
// — the dueling-masters window), V2 waits out the lease and claims the next
// epoch, and the workload repoints. The figure reports per-phase commits/sec
// plus the takeover gap itself, with the epoch-aware serializability checker
// run over the whole history — a fenced double commit would fail the figure.
func Failover(o Options) ([]Table, error) {
	o = o.withDefaults()
	timeout := time.Duration(float64(paperTimeout) * o.Scale)
	lease := 4 * timeout
	c := cluster.New(cluster.Config{
		Topology:      cluster.MustPaperTopology("VVV"),
		NetConfig:     network.SimConfig{Seed: o.Seed, Scale: o.Scale, Jitter: 0.1},
		Timeout:       timeout,
		LeaseDuration: lease,
	})
	defer c.Close()
	ctx := context.Background()
	rec := &history.Recorder{}
	group := "entity-group"

	// phase runs an unpaced wave of read-modify-write transactions at the
	// given master from the given home datacenters and reports commits +
	// wall time. Phase 2 homes its clients on the reachable side of the
	// partition: the figure measures the new master's pipeline, not the
	// timeouts of clients stranded behind the cut.
	threads := o.Threads
	phase := func(masterDC string, homes []string, seedBase, txns int) (int, time.Duration) {
		var wg sync.WaitGroup
		var mu sync.Mutex
		committed := 0
		start := time.Now()
		for i := 0; i < threads; i++ {
			cl := c.NewClient(homes[i%len(homes)], core.Config{
				Protocol: core.Master, MasterDC: masterDC,
				Timeout: timeout, Seed: int64(seedBase + i),
			})
			cl.OnCommit = func(pos int64, txn core.CommittedTxn) {
				rec.Record(history.Commit{
					ID: txn.ID, Origin: txn.Origin, ReadPos: txn.ReadPos,
					Pos: pos, Reads: txn.Reads, Writes: txn.Writes,
				})
			}
			wg.Add(1)
			go func(i int, cl *core.Client) {
				defer wg.Done()
				for n := 0; n < txns; n++ {
					tx, err := cl.Begin(ctx, group)
					if err != nil {
						continue
					}
					if _, _, err := tx.Read(ctx, fmt.Sprintf("attr%d", (i+n)%16)); err != nil {
						tx.Abort()
						continue
					}
					tx.Write(fmt.Sprintf("attr%d", (i*3+n)%16), fmt.Sprintf("%s-%d-%d", masterDC, i, n))
					res, err := tx.Commit(ctx)
					if err == nil && res.Status == stats.Committed {
						mu.Lock()
						committed++
						mu.Unlock()
					}
				}
			}(i, cl)
		}
		wg.Wait()
		return committed, time.Since(start)
	}

	perPhase := o.Txns / 2
	if perPhase < threads {
		perPhase = threads
	}

	t := Table{
		Title: "Failover: commits/sec through a forced master change (VVV, epoch-fenced leases)",
		Note: fmt.Sprintf("lease %v (4x timeout); V1 partitioned from V2 at takeover — both keep quorum via V3 (dueling-master window)",
			lease),
		Columns: []string{"phase", "epoch", "commits", "wall-ms", "commits/sec", "check"},
	}
	rate := func(n int, wall time.Duration) string {
		if wall <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", float64(n)/wall.Seconds())
	}

	// Phase 1: steady state at V1 (auto-claims epoch 1).
	n1, w1 := phase("V1", c.DCs(), 1, perPhase)
	e1, _ := c.Service("V1").Mastership(group)

	// Takeover: cut V1 from V2 and claim the next epoch at V2. The wall
	// time of this step is the failover gap a client-facing deployment
	// would observe.
	c.Partition("V1", "V2")
	claimStart := time.Now()
	cctx, cancel := context.WithTimeout(ctx, 64*lease)
	epoch2, err := c.Service("V2").ClaimMastership(cctx, group)
	cancel()
	if err != nil {
		return nil, fmt.Errorf("bench: failover claim: %w", err)
	}
	claimWall := time.Since(claimStart)

	// Phase 2: steady state at V2 under the new epoch, old master still up.
	n2, w2 := phase("V2", []string{"V2", "V3"}, 1000, perPhase)

	// Heal and converge, then run the epoch-aware checker over everything.
	c.Heal("V1", "V2")
	for _, dc := range c.DCs() {
		if err := c.Service(dc).Recover(ctx, group); err != nil {
			return nil, fmt.Errorf("bench: failover recover %s: %w", dc, err)
		}
	}
	logs := map[string]map[int64]wal.Entry{}
	for _, dc := range c.DCs() {
		logs[dc] = c.Service(dc).LogSnapshot(group)
	}
	violations := history.Check(logs, rec.Commits())

	t.AddRow("steady (V1 master)", fmt.Sprint(e1.Epoch), fmt.Sprint(n1),
		fmt.Sprintf("%.0f", unscale(w1, o.Scale)), rate(n1, w1), violationsCell(violations))
	t.AddRow("takeover (lease wait + claim)", fmt.Sprint(epoch2), "-",
		fmt.Sprintf("%.0f", unscale(claimWall, o.Scale)), "-", "-")
	t.AddRow("resumed (V2 master)", fmt.Sprint(epoch2), fmt.Sprint(n2),
		fmt.Sprintf("%.0f", unscale(w2, o.Scale)), rate(n2, w2), violationsCell(violations))
	o.Verbose("  failover: %d→%d commits, takeover %.0fms (paper-equivalent), epoch %d→%d, %d violations",
		n1, n2, unscale(claimWall, o.Scale), e1.Epoch, epoch2, len(violations))
	return []Table{t}, nil
}
