package bench

import (
	"fmt"

	"paxoscp/internal/core"
)

// Ablation runs the design-choice ablations DESIGN.md §7 calls out, all on
// the Figure 6 midpoint workload (VVV, 100 attributes):
//
//  1. leader fast path on/off,
//  2. Paxos-CP with combination disabled,
//  3. Paxos-CP with promotion disabled (combination only),
//  4. exhaustive vs greedy combination.
func Ablation(o Options) ([]Table, error) {
	o = o.withDefaults()
	t := Table{
		Title:   "Ablations (VVV, 100 attributes): contribution of each mechanism",
		Columns: []string{"variant", "commits", "by-round", "combined", "check"},
	}
	variants := []struct {
		name  string
		proto core.Protocol
		edit  func(*core.Config)
	}{
		{"paxos", core.Basic, nil},
		{"paxos no-fastpath", core.Basic, func(c *core.Config) { c.DisableFastPath = true }},
		{"paxos-cp", core.CP, nil},
		{"paxos-cp no-fastpath", core.CP, func(c *core.Config) { c.DisableFastPath = true }},
		{"paxos-cp no-combination", core.CP, func(c *core.Config) { c.DisableCombination = true }},
		{"paxos-cp no-promotion", core.CP, func(c *core.Config) { c.DisablePromotion = true }},
		{"paxos-cp greedy-combine", core.CP, func(c *core.Config) { c.CombineLimit = 1 }},
	}
	for _, v := range variants {
		res, err := run(o, runSpec{
			name:       "ablation " + v.name,
			topology:   "VVV",
			protocol:   v.proto,
			cfgEdit:    v.edit,
			attributes: 100,
			opsPerTxn:  10,
		})
		if err != nil {
			return nil, err
		}
		sum := res.summary
		t.AddRow(v.name, fmt.Sprint(sum.Commits), roundCommits(sum),
			fmt.Sprint(sum.Combined), violationsCell(res.violations))
	}
	return []Table{t}, nil
}

// PromotionCap sweeps the promotion-attempt cap ("If increased latency is a
// concern, the number of promotion attempts can be capped", §6).
func PromotionCap(o Options) ([]Table, error) {
	o = o.withDefaults()
	t := Table{
		Title:   "Promotion cap sweep (VVV, 100 attributes, Paxos-CP)",
		Columns: []string{"cap", "commits", "by-round", "mean-latency-ms", "check"},
	}
	caps := []int{1, 2, 4, 0} // 0 = unlimited (paper default)
	for _, cap := range caps {
		capLabel := fmt.Sprint(cap)
		if cap == 0 {
			capLabel = "unlimited"
		}
		capVal := cap
		res, err := run(o, runSpec{
			name:       "promo-cap " + capLabel,
			topology:   "VVV",
			protocol:   core.CP,
			cfgEdit:    func(c *core.Config) { c.MaxPromotions = capVal },
			attributes: 100,
			opsPerTxn:  10,
		})
		if err != nil {
			return nil, err
		}
		sum := res.summary
		t.AddRow(capLabel, fmt.Sprint(sum.Commits), roundCommits(sum),
			fmtMS(sum.AllCommit.Mean, o.Scale), violationsCell(res.violations))
	}
	return []Table{t}, nil
}

// LeaderComparison compares the two Paxos commit protocols against the
// leader-based design the paper sketches in §7 (long-term master as
// transaction manager and sequencer — implemented as core.Master). The
// paper predicts the trade: "fewer rounds of messaging per transaction, but
// a greater amount of work would fall on a single site". We run the Figure
// 6 midpoint workload with clients spread across datacenters so remote
// clients pay the round trip to the master.
func LeaderComparison(o Options) ([]Table, error) {
	o = o.withDefaults()
	t := Table{
		Title: "Leader-based design vs Paxos/Paxos-CP (§7 discussion; VOC, 100 attributes)",
		Note:  "clients spread over all three datacenters; master at V",
		Columns: []string{"protocol", "commits", "aborts", "mean-latency-ms",
			"paxos-msgs/txn", "check"},
	}
	for _, proto := range []core.Protocol{core.Basic, core.CP, core.Master} {
		res, err := run(o, runSpec{
			name:       "leader-cmp " + proto.String(),
			topology:   "VOC",
			protocol:   proto,
			cfgEdit:    func(c *core.Config) { c.MasterDC = "V" },
			attributes: 100,
			opsPerTxn:  10,
			threadDCs:  []string{"V", "O", "C"},
		})
		if err != nil {
			return nil, err
		}
		sum := res.summary
		t.AddRow(proto.String(), fmt.Sprint(sum.Commits),
			fmt.Sprint(sum.Aborts+sum.Failures),
			fmtMS(sum.AllCommit.Mean, o.Scale),
			fmt.Sprintf("%.1f", res.paxosPerTx), violationsCell(res.violations))
	}
	return []Table{t}, nil
}

// MessageComplexity verifies the §5 claim that Paxos-CP requires "the same
// per instance message complexity as the basic Paxos protocol" by counting
// Paxos-protocol messages per transaction under identical workloads.
func MessageComplexity(o Options) ([]Table, error) {
	o = o.withDefaults()
	t := Table{
		Title: "Message complexity (VVV, 100 attributes): Paxos messages per instance",
		Note: "§5 claims per-INSTANCE parity; a promoted transaction runs one instance " +
			"per promotion round, so per-transaction counts differ",
		Columns: []string{"protocol", "msgs/instance", "instances/txn", "msgs/txn",
			"commits", "check"},
	}
	for _, proto := range protocols {
		res, err := run(o, runSpec{
			name:       fmt.Sprintf("msgs %s", proto),
			topology:   "VVV",
			protocol:   proto,
			attributes: 100,
			opsPerTxn:  10,
		})
		if err != nil {
			return nil, err
		}
		sum := res.summary
		// Each transaction participates in Round+1 Paxos instances (one per
		// promotion round); basic Paxos is always exactly one.
		instances := 0
		for _, s := range res.samples {
			instances += s.Round + 1
		}
		perInstance, perTxn := "-", "-"
		if instances > 0 {
			perInstance = fmt.Sprintf("%.1f", float64(res.msgs.PaxosSent())/float64(instances))
		}
		if sum.Total > 0 {
			perTxn = fmt.Sprintf("%.1f", res.paxosPerTx)
		}
		t.AddRow(proto.String(), perInstance,
			fmt.Sprintf("%.2f", float64(instances)/float64(sum.Total)),
			perTxn, fmt.Sprint(sum.Commits), violationsCell(res.violations))
	}
	return []Table{t}, nil
}
