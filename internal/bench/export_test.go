package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: paxoscp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSubmitThroughput/window=1-8         	     200	   1205174 ns/op	       829.8 commits/sec
BenchmarkSubmitThroughput/window=8-8         	     200	    404756 ns/op	      2471 commits/sec
BenchmarkWALEncode-8   	  506980	      2188 ns/op	    1288 B/op	      18 allocs/op
--- BENCH: BenchmarkSomething
    some test log line
PASS
ok  	paxoscp	0.343s
`

func TestParseGoBench(t *testing.T) {
	results, err := ParseGoBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	first := results[0]
	if first.Name != "BenchmarkSubmitThroughput/window=1-8" || first.Iters != 200 {
		t.Fatalf("first result = %+v", first)
	}
	if got := first.Metrics["commits/sec"]; got != 829.8 {
		t.Fatalf("commits/sec = %v, want 829.8", got)
	}
	if got := first.Metrics["ns/op"]; got != 1205174 {
		t.Fatalf("ns/op = %v, want 1205174", got)
	}
	wal := results[2]
	if wal.Metrics["B/op"] != 1288 || wal.Metrics["allocs/op"] != 18 {
		t.Fatalf("wal metrics = %+v", wal.Metrics)
	}
}

func TestParseGoBenchEmptyAndGarbage(t *testing.T) {
	results, err := ParseGoBench(strings.NewReader("FAIL\nBenchmarkBroken notanumber ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("garbage parsed as %+v", results)
	}
}

func TestWriteBenchJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, strings.NewReader(sampleBenchOutput), "ci"); err != nil {
		t.Fatal(err)
	}
	var report BenchReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if report.Context != "ci" || len(report.Results) != 3 {
		t.Fatalf("report = %+v", report)
	}
}

func TestCompareReports(t *testing.T) {
	base := BenchReport{Results: []BenchResult{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 100, "commits/sec": 50}},
		{Name: "BenchmarkGone", Metrics: map[string]float64{"ns/op": 10}},
	}}
	fresh := BenchReport{Results: []BenchResult{
		// ns/op up 30% (regression), commits/sec up 30% (improvement).
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 130, "commits/sec": 65}},
		{Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 5}},
	}}
	deltas := CompareReports(base, fresh, 0.20)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %+v", deltas)
	}
	byUnit := map[string]Delta{}
	for _, d := range deltas {
		if d.Name != "BenchmarkA" {
			t.Fatalf("unmatched benchmark compared: %+v", d)
		}
		byUnit[d.Unit] = d
	}
	if d := byUnit["ns/op"]; !d.Regression || d.Ratio < 1.29 || d.Ratio > 1.31 {
		t.Fatalf("ns/op delta = %+v", d)
	}
	if d := byUnit["commits/sec"]; d.Regression {
		t.Fatalf("throughput improvement flagged as regression: %+v", d)
	}
}

func TestCompareReportsDirections(t *testing.T) {
	base := BenchReport{Results: []BenchResult{
		{Name: "B", Metrics: map[string]float64{"commits/sec": 100, "allocs/op": 4}},
	}}
	fresh := BenchReport{Results: []BenchResult{
		{Name: "B", Metrics: map[string]float64{"commits/sec": 70, "allocs/op": 3}},
	}}
	deltas := CompareReports(base, fresh, 0.20)
	for _, d := range deltas {
		switch d.Unit {
		case "commits/sec": // 30% drop in throughput: regression
			if !d.Regression {
				t.Fatalf("throughput drop not flagged: %+v", d)
			}
		case "allocs/op": // fewer allocations: improvement
			if d.Regression {
				t.Fatalf("alloc improvement flagged: %+v", d)
			}
		}
	}
	var buf bytes.Buffer
	if n := WriteCompareReport(&buf, deltas); n != 1 {
		t.Fatalf("reported %d regressions, want 1\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("table missing regression marker:\n%s", buf.String())
	}
}

func TestCompareReportsZeroBaseline(t *testing.T) {
	base := BenchReport{Results: []BenchResult{{Name: "B", Metrics: map[string]float64{"ns/op": 0}}}}
	fresh := BenchReport{Results: []BenchResult{{Name: "B", Metrics: map[string]float64{"ns/op": 10}}}}
	deltas := CompareReports(base, fresh, 0.2)
	if len(deltas) != 1 || deltas[0].Regression {
		t.Fatalf("zero baseline mishandled: %+v", deltas)
	}
}
