package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: paxoscp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSubmitThroughput/window=1-8         	     200	   1205174 ns/op	       829.8 commits/sec
BenchmarkSubmitThroughput/window=8-8         	     200	    404756 ns/op	      2471 commits/sec
BenchmarkWALEncode-8   	  506980	      2188 ns/op	    1288 B/op	      18 allocs/op
--- BENCH: BenchmarkSomething
    some test log line
PASS
ok  	paxoscp	0.343s
`

func TestParseGoBench(t *testing.T) {
	results, err := ParseGoBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	first := results[0]
	if first.Name != "BenchmarkSubmitThroughput/window=1-8" || first.Iters != 200 {
		t.Fatalf("first result = %+v", first)
	}
	if got := first.Metrics["commits/sec"]; got != 829.8 {
		t.Fatalf("commits/sec = %v, want 829.8", got)
	}
	if got := first.Metrics["ns/op"]; got != 1205174 {
		t.Fatalf("ns/op = %v, want 1205174", got)
	}
	wal := results[2]
	if wal.Metrics["B/op"] != 1288 || wal.Metrics["allocs/op"] != 18 {
		t.Fatalf("wal metrics = %+v", wal.Metrics)
	}
}

func TestParseGoBenchEmptyAndGarbage(t *testing.T) {
	results, err := ParseGoBench(strings.NewReader("FAIL\nBenchmarkBroken notanumber ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("garbage parsed as %+v", results)
	}
}

func TestWriteBenchJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, strings.NewReader(sampleBenchOutput), "ci"); err != nil {
		t.Fatal(err)
	}
	var report BenchReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if report.Context != "ci" || len(report.Results) != 3 {
		t.Fatalf("report = %+v", report)
	}
}
