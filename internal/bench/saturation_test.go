package bench

import "testing"

// TestSaturationQuick exercises the saturation figure end to end at CI
// scale: all rows render and every quiesce-aware history check passes.
func TestSaturationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Saturation(Options{Scale: 0.005, Txns: 96, Seed: 7})
	checkTables(t, tables, err)
	if len(tables[0].Rows) != 4 { // 4, 8, 16, 32 threads
		t.Fatalf("saturation rows = %d", len(tables[0].Rows))
	}
}

// TestSaturationPlateau pins the PR's overload claim: at 4x the offered
// load that saturates the bounded pipeline (32 unpaced threads vs 8),
// admission control must keep committed throughput from collapsing (>= 40%
// of the near-capacity rate) and keep the commit tail bounded (p99 <= 5x),
// while actually refusing work (rejects observed). Like the shards scaling
// assertion it is a performance test, so it does not run under the race
// detector — TestSaturationQuick keeps the sweep's correctness raced.
func TestSaturationPlateau(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("throughput and tail ratios are meaningless under the race detector")
	}
	o := Options{Scale: 1.0 / 15, Txns: 480, Seed: 42}
	near, err := saturationRun(o, 8)
	if err != nil {
		t.Fatal(err)
	}
	over, err := saturationRun(o, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(near.violations) != 0 || len(over.violations) != 0 {
		t.Fatalf("serializability violations: t8=%d t32=%d", len(near.violations), len(over.violations))
	}
	if over.rejects == 0 {
		t.Error("4x overload never saw the overloaded verdict")
	}
	rate := func(r saturationResult) float64 {
		if r.wall <= 0 {
			return 0
		}
		return float64(r.commits) / r.wall.Seconds()
	}
	rNear, rOver := rate(near), rate(over)
	if rNear <= 0 || rOver <= 0 {
		t.Fatalf("degenerate rates: t8=%.0f t32=%.0f", rNear, rOver)
	}
	t.Logf("saturation: 8 threads %.0f commits/sec p99 %v; 32 threads %.0f commits/sec p99 %v (%d rejects)",
		rNear, near.p99, rOver, over.p99, over.rejects)
	if rOver < 0.4*rNear {
		t.Errorf("throughput collapsed under overload: %.0f vs %.0f commits/sec", rOver, rNear)
	}
	if near.p99 > 0 && over.p99 > 5*near.p99 {
		t.Errorf("commit p99 grew with offered load: %v vs %v", over.p99, near.p99)
	}
}
