package bench

import (
	"context"
	"fmt"
	"time"

	"paxoscp/internal/cluster"
	"paxoscp/internal/core"
	"paxoscp/internal/history"
	"paxoscp/internal/network"
	"paxoscp/internal/stats"
	"paxoscp/internal/wal"
	"paxoscp/internal/ycsb"
)

// Shards measures horizontal scaling across transaction groups (DESIGN.md
// §12): a fixed set of unpaced threads drives a sharded workload over 1..16
// groups on the VVV sim, every group with its own pipelined master — spread
// across the datacenters by the cluster's placement — its own submit window,
// and its own replog apply goroutine. The only shared resources are the
// simulated transport and the per-datacenter store.
//
// With one group, all threads contend on one serialization domain: one
// master pipeline, one conflict scope, one log. Sharding divides both the
// pipeline serialization and the data contention by the group count, so
// aggregate commit throughput should scale toward the thread count's
// ceiling. Every run ends with the per-group epoch-aware serializability
// check — a cross-group leak or a lost commit fails the figure, not just a
// test.
func Shards(o Options) ([]Table, error) {
	o = o.withDefaults()
	t := Table{
		Title: "Shards: aggregate commit throughput by transaction group count (VVV, 32 unpaced threads, per-group masters)",
		Note:  "fixed offered load over a bounded per-group pipeline (window 2x2); groups shard pipeline capacity and data contention; speedup is commits/sec vs 1 group",
		Columns: []string{"groups", "commits", "aborts+fail", "commits/sec", "speedup",
			"mean-latency-ms", "check"},
	}
	var base float64
	for _, groups := range []int{1, 2, 4, 8, 16} {
		res, err := shardsRun(o, groups)
		if err != nil {
			return nil, err
		}
		perSec := 0.0
		if res.wall > 0 {
			perSec = float64(res.commits) / res.wall.Seconds()
		}
		if groups == 1 {
			base = perSec
		}
		speedup := "-"
		if base > 0 {
			speedup = fmt.Sprintf("%.2fx", perSec/base)
		}
		t.AddRow(fmt.Sprint(groups), fmt.Sprint(res.commits), fmt.Sprint(res.aborts),
			fmt.Sprintf("%.0f", perSec), speedup,
			fmtMS(res.meanLatency, o.Scale), violationsCell(res.violations))
	}
	return []Table{t}, nil
}

// shardsResult is one group-count configuration's outcome.
type shardsResult struct {
	commits     int
	aborts      int
	wall        time.Duration
	meanLatency time.Duration
	violations  []history.Violation // per-group checks, concatenated
}

// shardsThreads is the fixed offered load of the shards sweep: enough
// concurrent submitters to oversubscribe a single group's pipeline several
// times over, so adding groups shows up as throughput instead of idle
// capacity.
const shardsThreads = 32

// shardsWindow / shardsCombine bound each group's master pipeline for this
// figure: capacity is window x combine transactions in flight per group.
// The bound is what makes the sweep measure *horizontal* scale — with the
// default 8x4 window a single group swallows the whole offered load and
// every configuration measures the same client-side latency floor. Real
// deployments bound the window too (memory, fairness, §8); 2x2 compresses
// the saturation point to the sim's scale.
const (
	shardsWindow  = 2
	shardsCombine = 2
)

// shardsAttrs sizes each group's attribute space. Small enough that the
// single-group baseline also exhibits the §6 contention regime (32 threads
// read-modify-writing one group's attributes), which sharding then divides
// by the group count.
const shardsAttrs = 48

// shardsRun executes the sharded workload over the given group count and
// checks every group's history. Exposed to the test suite so the scaling
// assertion and the rendered figure run the same experiment.
func shardsRun(o Options, groups int) (shardsResult, error) {
	o = o.withDefaults()
	timeout := time.Duration(float64(paperTimeout) * o.Scale)
	c := cluster.New(cluster.Config{
		Topology:      cluster.MustPaperTopology("VVV"),
		NetConfig:     network.SimConfig{Seed: o.Seed, Scale: o.Scale, Jitter: 0.1},
		Timeout:       timeout,
		SubmitWindow:  shardsWindow,
		SubmitCombine: shardsCombine,
		Groups:        groups,
	})
	defer c.Close()

	w := ycsb.Workload{
		Groups:     c.Groups(),
		Attributes: shardsAttrs,
		OpsPerTxn:  4,
	}
	rec := &history.Recorder{}
	perThread := o.Txns / shardsThreads
	if perThread < 1 {
		perThread = 1
	}
	var threads []ycsb.Thread
	for i := 0; i < shardsThreads; i++ {
		dc := c.DCs()[i%len(c.DCs())]
		cl := c.NewClient(dc, core.Config{
			Protocol:  core.Master,
			MasterFor: c.MasterOf,
			Timeout:   timeout,
			Seed:      o.Seed + int64(i) + 1,
		})
		threads = append(threads, ycsb.Thread{
			Client:   cl,
			Gen:      ycsb.NewGenerator(w, o.Seed+int64(i)*1000+7),
			Count:    perThread,
			Interval: time.Nanosecond, // unpaced
			// Time-to-commit, not time-to-verdict: conflict aborts retry, so
			// the single-group baseline pays for its contention in wall time
			// instead of quietly dropping the conflicted transactions.
			RetryAborts: 24,
		})
	}

	start := time.Now()
	runner := &ycsb.Runner{Threads: threads, Recorder: rec}
	samples := runner.Run(context.Background())
	wall := time.Since(start)

	// Quiesce every (datacenter, group) pair and check each group's history
	// against that group's log — group-local serializability, group by group.
	ctx := context.Background()
	for _, dc := range c.DCs() {
		for _, g := range c.Groups() {
			if err := c.Service(dc).Recover(ctx, g); err != nil {
				return shardsResult{}, fmt.Errorf("bench: shards recover %s/%s: %w", dc, g, err)
			}
		}
	}
	byGroup := history.ByGroup(rec.Commits())
	var violations []history.Violation
	for _, g := range c.Groups() {
		logs := map[string]map[int64]wal.Entry{}
		for _, dc := range c.DCs() {
			logs[dc] = c.Service(dc).LogSnapshot(g)
		}
		violations = append(violations, history.Check(logs, byGroup[g])...)
	}

	sum := stats.Summarize(samples)
	res := shardsResult{
		commits:     sum.Commits,
		aborts:      sum.Aborts + sum.Failures,
		wall:        wall,
		meanLatency: sum.AllCommit.Mean,
		violations:  violations,
	}
	perSec := 0.0
	if wall > 0 {
		perSec = float64(res.commits) / wall.Seconds()
	}
	o.Verbose("  shards g=%-2d %s (%.2fs wall, %.0f commits/sec, %d violations)",
		groups, sum.String(), wall.Seconds(), perSec, len(violations))
	return res, nil
}
