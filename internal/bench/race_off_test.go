//go:build !race

package bench

// raceEnabled reports whether the race detector is compiled in; its
// overhead turns latency-bound sim experiments CPU-bound, so scaling
// assertions relax their floors under -race.
const raceEnabled = false
