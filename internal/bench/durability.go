package bench

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/kvstore/disk"
)

// Durability measures acknowledged-write throughput against the disk engine
// (DESIGN.md §14) under each fsync policy, sweeping concurrent writers. It
// drives the store directly rather than through the simulated cluster: the
// sim's WAN round-trips are tens of scaled milliseconds while an fsync is
// ~100 µs, so behind the cluster every policy would measure the network.
// At the engine the figure shows the durability story itself:
//
//   - memory: nil engine, the no-durability upper bound;
//   - sync: one fsync per acknowledged write — safe and slow, and writer
//     concurrency cannot help because fsyncs serialize;
//   - batch: group commit — the first waiter fsyncs for everyone queued
//     behind it, so throughput scales with writers while keeping exactly
//     sync's guarantee (nothing acknowledged is ever lost);
//   - interval: acknowledge immediately, fsync on a timer — fastest, but
//     power loss may take the last interval's acknowledged writes with it.
//
// The fsyncs column (per 1000 acknowledged writes, at the highest writer
// count) makes the absorption visible: sync pays ~1000, batch pays an
// order of magnitude fewer.
func Durability(o Options) ([]Table, error) {
	o = o.withDefaults()
	writersSweep := []int{1, 4, 16}
	t := Table{
		Title: "Durability: acknowledged writes/sec vs fsync policy (disk engine, " + fmt.Sprint(durabilityWritesTotal(o)) + " writes per cell)",
		Note:  "engine-level sweep; sync = fsync per write, batch = group commit (same guarantee as sync), interval = timer fsync (may lose last interval on power loss); fsyncs column per 1000 writes at 16 writers",
		Columns: []string{"policy", "w=1 /sec", "w=4 /sec", "w=16 /sec",
			"vs sync @16", "fsyncs/1k @16"},
	}
	var syncAt16 float64
	for _, policy := range []string{"memory", string(disk.SyncEvery), string(disk.SyncBatch), string(disk.SyncInterval)} {
		cells := make([]string, 0, len(writersSweep))
		var last durabilityResult
		for _, w := range writersSweep {
			res, err := durabilityRun(o, policy, w)
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmt.Sprintf("%.0f", res.perSec))
			last = res
			o.Verbose("  durability %-8s w=%-2d %6.0f writes/sec (%d fsyncs for %d writes)",
				policy, w, res.perSec, res.fsyncs, res.writes)
		}
		if policy == string(disk.SyncEvery) {
			syncAt16 = last.perSec
		}
		ratio := "-"
		if policy != "memory" && syncAt16 > 0 {
			ratio = fmt.Sprintf("%.1fx", last.perSec/syncAt16)
		}
		fsyncsCell := "-"
		if policy != "memory" && last.writes > 0 {
			fsyncsCell = fmt.Sprintf("%.0f", float64(last.fsyncs)*1000/float64(last.writes))
		}
		t.AddRow(policy, cells[0], cells[1], cells[2], ratio, fsyncsCell)
	}
	return []Table{t}, nil
}

// durabilityWritesTotal sizes each cell's workload from the experiment's
// transaction budget: every write is one acknowledged durable mutation.
func durabilityWritesTotal(o Options) int {
	n := o.Txns
	if n < 60 {
		n = 60 // below this, one absorbed fsync dominates the measurement
	}
	return n
}

// durabilityResult is one (policy, writers) cell's outcome.
type durabilityResult struct {
	writes int
	wall   time.Duration
	perSec float64
	fsyncs uint64
}

// durabilityRun executes one cell: writers goroutines split the write budget
// against one fresh store (disk-backed unless policy is "memory"), each
// write acknowledged — i.e. durable per the policy — before the next.
// Exposed to the test suite so the pinned batch-vs-sync assertion and the
// rendered figure run the same experiment.
func durabilityRun(o Options, policy string, writers int) (durabilityResult, error) {
	o = o.withDefaults()
	var store *kvstore.Store
	var engine *disk.Engine
	if policy == "memory" {
		store = kvstore.New()
	} else {
		dir, err := os.MkdirTemp("", "paxoscp-durability-*")
		if err != nil {
			return durabilityResult{}, fmt.Errorf("bench: durability: %w", err)
		}
		defer os.RemoveAll(dir)
		store, engine, err = disk.Open(dir, disk.Options{Fsync: disk.SyncPolicy(policy)})
		if err != nil {
			return durabilityResult{}, fmt.Errorf("bench: durability: %w", err)
		}
	}
	defer store.Close()

	total := durabilityWritesTotal(o)
	perWriter := total / writers
	if perWriter < 1 {
		perWriter = 1
	}
	writes := perWriter * writers
	payload := kvstore.Value{"v": "0123456789abcdef0123456789abcdef", "seq": ""}

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prefix := "dur/w" + strconv.Itoa(w) + "/"
			for i := 0; i < perWriter; i++ {
				v := kvstore.Value{"v": payload["v"], "seq": strconv.Itoa(i)}
				if err := store.WriteIdempotent(prefix+strconv.Itoa(i), v, 1); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return durabilityResult{}, fmt.Errorf("bench: durability %s w=%d: %w", policy, writers, err)
	}
	wall := time.Since(start)

	res := durabilityResult{writes: writes, wall: wall}
	if wall > 0 {
		res.perSec = float64(writes) / wall.Seconds()
	}
	if engine != nil {
		res.fsyncs = engine.Fsyncs()
	}
	return res, nil
}
