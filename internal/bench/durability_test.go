package bench

import "testing"

// TestDurabilityQuick exercises the durability figure end to end at CI
// scale: every policy row renders and all cells complete without error.
func TestDurabilityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Durability(Options{Txns: 96, Seed: 7})
	checkTables(t, tables, err)
	if len(tables[0].Rows) != 4 { // memory, sync, batch, interval
		t.Fatalf("durability rows = %d", len(tables[0].Rows))
	}
}

// TestDurabilityBatchAbsorption pins the PR's group-commit claim: with 16
// concurrent writers, the batch policy must deliver at least 3x the
// acknowledged-write throughput of sync-every-write while providing the
// same guarantee, and the absorption must be real — batch's fsync count
// stays well below the write count, while sync pays one fsync per write.
// Like the shards and saturation assertions it is a performance test, so
// it does not run under the race detector — TestDurabilityQuick and the
// disk package's own tests keep the engine's correctness raced.
func TestDurabilityBatchAbsorption(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("throughput and fsync ratios are meaningless under the race detector")
	}
	o := Options{Txns: 480, Seed: 42}
	sync, err := durabilityRun(o, "sync", 16)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := durabilityRun(o, "batch", 16)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("durability w=16: sync %.0f writes/sec (%d fsyncs / %d writes), batch %.0f writes/sec (%d fsyncs / %d writes)",
		sync.perSec, sync.fsyncs, sync.writes, batch.perSec, batch.fsyncs, batch.writes)
	if sync.perSec <= 0 || batch.perSec <= 0 {
		t.Fatalf("degenerate rates: sync=%.0f batch=%.0f", sync.perSec, batch.perSec)
	}
	// Machine-independent absorption check first: group commit must fold many
	// acknowledged writes into each fsync, where sync-every-write cannot fold
	// any (one fsync per write, always).
	if sync.fsyncs != uint64(sync.writes) {
		t.Errorf("sync policy absorbed fsyncs: %d fsyncs for %d writes", sync.fsyncs, sync.writes)
	}
	if batch.fsyncs*3 > uint64(batch.writes) {
		t.Errorf("batch policy barely absorbed: %d fsyncs for %d writes (want <= writes/3)", batch.fsyncs, batch.writes)
	}
	if batch.perSec < 3*sync.perSec {
		t.Errorf("batch throughput %.0f writes/sec < 3x sync %.0f writes/sec", batch.perSec, sync.perSec)
	}
}
