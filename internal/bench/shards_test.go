package bench

import "testing"

// TestShardsQuick exercises the shards figure end to end at CI scale: all
// rows render and every per-group history check passes.
func TestShardsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Shards(Options{Scale: 0.005, Txns: 96, Seed: 7})
	checkTables(t, tables, err)
	if len(tables[0].Rows) != 5 { // 1, 2, 4, 8, 16 groups
		t.Fatalf("shards rows = %d", len(tables[0].Rows))
	}
}

// TestShardsScaling pins the PR's horizontal-scaling claim: at the paper's
// default sim scale, 8 groups must deliver at least 2.5x the aggregate
// commits/sec of 1 group under the same fixed offered load (ISSUE 5
// acceptance; the measured figure runs around 4-6x). It is a performance
// assertion, so it does not run under the race detector: race
// instrumentation makes the sim CPU-bound instead of latency-bound and the
// ratio it would measure is the instrumentation's, not the system's. The
// race job still runs TestShardsQuick (full sweep, per-group
// serializability checks) — correctness stays raced, only the throughput
// ratio is exempt.
func TestShardsScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("throughput ratio is meaningless under the race detector")
	}
	o := Options{Scale: 1.0 / 15, Txns: 480, Seed: 42}
	one, err := shardsRun(o, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := shardsRun(o, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.violations) != 0 || len(eight.violations) != 0 {
		t.Fatalf("serializability violations: g1=%d g8=%d", len(one.violations), len(eight.violations))
	}
	rate := func(r shardsResult) float64 {
		if r.wall <= 0 {
			return 0
		}
		return float64(r.commits) / r.wall.Seconds()
	}
	r1, r8 := rate(one), rate(eight)
	if r1 <= 0 || r8 <= 0 {
		t.Fatalf("degenerate rates: g1=%.0f g8=%.0f", r1, r8)
	}
	ratio := r8 / r1
	const floor = 2.5
	t.Logf("shards scaling: 1 group %.0f commits/sec, 8 groups %.0f commits/sec (%.2fx, floor %.1fx)",
		r1, r8, ratio, floor)
	if ratio < floor {
		t.Errorf("8-group speedup %.2fx below the %.1fx floor", ratio, floor)
	}
}
