package bench

import (
	"context"
	"fmt"
	"time"

	"paxoscp/internal/cluster"
	"paxoscp/internal/core"
	"paxoscp/internal/history"
	"paxoscp/internal/network"
	"paxoscp/internal/stats"
	"paxoscp/internal/wal"
	"paxoscp/internal/ycsb"
)

// Options tunes experiment execution.
type Options struct {
	// Scale multiplies every latency, timeout, and pacing interval
	// (default 1/15). Smaller is faster but noisier.
	Scale float64
	// Txns is the number of transactions per experiment (paper: 500).
	Txns int
	// Threads is the number of concurrent workload threads (paper: 4).
	Threads int
	// Seed makes runs reproducible.
	Seed int64
	// Verbose, when set, receives progress lines.
	Verbose func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0 / 15
	}
	if o.Txns <= 0 {
		o.Txns = 500
	}
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Verbose == nil {
		o.Verbose = func(string, ...any) {}
	}
	return o
}

// paperTimeout is the unscaled message-loss detection timeout (§6).
const paperTimeout = 2 * time.Second

// paperInterval is the unscaled per-thread pacing target ("a target of one
// transaction per second", §6).
const paperInterval = 1 * time.Second

// runSpec describes one experiment run.
type runSpec struct {
	name     string
	topology string // paper notation, e.g. "VVV"
	protocol core.Protocol
	cfgEdit  func(*core.Config) // optional per-client config tweaks

	attributes int
	opsPerTxn  int
	// readFraction overrides the workload's read probability (0 = the
	// paper's 0.5); batchReads issues each transaction's consecutive reads
	// as one Tx.ReadMulti round trip.
	readFraction float64
	batchReads   bool
	// scanFraction makes that fraction of operations ordered range scans of
	// up to maxScanLen rows each (ycsb Workload E); zipfian switches the key
	// distribution to the skewed draw scan workloads pair with. preload seeds
	// that many attribute rows in one transaction before the threads start,
	// so a scan-heavy run pages a populated keyspace from its first scan.
	scanFraction float64
	maxScanLen   int
	zipfian      bool
	preload      int
	interval     time.Duration // unscaled per-thread pacing; 0 = paperInterval
	// submitWindow / submitCombine tune the master submit pipeline
	// (0 = core defaults; only meaningful for core.Master runs).
	submitWindow  int
	submitCombine int
	// threadDCs optionally places each thread at a specific datacenter;
	// default puts every thread at the topology's first datacenter (a
	// single YCSB instance co-located with one node).
	threadDCs []string
}

// runResult is one experiment run's outcome.
type runResult struct {
	spec       runSpec
	summary    stats.Summary
	samples    []stats.Sample
	violations []history.Violation
	msgs       network.CounterSnapshot
	paxosPerTx float64 // Paxos messages per read/write transaction
	wall       time.Duration
}

// run executes one experiment configuration.
func run(o Options, rs runSpec) (runResult, error) {
	o = o.withDefaults()
	topo, err := cluster.PaperTopology(rs.topology)
	if err != nil {
		return runResult{}, err
	}
	timeout := time.Duration(float64(paperTimeout) * o.Scale)
	c := cluster.New(cluster.Config{
		Topology:      topo,
		NetConfig:     network.SimConfig{Seed: o.Seed, Scale: o.Scale, Jitter: 0.1},
		Timeout:       timeout,
		SubmitWindow:  rs.submitWindow,
		SubmitCombine: rs.submitCombine,
	})
	defer c.Close()

	interval := rs.interval
	if interval == 0 {
		interval = paperInterval
	}
	interval = time.Duration(float64(interval) * o.Scale)

	group := "entity-group"
	w := ycsb.Workload{
		Group:        group,
		Attributes:   rs.attributes,
		OpsPerTxn:    rs.opsPerTxn,
		ReadFraction: rs.readFraction,
		ScanFraction: rs.scanFraction,
		MaxScanLen:   rs.maxScanLen,
	}
	if rs.zipfian {
		w.Distribution = ycsb.Zipfian
	}

	rec := &history.Recorder{}
	if rs.preload > 0 {
		cfg := core.Config{
			Protocol: rs.protocol, Timeout: timeout,
			BackoffBase: timeout / 40, Seed: o.Seed + 4242,
		}
		if rs.cfgEdit != nil {
			rs.cfgEdit(&cfg)
		}
		cl := c.NewClient(topo.DCs()[0], cfg)
		// Record the preload commit too, so the serializability battery sees
		// every writer of the logs it checks.
		cl.OnCommit = func(pos int64, txn core.CommittedTxn) {
			rec.Record(history.Commit{
				ID: txn.ID, Group: txn.Group, Origin: txn.Origin,
				ReadPos: txn.ReadPos, Pos: pos,
				Reads: txn.Reads, Writes: txn.Writes,
			})
		}
		tx, err := cl.Begin(context.Background(), group)
		if err != nil {
			return runResult{}, fmt.Errorf("bench: preload begin: %w", err)
		}
		for i := 0; i < rs.preload; i++ {
			tx.Write(ycsb.AttrName(i), fmt.Sprintf("seed-%d", i))
		}
		if cres, err := tx.Commit(context.Background()); err != nil || cres.Status != stats.Committed {
			return runResult{}, fmt.Errorf("bench: preload commit: status %v err %v", cres.Status, err)
		}
	}

	perThread := o.Txns / o.Threads
	extra := o.Txns % o.Threads
	var threads []ycsb.Thread
	for i := 0; i < o.Threads; i++ {
		dc := topo.DCs()[0]
		if len(rs.threadDCs) > 0 {
			dc = rs.threadDCs[i%len(rs.threadDCs)]
		}
		cfg := core.Config{
			Protocol:    rs.protocol,
			Timeout:     timeout,
			BackoffBase: timeout / 40,
			Seed:        o.Seed + int64(i) + 1,
		}
		if rs.cfgEdit != nil {
			rs.cfgEdit(&cfg)
		}
		count := perThread
		if i < extra {
			count++
		}
		threads = append(threads, ycsb.Thread{
			Client:     c.NewClient(dc, cfg),
			Gen:        ycsb.NewGenerator(w, o.Seed+int64(i)*1000+7),
			Count:      count,
			Interval:   interval,
			StartDelay: time.Duration(i) * interval / time.Duration(o.Threads),
			BatchReads: rs.batchReads,
		})
	}

	c.Sim().ResetCounters()
	start := time.Now()
	runner := &ycsb.Runner{Threads: threads, Recorder: rec}
	samples := runner.Run(context.Background())
	wall := time.Since(start)

	// Quiesce every datacenter and run the serializability battery.
	ctx := context.Background()
	for _, dc := range c.DCs() {
		if err := c.Service(dc).Recover(ctx, group); err != nil {
			return runResult{}, fmt.Errorf("recover %s: %w", dc, err)
		}
	}
	logs := map[string]map[int64]wal.Entry{}
	for _, dc := range c.DCs() {
		logs[dc] = c.Service(dc).LogSnapshot(group)
	}
	violations := history.Check(logs, rec.Commits())

	sum := stats.Summarize(samples)
	msgs := c.Sim().Counters()
	res := runResult{
		spec:       rs,
		summary:    sum,
		samples:    samples,
		violations: violations,
		msgs:       msgs,
		wall:       wall,
	}
	if sum.Total > 0 {
		res.paxosPerTx = float64(msgs.PaxosSent()) / float64(sum.Total)
	}
	o.Verbose("  %-28s %s (%.1fs wall, %.1f paxos msgs/txn, %d violations)",
		rs.name, sum.String(), wall.Seconds(), res.paxosPerTx, len(violations))
	return res, nil
}

// unscale converts a scaled duration back to paper-equivalent milliseconds.
func unscale(d time.Duration, scale float64) float64 {
	return float64(d) / float64(time.Millisecond) / scale
}

// fmtMS renders a scaled duration as unscaled milliseconds.
func fmtMS(d time.Duration, scale float64) string {
	return fmt.Sprintf("%.0f", unscale(d, scale))
}

// roundCommits renders per-round commit counts as "r0:280 r1:95 ...".
func roundCommits(sum stats.Summary) string {
	if len(sum.ByRound) == 0 {
		return "-"
	}
	out := ""
	for r, rs := range sum.ByRound {
		if r > 0 {
			out += " "
		}
		out += fmt.Sprintf("r%d:%d", r, rs.Commits)
	}
	return out
}

// violationsCell renders the checker outcome.
func violationsCell(vs []history.Violation) string {
	if len(vs) == 0 {
		return "1SR-ok"
	}
	return fmt.Sprintf("VIOLATIONS:%d", len(vs))
}
