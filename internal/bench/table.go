package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the rows/series a paper figure
// plots, printed as text.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table in aligned plain text.
func (t Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "  (%s)\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		return "  " + strings.Join(parts, "  ")
	}
	fmt.Fprintln(w, line(t.Columns))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, line(sep))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
}

// String renders the table to a string.
func (t Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
