package bench

import (
	"context"
	"fmt"
	"time"

	"paxoscp/internal/cluster"
	"paxoscp/internal/core"
	"paxoscp/internal/history"
	"paxoscp/internal/network"
	"paxoscp/internal/stats"
	"paxoscp/internal/wal"
	"paxoscp/internal/ycsb"
)

// Saturation measures overload behavior under admission control (DESIGN.md
// §13): one transaction group whose master pipeline is tightly bounded
// (window 2x2, as in the shards figure) and whose submit queue admits at
// most saturationQueue waiters, driven by an increasing number of unpaced
// threads — from near capacity to several times over it.
//
// The figure's claim: beyond saturation, committed throughput plateaus at
// the pipeline's capacity instead of collapsing, and commit latency (p99)
// stays bounded instead of growing with the offered load, because the excess
// is refused fast — the retryable core.ErrOverloaded verdict costs one round
// trip and no pipeline state — rather than queueing without bound behind the
// replication window. Rejected transactions retry with backoff (the
// well-behaved client response), so the run still measures time-to-commit.
// Every run ends with the quiesce-aware serializability check
// (history.CheckQuiesced at the maximum applied watermark).
func Saturation(o Options) ([]Table, error) {
	o = o.withDefaults()
	t := Table{
		Title: "Saturation: offered load vs committed throughput under admission control (VVV, one group, window 2x2, queue " + fmt.Sprint(saturationQueue) + ")",
		Note:  "unpaced threads oversubscribe one bounded master pipeline; rejects are fast-failed retryable refusals (core.ErrOverloaded), retried with backoff; p99 over committed transactions",
		Columns: []string{"threads", "commits", "rejects", "aborts+fail", "commits/sec",
			"p99-ms", "check"},
	}
	for _, threads := range []int{4, 8, 16, 32} {
		res, err := saturationRun(o, threads)
		if err != nil {
			return nil, err
		}
		perSec := 0.0
		if res.wall > 0 {
			perSec = float64(res.commits) / res.wall.Seconds()
		}
		t.AddRow(fmt.Sprint(threads), fmt.Sprint(res.commits), fmt.Sprint(res.rejects),
			fmt.Sprint(res.aborts), fmt.Sprintf("%.0f", perSec),
			fmtMS(res.p99, o.Scale), violationsCell(res.violations))
	}
	return []Table{t}, nil
}

// saturationQueue is the figure's submit admission cap: small enough that
// the largest thread count drives the queue to refusal many times per
// second, large enough to keep the bounded pipeline busy through verdict
// gaps.
const saturationQueue = 8

// saturationResult is one offered-load configuration's outcome.
type saturationResult struct {
	commits    int
	rejects    int
	aborts     int
	wall       time.Duration
	p99        time.Duration
	violations []history.Violation
}

// saturationRun executes the workload at one thread count. Exposed to the
// test suite so the plateau assertion and the rendered figure run the same
// experiment.
func saturationRun(o Options, threads int) (saturationResult, error) {
	o = o.withDefaults()
	timeout := time.Duration(float64(paperTimeout) * o.Scale)
	c := cluster.New(cluster.Config{
		Topology:      cluster.MustPaperTopology("VVV"),
		NetConfig:     network.SimConfig{Seed: o.Seed, Scale: o.Scale, Jitter: 0.1},
		Timeout:       timeout,
		SubmitWindow:  shardsWindow,
		SubmitCombine: shardsCombine,
		SubmitQueue:   saturationQueue,
	})
	defer c.Close()
	group := c.Groups()[0]

	w := ycsb.Workload{
		Groups:     c.Groups(),
		Attributes: 256, // wide enough that overload, not data contention, dominates
		OpsPerTxn:  4,
	}
	rec := &history.Recorder{}
	perThread := o.Txns / threads
	if perThread < 1 {
		perThread = 1
	}
	var list []ycsb.Thread
	for i := 0; i < threads; i++ {
		dc := c.DCs()[i%len(c.DCs())]
		cl := c.NewClient(dc, core.Config{
			Protocol:  core.Master,
			MasterFor: c.MasterOf,
			Timeout:   timeout,
			Seed:      o.Seed + int64(i) + 1,
		})
		list = append(list, ycsb.Thread{
			Client:        cl,
			Gen:           ycsb.NewGenerator(w, o.Seed+int64(i)*1000+7),
			Count:         perThread,
			Interval:      time.Nanosecond, // unpaced: offered load = thread count
			RetryAborts:   24,
			RetryRejects:  200,
			RejectBackoff: timeout / 50,
		})
	}

	start := time.Now()
	runner := &ycsb.Runner{Threads: list, Recorder: rec}
	samples := runner.Run(context.Background())
	wall := time.Since(start)

	// Converge the replicas, then check the single group's history with the
	// quiesce-aware checker: trailing decided-but-unlearned positions above
	// every applied watermark are in-flight debt, not violations.
	ctx := context.Background()
	horizon := int64(0)
	logs := map[string]map[int64]wal.Entry{}
	for _, dc := range c.DCs() {
		if err := c.Service(dc).Recover(ctx, group); err != nil {
			return saturationResult{}, fmt.Errorf("bench: saturation recover %s: %w", dc, err)
		}
		if a := c.Service(dc).LastApplied(group); a > horizon {
			horizon = a
		}
		logs[dc] = c.Service(dc).LogSnapshot(group)
	}
	violations := history.CheckQuiesced(logs, horizon, rec.Commits())

	sum := stats.Summarize(samples)
	res := saturationResult{
		commits:    sum.Commits,
		rejects:    sum.Rejects,
		aborts:     sum.Aborts + sum.Failures,
		wall:       wall,
		p99:        sum.AllCommit.P99,
		violations: violations,
	}
	perSec := 0.0
	if wall > 0 {
		perSec = float64(res.commits) / wall.Seconds()
	}
	o.Verbose("  saturation t=%-2d %s (%.2fs wall, %.0f commits/sec, p99 %v, %d violations)",
		threads, sum.String(), wall.Seconds(), perSec, res.p99, len(res.violations))
	return res, nil
}
