package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"paxoscp/internal/cluster"
	"paxoscp/internal/core"
	"paxoscp/internal/history"
	"paxoscp/internal/network"
	"paxoscp/internal/stats"
	"paxoscp/internal/wal"
)

// Migration measures the cost of online rescaling (DESIGN.md §15): a routed
// workload runs continuously while the cluster grows 8→12 transaction groups
// through the live-migration protocol — per step, snapshot backfill plus
// delta rounds into the new group, then the epoch-fenced four-phase cutover.
// The figure reports aggregate commits/sec before, during, and after the
// grow, and the per-range cutover pause: the HandoffOut→HandoffIn window in
// which a moving range accepts no ordinary writes anywhere (writers stall on
// "moved"/"migrating" verdicts and resume at the destination). Availability
// is the claim: throughput dips during the grow instead of stopping, and the
// pause stays bounded by a fixed small multiple of the message timeout.
func Migration(o Options) ([]Table, error) {
	o = o.withDefaults()
	res, err := migrationRun(o)
	if err != nil {
		return nil, err
	}
	return migrationTables(o, res), nil
}

// migrationTables renders one run's outcome as the figure's two tables.
func migrationTables(o Options, res migrationResult) []Table {
	t := Table{
		Title: fmt.Sprintf("Migration: commit throughput through an online %d->%d grow (VVV, routed clients, per-group masters)",
			migStartGroups, migEndGroups),
		Note:    "phases bracket Cluster.Grow; the workload never stops — redirected writers follow \"moved\" verdicts and wait out \"migrating\" windows",
		Columns: []string{"phase", "wall-s", "commits", "commits/sec", "vs-before"},
	}
	base := res.phases[0].rate()
	for _, p := range res.phases {
		rel := "-"
		if base > 0 {
			rel = fmt.Sprintf("%.2fx", p.rate()/base)
		}
		t.AddRow(p.name, fmt.Sprintf("%.2f", p.wall.Seconds()),
			fmt.Sprint(p.commits), fmt.Sprintf("%.0f", p.rate()), rel)
	}

	p := Table{
		Title: "Migration: per-range cutover pause (HandoffOut -> HandoffIn, the window a moving range accepts no ordinary writes)",
		Note: fmt.Sprintf("%d ranges migrated across %d growth steps; bound is %d x the message timeout; check is the epoch- and migration-aware per-group history battery over all %d groups",
			len(res.pauses), migEndGroups-migStartGroups, migPauseBoundTimeouts, migEndGroups),
		Columns: []string{"ranges", "grow-s", "mean-pause-ms", "max-pause-ms", "bound-ms", "check"},
	}
	bounded := violationsCell(res.violations)
	if res.maxPause > res.pauseBound {
		bounded = fmt.Sprintf("PAUSE-UNBOUNDED:%s", fmtMS(res.maxPause, o.Scale))
	}
	p.AddRow(fmt.Sprint(len(res.pauses)), fmt.Sprintf("%.2f", res.growWall.Seconds()),
		fmtMS(res.meanPause, o.Scale), fmtMS(res.maxPause, o.Scale),
		fmtMS(res.pauseBound, o.Scale), bounded)

	return []Table{t, p}
}

const (
	// migStartGroups / migEndGroups frame the rescale the figure measures —
	// the same 8→12 grow the rescale nemesis proves correct under faults.
	migStartGroups = 8
	migEndGroups   = 12
	// migKeys sizes the fixed key set the workload mixes over; every key is
	// seeded pre-grow so migrated ranges carry real rows.
	migKeys = 64
	// migPauseBoundTimeouts bounds the per-range cutover pause as a multiple
	// of the message timeout. The window covers the final pinned delta round
	// (at most LagBound rows) plus two handoff commits, each a master round
	// trip — a fixed number of rounds, hence a fixed multiple of the
	// timeout, independent of range size.
	migPauseBoundTimeouts = 25
)

// migPhase is one measurement window's outcome.
type migPhase struct {
	name    string
	wall    time.Duration
	commits int
}

func (p migPhase) rate() float64 {
	if p.wall <= 0 {
		return 0
	}
	return float64(p.commits) / p.wall.Seconds()
}

// migrationResult is the migration figure's raw outcome, exposed to the test
// suite so the smoke assertions and the rendered figure run one experiment.
type migrationResult struct {
	phases     [3]migPhase // before, during (the grow), after
	growWall   time.Duration
	pauses     []time.Duration
	meanPause  time.Duration
	maxPause   time.Duration
	pauseBound time.Duration
	violations []history.Violation // G1 timeline leaks + per-group checks
}

// migrationRun drives the workload through the grow and checks every group's
// history against the group-set timeline.
func migrationRun(o Options) (migrationResult, error) {
	o = o.withDefaults()
	timeout := time.Duration(float64(paperTimeout) * o.Scale)
	// Steady-state measurement windows on either side of the grow.
	window := time.Duration(float64(12*time.Second) * o.Scale)

	// Timestamp every committed handoff; a range's cutover pause is the wall
	// time between its HandoffOut (source frozen) and HandoffIn (destination
	// open) entries committing.
	var pauseMu sync.Mutex
	outAt := map[string]time.Time{}
	var pauses []time.Duration
	c := cluster.New(cluster.Config{
		Topology:  cluster.MustPaperTopology("VVV"),
		NetConfig: network.SimConfig{Seed: o.Seed, Scale: o.Scale, Jitter: 0.1},
		Timeout:   timeout,
		Groups:    migStartGroups,
		OnMigrationPhase: func(h wal.Handoff, pos int64) {
			pauseMu.Lock()
			defer pauseMu.Unlock()
			pair := h.From + "->" + h.To
			switch h.Phase {
			case wal.HandoffOut:
				outAt[pair] = time.Now()
			case wal.HandoffIn:
				if t0, ok := outAt[pair]; ok {
					pauses = append(pauses, time.Since(t0))
					delete(outAt, pair)
				}
			}
		},
	})
	defer c.Close()
	ctx := context.Background()
	dcs := c.DCs()

	rec := &history.Recorder{}
	timeline := history.NewGroupTimeline(c.Groups()...)

	// Commit instants, bucketed into phases after the run: the grow's start
	// and end timestamps split them into before/during/after.
	var commitMu sync.Mutex
	var commitTimes []time.Time

	newKV := func(i int) *core.KV {
		kv := c.NewKV(dcs[i%len(dcs)], core.Config{
			Protocol:  core.Master,
			MasterFor: c.MasterOf,
			Timeout:   timeout,
			Seed:      o.Seed + int64(i) + 1,
		})
		kv.Client().OnCommit = func(pos int64, txn core.CommittedTxn) {
			rec.Record(history.Commit{
				ID: txn.ID, Group: txn.Group, Origin: txn.Origin,
				ReadPos: txn.ReadPos, Pos: pos,
				Reads: txn.Reads, Writes: txn.Writes,
			})
			commitMu.Lock()
			commitTimes = append(commitTimes, time.Now())
			commitMu.Unlock()
		}
		return kv
	}

	keys := make([]string, migKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("mig-k%02d", i)
	}
	seedKV := newKV(0)
	for i, key := range keys {
		res, err := seedKV.Put(ctx, key, fmt.Sprintf("seed-%d", i))
		if err != nil || res.Status != stats.Committed {
			return migrationResult{}, fmt.Errorf("bench: migration seed %s: status %v err %v", key, res.Status, err)
		}
	}
	seeded := time.Now() // seeding commits land before this; buckets start here

	// Era watcher: mirror each growth step's placement swap into the
	// timeline, so the leak scan knows when each group became legitimate.
	stop := make(chan struct{})
	var eraWG sync.WaitGroup
	eraWG.Add(1)
	go func() {
		defer eraWG.Done()
		seen := migStartGroups
		for {
			select {
			case <-stop:
				return
			case <-time.After(window / 100):
			}
			if gs := c.Groups(); len(gs) > seen {
				seen = len(gs)
				timeline.Grow(gs...)
			}
		}
	}()

	// The workload: routed clients mixing writes and reads over the fixed
	// key set, paced well below saturation so the figure isolates the
	// migration's cost rather than the pipeline's capacity.
	pace := timeout / 4
	if pace < time.Millisecond {
		pace = time.Millisecond
	}
	var wg sync.WaitGroup
	for i := 0; i < o.Threads; i++ {
		kv := newKV(i + 1)
		wg.Add(1)
		go func(i int, kv *core.KV) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(1000+i)))
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(pace)
				key := keys[rng.Intn(migKeys)]
				octx, cancel := context.WithTimeout(ctx, 20*timeout+time.Second)
				if rng.Intn(10) < 7 {
					kv.Put(octx, key, fmt.Sprintf("w%d-%d", i, n))
				} else {
					kv.Get(octx, key)
				}
				cancel()
			}
		}(i, kv)
	}

	time.Sleep(window)
	growStart := time.Now()
	growCtx, growCancel := context.WithTimeout(ctx, 10*time.Minute)
	growErr := c.Grow(growCtx, migEndGroups)
	growCancel()
	growEnd := time.Now()
	if growErr == nil {
		time.Sleep(window)
	}
	close(stop)
	wg.Wait()
	eraWG.Wait()
	end := time.Now()
	if growErr != nil {
		return migrationResult{}, fmt.Errorf("bench: migration grow: %w", growErr)
	}

	// Quiesce every (datacenter, group) pair, then run the migration-aware
	// battery: timeline leak scan plus each group's epoch-aware history
	// check over that group's merged logs.
	groups := c.Groups()
	for _, dc := range dcs {
		for _, g := range groups {
			if err := c.Service(dc).Recover(ctx, g); err != nil {
				return migrationResult{}, fmt.Errorf("bench: migration recover %s/%s: %w", dc, g, err)
			}
		}
	}
	byGroup, violations := history.ByGroupTimeline(rec.Commits(), timeline)
	for _, g := range groups {
		logs := map[string]map[int64]wal.Entry{}
		for _, dc := range dcs {
			logs[dc] = c.Service(dc).LogSnapshot(g)
		}
		violations = append(violations, history.Check(logs, byGroup[g])...)
	}

	res := migrationResult{
		growWall:   growEnd.Sub(growStart),
		pauseBound: migPauseBoundTimeouts * timeout,
	}
	res.phases[0] = migPhase{name: "before", wall: growStart.Sub(seeded)}
	res.phases[1] = migPhase{name: fmt.Sprintf("during (grow %d->%d)", migStartGroups, migEndGroups), wall: res.growWall}
	res.phases[2] = migPhase{name: "after", wall: end.Sub(growEnd)}
	commitMu.Lock()
	for _, at := range commitTimes {
		switch {
		case at.Before(seeded):
		case at.Before(growStart):
			res.phases[0].commits++
		case at.Before(growEnd):
			res.phases[1].commits++
		default:
			res.phases[2].commits++
		}
	}
	commitMu.Unlock()
	pauseMu.Lock()
	res.pauses = pauses
	pauseMu.Unlock()
	var total time.Duration
	for _, p := range res.pauses {
		total += p
		if p > res.maxPause {
			res.maxPause = p
		}
	}
	if len(res.pauses) > 0 {
		res.meanPause = total / time.Duration(len(res.pauses))
	}
	res.violations = violations
	o.Verbose("  migration %d->%d: before %.0f/s, during %.0f/s, after %.0f/s (grow %.2fs, %d ranges, max pause %sms, %d violations)",
		migStartGroups, migEndGroups, res.phases[0].rate(), res.phases[1].rate(), res.phases[2].rate(),
		res.growWall.Seconds(), len(res.pauses), fmtMS(res.maxPause, o.Scale), len(violations))
	return res, nil
}
