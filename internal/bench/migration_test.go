package bench

import "testing"

// migRanges is the number of ranges an 8→12 grow migrates: each growth step
// moves one range from every pre-existing group into the added one.
const migRanges = 8 + 9 + 10 + 11

// TestMigrationQuick exercises the migration figure end to end at CI scale:
// both tables render, every phase carries commits (the workload never
// stalls), every range's cutover pause is observed and bounded, and the
// migration-aware per-group history battery passes.
func TestMigrationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Scale: 0.005, Threads: 4, Seed: 7}
	res, err := migrationRun(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.violations {
		t.Errorf("history violation: %s", v)
	}
	for _, p := range res.phases {
		if p.commits == 0 {
			t.Errorf("phase %q carried no commits: the workload stalled through the grow", p.name)
		}
	}
	if len(res.pauses) != migRanges {
		t.Errorf("observed %d cutover pauses, want %d (one per migrated range)", len(res.pauses), migRanges)
	}
	if res.maxPause > res.pauseBound {
		t.Errorf("max cutover pause %v exceeds the bound %v", res.maxPause, res.pauseBound)
	}
	t.Logf("migration: before %.0f/s during %.0f/s after %.0f/s, grow %.2fs, max pause %v (bound %v)",
		res.phases[0].rate(), res.phases[1].rate(), res.phases[2].rate(),
		res.growWall.Seconds(), res.maxPause, res.pauseBound)

	tables := migrationTables(o.withDefaults(), res)
	checkTables(t, tables, nil)
	if len(tables) != 2 || len(tables[0].Rows) != 3 {
		t.Fatalf("migration tables = %d (rows %d), want 2 tables with 3 phase rows", len(tables), len(tables[0].Rows))
	}
}
