package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"paxoscp/internal/core"
	"paxoscp/internal/stats"
)

// Experiment is one workload configuration, exported for the module-root
// testing.B benchmarks (bench_test.go) and for programmatic use.
type Experiment struct {
	// Topology in paper notation ("VV", "VVV", "VOC", ...).
	Topology string
	// Protocol selects basic Paxos or Paxos-CP.
	Protocol core.Protocol
	// Attributes in the entity group (default 100).
	Attributes int
	// OpsPerTxn per transaction (default 10).
	OpsPerTxn int
	// LoadFactor divides the paper's 1 s pacing interval (1 = paper rate,
	// 4 = 4x the offered load). 0 means 1.
	LoadFactor int
	// Unpaced issues transactions back to back with no pacing (for
	// throughput-style microbenchmarks).
	Unpaced bool
}

// RunExperiment executes one experiment and returns its summary. It fails
// if the execution violates one-copy serializability.
func RunExperiment(o Options, e Experiment) (stats.Summary, error) {
	if e.Attributes == 0 {
		e.Attributes = 100
	}
	if e.OpsPerTxn == 0 {
		e.OpsPerTxn = 10
	}
	interval := paperInterval
	if e.LoadFactor > 1 {
		interval = paperInterval / time.Duration(e.LoadFactor)
	}
	if e.Unpaced {
		interval = time.Nanosecond // effectively unpaced
	}
	res, err := run(o, runSpec{
		name:       fmt.Sprintf("experiment %s %s", e.Topology, e.Protocol),
		topology:   e.Topology,
		protocol:   e.Protocol,
		attributes: e.Attributes,
		opsPerTxn:  e.OpsPerTxn,
		interval:   interval,
	})
	if err != nil {
		return stats.Summary{}, err
	}
	if len(res.violations) > 0 {
		return res.summary, fmt.Errorf("bench: %d serializability violations, first: %s",
			len(res.violations), res.violations[0])
	}
	return res.summary, nil
}

// BenchResult is one parsed `go test -bench` result line: the benchmark
// name, its iteration count, and every reported metric keyed by unit
// (ns/op, B/op, allocs/op, plus custom metrics like commits/sec).
type BenchResult struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// BenchReport is the machine-readable benchmark summary CI uploads as a
// workflow artifact (BENCH_ci.json) so the performance trajectory is
// tracked per PR.
type BenchReport struct {
	// Context labels the run (e.g. "ci", a commit SHA, a machine name).
	Context string        `json:"context,omitempty"`
	Results []BenchResult `json:"results"`
}

// ParseGoBench reads standard `go test -bench` output and returns one
// BenchResult per benchmark line. Non-benchmark lines (goos/pkg headers,
// PASS/ok trailers, test logs) are ignored; malformed metric pairs are
// skipped rather than failing the parse.
func ParseGoBench(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := BenchResult{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
		// The remainder is value/unit pairs: "1205174 ns/op 829.8 commits/sec".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res.Metrics[fields[i+1]] = v
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: parse go-bench output: %w", err)
	}
	return out, nil
}

// lowerIsBetter reports whether a metric improves by decreasing. Go's
// standard per-op metrics shrink as code gets faster; custom throughput
// metrics (commits/sec, reads/sec, ...) grow.
func lowerIsBetter(unit string) bool {
	switch unit {
	case "ns/op", "B/op", "allocs/op", "ns/read", "binary-bytes", "json-bytes":
		return true
	}
	return strings.HasSuffix(unit, "/op")
}

// Delta is one metric's change between a baseline and a fresh benchmark run.
type Delta struct {
	Name string  `json:"name"`
	Unit string  `json:"unit"`
	Base float64 `json:"base"`
	New  float64 `json:"new"`
	// Ratio is New/Base. Regression reports whether the change exceeds the
	// comparison threshold in the unit's worse direction.
	Ratio      float64 `json:"ratio"`
	Regression bool    `json:"regression"`
}

// CompareReports diffs a fresh report against a baseline: every
// (benchmark, metric) pair present in both is compared, and a change worse
// than threshold (e.g. 0.2 = 20%) in the metric's bad direction is flagged
// as a regression. Benchmarks present on only one side are skipped —
// comparisons survive benchmark additions and removals. Iteration counts
// are ignored (CI smoke runs use -benchtime 1x).
func CompareReports(base, fresh BenchReport, threshold float64) []Delta {
	baseline := make(map[string]BenchResult, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	var out []Delta
	for _, r := range fresh.Results {
		b, ok := baseline[r.Name]
		if !ok {
			continue
		}
		units := make([]string, 0, len(r.Metrics))
		for unit := range r.Metrics {
			if _, ok := b.Metrics[unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			d := Delta{Name: r.Name, Unit: unit, Base: b.Metrics[unit], New: r.Metrics[unit]}
			if d.Base != 0 {
				d.Ratio = d.New / d.Base
				if lowerIsBetter(unit) {
					d.Regression = d.Ratio > 1+threshold
				} else {
					d.Regression = d.Ratio < 1-threshold
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// WriteCompareReport renders a CompareReports diff as a text table on w and
// returns the number of flagged regressions.
func WriteCompareReport(w io.Writer, deltas []Delta) int {
	regressions := 0
	fmt.Fprintf(w, "%-60s %-12s %14s %14s %8s\n", "benchmark", "metric", "baseline", "current", "ratio")
	for _, d := range deltas {
		mark := ""
		if d.Regression {
			mark = "  << REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-60s %-12s %14.2f %14.2f %7.2fx%s\n", d.Name, d.Unit, d.Base, d.New, d.Ratio, mark)
	}
	return regressions
}

// WriteBenchJSON converts `go test -bench` output read from r into the
// BENCH_ci.json report on w.
func WriteBenchJSON(w io.Writer, r io.Reader, context string) error {
	results, err := ParseGoBench(r)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BenchReport{Context: context, Results: results})
}
