package bench

import (
	"fmt"
	"time"

	"paxoscp/internal/core"
	"paxoscp/internal/stats"
)

// Experiment is one workload configuration, exported for the module-root
// testing.B benchmarks (bench_test.go) and for programmatic use.
type Experiment struct {
	// Topology in paper notation ("VV", "VVV", "VOC", ...).
	Topology string
	// Protocol selects basic Paxos or Paxos-CP.
	Protocol core.Protocol
	// Attributes in the entity group (default 100).
	Attributes int
	// OpsPerTxn per transaction (default 10).
	OpsPerTxn int
	// LoadFactor divides the paper's 1 s pacing interval (1 = paper rate,
	// 4 = 4x the offered load). 0 means 1.
	LoadFactor int
	// Unpaced issues transactions back to back with no pacing (for
	// throughput-style microbenchmarks).
	Unpaced bool
}

// RunExperiment executes one experiment and returns its summary. It fails
// if the execution violates one-copy serializability.
func RunExperiment(o Options, e Experiment) (stats.Summary, error) {
	if e.Attributes == 0 {
		e.Attributes = 100
	}
	if e.OpsPerTxn == 0 {
		e.OpsPerTxn = 10
	}
	interval := paperInterval
	if e.LoadFactor > 1 {
		interval = paperInterval / time.Duration(e.LoadFactor)
	}
	if e.Unpaced {
		interval = time.Nanosecond // effectively unpaced
	}
	res, err := run(o, runSpec{
		name:       fmt.Sprintf("experiment %s %s", e.Topology, e.Protocol),
		topology:   e.Topology,
		protocol:   e.Protocol,
		attributes: e.Attributes,
		opsPerTxn:  e.OpsPerTxn,
		interval:   interval,
	})
	if err != nil {
		return stats.Summary{}, err
	}
	if len(res.violations) > 0 {
		return res.summary, fmt.Errorf("bench: %d serializability violations, first: %s",
			len(res.violations), res.violations[0])
	}
	return res.summary, nil
}
