package bench

import (
	"context"
	"fmt"
	"time"

	"paxoscp/internal/cluster"
	"paxoscp/internal/core"
	"paxoscp/internal/history"
	"paxoscp/internal/network"
	"paxoscp/internal/stats"
	"paxoscp/internal/wal"
	"paxoscp/internal/ycsb"
)

// Availability extends the paper's §1 motivation into a measured
// experiment: commit rates under increasing message loss, and under a
// mid-run datacenter outage with recovery. Serializability is checked in
// every configuration — faults may cost commits, never correctness.
func Availability(o Options) ([]Table, error) {
	o = o.withDefaults()
	lossTable := Table{
		Title:   "Availability A: commits under message loss (VVV, 100 attributes)",
		Note:    "loss applies to every message independently, both directions",
		Columns: []string{"loss", "protocol", "commits", "failed", "check"},
	}
	for _, loss := range []float64{0, 0.01, 0.05, 0.10} {
		for _, proto := range protocols {
			res, err := runWithFaults(o, proto, loss, false)
			if err != nil {
				return nil, err
			}
			lossTable.AddRow(fmt.Sprintf("%.0f%%", loss*100), proto.String(),
				fmt.Sprint(res.summary.Commits), fmt.Sprint(res.summary.Failures),
				violationsCell(res.violations))
		}
	}

	outageTable := Table{
		Title:   "Availability B: mid-run datacenter outage and recovery (VVV)",
		Note:    "one replica down for the middle third of the run, then recovered",
		Columns: []string{"protocol", "commits", "failed", "recovered-horizon-match", "check"},
	}
	for _, proto := range protocols {
		res, err := runWithFaults(o, proto, 0, true)
		if err != nil {
			return nil, err
		}
		outageTable.AddRow(proto.String(), fmt.Sprint(res.summary.Commits),
			fmt.Sprint(res.summary.Failures),
			fmt.Sprint(res.horizonsAgree), violationsCell(res.violations))
	}
	return []Table{lossTable, outageTable}, nil
}

type faultResult struct {
	summary       stats.Summary
	violations    []history.Violation
	horizonsAgree bool
}

// runWithFaults executes the Figure 6 midpoint workload with loss injection
// or a mid-run outage of one datacenter.
func runWithFaults(o Options, proto core.Protocol, loss float64, outage bool) (faultResult, error) {
	o = o.withDefaults()
	timeout := time.Duration(float64(paperTimeout) * o.Scale)
	c := cluster.New(cluster.Config{
		Topology:  cluster.MustPaperTopology("VVV"),
		NetConfig: network.SimConfig{Seed: o.Seed, Scale: o.Scale, Jitter: 0.1, LossRate: loss},
		Timeout:   timeout,
	})
	defer c.Close()

	const group = "entity-group"
	interval := time.Duration(float64(paperInterval) * o.Scale)
	rec := &history.Recorder{}
	var threads []ycsb.Thread
	perThread := o.Txns / o.Threads
	for i := 0; i < o.Threads; i++ {
		// Keep clients off the victim datacenter so the outage tests the
		// replication path, not client homing.
		dc := c.DCs()[i%2]
		threads = append(threads, ycsb.Thread{
			Client: c.NewClient(dc, core.Config{
				Protocol: proto, Timeout: timeout, BackoffBase: timeout / 40,
				Seed: o.Seed + int64(i) + 1,
			}),
			Gen:        ycsb.NewGenerator(ycsb.Workload{Group: group, Attributes: 100, OpsPerTxn: 10}, o.Seed+int64(i)*131),
			Count:      perThread,
			Interval:   interval,
			StartDelay: time.Duration(i) * interval / time.Duration(o.Threads),
		})
	}

	ctx := context.Background()
	victim := c.DCs()[2]
	if outage {
		runLen := time.Duration(perThread) * interval
		go func() {
			time.Sleep(runLen / 3)
			c.SetDown(victim, true)
			time.Sleep(runLen / 3)
			c.SetDown(victim, false)
		}()
	}
	samples := (&ycsb.Runner{Threads: threads, Recorder: rec}).Run(ctx)

	// The storm ends before verification: quiescing under continued loss
	// only makes the check flaky, it does not test anything additional.
	c.Sim().SetLossRate(0)

	horizonsAgree := true
	for _, dc := range c.DCs() {
		if err := c.Service(dc).Recover(ctx, group); err != nil {
			return faultResult{}, fmt.Errorf("recover %s: %w", dc, err)
		}
	}
	ref := c.Service(c.DCs()[0]).LastApplied(group)
	for _, dc := range c.DCs() {
		if c.Service(dc).LastApplied(group) != ref {
			horizonsAgree = false
		}
	}
	logs := map[string]map[int64]wal.Entry{}
	for _, dc := range c.DCs() {
		logs[dc] = c.Service(dc).LogSnapshot(group)
	}
	sum := stats.Summarize(samples)
	res := faultResult{
		summary:       sum,
		violations:    history.Check(logs, rec.Commits()),
		horizonsAgree: horizonsAgree,
	}
	o.Verbose("  avail %-10s loss=%.2f outage=%v %s", proto, loss, outage, sum.String())
	return res, nil
}
