package bench

import (
	"fmt"
	"time"

	"paxoscp/internal/core"
)

// Scans measures the ordered-scan read path (DESIGN.md §16): YCSB Workload E
// — scan-heavy (95% scans), zipfian start keys, uniform scan lengths — over
// Tx.Scan on VVV under Paxos-CP, sweeping the maximum scan length. Each scan
// pages through the attribute keyspace in key order at its transaction's
// pinned read position, so longer sweeps stress paging and the read pin while
// the workload's writes keep the range churning underneath. The preloaded
// keyspace guarantees every scan has rows to serve from its first page.
func Scans(o Options) ([]Table, error) {
	o = o.withDefaults()
	t := Table{
		Title: "Scans: YCSB workload E over Tx.Scan (VVV, paxos-cp, 95% scans, zipfian starts, uniform lengths, unpaced)",
		Note:  "scan lengths are drawn uniform 1..max-scan-len; scans/sec counts scan operations served (commit + OCC-abort attempts ran their full op list)",
		Columns: []string{"max-scan-len", "commits", "scans/sec", "txn/sec",
			"mean-latency-ms", "check"},
	}
	const opsPerTxn = 6
	const scanFraction = 0.95
	for _, maxLen := range []int{10, 50, 100} {
		res, err := run(o, runSpec{
			name:         fmt.Sprintf("scans maxlen=%d", maxLen),
			topology:     "VVV",
			protocol:     core.CP,
			attributes:   200,
			opsPerTxn:    opsPerTxn,
			readFraction: 0.05,
			scanFraction: scanFraction,
			maxScanLen:   maxLen,
			zipfian:      true,
			preload:      200,
			interval:     time.Nanosecond, // unpaced
			threadDCs:    []string{"V1", "V2", "V3"},
		})
		if err != nil {
			return nil, err
		}
		sum := res.summary
		scansPerSec, txnPerSec := "-", "-"
		if res.wall > 0 {
			scans := float64(sum.Commits+sum.Aborts) * opsPerTxn * scanFraction
			scansPerSec = fmt.Sprintf("%.0f", scans/res.wall.Seconds())
			txnPerSec = fmt.Sprintf("%.0f", float64(sum.Total)/res.wall.Seconds())
		}
		t.AddRow(fmt.Sprint(maxLen), fmt.Sprint(sum.Commits),
			scansPerSec, txnPerSec,
			fmtMS(sum.AllCommit.Mean, o.Scale), violationsCell(res.violations))
	}
	return []Table{t}, nil
}
