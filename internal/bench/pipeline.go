package bench

import (
	"fmt"
	"time"

	"paxoscp/internal/core"
)

// SubmitPipeline measures the master's pipelined submit path (DESIGN.md §8):
// a window sweep on one group under an unpaced 8-thread workload, all
// clients submitting to the same long-term master. Window 1 is the serial
// pre-pipeline baseline (one Paxos position in flight per group); larger
// windows overlap replication round trips and combine queued transactions
// into multi-transaction entries. This is the experiment behind the
// module-root BenchmarkSubmitThroughput.
func SubmitPipeline(o Options) ([]Table, error) {
	o = o.withDefaults()
	// Throughput experiment: saturate the master rather than pacing to the
	// paper's 1 txn/s, and spread clients over every datacenter.
	o.Threads = 8
	t := Table{
		Title: "Pipelined master: submit throughput by window size (VVV, 8 unpaced threads, master V1)",
		Note:  "window 1 = serial pre-pipeline baseline; combined = transactions committed in multi-txn entries",
		Columns: []string{"window", "commits", "commits/sec", "combined", "aborts",
			"mean-latency-ms", "check"},
	}
	for _, window := range []int{1, 2, 4, 8} {
		res, err := run(o, runSpec{
			name:         fmt.Sprintf("pipeline w=%d", window),
			topology:     "VVV",
			protocol:     core.Master,
			cfgEdit:      func(c *core.Config) { c.MasterDC = "V1" },
			attributes:   200,
			opsPerTxn:    4,
			interval:     time.Nanosecond, // unpaced
			threadDCs:    []string{"V1", "V2", "V3"},
			submitWindow: window,
		})
		if err != nil {
			return nil, err
		}
		sum := res.summary
		perSec := "-"
		if res.wall > 0 {
			perSec = fmt.Sprintf("%.0f", float64(sum.Commits)/res.wall.Seconds())
		}
		t.AddRow(fmt.Sprint(window), fmt.Sprint(sum.Commits), perSec,
			fmt.Sprint(sum.Combined), fmt.Sprint(sum.Aborts+sum.Failures),
			fmtMS(sum.AllCommit.Mean, o.Scale), violationsCell(res.violations))
	}
	return []Table{t}, nil
}
