package bench

import (
	"fmt"
	"time"

	"paxoscp/internal/core"
	"paxoscp/internal/stats"
)

// protocols are the two competitors every figure compares.
var protocols = []core.Protocol{core.Basic, core.CP}

// Fig4 reproduces Figure 4: transaction commits (a) and latency (b) for
// different numbers of replicas. The replica counts map to the paper's
// clusters: 2=VV, 3=VVV, 4=VVVO, 5=VVVOC. Workload: 500 transactions of 10
// operations over 100 attributes.
func Fig4(o Options) ([]Table, error) {
	o = o.withDefaults()
	specs := []struct {
		replicas int
		topo     string
	}{
		{2, "VV"}, {3, "VVV"}, {4, "VVVO"}, {5, "VVVOC"},
	}
	commits := Table{
		Title:   "Figure 4(a): successful commits out of " + fmt.Sprint(o.Txns) + ", by replica count",
		Columns: []string{"replicas", "protocol", "commits", "by-round", "aborts", "check"},
	}
	latency := Table{
		Title: "Figure 4(b): commit latency by replica count (paper-equivalent ms)",
		Note:  "mean over committed transactions; per promotion round for Paxos-CP",
		Columns: []string{"replicas", "protocol", "mean", "p95", "round0", "round1", "round2+",
			"all-rounds-n"},
	}
	for _, s := range specs {
		for _, proto := range protocols {
			res, err := run(o, runSpec{
				name:       fmt.Sprintf("fig4 %dx %s", s.replicas, proto),
				topology:   s.topo,
				protocol:   proto,
				attributes: 100,
				opsPerTxn:  10,
			})
			if err != nil {
				return nil, err
			}
			sum := res.summary
			commits.AddRow(fmt.Sprint(s.replicas), proto.String(),
				fmt.Sprint(sum.Commits), roundCommits(sum),
				fmt.Sprint(sum.Aborts+sum.Failures), violationsCell(res.violations))

			r0, r1, r2 := "-", "-", "-"
			if len(sum.ByRound) > 0 {
				r0 = fmtMS(sum.ByRound[0].Latency.Mean, o.Scale)
			}
			if len(sum.ByRound) > 1 {
				r1 = fmtMS(sum.ByRound[1].Latency.Mean, o.Scale)
			}
			if len(sum.ByRound) > 2 {
				var total time.Duration
				n := 0
				for _, rs := range sum.ByRound[2:] {
					total += rs.Latency.Mean * time.Duration(rs.Commits)
					n += rs.Commits
				}
				if n > 0 {
					r2 = fmtMS(total/time.Duration(n), o.Scale)
				}
			}
			latency.AddRow(fmt.Sprint(s.replicas), proto.String(),
				fmtMS(sum.AllCommit.Mean, o.Scale), fmtMS(sum.AllCommit.P95, o.Scale),
				r0, r1, r2, fmt.Sprint(sum.Commits))
		}
	}
	return []Table{commits, latency}, nil
}

// Fig5 reproduces Figure 5: commits (a) and average latency (b) for
// different cluster compositions — the paper compares region mixes (VV vs
// OV, VVV vs COV, and the 4- and 5-node clusters).
func Fig5(o Options) ([]Table, error) {
	o = o.withDefaults()
	clusters := []string{"VV", "OV", "VVV", "COV", "VVVO", "VVVOC"}
	commits := Table{
		Title:   "Figure 5(a): successful commits by cluster composition",
		Columns: []string{"cluster", "protocol", "commits", "by-round", "check"},
	}
	latency := Table{
		Title:   "Figure 5(b): average transaction latency by cluster composition (paper-equivalent ms)",
		Note:    "all transactions (commits and aborts); round0 = no-promotion commits",
		Columns: []string{"cluster", "protocol", "mean-all", "mean-commit", "round0"},
	}
	for _, topoSpec := range clusters {
		for _, proto := range protocols {
			res, err := run(o, runSpec{
				name:       fmt.Sprintf("fig5 %s %s", topoSpec, proto),
				topology:   topoSpec,
				protocol:   proto,
				attributes: 100,
				opsPerTxn:  10,
			})
			if err != nil {
				return nil, err
			}
			sum := res.summary
			commits.AddRow(topoSpec, proto.String(), fmt.Sprint(sum.Commits),
				roundCommits(sum), violationsCell(res.violations))
			r0 := "-"
			if len(sum.ByRound) > 0 {
				r0 = fmtMS(sum.ByRound[0].Latency.Mean, o.Scale)
			}
			latency.AddRow(topoSpec, proto.String(),
				fmtMS(sum.AllTxn.Mean, o.Scale), fmtMS(sum.AllCommit.Mean, o.Scale), r0)
		}
	}
	return []Table{commits, latency}, nil
}

// Fig6 reproduces Figure 6: the data-contention sweep. Three Virginia
// replicas, four threads at one transaction per second, varying the total
// number of attributes in the entity group (20 = high contention, 500 =
// minimal contention).
func Fig6(o Options) ([]Table, error) {
	o = o.withDefaults()
	t := Table{
		Title: "Figure 6: commits vs data contention (VVV, 4 threads @1 txn/s, " +
			fmt.Sprint(o.Txns) + " txns)",
		Note:    "contention = 10 ops per txn over N total attributes",
		Columns: []string{"attributes", "protocol", "commits", "by-round", "combined", "check"},
	}
	for _, attrs := range []int{20, 50, 100, 200, 500} {
		for _, proto := range protocols {
			res, err := run(o, runSpec{
				name:       fmt.Sprintf("fig6 %d-attrs %s", attrs, proto),
				topology:   "VVV",
				protocol:   proto,
				attributes: attrs,
				opsPerTxn:  10,
			})
			if err != nil {
				return nil, err
			}
			sum := res.summary
			t.AddRow(fmt.Sprint(attrs), proto.String(), fmt.Sprint(sum.Commits),
				roundCommits(sum), fmt.Sprint(sum.Combined), violationsCell(res.violations))
		}
	}
	return []Table{t}, nil
}

// Fig7 reproduces Figure 7: the concurrency sweep. A single YCSB instance
// on VVV over 100 attributes with increasing target throughput.
func Fig7(o Options) ([]Table, error) {
	o = o.withDefaults()
	t := Table{
		Title:   "Figure 7: commits vs offered load (VVV, 100 attributes)",
		Columns: []string{"txn/s", "protocol", "commits", "by-round", "check"},
	}
	for _, tps := range []int{1, 2, 4, 8, 16} {
		interval := time.Duration(float64(paperInterval) / float64(tps))
		for _, proto := range protocols {
			res, err := run(o, runSpec{
				name:       fmt.Sprintf("fig7 %dtps %s", tps, proto),
				topology:   "VVV",
				protocol:   proto,
				attributes: 100,
				opsPerTxn:  10,
				interval:   interval,
			})
			if err != nil {
				return nil, err
			}
			sum := res.summary
			t.AddRow(fmt.Sprint(tps), proto.String(), fmt.Sprint(sum.Commits),
				roundCommits(sum), violationsCell(res.violations))
		}
	}
	return []Table{t}, nil
}

// Fig8 reproduces Figure 8: datacenter concurrency. Three replicas (V, O,
// C); every replica runs its own YCSB instance against the shared entity
// group; results are reported per datacenter.
func Fig8(o Options) ([]Table, error) {
	o = o.withDefaults()
	t := Table{
		Title: "Figure 8: per-datacenter commits and latency (VOC, one YCSB instance per DC)",
		Note:  "latency in paper-equivalent ms; r0 = first-round commits",
		Columns: []string{"dc", "protocol", "commits", "by-round", "mean-all", "mean-r0",
			"check"},
	}
	// One YCSB instance (thread) per datacenter, each attempting the full
	// transaction count ("Each YCSB instance attempts 500 transactions").
	perDCOpts := o
	perDCOpts.Threads = 3
	perDCOpts.Txns = 3 * o.Txns
	for _, proto := range protocols {
		res, err := run(perDCOpts, runSpec{
			name:       fmt.Sprintf("fig8 %s", proto),
			topology:   "VOC",
			protocol:   proto,
			attributes: 100,
			opsPerTxn:  10,
			threadDCs:  []string{"V", "O", "C"},
		})
		if err != nil {
			return nil, err
		}
		for _, dc := range []string{"V", "O", "C"} {
			sum := stats.Summarize(stats.FilterOrigin(res.samples, dc))
			r0 := "-"
			if len(sum.ByRound) > 0 {
				r0 = fmtMS(sum.ByRound[0].Latency.Mean, o.Scale)
			}
			t.AddRow(dc, proto.String(), fmt.Sprint(sum.Commits), roundCommits(sum),
				fmtMS(sum.AllTxn.Mean, o.Scale), r0, violationsCell(res.violations))
		}
	}
	return []Table{t}, nil
}
