package bench

import (
	"fmt"
	"time"

	"paxoscp/internal/core"
)

// Reads measures the read hot path rebuilt in DESIGN.md §9: a read-heavy
// unpaced workload (90% reads, 8 ops/txn) on VVV under Paxos-CP, comparing
// per-key reads (one synchronous RPC per operation, the seed shape) against
// batched multi-key reads (consecutive reads collapse into one
// Tx.ReadMulti), at increasing thread counts. Lazy read positions apply to
// both rows — Begin never messages — so the delta isolates the batching win.
// Every run feeds the serializability checker; the reads/sec column is the
// figure of merit behind the module-root BenchmarkReadThroughput.
func Reads(o Options) ([]Table, error) {
	o = o.withDefaults()
	t := Table{
		Title: "Read path: per-key reads vs batched ReadMulti (VVV, paxos-cp, 90% reads, 8 ops/txn, unpaced)",
		Note:  "reads/sec counts read operations served; batched rows collapse consecutive reads into one RPC",
		Columns: []string{"threads", "mode", "commits", "reads/sec", "txn/sec",
			"mean-latency-ms", "check"},
	}
	const readFraction = 0.9
	const opsPerTxn = 8
	for _, threads := range []int{2, 4, 8} {
		for _, batched := range []bool{false, true} {
			ro := o
			ro.Threads = threads
			mode := "per-key"
			if batched {
				mode = "multi"
			}
			res, err := run(ro, runSpec{
				name:         fmt.Sprintf("reads t=%d %s", threads, mode),
				topology:     "VVV",
				protocol:     core.CP,
				attributes:   200,
				opsPerTxn:    opsPerTxn,
				readFraction: readFraction,
				batchReads:   batched,
				interval:     time.Nanosecond, // unpaced
				threadDCs:    []string{"V1", "V2", "V3"},
			})
			if err != nil {
				return nil, err
			}
			sum := res.summary
			readsPerSec, txnPerSec := "-", "-"
			if res.wall > 0 {
				// Approximate served reads: committed and OCC-aborted
				// transactions executed their full operation list; Failed
				// ones (transport errors) stopped mid-list and are excluded.
				reads := float64(sum.Commits+sum.Aborts) * opsPerTxn * readFraction
				readsPerSec = fmt.Sprintf("%.0f", reads/res.wall.Seconds())
				txnPerSec = fmt.Sprintf("%.0f", float64(sum.Total)/res.wall.Seconds())
			}
			t.AddRow(fmt.Sprint(threads), mode, fmt.Sprint(sum.Commits),
				readsPerSec, txnPerSec,
				fmtMS(sum.AllCommit.Mean, o.Scale), violationsCell(res.violations))
		}
	}
	return []Table{t}, nil
}
