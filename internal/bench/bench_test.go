package bench

import (
	"strings"
	"testing"
)

// quickOpts runs experiments small and fast for CI.
func quickOpts() Options {
	return Options{Scale: 0.002, Txns: 24, Threads: 4, Seed: 7}
}

func checkTables(t *testing.T, tables []Table, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("table %q has no rows", tb.Title)
		}
		s := tb.String()
		if strings.Contains(s, "VIOLATIONS") {
			t.Fatalf("serializability violations in %q:\n%s", tb.Title, s)
		}
	}
}

func TestFig4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Fig4(quickOpts())
	checkTables(t, tables, err)
	if len(tables[0].Rows) != 8 { // 4 replica counts x 2 protocols
		t.Fatalf("fig4 commits rows = %d", len(tables[0].Rows))
	}
}

func TestFig5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Fig5(quickOpts())
	checkTables(t, tables, err)
	if len(tables[0].Rows) != 12 { // 6 clusters x 2 protocols
		t.Fatalf("fig5 rows = %d", len(tables[0].Rows))
	}
}

func TestFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Fig6(quickOpts())
	checkTables(t, tables, err)
	if len(tables[0].Rows) != 10 { // 5 contention levels x 2 protocols
		t.Fatalf("fig6 rows = %d", len(tables[0].Rows))
	}
}

func TestFig7Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Fig7(quickOpts())
	checkTables(t, tables, err)
}

func TestFig8Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := quickOpts()
	o.Txns = 8 // per instance
	tables, err := Fig8(o)
	checkTables(t, tables, err)
	if len(tables[0].Rows) != 6 { // 3 DCs x 2 protocols
		t.Fatalf("fig8 rows = %d", len(tables[0].Rows))
	}
}

func TestAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Ablation(quickOpts())
	checkTables(t, tables, err)
}

func TestPromotionCapQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := PromotionCap(quickOpts())
	checkTables(t, tables, err)
}

func TestMessageComplexityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := MessageComplexity(quickOpts())
	checkTables(t, tables, err)
}

func TestAvailabilityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Availability(quickOpts())
	checkTables(t, tables, err)
	if len(tables) != 2 {
		t.Fatalf("availability tables = %d", len(tables))
	}
}

func TestLeaderComparisonQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := LeaderComparison(quickOpts())
	checkTables(t, tables, err)
	if len(tables[0].Rows) != 3 {
		t.Fatalf("leader comparison rows = %d", len(tables[0].Rows))
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "T", Note: "n", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	s := tb.String()
	for _, want := range []string{"T", "(n)", "a", "bb", "1", "2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

// TestCPOutperformsBasicUnderContention is the paper's headline result in
// miniature: with concurrent threads at the same read position, Paxos-CP
// must commit strictly more transactions than basic Paxos.
func TestCPOutperformsBasicUnderContention(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Scale: 0.002, Txns: 60, Threads: 4, Seed: 3}
	results := map[string]int{}
	for _, proto := range protocols {
		res, err := run(o, runSpec{
			name:       "headline " + proto.String(),
			topology:   "VVV",
			protocol:   proto,
			attributes: 100,
			opsPerTxn:  10,
			interval:   paperInterval / 4, // extra load to force contention
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.violations) != 0 {
			t.Fatalf("%s violations: %v", proto, res.violations)
		}
		results[proto.String()] = res.summary.Commits
	}
	if results["paxos-cp"] <= results["paxos"] {
		t.Fatalf("Paxos-CP (%d commits) did not beat basic Paxos (%d commits)",
			results["paxos-cp"], results["paxos"])
	}
}

// TestScansQuick smoke-runs the workload-E scan figure: three scan-length
// rows, each with a clean serializability check (scans do not join the OCC
// read set, so the battery must stay green with scans interleaved).
func TestScansQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Scans(quickOpts())
	checkTables(t, tables, err)
	if len(tables[0].Rows) != 3 {
		t.Fatalf("scans rows = %d", len(tables[0].Rows))
	}
}
