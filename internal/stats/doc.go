// Package stats collects the measurements the paper's evaluation reports:
// commit/abort counts split by promotion round, transaction latency
// distributions, and combination/promotion event tallies (§6).
//
// A Collector receives one Sample per finished read/write transaction from
// the clients it is attached to; Summarize reduces a sample set to the
// figures the tables print (commit counts by round, mean/p95 latencies,
// per-origin splits).
package stats
