package stats

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSummarizeEmpty(t *testing.T) {
	sum := Summarize(nil)
	if sum.Total != 0 || sum.Commits != 0 || sum.AllCommit.N != 0 {
		t.Fatalf("empty summary = %+v", sum)
	}
	if sum.CommitRate() != 0 {
		t.Fatalf("empty CommitRate = %v", sum.CommitRate())
	}
}

func TestSummarizeCountsAndRounds(t *testing.T) {
	samples := []Sample{
		{Outcome: Committed, Round: 0, Latency: ms(10)},
		{Outcome: Committed, Round: 0, Latency: ms(20)},
		{Outcome: Committed, Round: 2, Latency: ms(50), Combined: true},
		{Outcome: Aborted, Round: 1, Latency: ms(30)},
		{Outcome: Failed, Latency: ms(5)},
	}
	sum := Summarize(samples)
	if sum.Total != 5 || sum.Commits != 3 || sum.Aborts != 1 || sum.Failures != 1 {
		t.Fatalf("counts wrong: %+v", sum)
	}
	if sum.Combined != 1 {
		t.Fatalf("combined = %d", sum.Combined)
	}
	if sum.MaxRound != 2 || len(sum.ByRound) != 3 {
		t.Fatalf("rounds: max=%d len=%d", sum.MaxRound, len(sum.ByRound))
	}
	if sum.ByRound[0].Commits != 2 || sum.ByRound[1].Commits != 0 || sum.ByRound[2].Commits != 1 {
		t.Fatalf("ByRound = %+v", sum.ByRound)
	}
	if sum.AllCommit.Mean != ms(80)/3 {
		t.Fatalf("commit mean = %v", sum.AllCommit.Mean)
	}
	if got := sum.CommitRate(); got != 0.6 {
		t.Fatalf("CommitRate = %v", got)
	}
}

// TestCommitRateExcludesRejects is the regression test for the reject-skew
// bug: a transaction refused by admission control and later committed records
// one Rejected sample per refusal, and those refusals must not dilute the
// commit rate of the decided population.
func TestCommitRateExcludesRejects(t *testing.T) {
	samples := []Sample{
		{Outcome: Rejected, Latency: ms(1)},
		{Outcome: Rejected, Latency: ms(1)},
		{Outcome: Rejected, Latency: ms(1)},
		{Outcome: Committed, Latency: ms(10)},
		{Outcome: Aborted, Latency: ms(8)},
	}
	sum := Summarize(samples)
	if sum.Total != 5 || sum.Rejects != 3 || sum.Decided() != 2 {
		t.Fatalf("counts wrong: %+v", sum)
	}
	if got := sum.CommitRate(); got != 0.5 {
		t.Fatalf("CommitRate = %v, want 0.5 (1 commit of 2 decided; 3 rejects reported separately)", got)
	}
	// All-rejects: nothing decided, so the rate is 0 rather than 0/0.
	onlyRejects := Summarize([]Sample{{Outcome: Rejected}, {Outcome: Rejected}})
	if got := onlyRejects.CommitRate(); got != 0 {
		t.Fatalf("all-rejects CommitRate = %v", got)
	}
	if s := sum.String(); !strings.Contains(s, "commits=1/2") || !strings.Contains(s, "rejects=3") {
		t.Fatalf("String() = %q, want decided denominator and separate rejects field", s)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	var lats []time.Duration
	for i := 1; i <= 100; i++ {
		lats = append(lats, ms(i))
	}
	st := computeLatency(lats)
	if st.P50 != ms(50) || st.P95 != ms(95) || st.P99 != ms(99) || st.Max != ms(100) {
		t.Fatalf("percentiles: %+v", st)
	}
	if st.Mean != 5050*time.Millisecond/100 {
		t.Fatalf("mean = %v", st.Mean)
	}
}

func TestPercentileSingleSample(t *testing.T) {
	st := computeLatency([]time.Duration{ms(7)})
	if st.P50 != ms(7) || st.P99 != ms(7) || st.Max != ms(7) || st.N != 1 {
		t.Fatalf("single sample stats: %+v", st)
	}
}

func TestFilterOrigin(t *testing.T) {
	samples := []Sample{
		{Origin: "V1", Outcome: Committed},
		{Origin: "O", Outcome: Committed},
		{Origin: "V1", Outcome: Aborted},
	}
	got := FilterOrigin(samples, "V1")
	if len(got) != 2 {
		t.Fatalf("FilterOrigin = %d samples", len(got))
	}
	for _, s := range got {
		if s.Origin != "V1" {
			t.Fatalf("wrong origin %q", s.Origin)
		}
	}
}

func TestCollectorConcurrent(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c.Record(Sample{Outcome: Committed, Latency: ms(1)})
			}
		}()
	}
	wg.Wait()
	if got := c.Summarize(); got.Commits != 1000 {
		t.Fatalf("commits = %d, want 1000", got.Commits)
	}
	c.Reset()
	if got := c.Summarize(); got.Total != 0 {
		t.Fatalf("after Reset total = %d", got.Total)
	}
}

func TestOutcomeString(t *testing.T) {
	if Committed.String() != "commit" || Aborted.String() != "abort" || Failed.String() != "failed" {
		t.Fatal("Outcome strings wrong")
	}
	if Outcome(99).String() != "Outcome(99)" {
		t.Fatal("unknown outcome string wrong")
	}
}

func TestSummaryString(t *testing.T) {
	sum := Summarize([]Sample{
		{Outcome: Committed, Round: 0, Latency: ms(10)},
		{Outcome: Committed, Round: 1, Latency: ms(20)},
	})
	s := sum.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

// TestPropPercentileMonotone: for any latency set, P50 <= P95 <= P99 <= Max,
// and Mean lies within [min, max].
func TestPropPercentileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var lats []time.Duration
		min, max := time.Duration(1<<62), time.Duration(0)
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			lats = append(lats, d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		st := computeLatency(lats)
		return st.P50 <= st.P95 && st.P95 <= st.P99 && st.P99 <= st.Max &&
			st.Mean >= min && st.Mean <= max && st.Max == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropSummaryPartition: commits+aborts+failures == total for any samples.
func TestPropSummaryPartition(t *testing.T) {
	f := func(outcomes []uint8) bool {
		samples := make([]Sample, len(outcomes))
		for i, o := range outcomes {
			samples[i] = Sample{Outcome: Outcome(o % 3), Round: int(o % 4), Latency: ms(int(o))}
		}
		sum := Summarize(samples)
		byRound := 0
		for _, r := range sum.ByRound {
			byRound += r.Commits
		}
		return sum.Commits+sum.Aborts+sum.Failures == sum.Total && byRound == sum.Commits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
