package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Outcome is the final status of one transaction attempt.
type Outcome int

// Transaction outcomes.
const (
	// Committed means the transaction's value (alone or combined) was
	// written to the log and the client returned commit.
	Committed Outcome = iota
	// Aborted means the client returned abort (lost the position and could
	// not or may not promote).
	Aborted
	// Failed means the protocol could not complete (no majority reachable
	// before the retry budget was exhausted).
	Failed
	// Rejected means admission control refused the transaction before any
	// protocol work: the master's submit queue was at capacity (DESIGN.md
	// §13). Nothing reached the log, so the client may safely retry.
	Rejected
)

func (o Outcome) String() string {
	switch o {
	case Committed:
		return "commit"
	case Aborted:
		return "abort"
	case Failed:
		return "failed"
	case Rejected:
		return "rejected"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Sample records one finished transaction.
type Sample struct {
	Outcome Outcome
	// Round is the promotion round the transaction finished in: 0 means it
	// won (or aborted at) its first commit position, r>0 means it was
	// promoted r times. Basic Paxos always finishes in round 0.
	Round int
	// Latency is wall-clock time from commit() invocation to resolution.
	Latency time.Duration
	// Origin is the client's local datacenter (per-DC reporting, Fig. 8).
	Origin string
	// Combined reports whether the transaction committed as part of a
	// multi-transaction (combined) log entry.
	Combined bool
}

// Collector accumulates samples. The zero value is ready to use and all
// methods are safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	samples []Sample
}

// Record adds one sample.
func (c *Collector) Record(s Sample) {
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

// Samples returns a copy of all recorded samples.
func (c *Collector) Samples() []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Sample(nil), c.samples...)
}

// Reset discards all samples.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.samples = nil
	c.mu.Unlock()
}

// Summary aggregates a sample set the way the paper's figures slice it.
type Summary struct {
	Total     int
	Commits   int
	Aborts    int
	Failures  int
	Rejects   int // refused by admission control before any protocol work
	Combined  int
	MaxRound  int
	ByRound   []RoundSummary // index = promotion round, commits only
	AllCommit LatencyStats   // latency over all committed transactions
	AllTxn    LatencyStats   // latency over every finished transaction
}

// RoundSummary reports commits and their latency for one promotion round.
type RoundSummary struct {
	Round   int
	Commits int
	Latency LatencyStats
}

// LatencyStats holds an empirical latency distribution summary.
type LatencyStats struct {
	N    int
	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	P99  time.Duration
	Max  time.Duration
}

// Summarize computes a Summary over the collector's samples.
func (c *Collector) Summarize() Summary {
	return Summarize(c.Samples())
}

// Summarize computes a Summary over the given samples.
func Summarize(samples []Sample) Summary {
	var sum Summary
	sum.Total = len(samples)
	var commitLats, allLats []time.Duration
	roundLats := map[int][]time.Duration{}
	for _, s := range samples {
		allLats = append(allLats, s.Latency)
		switch s.Outcome {
		case Committed:
			sum.Commits++
			commitLats = append(commitLats, s.Latency)
			roundLats[s.Round] = append(roundLats[s.Round], s.Latency)
			if s.Round > sum.MaxRound {
				sum.MaxRound = s.Round
			}
			if s.Combined {
				sum.Combined++
			}
		case Aborted:
			sum.Aborts++
		case Failed:
			sum.Failures++
		case Rejected:
			sum.Rejects++
		}
	}
	sum.ByRound = make([]RoundSummary, sum.MaxRound+1)
	for r := 0; r <= sum.MaxRound; r++ {
		sum.ByRound[r] = RoundSummary{
			Round:   r,
			Commits: len(roundLats[r]),
			Latency: computeLatency(roundLats[r]),
		}
	}
	sum.AllCommit = computeLatency(commitLats)
	sum.AllTxn = computeLatency(allLats)
	return sum
}

// FilterOrigin returns only the samples originating at dc.
func FilterOrigin(samples []Sample, dc string) []Sample {
	var out []Sample
	for _, s := range samples {
		if s.Origin == dc {
			out = append(out, s)
		}
	}
	return out
}

func computeLatency(lats []time.Duration) LatencyStats {
	if len(lats) == 0 {
		return LatencyStats{}
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	return LatencyStats{
		N:    len(sorted),
		Mean: total / time.Duration(len(sorted)),
		P50:  percentile(sorted, 0.50),
		P95:  percentile(sorted, 0.95),
		P99:  percentile(sorted, 0.99),
		Max:  sorted[len(sorted)-1],
	}
}

// percentile returns the p-quantile (0 < p <= 1) of sorted by the
// nearest-rank method.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Decided returns the number of samples that carry a protocol verdict:
// commits, aborts, and failures. Rejected samples are excluded — a reject is
// admission control refusing to even start an attempt, and a retried
// transaction records one Rejected sample per refusal, so counting them
// alongside verdicts would let a burst of cheap refusals skew every
// verdict-denominated rate.
func (s Summary) Decided() int {
	return s.Total - s.Rejects
}

// CommitRate returns commits as a fraction of decided transactions
// (commits + aborts + failures), or 0 for an empty summary. Rejects are
// reported separately (Rejects; String appends a rejects= field): under
// overload with reject-retry enabled, one committing transaction may record
// many Rejected samples first, and folding those into the denominator would
// understate the commit rate of the work the system actually admitted.
func (s Summary) CommitRate() float64 {
	if s.Decided() == 0 {
		return 0
	}
	return float64(s.Commits) / float64(s.Decided())
}

// String renders a one-line summary.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "commits=%d/%d (%.1f%%) aborts=%d failures=%d mean=%s",
		s.Commits, s.Decided(), 100*s.CommitRate(), s.Aborts, s.Failures, s.AllCommit.Mean)
	if s.Rejects > 0 {
		fmt.Fprintf(&b, " rejects=%d", s.Rejects)
	}
	if s.MaxRound > 0 {
		fmt.Fprintf(&b, " rounds=[")
		for r, rs := range s.ByRound {
			if r > 0 {
				fmt.Fprintf(&b, " ")
			}
			fmt.Fprintf(&b, "%d:%d", r, rs.Commits)
		}
		fmt.Fprintf(&b, "]")
	}
	return b.String()
}
