package paxos

import "paxoscp/internal/network"

// HandleMessage routes the Paxos protocol messages a Transaction Service
// receives to its acceptor and builds the wire response:
//
//	prepare  -> KindLastVote{OK, Ballot: promised, TS: voteBallot, Payload: voteValue}
//	accept   -> KindStatus{OK, Ballot: promised}
//
// It reports handled=false for non-acceptor kinds (apply, reads, …), which
// the service layers above deal with.
func HandleMessage(a *Acceptor, req network.Message) (network.Message, bool) {
	switch req.Kind {
	case network.KindPrepare:
		res, err := a.Prepare(req.Group, req.Pos, req.Ballot)
		if err != nil {
			return network.Status(false, err.Error()), true
		}
		return network.Message{
			Kind:    network.KindLastVote,
			OK:      res.OK,
			Ballot:  res.Promised,
			TS:      res.VoteBallot,
			Payload: res.VoteValue,
		}, true
	case network.KindAccept:
		res, err := a.Accept(req.Group, req.Pos, req.Ballot, req.Payload)
		if err != nil {
			return network.Status(false, err.Error()), true
		}
		return network.Message{Kind: network.KindStatus, OK: res.OK, Ballot: res.Promised}, true
	default:
		return network.Message{}, false
	}
}
