package paxos

import (
	"errors"
	"strconv"

	"paxoscp/internal/kvstore"
)

// Acceptor state is one kvstore row per (group, position) with attributes:
//
//	seq        monotonically increasing modification counter (CAS token)
//	nextBal    highest prepare ballot promised (decimal, "" = never)
//	voteBal    ballot of the last vote cast ("" = null vote)
//	voteVal    value voted for (encoded wal.Entry bytes, raw string)
//
// Algorithm 1 conditions its checkAndWrite on nextBal alone. Because accept
// leaves nextBal unchanged, that admits a lost-vote race between a
// concurrent prepare and accept on the same row (the prepare's conditional
// write can succeed after a vote it did not observe). We keep the paper's
// operation — a single checkAndWrite per transition — but test the seq
// attribute, which changes on every mutation, making each transition a true
// compare-and-swap over the row. See DESIGN.md §2.
type Acceptor struct {
	store *kvstore.Store
}

// NewAcceptor returns an Acceptor whose durable state lives in store.
func NewAcceptor(store *kvstore.Store) *Acceptor {
	return &Acceptor{store: store}
}

// StatePrefix is the row-name prefix of acceptor state. internal/core
// scavenges these rows at compaction time via StateKey.
const StatePrefix = "paxos/"

// StateKey is the kvstore row that holds Paxos state for (group, pos). It
// runs on every prepare/accept load and CAS, so it is built allocation-free
// by kvstore.PosKey rather than fmt.Sprintf.
func StateKey(group string, pos int64) string {
	return kvstore.PosKey(StatePrefix, group, pos)
}

// acceptorState is the decoded row.
type acceptorState struct {
	seq     int64
	nextBal int64
	voteBal int64
	voteVal []byte
}

func parseBallot(s string) int64 {
	if s == "" {
		return NilBallot
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return NilBallot
	}
	return v
}

func (a *Acceptor) load(group string, pos int64) (acceptorState, error) {
	v, _, err := a.store.Read(StateKey(group, pos), kvstore.Latest)
	if errors.Is(err, kvstore.ErrNotFound) {
		return acceptorState{seq: 0, nextBal: NilBallot, voteBal: NilBallot}, nil
	}
	if err != nil {
		return acceptorState{}, err
	}
	st := acceptorState{
		seq:     parseSeq(v["seq"]),
		nextBal: parseBallot(v["nextBal"]),
		voteBal: parseBallot(v["voteBal"]),
	}
	if st.voteBal != NilBallot {
		st.voteVal = []byte(v["voteVal"])
	}
	return st, nil
}

func parseSeq(s string) int64 {
	if s == "" {
		return 0
	}
	v, _ := strconv.ParseInt(s, 10, 64)
	return v
}

// cas attempts the transition old -> next conditioned on the seq attribute
// being unchanged since old was read. It returns false when the row moved.
func (a *Acceptor) cas(group string, pos int64, old acceptorState, next acceptorState) (bool, error) {
	testSeq := ""
	if old.seq > 0 {
		testSeq = strconv.FormatInt(old.seq, 10)
	}
	val := kvstore.Value{
		"seq":     strconv.FormatInt(old.seq+1, 10),
		"nextBal": strconv.FormatInt(next.nextBal, 10),
	}
	if next.voteBal != NilBallot {
		val["voteBal"] = strconv.FormatInt(next.voteBal, 10)
		val["voteVal"] = string(next.voteVal)
	}
	err := a.store.CheckAndWrite(StateKey(group, pos), "seq", testSeq, val)
	if errors.Is(err, kvstore.ErrCheckFailed) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// PrepareResult is the acceptor's reply to a prepare message.
type PrepareResult struct {
	// OK reports whether the promise was granted.
	OK bool
	// Promised is the acceptor's nextBal after processing: the granted
	// ballot on success, or the higher existing promise on refusal (so the
	// proposer can choose its next proposal number).
	Promised int64
	// VoteBallot and VoteValue carry the acceptor's last vote for this
	// position; VoteBallot == NilBallot means a null vote.
	VoteBallot int64
	VoteValue  []byte
}

// Prepare processes a prepare(ballot) message for one log position
// (Algorithm 1 lines 3–15). On success the acceptor promises to ignore
// proposals numbered below ballot and returns its last vote.
func (a *Acceptor) Prepare(group string, pos int64, ballot int64) (PrepareResult, error) {
	for {
		st, err := a.load(group, pos)
		if err != nil {
			return PrepareResult{}, err
		}
		if ballot <= st.nextBal {
			return PrepareResult{OK: false, Promised: st.nextBal, VoteBallot: st.voteBal, VoteValue: st.voteVal}, nil
		}
		next := st
		next.nextBal = ballot
		ok, err := a.cas(group, pos, st, next)
		if err != nil {
			return PrepareResult{}, err
		}
		if ok {
			return PrepareResult{OK: true, Promised: ballot, VoteBallot: st.voteBal, VoteValue: st.voteVal}, nil
		}
		// The row changed underneath us ("only update nextBal in datastore
		// if it has not changed since read"); re-read and retry.
	}
}

// AcceptResult is the acceptor's reply to an accept message.
type AcceptResult struct {
	// OK reports whether the vote was cast.
	OK bool
	// Promised is the acceptor's current promise, returned on refusal.
	Promised int64
}

// Accept processes an accept(ballot, value) message (Algorithm 1 lines
// 16–19). The vote is cast only when ballot equals the acceptor's current
// promise — i.e. the proposal number of the most recent prepare this
// acceptor answered.
//
// As the one extension, a FastBallot accept is taken by an acceptor that has
// never promised nor voted: this implements the §4.1 leader optimization
// where the position's first writer skips the prepare phase.
func (a *Acceptor) Accept(group string, pos int64, ballot int64, value []byte) (AcceptResult, error) {
	for {
		st, err := a.load(group, pos)
		if err != nil {
			return AcceptResult{}, err
		}
		if st.voteBal == ballot {
			// Already voted at this ballot. A duplicate delivery of the
			// same value is acknowledged idempotently; a different value at
			// the same ballot (possible only on the contended fast path) is
			// refused — an acceptor votes at most once per ballot.
			if string(st.voteVal) == string(value) {
				return AcceptResult{OK: true, Promised: st.nextBal}, nil
			}
			return AcceptResult{OK: false, Promised: st.nextBal}, nil
		}
		fastOK := ballot == FastBallot && st.nextBal == NilBallot && st.voteBal == NilBallot
		if st.nextBal != ballot && !fastOK {
			return AcceptResult{OK: false, Promised: st.nextBal}, nil
		}
		next := st
		next.nextBal = ballot
		next.voteBal = ballot
		next.voteVal = value
		ok, err := a.cas(group, pos, st, next)
		if err != nil {
			return AcceptResult{}, err
		}
		if ok {
			return AcceptResult{OK: true, Promised: ballot}, nil
		}
	}
}

// Vote returns the acceptor's last vote for a position (for inspection and
// recovery tooling). A NilBallot result means no vote was cast.
func (a *Acceptor) Vote(group string, pos int64) (ballot int64, value []byte, err error) {
	st, err := a.load(group, pos)
	if err != nil {
		return NilBallot, nil, err
	}
	return st.voteBal, st.voteVal, nil
}

// Promised returns the acceptor's current promise for a position.
func (a *Acceptor) Promised(group string, pos int64) (int64, error) {
	st, err := a.load(group, pos)
	if err != nil {
		return NilBallot, err
	}
	return st.nextBal, nil
}
