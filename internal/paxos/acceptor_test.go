package paxos

import (
	"fmt"
	"sync"
	"testing"

	"paxoscp/internal/kvstore"
)

func newAcceptor() *Acceptor { return NewAcceptor(kvstore.New()) }

func TestPrepareFreshPositionGrantsAndReportsNullVote(t *testing.T) {
	a := newAcceptor()
	res, err := a.Prepare("g", 1, Ballot(1, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Promised != Ballot(1, 7) {
		t.Fatalf("res = %+v", res)
	}
	if res.VoteBallot != NilBallot || res.VoteValue != nil {
		t.Fatalf("fresh position must report null vote: %+v", res)
	}
}

func TestPrepareLowerBallotRefused(t *testing.T) {
	a := newAcceptor()
	high := Ballot(5, 1)
	if _, err := a.Prepare("g", 1, high); err != nil {
		t.Fatal(err)
	}
	res, err := a.Prepare("g", 1, Ballot(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("lower ballot granted")
	}
	if res.Promised != high {
		t.Fatalf("refusal must report existing promise %d, got %d", high, res.Promised)
	}
	// Equal ballot is also refused (promise is strict).
	res, _ = a.Prepare("g", 1, high)
	if res.OK {
		t.Fatal("equal ballot granted")
	}
}

func TestAcceptRequiresMatchingPromise(t *testing.T) {
	a := newAcceptor()
	b := Ballot(1, 3)
	if _, err := a.Prepare("g", 9, b); err != nil {
		t.Fatal(err)
	}
	// Wrong ballot: refused.
	res, err := a.Accept("g", 9, Ballot(1, 4), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("accept with non-promised ballot succeeded")
	}
	if res.Promised != b {
		t.Fatalf("refusal promise = %d, want %d", res.Promised, b)
	}
	// Matching ballot: vote cast.
	res, err = a.Accept("g", 9, b, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal("accept with matching ballot refused")
	}
	vb, vv, err := a.Vote("g", 9)
	if err != nil || vb != b || string(vv) != "v" {
		t.Fatalf("Vote = (%d,%q,%v)", vb, vv, err)
	}
}

func TestPrepareAfterVoteReturnsVote(t *testing.T) {
	a := newAcceptor()
	b1 := Ballot(1, 1)
	a.Prepare("g", 0, b1)
	a.Accept("g", 0, b1, []byte("val1"))

	b2 := Ballot(2, 2)
	res, err := a.Prepare("g", 0, b2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal("higher prepare refused")
	}
	if res.VoteBallot != b1 || string(res.VoteValue) != "val1" {
		t.Fatalf("vote = (%d,%q), want (%d,val1)", res.VoteBallot, res.VoteValue, b1)
	}
	// After the new promise, the old proposer's accept must fail.
	ar, _ := a.Accept("g", 0, b1, []byte("late"))
	if ar.OK {
		t.Fatal("accept at superseded ballot succeeded")
	}
	// Vote unchanged.
	vb, vv, _ := a.Vote("g", 0)
	if vb != b1 || string(vv) != "val1" {
		t.Fatalf("vote mutated: (%d,%q)", vb, vv)
	}
}

func TestVoteChangesAtNewBallot(t *testing.T) {
	a := newAcceptor()
	b1, b2 := Ballot(1, 1), Ballot(2, 2)
	a.Prepare("g", 0, b1)
	a.Accept("g", 0, b1, []byte("v1"))
	a.Prepare("g", 0, b2)
	res, _ := a.Accept("g", 0, b2, []byte("v2"))
	if !res.OK {
		t.Fatal("accept at promised higher ballot refused")
	}
	vb, vv, _ := a.Vote("g", 0)
	if vb != b2 || string(vv) != "v2" {
		t.Fatalf("vote = (%d,%q), want (%d,v2)", vb, vv, b2)
	}
}

func TestFastBallotAccept(t *testing.T) {
	a := newAcceptor()
	// Fresh acceptor takes a fast accept.
	res, err := a.Accept("g", 0, FastBallot, []byte("fast"))
	if err != nil || !res.OK {
		t.Fatalf("fast accept on fresh acceptor: %+v, %v", res, err)
	}
	vb, vv, _ := a.Vote("g", 0)
	if vb != FastBallot || string(vv) != "fast" {
		t.Fatalf("vote = (%d,%q)", vb, vv)
	}
	// A second fast accept must be refused (a vote exists).
	res, _ = a.Accept("g", 0, FastBallot, []byte("other"))
	if res.OK {
		t.Fatal("second fast accept succeeded; fast path must be one-shot")
	}
	// A prepared acceptor refuses fast accepts on that position.
	a2 := newAcceptor()
	a2.Prepare("g", 0, Ballot(1, 1))
	res, _ = a2.Accept("g", 0, FastBallot, []byte("fast"))
	if res.OK {
		t.Fatal("fast accept after promise succeeded")
	}
}

func TestFastVoteSurvivesIntoPrepare(t *testing.T) {
	a := newAcceptor()
	a.Accept("g", 0, FastBallot, []byte("fast"))
	res, _ := a.Prepare("g", 0, Ballot(1, 1))
	if !res.OK {
		t.Fatal("prepare after fast vote refused")
	}
	if res.VoteBallot != FastBallot || string(res.VoteValue) != "fast" {
		t.Fatalf("prepare must surface the fast vote, got (%d,%q)", res.VoteBallot, res.VoteValue)
	}
}

func TestPositionsAreIndependent(t *testing.T) {
	a := newAcceptor()
	a.Prepare("g", 0, Ballot(9, 1))
	res, _ := a.Prepare("g", 1, Ballot(1, 1))
	if !res.OK {
		t.Fatal("promise on position 0 leaked into position 1")
	}
	res, _ = a.Prepare("other-group", 0, Ballot(1, 1))
	if !res.OK {
		t.Fatal("promise leaked across groups")
	}
}

// TestConcurrentPreparesSafety: under concurrent prepares and accepts, the
// final promise must be the max granted ballot and at most one vote can
// exist per ballot.
func TestConcurrentPreparesSafety(t *testing.T) {
	a := newAcceptor()
	const n = 32
	var wg sync.WaitGroup
	granted := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := a.Prepare("g", 0, Ballot(int64(i+1), i%MaxClients))
			if err != nil {
				t.Errorf("Prepare: %v", err)
				return
			}
			granted[i] = res.OK
		}(i)
	}
	wg.Wait()
	// The highest ballot must have been granted.
	if !granted[n-1] {
		t.Fatal("highest ballot was refused")
	}
	p, _ := a.Promised("g", 0)
	if p != Ballot(n, (n-1)%MaxClients) {
		t.Fatalf("final promise = %d, want %d", p, Ballot(n, (n-1)%MaxClients))
	}
}

// TestPrepareAcceptRaceNoLostVote reproduces the race that motivated the
// seq-based CAS: a prepare that interleaves with an accept must never
// produce a granted promise whose reported vote misses that accept.
func TestPrepareAcceptRaceNoLostVote(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		a := newAcceptor()
		b1 := Ballot(1, 1)
		if _, err := a.Prepare("g", 0, b1); err != nil {
			t.Fatal(err)
		}
		b2 := Ballot(2, 2)
		var wg sync.WaitGroup
		var prep PrepareResult
		wg.Add(2)
		go func() {
			defer wg.Done()
			a.Accept("g", 0, b1, []byte("v1"))
		}()
		go func() {
			defer wg.Done()
			prep, _ = a.Prepare("g", 0, b2)
		}()
		wg.Wait()
		if !prep.OK {
			continue
		}
		// If the accept landed before the prepare's CAS, the prepare must
		// have seen the vote. Check consistency: when the acceptor's vote is
		// v1@b1 and the prepare reported a null vote, the accept must have
		// happened after the promise switched to b2 — impossible, because
		// accept requires nextBal == b1. So: vote recorded => prepare saw it.
		vb, _, _ := a.Vote("g", 0)
		if vb == b1 && prep.VoteBallot == NilBallot {
			t.Fatalf("iter %d: lost vote — acceptor voted at %d but prepare reported null", iter, b1)
		}
	}
}

func TestAcceptorManyPositions(t *testing.T) {
	a := newAcceptor()
	for pos := int64(0); pos < 50; pos++ {
		b := Ballot(1, int(pos)%MaxClients)
		if res, err := a.Prepare("g", pos, b); err != nil || !res.OK {
			t.Fatalf("pos %d prepare: %+v %v", pos, res, err)
		}
		val := []byte(fmt.Sprintf("v%d", pos))
		if res, err := a.Accept("g", pos, b, val); err != nil || !res.OK {
			t.Fatalf("pos %d accept: %+v %v", pos, res, err)
		}
	}
	for pos := int64(0); pos < 50; pos++ {
		_, vv, _ := a.Vote("g", pos)
		if string(vv) != fmt.Sprintf("v%d", pos) {
			t.Fatalf("pos %d vote = %q", pos, vv)
		}
	}
}
