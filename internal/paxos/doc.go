// Package paxos implements a single instance of the Paxos algorithm (the
// Synod algorithm) as the paper uses it: one instance per write-ahead-log
// position, with the acceptor's durable state held in the datacenter's
// key-value store via checkAndWrite (paper §4.1, Algorithms 1 and 2).
//
// The package provides the two protocol roles:
//
//   - Acceptor: the Transaction Service side (Algorithm 1) — handles
//     prepare and accept messages with all state transitions made atomic
//     through the kvstore's conditional write (the seq CAS, DESIGN.md §2).
//   - Proposer: the Transaction Client side's messaging core (the phases of
//     Algorithm 2) — fans prepare/accept/apply out to every datacenter and
//     tallies responses. Value selection (findWinningVal and the Paxos-CP
//     enhancedFindWinningVal) lives in package core, layered on top.
//
// Ballots encode a round counter and a proposer identity (Ballot), so
// proposal numbers are globally unique. The one extension to the Synod
// algorithm is the fast ballot (FastBallot, ballot 0): an acceptor that has
// never promised nor voted takes a fast accept directly, implementing the
// §4.1 per-position leader optimization. Fast-ballot decisions require a
// unanimous accept round (AcceptOutcome.Unanimous), not a mere majority:
// with two racing fast proposers, only unanimity makes collision recovery
// unambiguous (DESIGN.md §11).
package paxos
