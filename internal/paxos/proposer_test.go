package paxos

import (
	"context"
	"sync"
	"testing"
	"time"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/network"
)

// testCluster wires D acceptors (one per datacenter) into a simulated
// network and returns proposer endpoints.
type testCluster struct {
	sim       *network.Sim
	acceptors map[string]*Acceptor
	applied   map[string][]byte // last applied value per DC
	mu        sync.Mutex
}

func newTestCluster(t *testing.T, dcs ...string) *testCluster {
	t.Helper()
	topo := network.NewTopology(dcs...)
	for i, a := range dcs {
		for _, b := range dcs[i+1:] {
			topo.SetRTT(a, b, time.Millisecond)
		}
	}
	tc := &testCluster{
		sim:       network.NewSim(topo, network.SimConfig{Seed: 7}),
		acceptors: make(map[string]*Acceptor),
		applied:   make(map[string][]byte),
	}
	t.Cleanup(tc.sim.Close)
	for _, dc := range dcs {
		acc := NewAcceptor(kvstore.New())
		tc.acceptors[dc] = acc
		dc := dc
		tc.sim.Endpoint(dc, func(from string, req network.Message) network.Message {
			if resp, ok := HandleMessage(acc, req); ok {
				return resp
			}
			if req.Kind == network.KindApply {
				tc.mu.Lock()
				tc.applied[dc] = req.Payload
				tc.mu.Unlock()
				return network.Status(true, "")
			}
			return network.Status(false, "unhandled")
		})
	}
	return tc
}

func (tc *testCluster) proposer(dc string) *Proposer {
	return &Proposer{
		Transport: tc.sim.Endpoint(dc, func(from string, req network.Message) network.Message {
			if resp, ok := HandleMessage(tc.acceptors[dc], req); ok {
				return resp
			}
			if req.Kind == network.KindApply {
				tc.mu.Lock()
				tc.applied[dc] = req.Payload
				tc.mu.Unlock()
				return network.Status(true, "")
			}
			return network.Status(false, "unhandled")
		}),
		Timeout: 200 * time.Millisecond,
	}
}

func TestProposerFullInstance(t *testing.T) {
	tc := newTestCluster(t, "A", "B", "C")
	p := tc.proposer("A")
	ctx := context.Background()
	b := Ballot(1, 1)

	prep := p.Prepare(ctx, "g", 0, b, true)
	if prep.D != 3 || !prep.Quorum() {
		t.Fatalf("prepare outcome: %+v", prep)
	}
	for _, v := range prep.Votes {
		if !v.IsNull() {
			t.Fatalf("fresh instance returned non-null vote: %+v", v)
		}
	}

	acc := p.Accept(ctx, "g", 0, b, []byte("value"))
	if !acc.Quorum() {
		t.Fatalf("accept outcome: %+v", acc)
	}

	if acks := p.Apply(ctx, "g", 0, b, []byte("value")); acks < Majority(3) {
		t.Fatalf("apply acks = %d, want >= majority", acks)
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	applied := 0
	for dc, v := range tc.applied {
		if string(v) != "value" {
			t.Fatalf("dc %s applied %q", dc, v)
		}
		applied++
	}
	if applied < Majority(3) {
		t.Fatalf("only %d datacenters applied", applied)
	}
}

func TestProposerSecondProposerLearnsFirstValue(t *testing.T) {
	tc := newTestCluster(t, "A", "B", "C")
	ctx := context.Background()

	p1 := tc.proposer("A")
	b1 := Ballot(1, 1)
	p1.Prepare(ctx, "g", 0, b1, true)
	if acc := p1.Accept(ctx, "g", 0, b1, []byte("first")); !acc.Quorum() {
		t.Fatalf("p1 accept: %+v", acc)
	}

	// A competing proposer prepares with a higher ballot; at least one vote
	// for "first" must surface, and by the Paxos rule it must adopt it.
	p2 := tc.proposer("B")
	b2 := Ballot(2, 2)
	prep := p2.Prepare(ctx, "g", 0, b2, true)
	if !prep.Quorum() {
		t.Fatalf("p2 prepare: %+v", prep)
	}
	var best Vote
	best.Ballot = NilBallot
	for _, v := range prep.Votes {
		if !v.IsNull() && v.Ballot > best.Ballot {
			best = v
		}
	}
	if best.IsNull() || string(best.Value) != "first" {
		t.Fatalf("p2 must discover the voted value, votes = %+v", prep.Votes)
	}
}

func TestProposerRefusedPrepareReportsHigherBallot(t *testing.T) {
	tc := newTestCluster(t, "A", "B", "C")
	ctx := context.Background()

	high := Ballot(9, 9)
	tc.proposer("A").Prepare(ctx, "g", 0, high, true)

	low := Ballot(1, 1)
	prep := tc.proposer("B").Prepare(ctx, "g", 0, low, true)
	if prep.Quorum() {
		t.Fatalf("low prepare acked: %+v", prep)
	}
	if prep.MaxSeen != high {
		t.Fatalf("MaxSeen = %d, want %d", prep.MaxSeen, high)
	}
	if next := NextBallot(prep.MaxSeen, 1); next <= high {
		t.Fatalf("retry ballot %d not above %d", next, high)
	}
}

func TestProposerToleratesMinorityDown(t *testing.T) {
	tc := newTestCluster(t, "A", "B", "C")
	tc.sim.SetDown("C", true)
	p := tc.proposer("A")
	ctx := context.Background()
	b := Ballot(1, 1)

	prep := p.Prepare(ctx, "g", 0, b, true)
	if !prep.Quorum() || prep.Acks != 2 {
		t.Fatalf("prepare with 1 of 3 down: %+v", prep)
	}
	if acc := p.Accept(ctx, "g", 0, b, []byte("v")); !acc.Quorum() {
		t.Fatalf("accept with 1 of 3 down: %+v", acc)
	}
}

func TestProposerMajorityDownCannotProceed(t *testing.T) {
	tc := newTestCluster(t, "A", "B", "C")
	tc.sim.SetDown("B", true)
	tc.sim.SetDown("C", true)
	p := tc.proposer("A")
	p.Timeout = 50 * time.Millisecond

	start := time.Now()
	prep := p.Prepare(context.Background(), "g", 0, Ballot(1, 1), true)
	if prep.Quorum() {
		t.Fatalf("quorum with majority down: %+v", prep)
	}
	if prep.Acks != 1 {
		t.Fatalf("acks = %d, want 1 (self only)", prep.Acks)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("prepare did not respect phase timeout")
	}
}

func TestProposerAcceptStopsAtMajority(t *testing.T) {
	tc := newTestCluster(t, "A", "B", "C", "D", "E")
	p := tc.proposer("A")
	ctx := context.Background()
	b := Ballot(1, 1)
	p.Prepare(ctx, "g", 0, b, true)
	acc := p.Accept(ctx, "g", 0, b, []byte("v"))
	if !acc.Quorum() {
		t.Fatalf("accept: %+v", acc)
	}
	if acc.Acks < Majority(5) {
		t.Fatalf("acks = %d, below majority", acc.Acks)
	}
}

// TestProposerSafetyUnderContention runs many concurrent proposers on one
// position and verifies at most one value is chosen: every proposer that
// believes it decided must have decided the same value.
func TestProposerSafetyUnderContention(t *testing.T) {
	tc := newTestCluster(t, "A", "B", "C")
	ctx := context.Background()

	const proposers = 8
	var mu sync.Mutex
	decided := map[string]bool{}
	var wg sync.WaitGroup
	for i := 0; i < proposers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dc := []string{"A", "B", "C"}[i%3]
			p := tc.proposer(dc)
			p.Timeout = 300 * time.Millisecond
			myVal := []byte{byte('a' + i)}
			ballot := Ballot(1, i+1)
			for attempt := 0; attempt < 20; attempt++ {
				prep := p.Prepare(ctx, "g", 0, ballot, true)
				if !prep.Quorum() {
					ballot = NextBallot(prep.MaxSeen, i+1)
					continue
				}
				// Paxos rule: adopt the highest-ballot vote if any exist.
				val := myVal
				best := Vote{Ballot: NilBallot}
				for _, v := range prep.Votes {
					if !v.IsNull() && v.Ballot > best.Ballot {
						best = v
					}
				}
				if !best.IsNull() {
					val = best.Value
				}
				acc := p.Accept(ctx, "g", 0, ballot, val)
				if acc.Quorum() {
					mu.Lock()
					decided[string(val)] = true
					mu.Unlock()
					return
				}
				ballot = NextBallot(acc.MaxSeen, i+1)
			}
		}(i)
	}
	wg.Wait()
	if len(decided) > 1 {
		t.Fatalf("multiple values decided: %v", decided)
	}
	if len(decided) == 0 {
		t.Fatal("no proposer decided despite live majority")
	}
}
