package paxos

import (
	"testing"
	"testing/quick"
)

func TestBallotComposition(t *testing.T) {
	b := Ballot(3, 41)
	if got := Round(b); got != 3 {
		t.Fatalf("Round(%d) = %d, want 3", b, got)
	}
	if Ballot(1, 0) <= FastBallot {
		t.Fatal("round-1 ballot must exceed FastBallot")
	}
	if Round(FastBallot) != 0 || Round(NilBallot) != 0 {
		t.Fatal("special ballots must be round 0")
	}
}

func TestBallotPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("round 0", func() { Ballot(0, 1) })
	mustPanic("negative client", func() { Ballot(1, -1) })
	mustPanic("client too large", func() { Ballot(1, MaxClients) })
}

func TestNextBallot(t *testing.T) {
	cases := []struct {
		seen     int64
		clientID int
	}{
		{NilBallot, 0},
		{FastBallot, 5},
		{Ballot(1, 3), 3},
		{Ballot(1, 3), 2},   // lower client ID needs a higher round
		{Ballot(7, 100), 1}, //
	}
	for _, c := range cases {
		got := NextBallot(c.seen, c.clientID)
		if got <= c.seen {
			t.Errorf("NextBallot(%d,%d) = %d, not greater", c.seen, c.clientID, got)
		}
		if got%MaxClients != int64(c.clientID) {
			t.Errorf("NextBallot(%d,%d) = %d, wrong owner", c.seen, c.clientID, got)
		}
	}
}

func TestMajority(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 7: 4}
	for d, want := range cases {
		if got := Majority(d); got != want {
			t.Errorf("Majority(%d) = %d, want %d", d, got, want)
		}
	}
}

// TestPropNextBallotGreaterAndOwned: for any seen ballot and client, the next
// ballot is strictly greater, owned by the client, and two distinct clients
// never generate the same ballot.
func TestPropNextBallotGreaterAndOwned(t *testing.T) {
	f := func(seenRaw uint32, c1Raw, c2Raw uint16) bool {
		seen := int64(seenRaw)
		c1 := int(c1Raw) % MaxClients
		c2 := int(c2Raw) % MaxClients
		b1 := NextBallot(seen, c1)
		b2 := NextBallot(seen, c2)
		if b1 <= seen || b2 <= seen {
			return false
		}
		if c1 != c2 && b1 == b2 {
			return false
		}
		return b1%MaxClients == int64(c1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
