package paxos

import "fmt"

// MaxClients bounds the number of distinct proposer identities. Ballots
// encode the client ID in their low bits so that proposal numbers are
// globally unique ("The proposal number must be unique and should be larger
// than any previously seen proposal number", §4.1).
const MaxClients = 1 << 16

// FastBallot is the reserved ballot number for the leader fast path (§4.1
// "Paxos Optimizations"): the first client to claim a position at its leader
// may skip prepare and send accept directly with this ballot. Acceptors take
// a FastBallot accept only if they have neither promised nor voted.
const FastBallot int64 = 0

// NilBallot represents "no ballot": an acceptor that never promised reports
// NilBallot as its promise, and a vote with ballot NilBallot is a null vote.
const NilBallot int64 = -1

// Ballot composes a proposal number from a round counter and a client ID.
// Rounds start at 1; round 0 is reserved for the fast path.
func Ballot(round int64, clientID int) int64 {
	if round < 1 {
		panic(fmt.Sprintf("paxos: round %d < 1", round))
	}
	if clientID < 0 || clientID >= MaxClients {
		panic(fmt.Sprintf("paxos: client ID %d out of range", clientID))
	}
	return round*MaxClients + int64(clientID)
}

// Round extracts the round counter from a ballot.
func Round(ballot int64) int64 {
	if ballot <= 0 {
		return 0
	}
	return ballot / MaxClients
}

// NextBallot returns the smallest ballot owned by clientID that is strictly
// greater than seen. It implements nextPropNumber from Algorithm 2.
func NextBallot(seen int64, clientID int) int64 {
	round := Round(seen) + 1
	b := Ballot(round, clientID)
	if b <= seen {
		b = Ballot(round+1, clientID)
	}
	return b
}

// Majority returns the minimum number of acceptors that constitutes a
// majority of d datacenters: M = floor(d/2)+1 (paper §5).
func Majority(d int) int { return d/2 + 1 }
