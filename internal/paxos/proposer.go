package paxos

import (
	"context"
	"sync"
	"time"

	"paxoscp/internal/network"
)

// Vote is one acceptor's last vote as reported in a prepare response.
type Vote struct {
	// DC is the responding datacenter.
	DC string
	// Ballot is the ballot the vote was cast at; NilBallot means the
	// acceptor had not voted (a null vote).
	Ballot int64
	// Value is the voted value (encoded wal.Entry), nil for a null vote.
	Value []byte
}

// IsNull reports whether the vote is a null vote.
func (v Vote) IsNull() bool { return v.Ballot == NilBallot }

// PrepareOutcome aggregates the responses of one prepare round across all
// datacenters.
type PrepareOutcome struct {
	// D is the total number of datacenters messaged.
	D int
	// Acks counts successful promises.
	Acks int
	// Votes holds the last votes of the acceptors that promised (one per
	// acking datacenter, null votes included).
	Votes []Vote
	// MaxSeen is the highest ballot observed in any response (granted or
	// refused); the proposer's next proposal number must exceed it.
	MaxSeen int64
}

// Quorum reports whether a majority of datacenters promised.
func (o PrepareOutcome) Quorum() bool { return o.Acks >= Majority(o.D) }

// AcceptOutcome aggregates the responses of one accept round.
type AcceptOutcome struct {
	D       int
	Acks    int
	MaxSeen int64
	// Refused and Unreachable are filled by AcceptUnanimous only: how many
	// acceptors refused the vote (a per-position race — the fast path is
	// still healthy) versus how many sends failed or went unanswered (a
	// peer is unreachable — unanimity is impossible until it returns).
	Refused     int
	Unreachable int
}

// Quorum reports whether a majority of datacenters voted for the proposal.
func (o AcceptOutcome) Quorum() bool { return o.Acks >= Majority(o.D) }

// Unanimous reports whether every datacenter voted for the proposal. A
// fast-ballot (prepare-skipping) decision is only taken at unanimity: with a
// majority-sized fast quorum, two fast proposers racing one position can
// each assemble a majority view containing both ballot-0 votes, and
// collision recovery cannot tell which value (if either) was chosen. With a
// unanimous fast quorum, a fast-chosen value appears in every majority view
// with no competing ballot-0 vote, so recovery is unambiguous — the Fast
// Paxos fast-quorum condition instantiated for our acceptor counts.
func (o AcceptOutcome) Unanimous() bool { return o.D > 0 && o.Acks == o.D }

// Proposer drives the messaging of Algorithm 2 for a Transaction Client: it
// fans each phase out to every datacenter in parallel ("Loop iterations may
// be executed in parallel") and tallies responses until the timeout.
type Proposer struct {
	// Transport connects to every datacenter's Transaction Service.
	Transport network.Transport
	// Timeout bounds each phase's message round (the paper's 2 s loss
	// detection timeout, scaled in experiments). Zero means
	// network.DefaultTimeout.
	Timeout time.Duration
}

func (p *Proposer) timeout() time.Duration {
	if p.Timeout > 0 {
		return p.Timeout
	}
	return network.DefaultTimeout
}

// broadcast sends req to every datacenter in parallel and streams responses
// to collect until all datacenters answered or the phase timeout expires.
// collect returns true to stop early (e.g. majority reached and waiting
// longer cannot change the decision).
func (p *Proposer) broadcast(ctx context.Context, req network.Message, collect func(dc string, resp network.Message, err error) (stop bool)) {
	ctx, cancel := context.WithTimeout(ctx, p.timeout())
	defer cancel()

	dcs := p.Transport.Peers()
	type reply struct {
		dc   string
		resp network.Message
		err  error
	}
	ch := make(chan reply, len(dcs))
	var wg sync.WaitGroup
	for _, dc := range dcs {
		wg.Add(1)
		go func(dc string) {
			defer wg.Done()
			resp, err := p.Transport.Send(ctx, dc, req)
			ch <- reply{dc, resp, err}
		}(dc)
	}
	go func() { wg.Wait(); close(ch) }()

	for r := range ch {
		if collect(r.dc, r.resp, r.err) {
			cancel()
			// Drain remaining replies so senders never block.
			go func() {
				for range ch {
				}
			}()
			return
		}
	}
}

// Prepare runs one prepare phase (Algorithm 2 lines 24–41) with the given
// ballot. When waitAll is false the phase ends as soon as a majority has
// promised ("if ackCount > D/2 then keepTrying ← false"); when true it
// keeps collecting until every datacenter answered or the timeout fires —
// Paxos-CP benefits from extra votes ("In practice, when a Transaction
// Client sends a prepare message, it will receive responses from more than
// a simple majority", §5).
func (p *Proposer) Prepare(ctx context.Context, group string, pos int64, ballot int64, waitAll bool) PrepareOutcome {
	req := network.Message{Kind: network.KindPrepare, Group: group, Pos: pos, Ballot: ballot}
	out := PrepareOutcome{D: len(p.Transport.Peers()), MaxSeen: ballot}
	maj := Majority(out.D)
	p.broadcast(ctx, req, func(dc string, resp network.Message, err error) bool {
		if err != nil {
			return false
		}
		if resp.Ballot > out.MaxSeen {
			out.MaxSeen = resp.Ballot
		}
		if resp.OK {
			out.Acks++
			v := Vote{DC: dc, Ballot: resp.TS, Value: resp.Payload}
			if len(resp.Payload) == 0 && resp.TS < 0 {
				v.Value = nil
			}
			out.Votes = append(out.Votes, v)
		}
		return !waitAll && out.Acks >= maj
	})
	return out
}

// Accept runs one accept phase (Algorithm 2 lines 42–57), proposing value at
// the given ballot. It stops as soon as a majority votes — or as soon as
// enough refusals arrive that a majority has become impossible, so a doomed
// round does not sit out the timeout.
func (p *Proposer) Accept(ctx context.Context, group string, pos int64, ballot int64, value []byte) AcceptOutcome {
	req := network.Message{Kind: network.KindAccept, Group: group, Pos: pos, Ballot: ballot, Payload: value}
	out := AcceptOutcome{D: len(p.Transport.Peers()), MaxSeen: ballot}
	maj := Majority(out.D)
	refused := 0
	p.broadcast(ctx, req, func(dc string, resp network.Message, err error) bool {
		if err != nil {
			return false
		}
		if resp.Ballot > out.MaxSeen {
			out.MaxSeen = resp.Ballot
		}
		if resp.OK {
			out.Acks++
		} else {
			refused++
		}
		return out.Acks >= maj || out.Acks+(out.D-out.Acks-refused) < maj
	})
	return out
}

// AcceptUnanimous runs an accept phase that aims for unanimity (the fast-
// ballot path): it stops as soon as every datacenter voted, or as soon as a
// single refusal or send failure makes unanimity impossible — a doomed fast
// round must fall back to classic Paxos quickly, not sit out the timeout.
func (p *Proposer) AcceptUnanimous(ctx context.Context, group string, pos int64, ballot int64, value []byte) AcceptOutcome {
	req := network.Message{Kind: network.KindAccept, Group: group, Pos: pos, Ballot: ballot, Payload: value}
	out := AcceptOutcome{D: len(p.Transport.Peers()), MaxSeen: ballot}
	p.broadcast(ctx, req, func(dc string, resp network.Message, err error) bool {
		if err != nil {
			out.Unreachable++
			return true // unanimity impossible
		}
		if resp.Ballot > out.MaxSeen {
			out.MaxSeen = resp.Ballot
		}
		if resp.OK {
			out.Acks++
		} else {
			out.Refused++
		}
		return out.Refused+out.Unreachable > 0 || out.Acks == out.D
	})
	// A round that timed out with neither a refusal nor a send error has
	// silent peers: count them unreachable (unanimity needs every
	// acceptor). When the round stopped early on a refusal, the missing
	// peers were simply not waited for — they are not known unreachable.
	if out.Refused == 0 && out.Unreachable == 0 && !out.Unanimous() {
		out.Unreachable = out.D - out.Acks
	}
	return out
}

// Apply runs the apply phase (Algorithm 2 lines 58–61): it tells every
// datacenter the decided value. Apply is fire-and-forget per the protocol —
// a datacenter that misses it learns the value later via catch-up (§4.1) —
// so the proposer returns once a majority including the proposer's own
// datacenter has stored the entry (waiting for the local ack keeps the
// client's next read position fresh; waiting for the majority makes the log
// entry widely fetchable). It never waits out the timeout for unreachable
// minorities.
func (p *Proposer) Apply(ctx context.Context, group string, pos int64, ballot int64, value []byte) int {
	req := network.Message{Kind: network.KindApply, Group: group, Pos: pos, Ballot: ballot, Payload: value}
	acks := 0
	responses := 0
	localAcked := false
	local := p.Transport.Local()
	d := len(p.Transport.Peers())
	maj := Majority(d)
	p.broadcast(ctx, req, func(dc string, resp network.Message, err error) bool {
		responses++
		if err == nil && resp.OK {
			acks++
			if dc == local {
				localAcked = true
			}
		}
		return responses == d || (acks >= maj && localAcked)
	})
	return acks
}
