package replog

import (
	"testing"
	"time"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/wal"
)

// TestPinReadsClampsCompact: an unexpired read pin holds the effective
// compaction horizon at the pin, so versions a pinned scan can still read
// survive GC; once the pin's TTL expires, the next Compact moves past it.
func TestPinReadsClampsCompact(t *testing.T) {
	l, store := openLog(t)
	for pos := int64(1); pos <= 8; pos++ {
		appendApplied(t, l, pos, testEntry("t"+string(rune('0'+pos)), pos-1, map[string]string{"k": "v"}))
	}

	l.PinReads(3, 40*time.Millisecond)
	got, err := l.Compact(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("effective horizon = %d with pin at 3, want 3", got)
	}
	if c := l.CompactedTo(); c != 3 {
		t.Fatalf("CompactedTo = %d, want 3", c)
	}
	// The pinned position itself must still resolve: GC at keepFrom=3 keeps
	// the version visible at 3.
	if _, _, err := store.Read(DataKey("g", "k"), 3); err != nil {
		t.Fatalf("read at pinned position after compact: %v", err)
	}

	// Past the TTL the pin no longer holds the horizon.
	time.Sleep(80 * time.Millisecond)
	if got, err = l.Compact(8, nil); err != nil || got != 8 {
		t.Fatalf("after pin expiry: horizon = %d err=%v, want 8", got, err)
	}
}

// TestPinReadsExtendsNotShrinks: re-pinning a position with a shorter TTL
// must not cut an existing longer pin short.
func TestPinReadsExtendsNotShrinks(t *testing.T) {
	l, _ := openLog(t)
	for pos := int64(1); pos <= 4; pos++ {
		appendApplied(t, l, pos, testEntry("p"+string(rune('0'+pos)), pos-1, map[string]string{"k": "v"}))
	}
	l.PinReads(2, time.Hour)
	l.PinReads(2, -time.Second) // stale extension attempt
	if got, err := l.Compact(4, nil); err != nil || got != 2 {
		t.Fatalf("horizon = %d err=%v, want 2 (hour-long pin must win)", got, err)
	}
}

// TestScanFenceAtIsPositionAware: the fence derived at a position below a
// handoff ignores it (the scan serves the range from the source), while the
// fence at or above it refuses the departed keys and reports the
// destination hint; the inbound side mirrors this for prepare/in.
func TestScanFenceAtIsPositionAware(t *testing.T) {
	store := kvstore.New()
	l := Open(store, "g0")
	t.Cleanup(l.Close)

	moved, groups := movingKey(t, "g0")
	stayed := stayingKey(t, "g0")

	appendApplied(t, l, 1, testEntry("t1", 0, map[string]string{moved: "x", stayed: "y"}))
	appendApplied(t, l, 2, wal.Encode(wal.NewHandoff(wal.HandoffOut, "g0", "g2", groups)))

	pre := l.ScanFenceAt(1)
	if pre.Active() {
		t.Fatal("fence at 1 active before any handoff position")
	}
	if _, ok := pre.MovedOut(moved); ok {
		t.Fatalf("fence at 1 refuses %q, but the cutover applied at 2", moved)
	}

	post := l.ScanFenceAt(2)
	if !post.Active() {
		t.Fatal("fence at 2 inactive")
	}
	if to, ok := post.MovedOut(moved); !ok || to != "g2" {
		t.Fatalf("MovedOut(%q) at 2 = (%s, %v), want (g2, true)", moved, to, ok)
	}
	if _, ok := post.MovedOut(stayed); ok {
		t.Fatalf("staying key %q fenced", stayed)
	}
	if d := post.Dests(); len(d) != 1 || d[0] != "g2" {
		t.Fatalf("Dests at 2 = %v, want [g2]", d)
	}
}

// TestScanFenceInboundSide: on the destination, a key is pending between
// Prepare and In, and marked moved-in from In on — each evaluated at the
// fence position, not the watermark.
func TestScanFenceInboundSide(t *testing.T) {
	store := kvstore.New()
	l := Open(store, "g2")
	t.Cleanup(l.Close)

	moved, groups := movingKey(t, "g0")

	appendApplied(t, l, 1, wal.Encode(wal.NewHandoff(wal.HandoffPrepare, "g0", "g2", groups)))
	appendApplied(t, l, 2, wal.Encode(wal.NewHandoff(wal.HandoffIn, "g0", "g2", groups)))

	mid := l.ScanFenceAt(1)
	if !mid.InboundPending(moved) || !mid.HasPending() {
		t.Fatalf("key %q not pending at 1 (between Prepare and In)", moved)
	}
	if mid.MovedIn(moved) {
		t.Fatalf("key %q moved-in at 1, before HandoffIn applied", moved)
	}

	open := l.ScanFenceAt(2)
	if open.InboundPending(moved) || open.HasPending() {
		t.Fatalf("key %q still pending at 2, after HandoffIn", moved)
	}
	if !open.MovedIn(moved) {
		t.Fatalf("key %q not marked moved-in at 2", moved)
	}
}

// TestScanFenceTombstoneGatesScavenge: the horizon-aware tombstone check —
// a fence below the tombstone position must not clear the range for
// wholesale scavenge.
func TestScanFenceTombstoneGatesScavenge(t *testing.T) {
	store := kvstore.New()
	l := Open(store, "g0")
	t.Cleanup(l.Close)

	moved, groups := movingKey(t, "g0")
	appendApplied(t, l, 1, wal.Encode(wal.NewHandoff(wal.HandoffOut, "g0", "g2", groups)))
	appendApplied(t, l, 2, wal.Encode(wal.NewHandoff(wal.HandoffTombstone, "g0", "g2", groups)))

	pre := l.ScanFenceAt(1)
	if pre.Tombstoned(moved) {
		t.Fatal("fence at 1 tombstones a range whose tombstone applied at 2")
	}
	if f := l.ScanFenceAt(2); !f.Tombstoned(moved) {
		t.Fatal("fence at 2 misses the applied tombstone")
	}
}
