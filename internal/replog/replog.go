package replog

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/wal"
)

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("replog: log closed")

// cacheLimit bounds the decoded-entry cache per group. Entries this far
// behind the newest cached position are evicted; compaction evicts eagerly.
const cacheLimit = 4096

// Log is one group's replicated log at one datacenter. All methods are safe
// for concurrent use. Construct with Open.
type Log struct {
	group string
	store *kvstore.Store

	// compactMu serializes compaction passes.
	compactMu sync.Mutex

	// ioMu orders bulk store mutations against watermark movement: the
	// apply goroutine's batch+meta write and snapshot installation.
	ioMu sync.Mutex
	// batch is drain's reusable write buffer (guarded by ioMu). The Value
	// maps inside are handed to the store (ApplyBatch takes ownership);
	// only the slice header is reused.
	batch []kvstore.BatchWrite

	// mu guards the fields below. Critical sections are short; the apply
	// goroutine does its store I/O outside mu.
	mu         sync.Mutex
	applied    int64               // contiguously applied watermark
	decidedMax int64               // highest position known decided locally
	compacted  int64               // compaction horizon
	pending    map[int64]wal.Entry // decided but not yet applied (pos > applied)
	cache      map[int64]wal.Entry // decoded entries (read-only, shared)
	cacheTop   int64               // highest cached position (eviction anchor)
	pins       map[int64]time.Time // read-pin position -> expiry (PinReads)
	applyErr   error               // sticky apply failure; surfaced by waiters
	waitCh     chan struct{}       // closed+replaced on every watermark advance
	notifyCh   chan struct{}       // wakes the apply goroutine (capacity 1)
	stopCh     chan struct{}
	stopOnce   sync.Once

	// Apply scheduling. A standalone Log (Open) runs a dedicated apply
	// goroutine; a Set-owned Log shares the Set's applyPool, with sched
	// marking whether the log is already queued on its shard's worker.
	pool  *applyPool
	shard uint32
	sched atomic.Bool

	// Epoch fencing state (DESIGN.md §11): the prevailing master epoch at
	// the applied watermark, maintained by drain as claim entries apply in
	// log order, durable in the meta row. renewedAt is the local wall-clock
	// time the lease was last renewed — by a claim entry for the prevailing
	// epoch or by any transaction entry stamped with it — and is volatile:
	// a restart resets it to the Open time, which only delays takeover.
	epoch     EpochState
	renewedAt time.Time
	voided    map[int64]bool // positions fenced at apply (entries that committed nothing)

	// Live-migration state (DESIGN.md §15), maintained by drain exactly like
	// the epoch state: mig is the derived view of every applied handoff
	// entry (durable in the meta row), and movedTxns records transactions
	// voided by the migration rules M1/M2 — pos -> txn ID -> destination
	// group ("" = inbound-unopened here) — so the pipeline can answer them
	// with the retryable moved/migrating verdicts instead of commits.
	mig       migState
	movedTxns map[int64]map[string]string
}

// EpochState is a group's prevailing master epoch: the highest epoch any
// applied claim entry has established, the datacenter holding it, and the
// log position of the establishing claim. The zero value means no master has
// ever claimed the group.
type EpochState struct {
	Epoch  int64
	Master string
	Pos    int64
}

// Open returns the Log for (store, group), rebuilding its in-memory state
// from the store's rows: the watermark and compaction horizon from the meta
// row, and any decided-but-unapplied entries (written durably before a
// restart) into the pending set, which the apply goroutine then drains.
func Open(store *kvstore.Store, group string) *Log {
	return open(store, group, nil)
}

// open builds the Log. With a nil pool the log runs its own apply goroutine;
// otherwise apply work is scheduled on the pool's shard worker for the group.
func open(store *kvstore.Store, group string, pool *applyPool) *Log {
	l := &Log{
		group:     group,
		store:     store,
		pool:      pool,
		shard:     GroupShard(group),
		pending:   make(map[int64]wal.Entry),
		cache:     make(map[int64]wal.Entry),
		pins:      make(map[int64]time.Time),
		voided:    make(map[int64]bool),
		movedTxns: make(map[int64]map[string]string),
		waitCh:    make(chan struct{}),
		notifyCh:  make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
		renewedAt: time.Now(),
	}
	if v, _, err := store.Read(MetaKey(group), kvstore.Latest); err == nil {
		l.applied, _ = strconv.ParseInt(v["last"], 10, 64)
		l.compacted, _ = strconv.ParseInt(v["compacted"], 10, 64)
		l.epoch.Epoch, _ = strconv.ParseInt(v["epoch"], 10, 64)
		l.epoch.Pos, _ = strconv.ParseInt(v["epochpos"], 10, 64)
		l.epoch.Master = v["master"]
		l.mig.rebuild(group, decodeMigrations(v["migrations"]))
	}
	l.decidedMax = l.applied
	// Recover decided entries above the watermark into the pending set.
	prefix := LogPrefix(group)
	for _, key := range store.KeysWithPrefix(prefix) {
		pos, err := strconv.ParseInt(key[len(prefix):], 10, 64)
		if err != nil || pos <= l.applied {
			continue
		}
		raw, _, err := store.Read(key, kvstore.Latest)
		if err != nil {
			continue
		}
		if entry, err := wal.Decode([]byte(raw["entry"])); err == nil {
			l.pending[pos] = entry
			if pos > l.decidedMax {
				l.decidedMax = pos
			}
		}
	}
	// Drain recovered entries synchronously so a restarted replica surfaces
	// a fully advanced watermark before it serves its first request.
	if len(l.pending) > 0 {
		l.drain()
	}
	if l.pool == nil {
		go l.run()
	}
	return l
}

// Group returns the transaction group this log belongs to.
func (l *Log) Group() string { return l.group }

// Close stops the apply goroutine and fails pending and future waiters with
// ErrClosed. Durable state is untouched; Open rebuilds from it.
func (l *Log) Close() {
	l.stopOnce.Do(func() { close(l.stopCh) })
}

// Applied returns the contiguously-applied watermark: every log entry at or
// below it has had its writes applied to the data rows. 0 means empty.
func (l *Log) Applied() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.applied
}

// DecidedMax returns the highest position known decided locally: applied,
// pending behind a gap, or learned through an apply message — 0 means none.
// The master's pipelined submit path assigns fresh positions above it so a
// new entry is never placed below a decided one it has not absorbed
// (DESIGN.md §8, invariant W1).
func (l *Log) DecidedMax() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.decidedMax
}

// CompactedTo returns the compaction horizon: log entries strictly below it
// have been scavenged locally. 0 means never compacted.
func (l *Log) CompactedTo() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compacted
}

// Epoch returns the prevailing master epoch state at the applied watermark:
// the highest epoch established by an applied claim entry. The zero value
// means the group has never had a fenced master.
func (l *Log) Epoch() EpochState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// LeaseState returns the prevailing epoch state together with the local
// wall-clock time the holder's lease was last observed renewed (a claim or
// renewal entry applying, or the master's own epoch-stamped traffic). The
// lease is a liveness mechanism only — safety comes from fencing — so the
// timestamp is deliberately local and volatile: a restarted replica counts
// from its Open time, which can only delay a takeover, never unfence one.
func (l *Log) LeaseState() (EpochState, time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch, l.renewedAt
}

// Voided reports whether the entry at pos was fenced when it applied: it was
// stamped with a superseded epoch (or was a losing claim) and committed
// nothing (DESIGN.md §11, invariant F2). Only meaningful for positions at or
// below the applied watermark; the record is bounded and positions far
// behind the watermark are eventually forgotten.
func (l *Log) Voided(pos int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.voided[pos]
}

// Append records the decided entry for pos: the entry bytes are validated,
// written durably to the log row (idempotently — duplicated apply messages
// and replays are harmless, a different value for a decided position is
// refused), and queued for the apply goroutine. It returns the contiguous
// decided horizon — the highest position h such that every position in
// (Applied(), h] is decided locally; the watermark will reach h without
// further appends. When pos is above a gap, h < pos and the caller must
// catch the gap up before waiting on pos.
func (l *Log) Append(pos int64, entryBytes []byte) (int64, error) {
	if pos < 1 {
		return 0, fmt.Errorf("replog: append at invalid position %d", pos)
	}
	entry, err := wal.Decode(entryBytes)
	if err != nil {
		return 0, fmt.Errorf("replog: entry %s/%d: %w", l.group, pos, err)
	}
	if err := l.store.WriteIdempotent(LogKey(l.group, pos), kvstore.Value{"entry": string(entryBytes)}, 0); err != nil {
		return 0, fmt.Errorf("replog: store entry %s/%d: %w", l.group, pos, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.applyErr; err != nil {
		return 0, err
	}
	if pos > l.decidedMax {
		l.decidedMax = pos
	}
	if pos > l.applied {
		if _, ok := l.pending[pos]; !ok {
			l.pending[pos] = entry
		}
	}
	h := l.applied
	for {
		if _, ok := l.pending[h+1]; !ok {
			break
		}
		h++
	}
	l.notify()
	return h, nil
}

// WaitApplied blocks until the watermark reaches pos, ctx is done, or the
// log fails or closes. The caller is responsible for pos being reachable
// (decided locally or being caught up); use the horizon Append returns.
func (l *Log) WaitApplied(ctx context.Context, pos int64) error {
	for {
		l.mu.Lock()
		if l.applied >= pos {
			l.mu.Unlock()
			return nil
		}
		if err := l.applyErr; err != nil {
			l.mu.Unlock()
			return err
		}
		ch := l.waitCh
		l.mu.Unlock()
		select {
		case <-ch:
		case <-l.stopCh:
			return ErrClosed
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Has reports whether the decided entry at pos is known locally (applied,
// pending, or durable in the store), without decoding it.
func (l *Log) Has(pos int64) bool {
	l.mu.Lock()
	_, inPending := l.pending[pos]
	_, inCache := l.cache[pos]
	l.mu.Unlock()
	if inPending || inCache {
		return true
	}
	_, _, err := l.store.Read(LogKey(l.group, pos), kvstore.Latest)
	return err == nil
}

// Entry returns the decided entry at pos, if known locally. The returned
// entry may be shared with the cache and other callers: treat it as
// read-only (Clone before mutating). Serving from the cache avoids
// re-decoding entry bytes on catch-up, leader computation, and the master's
// promotion-conflict checks.
func (l *Log) Entry(pos int64) (wal.Entry, bool) {
	l.mu.Lock()
	if e, ok := l.pending[pos]; ok {
		l.mu.Unlock()
		return e, true
	}
	if e, ok := l.cache[pos]; ok {
		l.mu.Unlock()
		return e, true
	}
	l.mu.Unlock()
	raw, _, err := l.store.Read(LogKey(l.group, pos), kvstore.Latest)
	if err != nil {
		return wal.Entry{}, false
	}
	entry, err := wal.Decode([]byte(raw["entry"]))
	if err != nil {
		return wal.Entry{}, false
	}
	l.mu.Lock()
	l.cacheLocked(pos, entry)
	l.mu.Unlock()
	return entry, true
}

// EntryBytes returns the encoded decided entry at pos, for serving catch-up
// fetches.
func (l *Log) EntryBytes(pos int64) ([]byte, bool) {
	raw, _, err := l.store.Read(LogKey(l.group, pos), kvstore.Latest)
	if err != nil {
		return nil, false
	}
	return []byte(raw["entry"]), true
}

// Snapshot returns every decided log entry known locally, keyed by position.
// Entries are deep copies; intended for the history checker and tooling.
func (l *Log) Snapshot() map[int64]wal.Entry {
	out := make(map[int64]wal.Entry)
	prefix := LogPrefix(l.group)
	for _, key := range l.store.KeysWithPrefix(prefix) {
		pos, err := strconv.ParseInt(key[len(prefix):], 10, 64)
		if err != nil {
			continue
		}
		if entry, ok := l.Entry(pos); ok {
			out[pos] = entry.Clone()
		}
	}
	l.mu.Lock()
	for pos, entry := range l.pending {
		if _, ok := out[pos]; !ok {
			out[pos] = entry.Clone()
		}
	}
	l.mu.Unlock()
	return out
}

// ReadStable runs fn with compaction excluded, passing the applied
// watermark and the prevailing epoch state at that watermark (captured
// atomically — drain advances both under one critical section, so the pair
// is consistent). fn can read every data row at that horizon without a
// concurrent Compact scavenging the versions it is reading (snapshot
// building uses this; the watermark itself may still advance, which only
// adds newer versions).
func (l *Log) ReadStable(fn func(horizon int64, epoch EpochState) error) error {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	l.mu.Lock()
	horizon, epoch := l.applied, l.epoch
	l.mu.Unlock()
	return fn(horizon, epoch)
}

// Compact scavenges log rows strictly below horizon and records the new
// compaction horizon in the meta row. The horizon is clamped to the applied
// watermark. scavenge, when non-nil, is called with the half-open position
// range [from, to) being compacted so the caller can drop its own
// per-position rows (Paxos acceptor state, leader claims) and GC data
// versions below to. Compact returns the effective horizon.
//
// Compact holds ioMu for its whole run so it cannot interleave with a
// snapshot installation: without that, an install could advance the horizon
// past ours between our clamp and our meta write, and we would regress the
// durable horizon below positions whose rows are already scavenged.
func (l *Log) Compact(horizon int64, scavenge func(from, to int64)) (int64, error) {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	l.ioMu.Lock()
	defer l.ioMu.Unlock()

	l.mu.Lock()
	if horizon > l.applied {
		horizon = l.applied
	}
	// Unexpired read pins hold the horizon at or below their position: a GC
	// at keepFrom == pin keeps the version visible at the pin, so clamping
	// to the pin itself (not below it) is exactly tight (see PinReads).
	now := time.Now()
	for pos, exp := range l.pins {
		if exp.Before(now) {
			delete(l.pins, pos)
			continue
		}
		if horizon > pos {
			horizon = pos
		}
	}
	prev := l.compacted
	l.mu.Unlock()
	if horizon <= prev {
		return prev, nil
	}
	if scavenge != nil {
		scavenge(prev+1, horizon)
	}
	for pos := prev + 1; pos < horizon; pos++ {
		l.store.Delete(LogKey(l.group, pos))
	}
	err := l.store.Update(MetaKey(l.group), func(cur kvstore.Value) (kvstore.Value, error) {
		if cur == nil {
			cur = kvstore.Value{}
		}
		cur["compacted"] = strconv.FormatInt(horizon, 10)
		return cur, nil
	})
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	if horizon > l.compacted {
		l.compacted = horizon
	}
	for pos := range l.cache {
		if pos < horizon {
			delete(l.cache, pos)
		}
	}
	for pos := range l.voided {
		if pos < horizon {
			delete(l.voided, pos)
		}
	}
	l.mu.Unlock()
	return horizon, nil
}

// InstallSnapshot jumps the watermark and compaction horizon to a peer
// snapshot's, and adopts the snapshot's prevailing epoch state — without it
// a replica restored from a snapshot whose establishing claim entry lies
// below the horizon would never learn the epoch and would mis-apply fenced
// entries above it. The snapshot's migration state is adopted for the same
// reason: a replica restored past the handoff positions must still fence
// departed and inbound ranges (DESIGN.md §15). The caller must have landed
// the snapshot's data rows first (kvstore.ApplyBatch); positions above the
// horizon continue through normal catch-up. A snapshot at or below the
// current watermark is a no-op.
func (l *Log) InstallSnapshot(horizon int64, epoch EpochState, mig MigrationState) error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	if l.applied >= horizon {
		l.mu.Unlock()
		return nil
	}
	if epoch.Epoch < l.epoch.Epoch {
		epoch = l.epoch
	}
	l.mu.Unlock()
	err := l.store.Update(MetaKey(l.group), func(cur kvstore.Value) (kvstore.Value, error) {
		if cur == nil {
			cur = kvstore.Value{}
		}
		cur["last"] = strconv.FormatInt(horizon, 10)
		cur["compacted"] = strconv.FormatInt(horizon, 10)
		if epoch.Epoch > 0 {
			cur["epoch"] = strconv.FormatInt(epoch.Epoch, 10)
			cur["epochpos"] = strconv.FormatInt(epoch.Pos, 10)
			cur["master"] = epoch.Master
		}
		if len(mig.Records) > 0 {
			cur["migrations"] = encodeMigrations(mig.Records)
		}
		return cur, nil
	})
	if err != nil {
		return err
	}
	l.mu.Lock()
	if l.applied < horizon {
		l.applied = horizon
	}
	if l.decidedMax < horizon {
		l.decidedMax = horizon
	}
	if l.compacted < horizon {
		l.compacted = horizon
	}
	if epoch.Epoch > l.epoch.Epoch {
		l.epoch = epoch
		l.renewedAt = time.Now()
	}
	if len(mig.Records) > len(l.mig.records) {
		// The snapshot's record list extends ours (both are prefixes of the
		// same log's handoff sequence); replay the longer one.
		l.mig.rebuild(l.group, mig.Records)
	}
	for pos := range l.pending {
		if pos <= l.applied {
			delete(l.pending, pos)
		}
	}
	l.broadcastLocked()
	l.mu.Unlock()
	l.notify()
	return nil
}

// --- apply goroutine ------------------------------------------------------

func (l *Log) notify() {
	if l.pool != nil {
		l.pool.schedule(l)
		return
	}
	select {
	case l.notifyCh <- struct{}{}:
	default:
	}
}

// stopped reports whether Close has been called.
func (l *Log) stopped() bool {
	select {
	case <-l.stopCh:
		return true
	default:
		return false
	}
}

// broadcastLocked wakes every WaitApplied waiter. Caller holds l.mu.
func (l *Log) broadcastLocked() {
	close(l.waitCh)
	l.waitCh = make(chan struct{})
}

// cacheLocked inserts a decoded entry, keeping the cache bounded: the
// position trailing the newest by cacheLimit is dropped eagerly, and when
// scattered reads (e.g. a full log scan) still push the size over the
// limit, arbitrary entries are evicted — hot positions simply re-enter on
// their next read. Caller holds l.mu.
func (l *Log) cacheLocked(pos int64, entry wal.Entry) {
	if pos > l.cacheTop {
		l.cacheTop = pos
	}
	delete(l.cache, l.cacheTop-cacheLimit)
	if len(l.cache) >= cacheLimit {
		for p := range l.cache {
			delete(l.cache, p)
			if len(l.cache) < cacheLimit {
				break
			}
		}
	}
	l.cache[pos] = entry
}

func (l *Log) run() {
	for {
		select {
		case <-l.stopCh:
			return
		case <-l.notifyCh:
			l.drain()
		}
	}
}

// drain applies every run of contiguous pending positions above the
// watermark: one kvstore.ApplyBatch for all their writes and one meta-row
// update per run, then a single watermark advance that wakes every waiter.
// An apply failure (e.g. store closed during shutdown) is sticky and
// surfaces through WaitApplied and Append.
//
// drain is also where epoch fencing happens (DESIGN.md §11). Entries are
// processed in log order, so the prevailing epoch at each position is a
// deterministic function of the log prefix, identical at every replica:
// a claim entry above the prevailing epoch adopts the new (epoch, master);
// a claim at or below it is void (it lost the claim race logically even
// though it won its Paxos position); and a transaction entry stamped with a
// superseded epoch is void — none of its writes land, anywhere (invariant
// F2). Claim renewals and the master's own stamped traffic both refresh the
// locally observed lease.
func (l *Log) drain() {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	for {
		l.mu.Lock()
		if l.applyErr != nil {
			l.mu.Unlock()
			return
		}
		start := l.applied
		pos := start
		var entries []wal.Entry
		for {
			e, ok := l.pending[pos+1]
			if !ok {
				break
			}
			pos++
			entries = append(entries, e)
		}
		epoch := l.epoch
		mig := l.mig // shallow view; deep-copied before any mutation
		l.mu.Unlock()
		if pos == start {
			return
		}

		renewed := false
		migDirty := false
		var newVoid []int64
		var newMoved map[int64]map[string]string
		writes := l.batch[:0]
		for i, e := range entries {
			p := start + 1 + int64(i)
			if e.IsClaim() {
				switch {
				case e.Epoch > epoch.Epoch:
					epoch = EpochState{Epoch: e.Epoch, Master: e.Master, Pos: p}
					renewed = true
				case e.Epoch == epoch.Epoch && e.Master == epoch.Master:
					renewed = true // lease renewal by the holder
				default:
					newVoid = append(newVoid, p) // superseded claim: void
				}
				continue
			}
			if e.Epoch != 0 && e.Epoch < epoch.Epoch {
				newVoid = append(newVoid, p) // fenced (F2): applies nothing
				continue
			}
			if e.Epoch != 0 && e.Epoch == epoch.Epoch {
				renewed = true // the master's own traffic renews its lease
			}
			if e.IsHandoff() {
				// A handoff entry that passed the epoch fence changes the
				// group's migration state for every later position
				// (DESIGN.md §15). Mutate a private copy: readers keep
				// reading l.mig under mu until this batch commits.
				if !migDirty {
					mig = mig.deepCopy()
					migDirty = true
				}
				h := e.Handoff
				mig.apply(l.group, HandoffRecord{
					Phase: uint8(h.Phase), From: h.From, To: h.To,
					Groups:  append([]string(nil), h.Groups...),
					Version: h.Version, Pos: p,
				})
				continue
			}
			// Transaction entry: apply per transaction so the migration
			// rules M1/M2 can void individual transactions (a combined
			// entry may mix moved and unmoved write sets). Later
			// transactions still overwrite earlier ones within the entry.
			entryWrites := make(map[string]string, 4)
			for _, t := range e.Txns {
				if to, voided := mig.voidsTxn(t); voided {
					if newMoved == nil {
						newMoved = make(map[int64]map[string]string)
					}
					if newMoved[p] == nil {
						newMoved[p] = make(map[string]string)
					}
					newMoved[p][t.ID] = to
					continue
				}
				for k, v := range t.Writes {
					entryWrites[k] = v
				}
			}
			for k, v := range entryWrites {
				writes = append(writes, kvstore.BatchWrite{
					Key: DataKey(l.group, k), Value: kvstore.Value{"v": v}, TS: p,
				})
			}
		}
		l.batch = writes
		err := l.store.ApplyBatch(writes)
		if err == nil {
			err = l.store.Update(MetaKey(l.group), func(cur kvstore.Value) (kvstore.Value, error) {
				if cur == nil {
					cur = kvstore.Value{}
				}
				cur["last"] = strconv.FormatInt(pos, 10)
				if epoch.Epoch > 0 {
					cur["epoch"] = strconv.FormatInt(epoch.Epoch, 10)
					cur["epochpos"] = strconv.FormatInt(epoch.Pos, 10)
					cur["master"] = epoch.Master
				}
				if migDirty {
					cur["migrations"] = encodeMigrations(mig.records)
				}
				return cur, nil
			})
		}

		l.mu.Lock()
		if err != nil {
			l.applyErr = fmt.Errorf("replog: apply %s through %d: %w", l.group, pos, err)
			l.broadcastLocked()
			l.mu.Unlock()
			return
		}
		for p := start + 1; p <= pos; p++ {
			if e, ok := l.pending[p]; ok {
				l.cacheLocked(p, e)
				delete(l.pending, p)
			}
		}
		for _, p := range newVoid {
			l.voided[p] = true
		}
		if len(l.voided) > cacheLimit {
			for p := range l.voided {
				if p <= pos-cacheLimit {
					delete(l.voided, p)
				}
			}
		}
		for p, m := range newMoved {
			l.movedTxns[p] = m
		}
		if len(l.movedTxns) > cacheLimit {
			for p := range l.movedTxns {
				if p <= pos-cacheLimit {
					delete(l.movedTxns, p)
				}
			}
		}
		if migDirty {
			l.mig = mig
		}
		if epoch.Epoch > l.epoch.Epoch {
			l.epoch = epoch
		}
		if renewed {
			l.renewedAt = time.Now()
		}
		if pos > l.applied {
			l.applied = pos
		}
		l.broadcastLocked()
		l.mu.Unlock()
	}
}

// Set owns the Logs of every group served over one store; the Transaction
// Service holds one Set in place of the seed's per-group mutex maps. A Set's
// logs share one applyPool with GOMAXPROCS workers keyed by group, instead
// of one apply goroutine each (DESIGN.md §13).
type Set struct {
	store *kvstore.Store
	pool  *applyPool

	mu     sync.Mutex
	logs   map[string]*Log
	closed bool
}

// NewSet returns an empty Set over store. Logs open lazily on first Get.
func NewSet(store *kvstore.Store) *Set {
	return &Set{
		store: store,
		pool:  newApplyPool(runtime.GOMAXPROCS(0)),
		logs:  make(map[string]*Log),
	}
}

// Get returns group's Log, opening it on first use.
func (s *Set) Get(group string) *Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.logs[group]
	if l == nil {
		l = open(s.store, group, s.pool)
		if s.closed {
			l.Close()
		}
		s.logs[group] = l
	}
	return l
}

// Groups returns the names of every group with an open Log, sorted. This is
// the replica's group-discovery surface: a group exists here once any
// traffic (or an explicit EnsureGroups/open) has touched it.
func (s *Set) Groups() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.logs))
	for g := range s.logs {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Close stops every open Log and then the shared apply pool.
func (s *Set) Close() {
	s.mu.Lock()
	s.closed = true
	for _, l := range s.logs {
		l.Close()
	}
	s.mu.Unlock()
	s.pool.close()
}
