package replog

import "paxoscp/internal/kvstore"

// Key construction for the replicated log's kvstore rows. These run on every
// commit, apply, and read, so they avoid fmt.Sprintf: plain concatenation
// compiles to a single allocation, and position keys go through
// kvstore.PosKey (BenchmarkKeyEncoding guards both).
//
// The layout is the seed's, unchanged, so persisted stores and snapshots
// stay compatible (see DESIGN.md §4):
//
//	data/<group>/<key>   data item versions; version timestamp = log position
//	log/<group>/<pos>    decided log entry (attr "entry" = encoded wal.Entry)
//	meta/<group>         attr "last" = applied watermark, "compacted" = horizon;
//	                     "epoch"/"epochpos"/"master" = prevailing master epoch
//	                     state (DESIGN.md §11; absent before the first claim)

// DataKey is the row holding versions of one data item of a group.
func DataKey(group, key string) string { return "data/" + group + "/" + key }

// DataPrefix is the common prefix of a group's data rows.
func DataPrefix(group string) string { return "data/" + group + "/" }

// LogKey is the row holding the decided log entry at pos.
func LogKey(group string, pos int64) string { return kvstore.PosKey("log/", group, pos) }

// LogPrefix is the common prefix of a group's log rows.
func LogPrefix(group string) string { return "log/" + group + "/" }

// MetaKey is the row holding the group's applied watermark and compaction
// horizon.
func MetaKey(group string) string { return "meta/" + group }
