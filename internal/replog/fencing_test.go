package replog

import (
	"testing"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/wal"
)

// append1 appends an entry and fails the test on error.
func append1(t *testing.T, l *Log, pos int64, e wal.Entry) {
	t.Helper()
	if _, err := l.Append(pos, wal.Encode(e)); err != nil {
		t.Fatalf("append %d: %v", pos, err)
	}
}

// waitApplied blocks until the watermark covers pos.
func waitApplied(t *testing.T, l *Log, pos int64) {
	t.Helper()
	if err := l.WaitApplied(waitCtx(t), pos); err != nil {
		t.Fatalf("wait applied %d: %v", pos, err)
	}
}

func txnEntry(id string, epoch int64, writes map[string]string) wal.Entry {
	e := wal.NewEntry(wal.Txn{ID: id, Origin: "A", Writes: writes})
	e.Epoch = epoch
	return e
}

// TestClaimEntryAdoptsEpoch: applying a claim entry establishes the
// prevailing epoch; a later claim with a higher epoch supersedes it, and a
// stale claim is void.
func TestClaimEntryAdoptsEpoch(t *testing.T) {
	store := kvstore.New()
	defer store.Close()
	l := Open(store, "g")
	defer l.Close()

	append1(t, l, 1, wal.NewClaim(1, "A"))
	waitApplied(t, l, 1)
	if st := l.Epoch(); st.Epoch != 1 || st.Master != "A" || st.Pos != 1 {
		t.Fatalf("epoch after claim = %+v", st)
	}

	append1(t, l, 2, wal.NewClaim(2, "B"))
	waitApplied(t, l, 2)
	if st := l.Epoch(); st.Epoch != 2 || st.Master != "B" || st.Pos != 2 {
		t.Fatalf("epoch after takeover = %+v", st)
	}

	// A superseded claim that still won its Paxos position is void.
	append1(t, l, 3, wal.NewClaim(1, "C"))
	waitApplied(t, l, 3)
	if st := l.Epoch(); st.Epoch != 2 || st.Master != "B" {
		t.Fatalf("stale claim changed epoch: %+v", st)
	}
	if !l.Voided(3) {
		t.Fatal("stale claim not voided")
	}
}

// TestFencedEntryAppliesNothing is invariant F2: an entry stamped with a
// superseded epoch is void — its writes never reach the data rows — while
// entries at the prevailing epoch and unfenced (epoch-0) entries apply.
func TestFencedEntryAppliesNothing(t *testing.T) {
	store := kvstore.New()
	defer store.Close()
	l := Open(store, "g")
	defer l.Close()

	append1(t, l, 1, wal.NewClaim(1, "A"))
	append1(t, l, 2, txnEntry("t-old", 1, map[string]string{"k": "epoch1"}))
	append1(t, l, 3, wal.NewClaim(2, "B"))
	// The deposed master's entry lands above the takeover claim: fenced.
	append1(t, l, 4, txnEntry("t-fenced", 1, map[string]string{"k": "stale", "only-fenced": "x"}))
	// The new master's entry and an unfenced CP entry both apply.
	append1(t, l, 5, txnEntry("t-new", 2, map[string]string{"k": "epoch2"}))
	append1(t, l, 6, wal.NewEntry(wal.Txn{ID: "t-cp", Origin: "C", Writes: map[string]string{"cp": "y"}}))
	waitApplied(t, l, 6)

	if !l.Voided(4) {
		t.Fatal("superseded-epoch entry not voided")
	}
	if l.Voided(2) || l.Voided(5) || l.Voided(6) {
		t.Fatal("valid entry voided")
	}
	if v, _, err := store.Read(DataKey("g", "k"), kvstore.Latest); err != nil || v["v"] != "epoch2" {
		t.Fatalf("k = %v %v, want epoch2", v, err)
	}
	if _, _, err := store.Read(DataKey("g", "only-fenced"), kvstore.Latest); err == nil {
		t.Fatal("fenced entry's write reached the store")
	}
	if v, _, err := store.Read(DataKey("g", "cp"), kvstore.Latest); err != nil || v["v"] != "y" {
		t.Fatalf("unfenced entry's write missing: %v %v", v, err)
	}
}

// TestEpochStateSurvivesRestart: the prevailing epoch is durable in the meta
// row, so a reopened log fences exactly as the original would.
func TestEpochStateSurvivesRestart(t *testing.T) {
	store := kvstore.New()
	defer store.Close()
	l := Open(store, "g")
	append1(t, l, 1, wal.NewClaim(3, "B"))
	waitApplied(t, l, 1)
	l.Close()

	l2 := Open(store, "g")
	defer l2.Close()
	if st := l2.Epoch(); st.Epoch != 3 || st.Master != "B" || st.Pos != 1 {
		t.Fatalf("restarted epoch state = %+v", st)
	}
	// Fencing keeps working across the restart.
	append1(t, l2, 2, txnEntry("t-stale", 2, map[string]string{"k": "stale"}))
	waitApplied(t, l2, 2)
	if !l2.Voided(2) {
		t.Fatal("stale entry not fenced after restart")
	}
	if _, _, err := store.Read(DataKey("g", "k"), kvstore.Latest); err == nil {
		t.Fatal("fenced write applied after restart")
	}
}

// TestInstallSnapshotCarriesEpoch: a snapshot install adopts the source's
// epoch state so fencing works even when the establishing claim entry lies
// below the snapshot horizon.
func TestInstallSnapshotCarriesEpoch(t *testing.T) {
	store := kvstore.New()
	defer store.Close()
	l := Open(store, "g")
	defer l.Close()

	if err := l.InstallSnapshot(10, EpochState{Epoch: 4, Master: "B", Pos: 7}, MigrationState{}); err != nil {
		t.Fatal(err)
	}
	if st := l.Epoch(); st.Epoch != 4 || st.Master != "B" {
		t.Fatalf("epoch after snapshot install = %+v", st)
	}
	append1(t, l, 11, txnEntry("t-stale", 2, map[string]string{"k": "stale"}))
	waitApplied(t, l, 11)
	if !l.Voided(11) {
		t.Fatal("entry below snapshot epoch not fenced")
	}
}
