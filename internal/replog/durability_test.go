package replog

import (
	"testing"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/kvstore/disk"
)

// reopen simulates power loss and recovery for a disk-backed log: crash the
// engine (discarding anything not yet durable), then recover the directory
// and rebuild the log from the recovered rows.
func reopen(t *testing.T, dir string, eng *disk.Engine, store *kvstore.Store, l *Log) (*Log, *kvstore.Store, *disk.Engine) {
	t.Helper()
	l.Close()
	eng.Crash()
	store.Close()
	store2, eng2, err := disk.Open(dir, disk.Options{Fsync: disk.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store2.Close() })
	l2 := Open(store2, "g")
	t.Cleanup(l2.Close)
	return l2, store2, eng2
}

// TestSnapshotInstallThenCrashReplay exercises the interplay between a peer
// snapshot install (the core.Service catch-up path: data rows via ApplyBatch,
// then InstallSnapshot jumps the watermark and adopts the epoch) and the disk
// engine's own WAL/snapshot recovery. After a power loss, recovery must
// rebuild the installed horizon, the adopted epoch, and everything appended
// above the horizon — the install must be exactly as durable as a normal
// sequence of applies.
func TestSnapshotInstallThenCrashReplay(t *testing.T) {
	dir := t.TempDir()
	store, eng, err := disk.Open(dir, disk.Options{Fsync: disk.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	l := Open(store, "g")

	// A peer snapshot at horizon 7: data rows land first (ApplyBatch with
	// original version timestamps), then the watermark jumps.
	err = store.ApplyBatch([]kvstore.BatchWrite{
		{Key: "x", Value: kvstore.Value{"v": "7"}, TS: 7},
		{Key: "y", Value: kvstore.Value{"v": "5"}, TS: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	epoch := EpochState{Epoch: 3, Master: "B", Pos: 6}
	if err := l.InstallSnapshot(7, epoch, MigrationState{}); err != nil {
		t.Fatal(err)
	}
	// Normal traffic continues above the horizon.
	if _, err := l.Append(8, testEntry("t8", 7, map[string]string{"x": "8"})); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitApplied(waitCtx(t), 8); err != nil {
		t.Fatal(err)
	}

	l2, store2, _ := reopen(t, dir, eng, store, l)
	if got := l2.Applied(); got != 8 {
		t.Fatalf("recovered watermark = %d, want 8 (snapshot horizon 7 + one append)", got)
	}
	if got := l2.CompactedTo(); got != 7 {
		t.Fatalf("recovered compaction horizon = %d, want 7", got)
	}
	if got := l2.Epoch(); got != epoch {
		t.Fatalf("recovered epoch = %+v, want %+v (adopted from the snapshot)", got, epoch)
	}
	if _, ok := l2.Entry(8); !ok {
		t.Fatal("entry appended above the installed horizon lost in recovery")
	}
	for key, want := range map[string]string{"x": "7", "y": "5"} {
		v, _, err := store2.Read(key, 7)
		if err != nil || v["v"] != want {
			t.Fatalf("installed data row %q after recovery = %v (err %v), want v=%s", key, v, err, want)
		}
	}
}

// TestInterruptedInstallRecoversBehindData pins invariant D3 for the install
// path: the data batch is logged before the meta-row watermark jump, so a
// crash between the two recovers with the old watermark and the new data
// rows — watermark ≤ data, never the reverse (a watermark ahead of its data
// would serve phantom log positions). Re-running the install afterwards
// completes it, exactly as the catch-up protocol would on its next attempt.
func TestInterruptedInstallRecoversBehindData(t *testing.T) {
	dir := t.TempDir()
	store, eng, err := disk.Open(dir, disk.Options{Fsync: disk.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	l := Open(store, "g")
	if _, err := l.Append(1, testEntry("t1", 0, map[string]string{"x": "1"})); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitApplied(waitCtx(t), 1); err != nil {
		t.Fatal(err)
	}
	// Data rows land... and the power goes out before InstallSnapshot.
	err = store.ApplyBatch([]kvstore.BatchWrite{
		{Key: "x", Value: kvstore.Value{"v": "7"}, TS: 7},
	})
	if err != nil {
		t.Fatal(err)
	}

	l2, store2, _ := reopen(t, dir, eng, store, l)
	if got := l2.Applied(); got != 1 {
		t.Fatalf("recovered watermark = %d, want 1 (the install never committed its meta row)", got)
	}
	if v, _, err := store2.Read("x", 7); err != nil || v["v"] != "7" {
		t.Fatalf("data row from the interrupted install = %v (err %v), want v=7", v, err)
	}
	// The retried install is idempotent over the surviving data rows.
	if err := l2.InstallSnapshot(7, EpochState{Epoch: 2, Master: "B", Pos: 6}, MigrationState{}); err != nil {
		t.Fatalf("retried install: %v", err)
	}
	if got := l2.Applied(); got != 7 {
		t.Fatalf("watermark after retried install = %d, want 7", got)
	}
}
