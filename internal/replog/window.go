package replog

import (
	"context"
	"sync"

	"paxoscp/internal/wal"
)

// Window is the in-flight accounting for a master's pipelined submit path
// (DESIGN.md §8): the set of log positions the master has proposed but whose
// Paxos instances have not yet resolved. The pipeline keeps up to limit
// positions in flight concurrently; each carries the entry the master
// speculatively expects to be decided there, so conflict checks for later
// submissions can run against the whole in-flight suffix without waiting for
// any replication round trip.
//
// A Window is owned by one dispatcher goroutine (Reserve/Start are called
// only by it); Resolve is called by the per-position replication goroutines.
// All methods are safe for concurrent use.
type Window struct {
	limit int

	mu      sync.Mutex
	entries map[int64]wal.Entry // in-flight: position -> speculative entry
	issued  int64               // highest position ever issued
	waitCh  chan struct{}       // closed+replaced on every resolve/close
	closed  bool
}

// NewWindow returns a Window admitting up to limit concurrent in-flight
// positions. A limit below 1 means 1 (the serial baseline: one Paxos
// position in flight at a time, as the pre-pipeline master behaved).
func NewWindow(limit int) *Window {
	if limit < 1 {
		limit = 1
	}
	return &Window{
		limit:   limit,
		entries: make(map[int64]wal.Entry),
		waitCh:  make(chan struct{}),
	}
}

// Limit returns the window size.
func (w *Window) Limit() int { return w.limit }

// Reserve blocks until the window has room for one more in-flight position,
// ctx is done, or the window closes.
func (w *Window) Reserve(ctx context.Context) error {
	for {
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return ErrClosed
		}
		if len(w.entries) < w.limit {
			w.mu.Unlock()
			return nil
		}
		ch := w.waitCh
		w.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Start registers pos as in flight with the entry the master proposed for
// it. The caller must hold a Reserve slot (the single dispatcher goroutine
// makes Reserve→Start effectively atomic).
func (w *Window) Start(pos int64, e wal.Entry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.entries[pos] = e
	if pos > w.issued {
		w.issued = pos
	}
}

// Resolve retires pos from the window — its Paxos instance reached an
// outcome (decided with any value, or definitively failed) — and wakes
// Reserve waiters. Resolving an unknown position is a no-op.
func (w *Window) Resolve(pos int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.entries[pos]; !ok {
		return
	}
	delete(w.entries, pos)
	close(w.waitCh)
	w.waitCh = make(chan struct{})
}

// Entry returns the speculative entry in flight at pos, if any.
func (w *Window) Entry(pos int64) (wal.Entry, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.entries[pos]
	return e, ok
}

// InFlight returns the number of unresolved positions.
func (w *Window) InFlight() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries)
}

// IssuedMax returns the highest position ever issued through the window (0
// if none): new positions are assigned above it so two in-flight proposals
// never collide.
func (w *Window) IssuedMax() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.issued
}

// Close fails current and future Reserve calls with ErrClosed. In-flight
// positions stay registered; their replication goroutines resolve them.
func (w *Window) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	close(w.waitCh)
	w.waitCh = make(chan struct{})
}
