package replog

import (
	"fmt"
	"testing"
)

func TestKeyLayoutMatchesSeedFormat(t *testing.T) {
	cases := []struct{ got, want string }{
		{DataKey("g1", "account/7"), "data/g1/account/7"},
		{DataPrefix("g1"), "data/g1/"},
		{LogKey("g1", 42), "log/g1/42"},
		{LogKey("g1", 9223372036854775807), "log/g1/9223372036854775807"},
		{LogPrefix("g1"), "log/g1/"},
		{MetaKey("g1"), "meta/g1"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Fatalf("key = %q, want %q", c.got, c.want)
		}
	}
	// Agreement with the fmt.Sprintf forms the seed used.
	if got, want := LogKey("grp", 17), fmt.Sprintf("log/%s/%d", "grp", 17); got != want {
		t.Fatalf("LogKey = %q, want %q", got, want)
	}
}

// TestKeyEncodingAllocs pins the allocation-free construction: exactly one
// allocation (the resulting string) per key.
func TestKeyEncodingAllocs(t *testing.T) {
	group, key := "group-1", "account/123"
	if n := testing.AllocsPerRun(200, func() { _ = DataKey(group, key) }); n > 1 {
		t.Fatalf("DataKey allocates %.0f times, want <= 1", n)
	}
	if n := testing.AllocsPerRun(200, func() { _ = LogKey(group, 123456) }); n > 1 {
		t.Fatalf("LogKey allocates %.0f times, want <= 1", n)
	}
	if n := testing.AllocsPerRun(200, func() { _ = MetaKey(group) }); n > 1 {
		t.Fatalf("MetaKey allocates %.0f times, want <= 1", n)
	}
}

// BenchmarkKeyEncoding guards the hot-path key builders against regressing
// to fmt.Sprintf (kept as the baseline for comparison).
func BenchmarkKeyEncoding(b *testing.B) {
	group, key := "group-1", "account/123"
	b.Run("DataKey", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = DataKey(group, key)
		}
	})
	b.Run("LogKey", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = LogKey(group, int64(i))
		}
	})
	b.Run("MetaKey", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = MetaKey(group)
		}
	})
	b.Run("sprintf-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = fmt.Sprintf("log/%s/%d", group, int64(i))
		}
	})
}
