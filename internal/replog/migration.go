package replog

import (
	"encoding/json"
	"fmt"

	"paxoscp/internal/placement"
	"paxoscp/internal/wal"
)

// This file is the apply-time half of live shard migration (DESIGN.md §15).
// Handoff entries ride the replicated log like any other entry, so the
// migration state of a group — which ranges have departed, which are inbound
// — is a deterministic function of the applied log prefix, identical at
// every replica, exactly like the epoch state of §11. drain maintains it as
// handoff entries apply, persists it in the meta row next to the epoch
// fields, and enforces the two migration invariants:
//
//	M1 (no writes behind a departed range): a transaction at a position
//	   above an applied HandoffOut that writes any key of the departed
//	   range is void — none of its writes land, at any replica — and the
//	   voiding is recorded per transaction so the master's pipeline turns
//	   the verdict into the retryable "moved" answer instead of a commit.
//	M2 (no writes into an unopened inbound range): a non-backfill
//	   transaction writing a key of a range that is prepared but not yet
//	   open (HandoffPrepare applied, HandoffIn not) is void the same way;
//	   its verdict is the retryable "migrating".
//
// Both rules are mirrored verbatim by the offline history checker, which
// replays the same log prefix with the same MoveSet predicate.

// HandoffRecord is one applied handoff entry, as persisted in the meta row
// and carried inside snapshots. Pos is the log position it applied at.
type HandoffRecord struct {
	Phase   uint8    `json:"phase"`
	From    string   `json:"from"`
	To      string   `json:"to"`
	Groups  []string `json:"groups"`
	Version int64    `json:"version"`
	Pos     int64    `json:"pos"`
}

// String renders e.g. "out g3->g9 v9 @17".
func (r HandoffRecord) String() string {
	return fmt.Sprintf("%s %s->%s v%d @%d", wal.HandoffPhase(r.Phase), r.From, r.To, r.Version, r.Pos)
}

// MigrationState is the ordered list of applied handoff records relevant to
// one group's log — the durable form of the group's migration state, shipped
// inside snapshots so a replica restored past the handoff positions still
// fences correctly.
type MigrationState struct {
	Records []HandoffRecord `json:"records"`
}

// Clone returns a deep copy.
func (m MigrationState) Clone() MigrationState {
	out := MigrationState{Records: make([]HandoffRecord, len(m.Records))}
	copy(out.Records, m.Records)
	for i := range out.Records {
		out.Records[i].Groups = append([]string(nil), m.Records[i].Groups...)
	}
	return out
}

// migRange pairs a handoff record with its compiled range predicate.
type migRange struct {
	rec HandoffRecord
	set *placement.MoveSet
}

// migState is the derived, query-friendly view of a group's applied handoff
// records. Guarded by Log.mu.
type migState struct {
	records []HandoffRecord
	out     []migRange // HandoffOut, this group is From: departed ranges
	inPend  []migRange // HandoffPrepare without a matching HandoffIn yet
	in      []migRange // HandoffIn, this group is To: ranges now served here
	tomb    []migRange // HandoffTombstone: departed ranges cleared for GC
}

// apply folds one applied handoff record (for the log's own group) into the
// derived state. Records arrive in log order.
func (m *migState) apply(group string, rec HandoffRecord) {
	m.records = append(m.records, rec)
	r := migRange{rec: rec, set: placement.NewMoveSet(rec.Groups, rec.From, rec.To)}
	switch wal.HandoffPhase(rec.Phase) {
	case wal.HandoffPrepare:
		if rec.To == group {
			m.inPend = append(m.inPend, r)
		}
	case wal.HandoffOut:
		if rec.From == group {
			m.out = append(m.out, r)
		}
	case wal.HandoffIn:
		if rec.To == group {
			m.in = append(m.in, r)
			kept := m.inPend[:0]
			for _, p := range m.inPend {
				if p.rec.From == rec.From && p.rec.To == rec.To && p.rec.Version == rec.Version {
					continue
				}
				kept = append(kept, p)
			}
			m.inPend = kept
		}
	case wal.HandoffTombstone:
		if rec.From == group {
			m.tomb = append(m.tomb, r)
		}
	}
}

// rebuild replays records from scratch (Open, snapshot install).
func (m *migState) rebuild(group string, records []HandoffRecord) {
	*m = migState{}
	for _, rec := range records {
		m.apply(group, rec)
	}
}

// deepCopy returns a copy safe to mutate while readers still hold the
// original: every slice gets fresh backing (records themselves are immutable
// once appended, so their Groups slices may be shared).
func (m migState) deepCopy() migState {
	return migState{
		records: append([]HandoffRecord(nil), m.records...),
		out:     append([]migRange(nil), m.out...),
		inPend:  append([]migRange(nil), m.inPend...),
		in:      append([]migRange(nil), m.in...),
		tomb:    append([]migRange(nil), m.tomb...),
	}
}

// voidsTxn applies the migration rules to one transaction at apply time:
// M1 — any write into a departed range voids the transaction, with the
// destination group as the verdict hint; M2 — a non-backfill write into a
// prepared-but-unopened inbound range voids it with no destination (the
// "migrating" retry verdict). Read-only transactions never reach the log,
// so writes are the only surface the rules need.
func (m *migState) voidsTxn(t wal.Txn) (to string, voided bool) {
	if len(m.out) == 0 && len(m.inPend) == 0 {
		return "", false
	}
	for k := range t.Writes {
		if dest, _, ok := m.movedTo(k); ok {
			return dest, true // M1: the range departed before this position
		}
	}
	if !t.Backfill {
		for k := range t.Writes {
			if m.inboundPending(k) {
				return "", true // M2: the range is not open here yet
			}
		}
	}
	return "", false
}

// movedTo returns the destination group and handoff position if key belongs
// to a departed range. At most one outbound record can cover a key (a key
// that already left cannot match a later departure's source placement), so
// the first match is the match.
func (m *migState) movedTo(key string) (string, int64, bool) {
	for _, r := range m.out {
		if r.set.Moves(key) {
			return r.rec.To, r.rec.Pos, true
		}
	}
	return "", 0, false
}

// inboundPending reports whether key is inside a prepared-but-unopened
// inbound range.
func (m *migState) inboundPending(key string) bool {
	for _, r := range m.inPend {
		if r.set.Moves(key) {
			return true
		}
	}
	return false
}

// tombstoned reports whether key is inside a range cleared for scavenge.
func (m *migState) tombstoned(key string) bool {
	for _, r := range m.tomb {
		if r.set.Moves(key) {
			return true
		}
	}
	return false
}

// encodeMigrations serializes records for the meta row ("" when empty, so
// non-migrating groups keep their meta rows unchanged).
func encodeMigrations(records []HandoffRecord) string {
	if len(records) == 0 {
		return ""
	}
	b, err := json.Marshal(records)
	if err != nil {
		return ""
	}
	return string(b)
}

// decodeMigrations parses the meta row form; corrupt state decodes as empty
// rather than failing Open (the records are rebuilt by catch-up from the
// log itself if the horizon permits).
func decodeMigrations(s string) []HandoffRecord {
	if s == "" {
		return nil
	}
	var records []HandoffRecord
	if err := json.Unmarshal([]byte(s), &records); err != nil {
		return nil
	}
	return records
}

// --- Log accessors ---------------------------------------------------------

// MovedTo returns the group a departed key now belongs to and the log
// position of the HandoffOut that froze it. ok is false while the key is
// still owned here.
func (l *Log) MovedTo(key string) (to string, outPos int64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mig.movedTo(key)
}

// InboundPending reports whether key belongs to a range this group has
// prepared to receive but not yet opened (HandoffPrepare applied, HandoffIn
// not). Ordinary transactions touching such keys are refused with the
// retryable "migrating" verdict; backfill transactions pass.
func (l *Log) InboundPending(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mig.inboundPending(key)
}

// Tombstoned reports whether key belongs to a departed range whose cutover
// is durable in the destination (HandoffTombstone applied): its frozen local
// rows may be scavenged wholesale at the next compaction.
func (l *Log) Tombstoned(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mig.tombstoned(key)
}

// MovedTxn reports whether the transaction with txnID inside the applied
// entry at pos was voided by a migration rule, and the destination group to
// hint ("" when the range was inbound-unopened here — verdict "migrating").
// Only meaningful for positions at or below the applied watermark; like
// Voided, the record is bounded and old positions are forgotten.
func (l *Log) MovedTxn(pos int64, txnID string) (to string, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	m, ok := l.movedTxns[pos]
	if !ok {
		return "", false
	}
	to, ok = m[txnID]
	return to, ok
}

// HasMigrations reports whether any handoff record has applied to this log.
// It is the cheap gate the hot paths (submit admission, commit verdicts)
// check before consulting the per-key migration fences — a group that never
// migrated pays one mutex round, no range scans.
func (l *Log) HasMigrations() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.mig.records) > 0
}

// Migrations returns the group's applied handoff records in log order — the
// operator-facing migration status (GroupStatus, txkvctl).
func (l *Log) Migrations() MigrationState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return MigrationState{Records: l.mig.records}.Clone()
}

// MigrationsAt returns the handoff records applied at or below horizon: the
// group's migration state as of that watermark. The record list is
// append-only in log order, so the filtered prefix is exact no matter when
// it is captured relative to the horizon — what snapshot building needs
// (a record above the snapshot horizon must not ship: the restored replica
// replays the positions between horizon and handoff itself, and fencing
// them early would void pre-handoff transactions every other replica
// applied).
func (l *Log) MigrationsAt(horizon int64) MigrationState {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := MigrationState{}
	for _, rec := range l.mig.records {
		if rec.Pos <= horizon {
			out.Records = append(out.Records, rec)
		}
	}
	return out.Clone()
}
