package replog

import (
	"fmt"
	"testing"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/placement"
	"paxoscp/internal/wal"
)

// movingKey finds a key that the 2→3 growth moves from `from` into the added
// group g2. The placements are the same rendezvous hash every replica and the
// coordinator use, so the key is moving by definition, not by construction.
func movingKey(t *testing.T, from string) (key string, groups []string) {
	t.Helper()
	old := placement.NewN(2)
	neu := old.Grow("g2")
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("mig-key-%d", i)
		if old.GroupFor(k) == from && neu.GroupFor(k) == "g2" {
			return k, neu.Groups()
		}
	}
	t.Fatalf("no key moving %s->g2 in 10000 candidates", from)
	return "", nil
}

// stayingKey finds a key that stays in `from` across the 2→3 growth.
func stayingKey(t *testing.T, from string) string {
	t.Helper()
	old := placement.NewN(2)
	neu := old.Grow("g2")
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("stay-key-%d", i)
		if old.GroupFor(k) == from && neu.GroupFor(k) == from {
			return k
		}
	}
	t.Fatalf("no key staying in %s in 10000 candidates", from)
	return ""
}

func appendApplied(t *testing.T, l *Log, pos int64, b []byte) {
	t.Helper()
	if _, err := l.Append(pos, b); err != nil {
		t.Fatalf("append %d: %v", pos, err)
	}
	if err := l.WaitApplied(waitCtx(t), pos); err != nil {
		t.Fatalf("wait %d: %v", pos, err)
	}
}

func readData(t *testing.T, store *kvstore.Store, group, key string, pos int64) (string, bool) {
	t.Helper()
	v, _, err := store.Read(DataKey(group, key), pos)
	if err != nil {
		return "", false
	}
	return v["v"], true
}

// TestHandoffOutFencesLaterWrites: M1 — once a HandoffOut applies, a later
// transaction writing a key of the departed range is void at apply time, with
// the destination recorded per transaction, while writes to keys that stayed
// keep applying normally.
func TestHandoffOutFencesLaterWrites(t *testing.T) {
	store := kvstore.New()
	l := Open(store, "g0")
	t.Cleanup(l.Close)

	moved, groups := movingKey(t, "g0")
	stayed := stayingKey(t, "g0")

	appendApplied(t, l, 1, testEntry("t1", 0, map[string]string{moved: "before"}))
	appendApplied(t, l, 2, wal.Encode(wal.NewHandoff(wal.HandoffOut, "g0", "g2", groups)))
	appendApplied(t, l, 3, testEntry("t3", 2, map[string]string{moved: "after"}))
	appendApplied(t, l, 4, testEntry("t4", 2, map[string]string{stayed: "ok"}))

	if to, pos, ok := l.MovedTo(moved); !ok || to != "g2" || pos != 2 {
		t.Fatalf("MovedTo(%q) = (%s, %d, %v), want (g2, 2, true)", moved, to, pos, ok)
	}
	if _, _, ok := l.MovedTo(stayed); ok {
		t.Fatalf("MovedTo claims the staying key %q departed", stayed)
	}
	if to, ok := l.MovedTxn(3, "t3"); !ok || to != "g2" {
		t.Fatalf("MovedTxn(3, t3) = (%s, %v), want (g2, true)", to, ok)
	}
	if _, ok := l.MovedTxn(4, "t4"); ok {
		t.Fatal("MovedTxn flags the staying-key transaction at pos 4")
	}
	// The voided write never landed: the frozen pre-handoff version survives.
	if v, ok := readData(t, store, "g0", moved, 10); !ok || v != "before" {
		t.Fatalf("departed key = (%q, %v) after fenced write, want frozen \"before\"", v, ok)
	}
	if v, ok := readData(t, store, "g0", stayed, 10); !ok || v != "ok" {
		t.Fatalf("staying key = (%q, %v), want \"ok\"", v, ok)
	}
}

// TestHandoffPrepareFencesUntilIn: M2 — between HandoffPrepare and HandoffIn
// the destination group voids ordinary transactions touching the inbound
// range (verdict "migrating", no destination hint) but admits backfill
// transactions; HandoffIn opens the range for normal traffic.
func TestHandoffPrepareFencesUntilIn(t *testing.T) {
	store := kvstore.New()
	l := Open(store, "g2")
	t.Cleanup(l.Close)

	moved, groups := movingKey(t, "g0")

	appendApplied(t, l, 1, wal.Encode(wal.NewHandoff(wal.HandoffPrepare, "g0", "g2", groups)))
	if !l.InboundPending(moved) {
		t.Fatalf("InboundPending(%q) = false after prepare", moved)
	}
	appendApplied(t, l, 2, testEntry("early", 1, map[string]string{moved: "sneak"}))
	if to, ok := l.MovedTxn(2, "early"); !ok || to != "" {
		t.Fatalf("MovedTxn(2, early) = (%q, %v), want (\"\", true): migrating verdict", to, ok)
	}
	bf := wal.NewEntry(wal.Txn{ID: "bf", Origin: "mig", ReadPos: 1, Backfill: true,
		Writes: map[string]string{moved: "copied"}})
	appendApplied(t, l, 3, wal.Encode(bf))
	if _, ok := l.MovedTxn(3, "bf"); ok {
		t.Fatal("backfill transaction was fenced by M2")
	}
	if v, ok := readData(t, store, "g2", moved, 10); !ok || v != "copied" {
		t.Fatalf("backfill write = (%q, %v), want \"copied\"", v, ok)
	}
	appendApplied(t, l, 4, wal.Encode(wal.NewHandoff(wal.HandoffIn, "g0", "g2", groups)))
	if l.InboundPending(moved) {
		t.Fatalf("InboundPending(%q) still true after HandoffIn", moved)
	}
	appendApplied(t, l, 5, testEntry("late", 4, map[string]string{moved: "served"}))
	if _, ok := l.MovedTxn(5, "late"); ok {
		t.Fatal("post-HandoffIn transaction was fenced")
	}
	if v, ok := readData(t, store, "g2", moved, 10); !ok || v != "served" {
		t.Fatalf("post-open write = (%q, %v), want \"served\"", v, ok)
	}
}

// TestTombstoneMarksRangeForGC: HandoffTombstone on the source marks the
// departed range scavengeable without changing the M1 fence.
func TestTombstoneMarksRangeForGC(t *testing.T) {
	store := kvstore.New()
	l := Open(store, "g0")
	t.Cleanup(l.Close)

	moved, groups := movingKey(t, "g0")
	stayed := stayingKey(t, "g0")

	appendApplied(t, l, 1, wal.Encode(wal.NewHandoff(wal.HandoffOut, "g0", "g2", groups)))
	if l.Tombstoned(moved) {
		t.Fatal("range tombstoned before HandoffTombstone")
	}
	appendApplied(t, l, 2, wal.Encode(wal.NewHandoff(wal.HandoffTombstone, "g0", "g2", groups)))
	if !l.Tombstoned(moved) {
		t.Fatal("range not tombstoned after HandoffTombstone")
	}
	if l.Tombstoned(stayed) {
		t.Fatal("staying key tombstoned")
	}
	if _, _, ok := l.MovedTo(moved); !ok {
		t.Fatal("M1 fence dropped by tombstone")
	}
}

// TestMigrationStateSurvivesRestart: the fences rebuild from the meta row on
// Open — a replica restarted after applying a HandoffOut (log rows possibly
// compacted away) still voids writes into the departed range.
func TestMigrationStateSurvivesRestart(t *testing.T) {
	store := kvstore.New()
	l := Open(store, "g0")

	moved, groups := movingKey(t, "g0")
	appendApplied(t, l, 1, wal.Encode(wal.NewHandoff(wal.HandoffOut, "g0", "g2", groups)))
	l.Close()

	l2 := Open(store, "g0")
	t.Cleanup(l2.Close)
	if to, pos, ok := l2.MovedTo(moved); !ok || to != "g2" || pos != 1 {
		t.Fatalf("after restart MovedTo(%q) = (%s, %d, %v), want (g2, 1, true)", moved, to, pos, ok)
	}
	appendApplied(t, l2, 2, testEntry("t2", 1, map[string]string{moved: "late"}))
	if to, ok := l2.MovedTxn(2, "t2"); !ok || to != "g2" {
		t.Fatalf("restarted log did not fence: MovedTxn = (%s, %v)", to, ok)
	}
}

// TestInstallSnapshotCarriesMigrations: a replica restored from a snapshot
// whose horizon is past the handoff adopts the records; a shorter (stale)
// record list never clobbers a longer local one.
func TestInstallSnapshotCarriesMigrations(t *testing.T) {
	store := kvstore.New()
	l := Open(store, "g0")
	t.Cleanup(l.Close)

	moved, groups := movingKey(t, "g0")
	recs := MigrationState{Records: []HandoffRecord{{
		Phase: uint8(wal.HandoffOut), From: "g0", To: "g2", Groups: groups,
		Version: int64(len(groups)), Pos: 3,
	}}}
	if err := l.InstallSnapshot(5, EpochState{}, recs); err != nil {
		t.Fatal(err)
	}
	if to, _, ok := l.MovedTo(moved); !ok || to != "g2" {
		t.Fatalf("MovedTo after snapshot install = (%s, %v), want (g2, true)", to, ok)
	}
	// A stale snapshot (empty record list) must not clear the fence.
	if err := l.InstallSnapshot(6, EpochState{}, MigrationState{}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := l.MovedTo(moved); !ok {
		t.Fatal("stale snapshot cleared the migration fence")
	}
}

// TestEpochFencedHandoffIsVoid: F2 applies to handoff entries too — a handoff
// stamped with a superseded epoch voids without touching migration state, so
// a deposed coordinator's cutover cannot land after a failover.
func TestEpochFencedHandoffIsVoid(t *testing.T) {
	store := kvstore.New()
	l := Open(store, "g0")
	t.Cleanup(l.Close)

	moved, groups := movingKey(t, "g0")

	appendApplied(t, l, 1, wal.Encode(wal.NewClaim(3, "B")))
	stale := wal.NewHandoff(wal.HandoffOut, "g0", "g2", groups)
	stale.Epoch = 2 // below the prevailing epoch: fenced
	appendApplied(t, l, 2, wal.Encode(stale))

	if !l.Voided(2) {
		t.Fatal("stale-epoch handoff not voided")
	}
	if _, _, ok := l.MovedTo(moved); ok {
		t.Fatal("fenced handoff mutated migration state")
	}
	if got := l.Migrations(); len(got.Records) != 0 {
		t.Fatalf("fenced handoff recorded: %v", got.Records)
	}

	// The same handoff at the prevailing epoch applies.
	fresh := wal.NewHandoff(wal.HandoffOut, "g0", "g2", groups)
	fresh.Epoch = 3
	appendApplied(t, l, 3, wal.Encode(fresh))
	if to, _, ok := l.MovedTo(moved); !ok || to != "g2" {
		t.Fatalf("current-epoch handoff did not apply: (%s, %v)", to, ok)
	}
}

// TestMigrationsAtFiltersByHorizon: snapshot building must exclude records
// above the horizon — the restored replica replays those positions itself.
func TestMigrationsAtFiltersByHorizon(t *testing.T) {
	store := kvstore.New()
	l := Open(store, "g0")
	t.Cleanup(l.Close)

	_, groups := movingKey(t, "g0")
	appendApplied(t, l, 1, wal.Encode(wal.NewHandoff(wal.HandoffOut, "g0", "g2", groups)))
	appendApplied(t, l, 2, wal.Encode(wal.NewHandoff(wal.HandoffTombstone, "g0", "g2", groups)))

	if got := l.MigrationsAt(1); len(got.Records) != 1 || got.Records[0].Pos != 1 {
		t.Fatalf("MigrationsAt(1) = %v, want just the pos-1 record", got.Records)
	}
	if got := l.MigrationsAt(0); len(got.Records) != 0 {
		t.Fatalf("MigrationsAt(0) = %v, want empty", got.Records)
	}
	if got := l.MigrationsAt(2); len(got.Records) != 2 {
		t.Fatalf("MigrationsAt(2) = %v, want both records", got.Records)
	}
}
