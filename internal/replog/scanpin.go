package replog

import (
	"sort"
	"time"
)

// Read pins and the position-aware migration fence for ordered scans
// (DESIGN.md §16). A streaming scan serves many pages at one pinned log
// position; between pages nothing is held, so compaction could otherwise GC
// the versions the scan is still reading. PinReads registers the position
// with a TTL and Compact clamps its effective horizon to the lowest
// unexpired pin. The TTL (rather than an explicit release) makes an
// abandoned scan self-cleaning: a client that vanishes mid-sequence delays
// compaction by one TTL, never forever.

// PinReads keeps the compaction horizon at or below pos until the TTL
// expires, extending an existing pin at the same position when the new
// expiry is later. It synchronizes with any in-flight Compact (briefly
// taking its lock), so the handshake
//
//	lg.PinReads(ts, ttl); if lg.CompactedTo() > ts { refuse }
//
// is race-free: after PinReads returns, either the pin was registered
// before any future compaction clamps — holding the horizon at or below
// pos — or a compaction already moved past pos, and the CompactedTo check
// sees it.
func (l *Log) PinReads(pos int64, ttl time.Duration) {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	exp := now.Add(ttl)
	for p, e := range l.pins { // prune so abandoned scans don't accumulate
		if e.Before(now) {
			delete(l.pins, p)
		}
	}
	if cur, ok := l.pins[pos]; !ok || exp.After(cur) {
		l.pins[pos] = exp
	}
}

// ScanFence is the migration fence evaluated at one pinned log position: the
// derived handoff state a scan at that position must respect, frozen so
// every page of the sequence applies identical rules even as later handoff
// entries apply. Build one per page with ScanFenceAt. The zero value (no
// handoff records at or below the position) fences nothing.
type ScanFence struct {
	group string
	st    migState
}

// ScanFenceAt returns the fence at ts: the view derived from handoff records
// applied at positions at or below ts. Records above ts are invisible — a
// scan pinned before a cutover must keep serving the range from the source,
// exactly as point reads at that position would.
func (l *Log) ScanFenceAt(ts int64) ScanFence {
	l.mu.Lock()
	defer l.mu.Unlock()
	f := ScanFence{group: l.group}
	if len(l.mig.records) == 0 {
		return f
	}
	var recs []HandoffRecord
	for _, rec := range l.mig.records {
		if rec.Pos <= ts {
			recs = append(recs, rec)
		}
	}
	f.st.rebuild(l.group, recs)
	return f
}

// MovedOut returns the destination group when key belongs to a range whose
// HandoffOut applied at or below the fence position: the source must not
// serve it, because the destination's copy is authoritative from the cutover
// on and serving the frozen source rows could miss the final delta.
func (f *ScanFence) MovedOut(key string) (to string, ok bool) {
	to, _, ok = f.st.movedTo(key)
	return to, ok
}

// InboundPending reports whether key sits in a range this group had prepared
// but not yet opened at the fence position: the backfill may be incomplete,
// so the rows that exist locally must not be served as scan results yet.
func (f *ScanFence) InboundPending(key string) bool {
	return f.st.inboundPending(key)
}

// MovedIn reports whether key sits in a range whose HandoffIn applied at or
// below the fence position: the row migrated here. The scan reply marks such
// rows so a client merging source and destination pages pinned on either
// side of a cutover can prefer the destination's copy.
func (f *ScanFence) MovedIn(key string) bool {
	for _, r := range f.st.in {
		if r.set.Moves(key) {
			return true
		}
	}
	return false
}

// Tombstoned reports whether key sits in a departed range whose
// HandoffTombstone applied at or below the fence position. Compaction uses
// this horizon-aware form for wholesale scavenge: rows tombstoned above the
// effective horizon stay until read pins below the tombstone expire.
func (f *ScanFence) Tombstoned(key string) bool {
	return f.st.tombstoned(key)
}

// Dests returns the destination groups of every range departed at the fence
// position, sorted and deduplicated. Scan replies carry them as routing
// hints: unlike a per-key "moved" verdict, a scan must tell the client about
// every destination whose pages it needs, including groups the client's
// stale placement does not know exist.
func (f *ScanFence) Dests() []string {
	seen := map[string]bool{}
	for _, r := range f.st.out {
		seen[r.rec.To] = true
	}
	out := make([]string, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// HasPending reports whether any inbound range was prepared but unopened at
// the fence position — the signal a scanning client uses to retry this
// group after the cutover instead of treating its silence as emptiness.
func (f *ScanFence) HasPending() bool {
	return len(f.st.inPend) > 0
}

// Active reports whether the fence has any effect at all (any handoff
// record at or below the position). Scans on never-migrated groups skip all
// per-key fence checks.
func (f *ScanFence) Active() bool {
	return len(f.st.records) > 0
}
