// Package replog is the per-group replicated-log subsystem of the
// transaction tier (DESIGN.md §4). A Log owns one group's decided-entry
// log, its contiguously-applied watermark, and a decoded-entry cache;
// decided positions drain into kvstore write batches on a shared apply
// pool — GOMAXPROCS workers keyed by GroupShard, one worker draining a
// given log at a time, so per-group apply order is untouched while many
// groups apply in parallel (pool.go, DESIGN.md §13). A standalone Log
// opened outside a Set keeps its own apply goroutine.
//
// The seed kept all of this implicit: string-keyed rows in the datacenter's
// key-value store, a coarse per-group apply mutex in the Transaction
// Service, and meta-row round trips on every read-position request. The Log
// keeps the same durable row layout (see keys.go) — services stay stateless
// in the paper's sense, a restart rebuilds the Log from the store, and on a
// disk-backed store (DESIGN.md §14) that covers real crashes: the drain
// logs a run's data batch before its meta-row watermark update, so a
// recovered watermark never leads its recovered data (invariant D3) — but the
// hot-path state (watermark, pending entries, decoded cache) lives in
// memory, readers block on the watermark through WaitApplied instead of
// polling the meta row, and application is batched: one kvstore.ApplyBatch
// and one meta-row update per drained run of contiguous positions, however
// many apply messages delivered them.
//
// # Epoch fencing
//
// The apply path is also where master-epoch fencing happens (DESIGN.md
// §11). Entries apply in log order, so the prevailing epoch at each
// position — established by master-claim entries (wal.Entry.IsClaim) — is a
// deterministic function of the log prefix, identical at every replica. A
// transaction entry stamped with a superseded epoch is void: none of its
// writes land, anywhere (invariant F2), and Voided reports it so a deposed
// master never reports such an entry committed. Epoch state is durable in
// the meta row and travels inside snapshots (InstallSnapshot); the lease
// timestamp (LeaseState) is deliberately local and volatile — leases bound
// failover time, fencing provides safety.
//
// Window, the in-flight accounting for the master's pipelined submit path,
// also lives here (DESIGN.md §8).
package replog
