package replog

import (
	"context"
	"errors"
	"testing"
	"time"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/wal"
)

func winEntry(id string, writes map[string]string) wal.Entry {
	return wal.NewEntry(wal.Txn{ID: id, Origin: "A", Writes: writes})
}

func TestWindowReserveBlocksAtLimit(t *testing.T) {
	w := NewWindow(2)
	ctx := waitCtx(t)
	for pos := int64(1); pos <= 2; pos++ {
		if err := w.Reserve(ctx); err != nil {
			t.Fatal(err)
		}
		w.Start(pos, winEntry("t", nil))
	}
	if got := w.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	// A third Reserve must block until a position resolves.
	full, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := w.Reserve(full); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Reserve over limit = %v, want deadline exceeded", err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Reserve(ctx) }()
	w.Resolve(1)
	if err := <-done; err != nil {
		t.Fatalf("Reserve after resolve: %v", err)
	}
}

func TestWindowEntryAndIssuedMax(t *testing.T) {
	w := NewWindow(4)
	if got := w.IssuedMax(); got != 0 {
		t.Fatalf("IssuedMax empty = %d, want 0", got)
	}
	w.Start(3, winEntry("t3", map[string]string{"a": "1"}))
	w.Start(4, winEntry("t4", map[string]string{"b": "2"}))
	e, ok := w.Entry(3)
	if !ok || !e.Contains("t3") {
		t.Fatalf("Entry(3) = %v %v", e, ok)
	}
	if _, ok := w.Entry(5); ok {
		t.Fatal("Entry(5) should be absent")
	}
	if got := w.IssuedMax(); got != 4 {
		t.Fatalf("IssuedMax = %d, want 4", got)
	}
	// IssuedMax survives resolution: positions are never re-issued.
	w.Resolve(4)
	w.Resolve(4) // duplicate resolve is a no-op
	if got := w.IssuedMax(); got != 4 {
		t.Fatalf("IssuedMax after resolve = %d, want 4", got)
	}
	if got := w.InFlight(); got != 1 {
		t.Fatalf("InFlight after resolve = %d, want 1", got)
	}
}

func TestWindowCloseFailsReserve(t *testing.T) {
	w := NewWindow(1)
	ctx := waitCtx(t)
	if err := w.Reserve(ctx); err != nil {
		t.Fatal(err)
	}
	w.Start(1, winEntry("t", nil))
	done := make(chan error, 1)
	go func() { done <- w.Reserve(ctx) }()
	w.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("Reserve on closed window = %v, want ErrClosed", err)
	}
	if err := w.Reserve(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Reserve after close = %v, want ErrClosed", err)
	}
}

func TestWindowMinimumLimit(t *testing.T) {
	if got := NewWindow(0).Limit(); got != 1 {
		t.Fatalf("Limit(0) = %d, want 1", got)
	}
	if got := NewWindow(-3).Limit(); got != 1 {
		t.Fatalf("Limit(-3) = %d, want 1", got)
	}
}

// TestLogMultiTxnEntryApply: a combined (multi-transaction) entry from the
// master's pipelined submit path applies every member's writes in list
// order — later transactions in the entry overwrite earlier ones.
func TestLogMultiTxnEntryApply(t *testing.T) {
	l, store := openLog(t)
	entry := wal.NewEntry(
		wal.Txn{ID: "t1", Origin: "A", Writes: map[string]string{"x": "first", "y": "only"}},
		wal.Txn{ID: "t2", Origin: "B", Writes: map[string]string{"x": "second", "z": "tail"}},
	)
	if _, err := l.Append(1, wal.Encode(entry)); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitApplied(waitCtx(t), 1); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{"x": "second", "y": "only", "z": "tail"} {
		v, _, err := store.Read(DataKey("g", key), 1)
		if err != nil || v["v"] != want {
			t.Fatalf("data %q = (%v, %v), want %q", key, v, err, want)
		}
	}
	if got := l.DecidedMax(); got != 1 {
		t.Fatalf("DecidedMax = %d, want 1", got)
	}
}

// TestLogDecidedMaxTracksGappedAppends: the decided ceiling covers pending
// positions above a gap and survives reopen.
func TestLogDecidedMaxTracksGappedAppends(t *testing.T) {
	store := kvstore.New()
	l := Open(store, "g")
	if _, err := l.Append(1, testEntry("t1", 0, map[string]string{"a": "1"})); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(3, testEntry("t3", 2, map[string]string{"c": "3"})); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitApplied(waitCtx(t), 1); err != nil {
		t.Fatal(err)
	}
	if got := l.DecidedMax(); got != 3 {
		t.Fatalf("DecidedMax with gap = %d, want 3", got)
	}
	l.Close()
	l2 := Open(store, "g")
	defer l2.Close()
	if got := l2.DecidedMax(); got != 3 {
		t.Fatalf("DecidedMax after reopen = %d, want 3", got)
	}
}
