package replog

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/wal"
)

func testEntry(id string, readPos int64, writes map[string]string) []byte {
	return wal.Encode(wal.NewEntry(wal.Txn{
		ID: id, Origin: "A", ReadPos: readPos, Writes: writes,
	}))
}

func openLog(t *testing.T) (*Log, *kvstore.Store) {
	t.Helper()
	store := kvstore.New()
	l := Open(store, "g")
	t.Cleanup(l.Close)
	return l, store
}

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestLogOutOfOrderAppendHoldsWatermark(t *testing.T) {
	l, _ := openLog(t)
	h, err := l.Append(2, testEntry("t2", 1, map[string]string{"x": "2"}))
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("horizon after gapped append = %d, want 0", h)
	}
	if got := l.Applied(); got != 0 {
		t.Fatalf("watermark after gapped append = %d, want 0", got)
	}
	// Filling the gap advances through both positions.
	h, err = l.Append(1, testEntry("t1", 0, map[string]string{"x": "1"}))
	if err != nil {
		t.Fatal(err)
	}
	if h != 2 {
		t.Fatalf("horizon after gap fill = %d, want 2", h)
	}
	if err := l.WaitApplied(waitCtx(t), 2); err != nil {
		t.Fatal(err)
	}
	if got := l.Applied(); got != 2 {
		t.Fatalf("watermark = %d, want 2", got)
	}
}

func TestLogDuplicateAppendIdempotent(t *testing.T) {
	l, _ := openLog(t)
	b := testEntry("t1", 0, map[string]string{"x": "1"})
	for i := 0; i < 3; i++ {
		if _, err := l.Append(1, b); err != nil {
			t.Fatalf("append #%d: %v", i, err)
		}
	}
	if err := l.WaitApplied(waitCtx(t), 1); err != nil {
		t.Fatal(err)
	}
	// Replay after application is also harmless.
	if h, err := l.Append(1, b); err != nil || h != 1 {
		t.Fatalf("post-apply replay: h=%d err=%v", h, err)
	}
	if got := l.Applied(); got != 1 {
		t.Fatalf("watermark = %d, want 1", got)
	}
}

func TestLogConflictingAppendRejected(t *testing.T) {
	l, store := openLog(t)
	if _, err := l.Append(1, testEntry("t1", 0, map[string]string{"x": "1"})); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, testEntry("OTHER", 0, map[string]string{"x": "9"})); err == nil {
		t.Fatal("conflicting rewrite of a decided position accepted")
	}
	if err := l.WaitApplied(waitCtx(t), 1); err != nil {
		t.Fatal(err)
	}
	if v, _, err := store.Read(DataKey("g", "x"), 1); err != nil || v["v"] != "1" {
		t.Fatalf("x@1 = %v %v", v, err)
	}
}

func TestLogAppendRejectsGarbageAndBadPositions(t *testing.T) {
	l, _ := openLog(t)
	if _, err := l.Append(1, []byte("junk")); err == nil {
		t.Fatal("garbage entry accepted")
	}
	if _, err := l.Append(0, testEntry("t", 0, nil)); err == nil {
		t.Fatal("position 0 accepted")
	}
}

// TestLogWaitAppliedWakeupUnderContention parks many waiters at staggered
// positions while appenders race to deliver entries out of order; every
// waiter must wake exactly when its position is covered. Run with -race.
func TestLogWaitAppliedWakeupUnderContention(t *testing.T) {
	l, _ := openLog(t)
	const positions = 64
	ctx := waitCtx(t)

	var wg sync.WaitGroup
	errs := make(chan error, positions*2)
	for pos := int64(1); pos <= positions; pos++ {
		pos := pos
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.WaitApplied(ctx, pos); err != nil {
				errs <- fmt.Errorf("wait %d: %w", pos, err)
				return
			}
			if got := l.Applied(); got < pos {
				errs <- fmt.Errorf("woke at %d with watermark %d", pos, got)
			}
		}()
	}
	// Appenders deliver even positions first (gapped), then odd ones.
	for _, phase := range [][2]int64{{2, 2}, {1, 2}} {
		start, step := phase[0], phase[1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pos := start; pos <= positions; pos += step {
				b := testEntry(fmt.Sprintf("t%d", pos), pos-1, map[string]string{"k": strconv.FormatInt(pos, 10)})
				if _, err := l.Append(pos, b); err != nil {
					errs <- fmt.Errorf("append %d: %w", pos, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := l.Applied(); got != positions {
		t.Fatalf("watermark = %d, want %d", got, positions)
	}
}

func TestLogWaitAppliedContextCancel(t *testing.T) {
	l, _ := openLog(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.WaitApplied(ctx, 99) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitApplied did not observe cancellation")
	}
}

func TestLogCloseWakesWaiters(t *testing.T) {
	l, _ := openLog(t)
	done := make(chan error, 1)
	go func() { done <- l.WaitApplied(context.Background(), 99) }()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitApplied did not observe Close")
	}
}

func TestLogBatchedApplyWritesDataRows(t *testing.T) {
	l, store := openLog(t)
	// Deliver a burst of positions; the apply goroutine may land them in
	// one batch — every data version and the meta row must still be exact.
	const n = 20
	for pos := int64(1); pos <= n; pos++ {
		b := testEntry(fmt.Sprintf("t%d", pos), pos-1, map[string]string{
			"k":                                  strconv.FormatInt(pos, 10),
			"only-" + strconv.FormatInt(pos, 10): "x",
		})
		if _, err := l.Append(pos, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WaitApplied(waitCtx(t), n); err != nil {
		t.Fatal(err)
	}
	for pos := int64(1); pos <= n; pos++ {
		v, ts, err := store.Read(DataKey("g", "k"), pos)
		if err != nil || ts != pos || v["v"] != strconv.FormatInt(pos, 10) {
			t.Fatalf("k@%d = %v ts=%d %v", pos, v, ts, err)
		}
	}
	meta, _, err := store.Read(MetaKey("g"), kvstore.Latest)
	if err != nil || meta["last"] != strconv.FormatInt(n, 10) {
		t.Fatalf("meta = %v %v", meta, err)
	}
}

func TestLogEntryServedFromCacheAfterStoreDelete(t *testing.T) {
	l, store := openLog(t)
	b := testEntry("t1", 0, map[string]string{"x": "1"})
	if _, err := l.Append(1, b); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitApplied(waitCtx(t), 1); err != nil {
		t.Fatal(err)
	}
	// Deleting the durable row behind the cache's back: Entry still serves
	// the decoded entry, proving no store round-trip or re-decode happens.
	store.Delete(LogKey("g", 1))
	entry, ok := l.Entry(1)
	if !ok || !entry.Contains("t1") {
		t.Fatalf("cached entry = %v %v", entry, ok)
	}
}

// TestLogEntryCacheBounded scans a log larger than the cache limit in
// descending position order (the pattern a full LogSnapshot produces) and
// checks the decoded-entry cache stays bounded.
func TestLogEntryCacheBounded(t *testing.T) {
	l, _ := openLog(t)
	n := int64(cacheLimit + 128)
	for pos := int64(1); pos <= n; pos++ {
		if _, err := l.Append(pos, testEntry(fmt.Sprintf("t%d", pos), pos-1, map[string]string{"k": "v"})); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WaitApplied(waitCtx(t), n); err != nil {
		t.Fatal(err)
	}
	for pos := n; pos >= 1; pos-- {
		if _, ok := l.Entry(pos); !ok {
			t.Fatalf("entry %d missing", pos)
		}
	}
	l.mu.Lock()
	size := len(l.cache)
	l.mu.Unlock()
	if size > cacheLimit {
		t.Fatalf("cache holds %d entries, limit is %d", size, cacheLimit)
	}
}

func TestLogReopenRecoversWatermarkAndPending(t *testing.T) {
	store := kvstore.New()
	l := Open(store, "g")
	for pos := int64(1); pos <= 3; pos++ {
		if _, err := l.Append(pos, testEntry(fmt.Sprintf("t%d", pos), pos-1, map[string]string{"k": strconv.FormatInt(pos, 10)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WaitApplied(waitCtx(t), 3); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Simulate an entry that was decided and made durable but whose data
	// writes never landed (crash between log-row write and apply).
	if err := store.WriteIdempotent(LogKey("g", 4), kvstore.Value{"entry": string(testEntry("t4", 3, map[string]string{"k": "4"}))}, 0); err != nil {
		t.Fatal(err)
	}

	l2 := Open(store, "g")
	defer l2.Close()
	// Open drains recovered entries synchronously: the watermark must
	// already cover position 4.
	if got := l2.Applied(); got != 4 {
		t.Fatalf("reopened watermark = %d, want 4", got)
	}
	if v, _, err := store.Read(DataKey("g", "k"), 4); err != nil || v["v"] != "4" {
		t.Fatalf("k@4 after reopen = %v %v", v, err)
	}
}

func TestLogCompact(t *testing.T) {
	l, store := openLog(t)
	for pos := int64(1); pos <= 5; pos++ {
		if _, err := l.Append(pos, testEntry(fmt.Sprintf("t%d", pos), pos-1, map[string]string{"k": strconv.FormatInt(pos, 10)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WaitApplied(waitCtx(t), 5); err != nil {
		t.Fatal(err)
	}
	var scavenged [][2]int64
	horizon, err := l.Compact(4, func(from, to int64) { scavenged = append(scavenged, [2]int64{from, to}) })
	if err != nil || horizon != 4 {
		t.Fatalf("Compact = %d %v", horizon, err)
	}
	if len(scavenged) != 1 || scavenged[0] != [2]int64{1, 4} {
		t.Fatalf("scavenge ranges = %v", scavenged)
	}
	if got := l.CompactedTo(); got != 4 {
		t.Fatalf("CompactedTo = %d", got)
	}
	for pos := int64(1); pos < 4; pos++ {
		if _, _, err := store.Read(LogKey("g", pos), kvstore.Latest); !errors.Is(err, kvstore.ErrNotFound) {
			t.Fatalf("log row %d survived compaction: %v", pos, err)
		}
	}
	if _, ok := l.Entry(4); !ok {
		t.Fatal("entry at the horizon must survive")
	}
	// A horizon above the watermark clamps; one below is a no-op.
	if h, err := l.Compact(99, nil); err != nil || h != 5 {
		t.Fatalf("clamped Compact = %d %v", h, err)
	}
	if h, err := l.Compact(2, nil); err != nil || h != 5 {
		t.Fatalf("stale Compact = %d %v", h, err)
	}
}

func TestLogInstallSnapshot(t *testing.T) {
	l, store := openLog(t)
	// Land the snapshot's data rows the way the service does, then jump.
	if err := store.ApplyBatch([]kvstore.BatchWrite{
		{Key: DataKey("g", "k"), Value: kvstore.Value{"v": "snap"}, TS: 7},
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.InstallSnapshot(7, EpochState{}, MigrationState{}); err != nil {
		t.Fatal(err)
	}
	if got := l.Applied(); got != 7 {
		t.Fatalf("watermark after install = %d, want 7", got)
	}
	if got := l.CompactedTo(); got != 7 {
		t.Fatalf("compacted after install = %d, want 7", got)
	}
	// Waiters at or below the horizon are released immediately.
	if err := l.WaitApplied(waitCtx(t), 7); err != nil {
		t.Fatal(err)
	}
	// An older snapshot is a no-op.
	if err := l.InstallSnapshot(3, EpochState{}, MigrationState{}); err != nil {
		t.Fatal(err)
	}
	if got := l.Applied(); got != 7 {
		t.Fatalf("watermark regressed to %d", got)
	}
	// The log continues above the horizon.
	if _, err := l.Append(8, testEntry("t8", 7, map[string]string{"k": "8"})); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitApplied(waitCtx(t), 8); err != nil {
		t.Fatal(err)
	}
}

func TestLogSnapshotListsPendingAndApplied(t *testing.T) {
	l, _ := openLog(t)
	if _, err := l.Append(1, testEntry("t1", 0, map[string]string{"x": "1"})); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(3, testEntry("t3", 2, map[string]string{"x": "3"})); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitApplied(waitCtx(t), 1); err != nil {
		t.Fatal(err)
	}
	snap := l.Snapshot()
	if len(snap) != 2 || !snap[1].Contains("t1") || !snap[3].Contains("t3") {
		t.Fatalf("snapshot = %v", snap)
	}
}

// BenchmarkApplyThroughput compares the replog batched-async apply pipeline
// against a reimplementation of the seed's synchronous path (one
// WriteIdempotent per data key plus one meta-row Update per position, under
// one mutex). Entries carry 4 writes each; appenders deliver bursts of 32
// positions and wait for the watermark, as the commit fan-in does.
func BenchmarkApplyThroughput(b *testing.B) {
	const burst = 32
	const writesPerEntry = 4
	entryAt := func(pos int64) []byte {
		writes := make(map[string]string, writesPerEntry)
		for k := 0; k < writesPerEntry; k++ {
			writes[fmt.Sprintf("key-%d", (int(pos)+k)%97)] = "v"
		}
		return testEntry(fmt.Sprintf("t%d", pos), pos-1, writes)
	}

	b.Run("replog-batched", func(b *testing.B) {
		store := kvstore.New()
		l := Open(store, "g")
		defer l.Close()
		b.ReportAllocs()
		b.ResetTimer()
		pos := int64(0)
		for i := 0; i < b.N; i++ {
			base := pos
			for j := 0; j < burst; j++ {
				pos++
				if _, err := l.Append(pos, entryAt(pos)); err != nil {
					b.Fatal(err)
				}
			}
			if err := l.WaitApplied(context.Background(), base+burst); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("seed-synchronous", func(b *testing.B) {
		store := kvstore.New()
		var mu sync.Mutex
		last := int64(0)
		apply := func(pos int64, entryBytes []byte) error {
			mu.Lock()
			defer mu.Unlock()
			if err := store.WriteIdempotent(LogKey("g", pos), kvstore.Value{"entry": string(entryBytes)}, 0); err != nil {
				return err
			}
			entry, err := wal.Decode(entryBytes)
			if err != nil {
				return err
			}
			for k, v := range entry.Writes() {
				if err := store.WriteIdempotent(DataKey("g", k), kvstore.Value{"v": v}, pos); err != nil {
					return err
				}
			}
			last = pos
			return store.Update(MetaKey("g"), func(cur kvstore.Value) (kvstore.Value, error) {
				if cur == nil {
					cur = kvstore.Value{}
				}
				cur["last"] = strconv.FormatInt(last, 10)
				return cur, nil
			})
		}
		b.ReportAllocs()
		b.ResetTimer()
		pos := int64(0)
		for i := 0; i < b.N; i++ {
			for j := 0; j < burst; j++ {
				pos++
				if err := apply(pos, entryAt(pos)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
