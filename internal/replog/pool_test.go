package replog

import (
	"fmt"
	"sync"
	"testing"

	"paxoscp/internal/kvstore"
)

// TestSetApplyPoolManyGroups drives appends into many groups of one Set —
// far more groups than pool workers — from concurrent goroutines, and checks
// every group's watermark advances to its full run. This is the pooled
// equivalent of the per-log apply goroutine: same per-group ordering, shared
// workers.
func TestSetApplyPoolManyGroups(t *testing.T) {
	store := kvstore.New()
	set := NewSet(store)
	defer set.Close()

	const groups, entries = 32, 25
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			l := set.Get(fmt.Sprintf("g%02d", g))
			for pos := int64(1); pos <= entries; pos++ {
				entry := testEntry(fmt.Sprintf("t%d-%d", g, pos), pos-1,
					map[string]string{"k": fmt.Sprintf("v%d", pos)})
				if _, err := l.Append(pos, entry); err != nil {
					t.Errorf("group %d append %d: %v", g, pos, err)
					return
				}
			}
			if err := l.WaitApplied(waitCtx(t), entries); err != nil {
				t.Errorf("group %d wait: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < groups; g++ {
		l := set.Get(fmt.Sprintf("g%02d", g))
		if got := l.Applied(); got != entries {
			t.Fatalf("group %d applied = %d, want %d", g, got, entries)
		}
		v, ts, err := store.Read(DataKey(l.Group(), "k"), kvstore.Latest)
		if err != nil || v["v"] != fmt.Sprintf("v%d", entries) || ts != entries {
			t.Fatalf("group %d data row = %v @%d (%v)", g, v, ts, err)
		}
	}
}

// TestSetApplyPoolNotifyDuringDrain pins the schedule/drain race: a notify
// landing while the shard worker is mid-drain must re-queue the log, never
// drop the wakeup (the sched flag is cleared before drain runs).
func TestSetApplyPoolNotifyDuringDrain(t *testing.T) {
	set := NewSet(kvstore.New())
	defer set.Close()
	l := set.Get("g")
	for round := int64(0); round < 200; round++ {
		pos := round*2 + 1
		if _, err := l.Append(pos, testEntry(fmt.Sprintf("a%d", pos), pos-1, nil)); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(pos+1, testEntry(fmt.Sprintf("a%d", pos+1), pos, nil)); err != nil {
			t.Fatal(err)
		}
		if err := l.WaitApplied(waitCtx(t), pos+1); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestSetCloseStopsPool checks Close is safe with queued work and that a
// late Get on a closed Set returns a closed log rather than hanging.
func TestSetCloseStopsPool(t *testing.T) {
	set := NewSet(kvstore.New())
	l := set.Get("g")
	for pos := int64(1); pos <= 10; pos++ {
		if _, err := l.Append(pos, testEntry(fmt.Sprintf("c%d", pos), pos-1, nil)); err != nil {
			t.Fatal(err)
		}
	}
	set.Close()
	late := set.Get("h")
	if err := late.WaitApplied(waitCtx(t), 1); err != ErrClosed {
		t.Fatalf("wait on closed-set log = %v, want ErrClosed", err)
	}
}

func TestGroupShardStable(t *testing.T) {
	if GroupShard("users/42") != GroupShard("users/42") {
		t.Fatal("groupShard not deterministic")
	}
	distinct := map[uint32]bool{}
	for i := 0; i < 64; i++ {
		distinct[GroupShard(fmt.Sprintf("g%d", i))%8] = true
	}
	if len(distinct) < 4 {
		t.Fatalf("64 groups landed on %d of 8 shards — hash badly skewed", len(distinct))
	}
}
