package replog

import "sync"

// applyPool shards apply scheduling for the Logs of one Set across a fixed
// set of workers keyed by group, so one group with a deep pending run cannot
// serialize every other group's watermark advance behind a single goroutine
// — while each group's own entries still apply strictly in log order,
// because a group is pinned to one shard and a worker drains one log at a
// time (DESIGN.md §13). Per-group ordering is what the fencing invariants
// F1–F3 and the write invariants W1–W4 rest on; cross-group ordering was
// never promised.
type applyPool struct {
	workers  []applyWorker
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

type applyWorker struct {
	mu    sync.Mutex
	queue []*Log        // logs with (possibly) undrained pending entries
	wake  chan struct{} // capacity 1
}

func newApplyPool(n int) *applyPool {
	if n < 1 {
		n = 1
	}
	p := &applyPool{workers: make([]applyWorker, n), stopCh: make(chan struct{})}
	for i := range p.workers {
		p.workers[i].wake = make(chan struct{}, 1)
		p.wg.Add(1)
		go p.run(&p.workers[i])
	}
	return p
}

// schedule queues l on its shard's worker unless it is already queued.
// Callers may hold l.mu: the lock order is l.mu → w.mu only (the worker
// never holds w.mu while taking l.mu).
func (p *applyPool) schedule(l *Log) {
	if !l.sched.CompareAndSwap(false, true) {
		return // already queued; the pending drain will absorb this notify
	}
	w := &p.workers[l.shard%uint32(len(p.workers))]
	w.mu.Lock()
	w.queue = append(w.queue, l)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (p *applyPool) run(w *applyWorker) {
	defer p.wg.Done()
	for {
		w.mu.Lock()
		var l *Log
		if len(w.queue) > 0 {
			l = w.queue[0]
			copy(w.queue, w.queue[1:])
			w.queue[len(w.queue)-1] = nil
			w.queue = w.queue[:len(w.queue)-1]
		}
		w.mu.Unlock()
		if l == nil {
			select {
			case <-w.wake:
			case <-p.stopCh:
				return
			}
			continue
		}
		// Clear the queued mark before draining: a notify landing during the
		// drain re-queues the log, and drain itself loops until no contiguous
		// pending run remains, so a notify in the gap between the Store and
		// the drain's last pass is never lost.
		l.sched.Store(false)
		if !l.stopped() {
			l.drain()
		}
	}
}

// close stops the workers after they finish the log currently draining.
// Queued logs that were already Closed are skipped, not drained.
func (p *applyPool) close() {
	p.stopOnce.Do(func() { close(p.stopCh) })
	p.wg.Wait()
}

// GroupShard maps a group name to a stable shard index (FNV-1a), shared by
// the replog apply pool and the service dispatcher so both pin a group to
// one worker.
func GroupShard(group string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(group); i++ {
		h ^= uint32(group[i])
		h *= 16777619
	}
	return h
}
