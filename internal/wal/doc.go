// Package wal models the replicated write-ahead log of paper §3.2.
//
// Each transaction group has one log. A log position holds one Entry. Under
// the basic Paxos commit protocol an Entry carries exactly one transaction;
// under Paxos-CP it carries an ordered list of non-conflicting transactions
// (the "combination" enhancement, §5). The Entry itself is the value agreed
// on by one Paxos instance.
//
// Two fencing fields extend the model for the leader-based protocol
// (DESIGN.md §11): Entry.Epoch stamps the master epoch an entry was
// proposed under (0 = unfenced, as Basic and CP clients propose), and a
// claim entry (Entry.Master set, no transactions; NewClaim) establishes or
// renews a group's mastership at an epoch, totally ordered with the
// transactions it fences.
//
// The binary codec (codec.go) serializes entries both as the Paxos value on
// the wire and as the payload in the store's log rows; unfenced entries
// encode byte-identically with pre-fencing versions.
package wal
