package wal

import (
	"fmt"
	"strings"
)

// Handoff entries drive live shard migration (DESIGN.md §15): when the
// placement grows, every key range won by the new group is copied from its
// old owner and then cut over with handoff entries committed through both
// groups' replicated logs. Because the handoff rides the ordinary log, it is
// totally ordered against every transaction in the group and inherits epoch
// fencing (§11): a straggler master from a superseded epoch cannot commit
// into a departed range, and even a same-epoch in-flight transaction that
// lands after the handoff is void at apply time (invariant M1, enforced in
// replog's drain and mirrored by the history checker).
//
// One migration of a range From→To commits four entries, in order:
//
//	HandoffPrepare   (To's log)   the range is inbound: To refuses ordinary
//	                              reads/writes of moving keys with the
//	                              retryable "migrating" verdict while the
//	                              backfill streams in (backfill transactions
//	                              carry Txn.Backfill and pass the fence).
//	HandoffOut       (From's log) the range has departed: every later write
//	                              of a moving key in From's log is void, and
//	                              From answers reads/writes of moved keys
//	                              with the retryable "moved" verdict naming
//	                              To. The position of this entry is the
//	                              range's final frontier in From.
//	HandoffIn        (To's log)   the backfill is complete through From's
//	                              HandoffOut position: To serves the range.
//	HandoffTombstone (From's log) the cutover is durable in To; From's
//	                              frozen rows for the range may be scavenged
//	                              at the next compaction.
type HandoffPhase uint8

const (
	// HandoffPrepare fences the moving range as inbound in the To group.
	HandoffPrepare HandoffPhase = 1
	// HandoffOut freezes the moving range in the From group.
	HandoffOut HandoffPhase = 2
	// HandoffIn opens the moved range for service in the To group.
	HandoffIn HandoffPhase = 3
	// HandoffTombstone releases the From group's frozen rows for scavenge.
	HandoffTombstone HandoffPhase = 4
)

// String names the phase for status output and log rendering.
func (p HandoffPhase) String() string {
	switch p {
	case HandoffPrepare:
		return "prepare"
	case HandoffOut:
		return "out"
	case HandoffIn:
		return "in"
	case HandoffTombstone:
		return "tombstone"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}

// Handoff describes one range migration step between two groups. The entry
// carries the full group list of the destination placement, so every replica
// (and the offline history checker) can decide key membership of the moving
// range purely from log contents — the set of keys moving From→To is exactly
// {k : GroupFor(k) under Groups == To and GroupFor(k) under Groups\{To} ==
// From}, computable with the same pure rendezvous hash every process runs.
type Handoff struct {
	Phase HandoffPhase
	// From is the group the range departs; To is the group that wins it.
	From string
	To   string
	// Groups is the complete, ordered group list of the placement being
	// migrated to (it contains To; removing To yields the old placement).
	Groups []string
	// Version is the destination placement version (its group count) —
	// surfaced in migration status so operators can tell steps apart.
	Version int64
}

// NewHandoff returns a handoff entry for one phase of a From→To migration
// under the destination group list.
func NewHandoff(phase HandoffPhase, from, to string, groups []string) Entry {
	return Entry{Handoff: &Handoff{
		Phase:   phase,
		From:    from,
		To:      to,
		Groups:  append([]string(nil), groups...),
		Version: int64(len(groups)),
	}}
}

// Clone returns a deep copy of h.
func (h *Handoff) Clone() *Handoff {
	if h == nil {
		return nil
	}
	out := *h
	out.Groups = append([]string(nil), h.Groups...)
	return &out
}

// String renders e.g. "out g3->g9 v9".
func (h *Handoff) String() string {
	return fmt.Sprintf("%s %s->%s v%d", h.Phase, h.From, h.To, h.Version)
}

// IsHandoff reports whether e is a migration handoff entry.
func (e Entry) IsHandoff() bool { return e.Handoff != nil }

// handoffString renders the handoff form of Entry.String.
func (e Entry) handoffString() string {
	var b strings.Builder
	b.WriteByte('[')
	if e.Epoch != 0 {
		fmt.Fprintf(&b, "e%d:", e.Epoch)
	}
	b.WriteString("handoff ")
	b.WriteString(e.Handoff.String())
	b.WriteByte(']')
	return b.String()
}
