package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The binary codec serializes Entries for two purposes: as the Paxos value
// exchanged in accept/apply messages, and as the payload stored in the
// kvstore's log rows. The format is a compact length-prefixed layout built on
// encoding/binary (stdlib only):
//
//	v1: magic(2) version(1) ntxns(uvarint) txn*
//	v2: magic(2) version(1) epoch(varint) master(str) ntxns(uvarint) txn*
//	v3: magic(2) version(1) epoch(varint) master(str) handoff(0|1)
//	    [phase(1) from(str) to(str) pversion(varint) ngroups(uvarint) group*]
//	    ntxns(uvarint) txn3*
//	txn: id readpos(varint) origin nreads(uvarint) read* nwrites(uvarint) (k v)*
//	txn3: id readpos(varint) origin flags(1) nreads(uvarint) read*
//	      nwrites(uvarint) (k v)*
//	str: len(uvarint) bytes
//
// A nil/empty entry encodes to the no-op entry. Version 2 adds the epoch
// fencing fields (DESIGN.md §11); an entry with no epoch and no claim still
// encodes as version 1, so unfenced entries — everything Basic and CP clients
// produce — are byte-identical with pre-fencing peers and persisted stores.
// Version 3 adds the migration fields (Entry.Handoff, Txn.Backfill;
// DESIGN.md §15) and is used only when one of them is set, so every entry a
// non-migrating workload produces still round-trips at its old version byte
// and all three versions decode.

const (
	codecMagic   = 0x5743 // "WC"
	codecVersion = 1
	// codecVersionEpoch is the layout carrying Entry.Epoch and Entry.Master,
	// used only when either is set.
	codecVersionEpoch = 2
	// codecVersionMigrate is the layout carrying Entry.Handoff and the
	// per-transaction Backfill flag, used only when one of them is set.
	codecVersionMigrate = 3
	// txnFlagBackfill marks a migration backfill transaction in the v3
	// per-transaction flags byte.
	txnFlagBackfill = 0x01
	// maxStrLen caps decoded string lengths to defend against corrupt or
	// hostile payloads arriving over the UDP transport.
	maxStrLen = 1 << 20
	// maxCount caps decoded element counts.
	maxCount = 1 << 16
)

// ErrCorrupt is returned by Decode for malformed payloads.
var ErrCorrupt = errors.New("wal: corrupt entry encoding")

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func writeVarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func writeString(buf *bytes.Buffer, s string) {
	writeUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

// needsMigrate reports whether e uses any v3-only field.
func needsMigrate(e Entry) bool {
	if e.Handoff != nil {
		return true
	}
	for _, t := range e.Txns {
		if t.Backfill {
			return true
		}
	}
	return false
}

// Encode serializes e to the compact binary format.
func Encode(e Entry) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint16(codecMagic))
	migrate := needsMigrate(e)
	switch {
	case migrate:
		buf.WriteByte(codecVersionMigrate)
		writeVarint(&buf, e.Epoch)
		writeString(&buf, e.Master)
		if h := e.Handoff; h != nil {
			buf.WriteByte(1)
			buf.WriteByte(byte(h.Phase))
			writeString(&buf, h.From)
			writeString(&buf, h.To)
			writeVarint(&buf, h.Version)
			writeUvarint(&buf, uint64(len(h.Groups)))
			for _, g := range h.Groups {
				writeString(&buf, g)
			}
		} else {
			buf.WriteByte(0)
		}
	case e.Epoch != 0 || e.Master != "":
		buf.WriteByte(codecVersionEpoch)
		writeVarint(&buf, e.Epoch)
		writeString(&buf, e.Master)
	default:
		buf.WriteByte(codecVersion)
	}
	writeUvarint(&buf, uint64(len(e.Txns)))
	for _, t := range e.Txns {
		writeString(&buf, t.ID)
		writeVarint(&buf, t.ReadPos)
		writeString(&buf, t.Origin)
		if migrate {
			var flags byte
			if t.Backfill {
				flags |= txnFlagBackfill
			}
			buf.WriteByte(flags)
		}
		writeUvarint(&buf, uint64(len(t.ReadSet)))
		for _, k := range t.ReadSet {
			writeString(&buf, k)
		}
		writeUvarint(&buf, uint64(len(t.Writes)))
		// Deterministic output: iterate keys in sorted order.
		keys := make([]string, 0, len(t.Writes))
		for k := range t.Writes {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			writeString(&buf, k)
			writeString(&buf, t.Writes[k])
		}
	}
	return buf.Bytes()
}

// sortStrings is a tiny insertion sort to avoid importing sort in the hot
// encode path for the typically 1–10 element write sets.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

type reader struct {
	buf *bytes.Reader
}

func (r reader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(r.buf)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

func (r reader) varint() (int64, error) {
	v, err := binary.ReadVarint(r.buf)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

func (r reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStrLen {
		return "", fmt.Errorf("%w: string length %d", ErrCorrupt, n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.buf, b); err != nil {
		return "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return string(b), nil
}

// Decode parses a payload produced by Encode.
func Decode(data []byte) (Entry, error) {
	r := reader{buf: bytes.NewReader(data)}
	var magic uint16
	if err := binary.Read(r.buf, binary.BigEndian, &magic); err != nil {
		return Entry{}, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if magic != codecMagic {
		return Entry{}, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, magic)
	}
	ver, err := r.buf.ReadByte()
	if err != nil || ver < codecVersion || ver > codecVersionMigrate {
		return Entry{}, fmt.Errorf("%w: bad version", ErrCorrupt)
	}
	var e Entry
	if ver >= codecVersionEpoch {
		if e.Epoch, err = r.varint(); err != nil {
			return Entry{}, err
		}
		if e.Master, err = r.str(); err != nil {
			return Entry{}, err
		}
	}
	if ver >= codecVersionMigrate {
		hflag, err := r.buf.ReadByte()
		if err != nil || hflag > 1 {
			return Entry{}, fmt.Errorf("%w: bad handoff flag", ErrCorrupt)
		}
		if hflag == 1 {
			h := &Handoff{}
			phase, err := r.buf.ReadByte()
			if err != nil {
				return Entry{}, fmt.Errorf("%w: short handoff", ErrCorrupt)
			}
			h.Phase = HandoffPhase(phase)
			if h.From, err = r.str(); err != nil {
				return Entry{}, err
			}
			if h.To, err = r.str(); err != nil {
				return Entry{}, err
			}
			if h.Version, err = r.varint(); err != nil {
				return Entry{}, err
			}
			ng, err := r.uvarint()
			if err != nil {
				return Entry{}, err
			}
			if ng > maxCount {
				return Entry{}, fmt.Errorf("%w: handoff group count %d", ErrCorrupt, ng)
			}
			h.Groups = make([]string, 0, ng)
			for i := uint64(0); i < ng; i++ {
				g, err := r.str()
				if err != nil {
					return Entry{}, err
				}
				h.Groups = append(h.Groups, g)
			}
			e.Handoff = h
		}
	}
	ntxns, err := r.uvarint()
	if err != nil {
		return Entry{}, err
	}
	if ntxns > maxCount {
		return Entry{}, fmt.Errorf("%w: txn count %d", ErrCorrupt, ntxns)
	}
	e.Txns = make([]Txn, 0, ntxns)
	for i := uint64(0); i < ntxns; i++ {
		var t Txn
		if t.ID, err = r.str(); err != nil {
			return Entry{}, err
		}
		if t.ReadPos, err = r.varint(); err != nil {
			return Entry{}, err
		}
		if t.Origin, err = r.str(); err != nil {
			return Entry{}, err
		}
		if ver >= codecVersionMigrate {
			flags, err := r.buf.ReadByte()
			if err != nil {
				return Entry{}, fmt.Errorf("%w: short txn flags", ErrCorrupt)
			}
			t.Backfill = flags&txnFlagBackfill != 0
		}
		nr, err := r.uvarint()
		if err != nil {
			return Entry{}, err
		}
		if nr > maxCount {
			return Entry{}, fmt.Errorf("%w: read set size %d", ErrCorrupt, nr)
		}
		t.ReadSet = make([]string, 0, nr)
		for j := uint64(0); j < nr; j++ {
			k, err := r.str()
			if err != nil {
				return Entry{}, err
			}
			t.ReadSet = append(t.ReadSet, k)
		}
		nw, err := r.uvarint()
		if err != nil {
			return Entry{}, err
		}
		if nw > maxCount {
			return Entry{}, fmt.Errorf("%w: write set size %d", ErrCorrupt, nw)
		}
		t.Writes = make(map[string]string, nw)
		for j := uint64(0); j < nw; j++ {
			k, err := r.str()
			if err != nil {
				return Entry{}, err
			}
			v, err := r.str()
			if err != nil {
				return Entry{}, err
			}
			t.Writes[k] = v
		}
		e.Txns = append(e.Txns, t)
	}
	if r.buf.Len() != 0 {
		return Entry{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.buf.Len())
	}
	return e, nil
}
