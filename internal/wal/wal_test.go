package wal

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func txn(id string, readPos int64, reads []string, writes map[string]string) Txn {
	return Txn{ID: id, Origin: "V1", ReadPos: readPos, ReadSet: reads, Writes: writes}
}

func TestTxnIsReadOnly(t *testing.T) {
	ro := txn("r", 0, []string{"a"}, nil)
	if !ro.IsReadOnly() {
		t.Fatal("transaction without writes must be read-only")
	}
	rw := txn("w", 0, nil, map[string]string{"a": "1"})
	if rw.IsReadOnly() {
		t.Fatal("transaction with writes must not be read-only")
	}
}

func TestTxnCloneIndependence(t *testing.T) {
	orig := txn("t", 3, []string{"a"}, map[string]string{"x": "1"})
	c := orig.Clone()
	c.ReadSet[0] = "mutated"
	c.Writes["x"] = "mutated"
	if orig.ReadSet[0] != "a" || orig.Writes["x"] != "1" {
		t.Fatalf("Clone shares storage: %v", orig)
	}
}

func TestEntrySerializableOrder(t *testing.T) {
	t1 := txn("t1", 4, []string{"a"}, map[string]string{"b": "1"})
	t2 := txn("t2", 4, []string{"c"}, map[string]string{"d": "1"})
	t3 := txn("t3", 4, []string{"b"}, map[string]string{"e": "1"}) // reads t1's write

	if !NewEntry(t1, t2).SerializableOrder() {
		t.Fatal("disjoint txns must be combinable")
	}
	if NewEntry(t1, t3).SerializableOrder() {
		t.Fatal("t3 reads t1's write; [t1,t3] must not be serializable in order")
	}
	// The reverse order is fine: t3 reads b before t1 writes it.
	if !NewEntry(t3, t1).SerializableOrder() {
		t.Fatal("[t3,t1] must be serializable in order")
	}
}

func TestEntryConflicts(t *testing.T) {
	t1 := txn("t1", 0, nil, map[string]string{"x": "1"})
	e := NewEntry(t1)
	if !e.Conflicts(txn("t2", 0, []string{"x"}, nil)) {
		t.Fatal("reader of x must conflict with writer of x")
	}
	if e.Conflicts(txn("t3", 0, []string{"y"}, map[string]string{"x": "2"})) {
		t.Fatal("write-write is not a combination conflict (list order resolves it)")
	}
}

func TestEntryWritesLastWins(t *testing.T) {
	t1 := txn("t1", 0, nil, map[string]string{"x": "old", "y": "1"})
	t2 := txn("t2", 0, nil, map[string]string{"x": "new"})
	w := NewEntry(t1, t2).Writes()
	if w["x"] != "new" || w["y"] != "1" {
		t.Fatalf("Writes = %v", w)
	}
}

func TestNoOp(t *testing.T) {
	if !NoOp().IsNoOp() {
		t.Fatal("NoOp must be a no-op")
	}
	if NoOp().Contains("t") {
		t.Fatal("NoOp contains nothing")
	}
	if !NoOp().SerializableOrder() {
		t.Fatal("NoOp is trivially serializable")
	}
}

func TestEntryContains(t *testing.T) {
	e := NewEntry(txn("a", 0, nil, map[string]string{"k": "v"}))
	if !e.Contains("a") || e.Contains("b") {
		t.Fatalf("Contains misbehaves: %v", e)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := NewEntry(
		txn("txn-1", 42, []string{"attr1", "attr2"}, map[string]string{"attr3": "v3", "attr4": ""}),
		txn("txn-2", 42, nil, map[string]string{"a": "with\x00binary\xff"}),
	)
	got, err := Decode(Encode(e))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(normalize(e), normalize(got)) {
		t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", e, got)
	}
}

func TestEncodeDecodeNoOp(t *testing.T) {
	got, err := Decode(Encode(NoOp()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !got.IsNoOp() {
		t.Fatalf("no-op round trip = %v", got)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x00},
		{0xde, 0xad, 0x01, 0x00},       // bad magic
		{0x57, 0x43, 0x09, 0x00},       // bad version
		{0x57, 0x43, 0x01, 0xff, 0xff}, // truncated count varint then EOF
	}
	for i, data := range cases {
		if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	// Trailing garbage after a valid entry.
	valid := Encode(NewEntry(txn("t", 0, nil, map[string]string{"a": "b"})))
	if _, err := Decode(append(valid, 0x00)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeTruncatedEverywhere(t *testing.T) {
	full := Encode(NewEntry(
		txn("txn-long-id", 7, []string{"read-a", "read-b"}, map[string]string{"w1": "v1", "w2": "v2"}),
	))
	for cut := 0; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(full))
		}
	}
	if _, err := Decode(full); err != nil {
		t.Fatalf("full payload failed: %v", err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	e := NewEntry(txn("t", 0, []string{"r"}, map[string]string{
		"z": "1", "a": "2", "m": "3", "b": "4",
	}))
	first := Encode(e)
	for i := 0; i < 10; i++ {
		if string(Encode(e)) != string(first) {
			t.Fatal("Encode is not deterministic across map iteration orders")
		}
	}
}

// normalize empties nil-vs-empty differences so DeepEqual compares semantics.
func normalize(e Entry) Entry {
	out := e.Clone()
	for i := range out.Txns {
		if out.Txns[i].ReadSet == nil {
			out.Txns[i].ReadSet = []string{}
		}
		if out.Txns[i].Writes == nil {
			out.Txns[i].Writes = map[string]string{}
		}
	}
	if out.Txns == nil {
		out.Txns = []Txn{}
	}
	return out
}

// TestPropCodecRoundTrip round-trips randomly generated entries.
func TestPropCodecRoundTrip(t *testing.T) {
	f := func(ids []string, readPos int64, reads []string, wk, wv []string) bool {
		var txns []Txn
		for i, id := range ids {
			if i >= 4 {
				break
			}
			writes := map[string]string{}
			for j := range wk {
				if j < len(wv) {
					writes[wk[j]] = wv[j]
				}
			}
			txns = append(txns, Txn{
				ID: id, Origin: "O", ReadPos: readPos,
				ReadSet: reads, Writes: writes,
			})
		}
		e := NewEntry(txns...)
		got, err := Decode(Encode(e))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalize(e), normalize(got))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropSerializableOrderPrefixClosed: if an entry's order is serializable,
// every prefix of it is too.
func TestPropSerializableOrderPrefixClosed(t *testing.T) {
	f := func(seed uint8) bool {
		// Build a random entry over a tiny key space to force conflicts.
		keys := []string{"a", "b", "c"}
		var txns []Txn
		n := int(seed%5) + 1
		for i := 0; i < n; i++ {
			r := keys[(int(seed)+i)%3]
			w := keys[(int(seed)+2*i+1)%3]
			txns = append(txns, Txn{
				ID: string(rune('a' + i)), ReadSet: []string{r},
				Writes: map[string]string{w: "v"},
			})
		}
		e := NewEntry(txns...)
		if !e.SerializableOrder() {
			return true // vacuous
		}
		for cut := 0; cut <= len(e.Txns); cut++ {
			if !(Entry{Txns: e.Txns[:cut]}).SerializableOrder() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
