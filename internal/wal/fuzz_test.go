package wal

import (
	"reflect"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the codec: it must never panic, and
// anything it accepts must re-encode to a decodable, equivalent entry
// (decode∘encode is the identity on the codec's image).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(NoOp()))
	f.Add(Encode(NewEntry(Txn{
		ID: "t1", Origin: "V1", ReadPos: 7,
		ReadSet: []string{"a", "b"},
		Writes:  map[string]string{"c": "1", "d": ""},
	})))
	f.Add([]byte{0x57, 0x43, 0x01, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		entry, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(entry)
		back, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of accepted entry failed: %v", err)
		}
		if !reflect.DeepEqual(normalize(entry), normalize(back)) {
			t.Fatalf("decode∘encode not stable:\n first: %#v\nsecond: %#v", entry, back)
		}
	})
}

// FuzzEncodeRoundTrip fuzzes structured inputs through encode→decode.
func FuzzEncodeRoundTrip(f *testing.F) {
	f.Add("id", "origin", int64(3), "read1", "wkey", "wval")
	f.Add("", "", int64(-9), "", "", "")
	f.Fuzz(func(t *testing.T, id, origin string, readPos int64, read, wk, wv string) {
		e := NewEntry(Txn{
			ID: id, Origin: origin, ReadPos: readPos,
			ReadSet: []string{read},
			Writes:  map[string]string{wk: wv},
		})
		got, err := Decode(Encode(e))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !reflect.DeepEqual(normalize(e), normalize(got)) {
			t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", e, got)
		}
	})
}
