package wal

import (
	"bytes"
	"reflect"
	"testing"
)

// TestHandoffCodecRoundTrip: every handoff phase, with and without epoch
// stamping, survives Encode/Decode exactly.
func TestHandoffCodecRoundTrip(t *testing.T) {
	groups := []string{"g0", "g1", "g2", "g8"}
	for _, phase := range []HandoffPhase{HandoffPrepare, HandoffOut, HandoffIn, HandoffTombstone} {
		e := NewHandoff(phase, "g1", "g8", groups)
		e.Epoch = 7
		got, err := Decode(Encode(e))
		if err != nil {
			t.Fatalf("%v: decode: %v", phase, err)
		}
		if got.Epoch != e.Epoch || len(got.Txns) != 0 || !reflect.DeepEqual(got.Handoff, e.Handoff) {
			t.Fatalf("%v: round trip: got %+v (%+v), want %+v (%+v)",
				phase, got, got.Handoff, e, e.Handoff)
		}
		if !got.IsHandoff() || got.IsClaim() || !got.IsNoOp() {
			t.Fatalf("%v: classification: IsHandoff=%v IsClaim=%v IsNoOp=%v",
				phase, got.IsHandoff(), got.IsClaim(), got.IsNoOp())
		}
	}
}

// TestBackfillFlagRoundTrip: the per-transaction backfill flag survives the
// codec, and only flagged transactions carry it back out.
func TestBackfillFlagRoundTrip(t *testing.T) {
	e := NewEntry(
		Txn{ID: "b1", Origin: "V1", ReadPos: 3, Writes: map[string]string{"a": "1"}, Backfill: true},
		Txn{ID: "t2", Origin: "V2", ReadPos: 3, Writes: map[string]string{"b": "2"}},
	)
	e.Epoch = 2
	got, err := Decode(Encode(e))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Txns[0].Backfill || got.Txns[1].Backfill {
		t.Fatalf("backfill flags: got %v/%v, want true/false",
			got.Txns[0].Backfill, got.Txns[1].Backfill)
	}
}

// TestNonMigrationEntriesStayOldVersion: entries that use no migration field
// must keep their pre-migration encoding byte for byte — mixed-version
// replicas and persisted stores depend on it.
func TestNonMigrationEntriesStayOldVersion(t *testing.T) {
	plain := NewEntry(Txn{ID: "t", Origin: "V1", Writes: map[string]string{"k": "v"}})
	if b := Encode(plain); b[2] != codecVersion {
		t.Fatalf("plain entry encoded as version %d, want %d", b[2], codecVersion)
	}
	fenced := plain.Clone()
	fenced.Epoch = 5
	if b := Encode(fenced); b[2] != codecVersionEpoch {
		t.Fatalf("fenced entry encoded as version %d, want %d", b[2], codecVersionEpoch)
	}
}

// TestHandoffClone: cloning a handoff entry deep-copies the group list.
func TestHandoffClone(t *testing.T) {
	e := NewHandoff(HandoffOut, "g0", "g3", []string{"g0", "g1", "g2", "g3"})
	c := e.Clone()
	c.Handoff.Groups[0] = "mutated"
	if e.Handoff.Groups[0] != "g0" {
		t.Fatal("Clone shares the handoff group slice")
	}
}

// TestHandoffDecodeCorrupt: truncations anywhere inside the v3 extension
// surface ErrCorrupt, never a panic or a silent partial entry.
func TestHandoffDecodeCorrupt(t *testing.T) {
	e := NewHandoff(HandoffIn, "g1", "g4", []string{"g0", "g1", "g4"})
	e.Txns = []Txn{{ID: "b", Origin: "V1", Writes: map[string]string{"k": "v"}, Backfill: true}}
	full := Encode(e)
	for cut := 3; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	// A trailing byte after a well-formed entry is corrupt too.
	if _, err := Decode(append(bytes.Clone(full), 0x00)); err == nil {
		t.Fatal("trailing byte decoded cleanly")
	}
}
