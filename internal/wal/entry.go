package wal

import (
	"fmt"
	"sort"
	"strings"
)

// Txn is a committed (or candidate) read/write transaction: the union of its
// read set and write set, plus the log position its reads were served at.
type Txn struct {
	// ID uniquely identifies the transaction (client-assigned).
	ID string
	// Origin is the datacenter the issuing client is local to. Used for the
	// per-position leader optimization and per-DC reporting (Fig. 8).
	Origin string
	// ReadPos is the log position all of the transaction's reads were served
	// at (paper property A2).
	ReadPos int64
	// ReadSet lists the keys read (excluding keys first written inside the
	// transaction, per property A1).
	ReadSet []string
	// Writes maps written keys to their new values.
	Writes map[string]string
	// Backfill marks a migration backfill write (DESIGN.md §15): the
	// migration coordinator copying a moving range into its new group. A
	// backfill transaction passes the receiving group's inbound "migrating"
	// fence, which refuses every ordinary transaction touching the range
	// until the HandoffIn entry opens it.
	Backfill bool
}

// Clone returns a deep copy of t.
func (t Txn) Clone() Txn {
	out := t
	out.ReadSet = append([]string(nil), t.ReadSet...)
	out.Writes = make(map[string]string, len(t.Writes))
	for k, v := range t.Writes {
		out.Writes[k] = v
	}
	return out
}

// ReadsAny reports whether t reads any key in keys.
func (t Txn) ReadsAny(keys map[string]struct{}) bool {
	for _, k := range t.ReadSet {
		if _, ok := keys[k]; ok {
			return true
		}
	}
	return false
}

// WriteKeys returns t's written keys as a set.
func (t Txn) WriteKeys() map[string]struct{} {
	out := make(map[string]struct{}, len(t.Writes))
	for k := range t.Writes {
		out[k] = struct{}{}
	}
	return out
}

// IsReadOnly reports whether t contains no writes. Read-only transactions are
// never written to the log (paper §3.2).
func (t Txn) IsReadOnly() bool { return len(t.Writes) == 0 }

// String renders a compact human-readable form, e.g. "t1[r:a,b w:c]".
func (t Txn) String() string {
	ws := make([]string, 0, len(t.Writes))
	for k := range t.Writes {
		ws = append(ws, k)
	}
	sort.Strings(ws)
	rs := append([]string(nil), t.ReadSet...)
	sort.Strings(rs)
	return fmt.Sprintf("%s[r:%s w:%s]", t.ID, strings.Join(rs, ","), strings.Join(ws, ","))
}

// Entry is the value stored in one log position: an ordered list of
// transactions. Order matters — the list is one-copy equivalent to the serial
// history that commits its transactions in list order (paper Theorem 3).
//
// Two fencing fields ride along for the leader-based protocol (DESIGN.md
// §11). Epoch stamps the master epoch the entry was proposed under; 0 means
// unfenced (Basic and CP clients, and masters with fencing disabled). Master,
// when non-empty, marks the entry as a master-claim entry: it carries no
// transactions and instead claims (or, at the prevailing epoch, renews the
// lease of) mastership of the group for the named datacenter, effective for
// all later log positions.
type Entry struct {
	Txns []Txn

	// Epoch is the master epoch this entry was proposed under (0 = unfenced).
	// A transaction entry whose epoch is below the epoch prevailing at its
	// position is void: it commits nothing (fencing invariant F2).
	Epoch int64
	// Master, when non-empty, makes this a claim entry: the named datacenter
	// claims mastership of the group at Epoch (or renews its lease when Epoch
	// is already prevailing).
	Master string
	// Handoff, when non-nil, makes this a migration handoff entry: one phase
	// of a live range migration between groups (DESIGN.md §15). Handoff
	// entries carry no transactions and are epoch-stamped like any other
	// master-proposed entry, so they are fenced normally.
	Handoff *Handoff
}

// NewEntry returns an Entry holding the given transactions in order.
func NewEntry(txns ...Txn) Entry {
	e := Entry{Txns: make([]Txn, 0, len(txns))}
	for _, t := range txns {
		e.Txns = append(e.Txns, t.Clone())
	}
	return e
}

// NoOp returns the empty entry used to fill a log position that is learned to
// be permanently undecided during explicit recovery. It commits nothing.
func NoOp() Entry { return Entry{} }

// NewClaim returns a master-claim entry: master claims (epoch strictly above
// the prevailing one) or renews (epoch equal to the prevailing one)
// mastership of the group for every later log position (DESIGN.md §11).
func NewClaim(epoch int64, master string) Entry {
	return Entry{Epoch: epoch, Master: master}
}

// IsClaim reports whether e is a master-claim entry.
func (e Entry) IsClaim() bool { return e.Master != "" }

// IsNoOp reports whether e commits no transactions.
func (e Entry) IsNoOp() bool { return len(e.Txns) == 0 }

// Clone returns a deep copy of e.
func (e Entry) Clone() Entry {
	out := Entry{Txns: make([]Txn, 0, len(e.Txns)), Epoch: e.Epoch, Master: e.Master,
		Handoff: e.Handoff.Clone()}
	for _, t := range e.Txns {
		out.Txns = append(out.Txns, t.Clone())
	}
	return out
}

// Contains reports whether e includes a transaction with the given ID.
func (e Entry) Contains(txnID string) bool {
	for _, t := range e.Txns {
		if t.ID == txnID {
			return true
		}
	}
	return false
}

// Writes returns the union of the write sets of all transactions in e.
func (e Entry) Writes() map[string]string {
	out := make(map[string]string)
	for _, t := range e.Txns {
		for k, v := range t.Writes {
			out[k] = v // later txns in the list overwrite earlier ones
		}
	}
	return out
}

// WriteKeys returns the union of written keys as a set.
func (e Entry) WriteKeys() map[string]struct{} {
	out := make(map[string]struct{})
	for _, t := range e.Txns {
		for k := range t.Writes {
			out[k] = struct{}{}
		}
	}
	return out
}

// SerializableOrder reports whether the list order of e is one-copy
// serializable on its own: no transaction reads a key written by any
// preceding transaction in the list (paper §5, Combination). All transactions
// in a combined entry share the same read position, so a read of a key
// written earlier in the list would observe a stale version.
func (e Entry) SerializableOrder() bool {
	written := make(map[string]struct{})
	for _, t := range e.Txns {
		if t.ReadsAny(written) {
			return false
		}
		for k := range t.Writes {
			written[k] = struct{}{}
		}
	}
	return true
}

// Conflicts reports whether candidate reads any key written by the
// transactions already in e, i.e. whether appending candidate would violate
// SerializableOrder.
func (e Entry) Conflicts(candidate Txn) bool {
	return candidate.ReadsAny(e.WriteKeys())
}

// String renders the entry as "[t1[...] t2[...]]", claim entries as
// "[claim e<epoch>@<master>]", and epoch-stamped entries with an "e<epoch>:"
// prefix.
func (e Entry) String() string {
	if e.IsClaim() {
		return fmt.Sprintf("[claim e%d@%s]", e.Epoch, e.Master)
	}
	if e.IsHandoff() {
		return e.handoffString()
	}
	prefix := ""
	if e.Epoch != 0 {
		prefix = fmt.Sprintf("e%d:", e.Epoch)
	}
	if e.IsNoOp() {
		return "[" + prefix + "noop]"
	}
	parts := make([]string, len(e.Txns))
	for i, t := range e.Txns {
		parts[i] = t.String()
	}
	return "[" + prefix + strings.Join(parts, " ") + "]"
}
