package core

import (
	"encoding/json"

	"paxoscp/internal/network"
	"paxoscp/internal/replog"
)

// Operator-facing administration: replica status inspection and remotely
// triggered log compaction. These handlers are trusted-network operations —
// a production deployment would gate them behind authentication, which is
// out of scope for the reproduction (the paper's prototype has no admin
// plane at all).

// GroupStatus describes one replica's view of a transaction group.
type GroupStatus struct {
	// DC is the reporting datacenter.
	DC string `json:"dc"`
	// Group is the transaction group key.
	Group string `json:"group"`
	// LastApplied is the highest contiguously applied log position.
	LastApplied int64 `json:"lastApplied"`
	// CompactedTo is the local compaction horizon (0 = never compacted).
	CompactedTo int64 `json:"compactedTo"`
	// LogEntries is the number of decided entries held locally.
	LogEntries int `json:"logEntries"`
	// DataKeys is the number of data items with at least one version.
	DataKeys int `json:"dataKeys"`
	// Leader is the computed leader for the next log position ("" if
	// unknown).
	Leader string `json:"leader"`
	// Epoch and Master report the prevailing master epoch state for the
	// group as this replica has observed it (0/"" before any claim), and
	// LeaseValid whether the holder's lease is still live locally
	// (DESIGN.md §11).
	Epoch      int64  `json:"epoch,omitempty"`
	Master     string `json:"master,omitempty"`
	LeaseValid bool   `json:"leaseValid,omitempty"`
	// Groups lists every transaction group this replica serves (group
	// discovery, DESIGN.md §12): a routed client or operator CLI asks any
	// replica for the status of one group and learns the full group set of
	// the deployment in the same reply.
	Groups []string `json:"groups,omitempty"`
	// Fault is the replica's storage-engine fail-stop reason, "" while
	// healthy. A faulted replica refuses mutations with ErrReplicaFailed
	// and declines mastership; reads and catch-up keep serving (DESIGN.md
	// §14, fail-stop → failover).
	Fault string `json:"fault,omitempty"`
	// ScrubRuns counts completed background scrub passes and ScrubCorrupt
	// lists the files the latest pass found corrupt (disk engine only;
	// both zero/empty for in-memory replicas or before the first pass).
	ScrubRuns    int      `json:"scrubRuns,omitempty"`
	ScrubCorrupt []string `json:"scrubCorrupt,omitempty"`
	// Migrations lists the handoff records applied to this group's log in
	// log order (e.g. "out g3->g9 v9 @17"), the operator-facing live
	// migration status (DESIGN.md §15). Empty for a group that never
	// migrated.
	Migrations []string `json:"migrations,omitempty"`
}

// Status reports this replica's view of a group. The applied horizon and
// compaction horizon come from the replicated log's in-memory watermark
// state — no meta-row reads.
func (s *Service) Status(group string) GroupStatus {
	last := s.lastApplied(group)
	epoch, leaseValid := s.Mastership(group)
	st := GroupStatus{
		DC:          s.dc,
		Group:       group,
		LastApplied: last,
		CompactedTo: s.CompactedTo(group),
		LogEntries:  len(s.LogSnapshot(group)),
		DataKeys:    len(s.store.KeysWithPrefix(replog.DataPrefix(group))),
		Leader:      s.Leader(group, last+1),
		Epoch:       epoch.Epoch,
		Master:      epoch.Master,
		LeaseValid:  leaseValid,
		Groups:      s.Groups(),
	}
	for _, rec := range s.log(group).Migrations().Records {
		st.Migrations = append(st.Migrations, rec.String())
	}
	if err := s.replicaFault(); err != nil {
		st.Fault = err.Error()
	}
	// The scrub lives in the disk engine; probe it through the optional
	// health interface so core stays decoupled from the disk package.
	if hr, ok := s.store.Engine().(interface {
		HealthSummary() (string, int, []string)
	}); ok {
		fault, runs, corrupt := hr.HealthSummary()
		if st.Fault == "" {
			st.Fault = fault
		}
		st.ScrubRuns = runs
		st.ScrubCorrupt = corrupt
	}
	return st
}

// handleStats serves a status request; the reply payload is JSON.
func (s *Service) handleStats(req network.Message) network.Message {
	blob, err := json.Marshal(s.Status(req.Group))
	if err != nil {
		return network.Status(false, err.Error())
	}
	return network.Message{Kind: network.KindValue, OK: true, Payload: blob}
}

// handleCompact triggers local compaction below req.TS and reports the
// effective horizon.
func (s *Service) handleCompact(req network.Message) network.Message {
	horizon, err := s.Compact(req.Group, req.TS)
	if err != nil {
		return network.Status(false, err.Error())
	}
	return network.Message{Kind: network.KindValue, OK: true, TS: horizon}
}

// ParseGroupStatus decodes a stats reply payload.
func ParseGroupStatus(payload []byte) (GroupStatus, error) {
	var st GroupStatus
	err := json.Unmarshal(payload, &st)
	return st, err
}
