package core

import (
	"sync"

	"paxoscp/internal/network"
	"paxoscp/internal/replog"
	"paxoscp/internal/wal"
)

// This file implements per-core service dispatch (DESIGN.md §13). The
// synchronous Handler serves one request per transport goroutine; under a
// multi-group load every request contends on the same scheduler and one
// busy group's slow requests interleave with everyone else's. AsyncHandler
// instead classifies each request by its blocking profile and runs the
// short, store-bound majority on a fixed set of GOMAXPROCS workers keyed by
// group — the same shard function the replog apply pool uses — so a group's
// requests are cache-friendly and a burst on one group cannot occupy more
// than its shard. Work that can legitimately block (applies waiting on the
// watermark, catch-up, snapshots, store scans) gets its own goroutine, and
// submits enter the group pipeline asynchronously, holding no goroutine at
// all while their position replicates.

// ErrShutdown is the wire marker a closing service returns for requests that
// were still queued (or arrive) after dispatcher shutdown began. Before the
// drain existed, such requests were silently dropped and their peers burned
// a full timeout each; the explicit refusal turns a close-window request
// into an immediate retryable verdict.
const ErrShutdown = "shutting down"

// dispatchQueueLen bounds one shard worker's request backlog. Overflow does
// not block the transport read loop: an over-full shard spills requests to
// fresh goroutines, degrading to the pre-dispatch behavior instead of
// stalling every group behind one.
const dispatchQueueLen = 256

// dispatchItem pairs a queued handler invocation with its refusal: close()
// drains still-queued items through refuse so their peers get an ErrShutdown
// verdict instead of a timeout.
type dispatchItem struct {
	run    func()
	refuse func()
}

// dispatcher runs short request handlers on GOMAXPROCS shard workers.
type dispatcher struct {
	workers  []chan dispatchItem
	stopCh   chan struct{}
	stopOnce sync.Once

	// mu closes the enqueue/close race: dispatch holds it shared around the
	// closed check and the (non-blocking) channel send, close holds it
	// exclusively while flipping closed. After close() returns, no new item
	// can land in a queue, so the workers' drain loops see every item that
	// ever enqueued — nothing is dropped without a refusal.
	mu     sync.RWMutex
	closed bool
}

func newDispatcher(n int) *dispatcher {
	if n < 1 {
		n = 1
	}
	d := &dispatcher{workers: make([]chan dispatchItem, n), stopCh: make(chan struct{})}
	for i := range d.workers {
		ch := make(chan dispatchItem, dispatchQueueLen)
		d.workers[i] = ch
		go d.run(ch)
	}
	return d
}

func (d *dispatcher) run(ch chan dispatchItem) {
	for {
		select {
		case it := <-ch:
			it.run()
		case <-d.stopCh:
			// Shutdown: refuse everything still queued. dispatch stopped
			// enqueuing before stopCh closed, so the drain is complete.
			for {
				select {
				case it := <-ch:
					it.refuse()
				default:
					return
				}
			}
		}
	}
}

// dispatch runs fn on group's shard worker, or on its own goroutine when the
// shard's queue is full — the caller (the transport read loop) must never
// block here. After close, refuse is called instead (immediately, on the
// caller's goroutine).
func (d *dispatcher) dispatch(group string, fn, refuse func()) {
	ch := d.workers[replog.GroupShard(group)%uint32(len(d.workers))]
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		refuse()
		return
	}
	select {
	case ch <- dispatchItem{run: fn, refuse: refuse}:
		d.mu.RUnlock()
	default:
		d.mu.RUnlock()
		go fn()
	}
}

// close stops the workers. Requests still queued are drained with their
// refusal (ErrShutdown verdicts), not dropped: before the drain, a peer that
// raced a request against Service.Close paid a full timeout to learn
// nothing. Only called on Service shutdown.
func (d *dispatcher) close() {
	d.stopOnce.Do(func() {
		d.mu.Lock()
		d.closed = true
		d.mu.Unlock()
		close(d.stopCh)
	})
}

// AsyncHandler returns the non-blocking request entry point the transports'
// async registration (network.NewUDPAsync, Sim.EndpointAsync) plugs in.
// Classification:
//
//   - Shard worker: Paxos prepare/accept/apply-notify, read-position,
//     leader claims, log fetches, and reads already covered by the applied
//     watermark — short store-bound work, pinned per group.
//   - Own goroutine: applies (they block on the watermark), reads that need
//     catch-up, snapshots, compaction, stats, and scans (store scans,
//     possibly with catch-up to the pin).
//   - Submits: asynchronous admission into the group's pipeline; the
//     verdict callback fires when replication settles, so a submit holds no
//     goroutine while its position replicates (DESIGN.md §13).
func (s *Service) AsyncHandler() network.AsyncHandler {
	h := s.Handler()
	return func(from string, req network.Message, reply func(network.Message)) {
		refuse := func() { reply(network.Status(false, ErrShutdown)) }
		switch req.Kind {
		case network.KindSubmit:
			s.handleSubmitAsync(req, reply)
		case network.KindApply, network.KindSnapshot, network.KindCompact, network.KindStats,
			network.KindRangeSnapshot, network.KindMigrate, network.KindScan:
			// Range snapshots and scans are store scans (possibly with
			// catch-up to the pin) and migrate submissions block on
			// replication: all stay off the shard workers.
			go func() { reply(h(from, req)) }()
		case network.KindRead, network.KindReadMulti:
			if req.TS >= 0 && req.TS > s.lastApplied(req.Group) {
				// Ahead of the local log: the handler will catch up, which
				// can wait out peer round trips. Keep it off the workers.
				go func() { reply(h(from, req)) }()
				return
			}
			s.disp.dispatch(req.Group, func() { reply(h(from, req)) }, refuse)
		default:
			s.disp.dispatch(req.Group, func() { reply(h(from, req)) }, refuse)
		}
	}
}

// handleSubmitAsync is handleSubmit without the blocking wait: the verdict
// reaches reply when admission or replication settles it.
func (s *Service) handleSubmitAsync(req network.Message, reply func(network.Message)) {
	entry, err := wal.Decode(req.Payload)
	if err != nil || len(entry.Txns) != 1 {
		reply(network.Status(false, "bad submit payload"))
		return
	}
	s.pipeline(req.Group).SubmitAsync(entry.Txns[0], reply)
}
