package core

import (
	"sync"

	"paxoscp/internal/network"
	"paxoscp/internal/replog"
	"paxoscp/internal/wal"
)

// This file implements per-core service dispatch (DESIGN.md §13). The
// synchronous Handler serves one request per transport goroutine; under a
// multi-group load every request contends on the same scheduler and one
// busy group's slow requests interleave with everyone else's. AsyncHandler
// instead classifies each request by its blocking profile and runs the
// short, store-bound majority on a fixed set of GOMAXPROCS workers keyed by
// group — the same shard function the replog apply pool uses — so a group's
// requests are cache-friendly and a burst on one group cannot occupy more
// than its shard. Work that can legitimately block (applies waiting on the
// watermark, catch-up, snapshots, store scans) gets its own goroutine, and
// submits enter the group pipeline asynchronously, holding no goroutine at
// all while their position replicates.

// dispatchQueueLen bounds one shard worker's request backlog. Overflow does
// not block the transport read loop: an over-full shard spills requests to
// fresh goroutines, degrading to the pre-dispatch behavior instead of
// stalling every group behind one.
const dispatchQueueLen = 256

// dispatcher runs short request handlers on GOMAXPROCS shard workers.
type dispatcher struct {
	workers  []chan func()
	stopCh   chan struct{}
	stopOnce sync.Once
}

func newDispatcher(n int) *dispatcher {
	if n < 1 {
		n = 1
	}
	d := &dispatcher{workers: make([]chan func(), n), stopCh: make(chan struct{})}
	for i := range d.workers {
		ch := make(chan func(), dispatchQueueLen)
		d.workers[i] = ch
		go d.run(ch)
	}
	return d
}

func (d *dispatcher) run(ch chan func()) {
	for {
		select {
		case fn := <-ch:
			fn()
		case <-d.stopCh:
			return
		}
	}
}

// dispatch runs fn on group's shard worker, or on its own goroutine when
// the shard's queue is full — the caller (the transport read loop) must
// never block here.
func (d *dispatcher) dispatch(group string, fn func()) {
	ch := d.workers[replog.GroupShard(group)%uint32(len(d.workers))]
	select {
	case ch <- fn:
	default:
		go fn()
	}
}

// close stops the workers. Requests still queued are dropped — their peers
// time out, which is indistinguishable from the message loss the protocol
// already tolerates. Only called on Service shutdown.
func (d *dispatcher) close() {
	d.stopOnce.Do(func() { close(d.stopCh) })
}

// AsyncHandler returns the non-blocking request entry point the transports'
// async registration (network.NewUDPAsync, Sim.EndpointAsync) plugs in.
// Classification:
//
//   - Shard worker: Paxos prepare/accept/apply-notify, read-position,
//     leader claims, log fetches, and reads already covered by the applied
//     watermark — short store-bound work, pinned per group.
//   - Own goroutine: applies (they block on the watermark), reads that need
//     catch-up, snapshots, compaction, and stats (store scans).
//   - Submits: asynchronous admission into the group's pipeline; the
//     verdict callback fires when replication settles, so a submit holds no
//     goroutine while its position replicates (DESIGN.md §13).
func (s *Service) AsyncHandler() network.AsyncHandler {
	h := s.Handler()
	return func(from string, req network.Message, reply func(network.Message)) {
		switch req.Kind {
		case network.KindSubmit:
			s.handleSubmitAsync(req, reply)
		case network.KindApply, network.KindSnapshot, network.KindCompact, network.KindStats,
			network.KindRangeSnapshot, network.KindMigrate:
			// Range snapshots are store scans (possibly with catch-up to the
			// pin) and migrate submissions block on replication: both stay
			// off the shard workers.
			go func() { reply(h(from, req)) }()
		case network.KindRead, network.KindReadMulti:
			if req.TS >= 0 && req.TS > s.lastApplied(req.Group) {
				// Ahead of the local log: the handler will catch up, which
				// can wait out peer round trips. Keep it off the workers.
				go func() { reply(h(from, req)) }()
				return
			}
			s.disp.dispatch(req.Group, func() { reply(h(from, req)) })
		default:
			s.disp.dispatch(req.Group, func() { reply(h(from, req)) })
		}
	}
}

// handleSubmitAsync is handleSubmit without the blocking wait: the verdict
// reaches reply when admission or replication settles it.
func (s *Service) handleSubmitAsync(req network.Message, reply func(network.Message)) {
	entry, err := wal.Decode(req.Payload)
	if err != nil || len(entry.Txns) != 1 {
		reply(network.Status(false, "bad submit payload"))
		return
	}
	s.pipeline(req.Group).SubmitAsync(entry.Txns[0], reply)
}
