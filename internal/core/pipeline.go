package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"paxoscp/internal/network"
	"paxoscp/internal/replog"
	"paxoscp/internal/wal"
)

// This file implements the master's pipelined submit path (DESIGN.md §8).
// The pre-pipeline master serialized every submitted transaction through a
// per-group sequencer lock held across the whole replication round trip, so
// one WAN Paxos round gated the group's entire submit throughput. The
// pipeline generalizes the paper's two Paxos-CP mechanisms to the
// leader-based design:
//
//   - Combination: transactions queued while earlier positions replicate are
//     merged into a single multi-transaction log entry (one Paxos instance
//     commits the whole batch), exactly the paper's §5 combination applied
//     at the master instead of in the client's value-selection rule.
//   - Promotion: a batch whose position is decided with a foreign value (a
//     failover race, recovery interference) is re-queued to compete for the
//     next position instead of aborting; only transactions whose reads the
//     foreign entry invalidated abort.
//
// Up to Window.Limit() positions replicate concurrently; conflict checks run
// speculatively against the in-flight window (replog.Window), and replog's
// out-of-order Append plus watermark apply retire decided positions in
// order. The pipeline assumes one active master per group at a time (the
// paper's long-term master, §7); see DESIGN.md §8 for the invariants and the
// failover analysis.

const (
	// DefaultSubmitWindow is how many Paxos positions the master keeps in
	// flight concurrently per group. 1 reproduces the serial master.
	DefaultSubmitWindow = 8
	// DefaultSubmitCombine caps how many queued transactions are combined
	// into one multi-transaction log entry.
	DefaultSubmitCombine = 4
	// submitAttempts caps how many positions one submission may compete for
	// (promotion budget, mirroring the serial path's retry cap).
	submitAttempts = 8
	// DefaultSubmitQueue bounds how many submissions may wait in one group's
	// pipeline queue. Beyond it, admission control fails new submissions fast
	// with ErrOverloaded instead of stacking unbounded latency (DESIGN.md
	// §13). Promotion re-enqueues are exempt — an admitted transaction is
	// never dropped by the cap.
	DefaultSubmitQueue = 256
)

// ErrOverloaded is the wire marker for an admission-control refusal: the
// group's submit queue at the master is at capacity. Retryable — nothing
// reached the log. The refusal's TS carries the queue depth at rejection as
// a backpressure hint.
const ErrOverloaded = "overloaded"

func overloadedReply(depth int) network.Message {
	m := network.Status(false, ErrOverloaded)
	m.TS = int64(depth)
	return m
}

// pendingSubmit is one submitted transaction waiting in the pipeline. It
// lives in exactly one place at a time — the queue, a dispatch batch, or an
// in-flight entry's member list — so it receives exactly one verdict.
type pendingSubmit struct {
	txn      wal.Txn
	attempts int // positions competed for so far

	// handoff, when non-nil, marks a migration control entry (DESIGN.md
	// §15): the pipeline places it alone — never combined with transactions
	// — as an entry whose Handoff field carries the phase record. txn is
	// zero for these.
	handoff *wal.Handoff

	// deliver receives the verdict exactly once: settled arbitrates between
	// the pipeline's verdict and the budget timer, and whichever loses is
	// dropped. deliver may be a transport reply callback (the async submit
	// path) — it must not be called twice.
	deliver func(network.Message)
	settled atomic.Bool
	// timer is the budget timer, stopped by the first verdict. Atomic
	// because the timer's own callback races the AfterFunc return-value
	// store: a callback that loads nil simply has nothing to stop — it is
	// the timer that fired.
	timer atomic.Pointer[time.Timer]
}

// reply delivers the verdict, once.
func (ps *pendingSubmit) reply(m network.Message) {
	if !ps.settled.CompareAndSwap(false, true) {
		return
	}
	if t := ps.timer.Load(); t != nil {
		t.Stop()
	}
	ps.deliver(m)
}

// pipeline is one group's submit path at the master: a queue of waiting
// submissions drained by a single dispatcher goroutine that combines them
// into entries and launches one replication goroutine per position, bounded
// by the in-flight window.
type pipeline struct {
	svc        *Service
	group      string
	lg         *replog.Log
	win        *replog.Window
	maxCombine int

	mu      sync.Mutex
	queue   []*pendingSubmit
	running bool // dispatcher goroutine live
	closed  bool
	// epoch is the master epoch this pipeline stamps entries with (0 until
	// mastership is claimed, or always 0 with fencing off). deposed is set
	// when a higher epoch is observed: the pipeline drains its in-flight
	// window with fail verdicts — never promotion — and refuses new batches
	// with a hint at the new master (DESIGN.md §11, deposed-master drain).
	epoch   int64
	deposed bool

	// fastOff is the fast-path breaker: unix nanos until which replication
	// skips the unanimous fast round. Opened when a fast round fails —
	// typically an unreachable peer, which makes unanimity impossible and
	// would add one timeout of doomed waiting per position.
	fastOff atomic.Int64
}

// pipeline returns group's submit pipeline, creating it on first use.
func (s *Service) pipeline(group string) *pipeline {
	s.pipeMu.Lock()
	defer s.pipeMu.Unlock()
	p := s.pipelines[group]
	if p == nil {
		p = &pipeline{
			svc:        s,
			group:      group,
			lg:         s.log(group),
			win:        replog.NewWindow(s.submitWindow),
			maxCombine: s.submitCombine,
		}
		if s.pipeClosed {
			p.closed = true
			p.win.Close()
		}
		s.pipelines[group] = p
	}
	return p
}

// Submit queues the transaction and blocks until the pipeline delivers its
// verdict or the master-side budget (4 message timeouts, as the serial path
// allowed) expires.
func (p *pipeline) Submit(txn wal.Txn) network.Message {
	done := make(chan network.Message, 1)
	p.SubmitAsync(txn, func(m network.Message) { done <- m })
	return <-done
}

// SubmitAsync runs admission control and queues the transaction; deliver
// receives exactly one verdict — the pipeline's, or a timeout once the
// master-side budget expires. The caller's goroutine is released
// immediately: a submit in flight holds no goroutine while its position
// replicates (DESIGN.md §13).
func (p *pipeline) SubmitAsync(txn wal.Txn, deliver func(network.Message)) {
	ps := &pendingSubmit{txn: txn, deliver: deliver}
	if err := p.svc.replicaFault(); err != nil {
		// Fail-stopped storage: refuse before any protocol work, with the
		// verdict that tells the client to go elsewhere (health.go). The
		// check repeats in place() for submissions already queued when the
		// engine died.
		ps.reply(replicaFailedReply(err))
		return
	}
	ps.timer.Store(time.AfterFunc(4*p.svc.timeout, func() {
		ps.reply(network.Status(false, "master: submit timed out in pipeline"))
	}))
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ps.reply(network.Status(false, "master shutting down"))
		return
	}
	if limit := p.svc.submitQueue; limit > 0 && len(p.queue) >= limit {
		depth := len(p.queue)
		p.mu.Unlock()
		ps.reply(overloadedReply(depth))
		return
	}
	p.queue = append(p.queue, ps)
	if !p.running {
		p.running = true
		go p.dispatch()
	}
	p.mu.Unlock()
}

// enqueue adds batch to the queue — at the front, preserving batch order,
// for a promoted batch re-competing — and ensures the dispatcher goroutine
// is running. It reports false when the pipeline is closed. Promotion
// re-enqueues bypass the admission cap: these transactions were already
// admitted and must receive a pipeline verdict, not an overload refusal.
func (p *pipeline) enqueue(front bool, batch ...*pendingSubmit) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	if front {
		q := make([]*pendingSubmit, 0, len(batch)+len(p.queue))
		q = append(q, batch...)
		p.queue = append(q, p.queue...)
	} else {
		p.queue = append(p.queue, batch...)
	}
	if !p.running {
		p.running = true
		go p.dispatch()
	}
	return true
}

// close fails every queued and future submission. In-flight replication
// goroutines run to completion on their own contexts.
func (p *pipeline) close() {
	p.mu.Lock()
	queued := p.queue
	p.queue = nil
	p.closed = true
	p.mu.Unlock()
	p.win.Close()
	for _, ps := range queued {
		ps.reply(network.Status(false, "master shutting down"))
	}
}

// dispatch drains the queue: one batch per iteration, each placed at its own
// log position. Exits when the queue empties (enqueue restarts it).
func (p *pipeline) dispatch() {
	for {
		batch := p.take()
		if len(batch) == 0 {
			return
		}
		p.place(batch)
	}
}

// take removes up to maxCombine submissions from the queue head, or marks
// the dispatcher stopped and returns nil when there is nothing to do.
func (p *pipeline) take() []*pendingSubmit {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 || p.closed {
		p.running = false
		return nil
	}
	n := len(p.queue)
	if n > p.maxCombine {
		n = p.maxCombine
	}
	// Handoff entries never combine: one travels alone, and a batch of
	// transactions stops short of one (DESIGN.md §15).
	if p.queue[0].handoff != nil {
		n = 1
	} else {
		for i := 1; i < n; i++ {
			if p.queue[i].handoff != nil {
				n = i
				break
			}
		}
	}
	batch := make([]*pendingSubmit, n)
	copy(batch, p.queue)
	p.queue = append(p.queue[:0], p.queue[n:]...)
	return batch
}

// notMasterReply builds the refusal a non-master sends: the ErrNotMaster
// marker plus the prevailing holder and epoch as a retry hint.
func notMasterReply(st replog.EpochState) network.Message {
	m := network.Status(false, ErrNotMaster)
	m.Value = st.Master
	m.Epoch = st.Epoch
	return m
}

// ensureMastership makes sure this service holds the group's mastership
// before a batch is placed (fencing on only). It adopts an epoch the service
// already holds, refuses while another datacenter's lease is live, and
// otherwise claims the next epoch — on its own budget, NOT the batch's
// context (the claim must outlive the submissions that triggered it). It
// reports whether placement may proceed; when it returns false the batch
// has NOT been answered — the caller replies.
func (p *pipeline) ensureMastership() (ok bool, refusal network.Message) {
	st, leaseValid := p.svc.Mastership(p.group)
	if st.Master == p.svc.dc {
		p.setEpoch(st.Epoch)
		return true, network.Message{}
	}
	if st.Master != "" && leaseValid {
		// Another datacenter's lease is live: refuse with a hint instead of
		// dueling. (A deposed master lands here on every later batch.)
		return false, notMasterReply(st)
	}
	// Unclaimed group, or an expired lease: claim the next epoch. The first
	// submit to a fresh master triggers this — mastership is lazy. The
	// claim gets its own budget (catch-up against unreachable peers plus
	// the replication round can outlast one batch's): the submissions that
	// triggered it may time out, but the claim completes and every later
	// batch finds mastership held.
	cctx, cancel := context.WithTimeout(context.Background(), p.svc.leaseDuration()+4*p.svc.timeout)
	defer cancel()
	epoch, err := p.svc.ClaimMastership(cctx, p.group)
	if err != nil {
		st, _ := p.lg.LeaseState()
		if st.Master != "" && st.Master != p.svc.dc {
			return false, notMasterReply(st)
		}
		return false, network.Status(false, "master claim failed: "+err.Error())
	}
	p.setEpoch(epoch)
	return true, network.Message{}
}

func (p *pipeline) setEpoch(epoch int64) {
	p.mu.Lock()
	if epoch > p.epoch {
		p.epoch = epoch
		p.deposed = false
	}
	p.mu.Unlock()
}

// noteDeposed records that a higher epoch was observed: the pipeline stops
// placing and promoting until mastership is re-established.
func (p *pipeline) noteDeposed() {
	p.mu.Lock()
	p.deposed = true
	p.mu.Unlock()
}

func (p *pipeline) isDeposed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.deposed
}

// place admits a batch at the next log position — speculative conflict
// check, combination into one entry — and launches its replication.
func (p *pipeline) place(batch []*pendingSubmit) {
	ctx, cancel := context.WithTimeout(context.Background(), 4*p.svc.timeout)
	defer cancel()

	if err := p.svc.replicaFault(); err != nil {
		// The engine died while this batch sat in the queue. Placing it
		// would replicate entries this replica can never apply — and, worse,
		// keep refreshing the dead master's lease at every peer. Drain with
		// the definitive local refusal instead (health.go).
		for _, ps := range batch {
			ps.reply(replicaFailedReply(err))
		}
		return
	}

	var epoch int64
	if p.svc.fencing {
		ok, refusal := p.ensureMastership()
		if !ok {
			for _, ps := range batch {
				ps.reply(refusal)
			}
			return
		}
		p.mu.Lock()
		epoch = p.epoch
		p.mu.Unlock()
	}

	// A client may have read at a position this master has not applied —
	// possible right after failover. Catch up before conflict checking.
	var maxRead int64
	for _, ps := range batch {
		if ps.txn.ReadPos > maxRead {
			maxRead = ps.txn.ReadPos
		}
	}
	if maxRead > p.lg.Applied() {
		if err := p.svc.CatchUp(ctx, p.group, maxRead); err != nil {
			p.fail(batch, fmt.Sprintf("master behind client: %v", err))
			return
		}
	}

	// Wait for window room before picking the position: resolutions while
	// we wait can move the decided ceiling, and the new position must sit
	// above everything issued or decided so far (invariant W1).
	if err := p.win.Reserve(ctx); err != nil {
		p.fail(batch, err.Error())
		return
	}
	pos := p.nextPos()

	// Admission and combination, in arrival order: each transaction is
	// checked against the full log suffix after its read position —
	// applied, decided-pending, and in-flight speculative entries alike —
	// and against the entry under construction (invariant W2). Admitted
	// transactions merge into one multi-transaction entry; the list order
	// is serializable by construction.
	var entry wal.Entry
	entry.Epoch = epoch
	var members []*pendingSubmit
	if h := batch[0].handoff; h != nil {
		// A handoff entry travels alone (take() guarantees the singleton
		// batch): it has no reads to conflict-check and no writes to admit.
		entry.Handoff = h.Clone()
		members = batch
	} else {
		for _, ps := range batch {
			if refusal, fenced := p.migrationRefusal(ps.txn); fenced {
				ps.reply(refusal)
				continue
			}
			ok, err := p.admit(ctx, ps.txn, pos, entry)
			switch {
			case err != nil:
				ps.reply(network.Status(false, err.Error()))
			case !ok:
				ps.reply(network.Status(false, masterConflict))
			default:
				entry.Txns = append(entry.Txns, ps.txn.Clone())
				members = append(members, ps)
			}
		}
	}
	if len(members) == 0 {
		return
	}
	p.win.Start(pos, entry)
	go p.replicate(pos, entry, members)
}

// migrationRefusal fails a transaction fast when the apply-time migration
// rules (replog M1/M2, DESIGN.md §15) would void it anyway: a write into a
// departed range gets the "moved" verdict with the destination hint, a
// non-backfill write into a prepared-but-unopened inbound range gets
// "migrating". Only an optimization — apply-time voiding remains the safety
// net for entries already in flight when the handoff applied.
func (p *pipeline) migrationRefusal(txn wal.Txn) (network.Message, bool) {
	if !p.lg.HasMigrations() {
		return network.Message{}, false
	}
	for k := range txn.Writes {
		if to, _, ok := p.lg.MovedTo(k); ok {
			return movedReply(to), true
		}
	}
	if !txn.Backfill {
		for k := range txn.Writes {
			if p.lg.InboundPending(k) {
				return migratingReply(), true
			}
		}
	}
	return network.Message{}, false
}

// SubmitHandoffAsync queues a migration handoff entry for placement
// (DESIGN.md §15). It bypasses the admission cap — a saturated data plane
// must not starve the migration control plane — but pays the same verdict
// budget as any submit. The OK verdict's TS carries the entry's log
// position.
func (p *pipeline) SubmitHandoffAsync(h *wal.Handoff, deliver func(network.Message)) {
	ps := &pendingSubmit{handoff: h.Clone(), deliver: deliver}
	if err := p.svc.replicaFault(); err != nil {
		ps.reply(replicaFailedReply(err))
		return
	}
	ps.timer.Store(time.AfterFunc(4*p.svc.timeout, func() {
		ps.reply(network.Status(false, "master: handoff timed out in pipeline"))
	}))
	if !p.enqueue(false, ps) {
		ps.reply(network.Status(false, "master shutting down"))
	}
}

// nextPos returns the next position to propose at: above every position this
// window ever issued and every position known decided locally (so a fresh
// entry is never placed below one the master has not absorbed).
func (p *pipeline) nextPos() int64 {
	pos := p.win.IssuedMax()
	if d := p.lg.DecidedMax(); d > pos {
		pos = d
	}
	return pos + 1
}

// admit runs the speculative fine-grained conflict check for txn competing
// at pos with entrySoFar admitted ahead of it in the same entry: the
// transaction aborts iff some entry after its read position — or an earlier
// transaction in its own entry — wrote a key it read. A hole below the
// decided ceiling is resolved before checking so admission never runs
// against unknown history.
func (p *pipeline) admit(ctx context.Context, txn wal.Txn, pos int64, entrySoFar wal.Entry) (bool, error) {
	for q := txn.ReadPos + 1; q < pos; q++ {
		prev, ok := p.win.Entry(q)
		if !ok {
			prev, ok = p.lg.Entry(q)
		}
		if !ok {
			var err error
			if prev, err = p.resolveHole(ctx, q); err != nil {
				return false, fmt.Errorf("log hole at %d: %v", q, err)
			}
		}
		if txn.ReadsAny(prev.WriteKeys()) {
			return false, nil
		}
	}
	if txn.ReadsAny(entrySoFar.WriteKeys()) {
		return false, nil
	}
	return true, nil
}

// resolveHole learns the decided value at a position below the decided
// ceiling that is missing locally — a foreign proposer's entry whose apply
// message was lost, or one of this master's own positions whose replication
// outcome stayed unknown. Learning drives a partially accepted value to
// decision and fills a genuinely undecided position with a no-op, so new
// transactions are never placed above an unresolved gap (invariant W4).
func (p *pipeline) resolveHole(ctx context.Context, pos int64) (wal.Entry, error) {
	entry, err := p.svc.learn(ctx, p.group, pos, true)
	if err != nil {
		return wal.Entry{}, err
	}
	if err := p.svc.ApplyDecided(p.group, pos, wal.Encode(entry)); err != nil {
		return wal.Entry{}, err
	}
	return entry, nil
}

// errDeposed is the failure a deposed master reports for in-flight
// submissions: definitive (the entry was fenced and committed nothing), so a
// client may safely retry at the new master.
const errDeposed = "master deposed: epoch superseded"

// replicate drives one position's entry to decision (fast accept round,
// full Paxos fallback), lands it in the local log, retires the window slot,
// and settles every member: commit on a won race, promotion or conflict
// abort on a lost one, failure when the outcome is unknown. With fencing on,
// "decided with our value" is not yet "committed": the entry may have been
// fenced by a claim that landed below it, so the verdict waits for the apply
// watermark to cover the position and consults the fencing record.
func (p *pipeline) replicate(pos int64, entry wal.Entry, members []*pendingSubmit) {
	ctx, cancel := context.WithTimeout(context.Background(), 4*p.svc.timeout)
	defer cancel()
	skipFast := time.Now().UnixNano() < p.fastOff.Load()
	decided, committed, fast, err := p.svc.replicateMaster(ctx, p.group, pos, wal.Encode(entry), skipFast)
	if fast == fastDegraded {
		// A peer is unreachable, so unanimity is impossible: skip the fast
		// round for a while rather than paying a doomed wait on every
		// in-flight position. Ordinary per-position contention
		// (fastContended) does not open the breaker. It re-arms
		// automatically, so a healed cluster regains the 1-RTT path within
		// a few windows.
		p.fastOff.Store(time.Now().Add(4 * p.svc.timeout).UnixNano())
	}
	if err != nil {
		// No quorum: the position's fate is unknown. Report failure — NOT
		// promotion: re-queueing could commit the same transaction twice
		// if the original proposal later completes — and leave the hole
		// for resolveHole or recovery to settle (invariant W4).
		p.win.Resolve(pos)
		p.fail(members, err.Error())
		return
	}
	if aerr := p.svc.ApplyDecided(p.group, pos, decided); aerr != nil {
		p.win.Resolve(pos)
		p.fail(members, aerr.Error())
		return
	}
	// Resolve only after ApplyDecided: the log covers pos before the window
	// stops answering for it, so admission checks never see a gap.
	p.win.Resolve(pos)
	if committed {
		// The commit verdict needs the apply-time record: the epoch fence
		// once fencing is on, and the per-transaction migration verdicts
		// whenever any handoff has applied to this log (DESIGN.md §15). Both
		// exist once the apply watermark covers pos.
		needVerdict := entry.Epoch != 0 || p.lg.HasMigrations()
		if needVerdict {
			// If contiguity cannot be reached (an ambiguous hole below), the
			// outcome is unknown: fail, per invariant W4.
			if werr := p.lg.WaitApplied(ctx, pos); werr != nil {
				p.fail(members, "fencing verdict unavailable: "+werr.Error())
				return
			}
			if entry.Epoch != 0 && p.lg.Voided(pos) {
				// Split-brain window closed on us: a higher-epoch claim
				// landed below our entry, so it committed nothing. Drain
				// with definitive failures and stop promoting (F3).
				p.noteDeposed()
				p.fail(members, errDeposed)
				return
			}
		}
		combined := len(entry.Txns) > 1
		for _, ps := range members {
			if needVerdict && ps.handoff == nil {
				// A handoff below pos may have voided this transaction
				// (rules M1/M2): its writes applied nowhere, so the verdict
				// is the retryable redirect, not a commit.
				if to, moved := p.lg.MovedTxn(pos, ps.txn.ID); moved {
					if to == "" {
						ps.reply(migratingReply())
					} else {
						ps.reply(movedReply(to))
					}
					continue
				}
			}
			ps.reply(network.Message{
				Kind: network.KindValue, OK: true, TS: pos,
				Combined: combined, Epoch: entry.Epoch,
			})
		}
		return
	}
	// Lost the Paxos race: a foreign proposal was decided at pos (failover
	// or recovery interference). Promote the members to compete for the
	// next position instead of aborting (invariant W3) — except those whose
	// reads the decided entry invalidated, the paper's §5 promotion rule,
	// and those whose attempt budget is spent.
	decEntry, derr := wal.Decode(decided)
	if derr != nil {
		p.fail(members, "decided value corrupt: "+derr.Error())
		return
	}
	if decEntry.IsClaim() && decEntry.Epoch > entry.Epoch {
		// Beaten by a takeover claim: we are deposed. Promotion would only
		// place fenced entries; drain with definitive failures (F3).
		p.noteDeposed()
		p.fail(members, errDeposed)
		return
	}
	if p.svc.fencing && p.isDeposed() {
		p.fail(members, errDeposed)
		return
	}
	var promote []*pendingSubmit
	for _, ps := range members {
		ps.attempts++
		switch {
		case ps.txn.ReadsAny(decEntry.WriteKeys()):
			ps.reply(network.Status(false, masterConflict))
		case ps.attempts >= submitAttempts:
			ps.reply(network.Status(false, "master could not place transaction"))
		default:
			promote = append(promote, ps)
		}
	}
	// Re-queue the survivors as one block in arrival order: reversing them
	// could turn an intra-entry reader/writer pair into a spurious abort on
	// the next placement.
	if len(promote) > 0 && !p.enqueue(true, promote...) {
		p.fail(promote, "master shutting down")
	}
}

// fail reports one failure message to every submission in batch.
func (p *pipeline) fail(batch []*pendingSubmit, msg string) {
	for _, ps := range batch {
		ps.reply(network.Status(false, msg))
	}
}
