package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"paxoscp/internal/network"
	"paxoscp/internal/stats"
)

// newRingClient builds a 3-DC service ring plus a client homed at dc.
func newRingClient(t *testing.T, dc string, cfg Config) (*Client, map[string]*Service) {
	t.Helper()
	services, sim := newServiceRing(t, "A", "B", "C")
	ep := sim.Endpoint(dc+"", nil) // replaced below; endpoints are per-DC
	_ = ep
	// Reuse the service ring's endpoints: clients share the DC endpoint.
	cfg.Timeout = 200 * time.Millisecond
	tr := sim.Endpoint(dc, services[dc].Handler())
	return NewClient(1, dc, tr, cfg), services
}

func TestClientIDValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range client id accepted")
		}
	}()
	NewClient(-1, "A", nil, Config{})
}

func TestTxLifecycleErrors(t *testing.T) {
	cl, _ := newRingClient(t, "A", Config{Seed: 1})
	ctx := context.Background()
	tx, err := cl.Begin(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if _, _, err := tx.Read(ctx, "k"); !errors.Is(err, errTxDone) {
		t.Fatalf("Read after Abort: %v", err)
	}
	if err := tx.Write("k", "v"); !errors.Is(err, errTxDone) {
		t.Fatalf("Write after Abort: %v", err)
	}
	if _, err := tx.Commit(ctx); !errors.Is(err, errTxDone) {
		t.Fatalf("Commit after Abort: %v", err)
	}
	// Double commit.
	tx2, _ := cl.Begin(ctx, "g")
	tx2.Write("k", "v")
	if _, err := tx2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Commit(ctx); !errors.Is(err, errTxDone) {
		t.Fatalf("second Commit: %v", err)
	}
}

func TestTxRepeatedReadStable(t *testing.T) {
	cl, services := newRingClient(t, "A", Config{Seed: 1})
	ctx := context.Background()

	// Seed k=1 at position 1.
	seedLog(t, services, []string{"A", "B", "C"}, "g", 1)
	tx, err := cl.Begin(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	v1, _, err := tx.Read(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	// Another entry commits behind the transaction's back.
	b := entryBytes("later", 1, map[string]string{"k": "changed"})
	for _, dc := range []string{"A", "B", "C"} {
		services[dc].ApplyDecided("g", 2, b)
	}
	// The transaction re-reads the same value (A2: one read position).
	v2, _, err := tx.Read(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 || v1 != "v1" {
		t.Fatalf("repeated read changed: %q then %q", v1, v2)
	}
	tx.Abort()
}

func TestBeginAtSnapshotRead(t *testing.T) {
	cl, services := newRingClient(t, "A", Config{Seed: 1})
	ctx := context.Background()
	seedLog(t, services, []string{"A", "B", "C"}, "g", 5)

	// Snapshot read at position 2 sees v2 even though v5 is current.
	tx, err := cl.BeginAt(ctx, "g", 2)
	if err != nil {
		t.Fatal(err)
	}
	v, found, err := tx.Read(ctx, "k")
	if err != nil || !found || v != "v2" {
		t.Fatalf("snapshot read@2 = (%q,%v,%v), want v2", v, found, err)
	}
	res, err := tx.Commit(ctx) // read-only: commits trivially
	if err != nil || res.Status != stats.Committed {
		t.Fatalf("read-only snapshot commit: %+v %v", res, err)
	}

	if _, err := cl.BeginAt(ctx, "g", -3); err == nil {
		t.Fatal("negative position accepted")
	}
}

// seedViaTxns commits n sequential transactions (each writing "k" and a
// unique "uN" key) through the real protocol, so acceptor state, log, and
// data rows are all consistent.
func seedViaTxns(t *testing.T, cl *Client, group string, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 1; i <= n; i++ {
		tx, err := cl.Begin(ctx, group)
		if err != nil {
			t.Fatal(err)
		}
		tx.Write("k", fmt.Sprintf("v%d", i))
		tx.Write(fmt.Sprintf("u%d", i), "once")
		res, err := tx.Commit(ctx)
		if err != nil || res.Status != stats.Committed || res.Pos != int64(i) {
			t.Fatalf("seed txn %d: %+v %v", i, res, err)
		}
	}
}

func TestBeginAtStaleWriterLosesUnderBasic(t *testing.T) {
	cl, services := newRingClient(t, "A", Config{Seed: 1, Protocol: Basic})
	ctx := context.Background()
	seedViaTxns(t, cl, "g", 3)

	// A writer reading at stale position 1 tries to commit to position 2,
	// which is already decided: it must abort, never overwrite.
	tx, err := cl.BeginAt(ctx, "g", 1)
	if err != nil {
		t.Fatal(err)
	}
	tx.Write("other", "value")
	res, err := tx.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != stats.Aborted {
		t.Fatalf("stale writer result = %+v, want abort", res)
	}
	entry, _ := services["A"].DecidedEntry("g", 2)
	if entry.Contains(tx.ID()) {
		t.Fatalf("position 2 rewritten by stale writer: %v", entry)
	}
}

func TestBeginAtStaleWriterPromotesUnderCP(t *testing.T) {
	cl, _ := newRingClient(t, "A", Config{Seed: 1, Protocol: CP})
	ctx := context.Background()
	seedViaTxns(t, cl, "g", 3)

	// The stale writer does not read anything the interim entries wrote
	// (they write "k" and "uN"; it reads nothing), so CP promotes it to
	// position 4.
	tx, err := cl.BeginAt(ctx, "g", 1)
	if err != nil {
		t.Fatal(err)
	}
	tx.Write("fresh-key", "value")
	res, err := tx.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != stats.Committed || res.Pos != 4 {
		t.Fatalf("stale CP writer = %+v, want commit at 4", res)
	}
	if res.Round < 1 {
		t.Fatalf("expected promotions, got round %d", res.Round)
	}
}

func TestBeginAtStaleReaderConflictAborts(t *testing.T) {
	cl, _ := newRingClient(t, "A", Config{Seed: 1, Protocol: CP})
	ctx := context.Background()
	seedViaTxns(t, cl, "g", 3)

	// This one READS "k", which every interim entry wrote: CP must abort
	// it rather than promote.
	tx, err := cl.BeginAt(ctx, "g", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tx.Read(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	tx.Write("out", "value")
	res, err := tx.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != stats.Aborted {
		t.Fatalf("conflicting stale transaction = %+v, want abort", res)
	}
}

func TestCollectorReceivesSamples(t *testing.T) {
	cl, _ := newRingClient(t, "A", Config{Seed: 1, Protocol: CP})
	ctx := context.Background()
	col := &stats.Collector{}
	cl.Collector = col
	for i := 0; i < 3; i++ {
		tx, err := cl.Begin(ctx, "g")
		if err != nil {
			t.Fatal(err)
		}
		tx.Write(fmt.Sprintf("k%d", i), "v")
		if _, err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	sum := col.Summarize()
	if sum.Commits != 3 || sum.Total != 3 {
		t.Fatalf("collector summary: %s", sum.String())
	}
	if sum.AllCommit.Mean <= 0 {
		t.Fatal("latency not recorded")
	}
}

func TestOnCommitCallback(t *testing.T) {
	cl, _ := newRingClient(t, "A", Config{Seed: 1})
	ctx := context.Background()
	var got []CommittedTxn
	cl.OnCommit = func(pos int64, txn CommittedTxn) { got = append(got, txn) }

	tx, _ := cl.Begin(ctx, "g")
	tx.Read(ctx, "r")
	tx.Write("w", "1")
	if _, err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("OnCommit fired %d times", len(got))
	}
	c := got[0]
	if c.Pos != 1 || c.Writes["w"] != "1" {
		t.Fatalf("callback payload: %+v", c)
	}
	if _, ok := c.Reads["r"]; !ok {
		t.Fatalf("read set missing: %+v", c)
	}
	// Read-only transactions fire too (they serialize at their read pos).
	tx2, _ := cl.Begin(ctx, "g")
	tx2.Read(ctx, "w")
	if _, err := tx2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[1].Writes) != 0 {
		t.Fatalf("read-only commit not observed: %+v", got)
	}
}

func TestSendPreferLocalFallsBack(t *testing.T) {
	services, sim := newServiceRing(t, "A", "B", "C")
	tr := sim.Endpoint("A", services["A"].Handler())
	cl := NewClient(2, "A", tr, Config{Seed: 1, Timeout: 50 * time.Millisecond})
	ctx := context.Background()

	// With A down... a down DC blocks its own clients in the sim, so
	// emulate "local service broken" by partitioning A from nothing and
	// checking the remote order instead: B and C both down leaves only A.
	sim.SetDown("B", true)
	sim.SetDown("C", true)
	tx, err := cl.Begin(ctx, "g")
	if err != nil {
		t.Fatalf("begin with only local up: %v", err)
	}
	if _, _, err := tx.Read(ctx, "k"); err != nil {
		t.Fatalf("read with only local up: %v", err)
	}
	// All down: Begin itself is messageless under lazy read positions, so
	// unavailability surfaces at the transaction's first service contact —
	// the first read — with a useful error.
	sim.SetDown("A", true)
	tx2, err := cl.Begin(ctx, "g")
	if err != nil {
		t.Fatalf("lazy begin must not message: %v", err)
	}
	if _, _, err := tx2.Read(ctx, "k"); err == nil {
		t.Fatal("read succeeded with every service down")
	}
}

func TestUnknownProtocolDefaultsToBasic(t *testing.T) {
	cl, _ := newRingClient(t, "A", Config{Seed: 1, Protocol: Protocol(99)})
	ctx := context.Background()
	tx, _ := cl.Begin(ctx, "g")
	tx.Write("k", "v")
	res, err := tx.Commit(ctx)
	if err != nil || res.Status != stats.Committed {
		t.Fatalf("fallback protocol commit: %+v %v", res, err)
	}
}

func TestProtocolStrings(t *testing.T) {
	if Basic.String() != "paxos" || CP.String() != "paxos-cp" || Master.String() != "master" {
		t.Fatal("protocol names changed")
	}
	if Protocol(42).String() == "" {
		t.Fatal("unknown protocol renders empty")
	}
}

func TestErrNoQuorumMessage(t *testing.T) {
	err := errNoQuorum{group: "g", pos: 3, tries: 5}
	if err.Error() == "" {
		t.Fatal("empty error message")
	}
	var target errNoQuorum
	if !errors.As(error(err), &target) {
		t.Fatal("errNoQuorum not matchable")
	}
	_ = network.Message{} // keep the import for the ring helper
}
