package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"paxoscp/internal/network"
	"paxoscp/internal/replog"
	"paxoscp/internal/wal"
)

// Epoch-fenced master leases (DESIGN.md §11). Mastership of a transaction
// group is a monotonically increasing epoch claimed *through the group's own
// Paxos log*: a claim entry at position p establishes "epoch e, master m,
// from position p+1 on". Because the claim is totally ordered with every
// transaction entry, the prevailing epoch at any position is a deterministic
// function of the log prefix, and replog's apply path fences accordingly —
// a transaction entry stamped with a superseded epoch commits nothing,
// at every replica identically (invariant F2, replog.Log).
//
// The lease is the liveness half: a prospective claimant waits until the
// prevailing holder's lease has been silent for the lease duration before
// claiming the next epoch, so a healthy master is not harassed by takeovers.
// The holder renews implicitly — every entry it commits is stamped with its
// epoch and refreshes the lease at each replica that applies it — or
// explicitly via RenewLease when idle. Lease timing uses each replica's
// local clock and is deliberately NOT load-bearing for safety: a takeover
// during a still-valid lease costs the old master fenced entries, never a
// double commit.

// leaseDuration returns the effective master lease duration.
func (s *Service) leaseDuration() time.Duration {
	if s.leaseDur > 0 {
		return s.leaseDur
	}
	return DefaultLeaseFactor * s.timeout
}

// Mastership reports the group's prevailing master epoch state as this
// datacenter has observed it, and whether the holder's lease is still live
// locally.
func (s *Service) Mastership(group string) (st replog.EpochState, leaseValid bool) {
	st, renewedAt := s.log(group).LeaseState()
	if st.Master == "" {
		return st, false
	}
	return st, time.Since(renewedAt) < s.leaseDuration()
}

// ErrNotMaster is the wire error marker a service returns for a submit it
// refuses because another datacenter holds the group's mastership; the
// reply's Value carries the holder as a hint for the client to retry at.
const ErrNotMaster = "not master"

// ClaimMastership makes this datacenter the group's master: it waits out
// any live lease held by another datacenter, commits a claim entry for the
// next epoch through the group's log, and absorbs the log up to the claim.
// It returns the epoch held (which may already have been ours). Bounded by
// ctx; a claim that cannot reach a quorum fails.
//
// The claim entry competes for its log position like any other proposal —
// against a still-active old master it is deliberately proposed *ahead of
// the observed tip*, with a lead that grows per failed attempt: the claimant
// cannot out-race a healthy master position by position, but it only needs
// to win one position, and every entry of the old epoch that lands above the
// winning claim is fenced (replog, invariant F2). Entries of the old epoch
// that land below it commit normally — the claim position is the exact
// serialization point of the takeover. If a foreign claim establishes a
// higher epoch first, the loop observes it and defers to its fresh lease.
//
// Once the prevailing lease has been observed expired, the claim proceeds
// even if the loop's own catch-up replays entries that refresh the local
// lease view — replayed traffic is arbitrarily stale and must not push the
// takeover back forever. Fencing keeps the duel safe either way.
func (s *Service) ClaimMastership(ctx context.Context, group string) (int64, error) {
	if !s.fencing {
		return 0, nil
	}
	if err := s.replicaFault(); err != nil {
		// A replica whose disk has died must not take (or re-take)
		// mastership: it could replicate entries but never apply them, and
		// its stamped traffic would keep the group leased to a master that
		// commits nothing. Decline; a healthy peer claims instead.
		return 0, fmt.Errorf("core: claim %s: declining, storage failed: %w", group, err)
	}
	lock := s.claimLock(group)
	lock.Lock()
	defer lock.Unlock()
	lg := s.log(group)
	committedToClaim := false
	// proposals counts actual claim proposals (not lease-wait iterations):
	// it drives the position lead, which must start at zero for the common
	// dead-master takeover and grow only when a proposal actually lost.
	proposals := 0
	for {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		st, renewedAt := lg.LeaseState()
		if st.Master == s.dc {
			s.recordTenure(group, st.Epoch)
			return st.Epoch, nil // already the holder (e.g. restart, retry)
		}
		if st.Master != "" && !committedToClaim {
			if remaining := s.leaseDuration() - time.Since(renewedAt); remaining > 0 {
				// A live lease: wait it out (re-checking periodically, in
				// case the holder keeps renewing) rather than dueling.
				if err := sleepCtx(ctx, minDuration(remaining, s.timeout)); err != nil {
					return 0, fmt.Errorf("core: claim %s: lease held by %s: %w", group, st.Master, err)
				}
				continue
			}
		}
		if !committedToClaim {
			// Per-epoch claim backoff (DESIGN.md §11): a service that held
			// this group and was deposed stands down for exponentially longer
			// before each re-claim. Under a sustained asymmetric partition —
			// each side seeing the other's lease go silent — mastership would
			// otherwise ping-pong every lease period forever; the backoff
			// turns that into O(log duration) swaps. A first-ever claim (the
			// ordinary dead-master failover) never waits.
			if wait := s.claimBackoffWait(group, st.Epoch); wait > 0 {
				if err := sleepCtx(ctx, wait); err != nil {
					return 0, fmt.Errorf("core: claim %s: backoff after deposition: %w", group, err)
				}
				continue // re-check: the holder may have re-asserted meanwhile
			}
		}
		committedToClaim = true
		// Place the claim above every position we know to be decided or
		// applied anywhere: the local ceiling, plus each reachable peer's
		// applied horizon (a cheap readpos probe — full catch-up would lose
		// a race against a live master before it ever proposed). A failed
		// attempt means the old master is ahead and winning; lead further.
		lead := claimLead(proposals)
		proposals++
		pos := lg.DecidedMax() + 1 + lead
		if tip := s.peersApplied(ctx, group); tip+1+lead > pos {
			pos = tip + 1 + lead
		}
		claim := wal.NewClaim(st.Epoch+1, s.dc)
		decided, ours, err := s.replicateAsMaster(ctx, group, pos, wal.Encode(claim))
		if err != nil {
			// Ambiguous outcome: the claim may or may not decide later. The
			// next attempt proposes higher; fail only on ctx end.
			if ctx.Err() != nil {
				return 0, fmt.Errorf("core: claim %s: %w", group, err)
			}
			continue
		}
		if aerr := s.ApplyDecided(group, pos, decided); aerr != nil {
			return 0, aerr
		}
		if !ours {
			// A foreign entry won the position; if it was a competing claim
			// with a higher epoch, defer to its fresh lease next round.
			if st2, _ := lg.LeaseState(); st2.Epoch > st.Epoch {
				committedToClaim = false
			}
			continue
		}
		// The claim is decided at pos: from here on, the old epoch is fenced
		// above pos, everywhere. Absorb the log up to the claim so the local
		// watermark (which the submit path's mastership check reads) covers
		// it; positions the old master left in flight are driven to decision
		// or no-op filled.
		if err := s.absorbTo(ctx, group, pos); err != nil {
			return 0, fmt.Errorf("core: claim %s: absorb to %d: %w", group, pos, err)
		}
		if st, _ := lg.LeaseState(); st.Master == s.dc {
			s.recordTenure(group, st.Epoch)
			return st.Epoch, nil
		}
		// Our claim entry was itself fenced (an even higher epoch landed
		// below it): defer to the winner's lease next round.
		committedToClaim = false
	}
}

// claimHistory is one group's re-claim streak state at one service: how
// often this service has been deposed and re-claimed recently, and the
// standoff deadline the current deposition imposes. Purely local liveness
// tuning — safety never depends on it (fencing does that).
type claimHistory struct {
	lastEpoch    int64     // highest epoch this service has held for the group
	streak       int       // consecutive deposition->re-claim cycles
	lastDeposed  time.Time // when the latest deposition was first observed
	deposedSeen  int64     // the epoch that deposed us, for the current standoff
	backoffUntil time.Time // absolute end of the current standoff
}

// claimBackoffWait reports how much longer this service must stand down
// before contending for group's mastership, given the prevailing epoch held
// by someone else. Zero means claim now: a service that never held the group
// (ordinary failover) or whose standoff has elapsed proceeds immediately.
// Each new deposition starts one standoff window of leaseDuration <<
// (streak+1) — 4 lease periods on the first re-claim, doubling from there —
// so a sustained duel decays geometrically; a service stable (or quiet) for
// claimStreakReset lease durations starts over. The rival is by definition
// alive and holding during a standoff, so the group is never masterless
// because of it. The deadline is
// absolute: repeated calls during one standoff (including from a fresh
// ClaimMastership after a budget timeout) wait out the same window, never
// restart it.
func (s *Service) claimBackoffWait(group string, prevailing int64) time.Duration {
	if s.claimBackoffOff || !s.fencing {
		return 0
	}
	s.claimHistMu.Lock()
	defer s.claimHistMu.Unlock()
	h := s.claimHist[group]
	if h == nil || h.lastEpoch == 0 || prevailing <= h.lastEpoch {
		return 0 // never held, or nothing has superseded us
	}
	now := time.Now()
	if h.deposedSeen != prevailing {
		// A new deposition. Decay first: a long-stable tenure (or a long
		// quiet spell) forgives past ping-pong.
		if !h.lastDeposed.IsZero() && now.Sub(h.lastDeposed) > claimStreakReset*s.leaseDuration() {
			h.streak = 0
		}
		h.streak++
		h.deposedSeen = prevailing
		h.lastDeposed = now
		shift := h.streak + 1
		if shift > claimBackoffMaxShift {
			shift = claimBackoffMaxShift
		}
		h.backoffUntil = now.Add(s.leaseDuration() << shift)
	}
	if wait := h.backoffUntil.Sub(now); wait > 0 {
		return wait
	}
	return 0
}

const (
	// claimBackoffMaxShift caps the standoff at leaseDuration << 6 = 64
	// lease periods: long enough to calm any duel, short enough that a
	// genuinely dead winner is still replaced in bounded time.
	claimBackoffMaxShift = 6
	// claimStreakReset is how many lease durations of peace reset the
	// streak.
	claimStreakReset = 16
)

// recordTenure notes that this service holds epoch for group (a fresh claim
// or an adopted one): later backoff decisions measure depositions against
// the highest epoch held.
func (s *Service) recordTenure(group string, epoch int64) {
	s.claimHistMu.Lock()
	defer s.claimHistMu.Unlock()
	h := s.claimHist[group]
	if h == nil {
		h = &claimHistory{}
		s.claimHist[group] = h
	}
	if epoch > h.lastEpoch {
		h.lastEpoch = epoch
	}
}

// claimLock returns the mutex serializing group's mastership claims.
func (s *Service) claimLock(group string) *sync.Mutex {
	s.claimMu.Lock()
	defer s.claimMu.Unlock()
	l := s.claimLocks[group]
	if l == nil {
		l = &sync.Mutex{}
		s.claimLocks[group] = l
	}
	return l
}

// claimLead is how far above the observed tip a takeover claim is proposed
// on the given attempt: nothing on the first try (the common dead-master
// case must not leave holes), exponentially further on retries so a claim
// racing a still-active master gets ahead of it in O(log distance) rounds.
func claimLead(attempt int) int64 {
	if attempt <= 0 {
		return 0
	}
	if attempt > 10 {
		attempt = 10
	}
	return 1 << attempt
}

// peersApplied probes every peer for its applied horizon concurrently —
// unreachable peers cost one shared timeout, not one each — and returns the
// maximum (0 when no peer answers).
func (s *Service) peersApplied(ctx context.Context, group string) int64 {
	if s.transport == nil {
		return 0
	}
	cctx, cancel := context.WithTimeout(ctx, s.timeout)
	defer cancel()
	var mu sync.Mutex
	var tip int64
	var wg sync.WaitGroup
	for _, dc := range s.transport.Peers() {
		if dc == s.dc {
			continue
		}
		wg.Add(1)
		go func(dc string) {
			defer wg.Done()
			resp, err := s.transport.Send(cctx, dc, network.Message{Kind: network.KindReadPos, Group: group})
			if err == nil && resp.OK {
				mu.Lock()
				if resp.TS > tip {
					tip = resp.TS
				}
				mu.Unlock()
			}
		}(dc)
	}
	wg.Wait()
	return tip
}

// absorbTo advances the local watermark to target: decided entries are
// fetched or learned, and positions that are genuinely undecided — the old
// master's abandoned in-flight slots below the takeover claim — are driven
// to a no-op decision, exactly as explicit recovery would. Transient learn
// failures (a racing proposer mid-decision) retry with backoff until ctx
// expires.
func (s *Service) absorbTo(ctx context.Context, group string, target int64) error {
	lg := s.log(group)
	for attempt := 0; lg.Applied() < target; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		pos := lg.Applied() + 1
		if lg.Has(pos) {
			if err := lg.WaitApplied(ctx, pos); err != nil {
				return err
			}
			continue
		}
		entry, err := s.learn(ctx, group, pos, true)
		if errors.Is(err, errSnapshotRequired) {
			if err := s.fetchSnapshot(ctx, group); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			sleepBackoff(ctx, attempt, s.timeout/40)
			continue
		}
		if err := s.ApplyDecided(group, pos, wal.Encode(entry)); err != nil {
			return err
		}
	}
	return nil
}

// RenewLease commits a renewal claim entry (same epoch, same master) through
// the log, refreshing the lease at every replica that applies it. Only
// meaningful for an idle master — a master with traffic renews implicitly
// through its stamped entries. Returns the epoch renewed.
func (s *Service) RenewLease(ctx context.Context, group string) (int64, error) {
	if !s.fencing {
		return 0, nil
	}
	if err := s.replicaFault(); err != nil {
		// Same rule as ClaimMastership: a fail-stopped replica lets its
		// lease lapse so mastership moves to a healthy peer.
		return 0, fmt.Errorf("core: renew %s: declining, storage failed: %w", group, err)
	}
	lg := s.log(group)
	st := lg.Epoch()
	if st.Master != s.dc {
		return 0, fmt.Errorf("core: renew %s: not master (holder %q)", group, st.Master)
	}
	pos := lg.DecidedMax() + 1
	decided, ours, err := s.replicateAsMaster(ctx, group, pos, wal.Encode(wal.NewClaim(st.Epoch, s.dc)))
	if err != nil {
		return 0, err
	}
	if aerr := s.ApplyDecided(group, pos, decided); aerr != nil {
		return 0, aerr
	}
	if !ours {
		return 0, fmt.Errorf("core: renew %s: lost position %d", group, pos)
	}
	return st.Epoch, nil
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
