package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/network"
)

// scanPage drives the KindScan handler directly, following the cursor until
// the range is exhausted, and returns the served rows plus the pin.
func scanPages(t *testing.T, s *Service, group, prefix string, page int64, ts int64) ([]string, []string, int64) {
	t.Helper()
	h := s.Handler()
	var keys, vals []string
	cursor, hasCursor := "", false
	pin := ts
	for i := 0; ; i++ {
		if i > 10000 {
			t.Fatal("scan did not terminate")
		}
		resp := h("T", network.Message{
			Kind: network.KindScan, Group: group, Value: prefix,
			TS: pin, Pos: page, Key: cursor, Found: hasCursor,
		})
		if !resp.OK {
			t.Fatalf("scan page: %+v", resp)
		}
		if pin == network.ResolvePos {
			pin = resp.TS
		} else if resp.TS != pin {
			t.Fatalf("page served at %d, pinned %d", resp.TS, pin)
		}
		keys = append(keys, resp.Keys...)
		vals = append(vals, resp.Vals...)
		if !resp.Found {
			return keys, vals, pin
		}
		cursor, hasCursor = resp.Key, true
	}
}

// TestScanHandlerPagesSorted: the handler pages a prefix region in key
// order, honors the page limit, skips keys outside the prefix, and resolves
// a lazy pin at the watermark.
func TestScanHandlerPagesSorted(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	s := services["A"]
	writes := map[string]string{"other/x": "no"}
	for i := 0; i < 23; i++ {
		writes[fmt.Sprintf("s/k%02d", i)] = fmt.Sprintf("v%02d", i)
	}
	if err := s.ApplyDecided("g", 1, entryBytes("t1", 0, writes)); err != nil {
		t.Fatal(err)
	}

	keys, vals, pin := scanPages(t, s, "g", "s/", 5, network.ResolvePos)
	if pin != 1 {
		t.Fatalf("pin = %d, want 1", pin)
	}
	if len(keys) != 23 {
		t.Fatalf("scan returned %d keys, want 23: %v", len(keys), keys)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("keys out of order: %v", keys)
	}
	for i, k := range keys {
		want := fmt.Sprintf("s/k%02d", i)
		if k != want || vals[i] != fmt.Sprintf("v%02d", i) {
			t.Fatalf("row %d = (%s, %s), want (%s, v%02d)", i, k, vals[i], want, i)
		}
	}
}

// TestTxScanSnapshotAcrossPages: a multi-page Tx.Scan observes exactly the
// state at its pinned position — writes that land after the first page are
// invisible to later pages (new keys absent, overwrites unseen).
func TestTxScanSnapshotAcrossPages(t *testing.T) {
	cl, services := newRingClient(t, "A", Config{Seed: 1})
	ctx := context.Background()
	writes := map[string]string{}
	for i := 0; i < 30; i++ {
		writes[fmt.Sprintf("s/k%02d", i)] = "v1"
	}
	seed := entryBytes("t1", 0, writes)
	for _, dc := range []string{"A", "B", "C"} {
		if err := services[dc].ApplyDecided("g", 1, seed); err != nil {
			t.Fatal(err)
		}
	}

	tx, err := cl.Begin(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	sc := tx.Scan("s/")
	sc.PageSize = 8
	if !sc.Next(ctx) {
		t.Fatalf("first row: %v", sc.Err())
	}
	got := []ScanEntry{sc.Entry()}
	if tx.ReadPos() != 1 {
		t.Fatalf("first page pinned at %d, want 1", tx.ReadPos())
	}

	// The snapshot-breaking entry: every value overwritten, a new key added.
	over := map[string]string{"s/zz": "late"}
	for i := 0; i < 30; i++ {
		over[fmt.Sprintf("s/k%02d", i)] = "v2"
	}
	b := entryBytes("t2", 1, over)
	for _, dc := range []string{"A", "B", "C"} {
		if err := services[dc].ApplyDecided("g", 2, b); err != nil {
			t.Fatal(err)
		}
	}

	for sc.Next(ctx) {
		got = append(got, sc.Entry())
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(got) != 30 {
		t.Fatalf("scan saw %d rows, want the 30 at the pin: %+v", len(got), got)
	}
	for i, e := range got {
		if want := fmt.Sprintf("s/k%02d", i); e.Key != want {
			t.Fatalf("row %d key = %s, want %s", i, e.Key, want)
		}
		if e.Value != "v1" {
			t.Fatalf("row %s = %q: page after position 2 leaked a later write", e.Key, e.Value)
		}
	}
}

// TestTxScanOverlaysBufferedWrites: the transaction's own writes shadow
// stored rows and interleave as new rows, in order (property A1 for scans).
func TestTxScanOverlaysBufferedWrites(t *testing.T) {
	cl, services := newRingClient(t, "A", Config{Seed: 1})
	ctx := context.Background()
	b := entryBytes("t1", 0, map[string]string{"p/b": "old-b", "p/d": "old-d"})
	for _, dc := range []string{"A", "B", "C"} {
		if err := services[dc].ApplyDecided("g", 1, b); err != nil {
			t.Fatal(err)
		}
	}
	tx, err := cl.Begin(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	tx.Write("p/b", "new-b") // shadows a stored row
	tx.Write("p/a", "new-a") // before every stored row
	tx.Write("p/e", "new-e") // after every stored row
	tx.Write("q/x", "other") // outside the prefix: invisible

	var gotKeys, gotVals []string
	sc := tx.Scan("p/")
	for sc.Next(ctx) {
		gotKeys = append(gotKeys, sc.Key())
		gotVals = append(gotVals, sc.Value())
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	wantKeys := []string{"p/a", "p/b", "p/d", "p/e"}
	wantVals := []string{"new-a", "new-b", "old-d", "new-e"}
	if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) || fmt.Sprint(gotVals) != fmt.Sprint(wantVals) {
		t.Fatalf("scan = %v / %v, want %v / %v", gotKeys, gotVals, wantKeys, wantVals)
	}
}

// TestScanPinHoldsCompaction: a scan's pin clamps the group's compaction
// horizon, so versions later pages still read survive a concurrent Compact;
// a scan pinned below an already-compacted horizon is refused, not served
// half-GC'd data.
func TestScanPinHoldsCompaction(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	s := services["A"]
	for pos := int64(1); pos <= 5; pos++ {
		b := entryBytes(fmt.Sprintf("t%d", pos), pos-1, map[string]string{"s/k": fmt.Sprintf("v%d", pos)})
		if err := s.ApplyDecided("g", pos, b); err != nil {
			t.Fatal(err)
		}
	}

	// First page at position 2 registers the pin.
	resp := s.Handler()("T", network.Message{Kind: network.KindScan, Group: "g", Value: "s/", TS: 2})
	if !resp.OK || resp.TS != 2 {
		t.Fatalf("pinned page: %+v", resp)
	}
	// A compaction to 5 must clamp at the pin.
	horizon, err := s.Compact("g", 5)
	if err != nil {
		t.Fatal(err)
	}
	if horizon != 2 {
		t.Fatalf("compaction horizon = %d with a scan pinned at 2, want 2", horizon)
	}
	// The pinned version is still readable: the next page serves normally.
	resp = s.Handler()("T", network.Message{Kind: network.KindScan, Group: "g", Value: "s/", TS: 2})
	if !resp.OK || len(resp.Vals) != 1 || resp.Vals[0] != "v2" {
		t.Fatalf("page after clamped compaction: %+v", resp)
	}

	// A scan pinned below a horizon that already moved is refused.
	s2 := services["A"] // fresh group on the same service
	for pos := int64(1); pos <= 4; pos++ {
		b := entryBytes(fmt.Sprintf("u%d", pos), pos-1, map[string]string{"s/k": "v"})
		if err := s2.ApplyDecided("h", pos, b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s2.Compact("h", 4); err != nil {
		t.Fatal(err)
	}
	resp = s2.Handler()("T", network.Message{Kind: network.KindScan, Group: "h", Value: "s/", TS: 2})
	if resp.OK || resp.Err != errCompacted {
		t.Fatalf("scan below the horizon = %+v, want %q refusal", resp, errCompacted)
	}
}

// TestKVScanMergesGroups: the routed scan fans one leg per group and merges
// the pages into one ascending order with per-group positions reported.
func TestKVScanMergesGroups(t *testing.T) {
	router := &mapRouter{def: "g0", groups: []string{"g0", "g1", "g2"}}
	kv, services := newKVHarness(t, router)
	ctx := context.Background()

	perGroup := map[string]map[string]string{
		"g0": {"p/a": "va", "p/d": "vd"},
		"g1": {"p/b": "vb", "p/e": "ve"},
		"g2": {"p/c": "vc", "q/z": "no"},
	}
	for g, writes := range perGroup {
		b := entryBytes("seed-"+g, 0, writes)
		for _, dc := range kvDCs {
			if err := services[dc].ApplyDecided(g, 1, b); err != nil {
				t.Fatal(err)
			}
		}
	}

	res, err := kv.Scan(ctx, "p/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"p/a", "p/b", "p/c", "p/d", "p/e"}
	if len(res.Entries) != len(want) {
		t.Fatalf("scan = %+v, want keys %v", res.Entries, want)
	}
	for i, e := range res.Entries {
		if e.Key != want[i] || e.Value != "v"+want[i][2:] {
			t.Fatalf("entry %d = %+v, want (%s, v%s)", i, e, want[i], want[i][2:])
		}
	}
	for _, g := range router.groups {
		if pos, ok := res.Positions[g]; !ok || pos != 1 {
			t.Fatalf("Positions[%s] = (%d, %v), want (1, true)", g, pos, ok)
		}
	}
}

// TestRangeSnapshotPagingLinear pins the backfill read-path fix: paging a
// group's rows through KindRangeSnapshot must examine O(rows) index entries
// in total, not O(rows) per page (the old full-store key walk per page made
// an N-row backfill quadratic — 4x the rows cost ~16x the work; the cursor
// seek keeps the ratio linear).
func TestRangeSnapshotPagingLinear(t *testing.T) {
	pageAll := func(s *Service, n int) int64 {
		t.Helper()
		// Seed n rows in one entry, then page the whole moving set out.
		writes := make(map[string]string, n)
		for i := 0; i < n; i++ {
			writes[fmt.Sprintf("row-%05d", i)] = "v"
		}
		if err := s.ApplyDecided("g0", 1, entryBytes("seed", 0, writes)); err != nil {
			t.Fatal(err)
		}
		before := s.Store().ScanExamined()
		h := s.Handler()
		cursor, hasCursor := "", false
		got := 0
		for pages := 0; ; pages++ {
			if pages > n {
				t.Fatal("range snapshot did not terminate")
			}
			resp := h("T", network.Message{
				Kind: network.KindRangeSnapshot, Group: "g0", Value: "g1",
				Keys: []string{"g0", "g1"}, TS: network.ResolvePos,
				Key: cursor, Found: hasCursor,
			})
			if !resp.OK {
				t.Fatalf("range snapshot page: %+v", resp)
			}
			got += len(resp.Keys)
			if !resp.Found {
				break
			}
			cursor, hasCursor = resp.Key, true
		}
		if got == 0 {
			t.Fatal("no rows moved; move-set predicate matched nothing")
		}
		return s.Store().ScanExamined() - before
	}

	servicesA, _ := newServiceRing(t, "A")
	small := pageAll(servicesA["A"], 500)
	servicesB, _ := newServiceRing(t, "B")
	big := pageAll(servicesB["B"], 2000)

	// Linear paging: 4x the rows ≈ 4x the examined entries (pages re-examine
	// at most a page boundary row each). Quadratic would be ~16x.
	if ratio := float64(big) / float64(small); ratio > 8 {
		t.Fatalf("examined %d for 500 rows vs %d for 2000: ratio %.1f suggests superlinear paging", small, big, ratio)
	}
	if big > 4*2000+rangeSnapshotExamineBudget {
		t.Fatalf("examined %d entries paging 2000 rows; want O(rows)", big)
	}
}

// TestDispatcherCloseDrainsWithRefusals: items still queued when the
// dispatcher closes are refused, not dropped, and a dispatch after close
// refuses immediately on the caller's goroutine.
func TestDispatcherCloseDrainsWithRefusals(t *testing.T) {
	d := newDispatcher(1)
	gate := make(chan struct{})
	started := make(chan struct{})
	d.dispatch("g", func() { close(started); <-gate }, func() {})
	<-started // the lone worker is parked; everything below queues

	const queued = 32
	var ran, refused atomic.Int32
	for i := 0; i < queued; i++ {
		d.dispatch("g", func() { ran.Add(1) }, func() { refused.Add(1) })
	}
	d.close()

	// Post-close dispatch: refused synchronously, before the drain even runs.
	sawRefusal := false
	d.dispatch("g", func() { t.Error("ran after close") }, func() { sawRefusal = true })
	if !sawRefusal {
		t.Fatal("dispatch after close was not refused synchronously")
	}

	close(gate) // release the worker; it drains the queue with refusals
	deadline := time.Now().Add(5 * time.Second)
	for ran.Load()+refused.Load() < queued {
		if time.Now().After(deadline) {
			t.Fatalf("accounted %d+%d of %d queued items", ran.Load(), refused.Load(), queued)
		}
		time.Sleep(time.Millisecond)
	}
	if refused.Load() == 0 {
		t.Fatalf("no queued item was refused (ran=%d): close dropped the drain", ran.Load())
	}
}

// TestServiceCloseMidBurstRepliesNotTimeouts: requests racing Service.Close
// all receive a verdict — success before the close or an ErrShutdown
// refusal after — never silence that costs the peer a timeout.
func TestServiceCloseMidBurstRepliesNotTimeouts(t *testing.T) {
	s := NewService("A", kvstore.New(), nil)
	if err := s.ApplyDecided("g", 1, entryBytes("t1", 0, map[string]string{"k": "v"})); err != nil {
		t.Fatal(err)
	}
	ah := s.AsyncHandler()

	const burst = 400
	replies := make(chan network.Message, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ah("B", network.Message{Kind: network.KindRead, Group: "g", Key: "k", TS: 1},
				func(m network.Message) { replies <- m })
		}()
		if i == burst/2 {
			go s.Close()
		}
	}
	wg.Wait()

	shutdowns := 0
	for i := 0; i < burst; i++ {
		select {
		case m := <-replies:
			if !m.OK && m.Err != ErrShutdown {
				t.Fatalf("reply %d: %+v, want success or %q", i, m, ErrShutdown)
			}
			if m.Err == ErrShutdown {
				shutdowns++
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never answered: dropped at close (got %d shutdown refusals so far)", i, shutdowns)
		}
	}
}
