package core

import (
	"paxoscp/internal/network"
)

// Fail-stop → failover (DESIGN.md §14). A replica whose durability engine
// has poisoned (fsync error, ENOSPC, torn write — kvstore fail-stop) must
// not limp along as master, timing clients out while its lease keeps
// renewing through entries it can no longer apply. The contract:
//
//   - Mutating requests are refused up front with the distinct
//     ErrReplicaFailed verdict: definitive at this replica (its disk is
//     gone for the life of the process), retryable elsewhere (nothing
//     reached the log). Reads keep serving the in-memory image, and the
//     replica keeps answering catch-up fetches so its peers can absorb
//     everything it committed before dying.
//   - The replica declines to claim or renew mastership. Combined with the
//     submit refusal (no new stamped entries), its lease goes silent and
//     lapses within one lease duration, at which point a healthy peer's
//     next submit claims the group's next epoch — the ordinary dead-master
//     failover path, no new machinery.
//   - Engine health is surfaced in GroupStatus (Fault, scrub fields) so
//     txkvctl status shows the degraded replica.
//
// The refusal must sit in front of the pipeline, not inside replication:
// a failed master that still places entries would refresh its own lease at
// every peer through the entries it replicates (they decide fine — only
// the local apply fails), wedging the group behind a master that can
// commit nothing.

// ErrReplicaFailed is the wire error marker for a submit refused because
// this replica's storage engine has fail-stopped. The reply's Value
// carries the engine failure text for diagnostics. Clients treat it as
// non-retryable at this replica and retryable at any other.
const ErrReplicaFailed = "replica failed"

// replicaFault reports this service's storage-engine failure, nil while
// healthy.
func (s *Service) replicaFault() error {
	return s.store.EngineFailure()
}

// replicaFailedReply builds the ErrReplicaFailed refusal.
func replicaFailedReply(err error) network.Message {
	m := network.Status(false, ErrReplicaFailed)
	m.Value = err.Error()
	return m
}
