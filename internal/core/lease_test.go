package core

import (
	"context"
	"testing"
	"time"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/network"
	"paxoscp/internal/stats"
	"paxoscp/internal/wal"
)

// leaseRing wires three services with a short master lease so takeover tests
// do not wait out the default four-timeout lease.
func leaseRing(t *testing.T, lease time.Duration, extra ...ServiceOption) (map[string]*Service, *network.Sim) {
	t.Helper()
	topo := network.NewTopology("A", "B", "C")
	sim := network.NewSim(topo, network.SimConfig{Seed: 3})
	t.Cleanup(sim.Close)
	services := make(map[string]*Service, 3)
	for _, dc := range []string{"A", "B", "C"} {
		dc := dc
		ep := sim.Endpoint(dc, func(from string, req network.Message) network.Message {
			return services[dc].Handler()(from, req)
		})
		opts := append([]ServiceOption{
			WithServiceTimeout(200 * time.Millisecond), WithLeaseDuration(lease),
		}, extra...)
		services[dc] = NewService(dc, kvstore.New(), ep, opts...)
		t.Cleanup(services[dc].Close)
	}
	return services, sim
}

// masterClient returns a Master-protocol client homed at dc submitting to
// masterDC.
func masterClient(t *testing.T, sim *network.Sim, services map[string]*Service, dc, masterDC string) *Client {
	t.Helper()
	tr := sim.Endpoint(dc, services[dc].Handler())
	return NewClient(1, dc, tr, Config{
		Protocol: Master, MasterDC: masterDC, Seed: 1, Timeout: 200 * time.Millisecond,
	})
}

// TestClaimMastershipEstablishesEpoch: an explicit claim commits an epoch-1
// claim entry through the log, is idempotent for the holder, and renews.
func TestClaimMastershipEstablishesEpoch(t *testing.T) {
	services, _ := leaseRing(t, 300*time.Millisecond)
	ctx := context.Background()
	s := services["A"]

	epoch, err := s.ClaimMastership(ctx, "g")
	if err != nil || epoch != 1 {
		t.Fatalf("claim = %d %v, want epoch 1", epoch, err)
	}
	if st, valid := s.Mastership("g"); st.Epoch != 1 || st.Master != "A" || st.Pos != 1 || !valid {
		t.Fatalf("mastership after claim = %+v valid=%v", st, valid)
	}
	// Re-claiming while holding is a no-op returning the held epoch.
	if epoch, err = s.ClaimMastership(ctx, "g"); err != nil || epoch != 1 {
		t.Fatalf("re-claim = %d %v", epoch, err)
	}
	// Explicit renewal commits a same-epoch claim entry.
	if epoch, err = s.RenewLease(ctx, "g"); err != nil || epoch != 1 {
		t.Fatalf("renew = %d %v", epoch, err)
	}
	if got := s.LastApplied("g"); got != 2 {
		t.Fatalf("log after claim+renew covers %d positions, want 2", got)
	}
	// Status surfaces the epoch state.
	st := s.Status("g")
	if st.Epoch != 1 || st.Master != "A" || !st.LeaseValid {
		t.Fatalf("status = %+v", st)
	}
}

// TestSubmitAutoClaimsAndStampsEpoch: the first submit to a fresh master
// lazily claims epoch 1; the transaction entry is stamped with it and the
// commit result reports it.
func TestSubmitAutoClaimsAndStampsEpoch(t *testing.T) {
	services, sim := leaseRing(t, 300*time.Millisecond)
	cl := masterClient(t, sim, services, "B", "A")
	ctx := context.Background()

	tx, _ := cl.Begin(ctx, "g")
	tx.Write("k", "v")
	res, err := tx.Commit(ctx)
	if err != nil || res.Status != stats.Committed {
		t.Fatalf("commit: %+v %v", res, err)
	}
	if res.Pos != 2 || res.Epoch != 1 {
		t.Fatalf("commit pos/epoch = %d/%d, want 2/1 (claim at 1)", res.Pos, res.Epoch)
	}
	claim, ok := services["A"].DecidedEntry("g", 1)
	if !ok || !claim.IsClaim() || claim.Epoch != 1 || claim.Master != "A" {
		t.Fatalf("position 1 = %v ok=%v, want epoch-1 claim by A", claim, ok)
	}
	entry, ok := services["A"].DecidedEntry("g", 2)
	if !ok || entry.Epoch != 1 || !entry.Contains(tx.ID()) {
		t.Fatalf("position 2 = %v ok=%v, want epoch-1 stamped txn", entry, ok)
	}
}

// TestDeposedMasterRefusesWithHintAndClientFollows: after a takeover, the
// old master refuses submits with ErrNotMaster and the prevailing holder;
// the client follows the hint and commits at the new master under the new
// epoch — the retry-to-new-master path.
func TestDeposedMasterRefusesWithHintAndClientFollows(t *testing.T) {
	services, sim := leaseRing(t, 150*time.Millisecond)
	ctx := context.Background()
	if _, err := services["A"].ClaimMastership(ctx, "g"); err != nil {
		t.Fatal(err)
	}
	// B takes over once A's lease falls silent (A commits nothing).
	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	epoch, err := services["B"].ClaimMastership(cctx, "g")
	if err != nil || epoch != 2 {
		t.Fatalf("takeover = %d %v, want epoch 2", epoch, err)
	}
	// A has applied B's claim entry, so it knows it is deposed.
	if st, _ := services["A"].Mastership("g"); st.Master != "B" || st.Epoch != 2 {
		t.Fatalf("A's view after takeover = %+v", st)
	}

	// A client still pointed at the old master is redirected and commits
	// under epoch 2.
	cl := masterClient(t, sim, services, "C", "A")
	tx, _ := cl.Begin(ctx, "g")
	tx.Write("k", "v")
	res, err := tx.Commit(ctx)
	if err != nil || res.Status != stats.Committed || res.Epoch != 2 {
		t.Fatalf("redirected commit: %+v %v", res, err)
	}
}

// TestEpochFencingDisabledReproducesOldBehavior: with fencing off (test-only
// option) the master path neither claims nor stamps — the first transaction
// commits at position 1 with epoch 0, exactly the pre-fencing layout.
func TestEpochFencingDisabledReproducesOldBehavior(t *testing.T) {
	services, sim := leaseRing(t, 0, WithEpochFencingDisabled())
	cl := masterClient(t, sim, services, "B", "A")
	ctx := context.Background()

	tx, _ := cl.Begin(ctx, "g")
	tx.Write("k", "v")
	res, err := tx.Commit(ctx)
	if err != nil || res.Status != stats.Committed || res.Pos != 1 || res.Epoch != 0 {
		t.Fatalf("fencing-off commit: %+v %v", res, err)
	}
	entry, ok := services["A"].DecidedEntry("g", 1)
	if !ok || entry.Epoch != 0 || entry.IsClaim() {
		t.Fatalf("fencing-off entry = %v ok=%v, want unstamped txn entry", entry, ok)
	}
	if st, _ := services["A"].Mastership("g"); st.Epoch != 0 {
		t.Fatalf("fencing-off epoch state = %+v", st)
	}
}

// TestDeposedMasterInFlightDrainsAsFailure: a master whose in-flight entry
// is beaten by a takeover claim drains it with a definitive failure — never
// a commit, never promotion to a later (fenced) position.
func TestDeposedMasterInFlightDrainsAsFailure(t *testing.T) {
	services, _ := leaseRing(t, 150*time.Millisecond)
	ctx := context.Background()
	s := services["A"]
	if _, err := s.ClaimMastership(ctx, "g"); err != nil {
		t.Fatal(err)
	}
	// B takes over; A's pipeline has not noticed yet (no traffic).
	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, err := services["B"].ClaimMastership(cctx, "g"); err != nil {
		t.Fatal(err)
	}

	// Drive A's submit path directly: the pipeline sees A's own stale
	// mastership view only if it skips the lease check — but place() always
	// re-checks, so the submission must be refused with a hint, and the
	// transaction must not appear anywhere in the log.
	resp := s.Handler()("C", network.Message{
		Kind: network.KindSubmit, Group: "g",
		Payload: wal.Encode(wal.NewEntry(wal.Txn{ID: "stale-1", Origin: "C", Writes: map[string]string{"k": "v"}})),
	})
	if resp.OK {
		t.Fatalf("deposed master accepted a submit: %+v", resp)
	}
	if resp.Err != ErrNotMaster || resp.Value != "B" {
		t.Fatalf("refusal = %q hint %q, want %q hint B", resp.Err, resp.Value, ErrNotMaster)
	}
	for _, svc := range services {
		for pos, e := range svc.LogSnapshot("g") {
			if e.Contains("stale-1") {
				t.Fatalf("refused transaction reached the log at %s/%d", svc.DC(), pos)
			}
		}
	}
}
