package core

import (
	"testing"
	"testing/quick"

	"paxoscp/internal/paxos"
	"paxoscp/internal/wal"
)

func mkTxn(id string, reads []string, writes map[string]string) wal.Txn {
	return wal.Txn{ID: id, Origin: "V1", ReadPos: 4, ReadSet: reads, Writes: writes}
}

func newTestClient(cfg Config) *Client {
	// Transport is unused by the value-selection logic under test.
	cfg.Seed = 1
	return &Client{id: 1, dc: "V1", cfg: cfg, rng: newLockedRand(1)}
}

func vote(dc string, ballot int64, e wal.Entry) paxos.Vote {
	return paxos.Vote{DC: dc, Ballot: ballot, Value: wal.Encode(e)}
}

func nullVote(dc string) paxos.Vote {
	return paxos.Vote{DC: dc, Ballot: paxos.NilBallot}
}

func TestMostVotedValue(t *testing.T) {
	e1 := wal.NewEntry(mkTxn("a", nil, map[string]string{"x": "1"}))
	e2 := wal.NewEntry(mkTxn("b", nil, map[string]string{"y": "1"}))
	votes := []paxos.Vote{
		vote("A", 1, e1), vote("B", 2, e1), vote("C", 3, e2), nullVote("D"),
	}
	val, n := mostVotedValue(votes)
	if n != 2 || string(val) != string(wal.Encode(e1)) {
		t.Fatalf("mostVotedValue = (%q, %d)", val, n)
	}
	if _, n := mostVotedValue([]paxos.Vote{nullVote("A")}); n != 0 {
		t.Fatalf("null votes counted: %d", n)
	}
}

func TestCombineDisjointTxns(t *testing.T) {
	c := newTestClient(Config{Protocol: CP})
	own := wal.NewEntry(mkTxn("own", []string{"a"}, map[string]string{"b": "1"}))
	t1 := mkTxn("t1", []string{"c"}, map[string]string{"d": "1"})
	t2 := mkTxn("t2", []string{"e"}, map[string]string{"f": "1"})
	votes := []paxos.Vote{vote("A", 1, wal.NewEntry(t1)), vote("B", 1, wal.NewEntry(t2))}

	combined := c.combine(own, votes)
	if len(combined.Txns) != 3 {
		t.Fatalf("combined %d txns, want 3: %s", len(combined.Txns), combined)
	}
	if combined.Txns[0].ID != "own" {
		t.Fatalf("own transaction must head the list: %s", combined)
	}
	if !combined.SerializableOrder() {
		t.Fatalf("combined entry not serializable: %s", combined)
	}
}

func TestCombineConflictingCandidateDropped(t *testing.T) {
	c := newTestClient(Config{Protocol: CP})
	own := wal.NewEntry(mkTxn("own", nil, map[string]string{"x": "1"}))
	// reader reads x, which own writes: cannot follow own in the list.
	reader := mkTxn("t-reader", []string{"x"}, map[string]string{"y": "1"})
	clean := mkTxn("t-clean", []string{"z"}, map[string]string{"w": "1"})
	votes := []paxos.Vote{vote("A", 1, wal.NewEntry(reader)), vote("B", 1, wal.NewEntry(clean))}

	combined := c.combine(own, votes)
	if combined.Contains("t-reader") {
		t.Fatalf("conflicting transaction combined: %s", combined)
	}
	if !combined.Contains("t-clean") || !combined.Contains("own") {
		t.Fatalf("non-conflicting transaction dropped: %s", combined)
	}
}

func TestCombineOrderSearchFindsWorkableOrder(t *testing.T) {
	c := newTestClient(Config{Protocol: CP})
	own := wal.NewEntry(mkTxn("own", []string{"q"}, map[string]string{"r": "1"}))
	// t1 writes a; t2 reads a. Order [t2, t1] works, [t1, t2] does not.
	t1 := mkTxn("t1", nil, map[string]string{"a": "1"})
	t2 := mkTxn("t2", []string{"a"}, map[string]string{"b": "1"})
	votes := []paxos.Vote{vote("A", 1, wal.NewEntry(t1)), vote("B", 1, wal.NewEntry(t2))}

	combined := c.combine(own, votes)
	if len(combined.Txns) != 3 {
		t.Fatalf("order search failed to place both txns: %s", combined)
	}
	if !combined.SerializableOrder() {
		t.Fatalf("combined entry not serializable: %s", combined)
	}
}

func TestCombineGreedyBeyondLimit(t *testing.T) {
	c := newTestClient(Config{Protocol: CP, CombineLimit: 2})
	own := wal.NewEntry(mkTxn("own", nil, map[string]string{"o": "1"}))
	var votes []paxos.Vote
	for i := 0; i < 6; i++ {
		id := string(rune('a' + i))
		votes = append(votes, vote(id, int64(i+1), wal.NewEntry(
			mkTxn("t-"+id, []string{"r" + id}, map[string]string{"w" + id: "1"}))))
	}
	combined := c.combine(own, votes)
	if len(combined.Txns) != 7 {
		t.Fatalf("greedy pass combined %d of 7: %s", len(combined.Txns), combined)
	}
	if !combined.SerializableOrder() {
		t.Fatalf("not serializable: %s", combined)
	}
}

func TestCombineDeduplicatesCandidates(t *testing.T) {
	c := newTestClient(Config{Protocol: CP})
	own := wal.NewEntry(mkTxn("own", nil, map[string]string{"o": "1"}))
	t1 := mkTxn("t1", nil, map[string]string{"a": "1"})
	// Same transaction voted at two datacenters.
	votes := []paxos.Vote{vote("A", 1, wal.NewEntry(t1)), vote("B", 2, wal.NewEntry(t1))}
	combined := c.combine(own, votes)
	if len(combined.Txns) != 2 {
		t.Fatalf("duplicate candidate not deduplicated: %s", combined)
	}
}

func TestChooseCPCombinesWhenNoMajorityPossible(t *testing.T) {
	c := newTestClient(Config{Protocol: CP})
	ownTxn := mkTxn("own", nil, map[string]string{"o": "1"})
	own := wal.NewEntry(ownTxn)
	other := wal.NewEntry(mkTxn("t1", nil, map[string]string{"a": "1"}))
	// D=3, all 3 responded, votes: 1 for other, 2 null. maxVotes=1,
	// 1 + (3-3) = 1 <= 1 -> combination window.
	prep := paxos.PrepareOutcome{
		D: 3, Acks: 3,
		Votes: []paxos.Vote{vote("A", 1, other), nullVote("B"), nullVote("C")},
	}
	decided, err := wal.Decode(c.chooseCP(prep, own))
	if err != nil {
		t.Fatal(err)
	}
	if !decided.Contains("own") || !decided.Contains("t1") {
		t.Fatalf("expected combination, got %s", decided)
	}
}

func TestChooseCPDrivesExistingWinner(t *testing.T) {
	c := newTestClient(Config{Protocol: CP})
	own := wal.NewEntry(mkTxn("own", nil, map[string]string{"o": "1"}))
	winner := wal.NewEntry(mkTxn("w", nil, map[string]string{"a": "1"}))
	// D=3, 2 votes for winner: maxVotes=2 > 1 -> drive the winner.
	prep := paxos.PrepareOutcome{
		D: 3, Acks: 3,
		Votes: []paxos.Vote{vote("A", 5, winner), vote("B", 5, winner), nullVote("C")},
	}
	got := c.chooseCP(prep, own)
	if string(got) != string(wal.Encode(winner)) {
		t.Fatalf("expected winner proposal, got %q", got)
	}
}

func TestChooseCPKeepsOwnWhenPartOfWinner(t *testing.T) {
	c := newTestClient(Config{Protocol: CP})
	ownTxn := mkTxn("own", nil, map[string]string{"o": "1"})
	own := wal.NewEntry(ownTxn)
	winner := wal.NewEntry(mkTxn("w", nil, map[string]string{"a": "1"}), ownTxn)
	prep := paxos.PrepareOutcome{
		D: 3, Acks: 3,
		Votes: []paxos.Vote{vote("A", 5, winner), vote("B", 5, winner), nullVote("C")},
	}
	// Own txn is inside the majority value: fall through to the basic rule,
	// which adopts the max-ballot vote — the same winner. Either way the
	// proposal must contain own.
	decided, err := wal.Decode(c.chooseCP(prep, own))
	if err != nil {
		t.Fatal(err)
	}
	if !decided.Contains("own") {
		t.Fatalf("own dropped from winner: %s", decided)
	}
}

func TestChooseCPFallsBackToBasicRule(t *testing.T) {
	c := newTestClient(Config{Protocol: CP})
	own := wal.NewEntry(mkTxn("own", nil, map[string]string{"o": "1"}))
	other := wal.NewEntry(mkTxn("t1", nil, map[string]string{"a": "1"}))
	// D=3 but only 2 responses: maxVotes=1, 1+(3-2)=2 > 1, and no majority
	// -> basic rule adopts the max-ballot vote.
	prep := paxos.PrepareOutcome{
		D: 3, Acks: 2,
		Votes: []paxos.Vote{vote("A", 7, other), nullVote("B")},
	}
	got := c.chooseCP(prep, own)
	if string(got) != string(wal.Encode(other)) {
		t.Fatalf("basic fallback must adopt max-ballot vote")
	}
}

func TestChooseCPDisableCombination(t *testing.T) {
	c := newTestClient(Config{Protocol: CP, DisableCombination: true})
	own := wal.NewEntry(mkTxn("own", nil, map[string]string{"o": "1"}))
	other := wal.NewEntry(mkTxn("t1", nil, map[string]string{"a": "1"}))
	prep := paxos.PrepareOutcome{
		D: 3, Acks: 3,
		Votes: []paxos.Vote{vote("A", 1, other), nullVote("B"), nullVote("C")},
	}
	decided, err := wal.Decode(c.chooseCP(prep, own))
	if err != nil {
		t.Fatal(err)
	}
	if len(decided.Txns) != 1 || !decided.Contains("own") {
		t.Fatalf("with combination disabled expected own only, got %s", decided)
	}
}

func TestChooseBasicAdoptsMaxBallotVote(t *testing.T) {
	c := newTestClient(Config{})
	own := wal.NewEntry(mkTxn("own", nil, map[string]string{"o": "1"}))
	low := wal.NewEntry(mkTxn("low", nil, map[string]string{"a": "1"}))
	high := wal.NewEntry(mkTxn("high", nil, map[string]string{"b": "1"}))
	prep := paxos.PrepareOutcome{
		D: 3, Acks: 3,
		Votes: []paxos.Vote{vote("A", 1, low), vote("B", 9, high), nullVote("C")},
	}
	if got := c.chooseBasic(prep, own); string(got) != string(wal.Encode(high)) {
		t.Fatal("chooseBasic must adopt the highest-ballot vote")
	}
	// All null: own value.
	prep = paxos.PrepareOutcome{D: 3, Acks: 3, Votes: []paxos.Vote{nullVote("A"), nullVote("B")}}
	if got := c.chooseBasic(prep, own); string(got) != string(wal.Encode(own)) {
		t.Fatal("chooseBasic must propose own value when all votes are null")
	}
}

func TestPermuteCoversAllOrders(t *testing.T) {
	txns := []wal.Txn{mkTxn("a", nil, nil), mkTxn("b", nil, nil), mkTxn("c", nil, nil)}
	seen := map[string]bool{}
	permute(txns, func(p []wal.Txn) bool {
		key := ""
		for _, t := range p {
			key += t.ID
		}
		seen[key] = true
		return false
	})
	if len(seen) != 6 {
		t.Fatalf("permute visited %d orders, want 6: %v", len(seen), seen)
	}
}

func TestPermuteEmpty(t *testing.T) {
	calls := 0
	permute(nil, func(p []wal.Txn) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("permute(nil) invoked fn %d times, want 1", calls)
	}
}

// TestPropCombineAlwaysSerializableAndContainsOwn: for arbitrary candidate
// sets over a small key space, the combined entry is serializable in list
// order and always contains the client's transaction first.
func TestPropCombineAlwaysSerializableAndContainsOwn(t *testing.T) {
	c := newTestClient(Config{Protocol: CP})
	keys := []string{"k0", "k1", "k2"}
	f := func(spec []uint8) bool {
		own := wal.NewEntry(mkTxn("own", []string{keys[0]}, map[string]string{keys[1]: "v"}))
		var votes []paxos.Vote
		for i, s := range spec {
			if i >= 5 {
				break
			}
			r := keys[int(s)%3]
			w := keys[int(s>>2)%3]
			id := "t" + string(rune('a'+i))
			votes = append(votes, vote(id, int64(i+1),
				wal.NewEntry(mkTxn(id, []string{r}, map[string]string{w: "v"}))))
		}
		combined := c.combine(own, votes)
		return combined.SerializableOrder() &&
			len(combined.Txns) >= 1 && combined.Txns[0].ID == "own"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropExhaustiveNeverWorseThanGreedy: the exhaustive search must combine
// at least as many transactions as the greedy pass.
func TestPropExhaustiveNeverWorseThanGreedy(t *testing.T) {
	keys := []string{"a", "b", "c", "d"}
	f := func(spec []uint8) bool {
		own := wal.NewEntry(mkTxn("own", nil, map[string]string{"own-key": "v"}))
		var cands []wal.Txn
		for i, s := range spec {
			if i >= 4 {
				break
			}
			r := keys[int(s)%4]
			w := keys[int(s>>3)%4]
			id := "t" + string(rune('a'+i))
			cands = append(cands, mkTxn(id, []string{r}, map[string]string{w: "v"}))
		}
		ex := combineExhaustive(own, cands)
		gr := combineGreedy(own, cands)
		return len(ex.Txns) >= len(gr.Txns) && ex.SerializableOrder()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
