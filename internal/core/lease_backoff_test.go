package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/network"
	"paxoscp/internal/wal"
)

// runClaimDuel reproduces PR 4's known annoyance: a sustained asymmetric
// partition (A and B cannot see each other, both see C) with both sides
// repeatedly trying to hold mastership. Without a standoff rule each side
// re-claims every time its view of the other's lease goes silent, so
// mastership ping-pongs for the whole partition. The duel runs for the given
// duration, then heals and counts claim entries per side from the converged
// log — the direct measure of how often mastership actually changed hands.
func runClaimDuel(t *testing.T, lease, duration time.Duration, backoffOff bool) map[string]int {
	t.Helper()
	topo := network.NewTopology("A", "B", "C")
	sim := network.NewSim(topo, network.SimConfig{Seed: 5})
	t.Cleanup(sim.Close)
	services := make(map[string]*Service, 3)
	for _, dc := range []string{"A", "B", "C"} {
		dc := dc
		ep := sim.Endpoint(dc, func(from string, req network.Message) network.Message {
			return services[dc].Handler()(from, req)
		})
		opts := []ServiceOption{
			WithServiceTimeout(40 * time.Millisecond),
			WithLeaseDuration(lease),
		}
		if backoffOff {
			opts = append(opts, WithClaimBackoffDisabled())
		}
		services[dc] = NewService(dc, kvstore.New(), ep, opts...)
		t.Cleanup(services[dc].Close)
	}
	ctx := context.Background()

	// A seeds mastership at epoch 1, then the asymmetric cut begins.
	if _, err := services["A"].ClaimMastership(ctx, "g"); err != nil {
		t.Fatalf("seed claim: %v", err)
	}
	sim.Partition("A", "B")

	// Both sides carry submit traffic for the whole partition, each pinned
	// to its own side as master. This runs the production re-claim loop:
	// a side's fenced entries reveal its deposition, the pipeline's
	// ensureMastership claims again as soon as its view of the rival's lease
	// goes silent — the exact ping-pong mechanism, driven end to end.
	deadline := time.Now().Add(duration)
	dctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	var wg sync.WaitGroup
	for i, dc := range []string{"A", "B"} {
		ep := sim.Endpoint(dc, services[dc].Handler())
		cl := NewClient(10+i, dc, ep, Config{
			Protocol: Master, MasterDC: dc, Seed: int64(i + 1),
			Timeout: 40 * time.Millisecond,
		})
		wg.Add(1)
		go func(dc string, cl *Client) {
			defer wg.Done()
			for n := 0; time.Now().Before(deadline); n++ {
				tx, err := cl.Begin(dctx, "g")
				if err != nil {
					continue
				}
				tx.Write(dc+"-k", dc)
				tx.Commit(dctx) // all verdicts fine; the log is the measure
				sleepCtx(dctx, 5*time.Millisecond)
			}
		}(dc, cl)
	}
	wg.Wait()

	// Heal, converge everyone, and count claims per side from C's log (C saw
	// every decided entry; Recover fills any stragglers).
	sim.Unpartition("A", "B")
	for _, dc := range []string{"A", "B", "C"} {
		if err := services[dc].Recover(ctx, "g"); err != nil {
			t.Fatalf("recover %s: %v", dc, err)
		}
	}
	// Count claim entries from the union of every replica's log. The union
	// may have trailing holes — ambiguous positions the dueling masters
	// abandoned above every applied watermark — which recovery only no-op
	// fills below the applied horizons; claims are decided entries, so the
	// count is exact regardless.
	claims := map[string]int{}
	merged := map[int64]wal.Entry{}
	for _, dc := range []string{"A", "B", "C"} {
		for pos, e := range services[dc].LogSnapshot("g") {
			merged[pos] = e
		}
	}
	for _, e := range merged {
		if e.IsClaim() {
			claims[e.Master]++
		}
	}
	t.Logf("duel (backoffOff=%v): %d log entries, claims per side: %v", backoffOff, len(merged), claims)
	return claims
}

// TestClaimBackoffCalmsAsymmetricPartitionPingPong pins the per-epoch claim
// backoff (DESIGN.md §11): under the same sustained asymmetric partition,
// the deposed-side standoff must cut the number of mastership changes to a
// small, duration-logarithmic count, where the pre-backoff behavior swaps
// mastership every lease period. Safety is fencing's job either way — this
// is purely the liveness/disruption fix — but each claim costs a takeover
// gap, so the count is what users feel.
func TestClaimBackoffCalmsAsymmetricPartitionPingPong(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second duel skipped in short mode")
	}
	const (
		lease    = 100 * time.Millisecond
		duration = 24 * lease
	)
	with := runClaimDuel(t, lease, duration, false)
	without := runClaimDuel(t, lease, duration, true)

	total := func(m map[string]int) int {
		n := 0
		for _, c := range m {
			n += c
		}
		return n
	}
	// The duel must actually have happened in both runs: at least one
	// takeover beyond A's seed claim.
	if without["B"] == 0 || with["B"] == 0 {
		t.Fatalf("no takeover happened: with=%v without=%v", with, without)
	}
	// Regression half: without backoff the partition ping-pongs — strictly
	// more claims than with it.
	if total(without) <= total(with) {
		t.Errorf("backoff had no effect: %d claims with, %d without", total(with), total(without))
	}
	// Absolute half: with backoff, each side's claims stay in the
	// logarithmic regime (streak doubling: ~1+log2(duration/lease) per side
	// at worst, far below the one-per-lease-period ping-pong).
	for dc, n := range with {
		if n > 6 {
			t.Errorf("side %s claimed %d times with backoff on (want <= 6): %v", dc, n, with)
		}
	}
}
