package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/network"
)

// seedLog applies n sequential single-write entries to the given services.
func seedLog(t *testing.T, services map[string]*Service, dcs []string, group string, n int64) {
	t.Helper()
	for pos := int64(1); pos <= n; pos++ {
		b := entryBytes(fmt.Sprintf("t%d", pos), pos-1, map[string]string{
			"k":                     fmt.Sprintf("v%d", pos),
			fmt.Sprintf("u%d", pos): "once",
		})
		for _, dc := range dcs {
			if err := services[dc].ApplyDecided(group, pos, b); err != nil {
				t.Fatalf("apply %s/%d at %s: %v", group, pos, dc, err)
			}
		}
	}
}

func TestCompactScavengesBelowHorizon(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	s := services["A"]
	seedLog(t, services, []string{"A"}, "g", 10)

	horizon, err := s.Compact("g", 7)
	if err != nil {
		t.Fatal(err)
	}
	if horizon != 7 {
		t.Fatalf("horizon = %d, want 7", horizon)
	}
	if got := s.CompactedTo("g"); got != 7 {
		t.Fatalf("CompactedTo = %d, want 7", got)
	}
	// Entries below the horizon are gone; horizon and above survive.
	if _, ok := s.DecidedEntry("g", 6); ok {
		t.Fatal("entry 6 survived compaction")
	}
	for pos := int64(7); pos <= 10; pos++ {
		if _, ok := s.DecidedEntry("g", pos); !ok {
			t.Fatalf("entry %d lost by compaction", pos)
		}
	}
	// Reads at or above the horizon still work.
	resp := s.Handler()("A", network.Message{Kind: network.KindRead, Group: "g", Key: "k", TS: 8})
	if !resp.OK || resp.Value != "v8" {
		t.Fatalf("read@8 after compact = %+v", resp)
	}
	// Multi-version history below the horizon is gone.
	if _, _, err := s.store.Read(dataKey("g", "k"), 3); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("old version survived GC: %v", err)
	}
	// The applied horizon is untouched.
	if got := s.LastApplied("g"); got != 10 {
		t.Fatalf("LastApplied = %d, want 10", got)
	}
}

func TestCompactClampsToApplied(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	s := services["A"]
	seedLog(t, services, []string{"A"}, "g", 3)
	horizon, err := s.Compact("g", 100)
	if err != nil {
		t.Fatal(err)
	}
	if horizon != 3 {
		t.Fatalf("horizon = %d, want clamp to 3", horizon)
	}
	// Compacting backwards is a no-op.
	horizon, err = s.Compact("g", 1)
	if err != nil || horizon != 3 {
		t.Fatalf("backward compact = (%d, %v)", horizon, err)
	}
}

func TestFetchLogReportsCompacted(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	s := services["A"]
	seedLog(t, services, []string{"A"}, "g", 5)
	if _, err := s.Compact("g", 4); err != nil {
		t.Fatal(err)
	}
	resp := s.Handler()("B", network.Message{Kind: network.KindFetchLog, Group: "g", Pos: 2})
	if resp.OK || resp.Err != errCompacted || resp.TS != 4 {
		t.Fatalf("fetch of compacted position = %+v", resp)
	}
	// Position at the horizon is still served.
	resp = s.Handler()("B", network.Message{Kind: network.KindFetchLog, Group: "g", Pos: 4})
	if !resp.OK {
		t.Fatalf("fetch at horizon = %+v", resp)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	services, _ := newServiceRing(t, "A", "B")
	seedLog(t, services, []string{"A"}, "g", 6)

	blob, err := services["A"].buildSnapshot("g")
	if err != nil {
		t.Fatal(err)
	}
	if err := services["B"].installSnapshot(blob); err != nil {
		t.Fatal(err)
	}
	if got := services["B"].LastApplied("g"); got != 6 {
		t.Fatalf("B horizon after install = %d, want 6", got)
	}
	resp := services["B"].Handler()("c", network.Message{Kind: network.KindRead, Group: "g", Key: "k", TS: 6})
	if !resp.OK || resp.Value != "v6" {
		t.Fatalf("read from installed snapshot = %+v", resp)
	}
	// Installing an old snapshot over newer state is a no-op.
	if err := services["B"].installSnapshot(blob); err != nil {
		t.Fatal(err)
	}
}

func TestInstallSnapshotRejectsGarbage(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	if err := services["A"].installSnapshot([]byte("junk")); err == nil {
		t.Fatal("garbage snapshot installed")
	}
}

// TestLaggardCatchesUpViaSnapshot is the full scenario: C misses everything,
// A and B compact past C's position, and C's read triggers snapshot
// transfer followed by per-entry catch-up for the suffix.
func TestLaggardCatchesUpViaSnapshot(t *testing.T) {
	services, _ := newServiceRing(t, "A", "B", "C")
	// Positions 1-10 decided at A and B only.
	seedLog(t, services, []string{"A", "B"}, "g", 10)
	// A and B compact below 8: entries 1-7 scavenged.
	for _, dc := range []string{"A", "B"} {
		if _, err := services[dc].Compact("g", 8); err != nil {
			t.Fatal(err)
		}
	}
	// C must serve a read at position 10.
	resp := services["C"].Handler()("client", network.Message{Kind: network.KindRead, Group: "g", Key: "k", TS: 10})
	if !resp.OK || resp.Value != "v10" {
		t.Fatalf("read after snapshot catch-up = %+v", resp)
	}
	if got := services["C"].LastApplied("g"); got != 10 {
		t.Fatalf("C horizon = %d, want 10", got)
	}
	// Data written only in compacted entries is present via the snapshot.
	resp = services["C"].Handler()("client", network.Message{Kind: network.KindRead, Group: "g", Key: "u3", TS: 10})
	if !resp.OK || !resp.Found || resp.Value != "once" {
		t.Fatalf("snapshot-only key = %+v", resp)
	}
}

// TestRecoverViaSnapshot exercises the same path through explicit recovery.
func TestRecoverViaSnapshot(t *testing.T) {
	services, sim := newServiceRing(t, "A", "B", "C")
	sim.SetDown("C", true)
	seedLog(t, services, []string{"A", "B"}, "g", 9)
	for _, dc := range []string{"A", "B"} {
		if _, err := services[dc].Compact("g", 9); err != nil {
			t.Fatal(err)
		}
	}
	sim.SetDown("C", false)
	if err := services["C"].Recover(context.Background(), "g"); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got := services["C"].LastApplied("g"); got != 9 {
		t.Fatalf("C horizon = %d, want 9", got)
	}
}
