package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"strconv"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/network"
)

// Log compaction and snapshot transfer. The write-ahead log and the
// per-position Paxos instance state grow without bound; a deployment
// periodically scavenges everything below a compaction horizon (Megastore
// does the same with its catch-up/scavenging machinery). A replica that
// falls behind the horizon can no longer catch up entry by entry — its
// peers answer fetch requests with a "compacted" marker carrying the
// horizon, and the laggard installs a state snapshot instead, then resumes
// normal per-entry catch-up above the horizon.
//
// Compaction trades history for space: multi-version reads below the
// horizon return kvstore.ErrNotFound afterwards, so the horizon must stay
// comfortably behind any read position still in use.

// errCompacted is the wire marker a service returns for a fetch of a
// compacted log position.
const errCompacted = "compacted"

// Compact scavenges everything strictly below the given horizon: old data
// item versions, decided log entries, Paxos acceptor state, and leader
// claims. The horizon is clamped to the locally applied position. It
// returns the effective horizon.
func (s *Service) Compact(group string, horizon int64) (int64, error) {
	mu := s.groupMu(group)
	mu.Lock()
	defer mu.Unlock()

	if last := s.lastApplied(group); horizon > last {
		horizon = last
	}
	if horizon <= s.CompactedTo(group) {
		return s.CompactedTo(group), nil
	}
	// Data rows: drop versions below the horizon (reads at >= horizon are
	// unaffected, see kvstore.GC).
	for _, key := range s.store.KeysWithPrefix(fmt.Sprintf("data/%s/", group)) {
		s.store.GC(key, horizon)
	}
	// Log, acceptor, and claim rows strictly below the horizon disappear.
	for pos := s.CompactedTo(group) + 1; pos < horizon; pos++ {
		s.store.Delete(logKey(group, pos))
		s.store.Delete(fmt.Sprintf("paxos/%s/%d", group, pos))
		s.store.Delete(claimKey(group, pos))
	}
	err := s.store.Update(metaKey(group), func(cur kvstore.Value) (kvstore.Value, error) {
		if cur == nil {
			cur = kvstore.Value{}
		}
		cur["compacted"] = strconv.FormatInt(horizon, 10)
		return cur, nil
	})
	if err != nil {
		return 0, err
	}
	return horizon, nil
}

// CompactedTo returns the group's compaction horizon: log entries strictly
// below it have been scavenged locally. Zero means never compacted.
func (s *Service) CompactedTo(group string) int64 {
	v, _, err := s.store.Read(metaKey(group), kvstore.Latest)
	if err != nil {
		return 0
	}
	n, _ := strconv.ParseInt(v["compacted"], 10, 64)
	return n
}

// snapshot is the gob-encoded state transferred to a laggard replica: the
// newest surviving version of every data item at or below the horizon.
type snapshot struct {
	Group   string
	Horizon int64
	Rows    []snapshotRow
}

type snapshotRow struct {
	Key string // data item key (without the data/<group>/ prefix)
	TS  int64  // version timestamp = log position of the writing entry
	Val string
}

// buildSnapshot captures the group's data state at the applied horizon.
func (s *Service) buildSnapshot(group string) ([]byte, error) {
	mu := s.groupMu(group)
	mu.Lock()
	defer mu.Unlock()
	horizon := s.lastApplied(group)
	prefix := fmt.Sprintf("data/%s/", group)
	snap := snapshot{Group: group, Horizon: horizon}
	for _, key := range s.store.KeysWithPrefix(prefix) {
		v, ts, err := s.store.Read(key, horizon)
		if err != nil {
			continue // no version at or below the horizon
		}
		snap.Rows = append(snap.Rows, snapshotRow{Key: key[len(prefix):], TS: ts, Val: v["v"]})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("core: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// installSnapshot applies a peer's snapshot: data rows land idempotently at
// their original version timestamps and the applied horizon jumps to the
// snapshot's. Entries above the horizon continue through normal catch-up.
func (s *Service) installSnapshot(blob []byte) error {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&snap); err != nil {
		return fmt.Errorf("core: decode snapshot: %w", err)
	}
	mu := s.groupMu(snap.Group)
	mu.Lock()
	defer mu.Unlock()
	if s.lastApplied(snap.Group) >= snap.Horizon {
		return nil // already ahead
	}
	for _, row := range snap.Rows {
		key := dataKey(snap.Group, row.Key)
		if err := s.store.WriteIdempotent(key, kvstore.Value{"v": row.Val}, row.TS); err != nil {
			return fmt.Errorf("core: install %s@%d: %w", row.Key, row.TS, err)
		}
	}
	return s.store.Update(metaKey(snap.Group), func(cur kvstore.Value) (kvstore.Value, error) {
		if cur == nil {
			cur = kvstore.Value{}
		}
		cur["last"] = strconv.FormatInt(snap.Horizon, 10)
		cur["compacted"] = strconv.FormatInt(snap.Horizon, 10)
		return cur, nil
	})
}

// handleSnapshot serves a snapshot request.
func (s *Service) handleSnapshot(req network.Message) network.Message {
	blob, err := s.buildSnapshot(req.Group)
	if err != nil {
		return network.Status(false, err.Error())
	}
	return network.Message{Kind: network.KindValue, OK: true, Payload: blob, TS: s.lastApplied(req.Group)}
}

// fetchSnapshot pulls and installs a snapshot from any peer that has one.
func (s *Service) fetchSnapshot(ctx context.Context, group string) error {
	if s.transport == nil {
		return fmt.Errorf("core: no peers for snapshot transfer")
	}
	var lastErr error = fmt.Errorf("core: no peer served a snapshot for %q", group)
	for _, dc := range s.transport.Peers() {
		if dc == s.dc {
			continue
		}
		cctx, cancel := context.WithTimeout(ctx, s.timeout)
		resp, err := s.transport.Send(cctx, dc, network.Message{Kind: network.KindSnapshot, Group: group})
		cancel()
		if err != nil || !resp.OK {
			if err != nil {
				lastErr = err
			}
			continue
		}
		if err := s.installSnapshot(resp.Payload); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}
