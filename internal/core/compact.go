package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/network"
	"paxoscp/internal/paxos"
	"paxoscp/internal/replog"
)

// Log compaction and snapshot transfer. The write-ahead log and the
// per-position Paxos instance state grow without bound; a deployment
// periodically scavenges everything below a compaction horizon (Megastore
// does the same with its catch-up/scavenging machinery). A replica that
// falls behind the horizon can no longer catch up entry by entry — its
// peers answer fetch requests with a "compacted" marker carrying the
// horizon, and the laggard installs a state snapshot instead, then resumes
// normal per-entry catch-up above the horizon.
//
// Compaction trades history for space: multi-version reads below the
// horizon return kvstore.ErrNotFound afterwards, so the horizon must stay
// comfortably behind any read position still in use.
//
// The log rows and the horizon bookkeeping belong to internal/replog; this
// file contributes the service-owned per-position rows (Paxos acceptor
// state, leader claims), data-version GC, and the snapshot wire format.

// errCompacted is the wire marker a service returns for a fetch of a
// compacted log position.
const errCompacted = "compacted"

// compactScanPage sizes the ordered-index pages the compaction scavenge and
// snapshot builder walk the data region with.
const compactScanPage = 512

// Compact scavenges everything strictly below the given horizon: old data
// item versions, decided log entries, Paxos acceptor state, and leader
// claims. The horizon is clamped to the locally applied position. It
// returns the effective horizon.
func (s *Service) Compact(group string, horizon int64) (int64, error) {
	lg := s.log(group)
	prefix := replog.DataPrefix(group)
	return lg.Compact(horizon, func(from, to int64) {
		// Data rows: drop versions below the horizon (reads at >= horizon
		// are unaffected, see kvstore.GC). Rows of a tombstoned range — a
		// departed range whose cutover is durable at the destination
		// (DESIGN.md §15) — are deleted wholesale: the frozen versions can
		// never be read as current again, and new writes are fenced (M1).
		// The tombstone check is evaluated at the effective horizon `to`, not
		// at the watermark: a read pin below the tombstone position clamps
		// `to` under it, and the pinned scan may still serve those frozen
		// rows, so their wholesale delete waits for the pin to clear.
		// Paged over the ordered index instead of sorting every key.
		fence := lg.ScanFenceAt(to)
		tombGC := fence.Active()
		after := ""
		for {
			rows, more, err := s.store.ScanPrefix(prefix, after, compactScanPage, kvstore.Latest)
			if err != nil {
				return // store closed mid-compaction; nothing to scavenge
			}
			for _, row := range rows {
				if tombGC && fence.Tombstoned(row.Key[len(prefix):]) {
					s.store.Delete(row.Key)
					continue
				}
				s.store.GC(row.Key, to)
			}
			if !more {
				break
			}
			after = rows[len(rows)-1].Key
		}
		// Acceptor and claim rows strictly below the horizon disappear
		// (replog drops the log rows themselves).
		for pos := from; pos < to; pos++ {
			s.store.Delete(paxos.StateKey(group, pos))
			s.store.Delete(claimKey(group, pos))
		}
	})
}

// CompactedTo returns the group's compaction horizon: log entries strictly
// below it have been scavenged locally. Zero means never compacted.
func (s *Service) CompactedTo(group string) int64 {
	return s.log(group).CompactedTo()
}

// snapshot is the gob-encoded state transferred to a laggard replica: the
// newest surviving version of every data item at or below the horizon, plus
// the prevailing master epoch state at the horizon — without it a restored
// replica whose establishing claim entry lies below the horizon could not
// fence later entries (DESIGN.md §11). Blobs from pre-epoch peers decode
// with a zero Epoch, which installs as "no epoch observed".
type snapshot struct {
	Group   string
	Horizon int64
	Rows    []snapshotRow
	Epoch   replog.EpochState
	// Migrations carries the handoff records applied at or below the horizon
	// (DESIGN.md §15): a replica restored past a HandoffOut position must
	// still fence writes into the departed range. Pre-migration blobs decode
	// with an empty record list.
	Migrations replog.MigrationState
}

type snapshotRow struct {
	Key string // data item key (without the data/<group>/ prefix)
	TS  int64  // version timestamp = log position of the writing entry
	Val string
}

// buildSnapshot captures the group's data state at the applied horizon. The
// replog watermark only advances after a batch's data writes have landed, so
// the rows are complete at the horizon; ReadStable excludes a concurrent
// compaction from GC-ing the versions visible there mid-scan.
func (s *Service) buildSnapshot(group string) ([]byte, error) {
	prefix := replog.DataPrefix(group)
	var snap snapshot
	lg := s.log(group)
	err := lg.ReadStable(func(horizon int64, epoch replog.EpochState) error {
		snap = snapshot{Group: group, Horizon: horizon, Epoch: epoch, Migrations: lg.MigrationsAt(horizon)}
		// One pass over the ordered index at the horizon replaces the old
		// sort-every-key-then-point-read loop; each page arrives already
		// resolved at the horizon.
		after := ""
		for {
			rows, more, err := s.store.ScanPrefix(prefix, after, compactScanPage, horizon)
			if err != nil {
				return err
			}
			for _, row := range rows {
				snap.Rows = append(snap.Rows, snapshotRow{Key: row.Key[len(prefix):], TS: row.TS, Val: row.Val["v"]})
			}
			if !more {
				return nil
			}
			after = rows[len(rows)-1].Key
		}
	})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("core: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// installSnapshot applies a peer's snapshot: data rows land idempotently at
// their original version timestamps in one write batch, and the applied
// watermark jumps to the snapshot's horizon. Entries above the horizon
// continue through normal catch-up.
func (s *Service) installSnapshot(blob []byte) error {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&snap); err != nil {
		return fmt.Errorf("core: decode snapshot: %w", err)
	}
	lg := s.log(snap.Group)
	if lg.Applied() >= snap.Horizon {
		return nil // already ahead
	}
	writes := make([]kvstore.BatchWrite, 0, len(snap.Rows))
	for _, row := range snap.Rows {
		writes = append(writes, kvstore.BatchWrite{
			Key: dataKey(snap.Group, row.Key), Value: kvstore.Value{"v": row.Val}, TS: row.TS,
		})
	}
	if err := s.store.ApplyBatch(writes); err != nil {
		return fmt.Errorf("core: install snapshot %s: %w", snap.Group, err)
	}
	return lg.InstallSnapshot(snap.Horizon, snap.Epoch, snap.Migrations)
}

// handleSnapshot serves a snapshot request.
func (s *Service) handleSnapshot(req network.Message) network.Message {
	blob, err := s.buildSnapshot(req.Group)
	if err != nil {
		return network.Status(false, err.Error())
	}
	return network.Message{Kind: network.KindValue, OK: true, Payload: blob, TS: s.lastApplied(req.Group)}
}

// fetchSnapshot pulls and installs a snapshot from any peer that has one.
func (s *Service) fetchSnapshot(ctx context.Context, group string) error {
	if s.transport == nil {
		return fmt.Errorf("core: no peers for snapshot transfer")
	}
	var lastErr error = fmt.Errorf("core: no peer served a snapshot for %q", group)
	for _, dc := range s.transport.Peers() {
		if dc == s.dc {
			continue
		}
		cctx, cancel := context.WithTimeout(ctx, s.timeout)
		resp, err := s.transport.Send(cctx, dc, network.Message{Kind: network.KindSnapshot, Group: group})
		cancel()
		if err != nil || !resp.OK {
			if err != nil {
				lastErr = err
			}
			continue
		}
		if err := s.installSnapshot(resp.Payload); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}
