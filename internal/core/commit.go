package core

import (
	"context"
	"fmt"
	"time"

	"paxoscp/internal/network"
	"paxoscp/internal/paxos"
	"paxoscp/internal/stats"
	"paxoscp/internal/wal"
)

// This file implements the client side of the commit protocols: the shared
// Paxos instance runner (Algorithm 2) with the basic findWinningVal rule,
// the §4.1 leader fast path, and the basic Paxos commit protocol. The
// Paxos-CP value-selection rule and promotion loop are in cp.go.

// valueChooser selects the value to propose in the accept phase, given the
// prepare outcome and the client's own candidate entry. It returns the
// encoded proposal. Basic Paxos uses findWinningVal (Algorithm 2 lines
// 66–75); Paxos-CP substitutes enhancedFindWinningVal (lines 76–87).
type valueChooser func(prep paxos.PrepareOutcome, own wal.Entry) []byte

// walTxn converts the transaction's buffered state into its log record.
func (t *Tx) walTxn() wal.Txn {
	return wal.Txn{
		ID:      t.id,
		Origin:  t.client.dc,
		ReadPos: t.readPos,
		ReadSet: t.readSetKeys(),
		Writes:  cloneMap(t.writes),
	}
}

// errNoQuorum reports that a commit attempt exhausted its retry budget
// without ever assembling a majority.
type errNoQuorum struct {
	group string
	pos   int64
	tries int
}

func (e errNoQuorum) Error() string {
	return fmt.Sprintf("core: no majority for %s/%d after %d attempts", e.group, e.pos, e.tries)
}

// commitBasic runs the basic Paxos commit protocol (§4.1): one instance for
// the commit position read position + 1; the transaction commits iff the
// decided value is its own.
func (c *Client) commitBasic(ctx context.Context, t *Tx) (CommitResult, error) {
	txn := t.walTxn()
	pos := t.readPos + 1
	decided, err := c.runInstance(ctx, t.group, pos, txn, c.chooseBasic, false)
	if err != nil {
		return CommitResult{Status: stats.Failed}, err
	}
	if decided.Contains(txn.ID) {
		return CommitResult{Status: stats.Committed, Pos: pos}, nil
	}
	return CommitResult{Status: stats.Aborted}, nil
}

// chooseBasic is findWinningVal: the client must propose the value with the
// greatest proposal number among the votes; only if every response carries a
// null vote may it propose its own value (see [18]).
func (c *Client) chooseBasic(prep paxos.PrepareOutcome, own wal.Entry) []byte {
	if v, ok := maxBallotVote(prep.Votes); ok {
		return v.Value
	}
	return wal.Encode(own)
}

// maxBallotVote returns the non-null vote with the highest ballot. Equal
// ballots — possible only at the fast ballot, when two proposers raced the
// prepare-skipping path — tie-break on the encoded value, so every recoverer
// that sees the same vote pair completes the same value. Safe because a
// fast-ballot value is only ever *chosen* at unanimity (see
// paxos.AcceptOutcome.Unanimous): a tie in any view proves neither value was
// fast-chosen, and the deterministic pick keeps recoverers from completing
// different values.
func maxBallotVote(votes []paxos.Vote) (paxos.Vote, bool) {
	best := paxos.Vote{Ballot: paxos.NilBallot}
	for _, v := range votes {
		if v.IsNull() {
			continue
		}
		if v.Ballot > best.Ballot ||
			(v.Ballot == best.Ballot && string(v.Value) < string(best.Value)) {
			best = v
		}
	}
	return best, !best.IsNull()
}

// runInstance drives one Paxos instance to a decision and returns the
// decided entry. waitAllPrepare selects the prepare collection mode (CP
// inspects the full vote set; Basic proceeds at a majority).
//
// The instance always terminates with the decided value: a client that loses
// still completes the protocol — "Each Transaction Client must execute all
// steps of the protocol to learn the winning value" (§4.1). This also makes
// Paxos-CP's promotion sound: the conflict check runs against the actual
// decided entry, never a guess.
func (c *Client) runInstance(ctx context.Context, group string, pos int64, txn wal.Txn, choose valueChooser, waitAllPrepare bool) (wal.Entry, error) {
	own := wal.NewEntry(txn)
	ownBytes := wal.Encode(own)

	// Leader fast path (§4.1): if this client is the first to claim the
	// position at the leader, skip prepare and accept at the fast ballot.
	// The claim token is the transaction ID: only ONE transaction ever gets
	// the fast ballot for a position. A per-client token would let the same
	// client's next transaction reuse the fast path on a position whose
	// decision it never learned, producing two different ballot-0 proposals
	// for one position — a Paxos safety violation (found by the nemesis
	// fault-injection test).
	if !c.cfg.DisableFastPath {
		if c.claimFastPath(ctx, group, pos, txn.ID) {
			// Unanimity, not majority: a ballot-0 decision must be visible
			// in every majority view for collision recovery to be
			// unambiguous (see replicateAsMaster and DESIGN.md §11).
			acc := c.proposer.AcceptUnanimous(ctx, group, pos, paxos.FastBallot, ownBytes)
			if acc.Unanimous() {
				c.proposer.Apply(ctx, group, pos, paxos.FastBallot, ownBytes)
				return own, nil
			}
			// Contention or loss: fall back to the full protocol.
		}
	}

	ballot := paxos.Ballot(1, c.id)
	tries := c.cfg.maxRetries()
	for attempt := 0; attempt < tries; attempt++ {
		if err := ctx.Err(); err != nil {
			return wal.Entry{}, err
		}
		if attempt > 0 {
			if err := c.backoff(ctx, attempt); err != nil {
				return wal.Entry{}, err
			}
		}
		// Prepare phase.
		prep := c.proposer.Prepare(ctx, group, pos, ballot, waitAllPrepare)
		if !prep.Quorum() {
			ballot = paxos.NextBallot(maxInt64(prep.MaxSeen, ballot), c.id)
			continue
		}
		// Accept phase with the chosen value.
		proposal := choose(prep, own)
		acc := c.proposer.Accept(ctx, group, pos, ballot, proposal)
		if !acc.Quorum() {
			ballot = paxos.NextBallot(maxInt64(acc.MaxSeen, ballot), c.id)
			continue
		}
		// Apply phase: the proposal is decided.
		c.proposer.Apply(ctx, group, pos, ballot, proposal)
		decided, err := wal.Decode(proposal)
		if err != nil {
			return wal.Entry{}, fmt.Errorf("core: decided value corrupt: %w", err)
		}
		return decided, nil
	}
	return wal.Entry{}, errNoQuorum{group: group, pos: pos, tries: tries}
}

// claimFastPath asks the position's leader whether this transaction is the
// first to start the commit protocol for the position. The claim goes to
// the local service first; if it is not the leader it replies with a hint
// and the client retries once at the actual leader. The token identifies
// the transaction so the grant is idempotent across duplicated claim
// messages but never transfers to another transaction.
func (c *Client) claimFastPath(ctx context.Context, group string, pos int64, token string) bool {
	req := network.Message{Kind: network.KindClaimLeader, Group: group, Pos: pos, Value: token}
	timeout := c.cfg.Timeout
	if timeout <= 0 {
		timeout = network.DefaultTimeout
	}

	cctx, cancel := context.WithTimeout(ctx, timeout)
	resp, err := c.transport.Send(cctx, c.dc, req)
	cancel()
	if err != nil {
		return false
	}
	if resp.OK {
		return true
	}
	if resp.Value == "" || resp.Value == c.dc {
		return false
	}
	// Retry at the hinted leader.
	cctx, cancel = context.WithTimeout(ctx, timeout)
	resp, err = c.transport.Send(cctx, resp.Value, req)
	cancel()
	return err == nil && resp.OK
}

// backoff sleeps for a randomized, attempt-scaled period ("sleep for random
// time period", Algorithm 2) so competing clients separate.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	if attempt > 6 {
		attempt = 6 // cap the exponent
	}
	base := float64(c.cfg.backoffBase())
	d := time.Duration(base * (0.5 + c.rng.Float64()) * float64(int(1)<<attempt))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
