// Package core implements the paper's transaction tier (§2.2, §4, §5): the
// Transaction Service that fronts each datacenter's key-value store and the
// Transaction Client library that applications link to run transactions.
//
// # Commit protocols
//
// Three commit protocols hide behind one Client API (select with
// Config.Protocol):
//
//   - Basic: the basic Paxos commit protocol of §4.1 (Algorithms 1 and 2),
//     modeled on Megastore — one transaction per log position; concurrent
//     transactions competing for a position abort even when they do not
//     conflict ("concurrency prevention").
//   - CP: Paxos-CP (§5) — the paper's contribution. Non-conflicting
//     concurrent transactions are combined into a single log position when
//     no value can yet have a majority, and a transaction that loses a
//     position to a non-conflicting winner is promoted to compete for the
//     next position instead of aborting.
//   - Master: the leader-based design the paper sketches in §7. One
//     long-term master per group sequences transactions through the
//     pipelined, windowed submit path (pipeline.go, DESIGN.md §8), with
//     combination at the master and promotion on lost races.
//
// # Service
//
// Service answers the whole wire protocol (Handler): Paxos prepare/accept/
// apply, reads (single and batched multi-key, at explicit positions or the
// lazy watermark), log fetch and snapshot transfer for catch-up, submit for
// the master path, and the admin plane (stats, compaction). Decided entries
// land through the per-group replicated log (package replog), which owns
// the applied watermark readers block on.
//
// AsyncHandler is the hot-path entry point (dispatch.go, DESIGN.md §13):
// short store-bound requests run on GOMAXPROCS shard workers keyed by
// group, work that can block gets its own goroutine, and submits enter the
// master pipeline asynchronously — no goroutine is held while a position
// replicates, and a submit arriving at a full queue is refused fast with
// the retryable ErrOverloaded marker (admission control, WithSubmitQueue)
// instead of queueing without bound.
//
// # Master leases and epoch fencing
//
// Mastership is epoch-fenced (lease.go, DESIGN.md §11): a master claims a
// per-group monotonic epoch by committing a claim entry through the group's
// own Paxos log, stamps every entry it proposes with that epoch, and renews
// a time-bounded lease through its own committed traffic. Apply-time
// fencing voids entries from superseded epochs, so two datacenters that
// both believe they are master — the split-brain window of a partition —
// can never both commit. ClaimMastership is the takeover entry point;
// clients that submit to a deposed master are redirected by hint
// (ErrNotMaster), and a deposed service stands off with a per-epoch claim
// backoff before re-contending, so a sustained asymmetric partition cannot
// make mastership ping-pong. The epoch machinery is on by default; Basic
// and CP clients are unaffected (their entries are unstamped and never
// fenced).
//
// # Sharded keyspace
//
// KV is the routed facade over many transaction groups (kv.go, DESIGN.md
// §12): a Router (internal/placement) maps each key to its owning group,
// Get/Put/Update run on that group, and ReadMulti fans one batched read out
// per owning group concurrently, merging replies into input order with
// per-group snapshot positions reported. Config.MasterFor routes one
// client's Master-protocol commits to each group's own master. Group-local
// transaction semantics are untouched — there is no cross-group
// serializability to offer (§2.1), and the facade does not pretend
// otherwise.
//
// The transaction tier guarantees one-copy serializability (Theorems 2 and
// 3); package history provides the checker the tests use to verify it,
// including the fencing rules.
package core
