package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/network"
	"paxoscp/internal/paxos"
	"paxoscp/internal/wal"
)

// Key-value store layout used by the Transaction Service. Everything the
// service knows lives in its datacenter's kvstore, keeping the service
// processes themselves stateless (§2.2), with the exception of a per-group
// apply mutex that only serializes local log application.
//
//	data/<group>/<key>   data item versions; version timestamp = log position
//	log/<group>/<pos>    decided log entry (attr "entry" = encoded wal.Entry)
//	meta/<group>         attr "last" = highest contiguously applied position
//	claim/<group>/<pos>  leader fast-path claim (attr "owner")
//	paxos/<group>/<pos>  acceptor state (managed by internal/paxos)
func dataKey(group, key string) string { return fmt.Sprintf("data/%s/%s", group, key) }
func logKey(group string, pos int64) string {
	return fmt.Sprintf("log/%s/%d", group, pos)
}
func metaKey(group string) string { return fmt.Sprintf("meta/%s", group) }
func claimKey(group string, pos int64) string {
	return fmt.Sprintf("claim/%s/%d", group, pos)
}

// Service is one datacenter's Transaction Service. It owns the datacenter's
// key-value store, answers Paxos messages through its acceptor, serves reads
// at a requested log position, applies decided log entries, and catches up
// missing entries from its peers (fault tolerance and recovery, §4.1).
type Service struct {
	dc       string
	store    *kvstore.Store
	acceptor *paxos.Acceptor

	// transport reaches peer datacenters for catch-up. It may be nil in
	// single-DC tests; catch-up then only serves from the local log.
	transport network.Transport
	// timeout bounds catch-up message rounds.
	timeout time.Duration

	// applyMu serializes log application per group; seqMu serializes the
	// master protocol's submit pipeline per group (see master.go).
	mu      sync.Mutex
	applyMu map[string]*sync.Mutex
	seqMu   map[string]*sync.Mutex
}

// ServiceOption configures a Service.
type ServiceOption func(*Service)

// WithServiceTimeout sets the timeout for the service's own catch-up
// messaging (defaults to network.DefaultTimeout).
func WithServiceTimeout(d time.Duration) ServiceOption {
	return func(s *Service) { s.timeout = d }
}

// NewService creates the Transaction Service for datacenter dc, backed by
// store, using transport to reach peer services during catch-up.
func NewService(dc string, store *kvstore.Store, transport network.Transport, opts ...ServiceOption) *Service {
	s := &Service{
		dc:        dc,
		store:     store,
		acceptor:  paxos.NewAcceptor(store),
		transport: transport,
		timeout:   network.DefaultTimeout,
		applyMu:   make(map[string]*sync.Mutex),
		seqMu:     make(map[string]*sync.Mutex),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// DC returns the datacenter this service belongs to.
func (s *Service) DC() string { return s.dc }

// Store exposes the underlying kvstore (used by examples and tests).
func (s *Service) Store() *kvstore.Store { return s.store }

func (s *Service) groupMu(group string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.applyMu[group]
	if m == nil {
		m = &sync.Mutex{}
		s.applyMu[group] = m
	}
	return m
}

func (s *Service) sequencerMu(group string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.seqMu[group]
	if m == nil {
		m = &sync.Mutex{}
		s.seqMu[group] = m
	}
	return m
}

// Handler returns the network handler that dispatches every protocol
// message this service understands.
func (s *Service) Handler() network.Handler {
	return func(from string, req network.Message) network.Message {
		if resp, ok := paxos.HandleMessage(s.acceptor, req); ok {
			return resp
		}
		switch req.Kind {
		case network.KindApply:
			return s.handleApply(req)
		case network.KindReadPos:
			return s.handleReadPos(req)
		case network.KindRead:
			return s.handleRead(req)
		case network.KindClaimLeader:
			return s.handleClaim(req)
		case network.KindFetchLog:
			return s.handleFetchLog(req)
		case network.KindSubmit:
			return s.handleSubmit(req)
		case network.KindSnapshot:
			return s.handleSnapshot(req)
		case network.KindStats:
			return s.handleStats(req)
		case network.KindCompact:
			return s.handleCompact(req)
		default:
			return network.Status(false, fmt.Sprintf("unknown kind %q", req.Kind))
		}
	}
}

// --- log application ---------------------------------------------------

// handleApply stores a decided entry and advances the applied horizon.
func (s *Service) handleApply(req network.Message) network.Message {
	if _, err := wal.Decode(req.Payload); err != nil {
		return network.Status(false, err.Error())
	}
	if err := s.ApplyDecided(req.Group, req.Pos, req.Payload); err != nil {
		return network.Status(false, err.Error())
	}
	return network.Status(true, "")
}

// ApplyDecided records the decided entry for (group, pos) in the local log
// and applies every newly contiguous log entry's writes to the data rows.
// It is idempotent: duplicated apply messages and replays are harmless.
func (s *Service) ApplyDecided(group string, pos int64, entryBytes []byte) error {
	if pos < 1 {
		return fmt.Errorf("core: apply at invalid position %d", pos)
	}
	mu := s.groupMu(group)
	mu.Lock()
	defer mu.Unlock()
	if err := s.store.WriteIdempotent(logKey(group, pos), kvstore.Value{"entry": string(entryBytes)}, 0); err != nil {
		return fmt.Errorf("core: store log entry %s/%d: %w", group, pos, err)
	}
	return s.advanceLocked(group)
}

// advanceLocked applies all contiguous decided entries beyond the current
// horizon. Caller holds the group's apply mutex.
func (s *Service) advanceLocked(group string) error {
	last := s.lastApplied(group)
	for {
		next := last + 1
		raw, _, err := s.store.Read(logKey(group, next), kvstore.Latest)
		if errors.Is(err, kvstore.ErrNotFound) {
			break
		}
		if err != nil {
			return err
		}
		entry, err := wal.Decode([]byte(raw["entry"]))
		if err != nil {
			return fmt.Errorf("core: corrupt log entry %s/%d: %w", group, next, err)
		}
		// Apply the entry's merged writes with the log position as the
		// version timestamp (§3.2).
		for key, val := range entry.Writes() {
			if err := s.store.WriteIdempotent(dataKey(group, key), kvstore.Value{"v": val}, next); err != nil {
				return fmt.Errorf("core: apply %s/%s@%d: %w", group, key, next, err)
			}
		}
		last = next
		if err := s.store.Update(metaKey(group), func(cur kvstore.Value) (kvstore.Value, error) {
			if cur == nil {
				cur = kvstore.Value{}
			}
			cur["last"] = strconv.FormatInt(last, 10)
			return cur, nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// lastApplied returns the highest contiguously applied log position for
// group; 0 means the log is empty.
func (s *Service) lastApplied(group string) int64 {
	v, _, err := s.store.Read(metaKey(group), kvstore.Latest)
	if err != nil {
		return 0
	}
	n, _ := strconv.ParseInt(v["last"], 10, 64)
	return n
}

// LastApplied exposes the applied horizon (tests, tooling, examples).
func (s *Service) LastApplied(group string) int64 { return s.lastApplied(group) }

// LogSnapshot returns every decided log entry this datacenter knows for
// group, keyed by position. Used by the history checker and tooling.
func (s *Service) LogSnapshot(group string) map[int64]wal.Entry {
	out := make(map[int64]wal.Entry)
	prefix := fmt.Sprintf("log/%s/", group)
	for _, key := range s.store.Keys() {
		if len(key) <= len(prefix) || key[:len(prefix)] != prefix {
			continue
		}
		pos, err := strconv.ParseInt(key[len(prefix):], 10, 64)
		if err != nil {
			continue
		}
		if entry, ok := s.DecidedEntry(group, pos); ok {
			out[pos] = entry
		}
	}
	return out
}

// DecidedEntry returns the decided log entry at pos, if this datacenter has
// learned it.
func (s *Service) DecidedEntry(group string, pos int64) (wal.Entry, bool) {
	raw, _, err := s.store.Read(logKey(group, pos), kvstore.Latest)
	if err != nil {
		return wal.Entry{}, false
	}
	entry, err := wal.Decode([]byte(raw["entry"]))
	if err != nil {
		return wal.Entry{}, false
	}
	return entry, true
}

// --- transaction API handlers -------------------------------------------

// handleReadPos returns the read position for a new transaction: the last
// contiguously applied log position (transaction protocol step 1).
func (s *Service) handleReadPos(req network.Message) network.Message {
	return network.Message{Kind: network.KindValue, OK: true, TS: s.lastApplied(req.Group)}
}

// handleRead serves a read at the requested read position (transaction
// protocol step 2). If this datacenter's log lags the position, it first
// catches up from its peers.
func (s *Service) handleRead(req network.Message) network.Message {
	if s.lastApplied(req.Group) < req.TS {
		if err := s.CatchUp(context.Background(), req.Group, req.TS); err != nil {
			return network.Status(false, err.Error())
		}
	}
	v, _, err := s.store.Read(dataKey(req.Group, req.Key), req.TS)
	if errors.Is(err, kvstore.ErrNotFound) {
		return network.Message{Kind: network.KindValue, OK: true, Found: false}
	}
	if err != nil {
		return network.Status(false, err.Error())
	}
	return network.Message{Kind: network.KindValue, OK: true, Found: true, Value: v["v"]}
}

// handleFetchLog returns the decided entry at a position, if known locally.
// A position below the local compaction horizon is reported as compacted so
// the laggard switches to snapshot transfer.
func (s *Service) handleFetchLog(req network.Message) network.Message {
	raw, _, err := s.store.Read(logKey(req.Group, req.Pos), kvstore.Latest)
	if err != nil {
		if compacted := s.CompactedTo(req.Group); req.Pos < compacted {
			return network.Message{Kind: network.KindValue, OK: false, Err: errCompacted, TS: compacted}
		}
		return network.Message{Kind: network.KindValue, OK: false}
	}
	return network.Message{Kind: network.KindValue, OK: true, Payload: []byte(raw["entry"])}
}

// --- leader fast path -----------------------------------------------------

// handleClaim implements the per-log-position leader check (§4.1): the
// leader for position p is the datacenter whose client won position p-1.
// The first client to claim the position at the leader may skip the prepare
// phase; everyone else takes the full protocol.
func (s *Service) handleClaim(req network.Message) network.Message {
	if leader := s.Leader(req.Group, req.Pos); leader != s.dc {
		// Refuse, hinting who the leader is so the client can retry there.
		return network.Message{Kind: network.KindStatus, OK: false, Err: "not leader", Value: leader}
	}
	token := req.Value
	err := s.store.CheckAndWrite(claimKey(req.Group, req.Pos), "owner", "", kvstore.Value{"owner": token})
	if err == nil {
		return network.Status(true, "")
	}
	if errors.Is(err, kvstore.ErrCheckFailed) {
		// Idempotent for the same client (duplicate claim message).
		v, _, rerr := s.store.Read(claimKey(req.Group, req.Pos), kvstore.Latest)
		if rerr == nil && v["owner"] == token {
			return network.Status(true, "")
		}
		return network.Status(false, "position already claimed")
	}
	return network.Status(false, err.Error())
}

// Leader computes the leader datacenter for (group, pos): the origin of the
// winning proposer of position pos-1 (the first transaction in the decided
// entry — under combination the proposer's own transaction heads the list).
// When pos-1 is unknown locally or is a no-op, there is no usable leader and
// Leader returns "".
func (s *Service) Leader(group string, pos int64) string {
	if pos <= 1 {
		// First position: no previous winner. By convention the smallest
		// datacenter name in the topology acts as initial leader, so the
		// fast path works from a cold start too.
		if s.transport == nil {
			return s.dc
		}
		peers := s.transport.Peers()
		if len(peers) == 0 {
			return s.dc
		}
		return peers[0]
	}
	entry, ok := s.DecidedEntry(group, pos-1)
	if !ok || entry.IsNoOp() {
		return ""
	}
	return entry.Txns[0].Origin
}

// --- catch-up and recovery ------------------------------------------------

// CatchUp brings the local log up to position target: each missing entry is
// first fetched from a peer that knows it and, failing that, learned by
// running a Paxos instance for the position ("If a Transaction Service does
// not receive all Paxos messages for a log position ... it executes a Paxos
// instance for the missing log entry to learn the winning value", §4.1).
func (s *Service) CatchUp(ctx context.Context, group string, target int64) error {
	for {
		pos := s.lastApplied(group) + 1
		if pos > target {
			return nil
		}
		if _, ok := s.DecidedEntry(group, pos); ok {
			mu := s.groupMu(group)
			mu.Lock()
			err := s.advanceLocked(group)
			mu.Unlock()
			if err != nil {
				return err
			}
			continue
		}
		entry, err := s.learn(ctx, group, pos, false)
		if errors.Is(err, errSnapshotRequired) {
			// The peers compacted past this position; install a snapshot
			// and resume per-entry catch-up above its horizon.
			if err := s.fetchSnapshot(ctx, group); err != nil {
				return fmt.Errorf("core: snapshot catch-up %s: %w", group, err)
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("core: catch up %s/%d: %w", group, pos, err)
		}
		if err := s.ApplyDecided(group, pos, wal.Encode(entry)); err != nil {
			return err
		}
	}
}

// Recover replays the recovery procedure after an outage: it asks every peer
// for its applied horizon and catches up to the maximum. Positions that no
// peer has decided are resolved by learning; a position nobody voted on is
// filled with a no-op entry so the log has no permanent holes.
func (s *Service) Recover(ctx context.Context, group string) error {
	target := s.lastApplied(group)
	if s.transport != nil {
		for _, dc := range s.transport.Peers() {
			if dc == s.dc {
				continue
			}
			cctx, cancel := context.WithTimeout(ctx, s.timeout)
			resp, err := s.transport.Send(cctx, dc, network.Message{Kind: network.KindReadPos, Group: group})
			cancel()
			if err == nil && resp.OK && resp.TS > target {
				target = resp.TS
			}
		}
	}
	for {
		pos := s.lastApplied(group) + 1
		if pos > target {
			break
		}
		if _, ok := s.DecidedEntry(group, pos); ok {
			mu := s.groupMu(group)
			mu.Lock()
			err := s.advanceLocked(group)
			mu.Unlock()
			if err != nil {
				return err
			}
			continue
		}
		entry, err := s.learn(ctx, group, pos, true)
		if errors.Is(err, errSnapshotRequired) {
			if err := s.fetchSnapshot(ctx, group); err != nil {
				return fmt.Errorf("core: snapshot recovery %s: %w", group, err)
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("core: recover %s/%d: %w", group, pos, err)
		}
		if err := s.ApplyDecided(group, pos, wal.Encode(entry)); err != nil {
			return err
		}
	}
	mu := s.groupMu(group)
	mu.Lock()
	if err := s.advanceLocked(group); err != nil {
		mu.Unlock()
		return err
	}
	mu.Unlock()

	// Probe past every peer's applied horizon: a transaction whose accept
	// round reached a majority is committed even if every apply message was
	// lost, so positions just above the horizons may be decided without
	// appearing in any log yet. Learning stops at the first genuinely
	// undecided position. This mirrors §4.1: the decided value "will
	// eventually be completed, either by another client or by a Transaction
	// Service" — recovery is that service.
	for {
		pos := s.lastApplied(group) + 1
		entry, err := s.learn(ctx, group, pos, false)
		if err != nil {
			if errors.Is(err, errSnapshotRequired) {
				if err := s.fetchSnapshot(ctx, group); err != nil {
					return err
				}
				continue
			}
			// Undecided or unreachable: nothing more to complete.
			return nil
		}
		if err := s.ApplyDecided(group, pos, wal.Encode(entry)); err != nil {
			return err
		}
	}
}

// learnClientID is the proposer identity services use when learning; it
// shares the ballot space with regular clients.
const learnClientID = paxos.MaxClients - 1

// errSnapshotRequired reports that peers have compacted past the position
// being learned; the caller must install a snapshot instead.
var errSnapshotRequired = errors.New("core: position compacted at peers; snapshot required")

// learn discovers the decided value of one log position by running the Paxos
// protocol: fetch from peers first, then drive an instance to completion.
// When fillNoOp is true (explicit recovery) an undecided position is decided
// as a no-op entry; otherwise learning an undecided position fails. If any
// peer reports the position compacted, learn returns errSnapshotRequired —
// running Paxos there would resurrect a scavenged instance as a no-op.
func (s *Service) learn(ctx context.Context, group string, pos int64, fillNoOp bool) (wal.Entry, error) {
	if s.transport == nil {
		return wal.Entry{}, fmt.Errorf("position %d not decided locally and no peers", pos)
	}
	// Fast path: a peer already knows the decided entry.
	for _, dc := range s.transport.Peers() {
		if dc == s.dc {
			continue
		}
		cctx, cancel := context.WithTimeout(ctx, s.timeout)
		resp, err := s.transport.Send(cctx, dc, network.Message{Kind: network.KindFetchLog, Group: group, Pos: pos})
		cancel()
		if err == nil && resp.OK {
			if entry, derr := wal.Decode(resp.Payload); derr == nil {
				return entry, nil
			}
		}
		if err == nil && !resp.OK && resp.Err == errCompacted {
			return wal.Entry{}, errSnapshotRequired
		}
	}
	// Drive the Paxos instance to completion.
	prop := &paxos.Proposer{Transport: s.transport, Timeout: s.timeout}
	ballot := paxos.Ballot(1, learnClientID)
	for attempt := 0; attempt < 16; attempt++ {
		if err := ctx.Err(); err != nil {
			return wal.Entry{}, err
		}
		prep := prop.Prepare(ctx, group, pos, ballot, true)
		if !prep.Quorum() {
			ballot = paxos.NextBallot(maxInt64(prep.MaxSeen, ballot), learnClientID)
			continue
		}
		var best paxos.Vote
		best.Ballot = paxos.NilBallot
		for _, v := range prep.Votes {
			if !v.IsNull() && v.Ballot > best.Ballot {
				best = v
			}
		}
		var value []byte
		if best.IsNull() {
			if !fillNoOp {
				return wal.Entry{}, fmt.Errorf("position %d undecided", pos)
			}
			value = wal.Encode(wal.NoOp())
		} else {
			value = best.Value
		}
		acc := prop.Accept(ctx, group, pos, ballot, value)
		if !acc.Quorum() {
			ballot = paxos.NextBallot(maxInt64(acc.MaxSeen, ballot), learnClientID)
			continue
		}
		prop.Apply(ctx, group, pos, ballot, value)
		entry, err := wal.Decode(value)
		if err != nil {
			return wal.Entry{}, err
		}
		return entry, nil
	}
	return wal.Entry{}, fmt.Errorf("could not learn position %d", pos)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
