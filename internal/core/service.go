package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/network"
	"paxoscp/internal/paxos"
	"paxoscp/internal/replog"
	"paxoscp/internal/wal"
)

// Key-value store layout used by the Transaction Service. Everything the
// service knows lives in its datacenter's kvstore, keeping the service
// processes themselves stateless (§2.2): the per-group replicated log rows
// (data/, log/, meta/ — owned by internal/replog, see DESIGN.md §4) plus the
// protocol rows this package owns:
//
//	claim/<group>/<pos>  leader fast-path claim (attr "owner")
//	paxos/<group>/<pos>  acceptor state (managed by internal/paxos)
//
// These run on the commit hot path, so they are built by the allocation-free
// kvstore.PosKey, not fmt.Sprintf (BenchmarkKeyEncoding in internal/replog
// guards the technique). Acceptor rows are named by paxos.StateKey.
func dataKey(group, key string) string { return replog.DataKey(group, key) }

func claimKey(group string, pos int64) string {
	return kvstore.PosKey("claim/", group, pos)
}

// Service is one datacenter's Transaction Service. It owns the datacenter's
// key-value store, answers Paxos messages through its acceptor, serves reads
// at a requested log position, applies decided log entries through the
// per-group replicated log (internal/replog), and catches up missing entries
// from its peers (fault tolerance and recovery, §4.1).
type Service struct {
	dc       string
	store    *kvstore.Store
	acceptor *paxos.Acceptor

	// logs holds the per-group replicated logs: decided entries, the
	// applied watermark readers block on, and the batched async apply
	// pipeline.
	logs *replog.Set

	// transport reaches peer datacenters for catch-up. It may be nil in
	// single-DC tests; catch-up then only serves from the local log.
	transport network.Transport
	// timeout bounds catch-up message rounds.
	timeout time.Duration
	// fetchPeer caches the last peer that served a log fetch (string).
	// Bulk catch-up tries it first: without the cache, an unreachable peer
	// earlier in the list costs one full timeout per position.
	fetchPeer atomic.Value

	// submitWindow and submitCombine tune the master's pipelined submit
	// path (pipeline.go): positions in flight per group, and transactions
	// combined per log entry. submitQueue is the admission cap: submissions
	// beyond this queue depth are refused with ErrOverloaded (DESIGN.md
	// §13); <= 0 lifts the cap.
	submitWindow  int
	submitCombine int
	submitQueue   int

	// disp shards short request handlers across GOMAXPROCS workers keyed by
	// group (dispatch.go); used by AsyncHandler only.
	disp *dispatcher

	// fencing enables epoch-fenced master leases (DESIGN.md §11): the
	// master path claims a per-group epoch through the log before placing
	// entries and stamps every entry with it. On by default; the off switch
	// exists only so tests can reproduce the pre-fencing behavior.
	fencing bool
	// leaseDur is the master lease duration; 0 means DefaultLeaseFactor
	// times the service timeout.
	leaseDur time.Duration

	// claimMu guards claimLocks, the per-group mutexes serializing
	// mastership claims. Claims must not share one lock across groups: a
	// claim legitimately sleeps out another holder's lease, and one group's
	// wait must not starve every other group's takeover.
	claimMu    sync.Mutex
	claimLocks map[string]*sync.Mutex

	// claimHistMu guards claimHist, the per-group re-claim streak state
	// behind the deposed-side claim backoff (lease.go). claimBackoffOff is
	// the test-only escape hatch that reproduces the pre-backoff ping-pong.
	claimHistMu     sync.Mutex
	claimHist       map[string]*claimHistory
	claimBackoffOff bool

	// pipelines holds the per-group master submit pipelines, created
	// lazily on first submit.
	pipeMu     sync.Mutex
	pipelines  map[string]*pipeline
	pipeClosed bool
}

// ServiceOption configures a Service.
type ServiceOption func(*Service)

// WithServiceTimeout sets the timeout for the service's own catch-up
// messaging (defaults to network.DefaultTimeout).
func WithServiceTimeout(d time.Duration) ServiceOption {
	return func(s *Service) { s.timeout = d }
}

// WithSubmitWindow sets how many Paxos positions the master submit pipeline
// keeps in flight concurrently per group (default DefaultSubmitWindow; 1
// reproduces the serial pre-pipeline master).
func WithSubmitWindow(n int) ServiceOption {
	return func(s *Service) {
		if n > 0 {
			s.submitWindow = n
		}
	}
}

// WithSubmitCombine caps how many concurrently submitted transactions the
// master combines into one multi-transaction log entry (default
// DefaultSubmitCombine; 1 disables combination).
func WithSubmitCombine(n int) ServiceOption {
	return func(s *Service) {
		if n > 0 {
			s.submitCombine = n
		}
	}
}

// WithSubmitQueue sets the per-group submit admission cap: submissions
// arriving while this many are already queued fail fast with the retryable
// ErrOverloaded marker and a queue-depth hint, instead of stacking
// unbounded latency (default DefaultSubmitQueue). Negative lifts the cap,
// restoring the pre-admission unbounded queue.
func WithSubmitQueue(n int) ServiceOption {
	return func(s *Service) {
		if n != 0 {
			s.submitQueue = n
		}
	}
}

// DefaultLeaseFactor scales the service timeout into the default master
// lease duration: long enough that transient message loss does not trigger a
// takeover, short enough that failover is a few timeouts, not minutes.
const DefaultLeaseFactor = 4

// WithLeaseDuration sets the master lease duration for epoch-fenced
// mastership (DESIGN.md §11). A prospective master waits out the prevailing
// holder's lease before claiming the group's next epoch; the holder renews
// implicitly through its own committed traffic (and explicitly via
// RenewLease when idle). Zero (the default) means DefaultLeaseFactor times
// the service timeout. The lease bounds failover time only — safety comes
// from epoch fencing, not from clocks.
func WithLeaseDuration(d time.Duration) ServiceOption {
	return func(s *Service) {
		if d > 0 {
			s.leaseDur = d
		}
	}
}

// WithClaimBackoffDisabled turns the deposed-side claim backoff off
// (lease.go): a service that lost mastership re-claims the moment the
// holder's lease looks silent, restoring the pre-backoff ping-pong under a
// sustained asymmetric partition. Test-only — it exists so the backoff
// regression test can measure the behavior it prevents.
func WithClaimBackoffDisabled() ServiceOption {
	return func(s *Service) { s.claimBackoffOff = true }
}

// WithEpochFencingDisabled turns epoch-fenced master leases off, restoring
// the pre-fencing master path: no claim entries, unstamped log entries, and
// no protection against two concurrent masters. Test-only — it exists so the
// fencing test battery can reproduce the old behavior as a baseline; never
// use it in a deployment.
func WithEpochFencingDisabled() ServiceOption {
	return func(s *Service) { s.fencing = false }
}

// NewService creates the Transaction Service for datacenter dc, backed by
// store, using transport to reach peer services during catch-up.
func NewService(dc string, store *kvstore.Store, transport network.Transport, opts ...ServiceOption) *Service {
	s := &Service{
		dc:            dc,
		store:         store,
		acceptor:      paxos.NewAcceptor(store),
		logs:          replog.NewSet(store),
		transport:     transport,
		timeout:       network.DefaultTimeout,
		submitWindow:  DefaultSubmitWindow,
		submitCombine: DefaultSubmitCombine,
		submitQueue:   DefaultSubmitQueue,
		disp:          newDispatcher(runtime.GOMAXPROCS(0)),
		fencing:       true,
		claimLocks:    make(map[string]*sync.Mutex),
		claimHist:     make(map[string]*claimHistory),
		pipelines:     make(map[string]*pipeline),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// DC returns the datacenter this service belongs to.
func (s *Service) DC() string { return s.dc }

// Store exposes the underlying kvstore (used by examples and tests).
func (s *Service) Store() *kvstore.Store { return s.store }

// log returns the group's replicated log.
func (s *Service) log(group string) *replog.Log { return s.logs.Get(group) }

// Groups returns the transaction groups this replica serves (every group
// with an open replicated log), sorted — the group-discovery surface
// GroupStatus reports over the wire.
func (s *Service) Groups() []string { return s.logs.Groups() }

// EnsureGroups opens the replicated logs for the named groups up front.
// Groups normally open lazily on first traffic; a sharded deployment
// (txkvd -groups) pre-opens its placement's groups so recovery state is
// rebuilt at startup and discovery reports the full set before any client
// arrives.
func (s *Service) EnsureGroups(groups ...string) {
	for _, g := range groups {
		s.logs.Get(g)
	}
}

// Close stops the per-group submit pipelines (queued submissions fail) and
// apply goroutines. Durable state is untouched; a new Service over the same
// store resumes where this one stopped.
func (s *Service) Close() {
	s.pipeMu.Lock()
	s.pipeClosed = true
	pipes := make([]*pipeline, 0, len(s.pipelines))
	for _, p := range s.pipelines {
		pipes = append(pipes, p)
	}
	s.pipeMu.Unlock()
	for _, p := range pipes {
		p.close()
	}
	s.logs.Close()
	s.disp.close()
}

// Handler returns the network handler that dispatches every protocol
// message this service understands.
func (s *Service) Handler() network.Handler {
	return func(from string, req network.Message) network.Message {
		if resp, ok := paxos.HandleMessage(s.acceptor, req); ok {
			return resp
		}
		switch req.Kind {
		case network.KindApply:
			return s.handleApply(req)
		case network.KindReadPos:
			return s.handleReadPos(req)
		case network.KindRead:
			return s.handleRead(req)
		case network.KindReadMulti:
			return s.handleReadMulti(req)
		case network.KindClaimLeader:
			return s.handleClaim(req)
		case network.KindFetchLog:
			return s.handleFetchLog(req)
		case network.KindSubmit:
			return s.handleSubmit(req)
		case network.KindSnapshot:
			return s.handleSnapshot(req)
		case network.KindStats:
			return s.handleStats(req)
		case network.KindCompact:
			return s.handleCompact(req)
		case network.KindRangeSnapshot:
			return s.handleRangeSnapshot(req)
		case network.KindMigrate:
			return s.handleMigrate(req)
		case network.KindScan:
			return s.handleScan(req)
		default:
			return network.Status(false, fmt.Sprintf("unknown kind %q", req.Kind))
		}
	}
}

// --- log application ---------------------------------------------------

// handleApply stores a decided entry and advances the applied horizon.
func (s *Service) handleApply(req network.Message) network.Message {
	if err := s.ApplyDecided(req.Group, req.Pos, req.Payload); err != nil {
		return network.Status(false, err.Error())
	}
	return network.Status(true, "")
}

// ApplyDecided records the decided entry for (group, pos) in the local log
// and waits until every newly contiguous entry's writes have reached the
// data rows (the apply goroutine batches them; see internal/replog). It is
// idempotent: duplicated apply messages and replays are harmless. An entry
// above a log gap is recorded and queued but not waited for — the gap is
// filled by catch-up.
func (s *Service) ApplyDecided(group string, pos int64, entryBytes []byte) error {
	if pos < 1 {
		return fmt.Errorf("core: apply at invalid position %d", pos)
	}
	lg := s.log(group)
	horizon, err := lg.Append(pos, entryBytes)
	if err != nil {
		return fmt.Errorf("core: apply %s/%d: %w", group, pos, err)
	}
	if horizon < pos {
		return nil // gapped: positions below pos are still missing
	}
	return lg.WaitApplied(context.Background(), horizon)
}

// lastApplied returns the highest contiguously applied log position for
// group; 0 means the log is empty. This is the replog watermark — an
// in-memory read, no meta-row round trip.
func (s *Service) lastApplied(group string) int64 {
	return s.log(group).Applied()
}

// LastApplied exposes the applied horizon (tests, tooling, examples).
func (s *Service) LastApplied(group string) int64 { return s.lastApplied(group) }

// LogSnapshot returns every decided log entry this datacenter knows for
// group, keyed by position. Used by the history checker and tooling.
func (s *Service) LogSnapshot(group string) map[int64]wal.Entry {
	return s.log(group).Snapshot()
}

// DecidedEntry returns the decided log entry at pos, if this datacenter has
// learned it. The entry may be served from the replog cache: treat it as
// read-only.
func (s *Service) DecidedEntry(group string, pos int64) (wal.Entry, bool) {
	return s.log(group).Entry(pos)
}

// --- transaction API handlers -------------------------------------------

// handleReadPos returns the read position for a new transaction: the last
// contiguously applied log position (transaction protocol step 1).
func (s *Service) handleReadPos(req network.Message) network.Message {
	return network.Message{Kind: network.KindValue, OK: true, TS: s.lastApplied(req.Group)}
}

// resolveReadTS turns a request's TS into the position the read is served
// at. TS = network.ResolvePos means "serve at the current applied watermark
// and tell me where" — the lazy read-position piggyback (DESIGN.md §9). A
// position ahead of the local log triggers catch-up, bounded by the service
// timeout so a laggard read cannot hang a handler goroutine indefinitely.
func (s *Service) resolveReadTS(group string, ts int64) (int64, error) {
	if ts < 0 {
		return s.lastApplied(group), nil
	}
	if s.lastApplied(group) < ts {
		ctx, cancel := context.WithTimeout(context.Background(), s.timeout)
		defer cancel()
		if err := s.CatchUp(ctx, group, ts); err != nil {
			return 0, err
		}
	}
	return ts, nil
}

// handleRead serves a read at the requested read position (transaction
// protocol step 2). If this datacenter's log lags the position, it first
// catches up from its peers; entries already decided locally are waited on
// through the replog watermark instead.
func (s *Service) handleRead(req network.Message) network.Message {
	ts, err := s.resolveReadTS(req.Group, req.TS)
	if err != nil {
		return network.Status(false, err.Error())
	}
	if refusal, fenced := s.readFence(req.Group, ts, req.Key); fenced {
		return refusal
	}
	v, _, err := s.store.Read(dataKey(req.Group, req.Key), ts)
	if errors.Is(err, kvstore.ErrNotFound) {
		return network.Message{Kind: network.KindValue, OK: true, Found: false, TS: ts}
	}
	if err != nil {
		return network.Status(false, err.Error())
	}
	return network.Message{Kind: network.KindValue, OK: true, Found: true, Value: v["v"], TS: ts}
}

// handleReadMulti serves a batched multi-key read at one log position: one
// watermark check (plus at most one catch-up round) and one multi-key store
// pass, instead of the per-key lock round a loop of single reads pays. All
// keys are served at the same position, so the batch observes one snapshot
// (the replog watermark only advances after a batch of entries fully
// lands).
func (s *Service) handleReadMulti(req network.Message) network.Message {
	ts, err := s.resolveReadTS(req.Group, req.TS)
	if err != nil {
		return network.Status(false, err.Error())
	}
	if refusal, fenced := s.readFence(req.Group, ts, req.Keys...); fenced {
		return refusal
	}
	keys := make([]string, len(req.Keys))
	for i, k := range req.Keys {
		keys[i] = dataKey(req.Group, k)
	}
	results, err := s.store.ReadMulti(keys, ts)
	if err != nil {
		return network.Status(false, err.Error())
	}
	resp := network.Message{
		Kind: network.KindValue, OK: true, TS: ts,
		Vals:   make([]string, len(results)),
		Founds: make([]bool, len(results)),
	}
	for i, r := range results {
		if r.Found {
			resp.Vals[i] = r.Value["v"]
			resp.Founds[i] = true
		}
	}
	return resp
}

// readFence applies the migration read fences (DESIGN.md §15) to a read
// served at position ts. A key of a range that departed at or below ts is
// refused with "moved" and the destination — serving it would return the
// frozen pre-cutover value as if it were current. A key of a
// prepared-but-unopened inbound range is refused with "migrating" — serving
// it would expose a half-copied backfill. Reads at positions before the
// cutover still serve normally (snapshot reads of in-flight transactions).
// With multiple in-flight destinations, one refusal names the keys of the
// first; the caller's next hop surfaces the rest.
func (s *Service) readFence(group string, ts int64, keys ...string) (network.Message, bool) {
	lg := s.log(group)
	if !lg.HasMigrations() {
		return network.Message{}, false
	}
	var movedKeys []string
	dest := ""
	for _, k := range keys {
		if to, outPos, ok := lg.MovedTo(k); ok && ts >= outPos {
			if dest == "" {
				dest = to
			}
			if to == dest {
				movedKeys = append(movedKeys, k)
			}
		}
	}
	if dest != "" {
		return movedReply(dest, movedKeys...), true
	}
	for _, k := range keys {
		if lg.InboundPending(k) {
			return migratingReply(), true
		}
	}
	return network.Message{}, false
}

// handleFetchLog returns the decided entry at a position, if known locally.
// A position below the local compaction horizon is reported as compacted so
// the laggard switches to snapshot transfer.
func (s *Service) handleFetchLog(req network.Message) network.Message {
	raw, ok := s.log(req.Group).EntryBytes(req.Pos)
	if !ok {
		if compacted := s.CompactedTo(req.Group); req.Pos < compacted {
			return network.Message{Kind: network.KindValue, OK: false, Err: errCompacted, TS: compacted}
		}
		return network.Message{Kind: network.KindValue, OK: false}
	}
	return network.Message{Kind: network.KindValue, OK: true, Payload: raw}
}

// --- leader fast path -----------------------------------------------------

// handleClaim implements the per-log-position leader check (§4.1): the
// leader for position p is the datacenter whose client won position p-1.
// The first client to claim the position at the leader may skip the prepare
// phase; everyone else takes the full protocol.
func (s *Service) handleClaim(req network.Message) network.Message {
	if leader := s.Leader(req.Group, req.Pos); leader != s.dc {
		// Refuse, hinting who the leader is so the client can retry there.
		return network.Message{Kind: network.KindStatus, OK: false, Err: "not leader", Value: leader}
	}
	token := req.Value
	err := s.store.CheckAndWrite(claimKey(req.Group, req.Pos), "owner", "", kvstore.Value{"owner": token})
	if err == nil {
		return network.Status(true, "")
	}
	if errors.Is(err, kvstore.ErrCheckFailed) {
		// Idempotent for the same client (duplicate claim message).
		v, _, rerr := s.store.Read(claimKey(req.Group, req.Pos), kvstore.Latest)
		if rerr == nil && v["owner"] == token {
			return network.Status(true, "")
		}
		return network.Status(false, "position already claimed")
	}
	return network.Status(false, err.Error())
}

// Leader computes the leader datacenter for (group, pos): the origin of the
// winning proposer of position pos-1 (the first transaction in the decided
// entry — under combination the proposer's own transaction heads the list).
// When pos-1 is unknown locally or is a no-op, there is no usable leader and
// Leader returns "".
func (s *Service) Leader(group string, pos int64) string {
	if pos <= 1 {
		// First position: no previous winner. By convention the smallest
		// datacenter name in the topology acts as initial leader, so the
		// fast path works from a cold start too.
		if s.transport == nil {
			return s.dc
		}
		peers := s.transport.Peers()
		if len(peers) == 0 {
			return s.dc
		}
		return peers[0]
	}
	entry, ok := s.DecidedEntry(group, pos-1)
	if !ok || entry.IsNoOp() {
		return ""
	}
	return entry.Txns[0].Origin
}

// --- catch-up and recovery ------------------------------------------------

// CatchUp brings the local log up to position target: each missing entry is
// first fetched from a peer that knows it and, failing that, learned by
// running a Paxos instance for the position ("If a Transaction Service does
// not receive all Paxos messages for a log position ... it executes a Paxos
// instance for the missing log entry to learn the winning value", §4.1).
// Entries already decided locally are not re-fetched; the caller blocks on
// the replog watermark until the apply goroutine has landed them.
func (s *Service) CatchUp(ctx context.Context, group string, target int64) error {
	lg := s.log(group)
	for {
		pos := lg.Applied() + 1
		if pos > target {
			return nil
		}
		if lg.Has(pos) {
			if err := lg.WaitApplied(ctx, pos); err != nil {
				return err
			}
			continue
		}
		entry, err := s.learn(ctx, group, pos, false)
		if errors.Is(err, errSnapshotRequired) {
			// The peers compacted past this position; install a snapshot
			// and resume per-entry catch-up above its horizon.
			if err := s.fetchSnapshot(ctx, group); err != nil {
				return fmt.Errorf("core: snapshot catch-up %s: %w", group, err)
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("core: catch up %s/%d: %w", group, pos, err)
		}
		if err := s.ApplyDecided(group, pos, wal.Encode(entry)); err != nil {
			return err
		}
	}
}

// Recover replays the recovery procedure after an outage: it asks every peer
// for its applied horizon and catches up to the maximum. Positions that no
// peer has decided are resolved by learning; a position nobody voted on is
// filled with a no-op entry so the log has no permanent holes.
func (s *Service) Recover(ctx context.Context, group string) error {
	lg := s.log(group)
	target := lg.Applied()
	if s.transport != nil {
		for _, dc := range s.transport.Peers() {
			if dc == s.dc {
				continue
			}
			cctx, cancel := context.WithTimeout(ctx, s.timeout)
			resp, err := s.transport.Send(cctx, dc, network.Message{Kind: network.KindReadPos, Group: group})
			cancel()
			if err == nil && resp.OK && resp.TS > target {
				target = resp.TS
			}
		}
	}
	for {
		pos := lg.Applied() + 1
		if pos > target {
			break
		}
		if lg.Has(pos) {
			if err := lg.WaitApplied(ctx, pos); err != nil {
				return err
			}
			continue
		}
		entry, err := s.learn(ctx, group, pos, true)
		if errors.Is(err, errSnapshotRequired) {
			if err := s.fetchSnapshot(ctx, group); err != nil {
				return fmt.Errorf("core: snapshot recovery %s: %w", group, err)
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("core: recover %s/%d: %w", group, pos, err)
		}
		if err := s.ApplyDecided(group, pos, wal.Encode(entry)); err != nil {
			return err
		}
	}

	// Probe past every peer's applied horizon: a transaction whose accept
	// round reached a majority is committed even if every apply message was
	// lost, so positions just above the horizons may be decided without
	// appearing in any log yet. Learning stops at the first genuinely
	// undecided position. This mirrors §4.1: the decided value "will
	// eventually be completed, either by another client or by a Transaction
	// Service" — recovery is that service.
	for {
		pos := lg.Applied() + 1
		entry, err := s.learn(ctx, group, pos, false)
		if err != nil {
			if errors.Is(err, errSnapshotRequired) {
				if err := s.fetchSnapshot(ctx, group); err != nil {
					return err
				}
				continue
			}
			// Undecided or unreachable: nothing more to complete.
			return nil
		}
		if err := s.ApplyDecided(group, pos, wal.Encode(entry)); err != nil {
			return err
		}
	}
}

// learnClientID is the proposer identity services use when learning; it
// shares the ballot space with regular clients.
const learnClientID = paxos.MaxClients - 1

// errSnapshotRequired reports that peers have compacted past the position
// being learned; the caller must install a snapshot instead.
var errSnapshotRequired = errors.New("core: position compacted at peers; snapshot required")

// learn discovers the decided value of one log position by running the Paxos
// protocol: fetch from peers first, then drive an instance to completion.
// When fillNoOp is true (explicit recovery) an undecided position is decided
// as a no-op entry; otherwise learning an undecided position fails. If any
// peer reports the position compacted, learn returns errSnapshotRequired —
// running Paxos there would resurrect a scavenged instance as a no-op.
func (s *Service) learn(ctx context.Context, group string, pos int64, fillNoOp bool) (wal.Entry, error) {
	if s.transport == nil {
		return wal.Entry{}, fmt.Errorf("position %d not decided locally and no peers", pos)
	}
	// Fast path: a peer already knows the decided entry. The last peer that
	// served a fetch goes first — during bulk catch-up an unreachable peer
	// earlier in the list would otherwise cost one timeout per position.
	peers := s.transport.Peers()
	if last, ok := s.fetchPeer.Load().(string); ok && len(peers) > 1 {
		order := make([]string, 0, len(peers))
		order = append(order, last)
		for _, dc := range peers {
			if dc != last {
				order = append(order, dc)
			}
		}
		peers = order
	}
	for _, dc := range peers {
		if dc == s.dc {
			continue
		}
		cctx, cancel := context.WithTimeout(ctx, s.timeout)
		resp, err := s.transport.Send(cctx, dc, network.Message{Kind: network.KindFetchLog, Group: group, Pos: pos})
		cancel()
		if err == nil && resp.OK {
			if entry, derr := wal.Decode(resp.Payload); derr == nil {
				s.fetchPeer.Store(dc)
				return entry, nil
			}
		}
		if err == nil && !resp.OK && resp.Err == errCompacted {
			return wal.Entry{}, errSnapshotRequired
		}
	}
	// Drive the Paxos instance to completion.
	prop := &paxos.Proposer{Transport: s.transport, Timeout: s.timeout}
	ballot := paxos.Ballot(1, learnClientID)
	for attempt := 0; attempt < 16; attempt++ {
		if err := ctx.Err(); err != nil {
			return wal.Entry{}, err
		}
		prep := prop.Prepare(ctx, group, pos, ballot, true)
		if !prep.Quorum() {
			ballot = paxos.NextBallot(maxInt64(prep.MaxSeen, ballot), learnClientID)
			continue
		}
		// Highest-ballot vote, with the same deterministic fast-ballot
		// tie-break as the client's maxBallotVote (see commit.go).
		best, hasVote := maxBallotVote(prep.Votes)
		if !hasVote {
			best.Ballot = paxos.NilBallot
		}
		var value []byte
		if best.IsNull() {
			if !fillNoOp {
				return wal.Entry{}, fmt.Errorf("position %d undecided", pos)
			}
			value = wal.Encode(wal.NoOp())
		} else {
			value = best.Value
		}
		acc := prop.Accept(ctx, group, pos, ballot, value)
		if !acc.Quorum() {
			ballot = paxos.NextBallot(maxInt64(acc.MaxSeen, ballot), learnClientID)
			continue
		}
		prop.Apply(ctx, group, pos, ballot, value)
		entry, err := wal.Decode(value)
		if err != nil {
			return wal.Entry{}, err
		}
		return entry, nil
	}
	return wal.Entry{}, fmt.Errorf("could not learn position %d", pos)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
