package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"paxoscp/internal/network"
	"paxoscp/internal/placement"
	"paxoscp/internal/replog"
	"paxoscp/internal/wal"
)

// Live shard migration (DESIGN.md §15): the service-side handlers that stream
// a moving key range out of its old group, the verdict surface that redirects
// clients, and the Migrator — the coordinator that drives one range's
// backfill and epoch-fenced cutover through both groups' logs.
//
// The protocol per (From → To) pair:
//
//  1. HandoffPrepare commits to To's log: the inbound range is fenced
//     against ordinary writes (replog rule M2) so no client write can
//     interleave with the backfill.
//  2. Backfill: the coordinator pages the range's rows out of From with
//     KindRangeSnapshot reads pinned at one watermark, and writes them to To
//     as Backfill-flagged transactions (exempt from M2). Delta rounds repeat
//     with a rising version floor until a round copies few enough rows.
//  3. HandoffOut commits to From's log: the range departs. Its log position
//     is the migration frontier — every transaction at a later position that
//     writes a range key is void (rule M1) with the retryable "moved"
//     verdict, so the frozen rows are exactly the state at the frontier.
//  4. A final delta copy, served at a watermark at or past the frontier,
//     moves the last writes that raced the cutover.
//  5. HandoffIn commits to To's log: the range opens for normal traffic.
//  6. HandoffTombstone commits to From's log: the frozen rows may be
//     scavenged wholesale at From's next compaction.
//
// Every handoff entry rides the ordinary master pipeline and is epoch-
// stamped, so a deposed coordinator's cutover is fenced (F2) exactly like
// any stale master's entry. Handoff submission is idempotent by
// construction: a duplicate record (a retry after a lost verdict) fences the
// same range to the same destination, so replicas that apply both reach the
// same state.

// ErrMoved is the wire marker for a migrated-range refusal: the key's range
// departed this group. Retryable at the destination group, which the reply
// names in Value (and the affected keys in Keys). Both the admission-time
// refusal and the apply-time M1 verdict use it.
const ErrMoved = "moved"

// ErrMigrating is the wire marker for an inbound-range refusal: the key's
// range is prepared here but not open yet (between HandoffPrepare and
// HandoffIn). Retryable in place after a short wait — the cutover is
// typically a few log entries away.
const ErrMigrating = "migrating"

func movedReply(to string, keys ...string) network.Message {
	m := network.Status(false, ErrMoved)
	m.Value = to
	m.Keys = keys
	return m
}

func migratingReply() network.Message {
	return network.Status(false, ErrMigrating)
}

// MovedError is the client-side form of a "moved" refusal: the operation
// touched keys whose range migrated to another group. Callers re-route to To
// and retry; KV does so automatically.
type MovedError struct {
	To   string   // destination group
	Keys []string // the keys the refusal named (may be empty on commits)
}

func (e *MovedError) Error() string {
	return fmt.Sprintf("core: range moved to group %s", e.To)
}

// ErrMigratingRange is the client-side form of a "migrating" refusal: the
// keys' range is mid-cutover at its new group. Retry shortly.
var ErrMigratingRange = errors.New("core: range is migrating; retry shortly")

// rangeSnapshotPageRows caps how many rows one KindRangeSnapshot reply
// carries, bounding reply size and the store scan a single request costs.
const rangeSnapshotPageRows = 256

// rangeSnapshotExamineBudget caps how many ordered-index rows one
// KindRangeSnapshot request walks before replying with a progress cursor.
// A moving range is hash-scattered through the key order, so a page of
// moved rows can sit far apart in the index; without the budget a sparse
// range would make single requests arbitrarily expensive. A budget-bounded
// reply may carry fewer rows than the page cap — even zero — with the
// cursor advanced to the last examined key; copyRange resumes from it.
const rangeSnapshotExamineBudget = 2048

// handleRangeSnapshot serves one page of a moving range's rows at a pinned
// read position. Request fields: Group = source group, Value = destination
// group, Keys = the destination placement's full group list (the range is
// {k: owned by Value under Keys, owned by Group under Keys minus Value}),
// TS = the pinned position (ResolvePos on the first page pins at the local
// watermark), Pos = version floor (only rows written after it), Key+Found =
// resume cursor (start after Key when Found). The reply pages rows in
// Keys/Vals, TS echoing the pin and Found flagging more pages.
//
// Pages walk the store's ordered index from the cursor — each request costs
// O(page) index work, not a full-store key sort (the old per-page
// KeysWithPrefix walk made an N-row backfill quadratic). The pin is
// registered with the replog (PinReads) so a compaction between pages
// cannot GC the versions later pages still read.
func (s *Service) handleRangeSnapshot(req network.Message) network.Message {
	ts, err := s.resolveReadTS(req.Group, req.TS)
	if err != nil {
		return network.Status(false, err.Error())
	}
	lg := s.log(req.Group)
	lg.PinReads(ts, scanPinTTL(s.timeout))
	if lg.CompactedTo() > ts {
		return network.Status(false, errCompacted)
	}
	set := placement.NewMoveSet(req.Keys, req.Group, req.Value)
	prefix := replog.DataPrefix(req.Group)
	resp := network.Message{Kind: network.KindValue, OK: true, TS: ts}
	after := ""
	if req.Found {
		after = prefix + req.Key // resume after the cursor
	}
	examined := 0
	for {
		rows, more, serr := s.store.ScanPrefix(prefix, after, rangeSnapshotPageRows, ts)
		if serr != nil {
			return network.Status(false, serr.Error())
		}
		for _, row := range rows {
			bare := row.Key[len(prefix):]
			examined++
			if set.Moves(bare) && row.TS > req.Pos {
				resp.Keys = append(resp.Keys, bare)
				resp.Vals = append(resp.Vals, row.Val["v"])
			}
			if len(resp.Keys) >= rangeSnapshotPageRows || examined >= rangeSnapshotExamineBudget {
				resp.Key = bare
				resp.Found = true // more pages may follow
				return resp
			}
		}
		if !more {
			return resp // range complete: Found stays false
		}
		after = rows[len(rows)-1].Key
	}
}

// handleMigrate submits one handoff phase entry to the group's master
// pipeline and blocks for the verdict; OK replies carry the entry's log
// position in TS (the HandoffOut position is the frontier the coordinator
// pins its final delta to). A non-master refuses with the usual ErrNotMaster
// hint.
func (s *Service) handleMigrate(req network.Message) network.Message {
	entry, err := wal.Decode(req.Payload)
	if err != nil || !entry.IsHandoff() {
		return network.Status(false, "bad migrate payload")
	}
	done := make(chan network.Message, 1)
	s.pipeline(req.Group).SubmitHandoffAsync(entry.Handoff, func(m network.Message) { done <- m })
	return <-done
}

// --- Migrator ---------------------------------------------------------------

// Migrator drives live range migrations: for each (From → To) pair of a
// placement growth step it runs the prepare / backfill / cutover sequence
// above against the groups' masters. One Migrator handles pairs serially; it
// holds no state a crash would strand — every phase transition lives in the
// groups' replicated logs, and re-running a pair is idempotent.
type Migrator struct {
	// Transport reaches the cluster's datacenters.
	Transport network.Transport
	// Timeout bounds one message round; 0 means network.DefaultTimeout.
	Timeout time.Duration
	// MasterFor seeds master lookups per group (the cluster's spread).
	// Unset, the first datacenter is tried and not-master hints are followed.
	MasterFor func(group string) string
	// LagBound is the delta-round row count at which the coordinator cuts
	// over: a round that copied at most this many rows means the tail is
	// short enough that the final frozen delta stays small. 0 means 16.
	LagBound int
	// MaxRounds caps chase rounds before cutting over regardless of lag —
	// the HandoffOut fence bounds the final delta anyway. 0 means 8.
	MaxRounds int
	// BatchRows caps rows per backfill transaction. 0 means 32.
	BatchRows int
	// OnPhase, when set, observes every committed handoff entry (bench and
	// tests measure cutover pauses with it).
	OnPhase func(h wal.Handoff, pos int64)

	seq atomic.Int64 // backfill transaction ID counter
}

func (m *Migrator) timeout() time.Duration {
	if m.Timeout > 0 {
		return m.Timeout
	}
	return network.DefaultTimeout
}

func (m *Migrator) lagBound() int {
	if m.LagBound > 0 {
		return m.LagBound
	}
	return 16
}

func (m *Migrator) maxRounds() int {
	if m.MaxRounds > 0 {
		return m.MaxRounds
	}
	return 8
}

func (m *Migrator) batchRows() int {
	if m.BatchRows > 0 {
		return m.BatchRows
	}
	return 32
}

// Step migrates every pair of one placement growth step, serially in pair
// order. The step's To placement must be the post-step placement (the group
// list every handoff entry carries).
func (m *Migrator) Step(ctx context.Context, step placement.Step) error {
	groups := step.To.Groups()
	for _, pair := range step.Pairs {
		if err := m.MigratePair(ctx, pair.From, pair.To, groups); err != nil {
			return fmt.Errorf("core: migrate %s->%s: %w", pair.From, pair.To, err)
		}
	}
	return nil
}

// MigratePair runs the full migration sequence for one range: the keys that
// move from group `from` to group `to` when the placement becomes
// destGroups. Idempotent: re-running after a partial failure re-fences the
// same range and re-copies rows to the same values.
func (m *Migrator) MigratePair(ctx context.Context, from, to string, destGroups []string) error {
	// 1. Fence the inbound range at the destination.
	if _, err := m.submitHandoff(ctx, wal.NewHandoff(wal.HandoffPrepare, from, to, destGroups)); err != nil {
		return fmt.Errorf("prepare: %w", err)
	}

	// 2. Backfill at a pinned watermark, then chase the tail with delta
	// rounds until one round's copy volume is inside the lag bound.
	var floor int64
	readPos := int64(-1) // destination read position, maintained across batches
	for round := 0; round < m.maxRounds(); round++ {
		copied, pin, err := m.copyRange(ctx, from, to, destGroups, floor, network.ResolvePos, &readPos)
		if err != nil {
			return fmt.Errorf("backfill round %d: %w", round, err)
		}
		floor = pin
		if copied <= m.lagBound() {
			break
		}
	}

	// 3. Cut the range over: the HandoffOut position freezes it at the
	// source, so everything written after the last round is bounded by the
	// fence, not by luck.
	outPos, err := m.submitHandoff(ctx, wal.NewHandoff(wal.HandoffOut, from, to, destGroups))
	if err != nil {
		return fmt.Errorf("handoff-out: %w", err)
	}

	// 4. Final frozen delta, served at or past the frontier (the serving
	// replica catches up to outPos if it lags).
	if _, _, err := m.copyRange(ctx, from, to, destGroups, floor, outPos, &readPos); err != nil {
		return fmt.Errorf("final delta: %w", err)
	}

	// 5. Open the range at the destination.
	if _, err := m.submitHandoff(ctx, wal.NewHandoff(wal.HandoffIn, from, to, destGroups)); err != nil {
		return fmt.Errorf("handoff-in: %w", err)
	}

	// 6. Clear the frozen source rows for scavenge.
	if _, err := m.submitHandoff(ctx, wal.NewHandoff(wal.HandoffTombstone, from, to, destGroups)); err != nil {
		return fmt.Errorf("tombstone: %w", err)
	}
	return nil
}

// copyRange copies one round of the moving range's rows: every row whose
// version exceeds floor, read at the pinned position (pin ==
// network.ResolvePos pins at the serving replica's watermark), written to
// the destination group in backfill transactions. It returns the row count
// and the pin the round was served at — the next round's floor.
func (m *Migrator) copyRange(ctx context.Context, from, to string, destGroups []string, floor, pin int64, readPos *int64) (int, int64, error) {
	copied := 0
	cursor, hasCursor := "", false
	var batchKeys, batchVals []string
	flush := func() error {
		if len(batchKeys) == 0 {
			return nil
		}
		if err := m.backfill(ctx, to, batchKeys, batchVals, readPos); err != nil {
			return err
		}
		copied += len(batchKeys)
		batchKeys, batchVals = batchKeys[:0], batchVals[:0]
		return nil
	}
	for {
		req := network.Message{
			Kind: network.KindRangeSnapshot, Group: from, Value: to, Keys: destGroups,
			TS: pin, Pos: floor, Key: cursor, Found: hasCursor,
		}
		resp, err := m.sendAny(ctx, req)
		if err != nil {
			return copied, pin, err
		}
		if pin == network.ResolvePos {
			pin = resp.TS // first page pins the round; later pages reuse it
		}
		for i, k := range resp.Keys {
			batchKeys = append(batchKeys, k)
			batchVals = append(batchVals, resp.Vals[i])
			if len(batchKeys) >= m.batchRows() {
				if err := flush(); err != nil {
					return copied, pin, err
				}
			}
		}
		if !resp.Found {
			break
		}
		cursor, hasCursor = resp.Key, true
	}
	if err := flush(); err != nil {
		return copied, pin, err
	}
	return copied, pin, nil
}

// backfill commits one batch of rows to the destination group as a single
// Backfill-flagged transaction (exempt from the M2 inbound fence). The
// transaction reads nothing, so it can never conflict; its read position
// only bounds the master's admission scan, and each commit's position seeds
// the next batch's.
func (m *Migrator) backfill(ctx context.Context, to string, keys, vals []string, readPos *int64) error {
	if *readPos < 0 {
		resp, err := m.sendAny(ctx, network.Message{Kind: network.KindReadPos, Group: to})
		if err != nil {
			return fmt.Errorf("destination read position: %w", err)
		}
		*readPos = resp.TS
	}
	writes := make(map[string]string, len(keys))
	for i, k := range keys {
		writes[k] = vals[i]
	}
	txn := wal.Txn{
		ID:       fmt.Sprintf("mig-%s-%d", to, m.seq.Add(1)),
		Origin:   "migrator",
		ReadPos:  *readPos,
		Writes:   writes,
		Backfill: true,
	}
	resp, err := m.sendMaster(ctx, to, network.Message{
		Kind: network.KindSubmit, Group: to, Payload: wal.Encode(wal.NewEntry(txn)),
	})
	if err != nil {
		return fmt.Errorf("backfill batch: %w", err)
	}
	*readPos = resp.TS
	return nil
}

// submitHandoff commits one handoff entry through its group's master and
// returns the log position it applied at. Retries after a lost verdict are
// safe: duplicate handoff records fence identically.
func (m *Migrator) submitHandoff(ctx context.Context, e wal.Entry) (int64, error) {
	h := e.Handoff
	group := h.From
	if h.Phase == wal.HandoffPrepare || h.Phase == wal.HandoffIn {
		group = h.To
	}
	resp, err := m.sendMaster(ctx, group, network.Message{
		Kind: network.KindMigrate, Group: group, Payload: wal.Encode(e),
	})
	if err != nil {
		return 0, err
	}
	if m.OnPhase != nil {
		m.OnPhase(*h, resp.TS)
	}
	return resp.TS, nil
}

// sendAny tries every datacenter until one answers OK — for requests any
// replica can serve (range snapshot pages, read positions). It keeps cycling
// with a capped backoff until the context expires, so a partition that heals
// mid-migration costs waiting, not failure.
func (m *Migrator) sendAny(ctx context.Context, req network.Message) (network.Message, error) {
	timeout := m.timeout()
	var lastErr error = errAllServicesUnavailable
	for attempt := 0; ; attempt++ {
		for _, dc := range m.Transport.Peers() {
			cctx, cancel := context.WithTimeout(ctx, timeout)
			resp, err := m.Transport.Send(cctx, dc, req)
			cancel()
			if err == nil && resp.OK {
				return resp, nil
			}
			if err != nil {
				lastErr = err
			} else {
				lastErr = fmt.Errorf("core: migrator: service %s: %s", dc, resp.Err)
			}
		}
		if serr := sleepCtx(ctx, timeout); serr != nil {
			return network.Message{}, fmt.Errorf("%w (last: %v)", serr, lastErr)
		}
	}
}

// sendMaster submits req to group's master: seeded by MasterFor, following
// not-master hints, waiting out lease transitions and overload pushback, and
// rotating past fail-stopped replicas. Like sendAny it persists until the
// context expires — migration under fire is expected to stall through fault
// windows and resume, not abort.
func (m *Migrator) sendMaster(ctx context.Context, group string, req network.Message) (network.Message, error) {
	timeout := m.timeout()
	peers := m.Transport.Peers()
	master := peers[0]
	if m.MasterFor != nil {
		if dc := m.MasterFor(group); dc != "" {
			master = dc
		}
	}
	failed := make(map[string]bool)
	rotate := func() {
		for _, dc := range peers {
			if dc != master && !failed[dc] {
				master = dc
				return
			}
		}
		failed = map[string]bool{} // everyone refused; start over
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		// The submit round trip covers the master's replication work.
		cctx, cancel := context.WithTimeout(ctx, 2*timeout)
		resp, err := m.Transport.Send(cctx, master, req)
		cancel()
		switch {
		case err != nil:
			lastErr = err
			rotate()
		case resp.OK:
			return resp, nil
		case resp.Err == ErrNotMaster && resp.Value != "" && resp.Value != master && !failed[resp.Value]:
			master = resp.Value
			continue // follow the hint without sleeping
		case resp.Err == ErrReplicaFailed:
			failed[master] = true
			lastErr = fmt.Errorf("core: migrator: %s: %s", master, resp.Err)
			rotate()
		case resp.Err == ErrOverloaded:
			lastErr = fmt.Errorf("core: migrator: %s overloaded", master)
		default:
			// Not-master without a usable hint, claim races, pipeline
			// timeouts: wait a beat and retry where we are.
			lastErr = fmt.Errorf("core: migrator: %s: %s", master, resp.Err)
		}
		if serr := sleepCtx(ctx, timeout); serr != nil {
			return network.Message{}, fmt.Errorf("%w (last: %v)", serr, lastErr)
		}
	}
}
