package core

import (
	"testing"

	"paxoscp/internal/network"
)

func TestStatusReflectsState(t *testing.T) {
	services, _ := newServiceRing(t, "A", "B")
	s := services["A"]
	st := s.Status("g")
	if st.DC != "A" || st.Group != "g" || st.LastApplied != 0 || st.LogEntries != 0 || st.DataKeys != 0 {
		t.Fatalf("empty status = %+v", st)
	}
	seedLog(t, services, []string{"A"}, "g", 4)
	st = s.Status("g")
	if st.LastApplied != 4 || st.LogEntries != 4 {
		t.Fatalf("status after 4 entries = %+v", st)
	}
	if st.DataKeys != 5 { // "k" plus u1..u4
		t.Fatalf("dataKeys = %d, want 5", st.DataKeys)
	}
	if st.Leader == "" {
		t.Fatalf("leader missing: %+v", st)
	}
	if _, err := s.Compact("g", 3); err != nil {
		t.Fatal(err)
	}
	if st = s.Status("g"); st.CompactedTo != 3 {
		t.Fatalf("compactedTo = %d, want 3", st.CompactedTo)
	}
}

func TestStatsHandlerJSONRoundTrip(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	seedLog(t, services, []string{"A"}, "g", 2)
	resp := services["A"].Handler()("op", network.Message{Kind: network.KindStats, Group: "g"})
	if !resp.OK {
		t.Fatalf("stats reply = %+v", resp)
	}
	st, err := ParseGroupStatus(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if st.DC != "A" || st.LastApplied != 2 {
		t.Fatalf("parsed status = %+v", st)
	}
	if _, err := ParseGroupStatus([]byte("junk")); err == nil {
		t.Fatal("garbage status parsed")
	}
}

func TestCompactHandler(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	seedLog(t, services, []string{"A"}, "g", 6)
	resp := services["A"].Handler()("op", network.Message{Kind: network.KindCompact, Group: "g", TS: 5})
	if !resp.OK || resp.TS != 5 {
		t.Fatalf("compact reply = %+v", resp)
	}
	if got := services["A"].CompactedTo("g"); got != 5 {
		t.Fatalf("CompactedTo = %d", got)
	}
	// Horizon beyond applied clamps.
	resp = services["A"].Handler()("op", network.Message{Kind: network.KindCompact, Group: "g", TS: 99})
	if !resp.OK || resp.TS != 6 {
		t.Fatalf("clamped compact reply = %+v", resp)
	}
}
