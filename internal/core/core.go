package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Protocol selects the commit protocol a Client runs.
type Protocol int

const (
	// Basic is the basic Paxos commit protocol (§4.1).
	Basic Protocol = iota
	// CP is Paxos with Combination and Promotion (§5).
	CP
)

func (p Protocol) String() string {
	switch p {
	case Basic:
		return "paxos"
	case CP:
		return "paxos-cp"
	case Master:
		return "master"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Config tunes a Client's commit protocol. The zero value gives the paper's
// defaults (basic Paxos, 2 s timeout via network.DefaultTimeout, unlimited
// promotions, leader fast path on).
type Config struct {
	// Protocol selects Basic or CP.
	Protocol Protocol
	// Timeout bounds each message round (paper: 2 s). Zero uses
	// network.DefaultTimeout. Experiments scale it with network latency.
	Timeout time.Duration
	// MaxPromotions caps promotion attempts in CP. Zero means unlimited,
	// the paper's evaluation setting ("Transactions were allowed to try
	// for promotion an unlimited number of times"). Use DisablePromotion
	// for the combination-only ablation.
	MaxPromotions int
	// DisablePromotion turns Paxos-CP's promotion off (ablation 3 in
	// DESIGN.md): losing transactions abort as in basic Paxos.
	DisablePromotion bool
	// MaxRetries bounds prepare/accept retry rounds within one Paxos
	// instance before the commit attempt reports failure. Zero means the
	// default (32).
	MaxRetries int
	// BackoffBase scales the randomized backoff between retry rounds
	// ("sleep for random time period", Algorithm 2). Zero means 2 ms.
	BackoffBase time.Duration
	// DisableFastPath turns the §4.1 per-position leader optimization off
	// (ablation 1 in DESIGN.md).
	DisableFastPath bool
	// DisableCombination turns Paxos-CP's combination off (ablation 2).
	DisableCombination bool
	// CombineLimit caps the number of candidate transactions considered by
	// the exhaustive combination search before switching to the greedy
	// pass (§5 suggests greedy for large lists). Zero means 4.
	CombineLimit int
	// Seed seeds the client's backoff RNG. Zero uses a time-based seed.
	Seed int64
	// MasterDC names the long-term master datacenter for the Master
	// protocol (§7 design). Empty defaults to the topology's first
	// datacenter. Ignored by Basic and CP.
	MasterDC string
	// MasterFor, when set, overrides MasterDC per transaction group: a
	// sharded deployment spreads group masterships across datacenters
	// (DESIGN.md §12), so one client committing to many groups needs a
	// per-group route. Returning "" falls back to MasterDC. Ignored by
	// Basic and CP.
	MasterFor func(group string) string
}

func (c Config) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 32
}

func (c Config) backoffBase() time.Duration {
	if c.BackoffBase > 0 {
		return c.BackoffBase
	}
	return 2 * time.Millisecond
}

func (c Config) combineLimit() int {
	if c.CombineLimit > 0 {
		return c.CombineLimit
	}
	return 4
}

// lockedRand is a concurrency-safe rand.Rand.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (r *lockedRand) Float64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}
