package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"paxoscp/internal/network"
)

// Client-side ordered range scans (DESIGN.md §16). Tx.Scan streams one
// group's prefix region page by page at the transaction's read position;
// KV.Scan fans one scan per group out across the placement and merges the
// pages into one ordered result, following migration hints so a scan stays
// correct while a placement grows underneath it.

// ScanEntry is one row of an ordered scan.
type ScanEntry struct {
	Key   string
	Value string
	// MovedIn marks a row served by a group it migrated into at or below
	// the scan's pinned position. KV.Scan's merge prefers such rows when a
	// source leg pinned before the cutover also served the key — the
	// destination's copy includes the final delta.
	MovedIn bool
}

// Scanner is a lazy ordered cursor over one group's rows under a prefix.
// Obtain one with Tx.Scan, then iterate:
//
//	sc := tx.Scan("product-")
//	for sc.Next(ctx) {
//		use(sc.Key(), sc.Value())
//	}
//	if sc.Err() != nil { ... }
//
// Every page is served at the transaction's read position — the first page
// resolves a lazy position exactly like a first Read — so a multi-page scan
// observes one snapshot: rows written after the scan began are invisible,
// rows it has not reached yet cannot disappear (the serving side pins the
// position against compaction per page). A Scanner is not safe for
// concurrent use, and scanned rows do NOT join the transaction's optimistic
// read set: committing writes validates only keys read with Read/ReadMulti,
// not the scanned range (predicate locks are out of scope, as in the paper's
// row-level conflict model).
type Scanner struct {
	tx     *Tx
	prefix string

	// PageSize overrides the rows-per-request page (0 means the server
	// default). Set it before the first Next; tests use tiny pages to cross
	// page boundaries cheaply.
	PageSize int

	// StartAfter, when set before the first Next, starts the scan just past
	// the given key instead of at the beginning of the prefix region: keys
	// <= StartAfter are skipped, including the transaction's own buffered
	// writes. YCSB-style scans (start key + row count) pair it with a
	// row-count bound on the consumer side.
	StartAfter string

	started   bool
	cursor    string
	hasCursor bool
	exhausted bool // no more wire pages

	page []ScanEntry
	idx  int

	// overlay holds the transaction's own buffered writes under the prefix,
	// sorted; the merge emits them in place of (or between) served rows, so
	// a transaction scanning a range it wrote sees its writes (property A1).
	overlay []string
	oidx    int

	cur     ScanEntry
	err     error
	dests   map[string]bool
	pending bool
}

// Scan begins an ordered scan of the keys with the given prefix in the
// transaction's group. The cursor is lazy: no message is sent until the
// first Next.
func (t *Tx) Scan(prefix string) *Scanner {
	sc := &Scanner{tx: t, prefix: prefix, dests: make(map[string]bool)}
	if t.done {
		sc.err = errTxDone
		return sc
	}
	for k := range t.writes {
		if strings.HasPrefix(k, prefix) {
			sc.overlay = append(sc.overlay, k)
		}
	}
	sort.Strings(sc.overlay)
	return sc
}

// Next advances the cursor, fetching the next page when the buffered one is
// consumed. It returns false at the end of the range or on error (check Err).
func (sc *Scanner) Next(ctx context.Context) bool {
	if sc.err != nil {
		return false
	}
	if !sc.started {
		sc.started = true
		if sc.StartAfter != "" {
			sc.cursor, sc.hasCursor = sc.StartAfter, true
			for sc.oidx < len(sc.overlay) && sc.overlay[sc.oidx] <= sc.StartAfter {
				sc.oidx++
			}
		}
	}
	for {
		if sc.idx >= len(sc.page) && !sc.exhausted {
			if !sc.fetch(ctx) {
				return false
			}
			continue // a progress page may carry zero rows
		}
		wireOK := sc.idx < len(sc.page)
		ovOK := sc.oidx < len(sc.overlay)
		switch {
		case wireOK && ovOK:
			w, ok := sc.page[sc.idx], sc.overlay[sc.oidx]
			if ok < w.Key {
				sc.cur = ScanEntry{Key: ok, Value: sc.tx.writes[ok]}
				sc.oidx++
			} else if ok == w.Key {
				// The transaction's own write shadows the stored row (A1).
				sc.cur = ScanEntry{Key: ok, Value: sc.tx.writes[ok], MovedIn: w.MovedIn}
				sc.oidx++
				sc.idx++
			} else {
				sc.cur = w
				sc.idx++
			}
			return true
		case wireOK:
			sc.cur = sc.page[sc.idx]
			sc.idx++
			return true
		case ovOK:
			// An overlay key beyond the last served row may only be emitted
			// once the wire stream is exhausted — otherwise a later page
			// could carry a smaller key.
			if !sc.exhausted {
				continue
			}
			k := sc.overlay[sc.oidx]
			sc.cur = ScanEntry{Key: k, Value: sc.tx.writes[k]}
			sc.oidx++
			return true
		default:
			return false
		}
	}
}

// fetch pulls one wire page; false means sc.err is set.
func (sc *Scanner) fetch(ctx context.Context) bool {
	t := sc.tx
	resp, err := t.client.sendPreferLocal(ctx, network.Message{
		Kind: network.KindScan, Group: t.group, Value: sc.prefix,
		TS: t.readPos, Pos: int64(sc.PageSize), Key: sc.cursor, Found: sc.hasCursor,
	})
	if err != nil {
		sc.err = fmt.Errorf("core: scan %q: %w", sc.prefix, err)
		return false
	}
	if !t.resolved() {
		t.readPos = resp.TS // first page pins the scan; later pages reuse it
	}
	sc.page, sc.idx = sc.page[:0], 0
	for i, k := range resp.Keys {
		sc.page = append(sc.page, ScanEntry{
			Key: k, Value: resp.Vals[i],
			MovedIn: i < len(resp.Founds) && resp.Founds[i],
		})
	}
	if resp.Value != "" {
		for _, d := range strings.Split(resp.Value, ",") {
			sc.dests[d] = true
		}
	}
	if resp.Combined {
		sc.pending = true
	}
	if resp.Found {
		sc.cursor, sc.hasCursor = resp.Key, true
	} else {
		sc.exhausted = true
	}
	return true
}

// Key returns the current row's key (valid after a true Next).
func (sc *Scanner) Key() string { return sc.cur.Key }

// Value returns the current row's value (valid after a true Next).
func (sc *Scanner) Value() string { return sc.cur.Value }

// Entry returns the current row (valid after a true Next).
func (sc *Scanner) Entry() ScanEntry { return sc.cur }

// Err returns the first error the cursor hit, if any.
func (sc *Scanner) Err() error { return sc.err }

// Dests returns the destination groups the served pages named for ranges
// departed below the scan's position, sorted. A caller that wants the moved
// rows too must scan those groups as well — KV.Scan does this automatically.
func (sc *Scanner) Dests() []string {
	out := make([]string, 0, len(sc.dests))
	for g := range sc.dests {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Pending reports whether any served page flagged an inbound range prepared
// but unopened at the scan's position: rows of that range were hidden, and
// the group should be re-scanned after its cutover.
func (sc *Scanner) Pending() bool { return sc.pending }

// --- routed fan-out ---------------------------------------------------------

// ScanResult is the merged result of a routed KV.Scan.
type ScanResult struct {
	// Entries holds every live row under the prefix, in ascending key
	// order, each key exactly once.
	Entries []ScanEntry
	// Positions reports the log position each group's leg was served at,
	// keyed by group — per-group snapshots, exactly as in MultiRead
	// (group-local serializability, §2.1).
	Positions map[string]int64
}

// scanLeg is one group's materialized scan: entries must be collected before
// the cross-group merge because a placement's move sets are hash-scattered
// through the key order — any key of any leg may interleave anywhere.
type scanLeg struct {
	group   string
	entries []ScanEntry
	pos     int64
	dests   []string
	pending bool
	err     error
}

// Scan reads every key with the given prefix across the placement: one
// ordered scan per group, run concurrently, merged into one ascending key
// order. Migration hints are followed exactly like ReadMulti's redirects: a
// leg naming departed-range destinations adds those groups' legs (bounded by
// kvMovedHops rounds), a leg flagging a pending inbound range is retried
// after a short wait (bounded by kvMigratingRetries), and any leg failure
// fails the whole scan naming the groups — a partial result would silently
// narrow the caller's view. When source and destination legs pin on opposite
// sides of a cutover and both serve a key, the merge keeps the destination's
// copy (marked MovedIn — it includes the final delta).
func (kv *KV) Scan(ctx context.Context, prefix string) (*ScanResult, error) {
	legs := make(map[string]scanLeg)
	// hinted accumulates every destination a leg named across rounds: a hint
	// means a row of the prefix departed there, so that group's leg must
	// exist AND must itself observe the migration (pending inbound range or
	// rows marked moved-in). A destination leg that shows neither was served
	// by a replica whose pin predates its HandoffPrepare — rescanning it pins
	// a later position, closing the window where a row would appear in no
	// leg at all (skipped at the source, invisible at the destination).
	hinted := make(map[string]bool)
	inboundAware := func(l scanLeg) bool {
		if l.pending {
			return true
		}
		for _, e := range l.entries {
			if e.MovedIn {
				return true
			}
		}
		return false
	}
	pendingSet := make(map[string]bool)
	for _, g := range kv.router.Groups() {
		pendingSet[g] = true
	}
	hops, waits := 0, 0
	for len(pendingSet) > 0 {
		todo := make([]string, 0, len(pendingSet))
		for g := range pendingSet {
			todo = append(todo, g)
		}
		sort.Strings(todo)
		pendingSet = make(map[string]bool)

		results := make(chan scanLeg, len(todo))
		for _, g := range todo {
			go func(group string) { results <- kv.scanGroup(ctx, group, prefix) }(g)
		}
		var failed []string
		errByGroup := make(map[string]error)
		grew, waiting := false, false
		for range todo {
			r := <-results
			if r.err != nil {
				failed = append(failed, r.group)
				errByGroup[r.group] = r.err
				continue
			}
			legs[r.group] = r
			for _, d := range r.dests {
				hinted[d] = true
			}
			if r.pending {
				// Mid-cutover rows were hidden; re-scan this group after its
				// HandoffIn applies (the retry pins a later position).
				pendingSet[r.group] = true
				waiting = true
			}
		}
		for d := range hinted {
			if _, have := legs[d]; !have {
				pendingSet[d] = true
				grew = true
			} else if !inboundAware(legs[d]) && !pendingSet[d] {
				pendingSet[d] = true
				waiting = true
			}
		}
		if len(failed) > 0 {
			sort.Strings(failed)
			msg := ""
			for i, g := range failed {
				if i > 0 {
					msg += "; "
				}
				msg += fmt.Sprintf("group %s: %v", g, errByGroup[g])
			}
			return nil, fmt.Errorf("core: kv scan: %d of %d groups unavailable: %s",
				len(failed), len(todo), msg)
		}
		if grew {
			if hops++; hops > kvMovedHops {
				return nil, fmt.Errorf("core: kv scan: destinations grew %d times without settling", hops-1)
			}
		}
		if waiting && !grew {
			if waits++; waits > kvMigratingRetries {
				return nil, fmt.Errorf("core: kv scan: range still migrating after %d retries", waits-1)
			}
			if err := sleepCtx(ctx, kv.retryDelay()); err != nil {
				return nil, err
			}
		}
	}
	return mergeScanLegs(legs), nil
}

// scanGroup materializes one group's leg with a fresh read-only transaction.
func (kv *KV) scanGroup(ctx context.Context, group, prefix string) scanLeg {
	leg := scanLeg{group: group}
	tx, err := kv.client.Begin(ctx, group)
	if err != nil {
		leg.err = err
		return leg
	}
	defer tx.Abort()
	sc := tx.Scan(prefix)
	for sc.Next(ctx) {
		leg.entries = append(leg.entries, sc.Entry())
	}
	if leg.err = sc.Err(); leg.err != nil {
		return leg
	}
	leg.pos = tx.ReadPos()
	leg.dests = sc.Dests()
	leg.pending = sc.Pending()
	return leg
}

// mergeScanLegs merges the per-group legs into one ascending key order, each
// key exactly once. A key served by two legs (source pinned before a
// cutover, destination after) keeps the MovedIn copy; among equals the
// lexicographically smallest group wins, making the merge deterministic.
func mergeScanLegs(legs map[string]scanLeg) *ScanResult {
	out := &ScanResult{Positions: make(map[string]int64, len(legs))}
	type tagged struct {
		ScanEntry
		group string
	}
	var all []tagged
	for _, leg := range legs {
		out.Positions[leg.group] = leg.pos
		for _, e := range leg.entries {
			all = append(all, tagged{ScanEntry: e, group: leg.group})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Key != all[j].Key {
			return all[i].Key < all[j].Key
		}
		if all[i].MovedIn != all[j].MovedIn {
			return all[i].MovedIn // preferred copy first
		}
		return all[i].group < all[j].group
	})
	for _, e := range all {
		if n := len(out.Entries); n > 0 && out.Entries[n-1].Key == e.Key {
			continue // duplicate from a leg pinned across the cutover
		}
		out.Entries = append(out.Entries, e.ScanEntry)
	}
	return out
}
