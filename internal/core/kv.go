package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"paxoscp/internal/network"
	"paxoscp/internal/stats"
)

// Router maps keys to their owning transaction groups. internal/placement
// implements it; core consumes only this interface so the dependency stays
// one-directional (placement is a leaf package).
type Router interface {
	// GroupFor returns the group that owns key.
	GroupFor(key string) string
	// Groups lists every group the router can return, in stable order.
	Groups() []string
}

// KV is the routed key-value facade over a Client (DESIGN.md §12): each key
// belongs to exactly one transaction group per the Router, single-key
// operations run a transaction on the owning group, and multi-key reads fan
// out one batched ReadMulti per owning group concurrently and merge the
// replies back into input order.
//
// The facade deliberately does NOT hide the data model: a cross-group read
// is a set of per-group snapshots (reported per group in MultiRead), not one
// global snapshot — the paper's §2.1 contract is that serializability is
// group-local and groups are independent. Transactions that need multi-key
// atomicity must keep their keys in one group and use Client.Begin directly;
// Tx semantics are untouched by routing.
type KV struct {
	client *Client
	router Router
}

// NewKV builds the routed facade. The router must be non-nil; clients that
// want per-group masters (Master protocol) set Config.MasterFor so commits
// route to each group's master.
func NewKV(client *Client, router Router) *KV {
	if router == nil {
		panic("core: NewKV with nil router")
	}
	return &KV{client: client, router: router}
}

// Client returns the underlying transaction client (for group-local
// multi-key transactions via Begin).
func (kv *KV) Client() *Client { return kv.client }

// Router returns the facade's key router.
func (kv *KV) Router() Router { return kv.router }

// kvMovedHops bounds how many "moved" redirects one KV operation follows: a
// key can hop once per placement growth step, so the budget covers several
// back-to-back grows plus slack.
const kvMovedHops = 8

// kvMigratingRetries bounds how many "migrating" waits one KV operation
// absorbs while a range is mid-cutover at its new group.
const kvMigratingRetries = 64

// retryDelay is the wait between "migrating" retries: a fraction of the
// client timeout — cutover is a few log entries, not a few round trips.
func (kv *KV) retryDelay() time.Duration {
	d := kv.client.cfg.Timeout
	if d <= 0 {
		d = network.DefaultTimeout
	}
	if d /= 8; d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// follow runs op against key's owning group, following live-migration
// redirects (DESIGN.md §15): a MovedError re-routes to the destination
// group (the key's range migrated), ErrMigratingRange waits briefly and
// retries in place (the range is mid-cutover). Any other outcome returns
// as-is.
func (kv *KV) follow(ctx context.Context, key string, op func(group string) error) error {
	group := kv.router.GroupFor(key)
	hops, waits := 0, 0
	for {
		err := op(group)
		var mv *MovedError
		switch {
		case errors.As(err, &mv):
			if hops++; hops > kvMovedHops {
				return err
			}
			group = mv.To
		case errors.Is(err, ErrMigratingRange):
			if waits++; waits > kvMigratingRetries {
				return err
			}
			if serr := sleepCtx(ctx, kv.retryDelay()); serr != nil {
				return serr
			}
		default:
			return err
		}
	}
}

// Get reads one key: a read-only transaction on the owning group, following
// live-migration redirects to the key's current owner. The bool reports
// whether the key exists.
func (kv *KV) Get(ctx context.Context, key string) (string, bool, error) {
	var val string
	var found bool
	err := kv.follow(ctx, key, func(group string) error {
		tx, err := kv.client.Begin(ctx, group)
		if err != nil {
			return err
		}
		defer tx.Abort()
		val, found, err = tx.Read(ctx, key)
		return err
	})
	if err != nil {
		return "", false, err
	}
	return val, found, nil
}

// Put writes one key: a write-only transaction on the owning group
// (following live-migration redirects), committed under the client's
// configured protocol.
func (kv *KV) Put(ctx context.Context, key, value string) (CommitResult, error) {
	var res CommitResult
	err := kv.follow(ctx, key, func(group string) error {
		tx, err := kv.client.Begin(ctx, group)
		if err != nil {
			return err
		}
		if err := tx.Write(key, value); err != nil {
			return err
		}
		res, err = tx.Commit(ctx)
		return err
	})
	return res, err
}

// Update runs a read-modify-write of one key on its owning group, retrying
// on optimistic-concurrency aborts (a conflicting writer forces a fresh
// read) up to attempts times; attempts <= 0 means 16. fn maps the current
// value (and whether it exists) to the new value.
func (kv *KV) Update(ctx context.Context, key string, attempts int, fn func(cur string, found bool) (string, error)) (CommitResult, error) {
	if attempts <= 0 {
		attempts = 16
	}
	var last CommitResult
	err := kv.follow(ctx, key, func(group string) error {
		for i := 0; i < attempts; i++ {
			tx, err := kv.client.Begin(ctx, group)
			if err != nil {
				return err
			}
			cur, found, err := tx.Read(ctx, key)
			if err != nil {
				tx.Abort()
				return err
			}
			next, err := fn(cur, found)
			if err != nil {
				tx.Abort()
				return err
			}
			tx.Write(key, next)
			last, err = tx.Commit(ctx)
			if err != nil {
				return err
			}
			if last.Status != stats.Aborted {
				return nil
			}
			// Aborted: another transaction wrote first; reread and retry.
		}
		return fmt.Errorf("core: kv update %q: conflicted %d times", key, attempts)
	})
	return last, err
}

// MultiRead is the result of a routed multi-key read.
type MultiRead struct {
	// Vals and Founds are parallel to the request's keys, in input order,
	// regardless of how the keys were split across groups.
	Vals   []string
	Founds []bool
	// Positions reports the log position each group's leg was served at,
	// keyed by group — the per-group snapshot the values belong to. Keys of
	// the same group share one snapshot; keys of different groups are
	// independent snapshots (group-local serializability, §2.1).
	Positions map[string]int64
}

// ReadMulti reads keys across their owning groups: the key list is
// partitioned by group, each group's slice travels as one batched ReadMulti
// round trip (its own read-only transaction, one snapshot per group), the
// legs run concurrently, and the replies merge back into input order. If any
// group's leg fails the whole read fails, with the error naming every group
// that failed — a partial result would silently narrow the caller's view.
//
// Live-migration redirects are followed per key (DESIGN.md §15): a leg
// refused with "moved" re-routes exactly the moved keys to the destination
// group and retries; "migrating" waits briefly and retries in place. A read
// that straddles a cutover can therefore serve one group's keys across two
// legs — each leg is still one snapshot, but a group re-read after a redirect
// reports the later leg's position in Positions.
func (kv *KV) ReadMulti(ctx context.Context, keys ...string) (*MultiRead, error) {
	out := &MultiRead{
		Vals:      make([]string, len(keys)),
		Founds:    make([]bool, len(keys)),
		Positions: make(map[string]int64),
	}
	if len(keys) == 0 {
		return out, nil
	}
	groupOf := make([]string, len(keys))
	for i, key := range keys {
		groupOf[i] = kv.router.GroupFor(key)
	}
	done := make([]bool, len(keys))
	hops, waits := 0, 0
	for {
		// Partition the pending slots preserving input order per group (the
		// per-group reply is parallel to the per-group request slice, so
		// order round-trips).
		slots := make(map[string][]int)
		for i := range keys {
			if !done[i] {
				slots[groupOf[i]] = append(slots[groupOf[i]], i)
			}
		}
		if len(slots) == 0 {
			return out, nil
		}

		type legResult struct {
			group string
			idx   []int
			pos   int64
			err   error
		}
		var wg sync.WaitGroup
		results := make(chan legResult, len(slots))
		var mu sync.Mutex // guards out.Vals/out.Founds slot writes
		for g, idx := range slots {
			wg.Add(1)
			go func(group string, idx []int) {
				defer wg.Done()
				tx, err := kv.client.Begin(ctx, group)
				if err != nil {
					results <- legResult{group: group, idx: idx, err: err}
					return
				}
				defer tx.Abort()
				gkeys := make([]string, len(idx))
				for i, slot := range idx {
					gkeys[i] = keys[slot]
				}
				vals, founds, err := tx.ReadMulti(ctx, gkeys...)
				if err != nil {
					results <- legResult{group: group, idx: idx, err: err}
					return
				}
				mu.Lock()
				for i, slot := range idx {
					out.Vals[slot] = vals[i]
					out.Founds[slot] = founds[i]
				}
				mu.Unlock()
				results <- legResult{group: group, idx: idx, pos: tx.ReadPos()}
			}(g, idx)
		}
		wg.Wait()
		close(results)

		var failed []string
		errByGroup := make(map[string]error)
		moved, migrating := false, false
		for r := range results {
			var mv *MovedError
			switch {
			case r.err == nil:
				out.Positions[r.group] = r.pos
				for _, slot := range r.idx {
					done[slot] = true
				}
			case errors.As(r.err, &mv):
				moved = true
				// Re-route exactly the moved keys; the leg's other keys
				// retry on the same group. A hint without keys moves the
				// whole leg (conservative: the destination re-fences).
				movedKeys := make(map[string]bool, len(mv.Keys))
				for _, k := range mv.Keys {
					movedKeys[k] = true
				}
				for _, slot := range r.idx {
					if len(mv.Keys) == 0 || movedKeys[keys[slot]] {
						groupOf[slot] = mv.To
					}
				}
			case errors.Is(r.err, ErrMigratingRange):
				migrating = true
			default:
				failed = append(failed, r.group)
				errByGroup[r.group] = r.err
			}
		}
		if len(failed) > 0 {
			sort.Strings(failed)
			msg := ""
			for i, g := range failed {
				if i > 0 {
					msg += "; "
				}
				msg += fmt.Sprintf("group %s: %v", g, errByGroup[g])
			}
			return nil, fmt.Errorf("core: kv readmulti: %d of %d groups unavailable: %s",
				len(failed), len(slots), msg)
		}
		if moved {
			if hops++; hops > kvMovedHops {
				return nil, fmt.Errorf("core: kv readmulti: moved %d times without settling", hops-1)
			}
		}
		if migrating && !moved {
			if waits++; waits > kvMigratingRetries {
				return nil, fmt.Errorf("core: kv readmulti: range still migrating after %d retries", waits-1)
			}
			if err := sleepCtx(ctx, kv.retryDelay()); err != nil {
				return nil, err
			}
		}
	}
}
