package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"paxoscp/internal/network"
	"paxoscp/internal/paxos"
	"paxoscp/internal/stats"
)

// Client is the Transaction Client: the library an application instance
// links to run transactions (§2.2). It speaks to the Transaction Service in
// every datacenter over the transport and runs the commit protocol itself
// (Algorithm 2). A Client is safe for concurrent use; each transaction is
// independent state ("each application instance has at most one active
// transaction per transaction group" — we allow one Tx value per goroutine).
type Client struct {
	id        int
	dc        string
	transport network.Transport
	cfg       Config

	proposer *paxos.Proposer
	rng      *lockedRand
	txnSeq   atomic.Int64

	// sendOrder is the datacenter preference order for transaction API
	// requests (local first, then every peer): precomputed once because
	// sendPreferLocal runs on the per-read hot path.
	sendOrder []string
	// txnPrefix is the "<dc>-<id>-" prefix of every transaction ID this
	// client mints; newTx appends only the sequence number.
	txnPrefix string

	// Collector, when set, receives one sample per finished read/write
	// transaction (commit or abort), as the paper's evaluation measures.
	Collector *stats.Collector
	// OnCommit, when set, is invoked for every committed read/write
	// transaction with its commit position, transaction record, and the
	// values its reads observed. The history checker subscribes here.
	OnCommit func(pos int64, txn CommittedTxn)
}

// CommittedTxn describes one committed transaction for observers.
type CommittedTxn struct {
	ID       string
	Group    string
	Origin   string
	ReadPos  int64
	Pos      int64
	Reads    map[string]string // key -> value observed
	Writes   map[string]string
	Round    int
	Combined bool
	// Epoch is the master epoch the transaction committed under (0 for the
	// Basic and CP protocols, and with fencing off).
	Epoch int64
}

// NewClient creates a Transaction Client local to datacenter dc. id must be
// unique among all concurrently running clients (it keys proposal numbers;
// see paxos.Ballot) and below paxos.MaxClients-1.
func NewClient(id int, dc string, transport network.Transport, cfg Config) *Client {
	if id < 0 || id >= paxos.MaxClients-1 {
		panic(fmt.Sprintf("core: client id %d out of range", id))
	}
	c := &Client{
		id:        id,
		dc:        dc,
		transport: transport,
		cfg:       cfg,
		rng:       newLockedRand(cfg.Seed),
		txnPrefix: dc + "-" + strconv.Itoa(id) + "-",
	}
	c.sendOrder = []string{dc}
	if transport != nil {
		for _, peer := range transport.Peers() {
			if peer != dc {
				c.sendOrder = append(c.sendOrder, peer)
			}
		}
	}
	c.proposer = &paxos.Proposer{Transport: transport, Timeout: cfg.Timeout}
	return c
}

// ID returns the client's unique identity.
func (c *Client) ID() int { return c.id }

// DC returns the client's local datacenter.
func (c *Client) DC() string { return c.dc }

// Protocol returns the configured commit protocol.
func (c *Client) Protocol() Protocol { return c.cfg.Protocol }

// errAllServicesUnavailable reports that no datacenter answered a
// transaction API request.
var errAllServicesUnavailable = errors.New("core: no transaction service reachable")

// sendPreferLocal sends req to the local service first and falls back to the
// other datacenters in order ("If the local Transaction Service is not
// available, the library contacts Transaction Services in other datacenters
// until a response is received", §4). The order is precomputed at NewClient:
// this runs on the per-read hot path, and peer sets are fixed for a client's
// lifetime (cluster topology changes mint new clients).
func (c *Client) sendPreferLocal(ctx context.Context, req network.Message) (network.Message, error) {
	order := c.sendOrder
	timeout := c.cfg.Timeout
	if timeout <= 0 {
		timeout = network.DefaultTimeout
	}
	var lastErr error = errAllServicesUnavailable
	for _, dc := range order {
		cctx, cancel := context.WithTimeout(ctx, timeout)
		resp, err := c.transport.Send(cctx, dc, req)
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		if !resp.OK {
			// Migration refusals (DESIGN.md §15) are definitive for the
			// position being read — every datacenter that has applied the
			// handoff answers identically — so surface them typed instead of
			// shopping the request to the next peer.
			switch resp.Err {
			case ErrMoved:
				return network.Message{}, &MovedError{To: resp.Value, Keys: append([]string(nil), resp.Keys...)}
			case ErrMigrating:
				return network.Message{}, ErrMigratingRange
			}
			lastErr = fmt.Errorf("core: service %s: %s", dc, resp.Err)
			continue
		}
		return resp, nil
	}
	return network.Message{}, lastErr
}

// unresolvedPos marks a transaction whose read position has not been fixed
// yet (lazy read positions; DESIGN.md §9).
const unresolvedPos int64 = -1

// Tx is one active transaction. It buffers writes locally and tracks the
// read set; nothing reaches the datastore until Commit (optimistic
// concurrency control, §2.2). A Tx is not safe for concurrent use.
type Tx struct {
	client  *Client
	group   string
	id      string
	readPos int64 // unresolvedPos until the first read (or commit) fixes it

	reads  map[string]string // key -> value observed (read set + values)
	misses map[string]bool   // keys read as missing (found=false) at the read position
	writes map[string]string // key -> pending value
	done   bool
}

// Begin starts a transaction on the given transaction group. The read
// position (transaction protocol step 1) is obtained lazily: it piggybacks
// on the transaction's first read, or — for transactions that commit writes
// without ever reading — is fetched at commit time. Begin itself sends no
// messages, so a transaction that is begun and aborted (or a read-only
// transaction that never reads) costs nothing on the wire. Service
// unavailability therefore surfaces at the first read or at commit, not
// here.
func (c *Client) Begin(ctx context.Context, group string) (*Tx, error) {
	return c.newTx(group, unresolvedPos), nil
}

// BeginAt starts a transaction that reads at an explicit log position — a
// snapshot read of the state as of pos. The transaction behaves exactly
// like one that began when pos was current: read-only use always succeeds
// (if the versions have not been compacted away); committing writes makes
// the transaction compete from position pos+1, so under basic Paxos it
// loses to anything committed since, while Paxos-CP promotes it past
// non-conflicting successors.
func (c *Client) BeginAt(ctx context.Context, group string, pos int64) (*Tx, error) {
	if pos < 0 {
		return nil, fmt.Errorf("core: begin at negative position %d", pos)
	}
	return c.newTx(group, pos), nil
}

func (c *Client) newTx(group string, readPos int64) *Tx {
	seq := c.txnSeq.Add(1)
	// Transaction IDs are minted per transaction on the commit hot path, so
	// build them with one append+convert instead of fmt.Sprintf
	// (TestTxnIDAllocs guards the technique).
	var buf [32]byte
	id := c.txnPrefix + string(strconv.AppendInt(buf[:0], seq, 10))
	return &Tx{
		client:  c,
		group:   group,
		id:      id,
		readPos: readPos,
		reads:   make(map[string]string),
		writes:  make(map[string]string),
	}
}

// ID returns the transaction's unique identifier.
func (t *Tx) ID() string { return t.id }

// ReadPos returns the log position the transaction reads at, or -1 while
// the position is still unresolved (no read has happened yet; lazy read
// positions fix it on first contact with a service).
func (t *Tx) ReadPos() int64 { return t.readPos }

// resolved reports whether the transaction's read position has been fixed.
func (t *Tx) resolved() bool { return t.readPos != unresolvedPos }

// resolveReadPos fixes the transaction's read position if it is still
// unresolved: the explicit readpos round trip of transaction protocol step
// 1, used only when no read ever piggybacked the resolution (write-only
// transactions at commit time).
func (t *Tx) resolveReadPos(ctx context.Context) error {
	if t.resolved() {
		return nil
	}
	resp, err := t.client.sendPreferLocal(ctx, network.Message{Kind: network.KindReadPos, Group: t.group})
	if err != nil {
		return fmt.Errorf("core: read position: %w", err)
	}
	t.readPos = resp.TS
	return nil
}

// errTxDone reports use of a finished transaction.
var errTxDone = errors.New("core: transaction already finished")

// Read returns the value of key. A key written earlier in this transaction
// returns the written value (property A1); otherwise the read is served at
// the transaction's read position (property A2). A key that has never been
// written reads as the empty string with found=false.
//
// The transaction's first read also resolves its read position: the request
// carries network.ResolvePos and the service serves the read at its applied
// watermark, returning that position in the reply — the readpos round trip
// that Begin used to spend is folded into this message (DESIGN.md §9).
func (t *Tx) Read(ctx context.Context, key string) (string, bool, error) {
	if t.done {
		return "", false, errTxDone
	}
	if v, ok := t.writes[key]; ok {
		return v, true, nil
	}
	if v, ok := t.reads[key]; ok {
		// Repeated read within the transaction: same position, same value
		// (and the same found-ness — a key read as missing stays missing).
		return v, !t.misses[key], nil
	}
	ts := t.readPos // unresolvedPos == network.ResolvePos on the wire
	resp, err := t.client.sendPreferLocal(ctx, network.Message{
		Kind: network.KindRead, Group: t.group, Key: key, TS: ts,
	})
	if err != nil {
		return "", false, fmt.Errorf("core: read %q: %w", key, err)
	}
	if !t.resolved() {
		t.readPos = resp.TS
	}
	val := ""
	if resp.Found {
		val = resp.Value
	}
	t.reads[key] = val
	if !resp.Found {
		t.markMiss(key)
	}
	return val, resp.Found, nil
}

// markMiss records that key was read as missing at the read position.
func (t *Tx) markMiss(key string) {
	if t.misses == nil {
		t.misses = make(map[string]bool)
	}
	t.misses[key] = true
}

// ReadMulti reads many keys in one round trip, all served at the
// transaction's read position (one snapshot). Results are returned parallel
// to keys, with the same per-key semantics as Read: keys written earlier in
// the transaction return the buffered value (A1), keys already read repeat
// their observed value, and only the remainder goes on the wire as a single
// KindReadMulti request whose server side does one watermark check and one
// multi-key store pass. Like the first Read, the first ReadMulti of a
// transaction also resolves its read position.
func (t *Tx) ReadMulti(ctx context.Context, keys ...string) ([]string, []bool, error) {
	if t.done {
		return nil, nil, errTxDone
	}
	vals := make([]string, len(keys))
	found := make([]bool, len(keys))
	var fetch []string                  // deduplicated keys that must go to the service
	var slotOf map[string]int           // key -> slot in fetch, built on first miss
	fetchSlot := make([]int, len(keys)) // result index -> fetch slot (-1 = satisfied locally)
	for i, key := range keys {
		fetchSlot[i] = -1
		if v, ok := t.writes[key]; ok {
			vals[i], found[i] = v, true
			continue
		}
		if v, ok := t.reads[key]; ok {
			vals[i], found[i] = v, !t.misses[key]
			continue
		}
		if slotOf == nil {
			slotOf = make(map[string]int)
		}
		slot, dup := slotOf[key]
		if !dup {
			slot = len(fetch)
			slotOf[key] = slot
			fetch = append(fetch, key)
		}
		fetchSlot[i] = slot
	}
	if len(fetch) == 0 {
		return vals, found, nil
	}
	resp, err := t.client.sendPreferLocal(ctx, network.Message{
		Kind: network.KindReadMulti, Group: t.group, Keys: fetch, TS: t.readPos,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: read %d keys: %w", len(fetch), err)
	}
	if len(resp.Vals) != len(fetch) || len(resp.Founds) != len(fetch) {
		return nil, nil, fmt.Errorf("core: readmulti reply shape: %d keys, %d vals, %d founds",
			len(fetch), len(resp.Vals), len(resp.Founds))
	}
	if !t.resolved() {
		t.readPos = resp.TS
	}
	for fi, key := range fetch {
		val := ""
		if resp.Founds[fi] {
			val = resp.Vals[fi]
		} else {
			t.markMiss(key)
		}
		t.reads[key] = val
	}
	for i, slot := range fetchSlot {
		if slot < 0 {
			continue
		}
		if resp.Founds[slot] {
			vals[i], found[i] = resp.Vals[slot], true
		}
	}
	return vals, found, nil
}

// Write buffers (key, value); it is applied only if the transaction commits.
func (t *Tx) Write(key, value string) error {
	if t.done {
		return errTxDone
	}
	t.writes[key] = value
	return nil
}

// Abort abandons the transaction. Volatile state is dropped; nothing was
// ever sent to the datastore.
func (t *Tx) Abort() {
	t.done = true
}

// CommitResult reports the outcome of Commit.
type CommitResult struct {
	// Status is Committed, Aborted (lost to a conflicting transaction), or
	// Failed (could not complete the protocol — e.g. no majority reachable).
	Status stats.Outcome
	// Pos is the log position the transaction committed at (Committed only).
	Pos int64
	// Round is the promotion round the transaction resolved in (always 0
	// under the basic protocol).
	Round int
	// Combined reports whether the transaction shared its log position with
	// others (Paxos-CP combination).
	Combined bool
	// Epoch is the master epoch the transaction committed under (Master
	// protocol with fencing on; 0 otherwise). See DESIGN.md §11.
	Epoch int64
	// Latency is the wall-clock duration of the commit call.
	Latency time.Duration
}

// Commit tries to commit the transaction (transaction protocol step 4).
// Read-only transactions commit immediately with no messaging (§2.2). The
// outcome is recorded with the client's Collector when one is attached.
func (t *Tx) Commit(ctx context.Context) (CommitResult, error) {
	if t.done {
		return CommitResult{}, errTxDone
	}
	t.done = true
	start := time.Now()

	var res CommitResult
	var err error
	if len(t.writes) == 0 {
		// Read-only transactions commit with no messaging (§2.2); they
		// serialize immediately after their read position. A transaction
		// that never read either has no position to resolve — it observed
		// nothing and commits trivially at the log origin.
		pos := t.readPos
		if !t.resolved() {
			pos = 0
		}
		res = CommitResult{Status: stats.Committed, Pos: pos}
	} else if err = t.resolveReadPos(ctx); err != nil {
		// A write-only transaction reaches commit with its read position
		// still unresolved; fetch it now (the one readpos round trip lazy
		// Begin deferred).
		res = CommitResult{Status: stats.Failed}
	} else {
		switch t.client.cfg.Protocol {
		case CP:
			res, err = t.client.commitCP(ctx, t)
		case Master:
			res, err = t.client.commitMaster(ctx, t)
		default:
			res, err = t.client.commitBasic(ctx, t)
		}
	}
	res.Latency = time.Since(start)

	if c := t.client.Collector; c != nil {
		c.Record(stats.Sample{
			Outcome:  res.Status,
			Round:    res.Round,
			Latency:  res.Latency,
			Origin:   t.client.dc,
			Combined: res.Combined,
		})
	}
	if res.Status == stats.Committed && t.client.OnCommit != nil {
		readPos := t.readPos
		if !t.resolved() {
			readPos = res.Pos // never-read transaction: trivial origin position
		}
		t.client.OnCommit(res.Pos, CommittedTxn{
			ID:       t.id,
			Group:    t.group,
			Origin:   t.client.dc,
			ReadPos:  readPos,
			Pos:      res.Pos,
			Reads:    cloneMap(t.reads),
			Writes:   cloneMap(t.writes),
			Round:    res.Round,
			Combined: res.Combined,
			Epoch:    res.Epoch,
		})
	}
	return res, err
}

// readSetKeys returns the transaction's read set: keys read that were not
// first written inside the transaction (property A1 keeps those out).
func (t *Tx) readSetKeys() []string {
	keys := make([]string, 0, len(t.reads))
	for k := range t.reads {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func cloneMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
