package core

import (
	"context"
	"sort"

	"paxoscp/internal/paxos"
	"paxoscp/internal/stats"
	"paxoscp/internal/wal"
)

// This file implements Paxos-CP (§5): the enhancedFindWinningVal value
// selection (Algorithm 2 lines 76–87) with its combination search, and the
// promotion loop around the shared instance runner.

// commitCP runs the Paxos-CP commit protocol. The client competes for the
// commit position read position + 1; when it loses a position to
// non-conflicting transactions it is promoted to compete for the next one
// ("it can try to win log position k+1 so long as doing so will not violate
// one-copy serializability").
func (c *Client) commitCP(ctx context.Context, t *Tx) (CommitResult, error) {
	txn := t.walTxn()
	pos := t.readPos + 1
	round := 0
	for {
		decided, err := c.runInstance(ctx, t.group, pos, txn, c.chooseCP, true)
		if err != nil {
			return CommitResult{Status: stats.Failed, Round: round}, err
		}
		if decided.Contains(txn.ID) {
			return CommitResult{
				Status:   stats.Committed,
				Pos:      pos,
				Round:    round,
				Combined: len(decided.Txns) > 1,
			}, nil
		}
		// Lost the position. Promotion is allowed only when the winners do
		// not invalidate this transaction's reads: "If the client's
		// transaction does not read any value that was written by the
		// winning transactions for log position k, the client begins Step 1
		// of the commit protocol for log position k+1 with its own value."
		if c.cfg.DisablePromotion {
			return CommitResult{Status: stats.Aborted, Round: round}, nil
		}
		if txn.ReadsAny(decided.WriteKeys()) {
			return CommitResult{Status: stats.Aborted, Round: round}, nil
		}
		if c.cfg.MaxPromotions > 0 && round >= c.cfg.MaxPromotions {
			return CommitResult{Status: stats.Aborted, Round: round}, nil
		}
		pos++
		round++
	}
}

// chooseCP is enhancedFindWinningVal (Algorithm 2 lines 76–87). Let
// maxVotes be the vote count of the most-voted value among the responses:
//
//   - If maxVotes + (D − |responseSet|) ≤ ⌊D/2⌋, no value can have reached a
//     majority, so the client is free to propose any value: it combines its
//     own transaction with the non-conflicting voted transactions.
//   - If maxVotes > ⌊D/2⌋ and the client's transaction is not part of that
//     value, another value has already won; the client proposes the winner
//     to drive the instance to its decision (the promotion check then runs
//     against the actual decided entry in commitCP).
//   - Otherwise it reverts to the basic findWinningVal rule.
func (c *Client) chooseCP(prep paxos.PrepareOutcome, own wal.Entry) []byte {
	maxVal, maxVotes := mostVotedValue(prep.Votes)
	d := prep.D
	responses := len(prep.Votes)

	if maxVotes+(d-responses) <= d/2 {
		// No winning value is possible yet, so combine.
		if c.cfg.DisableCombination {
			return wal.Encode(own)
		}
		return wal.Encode(c.combine(own, prep.Votes))
	}
	if maxVotes > d/2 {
		if decided, err := wal.Decode(maxVal); err == nil && !decided.Contains(own.Txns[0].ID) {
			// Another value has already won; drive it to decision and try
			// for promotion afterwards.
			return maxVal
		}
	}
	return c.chooseBasic(prep, own)
}

// mostVotedValue tallies the non-null votes by value identity and returns
// the most-voted encoded value with its count.
func mostVotedValue(votes []paxos.Vote) ([]byte, int) {
	counts := make(map[string]int)
	var best []byte
	bestN := 0
	for _, v := range votes {
		if v.IsNull() {
			continue
		}
		k := string(v.Value)
		counts[k]++
		if counts[k] > bestN {
			bestN = counts[k]
			best = v.Value
		}
	}
	return best, bestN
}

// combine builds the combined log entry: the client's own transaction first,
// followed by the longest list of already-voted transactions whose list
// order is one-copy serializable ("no transaction in the list reads a value
// written by any preceding transaction in the list"). With few candidates
// the search is exhaustive over every subset in every order, exactly as §5
// describes; beyond CombineLimit candidates it switches to the greedy
// single pass §5 suggests.
func (c *Client) combine(own wal.Entry, votes []paxos.Vote) wal.Entry {
	candidates := candidateTxns(own, votes)
	if len(candidates) == 0 {
		return own
	}
	if len(candidates) <= c.cfg.combineLimit() {
		return combineExhaustive(own, candidates)
	}
	return combineGreedy(own, candidates)
}

// candidateTxns extracts the distinct transactions present in the votes,
// excluding the client's own and any no-op fill, in deterministic order.
func candidateTxns(own wal.Entry, votes []paxos.Vote) []wal.Txn {
	seen := make(map[string]bool)
	for _, t := range own.Txns {
		seen[t.ID] = true
	}
	var out []wal.Txn
	for _, v := range votes {
		if v.IsNull() {
			continue
		}
		entry, err := wal.Decode(v.Value)
		if err != nil {
			continue
		}
		for _, t := range entry.Txns {
			if !seen[t.ID] {
				seen[t.ID] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// combineExhaustive finds the maximum-length serializable list
// [own..., subset-permutation...] by trying every subset of the candidates
// in every order. Candidate counts are capped by CombineLimit (default 4),
// so the worst case is 2^4 subsets × 4! orders.
func combineExhaustive(own wal.Entry, candidates []wal.Txn) wal.Entry {
	n := len(candidates)
	best := own.Clone()
	// Enumerate subsets by descending size so the first serializable
	// permutation of the largest workable subset wins.
	type subset struct {
		mask int
		size int
	}
	subsets := make([]subset, 0, 1<<n)
	for mask := 1; mask < 1<<n; mask++ {
		size := 0
		for m := mask; m != 0; m >>= 1 {
			size += m & 1
		}
		subsets = append(subsets, subset{mask, size})
	}
	sort.Slice(subsets, func(i, j int) bool { return subsets[i].size > subsets[j].size })

	bestExtra := 0
	for _, sub := range subsets {
		if sub.size <= bestExtra {
			break // remaining subsets are no larger
		}
		var chosen []wal.Txn
		for i := 0; i < n; i++ {
			if sub.mask&(1<<i) != 0 {
				chosen = append(chosen, candidates[i])
			}
		}
		if perm, ok := findSerializableOrder(own, chosen); ok {
			best = perm
			bestExtra = sub.size
		}
	}
	return best
}

// findSerializableOrder tries every permutation of txns appended after own
// and returns the first whose order is serializable.
func findSerializableOrder(own wal.Entry, txns []wal.Txn) (wal.Entry, bool) {
	var found wal.Entry
	ok := false
	permute(txns, func(perm []wal.Txn) bool {
		e := own.Clone()
		e.Txns = append(e.Txns, perm...)
		if e.SerializableOrder() {
			found = e
			ok = true
			return true
		}
		return false
	})
	return found, ok
}

// permute invokes fn with each permutation of txns (Heap's algorithm) until
// fn returns true.
func permute(txns []wal.Txn, fn func([]wal.Txn) bool) bool {
	work := append([]wal.Txn(nil), txns...)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == 1 {
			return fn(work)
		}
		for i := 0; i < k; i++ {
			if rec(k - 1) {
				return true
			}
			if k%2 == 0 {
				work[i], work[k-1] = work[k-1], work[i]
			} else {
				work[0], work[k-1] = work[k-1], work[0]
			}
		}
		return false
	}
	if len(work) == 0 {
		return fn(work)
	}
	return rec(len(work))
}

// combineGreedy makes one pass over the candidates, appending each
// transaction that keeps the list order serializable.
func combineGreedy(own wal.Entry, candidates []wal.Txn) wal.Entry {
	e := own.Clone()
	for _, t := range candidates {
		trial := e.Clone()
		trial.Txns = append(trial.Txns, t.Clone())
		if trial.SerializableOrder() {
			e = trial
		}
	}
	return e
}
