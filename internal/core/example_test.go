package core_test

import (
	"context"
	"fmt"
	"time"

	"paxoscp/internal/cluster"
	"paxoscp/internal/core"
	"paxoscp/internal/network"
)

// Example shows the complete lifecycle: build a three-datacenter cluster,
// run a read-modify-write transaction with Paxos-CP, and read the result.
func Example() {
	c := cluster.New(cluster.Config{
		Topology:  cluster.MustPaperTopology("VVV"),
		NetConfig: network.SimConfig{Seed: 1, Scale: 0.002},
		Timeout:   200 * time.Millisecond,
	})
	defer c.Close()
	ctx := context.Background()

	client := c.NewClient("V1", core.Config{Protocol: core.CP})

	tx, err := client.Begin(ctx, "accounts")
	if err != nil {
		fmt.Println("begin:", err)
		return
	}
	tx.Write("alice", "100")
	res, err := tx.Commit(ctx)
	if err != nil {
		fmt.Println("commit:", err)
		return
	}
	fmt.Println("committed at position", res.Pos)

	tx2, _ := client.Begin(ctx, "accounts")
	v, _, _ := tx2.Read(ctx, "alice")
	tx2.Abort()
	fmt.Println("alice =", v)
	// Output:
	// committed at position 1
	// alice = 100
}

// ExampleClient_BeginAt demonstrates snapshot reads at an older log
// position.
func ExampleClient_BeginAt() {
	c := cluster.New(cluster.Config{
		Topology:  cluster.MustPaperTopology("VVV"),
		NetConfig: network.SimConfig{Seed: 1, Scale: 0.002},
		Timeout:   200 * time.Millisecond,
	})
	defer c.Close()
	ctx := context.Background()
	client := c.NewClient("V1", core.Config{Protocol: core.CP})

	for _, v := range []string{"one", "two", "three"} {
		tx, _ := client.Begin(ctx, "g")
		tx.Write("k", v)
		tx.Commit(ctx)
	}

	// Read the state as of log position 2.
	tx, _ := client.BeginAt(ctx, "g", 2)
	v, _, _ := tx.Read(ctx, "k")
	tx.Abort()
	fmt.Println("k at position 2 =", v)
	// Output:
	// k at position 2 = two
}

// ExampleService_Status shows the operator status surface.
func ExampleService_Status() {
	c := cluster.New(cluster.Config{
		Topology:  cluster.MustPaperTopology("VV"),
		NetConfig: network.SimConfig{Seed: 1, Scale: 0.002},
		Timeout:   200 * time.Millisecond,
	})
	defer c.Close()
	ctx := context.Background()
	client := c.NewClient("V1", core.Config{})
	tx, _ := client.Begin(ctx, "g")
	tx.Write("k", "v")
	tx.Commit(ctx)

	st := c.Service("V1").Status("g")
	fmt.Printf("applied=%d logEntries=%d dataKeys=%d\n",
		st.LastApplied, st.LogEntries, st.DataKeys)
	// Output:
	// applied=1 logEntries=1 dataKeys=1
}
