package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/network"
	"paxoscp/internal/stats"
)

// udpCluster runs three full Transaction Services over the real UDP
// transport on localhost — the same wiring cmd/txkvd uses — and returns
// client transports. This exercises the protocols over actual datagrams:
// binary wire codec, correlation, concurrent sockets.
type udpCluster struct {
	services   map[string]*Service
	transports map[string]*network.UDP
	clients    []*network.UDP
	mu         sync.Mutex
}

func newUDPCluster(t *testing.T, dcs ...string) *udpCluster {
	t.Helper()
	uc := &udpCluster{
		services:   make(map[string]*Service),
		transports: make(map[string]*network.UDP),
	}
	t.Cleanup(func() {
		uc.mu.Lock()
		defer uc.mu.Unlock()
		for _, tr := range uc.transports {
			tr.Close()
		}
		for _, tr := range uc.clients {
			tr.Close()
		}
	})
	// Bind every service on an ephemeral port first, then exchange peers.
	// The handler closure reads uc.services under the lock because the UDP
	// read loop starts before the services map is fully populated.
	for _, dc := range dcs {
		dc := dc
		tr, err := network.NewUDP(dc, "127.0.0.1:0", nil, func(from string, req network.Message) network.Message {
			uc.mu.Lock()
			svc := uc.services[dc]
			uc.mu.Unlock()
			if svc == nil {
				return network.Status(false, "service not ready")
			}
			return svc.Handler()(from, req)
		})
		if err != nil {
			t.Fatal(err)
		}
		uc.transports[dc] = tr
	}
	for _, a := range dcs {
		for _, b := range dcs {
			if err := uc.transports[a].SetPeer(b, uc.transports[b].LocalAddr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	uc.mu.Lock()
	for _, dc := range dcs {
		uc.services[dc] = NewService(dc, kvstore.New(), uc.transports[dc],
			WithServiceTimeout(500*time.Millisecond))
	}
	uc.mu.Unlock()
	return uc
}

// client creates a Transaction Client homed at dc with its own UDP socket.
func (uc *udpCluster) client(t *testing.T, id int, dc string, cfg Config) *Client {
	t.Helper()
	name := fmt.Sprintf("%s-client-%d", dc, id)
	tr, err := network.NewUDP(name, "127.0.0.1:0", nil, func(string, network.Message) network.Message {
		return network.Status(false, "client endpoint")
	})
	if err != nil {
		t.Fatal(err)
	}
	uc.mu.Lock()
	uc.clients = append(uc.clients, tr)
	for peer, ptr := range uc.transports {
		if err := tr.SetPeer(peer, ptr.LocalAddr()); err != nil {
			uc.mu.Unlock()
			t.Fatal(err)
		}
	}
	uc.mu.Unlock()
	if cfg.Timeout == 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	return NewClient(id, dc, tr, cfg)
}

func TestUDPEndToEndCommit(t *testing.T) {
	uc := newUDPCluster(t, "V1", "V2", "V3")
	ctx := context.Background()
	cl := uc.client(t, 1, "V1", Config{Protocol: CP})

	tx, err := cl.Begin(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	tx.Write("k", "over-udp")
	res, err := tx.Commit(ctx)
	if err != nil || res.Status != stats.Committed {
		t.Fatalf("commit over UDP: %+v %v", res, err)
	}

	// Visible via a different datacenter's client.
	cl2 := uc.client(t, 2, "V3", Config{})
	tx2, err := cl2.Begin(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	v, found, err := tx2.Read(ctx, "k")
	if err != nil || !found || v != "over-udp" {
		t.Fatalf("read over UDP = (%q,%v,%v)", v, found, err)
	}
	tx2.Abort()
}

func TestUDPEndToEndConcurrentClients(t *testing.T) {
	uc := newUDPCluster(t, "V1", "V2", "V3")
	ctx := context.Background()

	const n = 6
	results := make([]CommitResult, n)
	var wg sync.WaitGroup
	dcs := []string{"V1", "V2", "V3"}
	for i := 0; i < n; i++ {
		cl := uc.client(t, i+10, dcs[i%3], Config{Protocol: CP, Seed: int64(i + 1)})
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			tx, err := cl.Begin(ctx, "g")
			if err != nil {
				t.Errorf("begin %d: %v", i, err)
				return
			}
			tx.Write(fmt.Sprintf("key-%d", i), "v")
			res, err := tx.Commit(ctx)
			if err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
			results[i] = res
		}(i, cl)
	}
	wg.Wait()

	commits := 0
	for _, r := range results {
		if r.Status == stats.Committed {
			commits++
		}
	}
	// Disjoint write sets under CP: every transaction must commit.
	if commits != n {
		t.Fatalf("%d of %d non-conflicting CP transactions committed over UDP", commits, n)
	}
	// All service logs must agree after quiescing.
	for _, dc := range dcs {
		if err := uc.services[dc].Recover(ctx, "g"); err != nil {
			t.Fatalf("recover %s: %v", dc, err)
		}
	}
	ref := uc.services["V1"].LogSnapshot("g")
	for _, dc := range dcs[1:] {
		snap := uc.services[dc].LogSnapshot("g")
		if len(snap) != len(ref) {
			t.Fatalf("%s log has %d entries, V1 has %d", dc, len(snap), len(ref))
		}
	}
}

func TestUDPEndToEndDeadServiceFallback(t *testing.T) {
	uc := newUDPCluster(t, "V1", "V2", "V3")
	ctx := context.Background()

	// Seed through V1.
	cl := uc.client(t, 1, "V1", Config{})
	tx, err := cl.Begin(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	tx.Write("k", "v")
	if res, err := tx.Commit(ctx); err != nil || res.Status != stats.Committed {
		t.Fatalf("seed: %+v %v", res, err)
	}

	// Kill V2's socket; a V2-homed client must fall back to other services.
	uc.transports["V2"].Close()
	cl2 := uc.client(t, 2, "V2", Config{Timeout: 300 * time.Millisecond})
	tx2, err := cl2.Begin(ctx, "g")
	if err != nil {
		t.Fatalf("begin with dead local service: %v", err)
	}
	v, found, err := tx2.Read(ctx, "k")
	if err != nil || !found || v != "v" {
		t.Fatalf("fallback read = (%q,%v,%v)", v, found, err)
	}
	tx2.Abort()
}
