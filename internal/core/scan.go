package core

import (
	"sort"
	"strings"
	"time"

	"paxoscp/internal/network"
	"paxoscp/internal/replog"
)

// Ordered range scans (DESIGN.md §16): the service-side page handler. A scan
// is a sequence of KindScan requests at one pinned log position; each request
// returns one page of the prefix's rows in key order plus a resume cursor.
// Nothing is held between pages — the snapshot guarantee comes from the pin
// (PinReads clamps the compaction horizon under it) and the position-aware
// migration fence (ScanFenceAt freezes the handoff view at the pin, so every
// page of the sequence applies identical moved/pending rules even as later
// cutovers apply).

const (
	// scanDefaultPageRows is the page size served when the request leaves
	// Pos at 0; scanMaxPageRows caps what a client may ask for, bounding
	// reply size.
	scanDefaultPageRows = 256
	scanMaxPageRows     = 1024

	// scanExamineBudget caps how many ordered-index rows one request walks
	// before replying with a progress cursor. Under an active migration
	// fence most examined rows of a page can be skipped (moved out or
	// inbound-pending); the budget keeps a single request's cost bounded
	// anyway. A budget-bounded reply may carry fewer rows than the page —
	// even zero — with the cursor advanced; the client just asks again.
	scanExamineBudget = 2048

	// scanPinFactor scales the service timeout into the read-pin TTL: long
	// enough that a client paging at normal round-trip cadence never loses
	// its snapshot to compaction, short enough that an abandoned scan
	// delays compaction by seconds, not forever. Every page re-pins, so a
	// live scan's pin never expires between pages.
	scanPinFactor = 8
)

// scanPinTTL is the read-pin TTL scan-style handlers register their pinned
// position with (also the backfill's range-snapshot pages).
func scanPinTTL(timeout time.Duration) time.Duration {
	return time.Duration(scanPinFactor) * timeout
}

// handleScan serves one page of an ordered prefix scan (wire contract in
// network.KindScan's doc). The pin is registered before the compaction check,
// which makes the handshake race-free: either the pin lands before any future
// compaction clamps its horizon, or compaction already passed the position
// and the CompactedTo refusal tells the client to restart at a fresh pin.
func (s *Service) handleScan(req network.Message) network.Message {
	ts, err := s.resolveReadTS(req.Group, req.TS)
	if err != nil {
		return network.Status(false, err.Error())
	}
	lg := s.log(req.Group)
	lg.PinReads(ts, scanPinTTL(s.timeout))
	if lg.CompactedTo() > ts {
		return network.Status(false, errCompacted)
	}

	limit := int(req.Pos)
	if limit <= 0 {
		limit = scanDefaultPageRows
	}
	if limit > scanMaxPageRows {
		limit = scanMaxPageRows
	}

	fence := lg.ScanFenceAt(ts)
	active := fence.Active()
	prefix := replog.DataPrefix(req.Group)
	region := prefix + req.Value // the user prefix, inside the data region
	after := ""
	if req.Found {
		after = prefix + req.Key // resume after the cursor
	}

	resp := network.Message{
		Kind: network.KindValue, OK: true, TS: ts,
		Combined: active && fence.HasPending(),
	}
	// dests collects the destinations of rows this page skipped as departed:
	// a hint means "a row of your prefix lives over there", so the client
	// must merge that group's pages — and may insist its leg there observes
	// the migration (KV.Scan does both). Hinting only observed destinations,
	// not every departed range, keeps steady-state scans from chasing groups
	// that hold nothing of the prefix.
	var dests map[string]bool
	finish := func() network.Message {
		if len(dests) > 0 {
			hints := make([]string, 0, len(dests))
			for d := range dests {
				hints = append(hints, d)
			}
			sort.Strings(hints)
			resp.Value = strings.Join(hints, ",")
		}
		return resp
	}
	examined := 0
	for {
		rows, more, serr := s.store.ScanPrefix(region, after, limit, ts)
		if serr != nil {
			return network.Status(false, serr.Error())
		}
		for _, row := range rows {
			bare := row.Key[len(prefix):]
			examined++
			if active {
				if to, moved := fence.MovedOut(bare); moved {
					// The destination's copy is authoritative from the
					// cutover on; tell the client where this row went.
					if dests == nil {
						dests = make(map[string]bool)
					}
					dests[to] = true
					continue
				}
				if fence.InboundPending(bare) {
					continue // half-copied backfill row; Combined says retry
				}
			}
			resp.Keys = append(resp.Keys, bare)
			resp.Vals = append(resp.Vals, row.Val["v"])
			resp.Founds = append(resp.Founds, active && fence.MovedIn(bare))
			if len(resp.Keys) >= limit {
				resp.Key, resp.Found = bare, true
				return finish()
			}
			if examined >= scanExamineBudget {
				resp.Key, resp.Found = bare, true // progress page
				return finish()
			}
		}
		if !more {
			return finish() // region complete: Found stays false
		}
		if examined >= scanExamineBudget {
			resp.Key, resp.Found = rows[len(rows)-1].Key[len(prefix):], true
			return finish()
		}
		after = rows[len(rows)-1].Key
	}
}
