package core

import (
	"context"
	"testing"
	"time"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/network"
	"paxoscp/internal/stats"
)

// commitWrites commits a write-only transaction and returns its position.
func commitWrites(t *testing.T, cl *Client, group string, writes map[string]string) int64 {
	t.Helper()
	ctx := context.Background()
	tx, err := cl.Begin(ctx, group)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range writes {
		tx.Write(k, v)
	}
	res, err := tx.Commit(ctx)
	if err != nil || res.Status != stats.Committed {
		t.Fatalf("seed commit: %+v %v", res, err)
	}
	return res.Pos
}

// TestLazyReadPositionResolvesOnFirstRead pins the lazy read-position rule:
// Begin sends nothing and leaves the position unresolved; the first read
// resolves it at the serving datacenter's applied watermark, and later reads
// stay at that snapshot.
func TestLazyReadPositionResolvesOnFirstRead(t *testing.T) {
	cl, _ := newRingClient(t, "A", Config{Seed: 1})
	ctx := context.Background()
	commitWrites(t, cl, "g", map[string]string{"k": "old"})

	tx, err := cl.Begin(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	if tx.ReadPos() != -1 {
		t.Fatalf("position resolved at Begin: %d", tx.ReadPos())
	}
	// A commit that lands between Begin and the first read IS visible: the
	// snapshot is taken at first read, not at Begin.
	commitWrites(t, cl, "g", map[string]string{"k": "new"})
	v, found, err := tx.Read(ctx, "k")
	if err != nil || !found || v != "new" {
		t.Fatalf("first read = %q %v %v, want \"new\"", v, found, err)
	}
	if tx.ReadPos() < 2 {
		t.Fatalf("read position %d not resolved to watermark", tx.ReadPos())
	}
	// After resolution the snapshot is fixed: a later commit is invisible.
	pos := tx.ReadPos()
	commitWrites(t, cl, "g", map[string]string{"k": "newer", "other": "x"})
	if v, _, err := tx.Read(ctx, "other"); err != nil || v != "" {
		t.Fatalf("post-snapshot read = %q %v, want unset", v, err)
	}
	if tx.ReadPos() != pos {
		t.Fatalf("read position moved from %d to %d", pos, tx.ReadPos())
	}
}

// TestWriteOnlyTxnResolvesAtCommit: a transaction that never reads fetches
// its read position at commit time and commits normally.
func TestWriteOnlyTxnResolvesAtCommit(t *testing.T) {
	cl, _ := newRingClient(t, "A", Config{Seed: 1})
	ctx := context.Background()
	commitWrites(t, cl, "g", map[string]string{"a": "1"})

	tx, _ := cl.Begin(ctx, "g")
	tx.Write("b", "2")
	res, err := tx.Commit(ctx)
	if err != nil || res.Status != stats.Committed {
		t.Fatalf("commit: %+v %v", res, err)
	}
	if res.Pos != 2 {
		t.Fatalf("committed at %d, want 2", res.Pos)
	}
}

// TestNeverReadReadOnlyTxnCommitsSilently: Begin+Commit with no operations
// must succeed without any messaging.
func TestNeverReadReadOnlyTxnCommitsSilently(t *testing.T) {
	services, sim := newServiceRing(t, "A", "B", "C")
	tr := sim.Endpoint("A", services["A"].Handler())
	cl := NewClient(1, "A", tr, Config{Seed: 1})
	ctx := context.Background()
	sim.ResetCounters()
	tx, _ := cl.Begin(ctx, "g")
	res, err := tx.Commit(ctx)
	if err != nil || res.Status != stats.Committed {
		t.Fatalf("empty commit: %+v %v", res, err)
	}
	if n := sim.Counters().TotalSent(); n != 0 {
		t.Fatalf("empty transaction sent %d messages", n)
	}
}

func TestReadMultiBasics(t *testing.T) {
	cl, _ := newRingClient(t, "A", Config{Seed: 1})
	ctx := context.Background()
	commitWrites(t, cl, "g", map[string]string{"a": "1", "b": "2"})

	tx, _ := cl.Begin(ctx, "g")
	tx.Write("c", "local") // A1: buffered write wins over the store
	vals, found, err := tx.ReadMulti(ctx, "a", "b", "c", "missing", "a")
	if err != nil {
		t.Fatal(err)
	}
	wantVals := []string{"1", "2", "local", "", "1"}
	wantFound := []bool{true, true, true, false, true}
	for i := range wantVals {
		if vals[i] != wantVals[i] || found[i] != wantFound[i] {
			t.Fatalf("slot %d = (%q,%v), want (%q,%v)", i, vals[i], found[i], wantVals[i], wantFound[i])
		}
	}
	// The batch resolved the read position and populated the read cache: a
	// repeated single read must not change values.
	if v, _, err := tx.Read(ctx, "a"); err != nil || v != "1" {
		t.Fatalf("repeat read a = %q %v", v, err)
	}
	if tx.ReadPos() != 1 {
		t.Fatalf("read position = %d, want 1", tx.ReadPos())
	}
}

// TestReadMultiOneSnapshot: every key of a ReadMulti is served at one log
// position even when a concurrent commit lands between two batches.
func TestReadMultiOneSnapshot(t *testing.T) {
	cl, _ := newRingClient(t, "A", Config{Seed: 1})
	ctx := context.Background()
	commitWrites(t, cl, "g", map[string]string{"a": "1", "b": "1"})

	tx, _ := cl.Begin(ctx, "g")
	if vals, _, err := tx.ReadMulti(ctx, "a"); err != nil || vals[0] != "1" {
		t.Fatalf("first batch: %v %v", vals, err)
	}
	commitWrites(t, cl, "g", map[string]string{"a": "2", "b": "2"})
	// The second batch reads at the position the first batch resolved.
	vals, _, err := tx.ReadMulti(ctx, "b")
	if err != nil || vals[0] != "1" {
		t.Fatalf("second batch saw %v %v, want snapshot value \"1\"", vals, err)
	}
}

// TestReadMultiAfterTxDone: finished transactions reject batched reads.
func TestReadMultiAfterTxDone(t *testing.T) {
	cl, _ := newRingClient(t, "A", Config{Seed: 1})
	ctx := context.Background()
	tx, _ := cl.Begin(ctx, "g")
	tx.Abort()
	if _, _, err := tx.ReadMulti(ctx, "a"); err != errTxDone {
		t.Fatalf("err = %v, want errTxDone", err)
	}
}

// TestReadMultiLaggardCatchUp: a multi-key read at a position ahead of the
// serving datacenter's log triggers catch-up (bounded by the service
// timeout) before the batch is served.
func TestReadMultiLaggardCatchUp(t *testing.T) {
	services, sim := newServiceRing(t, "A", "B")
	if err := services["A"].ApplyDecided("g", 1, entryBytes("t1", 0, map[string]string{"a": "1"})); err != nil {
		t.Fatal(err)
	}
	// B never saw position 1; ask it for a batch at position 1 directly.
	tr := sim.Endpoint("B", services["B"].Handler())
	resp := services["B"].Handler()("test", network.Message{
		Kind: network.KindReadMulti, Group: "g", TS: 1, Keys: []string{"a", "z"},
	})
	_ = tr
	if !resp.OK {
		t.Fatalf("laggard readmulti failed: %s", resp.Err)
	}
	if len(resp.Vals) != 2 || resp.Vals[0] != "1" || !resp.Founds[0] || resp.Founds[1] {
		t.Fatalf("laggard readmulti = %+v", resp)
	}
	if services["B"].LastApplied("g") != 1 {
		t.Fatalf("B did not catch up: applied=%d", services["B"].LastApplied("g"))
	}
}

// TestTxnIDAllocs guards the allocation-light transaction-ID construction
// in newTx (the fmt.Sprintf it replaced cost 4+ allocations per call).
func TestTxnIDAllocs(t *testing.T) {
	cl := NewClient(3, "V1", nil, Config{})
	if n := testing.AllocsPerRun(200, func() { _ = cl.newTx("g", 0) }); n > 5 {
		t.Fatalf("newTx allocates %v times per call", n)
	}
	// Format is unchanged from the seed: "<dc>-<clientID>-<seq>".
	cl2 := NewClient(3, "V1", nil, Config{})
	tx := cl2.newTx("g", 0)
	if tx.id != "V1-3-1" {
		t.Fatalf("transaction ID = %q, want V1-3-1", tx.id)
	}
	if next := cl2.newTx("g", 0); next.id != "V1-3-2" {
		t.Fatalf("transaction ID sequence = %q, want V1-3-2", next.id)
	}
}

// TestRepeatedMissingReadStaysMissing: a key read as missing must stay
// found=false on repeated reads (single or batched) within the transaction —
// the read cache must not launder a miss into an empty-string hit.
func TestRepeatedMissingReadStaysMissing(t *testing.T) {
	cl, _ := newRingClient(t, "A", Config{Seed: 1})
	ctx := context.Background()
	commitWrites(t, cl, "g", map[string]string{"present": "x"})

	tx, _ := cl.Begin(ctx, "g")
	if _, found, err := tx.Read(ctx, "ghost"); err != nil || found {
		t.Fatalf("first read: found=%v err=%v", found, err)
	}
	if _, found, err := tx.Read(ctx, "ghost"); err != nil || found {
		t.Fatalf("repeated read laundered the miss: found=%v err=%v", found, err)
	}
	vals, founds, err := tx.ReadMulti(ctx, "ghost", "present", "ghost2")
	if err != nil {
		t.Fatal(err)
	}
	if founds[0] || vals[0] != "" || !founds[1] || founds[2] {
		t.Fatalf("batch = %v %v", vals, founds)
	}
	// And the batch's own miss stays missing on a later single read.
	if _, found, err := tx.Read(ctx, "ghost2"); err != nil || found {
		t.Fatalf("batched miss laundered: found=%v err=%v", found, err)
	}
}

// TestReadMultiCatchUpBoundedUnderStalledPeers closes the PR 3 gap note: a
// multi-key read at a position ahead of the local log triggers catch-up, and
// that catch-up must run under the service-timeout-bounded context — with
// every peer stalled (partitioned), the handler returns a failure within a
// small multiple of the service timeout instead of hanging its goroutine on
// the unreachable peers.
func TestReadMultiCatchUpBoundedUnderStalledPeers(t *testing.T) {
	const timeout = 60 * time.Millisecond
	topo := network.NewTopology("A", "B", "C")
	sim := network.NewSim(topo, network.SimConfig{Seed: 5})
	t.Cleanup(sim.Close)
	services := make(map[string]*Service, 3)
	for _, dc := range []string{"A", "B", "C"} {
		dc := dc
		ep := sim.Endpoint(dc, func(from string, req network.Message) network.Message {
			return services[dc].Handler()(from, req)
		})
		services[dc] = NewService(dc, kvstore.New(), ep, WithServiceTimeout(timeout))
		t.Cleanup(services[dc].Close)
	}

	// Stall every peer of A, then ask A to serve a multi-key read at a
	// position it does not have: the catch-up inside resolveReadTS cannot
	// make progress and must give up at the timeout.
	sim.Partition("A", "B")
	sim.Partition("A", "C")
	start := time.Now()
	resp := services["A"].Handler()("B", network.Message{
		Kind: network.KindReadMulti, Group: "g", Keys: []string{"x", "y"}, TS: 40,
	})
	elapsed := time.Since(start)
	if resp.OK {
		t.Fatalf("read at unreachable position served: %+v", resp)
	}
	// One timeout bounds the catch-up context; allow generous scheduling
	// slack but fail long before a per-peer-timeout pile-up (the bug this
	// guards against made the handler wait one timeout per peer per missing
	// position — 2 peers x 40 positions here).
	if elapsed > 4*timeout {
		t.Fatalf("stalled-peer catch-up held the read handler %v (service timeout %v)", elapsed, timeout)
	}

	// The same read with TS=ResolvePos never needs catch-up and still
	// serves locally while the peers are stalled.
	resp = services["A"].Handler()("B", network.Message{
		Kind: network.KindReadMulti, Group: "g", Keys: []string{"x"}, TS: network.ResolvePos,
	})
	if !resp.OK || resp.TS != 0 || len(resp.Founds) != 1 || resp.Founds[0] {
		t.Fatalf("watermark read under stalled peers = %+v", resp)
	}
}
