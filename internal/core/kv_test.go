package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"paxoscp/internal/network"
	"paxoscp/internal/stats"
)

// mapRouter is a fixed key->group table with a default group: tests control
// exactly which fan-out leg every key lands on.
type mapRouter struct {
	byKey  map[string]string
	def    string
	groups []string
}

func (r *mapRouter) GroupFor(key string) string {
	if g, ok := r.byKey[key]; ok {
		return g
	}
	return r.def
}

func (r *mapRouter) Groups() []string { return r.groups }

// newKVHarness builds a 3-DC ring plus a routed KV facade homed at "A",
// with the given router.
func newKVHarness(t *testing.T, router Router) (*KV, map[string]*Service) {
	t.Helper()
	cl, services := newRingClient(t, "A", Config{Seed: 1})
	return NewKV(cl, router), services
}

var kvDCs = []string{"A", "B", "C"}

// TestKVReadMultiMergeOrder: keys interleaved across three groups (with a
// duplicate) come back in input order with the right values, regardless of
// which group's leg answered first.
func TestKVReadMultiMergeOrder(t *testing.T) {
	router := &mapRouter{
		byKey: map[string]string{
			"a1": "g0", "a2": "g0",
			"b1": "g1",
			"c1": "g2", "c2": "g2",
		},
		def:    "g0",
		groups: []string{"g0", "g1", "g2"},
	}
	kv, services := newKVHarness(t, router)
	ctx := context.Background()

	// Seed each group with its keys at position 1 (value = "<key>-val").
	for _, g := range []string{"g0", "g1", "g2"} {
		writes := map[string]string{}
		for k, grp := range router.byKey {
			if grp == g {
				writes[k] = k + "-val"
			}
		}
		b := entryBytes("seed-"+g, 0, writes)
		for _, dc := range kvDCs {
			if err := services[dc].ApplyDecided(g, 1, b); err != nil {
				t.Fatal(err)
			}
		}
	}

	keys := []string{"c1", "a1", "b1", "a2", "c2", "a1", "missing"}
	res, err := kv.ReadMulti(ctx, keys...)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if k == "missing" {
			if res.Founds[i] {
				t.Errorf("slot %d (%q): found=true for a never-written key", i, k)
			}
			continue
		}
		if !res.Founds[i] || res.Vals[i] != k+"-val" {
			t.Errorf("slot %d (%q) = (%q, %v), want (%q, true)",
				i, k, res.Vals[i], res.Founds[i], k+"-val")
		}
	}
}

// TestKVReadMultiReportsPerGroupPositions: each fan-out leg reports the
// snapshot position it was served at, per group — unequal log heights must
// show through unchanged.
func TestKVReadMultiReportsPerGroupPositions(t *testing.T) {
	router := &mapRouter{
		byKey:  map[string]string{"x": "g0", "y": "g1"},
		def:    "g0",
		groups: []string{"g0", "g1"},
	}
	kv, services := newKVHarness(t, router)
	ctx := context.Background()

	seedLog(t, services, kvDCs, "g0", 1)
	seedLog(t, services, kvDCs, "g1", 3)

	res, err := kv.ReadMulti(ctx, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 2 {
		t.Fatalf("positions for %d groups, want 2: %v", len(res.Positions), res.Positions)
	}
	if res.Positions["g0"] != 1 || res.Positions["g1"] != 3 {
		t.Fatalf("positions = %v, want g0:1 g1:3", res.Positions)
	}
	// A whole-facade invariant: keys of the same group share one snapshot,
	// so re-reading both keys plus a third g1 key again yields one position
	// per group, not per key.
	res2, err := kv.ReadMulti(ctx, "x", "y", "y")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Positions) != 2 {
		t.Fatalf("dup-key read: positions = %v, want 2 groups", res2.Positions)
	}
}

// groupFilterTransport fails every request concerning one group, at every
// datacenter — "the owning group is unavailable" distilled to its wire
// signature (e.g. every replica's handler refusing that group) while all
// other groups keep working.
type groupFilterTransport struct {
	network.Transport
	group string
}

func (g *groupFilterTransport) Send(ctx context.Context, to string, req network.Message) (network.Message, error) {
	if req.Group == g.group {
		return network.Message{}, fmt.Errorf("injected: group %s unreachable", g.group)
	}
	return g.Transport.Send(ctx, to, req)
}

// TestKVReadMultiOneGroupUnavailable: when exactly one owning group's legs
// all fail, the whole routed read fails — no silent partial result — and the
// error names the failed group. Keys that avoid the failed group still read
// fine through the same facade.
func TestKVReadMultiOneGroupUnavailable(t *testing.T) {
	services, sim := newServiceRing(t, "A", "B", "C")
	base := sim.Endpoint("A", services["A"].Handler())
	filtered := &groupFilterTransport{Transport: base, group: "gbad"}
	cl := NewClient(1, "A", filtered, Config{Seed: 1, Timeout: 200 * time.Millisecond})
	router := &mapRouter{
		byKey:  map[string]string{"bad": "gbad"},
		def:    "gok",
		groups: []string{"gok", "gbad"},
	}
	kv := NewKV(cl, router)
	ctx := context.Background()

	seedLog(t, services, kvDCs, "gok", 1)

	if _, err := kv.ReadMulti(ctx, "k", "bad", "k2"); err == nil {
		t.Fatal("readmulti succeeded with an unavailable owning group")
	} else {
		if !strings.Contains(err.Error(), "gbad") {
			t.Errorf("error does not name the failed group: %v", err)
		}
		if !strings.Contains(err.Error(), "1 of 2 groups unavailable") {
			t.Errorf("error does not report the failure scope: %v", err)
		}
	}
	// The healthy group still serves through the same facade.
	res, err := kv.ReadMulti(ctx, "k", "k2")
	if err != nil {
		t.Fatalf("healthy-group read failed: %v", err)
	}
	if len(res.Positions) != 1 || res.Positions["gok"] != 1 {
		t.Fatalf("positions = %v, want gok:1", res.Positions)
	}
}

// TestKVPutRoutesToOwningGroup: a routed write lands in the owning group's
// log and nowhere else; Get reads it back through the same router.
func TestKVPutRoutesToOwningGroup(t *testing.T) {
	router := &mapRouter{
		byKey:  map[string]string{"left": "g0", "right": "g1"},
		def:    "g0",
		groups: []string{"g0", "g1"},
	}
	kv, services := newKVHarness(t, router)
	ctx := context.Background()

	res, err := kv.Put(ctx, "right", "v1")
	if err != nil || res.Status != stats.Committed {
		t.Fatalf("put: %+v %v", res, err)
	}
	if v, found, err := kv.Get(ctx, "right"); err != nil || !found || v != "v1" {
		t.Fatalf("get right = (%q, %v, %v), want (v1, true, nil)", v, found, err)
	}
	// The write is in g1's log; g0's log is untouched.
	found := false
	for _, e := range services["A"].LogSnapshot("g1") {
		if _, ok := e.Writes()["right"]; ok {
			found = true
		}
	}
	if !found {
		t.Error("write missing from owning group g1's log")
	}
	if n := len(services["A"].LogSnapshot("g0")); n != 0 {
		t.Errorf("non-owning group g0 has %d log entries, want 0", n)
	}
}

// TestKVUpdateRetriesConflicts: two facades increment one counter
// concurrently; Update's re-read loop absorbs the OCC aborts and both
// increments land.
func TestKVUpdateRetriesConflicts(t *testing.T) {
	router := &mapRouter{def: "g0", groups: []string{"g0"}}
	kv, _ := newKVHarness(t, router)
	ctx := context.Background()

	incr := func(cur string, found bool) (string, error) {
		if !found {
			return "1", nil
		}
		return cur + "+1", nil
	}
	for i := 0; i < 3; i++ {
		if res, err := kv.Update(ctx, "ctr", 0, incr); err != nil || res.Status != stats.Committed {
			t.Fatalf("update %d: %+v %v", i, res, err)
		}
	}
	v, found, err := kv.Get(ctx, "ctr")
	if err != nil || !found || v != "1+1+1" {
		t.Fatalf("counter = (%q, %v, %v), want (1+1+1, true, nil)", v, found, err)
	}
}
