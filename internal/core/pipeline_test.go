package core

import (
	"testing"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/network"
	"paxoscp/internal/wal"
)

// TestPipelineEnqueueFrontPreservesBatchOrder: a promoted batch re-enters
// the queue front as one block in arrival order. Reversing it could turn an
// intra-entry reader/writer pair (reader admitted before the writer) into a
// spurious conflict abort at the next placement.
func TestPipelineEnqueueFrontPreservesBatchOrder(t *testing.T) {
	s := NewService("A", kvstore.New(), nil)
	defer s.Close()
	p := s.pipeline("g")
	// Park the dispatcher flag so enqueue does not start one: this test
	// inspects the raw queue.
	p.mu.Lock()
	p.running = true
	p.mu.Unlock()

	ps := func(id string) *pendingSubmit {
		return &pendingSubmit{txn: wal.Txn{ID: id}, done: make(chan network.Message, 1)}
	}
	a, b, c := ps("a"), ps("b"), ps("c")
	if !p.enqueue(false, c) {
		t.Fatal("enqueue refused on open pipeline")
	}
	if !p.enqueue(true, a, b) {
		t.Fatal("front enqueue refused on open pipeline")
	}
	p.mu.Lock()
	var order []string
	for _, q := range p.queue {
		order = append(order, q.txn.ID)
	}
	p.mu.Unlock()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("queue order = %v, want [a b c]", order)
	}
}

// TestPipelineEnqueueRefusedAfterClose: submissions after Close fail fast
// instead of queueing forever.
func TestPipelineEnqueueRefusedAfterClose(t *testing.T) {
	s := NewService("A", kvstore.New(), nil)
	p := s.pipeline("g")
	s.Close()
	ps := &pendingSubmit{txn: wal.Txn{ID: "x"}, done: make(chan network.Message, 1)}
	if p.enqueue(false, ps) {
		t.Fatal("enqueue accepted on closed pipeline")
	}
	if resp := p.Submit(wal.Txn{ID: "y"}); resp.OK {
		t.Fatalf("Submit on closed pipeline = %+v", resp)
	}
}
