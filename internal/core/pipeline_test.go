package core

import (
	"testing"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/network"
	"paxoscp/internal/wal"
)

// TestPipelineEnqueueFrontPreservesBatchOrder: a promoted batch re-enters
// the queue front as one block in arrival order. Reversing it could turn an
// intra-entry reader/writer pair (reader admitted before the writer) into a
// spurious conflict abort at the next placement.
func TestPipelineEnqueueFrontPreservesBatchOrder(t *testing.T) {
	s := NewService("A", kvstore.New(), nil)
	defer s.Close()
	p := s.pipeline("g")
	// Park the dispatcher flag so enqueue does not start one: this test
	// inspects the raw queue.
	p.mu.Lock()
	p.running = true
	p.mu.Unlock()

	ps := func(id string) *pendingSubmit {
		return &pendingSubmit{txn: wal.Txn{ID: id}, deliver: func(network.Message) {}}
	}
	a, b, c := ps("a"), ps("b"), ps("c")
	if !p.enqueue(false, c) {
		t.Fatal("enqueue refused on open pipeline")
	}
	if !p.enqueue(true, a, b) {
		t.Fatal("front enqueue refused on open pipeline")
	}
	p.mu.Lock()
	var order []string
	for _, q := range p.queue {
		order = append(order, q.txn.ID)
	}
	p.mu.Unlock()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("queue order = %v, want [a b c]", order)
	}
}

// TestPipelineEnqueueRefusedAfterClose: submissions after Close fail fast
// instead of queueing forever.
func TestPipelineEnqueueRefusedAfterClose(t *testing.T) {
	s := NewService("A", kvstore.New(), nil)
	p := s.pipeline("g")
	s.Close()
	ps := &pendingSubmit{txn: wal.Txn{ID: "x"}, deliver: func(network.Message) {}}
	if p.enqueue(false, ps) {
		t.Fatal("enqueue accepted on closed pipeline")
	}
	if resp := p.Submit(wal.Txn{ID: "y"}); resp.OK {
		t.Fatalf("Submit on closed pipeline = %+v", resp)
	}
}

// TestPipelineAdmissionControl: beyond the configured queue depth, new
// submissions are refused immediately with the retryable ErrOverloaded
// marker and the depth hint — while promotion re-enqueues (front) bypass
// the cap, because an admitted transaction must get a pipeline verdict.
func TestPipelineAdmissionControl(t *testing.T) {
	s := NewService("A", kvstore.New(), nil, WithSubmitQueue(2))
	defer s.Close()
	p := s.pipeline("g")
	// Park the dispatcher flag so the queue is not drained under the test.
	p.mu.Lock()
	p.running = true
	p.mu.Unlock()

	for i := 0; i < 2; i++ {
		p.SubmitAsync(wal.Txn{ID: "q"}, func(network.Message) {})
	}
	var verdict network.Message
	delivered := false
	p.SubmitAsync(wal.Txn{ID: "extra"}, func(m network.Message) { verdict = m; delivered = true })
	if !delivered {
		t.Fatal("overload verdict not delivered synchronously")
	}
	if verdict.OK || verdict.Err != ErrOverloaded {
		t.Fatalf("verdict = %+v, want ErrOverloaded", verdict)
	}
	if verdict.TS != 2 {
		t.Fatalf("queue-depth hint = %d, want 2", verdict.TS)
	}
	// Promotion path: front enqueue is exempt from the cap.
	if !p.enqueue(true, &pendingSubmit{txn: wal.Txn{ID: "p"}, deliver: func(network.Message) {}}) {
		t.Fatal("front enqueue refused by admission cap")
	}
	p.mu.Lock()
	depth := len(p.queue)
	p.mu.Unlock()
	if depth != 3 {
		t.Fatalf("queue depth = %d, want 3 (cap exempts promotion)", depth)
	}
}

// TestPendingSubmitVerdictExactlyOnce: the first verdict wins; later ones
// (including the budget timer's) are dropped without a second deliver call.
func TestPendingSubmitVerdictExactlyOnce(t *testing.T) {
	calls := 0
	ps := &pendingSubmit{deliver: func(network.Message) { calls++ }}
	ps.reply(network.Status(true, ""))
	ps.reply(network.Status(false, "late"))
	if calls != 1 {
		t.Fatalf("deliver called %d times, want 1", calls)
	}
}
