package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/network"
	"paxoscp/internal/stats"
)

// collectReply returns a reply callback and a channel carrying the verdict.
func collectReply() (func(network.Message), chan network.Message) {
	ch := make(chan network.Message, 1)
	return func(m network.Message) {
		select {
		case ch <- m:
		default:
		}
	}, ch
}

func awaitReply(t *testing.T, ch chan network.Message) network.Message {
	t.Helper()
	select {
	case m := <-ch:
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("no reply within 5s")
		return network.Message{}
	}
}

// TestAsyncHandlerServesHotKinds routes representative requests through the
// async entry point and checks each gets the same answer the synchronous
// Handler would give.
func TestAsyncHandlerServesHotKinds(t *testing.T) {
	s := NewService("A", kvstore.New(), nil)
	defer s.Close()
	if err := s.ApplyDecided("g", 1, entryBytes("t1", 0, map[string]string{"x": "1"})); err != nil {
		t.Fatal(err)
	}
	ah := s.AsyncHandler()

	reply, ch := collectReply()
	ah("B", network.Message{Kind: network.KindReadPos, Group: "g"}, reply)
	if m := awaitReply(t, ch); !m.OK || m.TS != 1 {
		t.Fatalf("readpos = %+v", m)
	}

	reply, ch = collectReply()
	ah("B", network.Message{Kind: network.KindRead, Group: "g", Key: "x", TS: 1}, reply)
	if m := awaitReply(t, ch); !m.OK || m.Value != "1" {
		t.Fatalf("read = %+v", m)
	}

	// Lazy read position: TS = ResolvePos serves at the watermark inline.
	reply, ch = collectReply()
	ah("B", network.Message{Kind: network.KindReadMulti, Group: "g", TS: network.ResolvePos,
		Keys: []string{"x", "y"}}, reply)
	if m := awaitReply(t, ch); !m.OK || m.TS != 1 || m.Vals[0] != "1" || m.Founds[1] {
		t.Fatalf("readmulti = %+v", m)
	}

	// A read ahead of the watermark takes the catch-up path (here: fails,
	// no peers) but still must reply rather than strand the client.
	reply, ch = collectReply()
	ah("B", network.Message{Kind: network.KindRead, Group: "g", Key: "x", TS: 9}, reply)
	if m := awaitReply(t, ch); m.OK {
		t.Fatalf("read@9 with no peers = %+v, want refusal", m)
	}

	// Apply runs off-worker and replies when the watermark covers it.
	reply, ch = collectReply()
	ah("B", network.Message{Kind: network.KindApply, Group: "g", Pos: 2,
		Payload: entryBytes("t2", 1, map[string]string{"x": "2"})}, reply)
	if m := awaitReply(t, ch); !m.OK {
		t.Fatalf("apply = %+v", m)
	}

	// Malformed submit payloads are refused straight from the entry point.
	reply, ch = collectReply()
	ah("B", network.Message{Kind: network.KindSubmit, Group: "g", Payload: []byte("junk")}, reply)
	if m := awaitReply(t, ch); m.OK || m.Err != "bad submit payload" {
		t.Fatalf("bad submit = %+v", m)
	}

	// Unknown kinds still answer (worker-inline default arm).
	reply, ch = collectReply()
	ah("B", network.Message{Kind: network.Kind("future"), Group: "g"}, reply)
	if m := awaitReply(t, ch); m.OK {
		t.Fatalf("unknown kind = %+v, want refusal", m)
	}
}

// TestAsyncHandlerParallelGroups floods many groups through one service's
// async entry point concurrently; every request must be answered and the
// per-group data must be consistent. This exercises the dispatcher's shard
// workers and the overflow-to-goroutine path under load.
func TestAsyncHandlerParallelGroups(t *testing.T) {
	s := NewService("A", kvstore.New(), nil)
	defer s.Close()
	const groups, reads = 16, 200
	ah := s.AsyncHandler()
	for g := 0; g < groups; g++ {
		group := string(rune('a' + g))
		if err := s.ApplyDecided(group, 1, entryBytes("t"+group, 0, map[string]string{"k": group})); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		group := string(rune('a' + g))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				reply, ch := collectReply()
				ah("B", network.Message{Kind: network.KindRead, Group: group, Key: "k", TS: 1}, reply)
				m := awaitReply(t, ch)
				if !m.OK || m.Value != group {
					t.Errorf("group %s read = %+v", group, m)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestMasterAsyncSubmitEndToEnd commits through the full async path: sim
// endpoints registered with EndpointAsync + AsyncHandler, the Master
// protocol's submit settling via the pipeline's verdict callback.
func TestMasterAsyncSubmitEndToEnd(t *testing.T) {
	dcs := []string{"A", "B", "C"}
	topo := network.NewTopology(dcs...)
	sim := network.NewSim(topo, network.SimConfig{Seed: 7})
	defer sim.Close()
	services := make(map[string]*Service, len(dcs))
	for _, dc := range dcs {
		dc := dc
		ep := sim.EndpointAsync(dc, func(from string, req network.Message, reply func(network.Message)) {
			services[dc].AsyncHandler()(from, req, reply)
		})
		services[dc] = NewService(dc, kvstore.New(), ep, WithServiceTimeout(200*time.Millisecond))
		defer services[dc].Close()
	}
	// The client shares DC B's endpoint (re-registering the same async
	// handler), as the service-ring tests do with the sync handler.
	clTr := sim.EndpointAsync("B", func(from string, req network.Message, reply func(network.Message)) {
		services["B"].AsyncHandler()(from, req, reply)
	})
	client := NewClient(1, "B", clTr, Config{
		Protocol: Master, MasterDC: "A", Timeout: 200 * time.Millisecond,
	})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		tx, err := client.Begin(ctx, "g")
		if err != nil {
			t.Fatal(err)
		}
		tx.Write("k", "v")
		res, err := tx.Commit(ctx)
		if err != nil || res.Status != stats.Committed {
			t.Fatalf("commit %d: res=%+v err=%v", i, res, err)
		}
	}
	// The committed value is readable at every replica.
	for _, dc := range dcs {
		v, _, err := services[dc].Store().Read(dataKey("g", "k"), kvstore.Latest)
		if err != nil || v["v"] != "v" {
			t.Fatalf("%s: k = %v (%v)", dc, v, err)
		}
	}
}
