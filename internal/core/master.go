package core

import (
	"context"
	"fmt"
	"time"

	"paxoscp/internal/network"
	"paxoscp/internal/paxos"
	"paxoscp/internal/stats"
	"paxoscp/internal/wal"
)

// This file implements the leader-based design the paper sketches in §7 and
// names as future work in §8: "a full Paxos algorithm [that] behaves exactly
// as an atomic broadcast algorithm with a sequencer ... The leader could act
// as the transaction manager, check each new transaction against previously
// committed transactions ... assign the transaction a position in the log
// and send this log entry to all replicas."
//
// One datacenter is the long-term master for a transaction group. Clients
// submit their transaction to the master; the master runs a fine-grained
// conflict check against the log suffix after the transaction's read
// position, assigns the next log position, and replicates with a single
// accept round (the multi-Paxos fast ballot — the master is the only
// proposer while its leadership holds). If an acceptor has been touched by
// another proposer, the master falls back to a full Paxos instance.
//
// Trade-offs, as the paper predicts: fewer message rounds per transaction
// and no aborts for non-conflicting transactions, but every commit does a
// round trip to the master's site and "a greater amount of work [falls] on
// a single site [which] could possibly be a performance bottleneck". The
// Master row in the bench ablations quantifies exactly that; the pipelined
// submit path (pipeline.go, DESIGN.md §8) removes the per-group
// serialization that made the bottleneck one Paxos round trip deep.

// Master selects the leader-based commit protocol (§7 design). Configure
// the master's datacenter with Config.MasterDC.
const Master Protocol = 2

// masterClientID is the proposer identity the master uses for fallback
// instances; it shares the ballot space with regular clients.
const masterClientID = paxos.MaxClients - 2

// commitMaster submits the transaction to the group's master and waits for
// its verdict.
func (c *Client) commitMaster(ctx context.Context, t *Tx) (CommitResult, error) {
	master := c.cfg.MasterDC
	if master == "" {
		master = c.transport.Peers()[0]
	}
	payload := wal.Encode(wal.NewEntry(t.walTxn()))
	timeout := c.cfg.Timeout
	if timeout <= 0 {
		timeout = network.DefaultTimeout
	}
	// The submit round trip covers the master's replication work, so give
	// it two message timeouts.
	cctx, cancel := context.WithTimeout(ctx, 2*timeout)
	defer cancel()
	resp, err := c.transport.Send(cctx, master, network.Message{
		Kind: network.KindSubmit, Group: t.group, Payload: payload,
	})
	if err != nil {
		return CommitResult{Status: stats.Failed}, fmt.Errorf("core: submit to master %s: %w", master, err)
	}
	switch {
	case resp.OK:
		return CommitResult{Status: stats.Committed, Pos: resp.TS, Combined: resp.Combined}, nil
	case resp.Err == masterConflict:
		return CommitResult{Status: stats.Aborted}, nil
	default:
		return CommitResult{Status: stats.Failed}, fmt.Errorf("core: master %s: %s", master, resp.Err)
	}
}

// masterConflict is the wire marker for a conflict abort verdict.
const masterConflict = "conflict"

// handleSubmit is the master-side entry point: the submitted transaction is
// handed to the group's pipelined submit path (pipeline.go), which combines
// it with other concurrently submitted transactions and keeps several Paxos
// positions in flight. The handler blocks only on this transaction's own
// verdict — no lock is held across the replication round trip, so the
// master's own apply fan-out (which loops back to this service) proceeds
// independently of the submit path even with the window full
// (TestMasterPipelineWindowFullNoDeadlock).
func (s *Service) handleSubmit(req network.Message) network.Message {
	entry, err := wal.Decode(req.Payload)
	if err != nil || len(entry.Txns) != 1 {
		return network.Status(false, "bad submit payload")
	}
	return s.pipeline(req.Group).Submit(entry.Txns[0])
}

// replicateAsMaster replicates value into (group, pos): one fast-ballot
// accept round in the common case, a full Paxos instance as fallback. It
// returns the decided bytes and whether they are the submitted value.
func (s *Service) replicateAsMaster(ctx context.Context, group string, pos int64, value []byte) ([]byte, bool, error) {
	prop := &paxos.Proposer{Transport: s.transport, Timeout: s.timeout}
	acc := prop.Accept(ctx, group, pos, paxos.FastBallot, value)
	if acc.Quorum() {
		prop.Apply(ctx, group, pos, paxos.FastBallot, value)
		return value, true, nil
	}
	// Someone touched the instance; run it properly.
	ballot := paxos.NextBallot(acc.MaxSeen, masterClientID)
	for attempt := 0; attempt < 16; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		prep := prop.Prepare(ctx, group, pos, ballot, false)
		if !prep.Quorum() {
			ballot = paxos.NextBallot(maxInt64(prep.MaxSeen, ballot), masterClientID)
			sleepBackoff(ctx, attempt, s.timeout/40)
			continue
		}
		proposal := value
		if v, ok := maxBallotVote(prep.Votes); ok {
			proposal = v.Value
		}
		a := prop.Accept(ctx, group, pos, ballot, proposal)
		if !a.Quorum() {
			ballot = paxos.NextBallot(maxInt64(a.MaxSeen, ballot), masterClientID)
			sleepBackoff(ctx, attempt, s.timeout/40)
			continue
		}
		prop.Apply(ctx, group, pos, ballot, proposal)
		return proposal, string(proposal) == string(value), nil
	}
	return nil, false, fmt.Errorf("core: master replication failed for %s/%d", group, pos)
}

func sleepBackoff(ctx context.Context, attempt int, base time.Duration) {
	if base <= 0 {
		base = time.Millisecond
	}
	if attempt > 6 {
		attempt = 6
	}
	t := time.NewTimer(base * time.Duration(int(1)<<attempt))
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
