package core

import (
	"context"
	"fmt"
	"time"

	"paxoscp/internal/network"
	"paxoscp/internal/paxos"
	"paxoscp/internal/stats"
	"paxoscp/internal/wal"
)

// This file implements the leader-based design the paper sketches in §7 and
// names as future work in §8: "a full Paxos algorithm [that] behaves exactly
// as an atomic broadcast algorithm with a sequencer ... The leader could act
// as the transaction manager, check each new transaction against previously
// committed transactions ... assign the transaction a position in the log
// and send this log entry to all replicas."
//
// One datacenter is the long-term master for a transaction group. Clients
// submit their transaction to the master; the master runs a fine-grained
// conflict check against the log suffix after the transaction's read
// position, assigns the next log position, and replicates with a single
// accept round (the multi-Paxos fast ballot — the master is the only
// proposer while its leadership holds). If an acceptor has been touched by
// another proposer, the master falls back to a full Paxos instance.
//
// Trade-offs, as the paper predicts: fewer message rounds per transaction
// and no aborts for non-conflicting transactions, but every commit does a
// round trip to the master's site and "a greater amount of work [falls] on
// a single site [which] could possibly be a performance bottleneck". The
// Master row in the bench ablations quantifies exactly that; the pipelined
// submit path (pipeline.go, DESIGN.md §8) removes the per-group
// serialization that made the bottleneck one Paxos round trip deep.

// Master selects the leader-based commit protocol (§7 design). Configure
// the master's datacenter with Config.MasterDC.
const Master Protocol = 2

// masterClientID is the proposer identity the master uses for fallback
// instances; it shares the ballot space with regular clients.
const masterClientID = paxos.MaxClients - 2

// commitMaster submits the transaction to the group's master and waits for
// its verdict. A service that is not the master refuses with ErrNotMaster
// and a hint naming the prevailing holder; the client follows the hint —
// the retry-to-new-master path after an epoch-fenced failover (DESIGN.md
// §11) — for a bounded number of hops.
func (c *Client) commitMaster(ctx context.Context, t *Tx) (CommitResult, error) {
	master := c.cfg.MasterDC
	if c.cfg.MasterFor != nil {
		if m := c.cfg.MasterFor(t.group); m != "" {
			master = m
		}
	}
	if master == "" {
		master = c.transport.Peers()[0]
	}
	payload := wal.Encode(wal.NewEntry(t.walTxn()))
	timeout := c.cfg.Timeout
	if timeout <= 0 {
		timeout = network.DefaultTimeout
	}
	const maxHops = 3
	// attempts bounds the whole loop: each iteration costs at most one
	// send round trip or one lease-lapse wait, so the dance around a
	// fail-stopped replica (below) terminates even if no replica ever
	// claims.
	const attempts = 12
	hops := 0
	var failed map[string]bool // replicas that answered ErrReplicaFailed
	for attempt := 0; attempt < attempts; attempt++ {
		// The submit round trip covers the master's replication work, so
		// give it two message timeouts.
		cctx, cancel := context.WithTimeout(ctx, 2*timeout)
		resp, err := c.transport.Send(cctx, master, network.Message{
			Kind: network.KindSubmit, Group: t.group, Payload: payload,
		})
		cancel()
		if err != nil {
			return CommitResult{Status: stats.Failed}, fmt.Errorf("core: submit to master %s: %w", master, err)
		}
		switch {
		case resp.OK:
			return CommitResult{Status: stats.Committed, Pos: resp.TS, Combined: resp.Combined, Epoch: resp.Epoch}, nil
		case resp.Err == masterConflict:
			return CommitResult{Status: stats.Aborted}, nil
		case resp.Err == ErrOverloaded:
			// Admission control refused before any protocol work: nothing
			// reached the log, so the caller may retry. resp.TS carries the
			// master's queue depth as a backpressure hint.
			return CommitResult{Status: stats.Rejected}, nil
		case resp.Err == ErrMoved:
			// The transaction wrote into a range that migrated away
			// (DESIGN.md §15): nothing committed anywhere. Retryable at the
			// destination group, which the typed error names — KV follows it.
			return CommitResult{Status: stats.Rejected}, &MovedError{To: resp.Value, Keys: append([]string(nil), resp.Keys...)}
		case resp.Err == ErrMigrating:
			// The keys' range is mid-cutover at this group: retry shortly.
			return CommitResult{Status: stats.Rejected}, ErrMigratingRange
		case resp.Err == ErrReplicaFailed:
			// The replica's storage engine has fail-stopped: definitive
			// there for the life of its process, but nothing reached the
			// log, so submit to a healthy replica instead — it claims the
			// group's next epoch once the dead master's lease lapses.
			if failed == nil {
				failed = make(map[string]bool)
			}
			failed[master] = true
			next := ""
			for _, dc := range c.transport.Peers() {
				if !failed[dc] {
					next = dc
					break
				}
			}
			if next == "" {
				return CommitResult{Status: stats.Failed}, fmt.Errorf("core: master %s: %s (%s); no healthy replica left", master, resp.Err, resp.Value)
			}
			master = next
		case resp.Err == ErrNotMaster && failed[resp.Value]:
			// This healthy replica still honors the fail-stopped master's
			// lease. Following the hint would just bounce off the dead
			// replica again — stand by for the lease to lapse here, then
			// re-submit to this same replica so it claims.
			if serr := sleepCtx(ctx, timeout); serr != nil {
				return CommitResult{Status: stats.Failed}, fmt.Errorf("core: master %s failed, lease not yet lapsed at %s: %w", resp.Value, master, serr)
			}
		case resp.Err == ErrNotMaster && resp.Value != "" && resp.Value != master && hops < maxHops:
			hops++
			master = resp.Value // follow the hint to the prevailing master
		default:
			return CommitResult{Status: stats.Failed}, fmt.Errorf("core: master %s: %s", master, resp.Err)
		}
	}
	return CommitResult{Status: stats.Failed}, fmt.Errorf("core: submit gave up after %d attempts (master %s)", attempts, master)
}

// masterConflict is the wire marker for a conflict abort verdict.
const masterConflict = "conflict"

// handleSubmit is the master-side entry point: the submitted transaction is
// handed to the group's pipelined submit path (pipeline.go), which combines
// it with other concurrently submitted transactions and keeps several Paxos
// positions in flight. The handler blocks only on this transaction's own
// verdict — no lock is held across the replication round trip, so the
// master's own apply fan-out (which loops back to this service) proceeds
// independently of the submit path even with the window full
// (TestMasterPipelineWindowFullNoDeadlock).
func (s *Service) handleSubmit(req network.Message) network.Message {
	entry, err := wal.Decode(req.Payload)
	if err != nil || len(entry.Txns) != 1 {
		return network.Status(false, "bad submit payload")
	}
	return s.pipeline(req.Group).Submit(entry.Txns[0])
}

// replicateAsMaster replicates value into (group, pos): one fast-ballot
// accept round in the common case, a full Paxos instance as fallback. It
// returns the decided bytes and whether they are the submitted value.
//
// The fast round is taken only at unanimity (AcceptOutcome.Unanimous): with
// a mere majority, two masters dueling through a partition — the split-brain
// window epoch fencing exists for — can each assemble a majority view
// holding both ballot-0 votes, and no recovery rule can tell which value
// was chosen. Unanimity makes ballot-0 decisions unambiguous in every
// majority view; anything less falls back to classic Paxos, whose unique
// per-proposer ballots serialize the duel (DESIGN.md §11).
func (s *Service) replicateAsMaster(ctx context.Context, group string, pos int64, value []byte) ([]byte, bool, error) {
	decided, ours, _, err := s.replicateMaster(ctx, group, pos, value, false)
	return decided, ours, err
}

// fastOutcome classifies the fast round of one master replication, so the
// pipeline's breaker reacts to unreachable peers without punishing ordinary
// per-position contention.
type fastOutcome int

const (
	// fastSkipped: the caller asked for no fast round (breaker open).
	fastSkipped fastOutcome = iota
	// fastDecided: unanimous — the value is decided in one round trip.
	fastDecided
	// fastContended: an acceptor refused the ballot-0 vote (someone else
	// touched the position). A one-position race; the fast path is healthy.
	fastContended
	// fastDegraded: a send failed or a peer stayed silent — unanimity is
	// impossible until the peer returns, so fast rounds are wasted latency.
	fastDegraded
)

// replicateMaster is replicateAsMaster with the fast round optional: the
// pipeline skips it while its breaker is open (a peer is unreachable, so
// unanimity is impossible and the attempt would only add one timeout of
// latency per position).
func (s *Service) replicateMaster(ctx context.Context, group string, pos int64, value []byte, skipFast bool) (_ []byte, ours bool, fast fastOutcome, _ error) {
	prop := &paxos.Proposer{Transport: s.transport, Timeout: s.timeout}
	ballot := paxos.Ballot(1, masterClientID)
	fast = fastSkipped
	if !skipFast {
		acc := prop.AcceptUnanimous(ctx, group, pos, paxos.FastBallot, value)
		if acc.Unanimous() {
			prop.Apply(ctx, group, pos, paxos.FastBallot, value)
			return value, true, fastDecided, nil
		}
		fast = fastContended
		if acc.Unreachable > 0 {
			fast = fastDegraded
		}
		// Someone touched the instance (or a peer is unreachable); run it
		// properly.
		ballot = paxos.NextBallot(acc.MaxSeen, masterClientID)
	}
	for attempt := 0; attempt < 16; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, false, fast, err
		}
		prep := prop.Prepare(ctx, group, pos, ballot, false)
		if !prep.Quorum() {
			ballot = paxos.NextBallot(maxInt64(prep.MaxSeen, ballot), masterClientID)
			sleepBackoff(ctx, attempt, s.timeout/40)
			continue
		}
		proposal := value
		if v, ok := maxBallotVote(prep.Votes); ok {
			proposal = v.Value
		}
		a := prop.Accept(ctx, group, pos, ballot, proposal)
		if !a.Quorum() {
			ballot = paxos.NextBallot(maxInt64(a.MaxSeen, ballot), masterClientID)
			sleepBackoff(ctx, attempt, s.timeout/40)
			continue
		}
		prop.Apply(ctx, group, pos, ballot, proposal)
		return proposal, string(proposal) == string(value), fast, nil
	}
	return nil, false, fast, fmt.Errorf("core: master replication failed for %s/%d", group, pos)
}

func sleepBackoff(ctx context.Context, attempt int, base time.Duration) {
	if base <= 0 {
		base = time.Millisecond
	}
	if attempt > 6 {
		attempt = 6
	}
	t := time.NewTimer(base * time.Duration(int(1)<<attempt))
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
