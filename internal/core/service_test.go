package core

import (
	"context"
	"testing"
	"time"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/network"
	"paxoscp/internal/wal"
)

// newServiceRing wires D services over a simulated network and returns them
// with the sim for fault injection.
func newServiceRing(t *testing.T, dcs ...string) (map[string]*Service, *network.Sim) {
	t.Helper()
	topo := network.NewTopology(dcs...)
	sim := network.NewSim(topo, network.SimConfig{Seed: 3})
	t.Cleanup(sim.Close)
	services := make(map[string]*Service, len(dcs))
	for _, dc := range dcs {
		dc := dc
		ep := sim.Endpoint(dc, func(from string, req network.Message) network.Message {
			return services[dc].Handler()(from, req)
		})
		services[dc] = NewService(dc, kvstore.New(), ep, WithServiceTimeout(200*time.Millisecond))
	}
	return services, sim
}

func entryBytes(id string, readPos int64, writes map[string]string) []byte {
	return wal.Encode(wal.NewEntry(wal.Txn{
		ID: id, Origin: "A", ReadPos: readPos, Writes: writes,
	}))
}

func TestServiceApplyAdvancesHorizonInOrder(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	s := services["A"]
	// Applying position 2 first leaves the horizon at 0 (hole at 1).
	if err := s.ApplyDecided("g", 2, entryBytes("t2", 1, map[string]string{"x": "2"})); err != nil {
		t.Fatal(err)
	}
	if got := s.LastApplied("g"); got != 0 {
		t.Fatalf("horizon after out-of-order apply = %d, want 0", got)
	}
	// Filling position 1 advances through both.
	if err := s.ApplyDecided("g", 1, entryBytes("t1", 0, map[string]string{"x": "1"})); err != nil {
		t.Fatal(err)
	}
	if got := s.LastApplied("g"); got != 2 {
		t.Fatalf("horizon = %d, want 2", got)
	}
	// Data visible at each position.
	resp := s.Handler()("A", network.Message{Kind: network.KindRead, Group: "g", Key: "x", TS: 1})
	if !resp.OK || !resp.Found || resp.Value != "1" {
		t.Fatalf("read@1 = %+v", resp)
	}
	resp = s.Handler()("A", network.Message{Kind: network.KindRead, Group: "g", Key: "x", TS: 2})
	if resp.Value != "2" {
		t.Fatalf("read@2 = %+v", resp)
	}
}

func TestServiceApplyIdempotent(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	s := services["A"]
	b := entryBytes("t1", 0, map[string]string{"x": "1"})
	for i := 0; i < 3; i++ {
		if err := s.ApplyDecided("g", 1, b); err != nil {
			t.Fatalf("apply #%d: %v", i, err)
		}
	}
	if got := s.LastApplied("g"); got != 1 {
		t.Fatalf("horizon = %d", got)
	}
}

func TestServiceApplyConflictingEntryRejected(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	s := services["A"]
	if err := s.ApplyDecided("g", 1, entryBytes("t1", 0, map[string]string{"x": "1"})); err != nil {
		t.Fatal(err)
	}
	// A different decided value for the same position is an (R1) breach;
	// the store must refuse to overwrite.
	if err := s.ApplyDecided("g", 1, entryBytes("OTHER", 0, map[string]string{"x": "9"})); err == nil {
		t.Fatal("conflicting rewrite of decided position accepted")
	}
	entry, ok := s.DecidedEntry("g", 1)
	if !ok || !entry.Contains("t1") {
		t.Fatalf("original entry lost: %v %v", entry, ok)
	}
}

func TestServiceApplyRejectsGarbage(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	s := services["A"]
	resp := s.Handler()("A", network.Message{Kind: network.KindApply, Group: "g", Pos: 1, Payload: []byte("junk")})
	if resp.OK {
		t.Fatal("garbage apply accepted")
	}
	resp = s.Handler()("A", network.Message{Kind: network.KindApply, Group: "g", Pos: 0, Payload: entryBytes("t", 0, nil)})
	if resp.OK {
		t.Fatal("apply at position 0 accepted")
	}
}

func TestServiceReadPos(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	s := services["A"]
	resp := s.Handler()("A", network.Message{Kind: network.KindReadPos, Group: "g"})
	if !resp.OK || resp.TS != 0 {
		t.Fatalf("empty readpos = %+v", resp)
	}
	s.ApplyDecided("g", 1, entryBytes("t1", 0, map[string]string{"x": "1"}))
	resp = s.Handler()("A", network.Message{Kind: network.KindReadPos, Group: "g"})
	if resp.TS != 1 {
		t.Fatalf("readpos = %+v", resp)
	}
}

func TestServiceReadMissingKey(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	s := services["A"]
	resp := s.Handler()("A", network.Message{Kind: network.KindRead, Group: "g", Key: "nope", TS: 0})
	if !resp.OK || resp.Found {
		t.Fatalf("missing key read = %+v", resp)
	}
}

func TestServiceCatchUpFromPeer(t *testing.T) {
	services, _ := newServiceRing(t, "A", "B", "C")
	// Positions 1–3 decided at A and B; C missed everything.
	for pos := int64(1); pos <= 3; pos++ {
		b := entryBytes("t"+string(rune('0'+pos)), pos-1, map[string]string{"x": string(rune('0' + pos))})
		services["A"].ApplyDecided("g", pos, b)
		services["B"].ApplyDecided("g", pos, b)
	}
	// A read at position 3 against C triggers catch-up.
	resp := services["C"].Handler()("client", network.Message{Kind: network.KindRead, Group: "g", Key: "x", TS: 3})
	if !resp.OK || resp.Value != "3" {
		t.Fatalf("read after catch-up = %+v", resp)
	}
	if got := services["C"].LastApplied("g"); got != 3 {
		t.Fatalf("C horizon = %d, want 3", got)
	}
}

func TestServiceFetchLog(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	s := services["A"]
	resp := s.Handler()("B", network.Message{Kind: network.KindFetchLog, Group: "g", Pos: 1})
	if resp.OK {
		t.Fatalf("fetch of unknown position = %+v", resp)
	}
	b := entryBytes("t1", 0, map[string]string{"x": "1"})
	s.ApplyDecided("g", 1, b)
	resp = s.Handler()("B", network.Message{Kind: network.KindFetchLog, Group: "g", Pos: 1})
	if !resp.OK || string(resp.Payload) != string(b) {
		t.Fatalf("fetchlog = %+v", resp)
	}
}

func TestServiceLeaderComputation(t *testing.T) {
	services, _ := newServiceRing(t, "A", "B", "C")
	s := services["B"]
	// Position 1: initial leader is the first datacenter.
	if got := s.Leader("g", 1); got != "A" {
		t.Fatalf("initial leader = %q, want A", got)
	}
	// After B's client wins position 1, B leads position 2.
	entry := wal.NewEntry(wal.Txn{ID: "t1", Origin: "B", Writes: map[string]string{"x": "1"}})
	s.ApplyDecided("g", 1, wal.Encode(entry))
	if got := s.Leader("g", 2); got != "B" {
		t.Fatalf("leader after B won = %q, want B", got)
	}
	// Unknown previous position: no leader.
	if got := s.Leader("g", 9); got != "" {
		t.Fatalf("leader with unknown history = %q, want empty", got)
	}
}

func TestServiceClaimFirstWins(t *testing.T) {
	services, _ := newServiceRing(t, "A", "B")
	s := services["A"] // initial leader for position 1
	claim := func(token string) network.Message {
		return s.Handler()("A", network.Message{
			Kind: network.KindClaimLeader, Group: "g", Pos: 1, Value: token,
		})
	}
	if resp := claim("c1"); !resp.OK {
		t.Fatalf("first claim refused: %+v", resp)
	}
	if resp := claim("c1"); !resp.OK {
		t.Fatalf("repeat claim by owner refused: %+v", resp)
	}
	if resp := claim("c2"); resp.OK {
		t.Fatalf("second claimant granted: %+v", resp)
	}
}

// TestServiceClaimPerTransactionNotPerClient guards the fast-path safety
// fix: a claim is granted to one transaction, and a different transaction —
// even from the same client — must be refused. Otherwise two different
// values could be proposed at the fast ballot for one position.
func TestServiceClaimPerTransactionNotPerClient(t *testing.T) {
	services, _ := newServiceRing(t, "A", "B")
	s := services["A"]
	claim := func(txnID string) network.Message {
		return s.Handler()("A", network.Message{
			Kind: network.KindClaimLeader, Group: "g", Pos: 1, Value: txnID,
		})
	}
	if resp := claim("A-1-4"); !resp.OK {
		t.Fatalf("first transaction refused: %+v", resp)
	}
	// Duplicate claim message of the same transaction: idempotent grant.
	if resp := claim("A-1-4"); !resp.OK {
		t.Fatalf("duplicate claim refused: %+v", resp)
	}
	// The same client's NEXT transaction must not inherit the fast path.
	if resp := claim("A-1-6"); resp.OK {
		t.Fatalf("later transaction inherited the fast path: %+v", resp)
	}
}

func TestServiceClaimNonLeaderHints(t *testing.T) {
	services, _ := newServiceRing(t, "A", "B")
	resp := services["B"].Handler()("B", network.Message{
		Kind: network.KindClaimLeader, Group: "g", Pos: 1, Value: "c1",
	})
	if resp.OK {
		t.Fatal("non-leader granted claim")
	}
	if resp.Value != "A" {
		t.Fatalf("leader hint = %q, want A", resp.Value)
	}
}

func TestServiceRecoverLearnsMissedEntries(t *testing.T) {
	services, sim := newServiceRing(t, "A", "B", "C")
	// C goes down; positions decided at A and B.
	sim.SetDown("C", true)
	for pos := int64(1); pos <= 4; pos++ {
		b := entryBytes("t"+string(rune('0'+pos)), pos-1, map[string]string{"k": string(rune('0' + pos))})
		services["A"].ApplyDecided("g", pos, b)
		services["B"].ApplyDecided("g", pos, b)
	}
	sim.SetDown("C", false)
	if err := services["C"].Recover(context.Background(), "g"); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := services["C"].LastApplied("g"); got != 4 {
		t.Fatalf("C horizon after recovery = %d, want 4", got)
	}
	entry, ok := services["C"].DecidedEntry("g", 4)
	if !ok || !entry.Contains("t4") {
		t.Fatalf("C log position 4 = %v %v", entry, ok)
	}
}

func TestServiceUnknownKind(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	resp := services["A"].Handler()("A", network.Message{Kind: "bogus"})
	if resp.OK {
		t.Fatal("unknown kind accepted")
	}
}

func TestServiceLogSnapshot(t *testing.T) {
	services, _ := newServiceRing(t, "A")
	s := services["A"]
	if snap := s.LogSnapshot("g"); len(snap) != 0 {
		t.Fatalf("empty log snapshot = %v", snap)
	}
	s.ApplyDecided("g", 1, entryBytes("t1", 0, map[string]string{"x": "1"}))
	s.ApplyDecided("g", 2, entryBytes("t2", 1, map[string]string{"x": "2"}))
	s.ApplyDecided("other", 1, entryBytes("o1", 0, map[string]string{"y": "1"}))
	snap := s.LogSnapshot("g")
	if len(snap) != 2 || !snap[1].Contains("t1") || !snap[2].Contains("t2") {
		t.Fatalf("snapshot = %v", snap)
	}
}
