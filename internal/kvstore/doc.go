// Package kvstore implements the multi-version key-value store that forms
// the foundation tier of each datacenter (paper §2.2).
//
// The transaction tier depends on exactly three atomic operations, which
// this package provides with per-row atomicity:
//
//   - Read(key, ts): most recent version with timestamp <= ts
//   - Write(key, value, ts): create a new version; error if a newer exists
//   - CheckAndWrite(key, testAttr, testValue, value): conditional write on
//     an attribute of the latest version
//
// Timestamps are logical; the transaction tier uses write-ahead-log
// positions as timestamps (paper §3.2). The paper's prototype used HBase;
// this in-memory store implements the same abstraction contract with 32-way
// sharding and per-row version arrays (see DESIGN.md §5).
//
// Beyond the paper's contract the store provides the maintenance surface a
// running system needs: ApplyBatch (idempotent, explicitly-timestamped
// write batches for the replicated-log apply path — one shard-lock
// acquisition per touched shard), ReadMulti (batched multi-key reads at one
// timestamp), Update, GC, Delete, prefix scans, and gob persistence
// (Save/Load, SaveFile/LoadFile).
package kvstore
