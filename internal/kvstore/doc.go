// Package kvstore implements the multi-version key-value store that forms
// the foundation tier of each datacenter (paper §2.2).
//
// The transaction tier depends on exactly three atomic operations, which
// this package provides with per-row atomicity:
//
//   - Read(key, ts): most recent version with timestamp <= ts
//   - Write(key, value, ts): create a new version; error if a newer exists
//   - CheckAndWrite(key, testAttr, testValue, value): conditional write on
//     an attribute of the latest version
//
// Timestamps are logical; the transaction tier uses write-ahead-log
// positions as timestamps (paper §3.2). The paper's prototype used HBase;
// this store implements the same abstraction contract with 32-way sharding
// and per-row version arrays (see DESIGN.md §5). The working image lives in
// memory; durability is a pluggable backend behind the Engine seam
// (DESIGN.md §14): with no engine attached (the default) the store is
// purely in-memory — the simulator's and most tests' backend — and
// internal/kvstore/disk supplies a write-ahead-logged engine whose Open
// recovers the store after a crash. Every mutating operation applies to the
// image first, then logs to the engine and waits for durability per its
// sync policy before acknowledging.
//
// Beyond the paper's contract the store provides the maintenance surface a
// running system needs: ApplyBatch (idempotent, explicitly-timestamped
// write batches for the replicated-log apply path — one shard-lock
// acquisition per touched shard, and one engine log call per batch so the
// whole batch shares a group commit), ReadMulti (batched multi-key reads at
// one timestamp), Update, GC, Delete, prefix scans, and gob persistence
// (Save/Load, SaveFile/LoadFile — also the disk engine's snapshot format).
// The storetest subpackage holds the conformance suite every backend must
// pass.
package kvstore
