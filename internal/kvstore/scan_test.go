package kvstore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// White-box tests of the ordered index's maintenance machinery; the
// black-box scan contract (paging, snapshot consistency, the oracle
// property under churn) lives in storetest so both engines run it.

// TestIndexFoldPurgesGhostsAndDuplicates deletes and recreates keys, forces
// a fold through the scan path, and checks the rebuilt base is sorted,
// duplicate-free, and ghost-free.
func TestIndexFoldPurgesGhostsAndDuplicates(t *testing.T) {
	s := New()
	for i := 0; i < 600; i++ {
		if _, err := s.Write(fmt.Sprintf("f/k%04d", i), Value{"v": "1"}, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 600; i += 2 {
		s.Delete(fmt.Sprintf("f/k%04d", i))
	}
	for i := 0; i < 600; i += 4 {
		if _, err := s.Write(fmt.Sprintf("f/k%04d", i), Value{"v": "2"}, 2); err != nil {
			t.Fatal(err)
		}
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.foldIndexLocked()
		if !sort.StringsAreSorted(sh.base) {
			t.Fatal("base unsorted after fold")
		}
		for i, k := range sh.base {
			if i > 0 && sh.base[i-1] == k {
				t.Fatalf("duplicate %q in base", k)
			}
			if _, live := sh.rows[k]; !live {
				t.Fatalf("ghost %q survived fold", k)
			}
		}
		if len(sh.delta) != 0 || sh.dead != 0 {
			t.Fatalf("fold left delta=%d dead=%d", len(sh.delta), sh.dead)
		}
		sh.mu.Unlock()
	}
	rows, _, err := s.ScanPrefix("f/", "", 0, Latest)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 600; i++ {
		if i%2 == 1 || i%4 == 0 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("scan found %d rows, want %d", len(rows), want)
	}
}

// TestScanExaminedLinear pins the index's cost model: paging an R-row
// region examines each candidate once (plus the one-row lookahead per
// page), so the examined total is linear in R and independent of page
// count — the property the migration-backfill fix relies on.
func TestScanExaminedLinear(t *testing.T) {
	s := New()
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := s.Write(fmt.Sprintf("e/k%05d", i), Value{"v": "1"}, 1); err != nil {
			t.Fatal(err)
		}
	}
	before := s.ScanExamined()
	after := ""
	pages := 0
	for {
		rows, more, err := s.ScanPrefix("e/", after, 64, Latest)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		if len(rows) > 0 {
			after = rows[len(rows)-1].Key
		}
		if !more {
			break
		}
	}
	examined := s.ScanExamined() - before
	// Each row consumed once, plus up to one lookahead row per page that is
	// re-examined by the next page.
	budget := int64(n + pages + 64)
	if examined > budget {
		t.Fatalf("examined %d candidates for %d rows over %d pages (budget %d): paging is re-scanning",
			examined, n, pages, budget)
	}
}

// TestScanConcurrentCreateSorted hammers row creation while scanning at
// Latest: every page must stay sorted and duplicate-free even as the
// unsorted delta buffer churns underneath.
func TestScanConcurrentCreateSorted(t *testing.T) {
	s := New()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(7))
		for ts := int64(1); ; ts++ {
			select {
			case <-stop:
				return
			default:
			}
			s.WriteIdempotent(fmt.Sprintf("s/r%06d", rng.Intn(100000)), Value{"v": "x"}, ts)
		}
	}()
	for round := 0; round < 50; round++ {
		after := ""
		prev := ""
		for {
			rows, more, err := s.ScanPrefix("s/", after, 97, Latest)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				if r.Key <= prev {
					t.Fatalf("unsorted/duplicate page: %q after %q", r.Key, prev)
				}
				prev = r.Key
				after = r.Key
			}
			if !more {
				break
			}
		}
	}
	close(stop)
	<-done
}
