package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

func populated(t *testing.T) *Store {
	t.Helper()
	s := New()
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("key-%d", i)
		for ts := int64(0); ts < 5; ts++ {
			v := Value{"v": fmt.Sprintf("%d@%d", i, ts), "extra": "x"}
			if _, err := s.Write(key, v, ts); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

func assertEqualStores(t *testing.T, a, b *Store) {
	t.Helper()
	ka, kb := a.Keys(), b.Keys()
	if len(ka) != len(kb) {
		t.Fatalf("key counts differ: %d vs %d", len(ka), len(kb))
	}
	for _, key := range ka {
		for ts := int64(0); ts < 5; ts++ {
			va, tsa, erra := a.Read(key, ts)
			vb, tsb, errb := b.Read(key, ts)
			if (erra == nil) != (errb == nil) || tsa != tsb || !va.Equal(vb) {
				t.Fatalf("row %s@%d differs: (%v,%d,%v) vs (%v,%d,%v)",
					key, ts, va, tsa, erra, vb, tsb, errb)
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := populated(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualStores(t, s, loaded)
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// A valid gob stream of the wrong shape is also rejected.
	if _, err := Load(bytes.NewReader([]byte{0x03, 0x01, 0x02})); err == nil {
		t.Fatal("wrong gob accepted")
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	s := populated(t)
	path := filepath.Join(t.TempDir(), "store.gob")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualStores(t, s, loaded)
}

func TestLoadFileMissingIsEmptyStore(t *testing.T) {
	s, err := LoadFile(filepath.Join(t.TempDir(), "nope.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("missing file loaded %d keys", s.Len())
	}
}

func TestSaveFileOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.gob")
	s1 := New()
	s1.Write("a", Value{"v": "1"}, 0)
	if err := s1.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	s2.Write("b", Value{"v": "2"}, 0)
	if err := s2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := loaded.Read("b", Latest); err != nil {
		t.Fatalf("new content missing: %v", err)
	}
	if _, _, err := loaded.Read("a", Latest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("old content survived: %v", err)
	}
}

func TestSaveClosedStore(t *testing.T) {
	s := New()
	s.Close()
	var buf bytes.Buffer
	if err := s.Save(&buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("Save after Close: %v", err)
	}
}

// TestLoadedStoreIsFullyFunctional: a reloaded store accepts the full
// operation set, including conditional writes against restored state.
func TestLoadedStoreIsFullyFunctional(t *testing.T) {
	s := New()
	if err := s.CheckAndWrite("paxos/g/1", "seq", "", Value{"seq": "1", "nextBal": "65537"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The acceptor's CAS chain continues where it left off.
	if err := loaded.CheckAndWrite("paxos/g/1", "seq", "1", Value{"seq": "2", "nextBal": "131073"}); err != nil {
		t.Fatalf("CAS against restored state: %v", err)
	}
	if err := loaded.CheckAndWrite("paxos/g/1", "seq", "1", Value{"seq": "9"}); !errors.Is(err, ErrCheckFailed) {
		t.Fatalf("stale CAS accepted after reload: %v", err)
	}
}
