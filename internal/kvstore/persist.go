package kvstore

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Persistence: a Store serializes to a gob snapshot so a datacenter daemon
// (cmd/txkvd) can stop and restart without losing its replica. The on-disk
// format carries every row with its full version history, including the
// Paxos acceptor state rows — an acceptor must never forget a promise or a
// vote across restarts, or it could enable conflicting decisions.

// persistMagic guards against loading unrelated gob streams.
const persistMagic = "paxoscp-kvstore-v1"

type persistedRow struct {
	Key      string
	Versions []Version
}

type persistedStore struct {
	Magic string
	Rows  []persistedRow
}

// Save writes a point-in-time snapshot of the whole store. Concurrent
// writers are not blocked for the duration; each row is captured atomically.
func (s *Store) Save(w io.Writer) error {
	if s.isClosed() {
		return ErrClosed
	}
	out := persistedStore{Magic: persistMagic}
	for _, key := range s.Keys() {
		r := s.getRow(key, false)
		if r == nil {
			continue
		}
		r.mu.Lock()
		versions := make([]Version, len(r.versions))
		for i, v := range r.versions {
			versions[i] = Version{Timestamp: v.Timestamp, Value: v.Value.Clone()}
		}
		r.mu.Unlock()
		if len(versions) > 0 {
			out.Rows = append(out.Rows, persistedRow{Key: key, Versions: versions})
		}
	}
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(out); err != nil {
		return fmt.Errorf("kvstore: save: %w", err)
	}
	return bw.Flush()
}

// Load reads a snapshot produced by Save into a fresh Store.
func Load(r io.Reader) (*Store, error) {
	var in persistedStore
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&in); err != nil {
		return nil, fmt.Errorf("kvstore: load: %w", err)
	}
	if in.Magic != persistMagic {
		return nil, fmt.Errorf("kvstore: load: not a kvstore snapshot")
	}
	s := New()
	for _, pr := range in.Rows {
		row := s.getRow(pr.Key, true)
		row.versions = append(row.versions, pr.Versions...)
	}
	return s, nil
}

// SaveFile atomically writes the snapshot to path (temp file + rename).
func (s *Store) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".kvstore-*")
	if err != nil {
		return fmt.Errorf("kvstore: save file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := s.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("kvstore: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("kvstore: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("kvstore: rename: %w", err)
	}
	return nil
}

// LoadFile loads a snapshot from path; a missing file yields an empty store
// (first boot).
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return New(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("kvstore: load file: %w", err)
	}
	defer f.Close()
	return Load(f)
}
