package kvstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestReadMultiMatchesRead(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(7))
	const nkeys = 40
	for i := 0; i < nkeys; i++ {
		for ts := int64(1); ts <= int64(rng.Intn(5)); ts++ {
			if err := s.WriteIdempotent(fmt.Sprintf("k%d", i), Value{"v": fmt.Sprintf("%d@%d", i, ts)}, ts); err != nil {
				t.Fatal(err)
			}
		}
	}
	var keys []string
	for i := 0; i < nkeys+5; i++ { // +5 never-written keys
		keys = append(keys, fmt.Sprintf("k%d", i))
	}
	for _, ts := range []int64{Latest, 0, 1, 2, 3, 10} {
		got, err := s.ReadMulti(keys, ts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(keys) {
			t.Fatalf("ts=%d: %d results for %d keys", ts, len(got), len(keys))
		}
		for i, k := range keys {
			v, vts, err := s.Read(k, ts)
			if err == ErrNotFound {
				if got[i].Found {
					t.Fatalf("ts=%d key=%s: ReadMulti found, Read did not", ts, k)
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if !got[i].Found || got[i].TS != vts || !got[i].Value.Equal(v) {
				t.Fatalf("ts=%d key=%s: ReadMulti %+v, Read %v@%d", ts, k, got[i], v, vts)
			}
		}
	}
}

func TestReadMultiEmptyAndClosed(t *testing.T) {
	s := New()
	if res, err := s.ReadMulti(nil, Latest); err != nil || len(res) != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
	s.Close()
	if _, err := s.ReadMulti([]string{"a"}, Latest); err != ErrClosed {
		t.Fatalf("closed: %v", err)
	}
}

func TestReadMultiReturnsCopies(t *testing.T) {
	s := New()
	s.WriteIdempotent("a", Value{"v": "1"}, 1)
	res, err := s.ReadMulti([]string{"a"}, Latest)
	if err != nil {
		t.Fatal(err)
	}
	res[0].Value["v"] = "mutated"
	if v, _, _ := s.Read("a", Latest); v["v"] != "1" {
		t.Fatal("ReadMulti leaked internal storage")
	}
}

func TestReadMultiConcurrentWithWrites(t *testing.T) {
	s := New()
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ts := int64(1); ; ts++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, k := range keys {
				s.WriteIdempotent(k, Value{"v": fmt.Sprint(ts)}, ts)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if _, err := s.ReadMulti(keys, Latest); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkReadMulti compares a per-key Read loop against one ReadMulti pass
// for an 8-key batch (the storage-layer half of the ReadMulti win).
func BenchmarkReadMulti(b *testing.B) {
	s := New()
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("attr%d", i*13)
		s.WriteIdempotent(keys[i], Value{"v": "value"}, 1)
	}
	b.Run("perkey", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, k := range keys {
				if _, _, err := s.Read(k, 1); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("multi", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.ReadMulti(keys, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
