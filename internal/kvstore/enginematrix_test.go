package kvstore_test

import (
	"testing"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/kvstore/storetest"
)

// TestMemoryEngineConformance runs the engine-independent conformance suite
// against the in-memory backend (nil engine). The disk backend runs the same
// suite in internal/kvstore/disk, so `go test ./...` covers the full
// cross-engine matrix.
func TestMemoryEngineConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) *kvstore.Store {
		s := kvstore.New()
		t.Cleanup(s.Close)
		return s
	})
}
