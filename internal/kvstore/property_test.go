package kvstore

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropReadSeesNewestNotAfter checks, for random version sets and random
// read timestamps, that Read(key, ts) returns exactly the version a reference
// linear scan would pick.
func TestPropReadSeesNewestNotAfter(t *testing.T) {
	f := func(stamps []uint8, probe uint8) bool {
		s := New()
		written := map[int64]string{}
		var maxTS int64 = -1
		for _, raw := range stamps {
			ts := int64(raw % 64)
			if ts <= maxTS {
				continue // Write requires strictly increasing timestamps.
			}
			val := Value{"v": string(rune('a' + ts%26))}
			if _, err := s.Write("k", val, ts); err != nil {
				return false
			}
			written[ts] = val["v"]
			maxTS = ts
		}
		readTS := int64(probe % 64)
		// Reference answer: newest written ts <= readTS.
		var want int64 = -1
		for ts := range written {
			if ts <= readTS && ts > want {
				want = ts
			}
		}
		v, gotTS, err := s.Read("k", readTS)
		if want == -1 {
			return errors.Is(err, ErrNotFound)
		}
		return err == nil && gotTS == want && v["v"] == written[want]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropIdempotentBackfillPreservesOrder inserts versions in random order
// via WriteIdempotent and verifies reads at every timestamp match a reference
// map regardless of insertion order.
func TestPropIdempotentBackfillPreservesOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		n := 1 + rng.Intn(20)
		perm := rng.Perm(n)
		want := make(map[int64]string, n)
		for _, p := range perm {
			ts := int64(p)
			val := string(rune('a' + p%26))
			if err := s.WriteIdempotent("k", Value{"v": val}, ts); err != nil {
				return false
			}
			want[ts] = val
		}
		for ts := int64(0); ts < int64(n); ts++ {
			v, gotTS, err := s.Read("k", ts)
			if err != nil || gotTS != ts || v["v"] != want[ts] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropCheckAndWriteLinearizes runs random sequences of CheckAndWrite
// operations and verifies the store behaves like a single atomic register:
// an operation succeeds iff its expectation matches the current value.
func TestPropCheckAndWriteLinearizes(t *testing.T) {
	f := func(ops []uint8) bool {
		s := New()
		cur := "" // model of the nextBal attribute
		for i, op := range ops {
			expect := cur
			if op%3 == 0 {
				expect = "wrong" // deliberately mismatched expectation
			}
			next := string(rune('A' + i%26))
			err := s.CheckAndWrite("k", "nextBal", expect, Value{"nextBal": next})
			if expect == cur {
				if err != nil {
					return false
				}
				cur = next
			} else if !errors.Is(err, ErrCheckFailed) {
				return false
			}
		}
		v, _, err := s.Read("k", Latest)
		if cur == "" {
			return errors.Is(err, ErrNotFound) || v["nextBal"] == ""
		}
		return err == nil && v["nextBal"] == cur
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropGCNeverChangesVisibleReads verifies that for random histories and a
// random GC horizon, every read at or above the horizon returns the same
// result before and after GC.
func TestPropGCNeverChangesVisibleReads(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		n := 2 + rng.Intn(30)
		for ts := 0; ts < n; ts++ {
			if _, err := s.Write("k", Value{"v": string(rune('a' + ts%26))}, int64(ts)); err != nil {
				return false
			}
		}
		horizon := int64(rng.Intn(n))
		type result struct {
			v   string
			ts  int64
			err bool
		}
		before := make([]result, 0, n)
		for ts := horizon; ts < int64(n); ts++ {
			v, got, err := s.Read("k", ts)
			before = append(before, result{v["v"], got, err != nil})
		}
		s.GC("k", horizon)
		for i, ts := 0, horizon; ts < int64(n); i, ts = i+1, ts+1 {
			v, got, err := s.Read("k", ts)
			after := result{v["v"], got, err != nil}
			if after != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropValueEqualReflexiveSymmetric exercises Value.Equal and Clone.
func TestPropValueEqualReflexiveSymmetric(t *testing.T) {
	f := func(a, b map[string]string) bool {
		va, vb := Value(a), Value(b)
		if !va.Equal(va.Clone()) {
			return false
		}
		return va.Equal(vb) == vb.Equal(va)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
