package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestApplyBatchBasic(t *testing.T) {
	s := New()
	err := s.ApplyBatch([]BatchWrite{
		{Key: "a", Value: Value{"v": "1"}, TS: 1},
		{Key: "b", Value: Value{"v": "2"}, TS: 1},
		{Key: "a", Value: Value{"v": "3"}, TS: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _, err := s.Read("a", 1); err != nil || v["v"] != "1" {
		t.Fatalf("a@1 = %v %v", v, err)
	}
	if v, _, err := s.Read("a", 2); err != nil || v["v"] != "3" {
		t.Fatalf("a@2 = %v %v", v, err)
	}
	if v, _, err := s.Read("b", Latest); err != nil || v["v"] != "2" {
		t.Fatalf("b = %v %v", v, err)
	}
}

func TestApplyBatchEmpty(t *testing.T) {
	s := New()
	if err := s.ApplyBatch(nil); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchRejectsImplicitTimestamp(t *testing.T) {
	s := New()
	err := s.ApplyBatch([]BatchWrite{{Key: "a", Value: Value{"v": "1"}, TS: -1}})
	if err == nil {
		t.Fatal("negative timestamp accepted")
	}
}

func TestApplyBatchIdempotentReplay(t *testing.T) {
	s := New()
	batch := []BatchWrite{
		{Key: "a", Value: Value{"v": "1"}, TS: 1},
		{Key: "b", Value: Value{"v": "2"}, TS: 1},
	}
	for i := 0; i < 3; i++ {
		if err := s.ApplyBatch(batch); err != nil {
			t.Fatalf("replay #%d: %v", i, err)
		}
	}
	if n := s.Versions("a"); n != 1 {
		t.Fatalf("a has %d versions, want 1", n)
	}
}

// TestApplyBatchConflictAppliesNothing is the atomicity contract: a batch
// that conflicts with existing state must not mutate any row, including rows
// the batch would have created.
func TestApplyBatchConflictAppliesNothing(t *testing.T) {
	s := New()
	if _, err := s.Write("clash", Value{"v": "old"}, 5); err != nil {
		t.Fatal(err)
	}
	err := s.ApplyBatch([]BatchWrite{
		{Key: "fresh1", Value: Value{"v": "x"}, TS: 1},
		{Key: "clash", Value: Value{"v": "DIFFERENT"}, TS: 5},
		{Key: "fresh2", Value: Value{"v": "y"}, TS: 1},
	})
	if !errors.Is(err, ErrStaleWrite) {
		t.Fatalf("err = %v, want ErrStaleWrite", err)
	}
	for _, key := range []string{"fresh1", "fresh2"} {
		if _, _, err := s.Read(key, Latest); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s was written by a failed batch", key)
		}
	}
	if v, _, _ := s.Read("clash", Latest); v["v"] != "old" {
		t.Fatalf("clash overwritten: %v", v)
	}
}

func TestApplyBatchBackfillKeepsHistoricalReads(t *testing.T) {
	s := New()
	if err := s.ApplyBatch([]BatchWrite{{Key: "k", Value: Value{"v": "late"}, TS: 10}}); err != nil {
		t.Fatal(err)
	}
	// Backfill an older position after a newer one exists (out-of-order
	// apply across batches).
	if err := s.ApplyBatch([]BatchWrite{{Key: "k", Value: Value{"v": "early"}, TS: 4}}); err != nil {
		t.Fatal(err)
	}
	if v, ts, err := s.Read("k", 7); err != nil || ts != 4 || v["v"] != "early" {
		t.Fatalf("k@7 = %v ts=%d %v", v, ts, err)
	}
	if v, _, err := s.Read("k", Latest); err != nil || v["v"] != "late" {
		t.Fatalf("k@latest = %v %v", v, err)
	}
}

// TestApplyBatchConcurrentIdenticalBatches drives many goroutines replaying
// the same batches (the replicated-log duplicate-delivery case) and checks
// convergence; run with -race.
func TestApplyBatchConcurrentIdenticalBatches(t *testing.T) {
	s := New()
	const goroutines = 8
	const positions = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ts := int64(1); ts <= positions; ts++ {
				batch := []BatchWrite{
					{Key: "shared", Value: Value{"v": fmt.Sprint(ts)}, TS: ts},
					{Key: fmt.Sprintf("k%d", ts%7), Value: Value{"v": fmt.Sprint(ts)}, TS: ts},
				}
				if err := s.ApplyBatch(batch); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := s.Versions("shared"); n != positions {
		t.Fatalf("shared has %d versions, want %d", n, positions)
	}
	if v, _, err := s.Read("shared", Latest); err != nil || v["v"] != fmt.Sprint(positions) {
		t.Fatalf("shared latest = %v %v", v, err)
	}
}

// TestApplyBatchConcurrentDisjointShards checks that batches touching
// different keys do not corrupt each other; run with -race.
func TestApplyBatchConcurrentDisjointShards(t *testing.T) {
	s := New()
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ts := int64(1); ts <= 40; ts++ {
				batch := make([]BatchWrite, 0, 4)
				for k := 0; k < 4; k++ {
					batch = append(batch, BatchWrite{
						Key:   fmt.Sprintf("g%d-k%d", g, k),
						Value: Value{"v": fmt.Sprint(ts)},
						TS:    ts,
					})
				}
				if err := s.ApplyBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		for k := 0; k < 4; k++ {
			if v, _, err := s.Read(fmt.Sprintf("g%d-k%d", g, k), Latest); err != nil || v["v"] != "40" {
				t.Fatalf("g%d-k%d = %v %v", g, k, v, err)
			}
		}
	}
}

func TestApplyBatchClosedStore(t *testing.T) {
	s := New()
	s.Close()
	err := s.ApplyBatch([]BatchWrite{{Key: "a", Value: Value{"v": "1"}, TS: 1}})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// BenchmarkApplyBatch vs BenchmarkWriteLoop measures the batched apply path
// against the seed's per-key WriteIdempotent loop for the same workload: 64
// keys landing at one log position per iteration.
func BenchmarkApplyBatch(b *testing.B) {
	s := New()
	const keys = 64
	batch := make([]BatchWrite, keys)
	names := make([]string, keys)
	for k := range names {
		names[k] = fmt.Sprintf("data/g/key-%d", k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := int64(i + 1)
		for k := 0; k < keys; k++ {
			batch[k] = BatchWrite{Key: names[k], Value: Value{"v": "x"}, TS: ts}
		}
		if err := s.ApplyBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteLoop(b *testing.B) {
	s := New()
	const keys = 64
	names := make([]string, keys)
	for k := range names {
		names[k] = fmt.Sprintf("data/g/key-%d", k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := int64(i + 1)
		for k := 0; k < keys; k++ {
			if err := s.WriteIdempotent(names[k], Value{"v": "x"}, ts); err != nil {
				b.Fatal(err)
			}
		}
	}
}
