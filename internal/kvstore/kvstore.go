package kvstore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Common errors returned by Store operations.
var (
	// ErrNotFound is returned by Read when no version of the row exists at
	// or before the requested timestamp.
	ErrNotFound = errors.New("kvstore: key not found")
	// ErrStaleWrite is returned by Write when a version with a timestamp
	// greater than or equal to the requested one already exists.
	ErrStaleWrite = errors.New("kvstore: newer version exists")
	// ErrCheckFailed is returned by CheckAndWrite when the test attribute of
	// the latest version does not match the expected value.
	ErrCheckFailed = errors.New("kvstore: check failed")
	// ErrClosed is returned by all operations after Close.
	ErrClosed = errors.New("kvstore: store closed")
)

// Value is one version's contents: a set of named attributes (columns).
// Values are copied on write and on read, so callers may retain and mutate
// the maps they pass in or receive without affecting the store.
type Value map[string]string

// Clone returns a deep copy of v. A nil Value clones to an empty, non-nil map
// so the result is always safe to assign into.
func (v Value) Clone() Value {
	out := make(Value, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

// Equal reports whether v and o contain exactly the same attributes.
func (v Value) Equal(o Value) bool {
	if len(v) != len(o) {
		return false
	}
	for k, val := range v {
		if ov, ok := o[k]; !ok || ov != val {
			return false
		}
	}
	return true
}

// Version is a single timestamped version of a row.
type Version struct {
	Timestamp int64
	Value     Value
}

// row holds all versions of one key, sorted by ascending timestamp.
type row struct {
	mu       sync.Mutex
	versions []Version
	// gone marks a row Delete removed from its shard map. A writer that
	// pinned the row pointer before the delete must not mutate the orphaned
	// object (the mutation would be invisible to readers yet still reach the
	// WAL); lockRow/lockPinned re-resolve through the shard map instead.
	// Written and read under mu.
	gone bool
}

// latest returns the newest version, or nil if none exist.
// Caller must hold row.mu.
func (r *row) latest() *Version {
	if len(r.versions) == 0 {
		return nil
	}
	return &r.versions[len(r.versions)-1]
}

// at returns the newest version with Timestamp <= ts, or nil.
// Caller must hold row.mu.
func (r *row) at(ts int64) *Version {
	// Binary search for the first version with Timestamp > ts.
	i := sort.Search(len(r.versions), func(i int) bool {
		return r.versions[i].Timestamp > ts
	})
	if i == 0 {
		return nil
	}
	return &r.versions[i-1]
}

const numShards = 32

type shard struct {
	mu   sync.RWMutex
	rows map[string]*row

	// Ordered key index (scan.go): base is sorted and may hold ghosts,
	// delta buffers unsorted recent inserts, dead counts deletes since the
	// last fold. All three are read and written under mu.
	base  []string
	delta []string
	dead  int
}

// Store is a multi-version key-value store whose working image lives in
// memory. The zero value is not usable; construct with New. All methods are
// safe for concurrent use. With no engine attached (the default) the store
// is purely in-memory; AttachEngine wires a durability backend that logs
// every mutation before it is acknowledged (engine.go, DESIGN.md §14).
type Store struct {
	shards [numShards]*shard

	// engine is the durability backend; nil means in-memory only. Written
	// once by AttachEngine before the store is shared, read without
	// synchronization on every mutation.
	engine Engine

	mu        sync.Mutex
	closed    bool
	engineErr error // sticky engine failure: mutations fail-stop

	// scanExamined counts index candidates ScanPrefix resolved; see
	// ScanExamined.
	scanExamined atomic.Int64
}

// PosKey builds the per-position row name "<prefix><group>/<pos>" shared by
// the log, acceptor, and claim layouts (see DESIGN.md §4). It runs on every
// commit and apply, so it avoids fmt.Sprintf: the integer renders through
// strconv.AppendInt into a stack buffer and the result is one allocation.
// The buffer covers every realistic group name; longer ones spill to the
// heap but stay correct.
func PosKey(prefix, group string, pos int64) string {
	var buf [64]byte
	b := append(buf[:0], prefix...)
	b = append(b, group...)
	b = append(b, '/')
	b = strconv.AppendInt(b, pos, 10)
	return string(b)
}

// New returns an empty Store.
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i] = &shard{rows: make(map[string]*row)}
	}
	return s
}

func shardFor(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32() % numShards
}

// getRow returns the row for key, creating it when create is true.
func (s *Store) getRow(key string, create bool) *row {
	sh := s.shards[shardFor(key)]
	sh.mu.RLock()
	r := sh.rows[key]
	sh.mu.RUnlock()
	if r != nil || !create {
		return r
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if r = sh.rows[key]; r == nil {
		r = &row{}
		sh.rows[key] = r
		sh.noteInsertLocked(key)
	}
	return r
}

// lockRow returns key's row with its lock held, creating the row when
// absent and retrying when a concurrent Delete marked the locked row gone
// (the recreated row starts empty, exactly as the deleted one ended).
// Every write-family operation goes through this so no mutation ever lands
// on an orphaned row object.
func (s *Store) lockRow(key string) *row {
	for {
		r := s.getRow(key, true)
		r.mu.Lock()
		if !r.gone {
			return r
		}
		r.mu.Unlock()
	}
}

// lockPinned locks a row pinned earlier (ApplyBatch pins all rows of a
// batch up front with one shard-lock round per shard), re-resolving it
// through the shard map when a concurrent Delete scavenged it between the
// pin and the lock.
func (s *Store) lockPinned(r *row, key string) *row {
	r.mu.Lock()
	for r.gone {
		r.mu.Unlock()
		r = s.getRow(key, true)
		r.mu.Lock()
	}
	return r
}

func (s *Store) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// mutGate is the entry check for every mutating operation: the store must be
// open and the durability engine (when attached) must not have fail-stopped.
// Reads deliberately keep working after an engine failure — the in-memory
// image is intact and peers may still catch up from it — but no new mutation
// may acknowledge once durability is gone.
func (s *Store) mutGate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.engineErr != nil {
		return &EngineError{Err: s.engineErr}
	}
	return nil
}

// Read returns the most recent version of key with a timestamp less than or
// equal to ts. Pass Latest (or any negative ts) to read the most recent
// version regardless of timestamp. The returned Value is a copy.
func (s *Store) Read(key string, ts int64) (Value, int64, error) {
	if s.isClosed() {
		return nil, 0, ErrClosed
	}
	r := s.getRow(key, false)
	if r == nil {
		return nil, 0, ErrNotFound
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var v *Version
	if ts < 0 {
		v = r.latest()
	} else {
		v = r.at(ts)
	}
	if v == nil {
		return nil, 0, ErrNotFound
	}
	return v.Value.Clone(), v.Timestamp, nil
}

// Latest may be passed as the timestamp to Read to fetch the most recent
// version of a row.
const Latest int64 = -1

// MultiResult is one key's outcome in a ReadMulti call.
type MultiResult struct {
	// Value is a copy of the version's contents; nil when !Found.
	Value Value
	// TS is the found version's timestamp.
	TS int64
	// Found reports whether a version existed at or before the requested
	// timestamp.
	Found bool
}

// ReadMulti reads many keys at one timestamp with one shard-lock acquisition
// per touched shard (instead of the per-key shard lookup a loop of Read
// calls pays) and returns one result per key, in key order. Pass Latest (or
// any negative ts) for most-recent-version reads. Per-key semantics match
// Read exactly; a missing key is reported as !Found rather than an error.
//
// Like Read, cross-row atomicity is not provided by the store: the
// transaction tier serves multi-key reads at an applied-watermark position,
// which only advances after a batch fully lands (see internal/replog), so a
// ReadMulti at position <= watermark observes one consistent snapshot.
func (s *Store) ReadMulti(keys []string, ts int64) ([]MultiResult, error) {
	if s.isClosed() {
		return nil, ErrClosed
	}
	out := make([]MultiResult, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	// Pin every row with one shard-lock round per touched shard.
	var byShard [numShards][]int
	for i, k := range keys {
		si := shardFor(k)
		byShard[si] = append(byShard[si], i)
	}
	rows := make([]*row, len(keys))
	for si := range byShard {
		idxs := byShard[si]
		if len(idxs) == 0 {
			continue
		}
		sh := s.shards[si]
		sh.mu.RLock()
		for _, i := range idxs {
			rows[i] = sh.rows[keys[i]]
		}
		sh.mu.RUnlock()
	}
	for i, r := range rows {
		if r == nil {
			continue
		}
		r.mu.Lock()
		var v *Version
		if ts < 0 {
			v = r.latest()
		} else {
			v = r.at(ts)
		}
		if v != nil {
			out[i] = MultiResult{Value: v.Value.Clone(), TS: v.Timestamp, Found: true}
		}
		r.mu.Unlock()
	}
	return out, nil
}

// Write creates a new version of key with the given timestamp. If a version
// with a timestamp >= ts already exists, ErrStaleWrite is returned, matching
// the paper's write(key, value, timestamp) contract. Pass a negative ts to
// have the store assign a timestamp one greater than the current maximum.
// Writing the same timestamp twice is rejected (timestamps are log positions
// and each position is written once).
func (s *Store) Write(key string, value Value, ts int64) (int64, error) {
	if err := s.mutGate(); err != nil {
		return 0, err
	}
	r := s.lockRow(key)
	last := r.latest()
	if ts < 0 {
		ts = 0
		if last != nil {
			ts = last.Timestamp + 1
		}
	} else if last != nil && last.Timestamp >= ts {
		have := last.Timestamp
		r.mu.Unlock()
		return 0, fmt.Errorf("%w: have ts=%d, write ts=%d key=%q",
			ErrStaleWrite, have, ts, key)
	}
	stored := value.Clone()
	r.versions = append(r.versions, Version{Timestamp: ts, Value: stored})
	var seq uint64
	logged := false
	if s.engine != nil {
		sq, err := s.appendMut(Mutation{Op: OpWrite, Key: key, TS: ts, Value: stored})
		if err != nil {
			r.mu.Unlock()
			return 0, err
		}
		seq, logged = sq, true
	}
	r.mu.Unlock()
	if logged {
		if err := s.syncMut(seq); err != nil {
			return 0, err
		}
	}
	return ts, nil
}

// checkIdempotent reports whether applying (ts, value) idempotently would
// conflict: a version already exists at ts with a different value.
// Caller must hold r.mu.
func (r *row) checkIdempotent(ts int64, value Value) error {
	last := r.latest()
	if last == nil || last.Timestamp < ts {
		return nil // appends past the tail never conflict
	}
	if v := r.at(ts); v != nil && v.Timestamp == ts && !v.Value.Equal(value) {
		return fmt.Errorf("%w: conflicting rewrite of ts=%d", ErrStaleWrite, ts)
	}
	return nil
}

// applyIdempotent inserts (ts, value) keeping versions ordered by timestamp.
// Re-writing an existing timestamp with an identical value is a no-op; a
// different value is a conflict. When clone is false the row takes ownership
// of value (the batched apply path hands over freshly built maps; everything
// else must pass clone=true to preserve the store's copy-on-write contract).
// The changed result reports whether the row actually mutated — duplicate
// deliveries return false, which the engine-logging callers use to keep
// replayed apply messages out of the write-ahead log. Caller must hold r.mu.
func (r *row) applyIdempotent(ts int64, value Value, clone bool) (changed bool, err error) {
	if clone {
		value = value.Clone()
	}
	last := r.latest()
	if last == nil || last.Timestamp < ts {
		r.versions = append(r.versions, Version{Timestamp: ts, Value: value})
		return true, nil
	}
	if v := r.at(ts); v != nil && v.Timestamp == ts {
		if v.Value.Equal(value) {
			return false, nil
		}
		return false, fmt.Errorf("%w: conflicting rewrite of ts=%d", ErrStaleWrite, ts)
	}
	// A newer version exists but this exact timestamp was never written:
	// insert in order to keep historical reads correct.
	i := sort.Search(len(r.versions), func(i int) bool {
		return r.versions[i].Timestamp > ts
	})
	r.versions = append(r.versions, Version{})
	copy(r.versions[i+1:], r.versions[i:])
	r.versions[i] = Version{Timestamp: ts, Value: value}
	return true, nil
}

// WriteIdempotent is Write except that re-writing an existing timestamp with
// an identical value succeeds silently. The WAL apply path uses this so that
// replayed log entries (after recovery or duplicated apply messages) are
// harmless.
func (s *Store) WriteIdempotent(key string, value Value, ts int64) error {
	if err := s.mutGate(); err != nil {
		return err
	}
	if ts < 0 {
		return fmt.Errorf("kvstore: WriteIdempotent requires explicit timestamp")
	}
	r := s.lockRow(key)
	changed, err := r.applyIdempotent(ts, value, true)
	if err != nil {
		r.mu.Unlock()
		return fmt.Errorf("%w key=%q", err, key)
	}
	// Duplicate deliveries (changed == false) left the image untouched, so
	// they are already represented in the log and are not re-logged.
	var seq uint64
	logged := false
	if changed && s.engine != nil {
		sq, aerr := s.appendMut(Mutation{Op: OpWrite, Key: key, TS: ts, Value: value})
		if aerr != nil {
			r.mu.Unlock()
			return aerr
		}
		seq, logged = sq, true
	}
	r.mu.Unlock()
	if logged {
		if err := s.syncMut(seq); err != nil {
			return err
		}
	}
	return nil
}

// BatchWrite is one idempotent, explicitly-timestamped write in an
// ApplyBatch call.
type BatchWrite struct {
	Key   string
	Value Value
	TS    int64
}

// ApplyBatch applies a batch of idempotent versioned writes (WriteIdempotent
// semantics per element) with one shard-lock acquisition per touched shard,
// instead of the per-key shard lookup that a loop of Write calls pays. The
// replicated-log apply path (internal/replog) uses it to land all writes of
// a batch of contiguous decided log entries in one pass.
//
// The store takes ownership of each element's Value: unlike every other
// write operation it is NOT cloned, so callers must hand over maps they will
// not mutate afterwards (the apply path builds them fresh per batch).
//
// Every write is validated before any row is mutated, so a batch that
// conflicts with the existing state applies nothing. Under concurrent
// non-identical writers a batch may still fail partway (applied elements are
// idempotent, so retrying the same batch is harmless); cross-row visibility
// is never atomic — readers may observe a prefix of the batch. The log layer
// gates visibility through its applied watermark instead, which only
// advances after ApplyBatch returns (see internal/replog and DESIGN.md §4).
func (s *Store) ApplyBatch(writes []BatchWrite) error {
	if err := s.mutGate(); err != nil {
		return err
	}
	if len(writes) == 0 {
		return nil
	}
	var byShard [numShards][]int
	for i := range writes {
		if writes[i].TS < 0 {
			return fmt.Errorf("kvstore: ApplyBatch requires explicit timestamps (key %q)", writes[i].Key)
		}
		si := shardFor(writes[i].Key)
		byShard[si] = append(byShard[si], i)
	}
	// Pin (and create) every row up front: one shard-lock acquisition per
	// touched shard for the whole batch.
	rows := make([]*row, len(writes))
	for si := range byShard {
		idxs := byShard[si]
		if len(idxs) == 0 {
			continue
		}
		sh := s.shards[si]
		sh.mu.Lock()
		for _, i := range idxs {
			r := sh.rows[writes[i].Key]
			if r == nil {
				r = &row{}
				sh.rows[writes[i].Key] = r
				sh.noteInsertLocked(writes[i].Key)
			}
			rows[i] = r
		}
		sh.mu.Unlock()
	}
	// Validate everything first so a conflicting batch mutates nothing.
	for i := range writes {
		r := s.lockPinned(rows[i], writes[i].Key)
		rows[i] = r
		err := r.checkIdempotent(writes[i].TS, writes[i].Value)
		r.mu.Unlock()
		if err != nil {
			return fmt.Errorf("%w key=%q", err, writes[i].Key)
		}
	}
	// Each element's WAL record is appended under its row's lock (Append is
	// queue-only, no I/O) so the log orders it against racing mutations of
	// the same row, and one Sync at the end covers the whole batch — the
	// group-commit fsync still absorbs every write the batch carried.
	// Replayed batches (nothing changed) are already in the log and skip the
	// engine; sequence numbers are monotone, so the last append's seq covers
	// all of them.
	var seq uint64
	logged := false
	for i := range writes {
		r := s.lockPinned(rows[i], writes[i].Key)
		rows[i] = r
		changed, err := r.applyIdempotent(writes[i].TS, writes[i].Value, false)
		if err != nil {
			r.mu.Unlock()
			return fmt.Errorf("%w key=%q", err, writes[i].Key)
		}
		if changed && s.engine != nil {
			sq, aerr := s.appendMut(Mutation{
				Op: OpWrite, Key: writes[i].Key, TS: writes[i].TS, Value: writes[i].Value,
			})
			if aerr != nil {
				r.mu.Unlock()
				return aerr
			}
			seq, logged = sq, true
		}
		r.mu.Unlock()
	}
	if logged {
		if err := s.syncMut(seq); err != nil {
			return err
		}
	}
	return nil
}

// CheckAndWrite atomically compares attribute testAttr of the latest version
// of key against testValue and, when equal, writes value as a new latest
// version (with a store-assigned timestamp). If the row has no versions, the
// test passes only when testValue equals the empty string, mirroring a
// missing attribute. Returns ErrCheckFailed when the test fails.
//
// This is the operation Algorithm 1 of the paper relies on to make Paxos
// acceptor state transitions atomic.
func (s *Store) CheckAndWrite(key, testAttr, testValue string, value Value) error {
	if err := s.mutGate(); err != nil {
		return err
	}
	r := s.lockRow(key)
	cur := ""
	last := r.latest()
	if last != nil {
		cur = last.Value[testAttr]
	}
	if cur != testValue {
		r.mu.Unlock()
		return fmt.Errorf("%w: attr %q is %q, want %q", ErrCheckFailed, testAttr, cur, testValue)
	}
	ts := int64(0)
	if last != nil {
		ts = last.Timestamp + 1
	}
	stored := value.Clone()
	r.versions = append(r.versions, Version{Timestamp: ts, Value: stored})
	var seq uint64
	logged := false
	if s.engine != nil {
		sq, err := s.appendMut(Mutation{Op: OpWrite, Key: key, TS: ts, Value: stored})
		if err != nil {
			r.mu.Unlock()
			return err
		}
		seq, logged = sq, true
	}
	r.mu.Unlock()
	if logged {
		if err := s.syncMut(seq); err != nil {
			return err
		}
	}
	return nil
}

// Update atomically reads the latest version of key and replaces it with the
// value returned by fn. fn receives a copy of the latest value (nil if the
// row is empty) and returns the replacement value, or an error to abort.
// Update exists for maintenance paths (GC bookkeeping, tooling); the Paxos
// protocol itself uses only Read/Write/CheckAndWrite per the paper.
func (s *Store) Update(key string, fn func(Value) (Value, error)) error {
	if err := s.mutGate(); err != nil {
		return err
	}
	r := s.lockRow(key)
	var cur Value
	var ts int64
	if last := r.latest(); last != nil {
		cur = last.Value.Clone()
		ts = last.Timestamp + 1
	}
	next, err := fn(cur)
	if err != nil {
		r.mu.Unlock()
		return err
	}
	stored := next.Clone()
	r.versions = append(r.versions, Version{Timestamp: ts, Value: stored})
	var seq uint64
	logged := false
	if s.engine != nil {
		sq, aerr := s.appendMut(Mutation{Op: OpWrite, Key: key, TS: ts, Value: stored})
		if aerr != nil {
			r.mu.Unlock()
			return aerr
		}
		seq, logged = sq, true
	}
	r.mu.Unlock()
	if logged {
		if err := s.syncMut(seq); err != nil {
			return err
		}
	}
	return nil
}

// Versions returns the number of stored versions for key.
func (s *Store) Versions(key string) int {
	r := s.getRow(key, false)
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.versions)
}

// GC discards all versions of key strictly older than the newest version
// whose timestamp is <= keepFrom. The version visible at keepFrom (and all
// newer) survive, so reads at timestamps >= keepFrom are unaffected.
// It returns the number of versions discarded.
func (s *Store) GC(key string, keepFrom int64) int {
	r := s.getRow(key, false)
	if r == nil {
		return 0
	}
	r.mu.Lock()
	if r.gone {
		r.mu.Unlock()
		return 0
	}
	dropped := r.gc(keepFrom)
	// A lost GC record only costs disk space after a crash (the discarded
	// versions reappear), never correctness, so engine failures surface via
	// the sticky fail-stop flag rather than a return value here. Appended
	// under the row lock so replay scavenges in apply order.
	var seq uint64
	logged := false
	if dropped > 0 && s.engine != nil {
		if sq, err := s.appendMut(Mutation{Op: OpGC, Key: key, TS: keepFrom}); err == nil {
			seq, logged = sq, true
		}
	}
	r.mu.Unlock()
	if logged {
		_ = s.syncMut(seq)
	}
	return dropped
}

// gcRow is GC's in-memory half, used by the recovery replay path
// (ApplyMutation), which must not re-log the mutation.
func (s *Store) gcRow(key string, keepFrom int64) int {
	r := s.getRow(key, false)
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gc(keepFrom)
}

// gc discards versions strictly older than the newest one at or below
// keepFrom. Caller must hold r.mu.
func (r *row) gc(keepFrom int64) int {
	i := sort.Search(len(r.versions), func(i int) bool {
		return r.versions[i].Timestamp > keepFrom
	})
	// Keep the version at keepFrom itself (index i-1) so reads at keepFrom
	// still resolve.
	cut := i - 1
	if cut <= 0 {
		return 0
	}
	dropped := cut
	r.versions = append([]Version(nil), r.versions[cut:]...)
	return dropped
}

// Delete removes a row and all its versions. Used by log compaction to
// scavenge decided Paxos instance state and old log entries. Like GC, a
// lost delete record costs space after a crash, not correctness, so engine
// failures are surfaced by the sticky fail-stop flag, not here.
//
// The delete is applied and logged while holding both the shard lock and
// the row lock: the gone mark makes a racing writer that pinned the row
// re-resolve (lockRow) instead of mutating the orphaned object, and the
// under-lock Append pins the WAL order of the delete against that row's
// other mutations — without it, a Delete racing a Write could be logged in
// the opposite order of application, and recovery replay would resurrect
// the deleted row or drop the acknowledged write.
func (s *Store) Delete(key string) {
	sh := s.shards[shardFor(key)]
	sh.mu.Lock()
	r := sh.rows[key]
	if r == nil {
		sh.mu.Unlock()
		return
	}
	r.mu.Lock()
	r.gone = true
	delete(sh.rows, key)
	sh.noteDeleteLocked()
	var seq uint64
	logged := false
	if s.engine != nil {
		if sq, err := s.appendMut(Mutation{Op: OpDelete, Key: key}); err == nil {
			seq, logged = sq, true
		}
	}
	r.mu.Unlock()
	sh.mu.Unlock()
	if logged {
		_ = s.syncMut(seq)
	}
}

// KeysWithPrefix returns all keys starting with prefix, sorted.
func (s *Store) KeysWithPrefix(prefix string) []string {
	var keys []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k, r := range sh.rows {
			if !strings.HasPrefix(k, prefix) {
				continue
			}
			r.mu.Lock()
			n := len(r.versions)
			r.mu.Unlock()
			if n > 0 {
				keys = append(keys, k)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(keys)
	return keys
}

// Keys returns all keys with at least one version, in unspecified order.
// Intended for tooling and tests.
func (s *Store) Keys() []string {
	var keys []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k, r := range sh.rows {
			r.mu.Lock()
			n := len(r.versions)
			r.mu.Unlock()
			if n > 0 {
				keys = append(keys, k)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of keys with at least one version.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.rows)
		sh.mu.RUnlock()
	}
	return n
}

// Close marks the store closed and closes the attached engine (flushing and
// syncing everything logged); subsequent operations return ErrClosed. Engine
// Close is idempotent, so closing a store whose engine was already closed by
// its opener is harmless.
func (s *Store) Close() {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if !alreadyClosed && s.engine != nil {
		_ = s.engine.Close()
	}
}
