package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestReadMissingKey(t *testing.T) {
	s := New()
	if _, _, err := s.Read("nope", Latest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read missing key: err = %v, want ErrNotFound", err)
	}
}

func TestWriteThenReadLatest(t *testing.T) {
	s := New()
	ts, err := s.Write("k", Value{"a": "1"}, 5)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if ts != 5 {
		t.Fatalf("Write ts = %d, want 5", ts)
	}
	v, gotTS, err := s.Read("k", Latest)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if gotTS != 5 || v["a"] != "1" {
		t.Fatalf("Read = (%v, %d), want ({a:1}, 5)", v, gotTS)
	}
}

func TestReadAtTimestampPicksNewestNotAfter(t *testing.T) {
	s := New()
	for _, ts := range []int64{1, 3, 7} {
		if _, err := s.Write("k", Value{"v": fmt.Sprint(ts)}, ts); err != nil {
			t.Fatalf("Write ts=%d: %v", ts, err)
		}
	}
	cases := []struct {
		readTS int64
		wantV  string
		wantTS int64
	}{
		{1, "1", 1},
		{2, "1", 1},
		{3, "3", 3},
		{6, "3", 3},
		{7, "7", 7},
		{100, "7", 7},
	}
	for _, c := range cases {
		v, ts, err := s.Read("k", c.readTS)
		if err != nil {
			t.Fatalf("Read@%d: %v", c.readTS, err)
		}
		if v["v"] != c.wantV || ts != c.wantTS {
			t.Errorf("Read@%d = (%v,%d), want (v:%s,%d)", c.readTS, v, ts, c.wantV, c.wantTS)
		}
	}
}

func TestReadBeforeFirstVersion(t *testing.T) {
	s := New()
	if _, err := s.Write("k", Value{"v": "x"}, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Read("k", 9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read@9: err = %v, want ErrNotFound", err)
	}
}

func TestWriteStaleRejected(t *testing.T) {
	s := New()
	if _, err := s.Write("k", Value{"v": "a"}, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write("k", Value{"v": "b"}, 5); !errors.Is(err, ErrStaleWrite) {
		t.Fatalf("equal-ts Write: err = %v, want ErrStaleWrite", err)
	}
	if _, err := s.Write("k", Value{"v": "b"}, 3); !errors.Is(err, ErrStaleWrite) {
		t.Fatalf("older-ts Write: err = %v, want ErrStaleWrite", err)
	}
	// The stale write must not have modified the row.
	v, ts, err := s.Read("k", Latest)
	if err != nil || ts != 5 || v["v"] != "a" {
		t.Fatalf("after stale writes Read = (%v,%d,%v), want ({v:a},5,nil)", v, ts, err)
	}
}

func TestWriteAutoTimestamp(t *testing.T) {
	s := New()
	ts0, err := s.Write("k", Value{"v": "a"}, -1)
	if err != nil || ts0 != 0 {
		t.Fatalf("first auto Write = (%d,%v), want (0,nil)", ts0, err)
	}
	if _, err := s.Write("k", Value{"v": "b"}, 9); err != nil {
		t.Fatal(err)
	}
	ts2, err := s.Write("k", Value{"v": "c"}, -1)
	if err != nil || ts2 != 10 {
		t.Fatalf("auto Write after ts 9 = (%d,%v), want (10,nil)", ts2, err)
	}
}

func TestWriteIdempotent(t *testing.T) {
	s := New()
	if err := s.WriteIdempotent("k", Value{"v": "a"}, 3); err != nil {
		t.Fatal(err)
	}
	// Exact replay is fine.
	if err := s.WriteIdempotent("k", Value{"v": "a"}, 3); err != nil {
		t.Fatalf("replay: %v", err)
	}
	// Conflicting rewrite of the same position is not.
	if err := s.WriteIdempotent("k", Value{"v": "b"}, 3); !errors.Is(err, ErrStaleWrite) {
		t.Fatalf("conflicting rewrite: err = %v, want ErrStaleWrite", err)
	}
	// Backfill of an older, never-written position keeps order.
	if err := s.WriteIdempotent("k", Value{"v": "z"}, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteIdempotent("k", Value{"v": "m"}, 5); err != nil {
		t.Fatalf("backfill: %v", err)
	}
	v, ts, err := s.Read("k", 6)
	if err != nil || ts != 5 || v["v"] != "m" {
		t.Fatalf("Read@6 = (%v,%d,%v), want ({v:m},5,nil)", v, ts, err)
	}
	v, ts, _ = s.Read("k", Latest)
	if ts != 7 || v["v"] != "z" {
		t.Fatalf("latest = (%v,%d), want ({v:z},7)", v, ts)
	}
}

func TestCheckAndWrite(t *testing.T) {
	s := New()
	// Empty row: test against "" succeeds.
	if err := s.CheckAndWrite("k", "nextBal", "", Value{"nextBal": "5"}); err != nil {
		t.Fatalf("CAW on empty row: %v", err)
	}
	// Wrong expectation fails and does not write.
	err := s.CheckAndWrite("k", "nextBal", "4", Value{"nextBal": "9"})
	if !errors.Is(err, ErrCheckFailed) {
		t.Fatalf("CAW mismatch: err = %v, want ErrCheckFailed", err)
	}
	v, _, _ := s.Read("k", Latest)
	if v["nextBal"] != "5" {
		t.Fatalf("row changed by failed CAW: %v", v)
	}
	// Correct expectation succeeds.
	if err := s.CheckAndWrite("k", "nextBal", "5", Value{"nextBal": "9", "vote": "x"}); err != nil {
		t.Fatalf("CAW match: %v", err)
	}
	v, _, _ = s.Read("k", Latest)
	if v["nextBal"] != "9" || v["vote"] != "x" {
		t.Fatalf("after CAW: %v", v)
	}
}

func TestCheckAndWriteMissingAttrTreatedAsEmpty(t *testing.T) {
	s := New()
	if _, err := s.Write("k", Value{"other": "1"}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckAndWrite("k", "absent", "", Value{"absent": "now"}); err != nil {
		t.Fatalf("CAW on missing attr: %v", err)
	}
}

func TestUpdate(t *testing.T) {
	s := New()
	err := s.Update("ctr", func(v Value) (Value, error) {
		if v != nil {
			t.Fatalf("first Update got non-nil %v", v)
		}
		return Value{"n": "1"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Update("ctr", func(v Value) (Value, error) {
		if v["n"] != "1" {
			t.Fatalf("second Update got %v", v)
		}
		return Value{"n": "2"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("abort")
	if err := s.Update("ctr", func(Value) (Value, error) { return nil, sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Update abort: err = %v", err)
	}
	v, _, _ := s.Read("ctr", Latest)
	if v["n"] != "2" {
		t.Fatalf("aborted Update changed row: %v", v)
	}
}

func TestValueCloneIsolation(t *testing.T) {
	s := New()
	in := Value{"a": "1"}
	if _, err := s.Write("k", in, 0); err != nil {
		t.Fatal(err)
	}
	in["a"] = "mutated"
	v, _, _ := s.Read("k", Latest)
	if v["a"] != "1" {
		t.Fatalf("store shared caller's map: %v", v)
	}
	v["a"] = "mutated-out"
	v2, _, _ := s.Read("k", Latest)
	if v2["a"] != "1" {
		t.Fatalf("store shared returned map: %v", v2)
	}
}

func TestGC(t *testing.T) {
	s := New()
	for ts := int64(0); ts < 10; ts++ {
		if _, err := s.Write("k", Value{"v": fmt.Sprint(ts)}, ts); err != nil {
			t.Fatal(err)
		}
	}
	dropped := s.GC("k", 6)
	if dropped != 6 {
		t.Fatalf("GC dropped %d, want 6", dropped)
	}
	// Reads at >= 6 still work.
	v, ts, err := s.Read("k", 6)
	if err != nil || ts != 6 || v["v"] != "6" {
		t.Fatalf("Read@6 after GC = (%v,%d,%v)", v, ts, err)
	}
	// Reads below the kept horizon are gone.
	if _, _, err := s.Read("k", 5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read@5 after GC: err = %v, want ErrNotFound", err)
	}
	if n := s.Versions("k"); n != 4 {
		t.Fatalf("Versions = %d, want 4", n)
	}
	if d := s.GC("k", 0); d != 0 {
		t.Fatalf("GC below horizon dropped %d, want 0", d)
	}
}

func TestKeysAndLen(t *testing.T) {
	s := New()
	for _, k := range []string{"b", "a", "c"} {
		if _, err := s.Write(k, Value{"v": "1"}, 0); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestDelete(t *testing.T) {
	s := New()
	if _, err := s.Write("k", Value{"v": "1"}, 0); err != nil {
		t.Fatal(err)
	}
	s.Delete("k")
	if _, _, err := s.Read("k", Latest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read after Delete: %v", err)
	}
	if s.Versions("k") != 0 {
		t.Fatal("versions survived Delete")
	}
	// Deleting a missing key is a no-op.
	s.Delete("absent")
	// The key is writable again from scratch.
	if _, err := s.Write("k", Value{"v": "2"}, 0); err != nil {
		t.Fatalf("rewrite after Delete: %v", err)
	}
}

func TestKeysWithPrefix(t *testing.T) {
	s := New()
	for _, k := range []string{"log/g/1", "log/g/2", "log/other/1", "data/g/x"} {
		if _, err := s.Write(k, Value{"v": "1"}, 0); err != nil {
			t.Fatal(err)
		}
	}
	got := s.KeysWithPrefix("log/g/")
	if len(got) != 2 || got[0] != "log/g/1" || got[1] != "log/g/2" {
		t.Fatalf("KeysWithPrefix = %v", got)
	}
	if got := s.KeysWithPrefix("nope/"); len(got) != 0 {
		t.Fatalf("unexpected matches: %v", got)
	}
	// A prefix equal to a full key matches that key.
	if got := s.KeysWithPrefix("data/g/x"); len(got) != 1 {
		t.Fatalf("exact prefix = %v", got)
	}
}

func TestClose(t *testing.T) {
	s := New()
	s.Close()
	if _, err := s.Write("k", Value{}, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after Close: %v", err)
	}
	if _, _, err := s.Read("k", Latest); !errors.Is(err, ErrClosed) {
		t.Fatalf("Read after Close: %v", err)
	}
	if err := s.CheckAndWrite("k", "a", "", Value{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("CheckAndWrite after Close: %v", err)
	}
}

// TestCheckAndWriteMutualExclusion verifies the atomicity contract the Paxos
// acceptor depends on: of N concurrent conditional writes racing on the same
// expected value, exactly one wins.
func TestCheckAndWriteMutualExclusion(t *testing.T) {
	s := New()
	const racers = 64
	var wins int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := s.CheckAndWrite("pos", "nextBal", "", Value{"nextBal": fmt.Sprint(i)})
			if err == nil {
				mu.Lock()
				wins++
				mu.Unlock()
			} else if !errors.Is(err, ErrCheckFailed) {
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("%d racers won, want exactly 1", wins)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	s := New()
	const keys = 50
	var wg sync.WaitGroup
	for i := 0; i < keys; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := fmt.Sprintf("key-%d", i)
			for ts := int64(0); ts < 20; ts++ {
				if _, err := s.Write(k, Value{"v": fmt.Sprint(ts)}, ts); err != nil {
					t.Errorf("Write %s@%d: %v", k, ts, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		v, ts, err := s.Read(k, Latest)
		if err != nil || ts != 19 || v["v"] != "19" {
			t.Fatalf("Read %s = (%v,%d,%v)", k, v, ts, err)
		}
	}
}
