// Package disk is the durable storage engine behind internal/kvstore: an
// append-only write-ahead log with group-commit fsync batching, periodic
// snapshots, and segment rotation + compaction (DESIGN.md §14).
//
// Everything above the store — Paxos acceptor rows, replicated-log rows,
// meta/claim/data rows — already lives as kvstore rows, so attaching this
// engine makes the entire replica durable: a hard-killed txkvd restarts,
// replays the WAL tail over the newest snapshot, and rejoins with its
// promises, votes, applied watermark, and epoch intact.
//
// Layout of a data directory:
//
//	wal-<startseq>.log   log segments; records are numbered positionally
//	snap-<seq>.snap      kvstore gob snapshot covering sequence numbers <= seq
//	.disk-*              snapshot temp files (deleted on open)
//
// The durability contract is the store's mutation protocol (kvstore/engine.go):
// apply in memory and Append under the row lock (pinning WAL order to apply
// order per row), then Sync, then acknowledge. Sync blocks per the
// configured SyncPolicy — per-write fsync (SyncEvery), group commit
// (SyncBatch, the default), or timer-based (SyncInterval). Invariants D1–D3
// and their proof obligations are in DESIGN.md §14; docs/OPERATIONS.md is the
// operator-facing runbook (data-dir layout, snapshot cadence, disk-full
// behavior, recovery log lines).
package disk
