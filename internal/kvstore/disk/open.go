package disk

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"paxoscp/internal/kvstore"
)

// Open recovers (or initializes) the data directory and returns a store
// whose mutations are durably logged by the returned engine. Recovery:
//
//  1. delete leftover temp files (interrupted snapshot writes);
//  2. load the newest snapshot, if any, into a fresh store (seq horizon S);
//  3. replay every WAL record with sequence number > S, in order, via
//     Store.ApplyMutation — idempotent, so records the snapshot already
//     reflects are harmless (invariant D2);
//  4. truncate a torn tail of the final segment (the power-loss signature);
//     a malformed record in any sealed segment is corruption and Open fails;
//  5. continue appending to the final segment.
//
// The returned store has the engine attached: every subsequent mutation is
// logged before it acknowledges, per Options.Fsync. Close the store (or the
// engine) before opening the same directory again; concurrent engines on one
// directory are not detected.
func Open(dir string, opts Options) (*kvstore.Store, *Engine, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("disk: open: %w", err)
	}
	if err := removeTemps(fs, dir); err != nil {
		return nil, nil, err
	}
	segs, snaps, err := listSegments(fs, dir)
	if err != nil {
		return nil, nil, err
	}

	store := kvstore.New()
	var snapSeq uint64
	if len(snaps) > 0 {
		snapSeq = snaps[len(snaps)-1]
		f, err := fs.OpenFile(filepath.Join(dir, snapshotName(snapSeq)), os.O_RDONLY, 0)
		if err != nil {
			return nil, nil, fmt.Errorf("disk: open snapshot: %w", err)
		}
		store, err = kvstore.Load(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("disk: snapshot %s: %w", snapshotName(snapSeq), err)
		}
	}

	// Drop segments the snapshot fully covers (normally compaction already
	// removed them; a crash between snapshot and compaction leaves them).
	for len(segs) > 1 && segs[1] <= snapSeq+1 {
		if err := fs.Remove(filepath.Join(dir, segmentName(segs[0]))); err != nil {
			return nil, nil, fmt.Errorf("disk: drop covered segment: %w", err)
		}
		segs = segs[1:]
	}
	if len(segs) > 0 && segs[0] > snapSeq+1 {
		return nil, nil, fmt.Errorf("disk: missing WAL segment(s): snapshot covers <=%d but oldest segment starts at %d", snapSeq, segs[0])
	}

	lastSeq := snapSeq
	replayed, truncated := 0, int64(0)
	for i, start := range segs {
		final := i == len(segs)-1
		end, n, trunc, err := replaySegment(fs, dir, start, snapSeq, final, store)
		if err != nil {
			return nil, nil, err
		}
		replayed += n
		truncated += trunc
		if !final && end+1 != segs[i+1] {
			return nil, nil, fmt.Errorf("disk: segment %s ends at seq %d but next segment starts at %d", segmentName(start), end, segs[i+1])
		}
		lastSeq = end
	}

	// A snapshot horizon past the log end means appending at lastSeq+1 would
	// reuse sequence numbers the snapshot claims to cover — the next
	// recovery would silently skip those acknowledged writes. The engine
	// only snapshots at the flushed (durable) horizon so this cannot arise
	// from a crash; it can still appear in directories written by older
	// builds or hand-edited ones. Recover by dropping the fully-covered
	// segments and restarting the log at snapSeq+1.
	if lastSeq < snapSeq {
		opts.Logf("disk: snapshot seq=%d is past the log end seq=%d; restarting the log at %d", snapSeq, lastSeq, snapSeq+1)
		for _, start := range segs {
			if err := fs.Remove(filepath.Join(dir, segmentName(start))); err != nil {
				return nil, nil, fmt.Errorf("disk: drop covered segment: %w", err)
			}
		}
		segs = nil
		lastSeq = snapSeq
	}

	// Older snapshots are never read again once a newer one loaded.
	for _, s := range snaps {
		if s < snapSeq {
			if err := fs.Remove(filepath.Join(dir, snapshotName(s))); err != nil {
				return nil, nil, fmt.Errorf("disk: drop old snapshot: %w", err)
			}
		}
	}

	e := &Engine{
		dir:      dir,
		opts:     opts,
		fs:       fs,
		store:    store,
		appended: lastSeq,
		flushed:  lastSeq,
	}
	e.batchCond = sync.NewCond(&e.mu)
	if len(segs) == 0 {
		e.segStart = snapSeq + 1
		e.f, err = createSegment(fs, dir, e.segStart)
		if err != nil {
			return nil, nil, err
		}
	} else {
		e.segStart = segs[len(segs)-1]
		name := filepath.Join(dir, segmentName(e.segStart))
		e.f, err = fs.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			return nil, nil, fmt.Errorf("disk: reopen segment: %w", err)
		}
		st, err := e.f.Stat()
		if err != nil {
			e.f.Close()
			return nil, nil, fmt.Errorf("disk: stat segment: %w", err)
		}
		e.size = st.Size()
	}
	if opts.Fsync == SyncInterval {
		e.stop = make(chan struct{})
		e.done = make(chan struct{})
		go e.intervalLoop()
	}
	if opts.ScrubInterval > 0 {
		e.scrubStop = make(chan struct{})
		e.scrubDone = make(chan struct{})
		go e.scrubLoop()
	}
	store.AttachEngine(e)
	opts.Logf("disk: recovered dir=%s snapshot_seq=%d segments=%d replayed=%d truncated_bytes=%d last_seq=%d fsync=%s",
		dir, snapSeq, len(segs), replayed, truncated, lastSeq, opts.Fsync)
	return store, e, nil
}

// replaySegment reads one segment, applying every record with seq > snapSeq
// to store. It returns the last sequence number the segment holds, the
// number of records applied, and how many torn-tail bytes it truncated
// (final segment only).
func replaySegment(fs FS, dir string, start, snapSeq uint64, final bool, store *kvstore.Store) (end uint64, applied int, truncated int64, err error) {
	path := filepath.Join(dir, segmentName(start))
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("disk: open segment: %w", err)
	}
	cr := &countingReader{r: f}
	br := bufio.NewReader(cr)
	seq := start - 1
	for {
		recStart := cr.n - int64(br.Buffered())
		m, rerr := readRecord(br)
		if rerr == io.EOF {
			break
		}
		if errors.Is(rerr, errTorn) {
			if !final {
				f.Close()
				return 0, 0, 0, fmt.Errorf("disk: sealed segment %s corrupt: %w", segmentName(start), rerr)
			}
			st, serr := f.Stat()
			f.Close()
			if serr != nil {
				return 0, 0, 0, fmt.Errorf("disk: stat segment: %w", serr)
			}
			truncated = st.Size() - recStart
			if terr := fs.Truncate(path, recStart); terr != nil {
				return 0, 0, 0, fmt.Errorf("disk: truncate torn tail: %w", terr)
			}
			// Make the truncation durable before the segment is appended to
			// again: without the fsync a second crash could bring the stale
			// torn-tail bytes back, interleaved after newly appended records
			// at a boundary the CRC framing is not guaranteed to reject.
			tf, terr := fs.OpenFile(path, os.O_WRONLY, 0)
			if terr != nil {
				return 0, 0, 0, fmt.Errorf("disk: reopen truncated segment: %w", terr)
			}
			serr = tf.Sync()
			if cerr := tf.Close(); serr == nil {
				serr = cerr
			}
			if serr != nil {
				return 0, 0, 0, fmt.Errorf("disk: fsync truncated segment: %w", serr)
			}
			if derr := syncDir(fs, dir); derr != nil {
				return 0, 0, 0, derr
			}
			return seq, applied, truncated, nil
		}
		if rerr != nil {
			f.Close()
			return 0, 0, 0, fmt.Errorf("disk: segment %s: %w", segmentName(start), rerr)
		}
		seq++
		if seq > snapSeq {
			if aerr := store.ApplyMutation(m); aerr != nil {
				f.Close()
				return 0, 0, 0, fmt.Errorf("disk: replay seq %d: %w", seq, aerr)
			}
			applied++
		}
	}
	f.Close()
	return seq, applied, 0, nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// removeTemps deletes interrupted snapshot temp files (".disk-*"), which are
// never referenced by recovery.
func removeTemps(fs FS, dir string) error {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("disk: read dir: %w", err)
	}
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), ".disk-") {
			if err := fs.Remove(filepath.Join(dir, ent.Name())); err != nil {
				return fmt.Errorf("disk: remove temp: %w", err)
			}
		}
	}
	return nil
}

// intervalLoop is the SyncInterval background flusher.
func (e *Engine) intervalLoop() {
	defer close(e.done)
	t := time.NewTicker(e.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			e.flushMu.Lock()
			_ = e.flush(false)
			e.flushMu.Unlock()
		case <-e.stop:
			return
		}
	}
}
