package disk

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"paxoscp/internal/kvstore"
)

// quiet keeps engine log lines out of test output unless -v digging is
// needed; swap for t.Logf when debugging.
func quiet(string, ...any) {}

func mustOpen(t *testing.T, dir string, opts Options) (*kvstore.Store, *Engine) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = quiet
	}
	s, e, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, e
}

func TestOpenWriteReopen(t *testing.T) {
	dir := t.TempDir()
	s, e := mustOpen(t, dir, Options{})
	for i := 0; i < 20; i++ {
		key := "k" + strconv.Itoa(i%5)
		if _, err := s.Write(key, kvstore.Value{"a": strconv.Itoa(i)}, int64(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2, e2 := mustOpen(t, dir, Options{})
	defer e2.Close()
	for i := 0; i < 20; i++ {
		key := "k" + strconv.Itoa(i%5)
		v, ts, err := s2.Read(key, int64(i))
		if err != nil {
			t.Fatalf("read %s@%d after reopen: %v", key, i, err)
		}
		if ts != int64(i) || v["a"] != strconv.Itoa(i) {
			t.Fatalf("read %s@%d = (%v, %d), want ({a:%d}, %d)", key, i, v, ts, i, i)
		}
	}
	// The reopened store keeps accepting and persisting writes.
	if _, err := s2.Write("k0", kvstore.Value{"a": "after"}, 100); err != nil {
		t.Fatalf("write after reopen: %v", err)
	}
}

// mutHistory builds a deterministic write history: key cycles over nkeys,
// timestamps strictly increase per key.
func mutHistory(n, nkeys int) []kvstore.Mutation {
	muts := make([]kvstore.Mutation, n)
	for i := range muts {
		muts[i] = kvstore.Mutation{
			Op:    kvstore.OpWrite,
			Key:   "key-" + strconv.Itoa(i%nkeys),
			TS:    int64(i),
			Value: kvstore.Value{"attr": "v" + strconv.Itoa(i), "pad": "xxxxxxxx"},
		}
	}
	return muts
}

// expectState verifies that s holds exactly the first j mutations of muts.
func expectState(t *testing.T, s *kvstore.Store, muts []kvstore.Mutation, j int) {
	t.Helper()
	perKey := map[string]int{}
	for i := 0; i < j; i++ {
		m := muts[i]
		perKey[m.Key]++
		v, ts, err := s.Read(m.Key, m.TS)
		if err != nil {
			t.Fatalf("prefix %d: read %s@%d: %v", j, m.Key, m.TS, err)
		}
		if ts != m.TS || !v.Equal(m.Value) {
			t.Fatalf("prefix %d: read %s@%d = (%v, %d), want (%v, %d)", j, m.Key, m.TS, v, ts, m.Value, m.TS)
		}
	}
	for key, want := range perKey {
		if got := s.Versions(key); got != want {
			t.Fatalf("prefix %d: key %s has %d versions, want %d", j, key, got, want)
		}
	}
	if got := s.Len(); got != len(perKey) {
		t.Fatalf("prefix %d: store has %d keys, want %d", j, got, len(perKey))
	}
}

// TestEveryPrefixTruncation is the WAL property test: truncating the log at
// ANY byte offset and recovering must yield the state after some prefix of
// the mutation history — specifically the longest prefix of intact records.
func TestEveryPrefixTruncation(t *testing.T) {
	muts := mutHistory(24, 4)

	// Record boundaries: cumulative encoded size after each record.
	bounds := []int{0}
	var enc []byte
	for _, m := range muts {
		enc = appendRecord(enc, m)
		bounds = append(bounds, len(enc))
	}

	// Produce the reference log file by running the engine with per-write
	// sync so every record reaches the file.
	src := t.TempDir()
	s, e := mustOpen(t, src, Options{Fsync: SyncEvery})
	for _, m := range muts {
		if err := s.WriteIdempotent(m.Key, m.Value, m.TS); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segPath := filepath.Join(src, segmentName(1))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	if len(full) != len(enc) {
		t.Fatalf("engine produced %d log bytes, reference encoding %d", len(full), len(enc))
	}

	recordsIn := func(prefixLen int) int {
		j := 0
		for j+1 < len(bounds) && bounds[j+1] <= prefixLen {
			j++
		}
		return j
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := filepath.Join(t.TempDir(), "d")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, e2, err := Open(dir, Options{Logf: quiet})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		expectState(t, s2, muts, recordsIn(cut))
		e2.Close()
		s2.Close()
	}
}

// TestTornTailBytes appends garbage after a valid log and checks recovery
// truncates it without panicking, in several corruption shapes.
func TestTornTailBytes(t *testing.T) {
	muts := mutHistory(10, 3)
	var enc []byte
	for _, m := range muts {
		enc = appendRecord(enc, m)
	}
	tails := map[string][]byte{
		"half-record":  appendRecord(nil, muts[0])[:5],
		"zero-bytes":   make([]byte, 64),
		"giant-length": {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"flipped-crc": func() []byte {
			r := appendRecord(nil, muts[0])
			r[2] ^= 0xff // corrupt a checksum byte
			return r
		}(),
	}
	for name, tail := range tails {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, segmentName(1)), append(append([]byte{}, enc...), tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			s, e, err := Open(dir, Options{Logf: quiet})
			if err != nil {
				t.Fatalf("Open with torn tail: %v", err)
			}
			expectState(t, s, muts, len(muts))
			// The tail is gone from disk: a second recovery sees a clean log.
			e.Close()
			s2, e2, err := Open(dir, Options{Logf: quiet})
			if err != nil {
				t.Fatalf("second Open: %v", err)
			}
			expectState(t, s2, muts, len(muts))
			e2.Close()
		})
	}
}

// TestSealedSegmentCorruptionRefuses: a malformed record in a non-final
// segment is real corruption (rotation fsyncs before sealing), so Open must
// fail loudly instead of silently dropping committed data.
func TestSealedSegmentCorruption(t *testing.T) {
	muts := mutHistory(6, 2)
	var seg1 []byte
	for _, m := range muts[:3] {
		seg1 = appendRecord(seg1, m)
	}
	var seg2 []byte
	for _, m := range muts[3:] {
		seg2 = appendRecord(seg2, m)
	}
	dir := t.TempDir()
	// Chop the sealed first segment mid-record.
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), seg1[:len(seg1)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(4)), seg2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Logf: quiet}); err == nil {
		t.Fatal("Open accepted a corrupt sealed segment")
	}
}

// TestDoubleReplayIdempotent re-opens the same directory repeatedly and also
// re-applies every mutation a second time: both must leave the state
// unchanged (invariant D2).
func TestDoubleReplayIdempotent(t *testing.T) {
	muts := mutHistory(30, 5)
	dir := t.TempDir()
	s, e := mustOpen(t, dir, Options{})
	for _, m := range muts {
		if err := s.WriteIdempotent(m.Key, m.Value, m.TS); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()

	for round := 0; round < 3; round++ {
		s2, e2 := mustOpen(t, dir, Options{})
		expectState(t, s2, muts, len(muts))
		// Replay everything again on top of the recovered image.
		for _, m := range muts {
			if err := s2.ApplyMutation(kvstore.Mutation{Op: m.Op, Key: m.Key, TS: m.TS, Value: m.Value.Clone()}); err != nil {
				t.Fatalf("round %d: second replay: %v", round, err)
			}
		}
		expectState(t, s2, muts, len(muts))
		e2.Close()
	}
}

// TestSnapshotCompactionAndReplay forces rotations and snapshots with tiny
// segments, then recovers and checks (a) nothing is lost, (b) the log
// actually compacted.
func TestSnapshotCompactionAndReplay(t *testing.T) {
	dir := t.TempDir()
	const n = 400
	muts := mutHistory(n, 8)
	s, e := mustOpen(t, dir, Options{SegmentBytes: 1024, CompactSegments: 1})
	for _, m := range muts {
		if err := s.WriteIdempotent(m.Key, m.Value, m.TS); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, snaps, err := listSegments(osFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshot was taken despite forced rotations")
	}
	if len(segs) > 4 {
		t.Fatalf("compaction left %d segments (starts %v)", len(segs), segs)
	}
	s2, e2 := mustOpen(t, dir, Options{})
	defer e2.Close()
	expectState(t, s2, muts, n)
}

// TestCrashDurability: concurrent writers against the batch policy, a
// simulated power loss mid-traffic, then recovery. Every write that was
// acknowledged before the crash must be present afterwards (invariant D1).
func TestCrashDurability(t *testing.T) {
	dir := t.TempDir()
	s, e := mustOpen(t, dir, Options{SegmentBytes: 2048, CompactSegments: 2})

	const writers, perWriter = 8, 40
	acked := make([][]int, writers)
	var wg sync.WaitGroup
	crashAt := make(chan struct{})
	var once sync.Once
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				_, err := s.Write(key, kvstore.Value{"v": strconv.Itoa(i)}, 1)
				if err != nil {
					if errors.Is(err, ErrCrashed) {
						return
					}
					t.Errorf("writer %d: unexpected error: %v", w, err)
					return
				}
				acked[w] = append(acked[w], i)
				if w == 0 && i == perWriter/2 {
					once.Do(func() { close(crashAt) })
				}
			}
		}(w)
	}
	<-crashAt
	e.Crash()
	wg.Wait()

	s2, e2 := mustOpen(t, dir, Options{})
	defer e2.Close()
	total := 0
	for w := range acked {
		for _, i := range acked[w] {
			key := fmt.Sprintf("w%d-%d", w, i)
			if _, _, err := s2.Read(key, kvstore.Latest); err != nil {
				t.Fatalf("acknowledged write %s lost after crash: %v", key, err)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("crash happened before any write was acknowledged; test proved nothing")
	}
	t.Logf("verified %d acknowledged writes survived the crash", total)
}

// TestCrashFailStops: after Crash, mutations fail with the sticky engine
// error while reads keep serving the in-memory image.
func TestCrashFailStops(t *testing.T) {
	dir := t.TempDir()
	s, e := mustOpen(t, dir, Options{})
	if _, err := s.Write("k", kvstore.Value{"a": "1"}, 1); err != nil {
		t.Fatal(err)
	}
	e.Crash()
	if _, err := s.Write("k2", kvstore.Value{"a": "2"}, 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: err=%v, want ErrCrashed", err)
	}
	var engErr *kvstore.EngineError
	if _, err := s.Write("k3", kvstore.Value{"a": "3"}, 1); !errors.As(err, &engErr) {
		t.Fatalf("write after crash: err=%v, want *kvstore.EngineError", err)
	}
	if _, _, err := s.Read("k", kvstore.Latest); err != nil {
		t.Fatalf("read after crash should serve the in-memory image: %v", err)
	}
}

// TestGCAndDeleteSurviveRestart: the space-management mutations are logged
// and replayed too.
func TestGCAndDeleteSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s, e := mustOpen(t, dir, Options{})
	for ts := int64(0); ts < 10; ts++ {
		if err := s.WriteIdempotent("gc-key", kvstore.Value{"v": strconv.FormatInt(ts, 10)}, ts); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Write("doomed", kvstore.Value{"x": "y"}, 1); err != nil {
		t.Fatal(err)
	}
	if dropped := s.GC("gc-key", 7); dropped != 7 {
		t.Fatalf("GC dropped %d, want 7", dropped)
	}
	s.Delete("doomed")
	e.Close()

	s2, e2 := mustOpen(t, dir, Options{})
	defer e2.Close()
	if got := s2.Versions("gc-key"); got != 3 {
		t.Fatalf("gc-key has %d versions after restart, want 3", got)
	}
	if _, _, err := s2.Read("doomed", kvstore.Latest); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("deleted key resurrected after restart: err=%v", err)
	}
}

// TestSnapshotHorizonIsDurable: a snapshot must capture the durable
// (flushed) horizon, never the append horizon. A snapshot claiming
// still-queued sequence numbers can outlive them across a power loss;
// Open would then hand those sequence numbers to new acknowledged writes
// and the *next* recovery would silently skip them (a D1 violation).
func TestSnapshotHorizonIsDurable(t *testing.T) {
	dir := t.TempDir()
	s, e := mustOpen(t, dir, Options{Fsync: SyncInterval, Interval: time.Hour})
	muts := mutHistory(20, 4)
	for _, m := range muts {
		if err := s.WriteIdempotent(m.Key, m.Value, m.TS); err != nil {
			t.Fatal(err)
		}
	}
	// All 20 writes are acknowledged but queued (the hour-long interval
	// ticker never fires), so the durable log still ends at seq 0.
	if err := e.snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	_, snaps, err := listSegments(osFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sn := range snaps {
		if sn > 0 {
			t.Fatalf("snapshot claims seq %d but the durable log ends at 0", sn)
		}
	}
	e.Crash() // power loss: the queued records are gone

	// Writes acknowledged after recovery must survive the next recovery.
	s2, e2 := mustOpen(t, dir, Options{})
	post := mutHistory(15, 3)
	for _, m := range post {
		if err := s2.WriteIdempotent(m.Key, m.Value, m.TS); err != nil {
			t.Fatal(err)
		}
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, e3 := mustOpen(t, dir, Options{})
	defer e3.Close()
	for _, m := range post {
		v, ts, err := s3.Read(m.Key, m.TS)
		if err != nil {
			t.Fatalf("post-recovery write %s@%d lost: %v", m.Key, m.TS, err)
		}
		if ts != m.TS || !v.Equal(m.Value) {
			t.Fatalf("post-recovery write %s@%d = (%v, %d), want (%v, %d)", m.Key, m.TS, v, ts, m.Value, m.TS)
		}
	}
}

// TestOpenSnapshotBeyondLogEnd: a directory whose newest snapshot claims
// sequence numbers past the log end (the layout a pre-fix engine could
// leave after a power loss) must recover without reusing the covered
// sequence numbers — Open restarts the log at snapSeq+1.
func TestOpenSnapshotBeyondLogEnd(t *testing.T) {
	dir := t.TempDir()
	muts := mutHistory(10, 2)
	ref := kvstore.New()
	var enc []byte
	for _, m := range muts {
		if err := ref.ApplyMutation(m); err != nil {
			t.Fatal(err)
		}
		enc = appendRecord(enc, m)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), enc, 0o644); err != nil {
		t.Fatal(err)
	}
	// Snapshot claims seq 30; the WAL ends at seq 10.
	if err := writeSnapshot(osFS{}, dir, 30, ref); err != nil {
		t.Fatal(err)
	}

	s, e := mustOpen(t, dir, Options{})
	expectState(t, s, muts, len(muts))
	if _, err := s.Write("post", kvstore.Value{"v": "1"}, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := listSegments(osFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0] <= 30 {
		t.Fatalf("log was not restarted past the snapshot horizon: segments %v", segs)
	}

	s2, e2 := mustOpen(t, dir, Options{})
	defer e2.Close()
	if _, _, err := s2.Read("post", kvstore.Latest); err != nil {
		t.Fatalf("write after guarded recovery lost on the next recovery: %v", err)
	}
	for _, m := range muts {
		if v, ts, err := s2.Read(m.Key, m.TS); err != nil || ts != m.TS || !v.Equal(m.Value) {
			t.Fatalf("snapshot state %s@%d = (%v, %d, %v), want (%v, %d)", m.Key, m.TS, v, ts, err, m.Value, m.TS)
		}
	}
}

// TestDeleteWriteReplayConvergence: Delete and Write racing on the same
// keys must reach the WAL in apply order (both append under the row lock),
// so recovery replay converges on the exact pre-crash image — no
// resurrected rows, no lost acknowledged writes, no bogus conflicting-
// rewrite corruption reports from out-of-order (key, ts) reuse.
func TestDeleteWriteReplayConvergence(t *testing.T) {
	dir := t.TempDir()
	s, e := mustOpen(t, dir, Options{})
	keys := []string{"hot-0", "hot-1", "hot-2"}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				key := keys[(w+i)%len(keys)]
				if _, err := s.Write(key, kvstore.Value{"w": strconv.Itoa(w), "i": strconv.Itoa(i)}, -1); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 120; j++ {
			s.Delete(keys[j%len(keys)])
		}
	}()
	wg.Wait()

	type keyState struct {
		found bool
		ts    int64
		v     kvstore.Value
		n     int
	}
	mem := map[string]keyState{}
	for _, k := range keys {
		v, ts, err := s.Read(k, kvstore.Latest)
		mem[k] = keyState{found: err == nil, ts: ts, v: v, n: s.Versions(k)}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	s2, e2, err := Open(dir, Options{Logf: quiet})
	if err != nil {
		t.Fatalf("recovery after delete/write races: %v", err)
	}
	defer e2.Close()
	for _, k := range keys {
		want := mem[k]
		v, ts, rerr := s2.Read(k, kvstore.Latest)
		if (rerr == nil) != want.found {
			t.Fatalf("key %s: recovered found=%v (err=%v), memory found=%v", k, rerr == nil, rerr, want.found)
		}
		if want.found && (ts != want.ts || !v.Equal(want.v)) {
			t.Fatalf("key %s: recovered (%v, %d), memory had (%v, %d)", k, v, ts, want.v, want.ts)
		}
		if got := s2.Versions(k); got != want.n {
			t.Fatalf("key %s: %d versions recovered, memory had %d", k, got, want.n)
		}
	}
}

// TestIntervalPolicyCleanClose: interval policy may lose unflushed tail on
// power loss but a clean Close flushes everything.
func TestIntervalPolicyCleanClose(t *testing.T) {
	dir := t.TempDir()
	s, e := mustOpen(t, dir, Options{Fsync: SyncInterval})
	muts := mutHistory(50, 5)
	for _, m := range muts {
		if err := s.WriteIdempotent(m.Key, m.Value, m.TS); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s2, e2 := mustOpen(t, dir, Options{})
	defer e2.Close()
	expectState(t, s2, muts, len(muts))
}
