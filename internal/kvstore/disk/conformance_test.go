package disk_test

import (
	"testing"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/kvstore/disk"
	"paxoscp/internal/kvstore/storetest"
)

// TestDiskEngineConformance runs the engine-independent conformance suite
// against a disk-backed store, completing the cross-engine matrix the
// in-memory side runs in internal/kvstore. Tiny segments keep rotation and
// compaction in play during the suite instead of testing only the
// single-segment fast path.
func TestDiskEngineConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) *kvstore.Store {
		s, _, err := disk.Open(t.TempDir(), disk.Options{
			SegmentBytes:    4096,
			CompactSegments: 1,
		})
		if err != nil {
			t.Fatalf("disk.Open: %v", err)
		}
		t.Cleanup(s.Close)
		return s
	})
}

// TestDiskEngineConformanceSyncEvery repeats the suite under the per-write
// fsync policy, whose flush path differs from group commit.
func TestDiskEngineConformanceSyncEvery(t *testing.T) {
	if testing.Short() {
		t.Skip("per-write fsync suite is slow")
	}
	storetest.Run(t, func(t *testing.T) *kvstore.Store {
		s, _, err := disk.Open(t.TempDir(), disk.Options{Fsync: disk.SyncEvery})
		if err != nil {
			t.Fatalf("disk.Open: %v", err)
		}
		t.Cleanup(s.Close)
		return s
	})
}
