package disk

import (
	"io"
	"os"
)

// FS abstracts every file operation the engine performs — segment and
// snapshot creation, appends, fsyncs, renames, removals, directory listing —
// so tests can interpose storage faults without touching the real
// filesystem. Options.FS selects the implementation; nil means the real
// filesystem (OSFS). internal/kvstore/disk/faultfs provides an injector
// that wraps any FS with scripted or seeded-random faults: fsync errors,
// ENOSPC, torn writes, and bit rot on read.
//
// The interface is deliberately the engine's exact I/O footprint, not a
// general VFS: adding an operation here means the engine grew a new way to
// touch the disk, which the fault battery must then cover.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics (flags include
	// O_CREATE|O_EXCL for new segments, O_WRONLY|O_APPEND for reopens,
	// O_RDONLY for recovery and scrub reads — directories included, for
	// directory fsync).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a snapshot temp file, os.CreateTemp semantics.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically publishes a completed snapshot.
	Rename(oldpath, newpath string) error
	// Remove deletes a compacted segment, superseded snapshot, or temp file.
	Remove(name string) error
	// ReadDir lists a data directory (os.ReadDir semantics: sorted by name).
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll creates the data directory on first open.
	MkdirAll(path string, perm os.FileMode) error
	// Truncate cuts a torn tail off the final WAL segment during recovery.
	Truncate(name string, size int64) error
}

// File is the subset of *os.File the engine uses on an open handle.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync is fsync. The engine treats any Sync failure as fatal for the
	// handle (fail-stop): a failed fsync is never retried, because the page
	// cache may already have dropped the dirty pages the retry would
	// claim to persist.
	Sync() error
	Stat() (os.FileInfo, error)
	Truncate(size int64) error
	Name() string
}

// OSFS returns the real-filesystem implementation, the default when
// Options.FS is nil.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
