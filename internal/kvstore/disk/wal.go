package disk

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strconv"
	"strings"

	"paxoscp/internal/kvstore"
)

// WAL record format (DESIGN.md §14). Each record is
//
//	uvarint(len(payload)) | crc32-IEEE(payload) little-endian | payload
//
// and the payload is
//
//	op(1 byte) | uvarint(len(key)) key | per-op fields
//
// with per-op fields:
//
//	OpWrite:  varint(ts) | uvarint(nattrs) | nattrs × (uvarint-len attr, uvarint-len value)
//	OpDelete: (nothing)
//	OpGC:     varint(keepFrom)
//
// Attributes are encoded in sorted order so identical mutations encode to
// identical bytes. The op byte values are kvstore.Op constants, which are
// frozen (renumbering them would corrupt every existing log).

// maxRecordBytes bounds a single record. A length prefix beyond it is treated
// as a torn tail (final segment) or corruption (sealed segment) instead of an
// attempt to allocate garbage gigabytes.
const maxRecordBytes = 64 << 20

// appendRecord encodes m as one WAL record appended to dst.
func appendRecord(dst []byte, m kvstore.Mutation) []byte {
	var payload [64]byte // stack seed; real records usually fit
	p := payload[:0]
	p = append(p, byte(m.Op))
	p = binary.AppendUvarint(p, uint64(len(m.Key)))
	p = append(p, m.Key...)
	switch m.Op {
	case kvstore.OpWrite:
		p = binary.AppendVarint(p, m.TS)
		p = binary.AppendUvarint(p, uint64(len(m.Value)))
		attrs := make([]string, 0, len(m.Value))
		for k := range m.Value {
			attrs = append(attrs, k)
		}
		sort.Strings(attrs)
		for _, k := range attrs {
			p = binary.AppendUvarint(p, uint64(len(k)))
			p = append(p, k...)
			v := m.Value[k]
			p = binary.AppendUvarint(p, uint64(len(v)))
			p = append(p, v...)
		}
	case kvstore.OpDelete:
		// key only
	case kvstore.OpGC:
		p = binary.AppendVarint(p, m.TS)
	}
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(p))
	return append(dst, p...)
}

// errTorn marks a record that ends mid-air: short length prefix, short body,
// or checksum mismatch. In the final (active-at-crash) segment this is the
// expected power-loss signature and recovery truncates it away; in a sealed
// segment it is corruption and recovery refuses to proceed.
var errTorn = errors.New("torn record")

// readRecord reads one record from r. It returns errTorn (possibly wrapped)
// for any malformed tail, io.EOF exactly at a record boundary, and the
// decoded mutation otherwise.
func readRecord(r *bufio.Reader) (kvstore.Mutation, error) {
	n, err := binary.ReadUvarint(r)
	if err == io.EOF {
		return kvstore.Mutation{}, io.EOF // clean boundary
	}
	if err != nil {
		return kvstore.Mutation{}, fmt.Errorf("%w: length prefix: %v", errTorn, err)
	}
	if n == 0 || n > maxRecordBytes {
		return kvstore.Mutation{}, fmt.Errorf("%w: implausible record length %d", errTorn, n)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return kvstore.Mutation{}, fmt.Errorf("%w: checksum: %v", errTorn, err)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return kvstore.Mutation{}, fmt.Errorf("%w: body: %v", errTorn, err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return kvstore.Mutation{}, fmt.Errorf("%w: checksum mismatch", errTorn)
	}
	m, err := decodePayload(payload)
	if err != nil {
		// The checksum matched, so this is not a tear: the writer produced
		// bytes the reader cannot parse. Surface it as corruption always.
		return kvstore.Mutation{}, err
	}
	return m, nil
}

func decodePayload(p []byte) (kvstore.Mutation, error) {
	var m kvstore.Mutation
	if len(p) < 1 {
		return m, errors.New("disk: empty payload")
	}
	m.Op = kvstore.Op(p[0])
	p = p[1:]
	key, p, err := decodeString(p)
	if err != nil {
		return m, fmt.Errorf("disk: record key: %w", err)
	}
	m.Key = key
	switch m.Op {
	case kvstore.OpWrite:
		ts, n := binary.Varint(p)
		if n <= 0 {
			return m, errors.New("disk: record ts")
		}
		p = p[n:]
		m.TS = ts
		nattrs, n := binary.Uvarint(p)
		if n <= 0 || nattrs > uint64(len(p)) {
			return m, errors.New("disk: record attr count")
		}
		p = p[n:]
		val := make(kvstore.Value, nattrs)
		for i := uint64(0); i < nattrs; i++ {
			var k, v string
			if k, p, err = decodeString(p); err != nil {
				return m, fmt.Errorf("disk: record attr: %w", err)
			}
			if v, p, err = decodeString(p); err != nil {
				return m, fmt.Errorf("disk: record attr value: %w", err)
			}
			val[k] = v
		}
		m.Value = val
	case kvstore.OpDelete:
		// key only
	case kvstore.OpGC:
		ts, n := binary.Varint(p)
		if n <= 0 {
			return m, errors.New("disk: record keepFrom")
		}
		m.TS = ts
	default:
		return m, fmt.Errorf("disk: unknown op %d", m.Op)
	}
	return m, nil
}

func decodeString(p []byte) (string, []byte, error) {
	n, w := binary.Uvarint(p)
	if w <= 0 || n > uint64(len(p)-w) {
		return "", p, errors.New("bad string length")
	}
	return string(p[w : w+int(n)]), p[w+int(n):], nil
}

// Segment and snapshot file naming: wal-<startseq>.log holds records
// startseq, startseq+1, ... positionally (a record's sequence number is
// derived from its position, never stored); snap-<seq>.snap is a kvstore gob
// snapshot reflecting every mutation with sequence number <= seq.

func segmentName(startSeq uint64) string {
	return "wal-" + pad20(startSeq) + ".log"
}

func snapshotName(seq uint64) string {
	return "snap-" + pad20(seq) + ".snap"
}

func pad20(n uint64) string {
	s := strconv.FormatUint(n, 10)
	if len(s) < 20 {
		s = strings.Repeat("0", 20-len(s)) + s
	}
	return s
}

// parseSeq extracts the sequence number from a segment or snapshot file name,
// returning ok=false for unrelated files.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if mid == "" {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
