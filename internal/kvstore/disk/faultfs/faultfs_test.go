package faultfs_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"

	"paxoscp/internal/kvstore"
	"paxoscp/internal/kvstore/disk"
	"paxoscp/internal/kvstore/disk/faultfs"
	"paxoscp/internal/kvstore/storetest"
)

func quietOpts(o disk.Options) disk.Options {
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

func mustOpen(t *testing.T, dir string, o disk.Options) (*kvstore.Store, *disk.Engine) {
	t.Helper()
	s, e, err := disk.Open(dir, quietOpts(o))
	if err != nil {
		t.Fatalf("disk.Open(%s): %v", dir, err)
	}
	return s, e
}

func segName(start uint64) string { return fmt.Sprintf("wal-%020d.log", start) }

// writeHistory applies n deterministic versioned writes over nkeys keys.
func writeHistory(t *testing.T, s *kvstore.Store, n, nkeys int) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := "key-" + strconv.Itoa(i%nkeys)
		ts := int64(i/nkeys + 1)
		if err := s.WriteIdempotent(key, kvstore.Value{"v": strconv.Itoa(i)}, ts); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
}

func checkHistory(t *testing.T, s *kvstore.Store, n, nkeys int) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := "key-" + strconv.Itoa(i%nkeys)
		ts := int64(i/nkeys + 1)
		v, got, err := s.Read(key, ts)
		if err != nil || got != ts || v["v"] != strconv.Itoa(i) {
			t.Fatalf("read %s@%d = (%v, %d, %v), want v=%d", key, ts, v, got, err, i)
		}
	}
}

// TestSeamZeroFaultsByteIdentical pins that the FS seam changes no behavior:
// the same mutation history written through the default filesystem and
// through a faultfs injector with no faults armed produces byte-identical
// WAL segments and identical recovered state.
func TestSeamZeroFaultsByteIdentical(t *testing.T) {
	run := func(dir string, fs disk.FS) {
		// Small segments force rotations; huge CompactSegments disables the
		// (asynchronous, timing-dependent) snapshot path so the on-disk
		// bytes are a deterministic function of the history.
		s, e := mustOpen(t, dir, disk.Options{FS: fs, SegmentBytes: 512, CompactSegments: 1 << 20})
		writeHistory(t, s, 120, 6)
		if err := e.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	osDir, ffDir := t.TempDir(), t.TempDir()
	run(osDir, nil)
	run(ffDir, faultfs.New(nil))

	osEnts, err := os.ReadDir(osDir)
	if err != nil {
		t.Fatal(err)
	}
	ffEnts, err := os.ReadDir(ffDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(osEnts) != len(ffEnts) {
		t.Fatalf("file sets differ: os=%d faultfs=%d entries", len(osEnts), len(ffEnts))
	}
	for i := range osEnts {
		if osEnts[i].Name() != ffEnts[i].Name() {
			t.Fatalf("file %d: %s vs %s", i, osEnts[i].Name(), ffEnts[i].Name())
		}
		a, err := os.ReadFile(filepath.Join(osDir, osEnts[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(ffDir, ffEnts[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s differs between os and faultfs runs (%d vs %d bytes)", osEnts[i].Name(), len(a), len(b))
		}
	}

	// Cross-recovery: each directory reopens through the other FS.
	s2, e2 := mustOpen(t, osDir, disk.Options{FS: faultfs.New(nil)})
	checkHistory(t, s2, 120, 6)
	e2.Close()
	s3, e3 := mustOpen(t, ffDir, disk.Options{})
	checkHistory(t, s3, 120, 6)
	e3.Close()
}

// TestConformanceOverFaultFS runs the cross-engine conformance suite over a
// disk store routed through a zero-fault injector: the seam (and the
// injector as a proxy) must be behaviorally invisible.
func TestConformanceOverFaultFS(t *testing.T) {
	storetest.Run(t, func(t *testing.T) *kvstore.Store {
		s, _ := mustOpen(t, t.TempDir(), disk.Options{FS: faultfs.New(nil)})
		t.Cleanup(s.Close)
		return s
	})
}

// TestEveryOpCrashReplayOverFaultFS is the every-op crash-replay matrix run
// over the FS seam with zero faults: each mutation kind is performed through
// an injector, the engine suffers a simulated power loss, and recovery must
// reproduce the op's effect exactly.
func TestEveryOpCrashReplayOverFaultFS(t *testing.T) {
	seed := func(t *testing.T, s *kvstore.Store) {
		t.Helper()
		for ts := int64(1); ts <= 5; ts++ {
			if err := s.WriteIdempotent("base", kvstore.Value{"v": strconv.FormatInt(ts, 10)}, ts); err != nil {
				t.Fatal(err)
			}
		}
	}
	cases := []struct {
		name  string
		op    func(t *testing.T, s *kvstore.Store)
		check func(t *testing.T, s *kvstore.Store)
	}{
		{"Write", func(t *testing.T, s *kvstore.Store) {
			if _, err := s.Write("w", kvstore.Value{"x": "1"}, 7); err != nil {
				t.Fatal(err)
			}
		}, func(t *testing.T, s *kvstore.Store) {
			if v, ts, err := s.Read("w", kvstore.Latest); err != nil || ts != 7 || v["x"] != "1" {
				t.Fatalf("w = (%v, %d, %v)", v, ts, err)
			}
		}},
		{"WriteIdempotent", func(t *testing.T, s *kvstore.Store) {
			if err := s.WriteIdempotent("base", kvstore.Value{"v": "6"}, 6); err != nil {
				t.Fatal(err)
			}
		}, func(t *testing.T, s *kvstore.Store) {
			if v, _, err := s.Read("base", 6); err != nil || v["v"] != "6" {
				t.Fatalf("base@6 = (%v, %v)", v, err)
			}
		}},
		{"ApplyBatch", func(t *testing.T, s *kvstore.Store) {
			err := s.ApplyBatch([]kvstore.BatchWrite{
				{Key: "b1", Value: kvstore.Value{"v": "a"}, TS: 1},
				{Key: "b2", Value: kvstore.Value{"v": "b"}, TS: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
		}, func(t *testing.T, s *kvstore.Store) {
			for _, k := range []string{"b1", "b2"} {
				if _, _, err := s.Read(k, 1); err != nil {
					t.Fatalf("%s lost: %v", k, err)
				}
			}
		}},
		{"CheckAndWrite", func(t *testing.T, s *kvstore.Store) {
			if err := s.CheckAndWrite("caw", "owner", "", kvstore.Value{"owner": "me"}); err != nil {
				t.Fatal(err)
			}
		}, func(t *testing.T, s *kvstore.Store) {
			if v, _, err := s.Read("caw", kvstore.Latest); err != nil || v["owner"] != "me" {
				t.Fatalf("caw = (%v, %v)", v, err)
			}
		}},
		{"Update", func(t *testing.T, s *kvstore.Store) {
			err := s.Update("upd", func(cur kvstore.Value) (kvstore.Value, error) {
				return kvstore.Value{"n": "42"}, nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}, func(t *testing.T, s *kvstore.Store) {
			if v, _, err := s.Read("upd", kvstore.Latest); err != nil || v["n"] != "42" {
				t.Fatalf("upd = (%v, %v)", v, err)
			}
		}},
		{"GC", func(t *testing.T, s *kvstore.Store) {
			if dropped := s.GC("base", 4); dropped != 3 {
				t.Fatalf("GC dropped %d, want 3", dropped)
			}
		}, func(t *testing.T, s *kvstore.Store) {
			if got := s.Versions("base"); got != 2 {
				t.Fatalf("base has %d versions, want 2", got)
			}
		}},
		{"Delete", func(t *testing.T, s *kvstore.Store) {
			s.Delete("base")
		}, func(t *testing.T, s *kvstore.Store) {
			if _, _, err := s.Read("base", kvstore.Latest); !errors.Is(err, kvstore.ErrNotFound) {
				t.Fatalf("deleted key resurrected: %v", err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			// SyncEvery: every acknowledged op is durable at the crash point.
			s, e := mustOpen(t, dir, disk.Options{FS: faultfs.New(nil), Fsync: disk.SyncEvery})
			seed(t, s)
			tc.op(t, s)
			e.Crash()
			s2, e2 := mustOpen(t, dir, disk.Options{FS: faultfs.New(nil)})
			defer e2.Close()
			tc.check(t, s2)
		})
	}
}

// TestFsyncFailureNeverAcksNeverRetries pins the fsyncgate contract: a
// failed fsync must fail the write that needed it (no ack), permanently
// fail-stop the engine, and never be retried — a retry would report
// "durable" against a page cache that may have dropped the dirty pages.
func TestFsyncFailureNeverAcksNeverRetries(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(nil)
	s, e := mustOpen(t, dir, disk.Options{FS: inj, Fsync: disk.SyncEvery})

	if _, err := s.Write("acked", kvstore.Value{"v": "1"}, 1); err != nil {
		t.Fatal(err)
	}
	// Arm a TRANSIENT fault: only the very next fsync fails. If the engine
	// retried, the retry would succeed and the write would ack — exactly
	// the fsyncgate bug this test exists to catch.
	inj.FailFsyncs(0, 1)
	_, err := s.Write("lost", kvstore.Value{"v": "2"}, 1)
	if err == nil {
		t.Fatal("write acked through a failed fsync")
	}
	var ee *kvstore.EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("want EngineError, got %v", err)
	}
	if !errors.Is(err, faultfs.ErrFsync) {
		t.Fatalf("error does not surface the injected fsync failure: %v", err)
	}
	if e.Fault() == nil {
		t.Fatal("engine not fail-stopped after fsync failure")
	}
	// Fail-stop is sticky even though the fault was transient: the next
	// write must fail immediately, not fsync again.
	if _, err := s.Write("after", kvstore.Value{"v": "3"}, 1); err == nil {
		t.Fatal("write acked on a fail-stopped engine")
	}
	if got := inj.Stats().FsyncFails; got != 1 {
		t.Fatalf("injector fired %d fsync faults, want exactly 1 (no retries)", got)
	}
	// Reads keep serving the in-memory image.
	if _, _, err := s.Read("acked", kvstore.Latest); err != nil {
		t.Fatalf("read on failed engine: %v", err)
	}
	s.Close()

	// Recovery with a healthy disk: the acked write is durable; the writes
	// that errored were never acked, so any fate is legal for them — but
	// nothing acked may be missing.
	s2, e2 := mustOpen(t, dir, disk.Options{})
	defer e2.Close()
	if _, _, err := s2.Read("acked", kvstore.Latest); err != nil {
		t.Fatalf("acked write lost across fsync failure + recovery: %v", err)
	}
	if _, _, err := s2.Read("after", kvstore.Latest); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("write rejected by the fail-stop reappeared: %v", err)
	}
}

// TestDiskFullFailStops: ENOSPC behaves like any other write failure —
// the op errors with the real errno, the engine fail-stops, reads keep
// working, and a recovery on a disk with space again loses nothing acked.
func TestDiskFullFailStops(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(nil)
	s, e := mustOpen(t, dir, disk.Options{FS: inj, Fsync: disk.SyncEvery})

	inj.WriteBudget(256)
	var acked []int
	var failedAt = -1
	for i := 0; i < 100; i++ {
		_, err := s.Write("k"+strconv.Itoa(i), kvstore.Value{"v": strconv.Itoa(i)}, 1)
		if err != nil {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("write %d failed with %v, want ENOSPC", i, err)
			}
			failedAt = i
			break
		}
		acked = append(acked, i)
	}
	if failedAt < 0 {
		t.Fatal("write budget never tripped")
	}
	if e.Fault() == nil {
		t.Fatal("engine not fail-stopped on ENOSPC")
	}
	if _, _, err := s.Read("k0", kvstore.Latest); err != nil {
		t.Fatalf("read on full-disk replica: %v", err)
	}
	s.Close()

	s2, e2 := mustOpen(t, dir, disk.Options{})
	defer e2.Close()
	for _, i := range acked {
		if _, _, err := s2.Read("k"+strconv.Itoa(i), kvstore.Latest); err != nil {
			t.Fatalf("acked write k%d lost across ENOSPC + recovery: %v", i, err)
		}
	}
}

// TestTornWriteRecovers: a write torn mid-record (power fails while the
// kernel is copying the buffer) errors to the client and fail-stops; the
// next recovery truncates the torn bytes and keeps every acked write.
func TestTornWriteRecovers(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(nil)
	s, e := mustOpen(t, dir, disk.Options{FS: inj, Fsync: disk.SyncEvery})

	writeHistory(t, s, 10, 2)
	inj.TornWrite(3) // next record: 3 bytes reach the disk, then "power loss"
	if _, err := s.Write("torn", kvstore.Value{"v": "x"}, 1); err == nil {
		t.Fatal("torn write acked")
	}
	if e.Fault() == nil {
		t.Fatal("engine not fail-stopped after torn write")
	}
	s.Close()

	s2, e2 := mustOpen(t, dir, disk.Options{})
	defer e2.Close()
	checkHistory(t, s2, 10, 2)
	if _, _, err := s2.Read("torn", kvstore.Latest); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("torn unacked write resurrected whole: %v", err)
	}
}

// TestRandomFaultDurability is the fault-injection analogue of the WAL
// every-prefix property tests: across seeded-random schedules of fsync and
// write faults, every acknowledged write survives recovery and every write
// missing after recovery was errored to the client — no silently dropped
// acks.
func TestRandomFaultDurability(t *testing.T) {
	for round := 0; round < 30; round++ {
		round := round
		t.Run(fmt.Sprintf("seed=%d", round), func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.NewSeeded(nil, int64(1000+round), faultfs.Rates{
				FsyncFail: 0.04,
				TornWrite: 0.04,
			})
			s, e := mustOpen(t, dir, disk.Options{FS: inj, Fsync: disk.SyncEvery, SegmentBytes: 512})
			acked := map[int]bool{}
			errored := map[int]bool{}
			for i := 0; i < 60; i++ {
				_, err := s.Write("k"+strconv.Itoa(i), kvstore.Value{"v": strconv.Itoa(i)}, 1)
				if err != nil {
					errored[i] = true
					break // fail-stop: every later write would error too
				}
				acked[i] = true
			}
			_ = e // engine state checked through recovery below
			s.Close()

			s2, e2 := mustOpen(t, dir, disk.Options{})
			defer e2.Close()
			for i := 0; i < 60; i++ {
				_, _, err := s2.Read("k"+strconv.Itoa(i), kvstore.Latest)
				present := err == nil
				if acked[i] && !present {
					t.Fatalf("acked write k%d lost (round %d)", i, round)
				}
				if !acked[i] && !errored[i] && present {
					t.Fatalf("write k%d present but was never submitted (round %d)", i, round)
				}
				if !present && !errored[i] && acked[i] {
					t.Fatalf("k%d silently dropped (round %d)", i, round)
				}
			}
		})
	}
}

// TestScrubDetectsSegmentBitRot: a bit flipped in a sealed WAL segment —
// injected on the read path, as a decaying sector would — is detected by a
// scrub pass and reported as health, while the engine keeps serving writes.
func TestScrubDetectsSegmentBitRot(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(nil)
	// Small segments, no compaction: several sealed segments accumulate.
	s, e := mustOpen(t, dir, disk.Options{FS: inj, SegmentBytes: 256, CompactSegments: 1 << 20})
	defer e.Close()
	writeHistory(t, s, 60, 4)

	rep, err := e.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Segments == 0 {
		t.Fatalf("no sealed segments scrubbed (report %+v); shrink SegmentBytes", rep)
	}
	if len(rep.Corrupt) != 0 {
		t.Fatalf("clean directory reported corrupt: %v", rep.Corrupt)
	}

	inj.FlipBitOnRead(segName(1), 9) // rot a byte inside the first sealed segment's first record
	rep, err = e.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0] != segName(1) {
		t.Fatalf("scrub corrupt = %v, want [%s]", rep.Corrupt, segName(1))
	}
	// Health, not a crash: the engine is not poisoned and still acks.
	if e.Fault() != nil {
		t.Fatalf("scrub finding poisoned the engine: %v", e.Fault())
	}
	if _, err := s.Write("after-rot", kvstore.Value{"v": "1"}, 1); err != nil {
		t.Fatalf("write after scrub finding: %v", err)
	}
	fault, runs, corrupt := e.HealthSummary()
	if fault != "" || runs != 2 || len(corrupt) != 1 {
		t.Fatalf("HealthSummary = (%q, %d, %v), want (\"\", 2, 1 file)", fault, runs, corrupt)
	}
}

// TestScrubDetectsSnapshotBitRot: same for snapshots — a flipped bit makes
// the snapshot undecodable, which the scrub reports before a recovery
// would have needed that snapshot.
func TestScrubDetectsSnapshotBitRot(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(nil)
	s, e := mustOpen(t, dir, disk.Options{FS: inj, SegmentBytes: 256, CompactSegments: 1})
	defer e.Close()
	writeHistory(t, s, 200, 4)
	// Compaction runs in the background; wait for a snapshot to exist.
	var snap string
	for i := 0; i < 200 && snap == ""; i++ {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range ents {
			if filepath.Ext(ent.Name()) == ".snap" {
				snap = ent.Name()
			}
		}
		if snap == "" {
			writeHistory(t, s, 20, 4)
		}
	}
	if snap == "" {
		t.Skip("no snapshot materialized; compaction did not trigger")
	}
	inj.FlipBitOnRead(snap, 5) // corrupt the gob header region
	rep, err := e.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	found := false
	for _, c := range rep.Corrupt {
		if c == snap {
			found = true
		}
	}
	if !found {
		t.Fatalf("scrub did not flag corrupted snapshot %s (corrupt=%v)", snap, rep.Corrupt)
	}
	if e.Fault() != nil {
		t.Fatalf("snapshot rot poisoned the engine: %v", e.Fault())
	}
}

// TestBitRotOnRecoveryOfSealedSegmentFails pins the recovery side of the
// rot story: a sealed segment whose bytes read back corrupt makes Open fail
// loudly (corruption is never silently truncated away in sealed segments) —
// which is exactly why the scrub exists to catch it first.
func TestBitRotOnRecoveryOfSealedSegmentFails(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(nil)
	s, e := mustOpen(t, dir, disk.Options{FS: inj, SegmentBytes: 256, CompactSegments: 1 << 20})
	writeHistory(t, s, 60, 4)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	_ = s

	inj.FlipBitOnRead(segName(1), 9)
	_, _, err := disk.Open(dir, quietOpts(disk.Options{FS: inj}))
	if err == nil {
		t.Fatal("Open succeeded over a rotted sealed segment")
	}
}
