// Package faultfs is a fault-injecting implementation of disk.FS: it
// forwards every operation to a base filesystem (the real one by default)
// and interposes the storage faults production disks actually exhibit —
// fsync errors (transient and sticky), ENOSPC after a byte budget, short
// (torn) writes at crash points, and bit rot observed on read of sealed
// segments and snapshots.
//
// Faults are armed two ways:
//
//   - Scripted: FailFsyncs / StickyFailFsyncs / WriteBudget / TornWrite /
//     FlipBitOnRead arm one precise fault, for tests that pin a single
//     behavior (the fsyncgate pin, the ENOSPC fail-stop, the scrub
//     detection test, the cluster disk-death nemesis).
//   - Seeded-random: NewSeeded draws per-operation faults from a
//     deterministic rng, for property tests that sweep many schedules
//     (every acked write durable, every lost write errored).
//
// Injection policy: fault accounting applies only to writable handles, so
// a scripted "fail the 3rd fsync" counts WAL/snapshot fsyncs, not the
// directory fsyncs interleaved between them; bit flips apply only to
// read-only handles (recovery and scrub reads) and corrupt the bytes
// observed, never the file itself. The injector is safe for concurrent use
// and counts every fault it fires (Stats).
package faultfs

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"

	"math/rand"

	"paxoscp/internal/kvstore/disk"
)

// Injected fault errors. ErrDiskFull wraps syscall.ENOSPC so callers (and
// the engine's fail-stop message) see the errno a real full disk reports.
var (
	ErrFsync    = fmt.Errorf("faultfs: injected fsync failure: %w", syscall.EIO)
	ErrWrite    = fmt.Errorf("faultfs: injected write failure: %w", syscall.EIO)
	ErrDiskFull = fmt.Errorf("faultfs: injected disk full: %w", syscall.ENOSPC)
)

// Stats counts the faults the injector has fired.
type Stats struct {
	FsyncFails int
	DiskFulls  int
	TornWrites int
	BitFlips   int
}

// Rates are the per-operation fault probabilities for seeded-random mode.
// Zero values inject nothing.
type Rates struct {
	// FsyncFail is the chance each fsync of a writable file fails.
	FsyncFail float64
	// TornWrite is the chance each write persists only a random prefix and
	// reports an I/O error.
	TornWrite float64
	// BitFlip is the chance each read from a WAL segment or snapshot
	// observes one flipped bit.
	BitFlip float64
}

// FS is the injector. The zero value is not usable; construct with New or
// NewSeeded.
type FS struct {
	mu   sync.Mutex
	base disk.FS
	rng  *rand.Rand // nil in scripted-only mode
	prob Rates

	// Scripted fsync fault: after `fsyncAfter` more successful fsyncs,
	// the next `fsyncFail` fsyncs fail (-1 = every one, forever).
	fsyncAfter int
	fsyncFail  int

	budget   int64            // bytes writable before ENOSPC; -1 = unlimited
	tornKeep int              // next write persists only this many bytes; -1 = off
	flips    map[string]int64 // base name -> byte offset read with bit 0 flipped

	st Stats
}

// New returns a scripted-mode injector over base (nil base = the real
// filesystem). Until a fault is armed it is a transparent proxy.
func New(base disk.FS) *FS {
	if base == nil {
		base = disk.OSFS()
	}
	return &FS{base: base, budget: -1, tornKeep: -1, flips: map[string]int64{}}
}

// NewSeeded returns an injector drawing faults from a deterministic rng.
// Scripted faults may still be armed on top.
func NewSeeded(base disk.FS, seed int64, rates Rates) *FS {
	f := New(base)
	f.rng = rand.New(rand.NewSource(seed))
	f.prob = rates
	return f
}

// FailFsyncs arms a transient fsync fault: after `after` more successful
// fsyncs of writable files, the next `count` fsyncs fail.
func (f *FS) FailFsyncs(after, count int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fsyncAfter, f.fsyncFail = after, count
}

// StickyFailFsyncs arms a sticky fsync fault: after `after` more successful
// fsyncs, every fsync fails forever — the dying-disk signature the cluster
// nemesis uses to kill a datacenter's storage.
func (f *FS) StickyFailFsyncs(after int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fsyncAfter, f.fsyncFail = after, -1
}

// WriteBudget arms ENOSPC: writes succeed until n more bytes have been
// written, then every write fails with a wrapped syscall.ENOSPC (the write
// straddling the boundary persists the prefix that fits — what a real full
// disk does). n < 0 disarms.
func (f *FS) WriteBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = n
}

// TornWrite arms a short write at the next crash point: the next write to
// any writable file persists only the first keep bytes and reports an I/O
// error, simulating power failing mid-write.
func (f *FS) TornWrite(keep int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tornKeep = keep
}

// FlipBitOnRead arms bit rot on one file: every read-only handle of the
// file with base name `name` observes bit 0 of byte `off` flipped. The
// file on disk is untouched — exactly a decaying sector returning wrong
// bits.
func (f *FS) FlipBitOnRead(name string, off int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flips[name] = off
}

// Clear disarms every scripted fault (seeded rates keep drawing).
func (f *FS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fsyncAfter, f.fsyncFail = 0, 0
	f.budget = -1
	f.tornKeep = -1
	f.flips = map[string]int64{}
}

// Stats returns the fault counters.
func (f *FS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

// syncErr decides one writable-file fsync's fate.
func (f *FS) syncErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fsyncFail != 0 {
		if f.fsyncAfter > 0 {
			f.fsyncAfter--
		} else {
			if f.fsyncFail > 0 {
				f.fsyncFail--
			}
			f.st.FsyncFails++
			return ErrFsync
		}
	}
	if f.rng != nil && f.prob.FsyncFail > 0 && f.rng.Float64() < f.prob.FsyncFail {
		f.st.FsyncFails++
		return ErrFsync
	}
	return nil
}

// writeFate decides one write's fate: how many of n bytes to persist, and
// the error to report (nil = full clean write).
func (f *FS) writeFate(n int) (keep int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tornKeep >= 0 {
		keep = f.tornKeep
		if keep > n {
			keep = n
		}
		f.tornKeep = -1
		f.st.TornWrites++
		return keep, ErrWrite
	}
	if f.budget >= 0 {
		if int64(n) > f.budget {
			keep = int(f.budget)
			f.budget = 0
			f.st.DiskFulls++
			return keep, ErrDiskFull
		}
		f.budget -= int64(n)
	}
	if f.rng != nil && f.prob.TornWrite > 0 && f.rng.Float64() < f.prob.TornWrite {
		f.st.TornWrites++
		return f.rng.Intn(n + 1), ErrWrite
	}
	return n, nil
}

// readCorruption reports the flips to apply to a read of `name` covering
// bytes [off, off+n): scripted offsets plus (for WAL segments and
// snapshots) a seeded-random single-bit flip.
func (f *FS) readCorruption(name string, off int64, n int) []int {
	if n <= 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var at []int
	if fo, ok := f.flips[name]; ok && fo >= off && fo < off+int64(n) {
		at = append(at, int(fo-off))
		f.st.BitFlips++
	}
	if f.rng != nil && f.prob.BitFlip > 0 && walOrSnap(name) && f.rng.Float64() < f.prob.BitFlip {
		at = append(at, f.rng.Intn(n))
		f.st.BitFlips++
	}
	return at
}

func walOrSnap(name string) bool {
	return strings.HasPrefix(name, "wal-") || strings.HasPrefix(name, "snap-")
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, os.PathSeparator); i >= 0 {
		return path[i+1:]
	}
	return path
}

// disk.FS implementation.

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (disk.File, error) {
	h, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{File: h, fs: f, name: baseName(name), writable: flag&(os.O_WRONLY|os.O_RDWR) != 0}, nil
}

func (f *FS) CreateTemp(dir, pattern string) (disk.File, error) {
	h, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &file{File: h, fs: f, name: baseName(h.Name()), writable: true}, nil
}

func (f *FS) Rename(oldpath, newpath string) error { return f.base.Rename(oldpath, newpath) }

func (f *FS) Remove(name string) error { return f.base.Remove(name) }

func (f *FS) ReadDir(name string) ([]os.DirEntry, error) { return f.base.ReadDir(name) }

func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.base.MkdirAll(path, perm) }

func (f *FS) Truncate(name string, size int64) error { return f.base.Truncate(name, size) }

// file wraps one handle. Reads track the handle's sequential offset so bit
// flips land on absolute file positions.
type file struct {
	disk.File
	fs       *FS
	name     string
	writable bool
	off      int64 // read offset (read-only handles are never written)
}

func (h *file) Read(p []byte) (int, error) {
	n, err := h.File.Read(p)
	if !h.writable {
		for _, at := range h.fs.readCorruption(h.name, h.off, n) {
			p[at] ^= 1
		}
		h.off += int64(n)
	}
	return n, err
}

func (h *file) Write(p []byte) (int, error) {
	if !h.writable {
		return h.File.Write(p)
	}
	keep, ferr := h.fs.writeFate(len(p))
	if ferr == nil {
		return h.File.Write(p)
	}
	n := 0
	if keep > 0 {
		n, _ = h.File.Write(p[:keep])
	}
	return n, ferr
}

func (h *file) Sync() error {
	if h.writable {
		if err := h.fs.syncErr(); err != nil {
			return err
		}
	}
	return h.File.Sync()
}
