package disk

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"paxoscp/internal/kvstore"
)

// SyncPolicy selects when the engine fsyncs the write-ahead log relative to
// acknowledging a mutation (the txkvd -fsync flag; bench.Durability measures
// the three against each other).
type SyncPolicy string

const (
	// SyncEvery fsyncs once per acknowledged mutation — the honest
	// no-batching baseline. Durability bound: nothing acknowledged is ever
	// lost.
	SyncEvery SyncPolicy = "sync"
	// SyncBatch (the default) group-commits: the first waiter performs the
	// fsync and every mutation that queued behind it during that fsync is
	// absorbed into the next one, so N concurrent writers pay ~2 fsyncs,
	// not N. Durability bound: same as SyncEvery — every acknowledged
	// mutation is durable — only the acknowledgement latency differs.
	SyncBatch SyncPolicy = "batch"
	// SyncInterval acknowledges immediately and fsyncs on a timer. The only
	// policy that can lose acknowledged mutations on power loss (up to one
	// interval's worth); a clean Close still flushes everything.
	SyncInterval SyncPolicy = "interval"
)

// ParsePolicy converts a -fsync flag value into a SyncPolicy.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncEvery, SyncBatch, SyncInterval:
		return SyncPolicy(s), nil
	case "":
		return SyncBatch, nil
	}
	return "", fmt.Errorf("disk: unknown fsync policy %q (want sync, batch, or interval)", s)
}

// Options tunes an engine. The zero value is usable: batch fsync, 4 MiB
// segments, compaction after 2 sealed segments, 50 ms interval-policy timer,
// silent logging.
type Options struct {
	// Fsync is the sync policy; empty means SyncBatch.
	Fsync SyncPolicy
	// SegmentBytes rotates the active WAL segment once its durable size
	// reaches this many bytes. Default 4 MiB.
	SegmentBytes int64
	// CompactSegments triggers a snapshot + log compaction when this many
	// sealed (rotated-out) segments exist. Default 2.
	CompactSegments int
	// Interval is the SyncInterval flush period. Default 50 ms.
	Interval time.Duration
	// Logf receives recovery and compaction log lines (docs/OPERATIONS.md
	// documents the format). nil discards them.
	Logf func(format string, args ...any)
	// FS routes every file operation the engine performs; nil means the
	// real filesystem (OSFS). Tests inject storage faults through
	// internal/kvstore/disk/faultfs.
	FS FS
	// OnFail is invoked exactly once, with the first failure, when the
	// engine fail-stops (fsync error, write error, ENOSPC, simulated power
	// loss). It runs on the failing goroutine and may be called while
	// engine locks are held by callers — keep it quick and do not call back
	// into the engine. nil disables the callback.
	OnFail func(error)
	// ScrubInterval enables the background checksum scrub: every interval,
	// the engine re-reads all sealed WAL segments (verifying each record's
	// CRC framing) and all snapshots (verifying they still decode) and
	// records any corruption as health state — never as a crash. 0 disables
	// the background pass; Engine.Scrub still runs one on demand.
	ScrubInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.Fsync == "" {
		o.Fsync = SyncBatch
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CompactSegments <= 0 {
		o.CompactSegments = 2
	}
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
	return o
}

// ErrCrashed is the sticky failure installed by Crash: the simulated
// power loss every subsequent operation reports.
var ErrCrashed = errors.New("disk: engine crashed (simulated power loss)")

var errClosed = errors.New("disk: engine closed")

// Engine is the disk-backed kvstore.Engine: an append-only WAL with
// group-commit fsync batching, segment rotation, and snapshot-based
// compaction. Construct with Open, which also performs crash recovery.
//
// Writes take two locks in sequence, never nested the other way: mu guards
// the in-memory queue (encode + sequence assignment, O(record) work) and
// flushMu serializes the write+fsync+rotate cycle. An fsync holds only
// flushMu, so appends keep queuing while it runs — that queue is exactly the
// batch the next fsync absorbs.
type Engine struct {
	dir   string
	opts  Options
	fs    FS
	store *kvstore.Store

	// flushMu serializes flush cycles (file write, fsync, rotation).
	flushMu sync.Mutex

	mu       sync.Mutex
	buf      []byte // records encoded but not yet written to the file
	spare    []byte // recycled buf to keep steady-state appends allocation-free
	appended uint64 // seq of the last record in buf (or flushed)
	flushed  uint64 // seq of the last record durable on disk
	// Group-commit election state (SyncBatch only): one flusher at a time;
	// riders wait on batchCond (signaled on &mu) and are all woken by the
	// flusher's broadcast when their records land.
	batchFlushing bool
	batchCond     *sync.Cond
	f             File   // active segment
	size          int64  // durable bytes in the active segment
	segStart      uint64 // first seq of the active segment
	fsyncs        uint64 // segment fsyncs performed (group-commit absorption metric)
	err           error  // sticky failure; fail-stop
	closed        bool

	snapWG   sync.WaitGroup
	snapBusy bool // single-flight snapshot/compaction

	// Scrub health (scrub.go): passes completed and the corrupt files the
	// latest pass found. Corruption is reported here — health, not a crash.
	scrubMu      sync.Mutex
	scrubRuns    int
	scrubCorrupt []string

	stop chan struct{} // interval-policy ticker shutdown
	done chan struct{}

	scrubStop chan struct{} // background scrub shutdown
	scrubDone chan struct{}
}

// Append implements kvstore.Engine: encode muts into the in-memory queue and
// assign them the next sequence numbers. No file I/O happens here.
func (e *Engine) Append(muts []kvstore.Mutation) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return 0, e.err
	}
	if e.closed {
		return 0, errClosed
	}
	for i := range muts {
		e.buf = appendRecord(e.buf, muts[i])
	}
	e.appended += uint64(len(muts))
	return e.appended, nil
}

// Sync implements kvstore.Engine per the configured policy.
func (e *Engine) Sync(seq uint64) error {
	switch e.opts.Fsync {
	case SyncInterval:
		// Acknowledge immediately; the ticker flushes. Only the sticky
		// failure is surfaced.
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.err
	case SyncEvery:
		// One unconditional fsync per acknowledged mutation, even when a
		// predecessor's fsync already covered this record: this is the
		// honest no-batching baseline bench.Durability compares against.
		e.flushMu.Lock()
		defer e.flushMu.Unlock()
		return e.flush(true)
	default: // SyncBatch
		// Group commit without a waiter convoy: the first uncovered caller
		// elects itself flusher (batchFlushing); everyone else waits on the
		// condition variable and is woken — all at once — by the flusher's
		// broadcast. Riders never queue on a mutex just to learn they're
		// covered: with serial mutex hand-off a hot writer barges the lock
		// back and degenerates group commit into one fsync per record.
		e.mu.Lock()
		defer e.mu.Unlock()
		for {
			if e.err != nil {
				return e.err
			}
			if e.flushed >= seq {
				return nil
			}
			if e.batchFlushing {
				e.batchCond.Wait()
				continue
			}
			e.batchFlushing = true
			e.mu.Unlock()
			// Gather step: yield once so every writer that is runnable right
			// now — typically the riders the previous broadcast released —
			// Appends before we capture the batch. On few-core machines the
			// runtime rarely hands our P off mid-fsync, so without this the
			// batch would hold only the records queued while we slept.
			runtime.Gosched()
			e.flushMu.Lock()
			err := e.flush(false)
			e.flushMu.Unlock()
			e.mu.Lock()
			e.batchFlushing = false
			e.batchCond.Broadcast()
			if err != nil {
				return err
			}
		}
	}
}

// flush drains the queue to the active segment and fsyncs. Caller must hold
// flushMu. force fsyncs even when the queue is empty (SyncEvery, Close).
func (e *Engine) flush(force bool) error {
	e.mu.Lock()
	if e.err != nil {
		e.mu.Unlock()
		return e.err
	}
	buf := e.buf
	e.buf = e.spare[:0]
	seq := e.appended
	f := e.f
	e.mu.Unlock()
	synced := false
	if len(buf) > 0 || force {
		if _, err := f.Write(buf); err != nil {
			return e.fail(fmt.Errorf("disk: segment write: %w", err))
		}
		if err := f.Sync(); err != nil {
			return e.fail(fmt.Errorf("disk: segment fsync: %w", err))
		}
		synced = true
	}
	e.mu.Lock()
	if synced {
		e.fsyncs++
	}
	e.flushed = seq
	e.size += int64(len(buf))
	e.spare = buf[:0]
	size := e.size
	e.mu.Unlock()
	if size >= e.opts.SegmentBytes {
		return e.rotate(seq)
	}
	return nil
}

// rotate seals the active segment (already fsynced by flush) and opens a
// fresh one starting at flushedSeq+1. Caller must hold flushMu.
func (e *Engine) rotate(flushedSeq uint64) error {
	next, err := createSegment(e.fs, e.dir, flushedSeq+1)
	if err != nil {
		return e.fail(err)
	}
	e.mu.Lock()
	old := e.f
	e.f = next
	e.size = 0
	e.segStart = flushedSeq + 1
	e.mu.Unlock()
	if err := old.Close(); err != nil {
		return e.fail(fmt.Errorf("disk: sealing segment: %w", err))
	}
	sealed, _, err := listSegments(e.fs, e.dir)
	if err != nil {
		return e.fail(err)
	}
	if len(sealed)-1 >= e.opts.CompactSegments {
		e.maybeSnapshot()
	}
	return nil
}

// maybeSnapshot kicks off one background snapshot + compaction unless one is
// already running or the engine is closed/poisoned.
func (e *Engine) maybeSnapshot() {
	e.mu.Lock()
	if e.snapBusy || e.closed || e.err != nil {
		e.mu.Unlock()
		return
	}
	e.snapBusy = true
	e.mu.Unlock()
	e.snapWG.Add(1)
	go func() {
		defer e.snapWG.Done()
		err := e.snapshot()
		e.mu.Lock()
		e.snapBusy = false
		e.mu.Unlock()
		if err != nil {
			e.fail(err)
		}
	}()
}

// snapshot writes a durable snapshot at the current durable horizon
// (flushed, NOT appended) and removes the log segments (and older
// snapshots) it supersedes.
//
// Safety of the capture point: S is read under mu, so every record with
// sequence number <= S was Appended — and, by the store's
// apply-then-Append mutation protocol, applied to the in-memory image —
// before the capture. Store.Save therefore reflects every mutation <= S,
// and any sealed segment whose records all have seq <= S is redundant once
// the snapshot is durable.
//
// The horizon must be the flushed seq, not the appended one: records still
// queued in buf are not yet on disk, so a snapshot claiming to cover them
// could outlive them — after a power loss the WAL ends at some F < S while
// snap-S survives, Open resumes appending at F+1, and acknowledged writes
// get assigned sequence numbers <= S that the next recovery would silently
// skip. flushed records, by contrast, are durable before S is captured, so
// snapSeq can never exceed the log end a crash leaves behind.
func (e *Engine) snapshot() error {
	e.mu.Lock()
	s := e.flushed
	e.mu.Unlock()
	if err := writeSnapshot(e.fs, e.dir, s, e.store); err != nil {
		return err
	}
	removed, err := compactTo(e.fs, e.dir, s)
	if err != nil {
		return err
	}
	e.opts.Logf("disk: snapshot seq=%d dir=%s removed_segments=%d", s, e.dir, removed)
	return nil
}

// fail records the first failure; the engine (and the store above it,
// through kvstore's sticky engineErr) fail-stops all further mutations.
// The first failure is reported loudly — one ERROR-level line describing
// the fail-stop and its operational consequence, plus the Options.OnFail
// callback — so a replica dying of a sick disk is visible to operators,
// not just to the clients whose writes start failing.
func (e *Engine) fail(err error) error {
	e.mu.Lock()
	first := e.err == nil
	if first {
		e.err = err
		e.opts.Logf("disk: ERROR: engine failed (fail-stop): %v", err)
		e.opts.Logf("disk: this replica no longer acknowledges mutations (dir=%s); reads keep serving the in-memory image, and mastership fails over once the lease lapses", e.dir)
	} else {
		err = e.err
	}
	e.mu.Unlock()
	if first && e.opts.OnFail != nil {
		e.opts.OnFail(err)
	}
	return err
}

// Fault reports the engine's sticky failure, nil while healthy. The
// fail-stop is permanent for the process: recovery requires reopening the
// data directory (disk.Open), typically after replacing the bad disk.
func (e *Engine) Fault() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Close flushes and fsyncs everything queued, waits for any in-flight
// snapshot, and releases the segment file. Idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	if e.stop != nil {
		close(e.stop)
		<-e.done
	}
	if e.scrubStop != nil {
		close(e.scrubStop)
		<-e.scrubDone
	}
	e.snapWG.Wait()
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	err := e.flush(false)
	e.mu.Lock()
	f := e.f
	crashed := errors.Is(e.err, ErrCrashed)
	e.mu.Unlock()
	if cerr := f.Close(); cerr != nil && err == nil && !crashed {
		err = cerr
	}
	if crashed {
		return nil // Crash already sealed the files; nothing left to flush
	}
	return err
}

// Crash simulates power loss for tests: every queued-but-unflushed byte
// (the "page cache") is discarded, the active segment is truncated to its
// durable prefix, and the engine is poisoned so the store above fail-stops.
// The on-disk state is exactly what a kill -9 plus machine reset would
// leave; reopen the directory with Open to recover.
func (e *Engine) Crash() {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	e.snapWG.Wait()
	e.mu.Lock()
	if e.err == nil {
		e.err = ErrCrashed
	}
	e.buf = nil
	e.spare = nil
	f := e.f
	size := e.size
	e.mu.Unlock()
	_ = f.Truncate(size)
	_ = f.Close()
}

// Dir returns the engine's data directory.
func (e *Engine) Dir() string { return e.dir }

// Fsyncs returns how many segment fsyncs the engine has performed. The
// group-commit absorption metric: under SyncBatch, N concurrent acknowledged
// writes cost far fewer than N fsyncs (bench.Durability and its pinned test).
func (e *Engine) Fsyncs() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fsyncs
}

// helpers shared with open.go

func createSegment(fs FS, dir string, startSeq uint64) (File, error) {
	f, err := fs.OpenFile(filepath.Join(dir, segmentName(startSeq)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: create segment: %w", err)
	}
	if err := syncDir(fs, dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func syncDir(fs FS, dir string) error {
	d, err := fs.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return fmt.Errorf("disk: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("disk: fsync dir: %w", err)
	}
	return nil
}

// writeSnapshot durably writes snap-<seq>.snap via temp file + rename + dir
// fsync, so a crash at any point leaves either no snapshot or a complete one.
func writeSnapshot(fs FS, dir string, seq uint64, s *kvstore.Store) error {
	tmp, err := fs.CreateTemp(dir, ".disk-snap-*")
	if err != nil {
		return fmt.Errorf("disk: snapshot temp: %w", err)
	}
	defer fs.Remove(tmp.Name())
	if err := s.Save(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("disk: snapshot save: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("disk: snapshot fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("disk: snapshot close: %w", err)
	}
	if err := fs.Rename(tmp.Name(), filepath.Join(dir, snapshotName(seq))); err != nil {
		return fmt.Errorf("disk: snapshot rename: %w", err)
	}
	return syncDir(fs, dir)
}

// compactTo removes snapshots older than seq and every sealed segment whose
// records are all <= seq (the newest segment — the active one — is never
// removed). Returns the number of segments removed.
func compactTo(fs FS, dir string, seq uint64) (int, error) {
	segs, snaps, err := listSegments(fs, dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, s := range snaps {
		if s < seq {
			if err := fs.Remove(filepath.Join(dir, snapshotName(s))); err != nil {
				return removed, fmt.Errorf("disk: compact: %w", err)
			}
		}
	}
	// Segment i covers [segs[i], segs[i+1]-1]: removable when the next
	// segment starts at or below seq+1.
	for i := 0; i+1 < len(segs) && segs[i+1] <= seq+1; i++ {
		if err := fs.Remove(filepath.Join(dir, segmentName(segs[i]))); err != nil {
			return removed, fmt.Errorf("disk: compact: %w", err)
		}
		removed++
	}
	if removed > 0 {
		return removed, syncDir(fs, dir)
	}
	return removed, nil
}

// listSegments returns the start sequence numbers of all WAL segments and
// all snapshot sequence numbers in dir, each sorted ascending.
func listSegments(fs FS, dir string) (segs, snaps []uint64, err error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("disk: read dir: %w", err)
	}
	for _, ent := range entries {
		if n, ok := parseSeq(ent.Name(), "wal-", ".log"); ok {
			segs = append(segs, n)
		} else if n, ok := parseSeq(ent.Name(), "snap-", ".snap"); ok {
			snaps = append(snaps, n)
		}
	}
	// os.ReadDir sorts by name and the names are zero-padded to 20 digits,
	// so both slices are already ascending.
	return segs, snaps, nil
}
