package disk

import (
	"bufio"
	"errors"
	"io"
	"os"
	"path/filepath"
	"time"

	"paxoscp/internal/kvstore"
)

// Background checksum scrub. Sealed WAL segments and snapshots are written
// once and read again only at recovery — bit rot in them stays invisible
// until the exact moment the data is needed, when a corrupt sealed segment
// turns a routine restart into a hard Open failure. The scrub re-reads the
// immutable files ahead of time: every record in every sealed segment is
// re-verified against its CRC framing, and every snapshot is re-decoded.
// Corruption found this way is HEALTH, not a crash: the in-memory image and
// the mutation path are unaffected, so the replica keeps serving while the
// operator (alerted through GroupStatus/txkvctl, see docs/OPERATIONS.md)
// re-replicates the data before the next recovery needs it.

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	// Segments and Snapshots count the sealed files verified; Records the
	// WAL records whose CRC framing was re-checked.
	Segments  int
	Snapshots int
	Records   int
	// Corrupt lists the file names (not paths) that failed verification.
	Corrupt []string
}

// Scrub runs one synchronous scrub pass and records its findings in the
// engine's health state (HealthSummary). The active WAL segment is skipped —
// it is being appended to and its tail is allowed to be torn — and files
// compacted away mid-pass are skipped, not reported. Scrub never poisons
// the engine: detecting rot in a sealed file is exactly the case where the
// replica must keep serving so the data can be re-replicated from it.
func (e *Engine) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	segs, snaps, err := listSegments(e.fs, e.dir)
	if err != nil {
		return rep, err
	}
	e.mu.Lock()
	active := e.segStart
	e.mu.Unlock()
	for _, start := range segs {
		if start == active {
			continue
		}
		n, ok, err := e.scrubSegment(start)
		if err != nil {
			return rep, err
		}
		if n < 0 {
			continue // compacted away mid-pass
		}
		rep.Segments++
		rep.Records += n
		if !ok {
			rep.Corrupt = append(rep.Corrupt, segmentName(start))
		}
	}
	for _, seq := range snaps {
		ok, gone, err := e.scrubSnapshot(seq)
		if err != nil {
			return rep, err
		}
		if gone {
			continue
		}
		rep.Snapshots++
		if !ok {
			rep.Corrupt = append(rep.Corrupt, snapshotName(seq))
		}
	}
	e.scrubMu.Lock()
	e.scrubRuns++
	e.scrubCorrupt = append([]string(nil), rep.Corrupt...)
	e.scrubMu.Unlock()
	if len(rep.Corrupt) > 0 {
		e.opts.Logf("disk: ERROR: scrub found corruption dir=%s files=%v — re-replicate this replica before its next recovery", e.dir, rep.Corrupt)
	}
	return rep, nil
}

// scrubSegment re-reads one sealed segment, verifying every record's CRC
// framing. Returns the record count and whether the segment is intact;
// n == -1 means the file disappeared (compaction won the race).
func (e *Engine) scrubSegment(start uint64) (n int, ok bool, err error) {
	f, err := e.fs.OpenFile(filepath.Join(e.dir, segmentName(start)), os.O_RDONLY, 0)
	if errors.Is(err, os.ErrNotExist) {
		return -1, true, nil
	}
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		_, rerr := readRecord(br)
		if rerr == io.EOF {
			return n, true, nil
		}
		if rerr != nil {
			// Any malformed record in a SEALED segment — torn framing, CRC
			// mismatch, undecodable payload — is rot: sealed files never
			// legitimately end mid-record.
			return n, false, nil
		}
		n++
	}
}

// scrubSnapshot re-decodes one snapshot. gone reports that the file was
// compacted away mid-pass.
func (e *Engine) scrubSnapshot(seq uint64) (ok, gone bool, err error) {
	f, err := e.fs.OpenFile(filepath.Join(e.dir, snapshotName(seq)), os.O_RDONLY, 0)
	if errors.Is(err, os.ErrNotExist) {
		return true, true, nil
	}
	if err != nil {
		return false, false, err
	}
	defer f.Close()
	if _, lerr := kvstore.Load(f); lerr != nil {
		return false, false, nil
	}
	return true, false, nil
}

// HealthSummary reports the engine's health for operator surfacing
// (core.GroupStatus, txkvctl status): the sticky fail-stop reason ("" while
// healthy), how many scrub passes have completed, and the corrupt files the
// latest pass found.
func (e *Engine) HealthSummary() (fault string, scrubRuns int, scrubCorrupt []string) {
	if err := e.Fault(); err != nil {
		fault = err.Error()
	}
	e.scrubMu.Lock()
	defer e.scrubMu.Unlock()
	return fault, e.scrubRuns, append([]string(nil), e.scrubCorrupt...)
}

// scrubLoop is the background scrub driver (Options.ScrubInterval > 0).
// Scrub I/O contends with the foreground only for read bandwidth on files
// the engine never touches again, so no pacing beyond the interval is
// needed at this scale.
func (e *Engine) scrubLoop() {
	defer close(e.scrubDone)
	t := time.NewTicker(e.opts.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := e.Scrub(); err != nil {
				e.opts.Logf("disk: scrub pass aborted: %v", err)
			}
		case <-e.scrubStop:
			return
		}
	}
}
